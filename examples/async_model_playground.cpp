// Asynchronous-model playground: runs the Section III simulators on a
// problem of your choice and prints the residual trajectory, so you can
// see how the update probability (alpha) and maximum read delay (delta)
// shape convergence before committing to a threaded run.

#include <cstdio>

#include "async/model.hpp"
#include "mesh/problems.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace asyncmg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 12));
  const double alpha = cli.get_double("alpha", 0.3);
  const int delta = static_cast<int>(cli.get_int("delta", 4));
  const int updates = static_cast<int>(cli.get_int("updates", 20));

  Problem problem = make_laplace_27pt(n);
  MgOptions options;
  options.smoother.type = SmootherType::kWeightedJacobi;
  options.smoother.omega = 0.9;
  options.amg.num_aggressive_levels = 1;
  const MgSetup setup(std::move(problem.a), options);

  AdditiveOptions additive;
  additive.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corrector(setup, additive);

  Rng rng(99);
  const Vector b =
      random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);

  std::printf("27pt %d^3, Multadd, alpha=%.2f delta=%d, %d updates/grid\n\n",
              n, alpha, delta, updates);

  for (AsyncModelKind kind :
       {AsyncModelKind::kSemiAsync, AsyncModelKind::kFullAsyncSolution,
        AsyncModelKind::kFullAsyncResidual}) {
    Vector x(b.size(), 0.0);
    AsyncModelOptions mo;
    mo.kind = kind;
    mo.alpha = alpha;
    mo.max_delay = kind == AsyncModelKind::kSemiAsync ? 0 : delta;
    mo.updates_per_grid = updates;
    mo.record_history = true;
    mo.seed = 2024;
    const AsyncModelResult r = run_async_model(corrector, b, x, mo);

    std::printf("%-22s p_k = [", async_model_name(kind).c_str());
    for (double p : r.probabilities) std::printf(" %.2f", p);
    std::printf(" ]\n");
    std::printf("  trajectory:");
    const int stride =
        std::max(1, static_cast<int>(r.rel_res_history.size()) / 8);
    for (std::size_t t = 0; t < r.rel_res_history.size();
         t += static_cast<std::size_t>(stride)) {
      std::printf(" %.1e", r.rel_res_history[t]);
    }
    std::printf("\n  final rel res %.3e after %d time instants\n\n",
                r.final_rel_res, r.time_instants);
  }
  return 0;
}
