// Geometric vs algebraic setup on the same Poisson problem: builds both
// hierarchies for the 7pt Laplacian, compares setup cost, hierarchy
// complexity, and V-cycle counts, then runs asynchronous Multadd on each —
// the solvers are agnostic to where the hierarchy came from.

#include <cstdio>

#include "async/runtime.hpp"
#include "gmg/gmg.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace asyncmg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  Index n = static_cast<Index>(cli.get_int("n", 15));
  if (n % 2 == 0) ++n;  // geometric coarsening needs odd sizes
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;

  std::printf("7pt Poisson on a %d^3 grid (%d unknowns)\n\n", n, n * n * n);

  // Geometric: trilinear interpolation on the structured grid.
  Timer t_geo;
  Problem p1 = make_laplace_7pt(n);
  Hierarchy geo = build_geometric_hierarchy(std::move(p1.a), n);
  const MgSetup setup_geo(std::move(geo), mo);
  const double geo_setup = t_geo.seconds();

  // Algebraic: HMIS + classical modified interpolation.
  Timer t_amg;
  Problem p2 = make_laplace_7pt(n);
  const MgSetup setup_amg(std::move(p2.a), mo);
  const double amg_setup = t_amg.seconds();

  Rng rng(5);
  const Vector b =
      random_vector(static_cast<std::size_t>(setup_geo.a(0).rows()), rng);

  auto report = [&](const char* name, const MgSetup& s, double setup_secs) {
    Vector x(b.size(), 0.0);
    MultiplicativeMg mg(s);
    const SolveStats st = mg.solve(b, x, 100, 1e-9);

    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    const AdditiveCorrector corr(s, ao);
    RuntimeOptions ro;
    ro.t_max = st.cycles;
    ro.num_threads = threads;
    Vector xa(b.size(), 0.0);
    const RuntimeResult rr = run_shared_memory(corr, b, xa, ro);

    std::printf("%-10s levels=%zu op-cx=%.2f setup=%.3fs | Mult: %d cycles "
                "to 1e-9 | async Multadd: rel res %.1e after %d corrections\n",
                name, s.num_levels(), s.hierarchy().operator_complexity(),
                setup_secs, st.cycles, rr.final_rel_res, st.cycles);
  };

  report("geometric", setup_geo, geo_setup);
  report("algebraic", setup_amg, amg_setup);

  std::printf("\nBoth hierarchies drive the identical solver stack; the "
              "asynchronous runtime never needs to know which setup "
              "produced the grids.\n");
  return 0;
}
