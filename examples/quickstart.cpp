// Quickstart: solve a 3D Poisson problem with asynchronous Multadd in a
// few lines of the public API.
//
//   1. Generate (or load) a sparse SPD system.
//   2. Run the AMG setup phase (MgSetup) with the smoother of your choice.
//   3. Wrap an additive method (AdditiveCorrector) around the setup.
//   4. Solve: sequentially (AdditiveMg), or asynchronously on a thread
//      pool (run_shared_memory).

#include <cstdio>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace asyncmg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 16));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  // 1. A 7-point Laplacian on an n^3 grid with a random right-hand side.
  Problem problem = make_laplace_7pt(n);
  std::printf("system: %s, %s\n", problem.name.c_str(),
              problem.a.summary().c_str());
  Rng rng(42);
  const Vector b =
      random_vector(static_cast<std::size_t>(problem.a.rows()), rng);

  // 2. AMG setup: HMIS coarsening + classical modified interpolation (the
  //    paper's BoomerAMG configuration), weighted-Jacobi smoothing.
  MgOptions options;
  options.amg.coarsening = CoarsenAlgo::kHMIS;
  options.amg.interpolation = InterpAlgo::kClassicalModified;
  options.amg.num_aggressive_levels = 1;
  options.smoother.type = SmootherType::kWeightedJacobi;
  options.smoother.omega = 0.9;
  const MgSetup setup(std::move(problem.a), options);
  std::printf("%s", setup.hierarchy().summary().c_str());

  // 3. Classical multiplicative V(1,1) as the baseline.
  Vector x_mult(b.size(), 0.0);
  MultiplicativeMg mult(setup);
  const SolveStats mult_stats = mult.solve(b, x_mult, 100, 1e-9);
  std::printf("sync Mult          : %3d V-cycles, rel res %.2e\n",
              mult_stats.cycles, mult_stats.final_rel_res());

  // 4. Asynchronous Multadd on a shared-memory thread pool: threads are
  //    partitioned into per-grid teams that never synchronize globally.
  AdditiveOptions additive;
  additive.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corrector(setup, additive);

  RuntimeOptions run;
  run.mode = ExecMode::kAsynchronous;
  run.rescomp = ResComp::kLocal;        // each team recomputes its residual
  run.write = WritePolicy::kLockWrite;  // semi-async semantics
  run.t_max = mult_stats.cycles;        // same correction budget
  run.num_threads = threads;
  Vector x_async(b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(corrector, b, x_async, run);
  std::printf("async Multadd      : %.1f corrects/grid, rel res %.2e "
              "(%zu threads, no global synchronization)\n",
              rr.mean_corrections(), rr.final_rel_res, threads);
  return 0;
}
