// Command-line solver for user-provided systems: reads a Matrix Market
// matrix (and optionally a right-hand side), builds the AMG hierarchy, and
// solves with the requested method. This is the "bring your own matrix"
// entry point of the library.
//
// Usage:
//   matrix_market_solve A.mtx [--rhs b.txt] [--method mult|multadd|afacx|
//       async-multadd|pcg] [--smoother w-jacobi|l1-jacobi|hybrid-jgs|
//       async-gs|l1-hybrid-jgs] [--omega .9] [--threads 8] [--cycles 100]
//       [--tol 1e-9] [--num-functions 1] [--aggressive 0] [--out x.txt]
//
// Without a --rhs, a random right-hand side in [-1,1] is used (as in the
// paper's experiments).

#include <cstdio>
#include <fstream>
#include <iostream>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/pcg.hpp"
#include "sparse/io.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace asyncmg;

namespace {

SmootherType smoother_from_name(const std::string& name) {
  if (name == "w-jacobi") return SmootherType::kWeightedJacobi;
  if (name == "l1-jacobi") return SmootherType::kL1Jacobi;
  if (name == "hybrid-jgs") return SmootherType::kHybridJGS;
  if (name == "async-gs") return SmootherType::kAsyncGS;
  if (name == "l1-hybrid-jgs") return SmootherType::kL1HybridJGS;
  throw std::invalid_argument("unknown smoother: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  if (cli.positional().empty()) {
    std::cerr << "usage: matrix_market_solve A.mtx [options]\n"
                 "see the header comment of examples/matrix_market_solve.cpp\n";
    return 2;
  }

  Timer total;
  CsrMatrix a = read_matrix_market_file(cli.positional()[0]);
  std::printf("matrix: %s (%s)\n", cli.positional()[0].c_str(),
              a.summary().c_str());

  Vector b;
  const std::string rhs_path = cli.get("rhs", "");
  if (!rhs_path.empty()) {
    std::ifstream f(rhs_path);
    b = read_vector(f);
  } else {
    Rng rng(1234);
    b = random_vector(static_cast<std::size_t>(a.rows()), rng);
    std::printf("rhs: random in [-1, 1]\n");
  }

  MgOptions mo;
  mo.smoother.type = smoother_from_name(cli.get("smoother", "w-jacobi"));
  mo.smoother.omega = cli.get_double("omega", 0.9);
  mo.smoother.num_blocks =
      static_cast<std::size_t>(cli.get_int("blocks", 8));
  mo.amg.num_functions = static_cast<int>(cli.get_int("num-functions", 1));
  mo.amg.num_aggressive_levels = static_cast<int>(cli.get_int("aggressive", 0));

  Timer setup_timer;
  const MgSetup setup(std::move(a), mo);
  std::printf("%ssetup: %.3f s\n", setup.hierarchy().summary().c_str(),
              setup_timer.seconds());

  const std::string method = cli.get("method", "mult");
  const int cycles = static_cast<int>(cli.get_int("cycles", 100));
  const double tol = cli.get_double("tol", 1e-9);
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));

  Vector x(b.size(), 0.0);
  double final_rel_res = 1.0;
  int used_cycles = 0;
  bool converged = false;

  if (method == "mult") {
    MultiplicativeMg mg(setup);
    const SolveStats st = mg.solve(b, x, cycles, tol);
    final_rel_res = st.final_rel_res();
    used_cycles = st.cycles;
    converged = st.converged;
  } else if (method == "multadd" || method == "afacx") {
    AdditiveOptions ao;
    ao.kind = method == "multadd" ? AdditiveKind::kMultadd
                                  : AdditiveKind::kAfacx;
    AdditiveMg mg(setup, ao);
    const SolveStats st = mg.solve(b, x, cycles, tol);
    final_rel_res = st.final_rel_res();
    used_cycles = st.cycles;
    converged = st.converged;
  } else if (method == "async-multadd") {
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    const AdditiveCorrector corr(setup, ao);
    RuntimeOptions ro;
    ro.t_max = cycles;
    ro.num_threads = threads;
    const RuntimeResult rr = run_shared_memory(corr, b, x, ro);
    final_rel_res = rr.final_rel_res;
    used_cycles = cycles;
    converged = final_rel_res < tol;
  } else if (method == "pcg") {
    PcgOptions po;
    po.max_iterations = cycles;
    po.tol = tol;
    const SolveStats st = pcg_solve(
        setup.a(0), b, x,
        make_mg_preconditioner(setup, MgPreconditionerKind::kSymmetricVCycle),
        po);
    final_rel_res = st.final_rel_res();
    used_cycles = st.cycles;
    converged = st.converged;
  } else {
    std::cerr << "unknown --method " << method << "\n";
    return 2;
  }

  std::printf("%s: %s after %d cycles, rel res %.3e (total %.3f s)\n",
              method.c_str(), converged ? "converged" : "NOT converged",
              used_cycles, final_rel_res, total.seconds());

  const std::string out = cli.get("out", "");
  if (!out.empty()) {
    std::ofstream f(out);
    write_vector(f, x);
    std::printf("solution written to %s\n", out.c_str());
  }
  return converged ? 0 : 1;
}
