// Poisson on a sphere: the paper's "MFEM Laplace" scenario. Assembles a
// trilinear hexahedral FEM discretization of the Laplacian on a
// sphere-masked grid, builds the AMG hierarchy WITHOUT aggressive
// coarsening (as in the paper's Figure 5), and compares the smoothers on
// asynchronous Multadd.

#include <cstdio>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace asyncmg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index n = static_cast<Index>(cli.get_int("n", 14));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));
  const int cycles = static_cast<int>(cli.get_int("cycles", 40));

  Problem problem = make_fem_laplace_sphere(n);
  std::printf("FEM Laplace on a sphere: %s (bounding grid %d^3)\n\n",
              problem.a.summary().c_str(), n);

  for (SmootherType st :
       {SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi,
        SmootherType::kHybridJGS, SmootherType::kAsyncGS,
        SmootherType::kL1HybridJGS}) {
    // Rebuild per smoother: Multadd's smoothed interpolants depend on it.
    Problem p = make_fem_laplace_sphere(n);
    MgOptions options;
    options.amg.coarsening = CoarsenAlgo::kHMIS;
    options.amg.interpolation = InterpAlgo::kClassicalModified;
    options.amg.num_aggressive_levels = 0;  // Figure 5: no aggressive
    options.smoother.type = st;
    options.smoother.omega = 0.5;  // the paper's choice for the MFEM sets
    const MgSetup setup(std::move(p.a), options);

    Rng rng(7);
    const Vector b =
        random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);

    AdditiveOptions additive;
    additive.kind = AdditiveKind::kMultadd;
    const AdditiveCorrector corrector(setup, additive);

    RuntimeOptions run;
    run.rescomp = ResComp::kLocal;
    run.write = WritePolicy::kLockWrite;
    run.t_max = cycles;
    run.num_threads = threads;
    Vector x(b.size(), 0.0);
    const RuntimeResult rr = run_shared_memory(corrector, b, x, run);
    std::printf("  %-12s async Multadd: rel res %.3e after ~%d corrections"
                " per grid (%.3f s)\n",
                smoother_name(st).c_str(), rr.final_rel_res, cycles,
                rr.seconds);
  }
  std::printf("\nAsync GS should reach the lowest residual for the same "
              "correction budget (paper Table I / Figure 5).\n");
  return 0;
}
