// Multi-material cantilever beam (the paper's "MFEM Elasticity" scenario):
// 3D linear elasticity, hex8 elements, 3 dofs per node, clamped at x = 0,
// 100x stiffness contrast along the beam. Demonstrates the case where
// asynchronous global-res Multadd diverges while local-res converges
// (Table I's elasticity panel).

#include <cmath>
#include <cstdio>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace asyncmg;

int main(int argc, char** argv) {
  const Cli cli(argc, argv);
  const Index nx = static_cast<Index>(cli.get_int("nx", 16));
  const Index nyz = static_cast<Index>(cli.get_int("nyz", 4));
  const auto threads = static_cast<std::size_t>(cli.get_int("threads", 8));
  const int cycles = static_cast<int>(cli.get_int("cycles", 60));

  Problem problem = make_elasticity_beam(nx, nyz, nyz);
  std::printf("cantilever beam elasticity: %s (%d x %d x %d elements, two "
              "materials)\n\n",
              problem.a.summary().c_str(), nx, nyz, nyz);

  MgOptions options;
  options.amg.coarsening = CoarsenAlgo::kHMIS;
  options.amg.interpolation = InterpAlgo::kClassicalModified;
  // Unknown-based AMG (BoomerAMG's num_functions): the three interleaved
  // displacement components coarsen independently, which classical AMG
  // needs to handle elasticity.
  options.amg.num_functions = 3;
  options.smoother.type = SmootherType::kL1Jacobi;  // guaranteed convergent
  const MgSetup setup(std::move(problem.a), options);
  std::printf("%s\n", setup.hierarchy().summary().c_str());

  Rng rng(3);
  const Vector b =
      random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);

  Vector x_mult(b.size(), 0.0);
  MultiplicativeMg mult(setup);
  const SolveStats ms = mult.solve(b, x_mult, 400, 1e-9);
  std::printf("sync Mult                : %s in %d V-cycles (rel res %.2e)\n",
              ms.converged ? "converged" : "NOT converged", ms.cycles,
              ms.final_rel_res());

  AdditiveOptions additive;
  additive.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corrector(setup, additive);

  for (ResComp rescomp : {ResComp::kLocal, ResComp::kGlobal}) {
    RuntimeOptions run;
    run.rescomp = rescomp;
    run.write = WritePolicy::kLockWrite;
    run.t_max = cycles;
    run.num_threads = threads;
    Vector x(b.size(), 0.0);
    const RuntimeResult rr = run_shared_memory(corrector, b, x, run);
    const bool diverged = !std::isfinite(rr.final_rel_res) ||
                          rr.final_rel_res > 1.0;
    std::printf("async Multadd %-10s : rel res %.3e after %d corrections "
                "per grid%s\n",
                rescomp == ResComp::kLocal ? "local-res" : "global-res",
                rr.final_rel_res, cycles,
                diverged ? "  <-- diverged (matches paper Table I)" : "");
  }
  return 0;
}
