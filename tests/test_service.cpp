// Tests for the solver service layer: persistent pool, hierarchy cache
// (including spill-to-disk), batched multi-RHS solves, and the request API.

#include <gtest/gtest.h>

#include <atomic>
#include <barrier>
#include <filesystem>
#include <future>
#include <thread>
#include <vector>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "service/batch_solver.hpp"
#include "service/fingerprint.hpp"
#include "service/hierarchy_cache.hpp"
#include "service/solve_service.hpp"
#include "service/solver_pool.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

MgOptions test_mg_options() {
  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;
  return mo;
}

Vector rhs_for(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  return random_vector(n, rng);
}

// ---------------------------------------------------------------------------
// SolverPool
// ---------------------------------------------------------------------------

TEST(SolverPool, RejectsZeroThreads) {
  EXPECT_THROW(SolverPool(0), std::invalid_argument);
}

TEST(SolverPool, PostRunsEveryTask) {
  SolverPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.post([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(SolverPool, ParallelForCoversEveryIndexOnce) {
  SolverPool pool(4);
  std::vector<std::atomic<int>> touched(257);
  pool.parallel_for(touched.size(), [&](std::size_t, std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(SolverPool, ParallelForSlotsAreDense) {
  SolverPool pool(3);
  std::atomic<std::size_t> max_slot{0};
  pool.parallel_for(64, [&](std::size_t slot, std::size_t) {
    std::size_t cur = max_slot.load(std::memory_order_relaxed);
    while (slot > cur &&
           !max_slot.compare_exchange_weak(cur, slot,
                                           std::memory_order_relaxed)) {
    }
  });
  EXPECT_LT(max_slot.load(), pool.size());
}

TEST(SolverPool, GangBodiesMaySynchronize) {
  SolverPool pool(4);
  // Every body must be running concurrently for the barrier to pass; a pool
  // that ran gang members sequentially would deadlock here.
  std::barrier<> bar(4);
  std::atomic<int> after{0};
  pool.run_gang(4, [&](std::size_t) {
    bar.arrive_and_wait();
    after.fetch_add(1, std::memory_order_relaxed);
    bar.arrive_and_wait();
  });
  EXPECT_EQ(after.load(), 4);
}

TEST(SolverPool, GangLargerThanPoolThrows) {
  SolverPool pool(2);
  EXPECT_THROW(pool.run_gang(3, [](std::size_t) {}), std::invalid_argument);
}

TEST(SolverPool, GangPropagatesExceptions) {
  SolverPool pool(2);
  EXPECT_THROW(pool.run_gang(2,
                             [](std::size_t i) {
                               if (i == 1) throw std::runtime_error("boom");
                             }),
               std::runtime_error);
  pool.wait_idle();  // pool stays usable
  std::atomic<int> ran{0};
  pool.run_gang(2, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 2);
}

// ---------------------------------------------------------------------------
// Fingerprint
// ---------------------------------------------------------------------------

TEST(Fingerprint, IdenticalMatricesShareFingerprint) {
  Problem p1 = make_laplace_7pt(6);
  Problem p2 = make_laplace_7pt(6);
  EXPECT_EQ(matrix_fingerprint(p1.a), matrix_fingerprint(p2.a));
}

TEST(Fingerprint, ValueAndShapeChangesAreDetected) {
  Problem p = make_laplace_7pt(6);
  const MatrixFingerprint base = matrix_fingerprint(p.a);

  CsrMatrix perturbed = p.a;
  perturbed.values_mutable()[0] += 1e-13;  // one bit of one value
  EXPECT_NE(matrix_fingerprint(perturbed), base);

  Problem other = make_laplace_7pt(7);
  EXPECT_NE(matrix_fingerprint(other.a), base);

  EXPECT_NE(base.to_string().find("h"), std::string::npos);
}

// ---------------------------------------------------------------------------
// HierarchyCache
// ---------------------------------------------------------------------------

TEST(HierarchyCache, HitsMissesAndSingleSetup) {
  HierarchyCacheOptions co;
  co.mg = test_mg_options();
  HierarchyCache cache(co);
  Problem p = make_laplace_7pt(6);

  bool hit = true;
  auto s1 = cache.get_or_build(p.a, &hit);
  EXPECT_FALSE(hit);
  auto s2 = cache.get_or_build(p.a, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(s1.get(), s2.get());

  const HierarchyCacheStats st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.setups_built, 1u);
  EXPECT_EQ(st.resident_entries, 1u);
  EXPECT_GT(st.resident_bytes, 0u);
}

TEST(HierarchyCache, EvictsLeastRecentlyUsedUnderBudget) {
  HierarchyCacheOptions co;
  co.mg = test_mg_options();
  co.max_bytes = 1;  // nothing fits, but one entry is always kept
  HierarchyCache cache(co);
  Problem a = make_laplace_7pt(6);
  Problem b = make_laplace_7pt(7);

  auto sa = cache.get_or_build(a.a);
  auto sb = cache.get_or_build(b.a);
  const HierarchyCacheStats st = cache.stats();
  EXPECT_EQ(st.resident_entries, 1u);
  EXPECT_EQ(st.evictions, 1u);
  // The returned shared_ptr keeps the evicted setup alive for the caller.
  EXPECT_GT(sa->num_levels(), 0u);

  // Re-requesting the evicted matrix is a miss that rebuilds.
  bool hit = true;
  cache.get_or_build(a.a, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(cache.stats().setups_built, 3u);
}

TEST(HierarchyCache, SpilledHierarchyReloadsWithIdenticalConvergence) {
  const std::string dir = "/tmp/asyncmg_cache_spill_test";
  std::filesystem::create_directories(dir);

  HierarchyCacheOptions co;
  co.mg = test_mg_options();
  co.max_bytes = 1;
  co.spill_dir = dir;
  HierarchyCache cache(co);

  Problem a = make_laplace_7pt(8);
  Problem b = make_laplace_7pt(6);
  const Vector rhs = rhs_for(static_cast<std::size_t>(a.a.rows()), 7);

  // Reference convergence history from the freshly built setup.
  auto fresh = cache.get_or_build(a.a);
  Vector x_ref(rhs.size(), 0.0);
  MultiplicativeMg mg_ref(*fresh);
  const SolveStats ref = mg_ref.solve(rhs, x_ref, 15);

  // Evict A to disk, then request it again: served by spill load, no new
  // AMG setup phase.
  cache.get_or_build(b.a);
  ASSERT_EQ(cache.stats().spill_writes, 1u);
  bool hit = true;
  auto reloaded = cache.get_or_build(a.a, &hit);
  EXPECT_FALSE(hit);
  const HierarchyCacheStats st = cache.stats();
  EXPECT_EQ(st.spill_loads, 1u);
  EXPECT_EQ(st.setups_built, 2u);  // one per matrix; the reload built none

  Vector x2(rhs.size(), 0.0);
  MultiplicativeMg mg2(*reloaded);
  const SolveStats again = mg2.solve(rhs, x2, 15);
  ASSERT_EQ(again.rel_res_history.size(), ref.rel_res_history.size());
  for (std::size_t t = 0; t < ref.rel_res_history.size(); ++t) {
    EXPECT_NEAR(again.rel_res_history[t], ref.rel_res_history[t], 1e-13)
        << "cycle " << t;
  }
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    EXPECT_NEAR(x2[i], x_ref[i], 1e-12);
  }
  std::filesystem::remove_all(dir);
}

// Concurrent lookups over a working set larger than the byte budget: the
// cache must keep evicting/spilling/reloading under contention without
// losing accounting coherence or handing out unusable setups.
TEST(HierarchyCache, ConcurrentEvictionAndSpillReloadStaysCoherent) {
  const std::string dir = "/tmp/asyncmg_cache_concurrent_test";
  std::filesystem::create_directories(dir);

  HierarchyCacheOptions co;
  co.mg = test_mg_options();
  co.max_bytes = 1;  // every insert evicts the previous resident entry
  co.spill_dir = dir;
  HierarchyCache cache(co);

  std::vector<Problem> work;
  for (Index n : {5, 6, 7}) work.push_back(make_laplace_7pt(n));

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::barrier gate(kThreads);
  std::atomic<std::uint64_t> observed_hits{0};
  std::atomic<int> bad_setups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    threads.emplace_back([&, tid] {
      gate.arrive_and_wait();
      for (int round = 0; round < kRounds; ++round) {
        const Problem& p =
            work[static_cast<std::size_t>(tid + round) % work.size()];
        bool hit = false;
        auto setup = cache.get_or_build(p.a, &hit);
        if (hit) observed_hits.fetch_add(1, std::memory_order_relaxed);
        // The returned setup must always be usable and must match the
        // requested matrix, even if it was evicted the instant the lock
        // was released.
        if (!setup || setup->num_levels() == 0 ||
            setup->a(0).rows() != p.a.rows()) {
          bad_setups.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(bad_setups.load(), 0);
  const HierarchyCacheStats st = cache.stats();
  // Every lookup is exactly one hit or one miss...
  EXPECT_EQ(st.hits + st.misses,
            static_cast<std::uint64_t>(kThreads) * kRounds);
  EXPECT_EQ(st.hits, observed_hits.load());
  // ...and every miss was served by either a fresh build or a spill load.
  EXPECT_EQ(st.misses, st.setups_built + st.spill_loads);
  // The tiny budget forces the spill path to actually run.
  EXPECT_GT(st.spill_loads, 0u);
  EXPECT_GT(st.evictions, 0u);
  EXPECT_EQ(st.resident_entries, 1u);

  // A post-contention reload still converges identically to a fresh build.
  const Vector rhs = rhs_for(static_cast<std::size_t>(work[0].a.rows()), 11);
  auto reloaded = cache.get_or_build(work[0].a);
  Vector x_cache(rhs.size(), 0.0);
  MultiplicativeMg mg_cache(*reloaded);
  const SolveStats from_cache = mg_cache.solve(rhs, x_cache, 10);

  MgSetup fresh(Hierarchy::build(work[0].a, co.mg.amg), co.mg);
  Vector x_fresh(rhs.size(), 0.0);
  MultiplicativeMg mg_fresh(fresh);
  const SolveStats direct = mg_fresh.solve(rhs, x_fresh, 10);
  ASSERT_EQ(from_cache.rel_res_history.size(), direct.rel_res_history.size());
  for (std::size_t t = 0; t < direct.rel_res_history.size(); ++t) {
    EXPECT_NEAR(from_cache.rel_res_history[t], direct.rel_res_history[t],
                1e-13);
  }
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// BatchSolver
// ---------------------------------------------------------------------------

TEST(BatchSolver, MatchesIndependentSolves) {
  Problem p = make_laplace_7pt(8);
  const auto n = static_cast<std::size_t>(p.a.rows());
  auto setup = std::make_shared<const MgSetup>(
      Hierarchy::build(p.a, test_mg_options().amg), test_mg_options());

  std::vector<Vector> rhs;
  for (std::uint64_t i = 0; i < 9; ++i) rhs.push_back(rhs_for(n, 100 + i));

  BatchOptions bo;
  bo.t_max = 20;
  bo.tol = 1e-10;
  SolverPool pool(4);
  BatchSolver batch(setup, &pool, bo);
  const std::vector<BatchResult> got = batch.solve_all(rhs);
  ASSERT_EQ(got.size(), rhs.size());

  for (std::size_t i = 0; i < rhs.size(); ++i) {
    Vector x(n, 0.0);
    MultiplicativeMg mg(*setup);
    const SolveStats ref = mg.solve(rhs[i], x, bo.t_max, bo.tol);
    EXPECT_NEAR(got[i].stats.final_rel_res(), ref.final_rel_res(), 1e-12);
    EXPECT_LT(got[i].stats.final_rel_res(), 1e-5);
    for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(got[i].x[j], x[j], 1e-12);
  }
}

TEST(BatchSolver, NullPoolRunsSequentially) {
  Problem p = make_laplace_7pt(6);
  const auto n = static_cast<std::size_t>(p.a.rows());
  auto setup = std::make_shared<const MgSetup>(
      Hierarchy::build(p.a, test_mg_options().amg), test_mg_options());
  BatchSolver batch(setup, nullptr, BatchOptions{10, 1e-8});
  const auto got = batch.solve_all({rhs_for(n, 1), rhs_for(n, 2)});
  ASSERT_EQ(got.size(), 2u);
  for (const BatchResult& r : got) EXPECT_LT(r.stats.final_rel_res(), 1e-3);
}

TEST(BatchSolver, RejectsMismatchedRhs) {
  Problem p = make_laplace_7pt(6);
  auto setup = std::make_shared<const MgSetup>(
      Hierarchy::build(p.a, test_mg_options().amg), test_mg_options());
  BatchSolver batch(setup, nullptr);
  EXPECT_THROW(batch.solve_all({Vector(3, 1.0)}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pool-backed runtimes
// ---------------------------------------------------------------------------

TEST(PoolRuntime, SyncModeOnPoolMatchesSequentialAdditive) {
  Problem p = make_laplace_7pt(10);
  MgOptions mo = test_mg_options();
  MgSetup setup(std::move(p.a), mo);
  AdditiveCorrector corr(setup, AdditiveOptions{});
  const Vector b = rhs_for(static_cast<std::size_t>(setup.a(0).rows()), 13);

  Vector x_seq(b.size(), 0.0);
  AdditiveMg mg(setup, corr.options());
  const double seq = mg.solve(b, x_seq, 15).final_rel_res();

  SolverPool pool(8);
  RuntimeOptions ro;
  ro.mode = ExecMode::kSynchronous;
  ro.t_max = 15;
  ro.num_threads = 8;
  ro.pool = &pool;
  Vector x_par(b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(corr, b, x_par, ro);
  EXPECT_NEAR(rr.final_rel_res / seq, 1.0, 1e-6);
}

TEST(PoolRuntime, AsyncSolveOnPoolConvergesLikeSpawnPath) {
  Problem p = make_laplace_7pt(10);
  MgOptions mo = test_mg_options();
  MgSetup setup(std::move(p.a), mo);
  AdditiveCorrector corr(setup, AdditiveOptions{});
  const Vector b = rhs_for(static_cast<std::size_t>(setup.a(0).rows()), 17);

  RuntimeOptions ro;
  ro.t_max = 30;
  ro.num_threads = 8;
  Vector x_spawn(b.size(), 0.0);
  const RuntimeResult spawn = run_shared_memory(corr, b, x_spawn, ro);

  SolverPool pool(8);
  ro.pool = &pool;
  Vector x_pool(b.size(), 0.0);
  const RuntimeResult pooled = run_shared_memory(corr, b, x_pool, ro);

  // Asynchronous schedules are stochastic; both paths must converge to the
  // same quality band (the spawn path's own test threshold).
  EXPECT_LT(spawn.final_rel_res, 0.05);
  EXPECT_LT(pooled.final_rel_res, 0.05);
  for (int c : pooled.corrections) EXPECT_GE(c, ro.t_max);

  // The pool is reusable: a second solve on the same workers.
  Vector x_again(b.size(), 0.0);
  const RuntimeResult again = run_shared_memory(corr, b, x_again, ro);
  EXPECT_LT(again.final_rel_res, 0.05);
}

TEST(PoolRuntime, MultThreadedOnPoolMatchesSequential) {
  Problem p = make_laplace_7pt(10);
  MgOptions mo = test_mg_options();
  MgSetup setup(std::move(p.a), mo);
  const Vector b = rhs_for(static_cast<std::size_t>(setup.a(0).rows()), 19);

  Vector x_seq(b.size(), 0.0);
  MultiplicativeMg mg(setup);
  const double seq = mg.solve(b, x_seq, 12).final_rel_res();

  SolverPool pool(6);
  Vector x_par(b.size(), 0.0);
  const RuntimeResult rr = run_mult_threaded(setup, b, x_par, 12, 6, &pool);
  EXPECT_NEAR(rr.final_rel_res / seq, 1.0, 1e-9);
}

TEST(PoolRuntime, PoolSmallerThanGangThrows) {
  Problem p = make_laplace_7pt(6);
  MgSetup setup(std::move(p.a), test_mg_options());
  AdditiveCorrector corr(setup, AdditiveOptions{});
  const Vector b = rhs_for(static_cast<std::size_t>(setup.a(0).rows()), 3);
  SolverPool pool(2);
  RuntimeOptions ro;
  ro.num_threads = 4;
  ro.pool = &pool;
  Vector x(b.size(), 0.0);
  EXPECT_THROW(run_shared_memory(corr, b, x, ro), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// SolveService
// ---------------------------------------------------------------------------

ServiceOptions small_service_options(std::size_t threads = 4) {
  ServiceOptions so;
  so.num_threads = threads;
  so.cache.mg = test_mg_options();
  so.default_t_max = 30;
  so.default_tol = 1e-9;
  return so;
}

TEST(SolveService, SubmitSolvesAndHitsCacheOnRepeat) {
  SolveService svc(small_service_options());
  Problem p = make_laplace_7pt(8);
  const auto n = static_cast<std::size_t>(p.a.rows());

  auto f1 = svc.submit(p.a, rhs_for(n, 1));
  const SolveResponse r1 = f1.get();
  EXPECT_FALSE(r1.cache_hit);
  EXPECT_FALSE(r1.timed_out);
  EXPECT_LT(r1.stats.final_rel_res(), 1e-8);

  auto f2 = svc.submit(p.a, rhs_for(n, 2));
  const SolveResponse r2 = f2.get();
  EXPECT_TRUE(r2.cache_hit);
  EXPECT_LT(r2.stats.final_rel_res(), 1e-8);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.submitted, 2u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.cache.setups_built, 1u);
  EXPECT_GE(st.latency_p95, st.latency_p50);
  EXPECT_GT(st.latency_mean, 0.0);
}

TEST(SolveService, ConcurrentClientsMatchIndependentSolves) {
  SolveService svc(small_service_options());
  Problem p = make_laplace_7pt(8);
  const auto n = static_cast<std::size_t>(p.a.rows());

  constexpr int kClients = 4;
  constexpr int kPerClient = 6;
  std::vector<std::vector<std::future<SolveResponse>>> futs(kClients);
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (int i = 0; i < kPerClient; ++i) {
          futs[c].push_back(svc.submit(
              p.a, rhs_for(n, static_cast<std::uint64_t>(c * 100 + i))));
        }
      });
    }
  }

  // Reference solves against the very setup the service cached.
  auto setup = svc.cache().get_or_build(p.a);
  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kPerClient; ++i) {
      const SolveResponse got = futs[c][i].get();
      Vector x(n, 0.0);
      MultiplicativeMg mg(*setup);
      const SolveStats ref =
          mg.solve(rhs_for(n, static_cast<std::uint64_t>(c * 100 + i)), x, 30,
                   1e-9);
      EXPECT_NEAR(got.stats.final_rel_res(), ref.final_rel_res(), 1e-12);
      for (std::size_t j = 0; j < n; ++j) EXPECT_NEAR(got.x[j], x[j], 1e-12);
    }
  }
  EXPECT_EQ(svc.stats().cache.setups_built, 1u);
}

TEST(SolveService, BatchedSolvesMatchIndependentUnderConcurrentClients) {
  SolveService svc(small_service_options());
  Problem p = make_laplace_7pt(8);
  const auto n = static_cast<std::size_t>(p.a.rows());
  BatchOptions bo;
  bo.t_max = 20;
  bo.tol = 1e-10;

  constexpr int kClients = 3;
  constexpr int kRhs = 5;
  std::vector<std::vector<BatchResult>> got(kClients);
  {
    std::vector<std::jthread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<Vector> rhs;
        for (int i = 0; i < kRhs; ++i) {
          rhs.push_back(rhs_for(n, static_cast<std::uint64_t>(c * 50 + i)));
        }
        got[c] = svc.solve_batch(p.a, rhs, bo);
      });
    }
  }

  auto setup = svc.cache().get_or_build(p.a);
  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), static_cast<std::size_t>(kRhs));
    for (int i = 0; i < kRhs; ++i) {
      Vector x(n, 0.0);
      MultiplicativeMg mg(*setup);
      const SolveStats ref =
          mg.solve(rhs_for(n, static_cast<std::uint64_t>(c * 50 + i)), x,
                   bo.t_max, bo.tol);
      EXPECT_NEAR(got[c][i].stats.final_rel_res(), ref.final_rel_res(),
                  1e-12);
      for (std::size_t j = 0; j < n; ++j) {
        EXPECT_NEAR(got[c][i].x[j], x[j], 1e-12);
      }
    }
  }
  EXPECT_EQ(svc.stats().cache.setups_built, 1u);
}

TEST(SolveService, DeadlineReturnsBestSoFarWithTimedOutFlag) {
  SolveService svc(small_service_options(2));
  Problem p = make_laplace_27pt(12);
  const auto n = static_cast<std::size_t>(p.a.rows());

  RequestOptions ro;
  ro.t_max = 1000000;
  ro.tol = 1e-300;  // unreachable: only the deadline can stop the solve
  ro.timeout_seconds = 0.15;
  auto fut = svc.submit(p.a, rhs_for(n, 5), ro);
  const SolveResponse resp = fut.get();
  EXPECT_TRUE(resp.timed_out);
  EXPECT_FALSE(resp.stats.converged);
  ASSERT_FALSE(resp.stats.rel_res_history.empty());
  // Best-so-far iterate: the residual improved over the initial guess
  // whenever at least one cycle fit in the budget.
  if (resp.stats.cycles > 0) {
    EXPECT_LT(resp.stats.final_rel_res(), resp.stats.rel_res_history.front());
  }
  EXPECT_EQ(svc.stats().timed_out, 1u);
}

TEST(SolveService, DeadlineExpiredInQueueShortCircuits) {
  SolveService svc(small_service_options(1));
  Problem p = make_laplace_7pt(8);
  const auto n = static_cast<std::size_t>(p.a.rows());

  // Occupy the single worker so the request's deadline lapses while queued.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  svc.pool().post([gate] { gate.wait(); });

  RequestOptions ro;
  ro.timeout_seconds = 1e-6;
  auto fut = svc.submit(p.a, rhs_for(n, 6), ro);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release.set_value();
  const SolveResponse resp = fut.get();
  EXPECT_TRUE(resp.timed_out);
  EXPECT_EQ(resp.stats.cycles, 0);
  EXPECT_DOUBLE_EQ(resp.stats.final_rel_res(), 1.0);
  // The short-circuit path never touches the cache.
  EXPECT_EQ(svc.stats().cache.misses, 0u);
}

TEST(SolveService, BoundedAdmissionQueueRejectsOverload) {
  ServiceOptions so = small_service_options(1);
  so.max_queue = 2;
  SolveService svc(so);
  Problem p = make_laplace_7pt(6);
  const auto n = static_cast<std::size_t>(p.a.rows());

  // Block the pool so admitted requests cannot finish.
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  svc.pool().post([gate] { gate.wait(); });

  auto f1 = svc.submit(p.a, rhs_for(n, 1));
  auto f2 = svc.submit(p.a, rhs_for(n, 2));
  EXPECT_THROW(svc.submit(p.a, rhs_for(n, 3)), ServiceOverloaded);
  EXPECT_EQ(svc.stats().queue_depth, 2u);

  release.set_value();
  EXPECT_LT(f1.get().stats.final_rel_res(), 1e-8);
  EXPECT_LT(f2.get().stats.final_rel_res(), 1e-8);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.rejected, 1u);
  EXPECT_EQ(st.completed, 2u);
  EXPECT_EQ(st.queue_depth, 0u);
}

TEST(SolveService, StatsExportAsJson) {
  SolveService svc(small_service_options());
  Problem p = make_laplace_7pt(6);
  const auto n = static_cast<std::size_t>(p.a.rows());
  svc.submit(p.a, rhs_for(n, 1)).get();

  const std::string json = svc.stats().to_json();
  for (const char* key :
       {"\"submitted\":1", "\"completed\":1", "\"rejected\":0",
        "\"cache\":", "\"setups_built\":1", "\"latency_p50\":",
        "\"latency_p95\":", "\"queue_depth\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

}  // namespace
}  // namespace asyncmg
