// Background setup pipeline tests (DESIGN.md section 13): the resumable
// HierarchyBuilder must be bit-identical to the one-shot build, truncated
// snapshot cycles must match the full hierarchy's set_active_levels cycles,
// a mid-build solve must converge to the requested residual bound, a killed
// background lane must degrade to requester-driven completion (with the
// fallback recorded in telemetry), and scripted replays on an active-grid
// prefix must be deterministic.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "amg/hierarchy.hpp"
#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/setup.hpp"
#include "service/background_setup.hpp"
#include "service/solve_service.hpp"
#include "service/solver_pool.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"

namespace asyncmg {
namespace {

AmgOptions test_amg() {
  AmgOptions o;
  o.precision = PrecisionPolicy{};  // pin the fp64 oracle
  return o;
}

MgOptions test_mg() {
  MgOptions o;
  o.amg = test_amg();
  return o;
}

CsrMatrix fixture_matrix() { return make_laplace_7pt(12).a; }  // 1728 rows

Vector ones_rhs(const CsrMatrix& a) {
  return Vector(static_cast<std::size_t>(a.rows()), 1.0);
}

void expect_identical_matrix(const CsrMatrix& a, const CsrMatrix& b,
                             const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  const auto arp = a.row_ptr(), brp = b.row_ptr();
  const auto aci = a.col_idx(), bci = b.col_idx();
  const auto av = a.values(), bv = b.values();
  for (std::size_t i = 0; i <= static_cast<std::size_t>(a.rows()); ++i) {
    ASSERT_EQ(arp[i], brp[i]) << what << ": row_ptr[" << i << "]";
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(a.nnz()); ++k) {
    ASSERT_EQ(aci[k], bci[k]) << what << ": col_idx[" << k << "]";
    ASSERT_EQ(av[k], bv[k]) << what << ": values[" << k << "]";
  }
}

void expect_identical_hierarchy(const Hierarchy& a, const Hierarchy& b,
                                const std::string& what) {
  ASSERT_EQ(a.num_levels(), b.num_levels()) << what;
  for (std::size_t k = 0; k < a.num_levels(); ++k) {
    const std::string tag = what + " level " + std::to_string(k);
    expect_identical_matrix(a.matrix(k), b.matrix(k), tag + " A");
    if (k + 1 < a.num_levels()) {
      expect_identical_matrix(a.interpolation(k), b.interpolation(k),
                              tag + " P");
    }
  }
}

double rel_res(const MgSetup& s, const Vector& b, const Vector& x) {
  Vector r;
  s.a(0).residual(b, x, r);
  return norm2(r) / norm2(b);
}

// ---------------------------------------------------------------------------
// HierarchyBuilder: resumable steps, snapshots, finish == build
// ---------------------------------------------------------------------------

TEST(HierarchyBuilder, StepwiseFinishMatchesDirectBuild) {
  const CsrMatrix a = fixture_matrix();
  const AmgOptions opts = test_amg();

  HierarchyBuilder builder(a, opts);
  EXPECT_FALSE(builder.done());
  EXPECT_EQ(builder.levels_built(), 1u);
  std::size_t steps = 0;
  Index prev_rows = builder.coarsest_rows();
  while (builder.step()) {
    ++steps;
    EXPECT_EQ(builder.levels_built(), steps + 1);
    EXPECT_LT(builder.coarsest_rows(), prev_rows);
    prev_rows = builder.coarsest_rows();
  }
  EXPECT_GE(steps, 1u);
  const Hierarchy stepped = builder.finish();

  const Hierarchy direct = Hierarchy::build(a, opts);
  expect_identical_hierarchy(direct, stepped, "stepwise vs direct");
}

TEST(HierarchyBuilder, SnapshotPrefixIsStandaloneAndHarmless) {
  const CsrMatrix a = fixture_matrix();
  const AmgOptions opts = test_amg();

  HierarchyBuilder builder(a, opts);
  builder.step();
  builder.step();
  const std::size_t built = builder.levels_built();
  ASSERT_GE(built, 3u);

  for (std::size_t k = 1; k <= built; ++k) {
    const Hierarchy snap = builder.snapshot_prefix(k);
    ASSERT_EQ(snap.num_levels(), k);
    // Coarsest snapshot level validates as coarsest (no interpolation).
    EXPECT_EQ(snap.interpolation(k - 1).rows(), 0);
    for (std::size_t j = 0; j + 1 < k; ++j) {
      EXPECT_GT(snap.interpolation(j).rows(), 0);
    }
  }
  EXPECT_THROW(builder.snapshot_prefix(0), std::invalid_argument);
  EXPECT_THROW(builder.snapshot_prefix(built + 1), std::invalid_argument);

  // Snapshots must not perturb the build.
  expect_identical_hierarchy(Hierarchy::build(a, opts), builder.finish(),
                             "post-snapshot finish");
}

// ---------------------------------------------------------------------------
// Truncated cycles: snapshot setups == set_active_levels on the full setup
// ---------------------------------------------------------------------------

TEST(TruncatedCycle, SnapshotSetupMatchesActiveLevelsBitwise) {
  const CsrMatrix a = fixture_matrix();
  const MgOptions mg = test_mg();
  const Vector b = ones_rhs(a);

  // No precision demotion and no spill: the builder's working fp64 prefix
  // is exactly the full hierarchy's prefix, so the truncated cycle on a
  // snapshot must reproduce the full setup's set_active_levels(k) cycle
  // bit for bit.
  const MgSetup full(Hierarchy::build(a, mg.amg), mg);
  const std::size_t nl = full.num_levels();
  ASSERT_GE(nl, 3u);

  HierarchyBuilder builder(a, mg.amg);
  while (builder.levels_built() < nl && builder.step()) {
  }

  for (std::size_t k = 1; k < nl; ++k) {
    MgOptions trunc_mg = mg;
    trunc_mg.max_dense_coarse = 0;  // temporary coarsest is smoothed only
    const MgSetup snap(builder.snapshot_prefix(k), trunc_mg);

    Vector x_snap(b.size(), 0.0);
    Vector x_full(b.size(), 0.0);
    MultiplicativeMg mg_snap(snap);
    MultiplicativeMg mg_full(full);
    mg_full.set_active_levels(k);
    EXPECT_EQ(mg_full.active_levels(), k);
    for (int t = 0; t < 3; ++t) {
      mg_snap.cycle(b, x_snap);
      mg_full.cycle(b, x_full);
    }
    for (std::size_t i = 0; i < x_snap.size(); ++i) {
      ASSERT_EQ(x_snap[i], x_full[i]) << "k=" << k << " entry " << i;
    }
    // Even one-level (smoothing only) truncation makes progress.
    EXPECT_LT(rel_res(snap, b, x_snap), 1.0) << "k=" << k;
  }

  // Restoring the full depth restores the full cycle exactly.
  Vector x_ref(b.size(), 0.0);
  Vector x_restored(b.size(), 0.0);
  MultiplicativeMg mg_ref(full);
  MultiplicativeMg mg_restored(full);
  mg_restored.set_active_levels(1);
  mg_restored.set_active_levels(nl);
  for (int t = 0; t < 3; ++t) {
    mg_ref.cycle(b, x_ref);
    mg_restored.cycle(b, x_restored);
  }
  for (std::size_t i = 0; i < x_ref.size(); ++i) {
    ASSERT_EQ(x_ref[i], x_restored[i]) << "entry " << i;
  }

  MultiplicativeMg mg_bad(full);
  EXPECT_THROW(mg_bad.set_active_levels(0), std::invalid_argument);
  EXPECT_THROW(mg_bad.set_active_levels(nl + 1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// BackgroundSetup: cooperative mid-build solves, lane death, telemetry
// ---------------------------------------------------------------------------

TEST(BackgroundSetup, CooperativeMidBuildSolveConvergesToBound) {
  const CsrMatrix a = fixture_matrix();
  const Vector b = ones_rhs(a);
  BackgroundSetupOptions bo;
  bo.mg = test_mg();  // no pool: the "requester" below does every step

  auto bg = std::make_shared<BackgroundSetup>(a, bo);
  EXPECT_EQ(bg->ready_levels(), 1u);
  EXPECT_FALSE(bg->complete());

  // The solve_with_background loop: advance one step, deepen to the ready
  // prefix, cycle. Convergence must reach the bound even though early
  // cycles run on truncated hierarchies.
  const double tol = 1e-8;
  Vector x(b.size(), 0.0);
  std::shared_ptr<const MgSetup> setup = bg->snapshot();
  auto mg = std::make_unique<MultiplicativeMg>(*setup);
  std::size_t partial_cycles = 0;
  std::size_t prev_ready = bg->ready_levels();
  double rr = 1.0;
  int cycles = 0;
  for (; cycles < 100; ++cycles) {
    const std::size_t ready = bg->advance();
    EXPECT_GE(ready, prev_ready);  // ready depth is monotone
    prev_ready = ready;
    if (ready > setup->num_levels()) {
      setup = bg->snapshot();
      mg = std::make_unique<MultiplicativeMg>(*setup);
    }
    if (setup != bg->full()) ++partial_cycles;
    mg->cycle(b, x);
    rr = rel_res(*setup, b, x);
    if (rr < tol) break;
  }
  EXPECT_LT(rr, tol) << "no convergence in " << cycles << " cycles";
  EXPECT_GE(partial_cycles, 1u);  // the build could not finish instantly
  EXPECT_FALSE(bg->fell_back());

  // The finished build is bit-identical to a direct one.
  const std::shared_ptr<const MgSetup> full = bg->wait_full();
  ASSERT_TRUE(full != nullptr);
  EXPECT_TRUE(bg->complete());
  expect_identical_hierarchy(Hierarchy::build(a, bo.mg.amg),
                             full->hierarchy(), "background vs direct");
  EXPECT_FALSE(full->coarse_solver().empty());  // real coarsest has its LU
}

TEST(BackgroundSetup, KilledLaneFallsBackToRequesterAndRecordsTelemetry) {
  const CsrMatrix a = fixture_matrix();
  TelemetrySink sink;
  SolverPool pool(2);
  BackgroundSetupOptions bo;
  bo.mg = test_mg();
  bo.pool = &pool;
  bo.telemetry = &sink;
  bo.fail_after_levels = 1;  // the lane dies before building anything

  auto bg = std::make_shared<BackgroundSetup>(a, bo);
  bg->start();
  // Requester-side completion despite the dead lane (Criterion-2-style
  // recovery: progress never depends on one lane surviving).
  const std::shared_ptr<const MgSetup> full = bg->wait_full();
  ASSERT_TRUE(full != nullptr);
  pool.wait_idle();  // the lane task has certainly run (and died) by now
  EXPECT_TRUE(bg->fell_back());
  expect_identical_hierarchy(Hierarchy::build(a, bo.mg.amg),
                             full->hierarchy(), "fallback vs direct");

  // Telemetry: one level-ready event per level, in order, plus the
  // fallback marker from the dying lane.
  std::vector<std::int64_t> ready_levels;
  std::size_t fallbacks = 0;
  for (const DrainedEvent& de : sink.drain()) {
    if (de.ev.kind == EventKind::kLevelReady) {
      ready_levels.push_back(de.ev.a);
      EXPECT_GT(de.ev.b, 0) << "level " << de.ev.a << " has no rows";
    } else if (de.ev.kind == EventKind::kSetupFallback) {
      ++fallbacks;
      EXPECT_GE(de.ev.a, 1);
    }
  }
  ASSERT_EQ(ready_levels.size(), full->num_levels());
  for (std::size_t i = 0; i < ready_levels.size(); ++i) {
    EXPECT_EQ(ready_levels[i], static_cast<std::int64_t>(i));
  }
  EXPECT_EQ(fallbacks, 1u);
  EXPECT_EQ(sink.metrics().counter("setup.levels_ready").value(),
            static_cast<std::uint64_t>(full->num_levels()));
  EXPECT_EQ(sink.metrics().counter("setup.fallbacks").value(), 1u);
}

// ---------------------------------------------------------------------------
// SolveService integration: cold requests on partial hierarchies
// ---------------------------------------------------------------------------

TEST(ServiceBackgroundSetup, ColdRequestCyclesPartialThenWarmsCache) {
  const CsrMatrix a = fixture_matrix();
  const Vector b = ones_rhs(a);

  TelemetrySink sink;
  ServiceOptions so;
  so.num_threads = 2;
  so.cache.mg = test_mg();
  so.telemetry = &sink;
  so.background_setup = true;
  // Kill the lane immediately: every builder step then runs on the
  // requester between cycles, so the partial-solve path is deterministic
  // rather than a race against the lane's build speed.
  so.background_fail_after_levels = 1;
  SolveService svc(so);

  SolveResponse cold = svc.submit(a, b).get();
  EXPECT_TRUE(cold.stats.converged);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(cold.partial_setup);
  EXPECT_GE(cold.partial_cycles, 1u);
  EXPECT_LE(cold.partial_cycles, static_cast<std::size_t>(cold.stats.cycles));
  EXPECT_LT(cold.stats.rel_res_history.back(), 1e-8);

  // The detached finisher registers the full setup; then a second request
  // for the same matrix is a plain warm hit with no partial cycles.
  svc.pool().wait_idle();
  SolveResponse warm = svc.submit(a, b).get();
  EXPECT_TRUE(warm.stats.converged);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_FALSE(warm.partial_setup);
  EXPECT_EQ(warm.partial_cycles, 0u);

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.partial_solves, 1u);
  EXPECT_EQ(st.partial_cycles, cold.partial_cycles);
  EXPECT_EQ(st.setup_fallbacks, 1u);
  EXPECT_EQ(st.cache.hits, 1u);
  EXPECT_EQ(st.cache.setups_built, 1u);

  const std::string json = svc.stats_json();
  EXPECT_NE(json.find("\"background\":{"), std::string::npos);
  EXPECT_NE(json.find("\"partial_solves\":1"), std::string::npos);
  EXPECT_NE(json.find("\"setup_fallbacks\":1"), std::string::npos);
}

TEST(ServiceBackgroundSetup, HealthyLaneColdRequestConverges) {
  // Free-running lane (no fault injection): the request must converge and
  // the finished setup must land in the cache, whatever interleaving the
  // scheduler picked.
  const CsrMatrix a = fixture_matrix();
  const Vector b = ones_rhs(a);
  ServiceOptions so;
  so.num_threads = 2;
  so.cache.mg = test_mg();
  so.background_setup = true;
  SolveService svc(so);

  // Generous cycle budget: a slow lane (sanitizer builds, loaded machines)
  // keeps the requester on weak truncated hierarchies longer, and each
  // partial cycle contracts less than a full one.
  RequestOptions req;
  req.t_max = 400;
  SolveResponse resp = svc.submit(a, b, req).get();
  EXPECT_TRUE(resp.stats.converged);
  EXPECT_FALSE(resp.cache_hit);
  EXPECT_LT(resp.stats.rel_res_history.back(), 1e-8);

  svc.pool().wait_idle();
  EXPECT_EQ(svc.stats().cache.setups_built, 1u);
  EXPECT_EQ(svc.stats().setup_fallbacks, 0u);
  EXPECT_TRUE(svc.submit(a, b).get().cache_hit);
}

// ---------------------------------------------------------------------------
// Scripted replays on an active-grid prefix are deterministic
// ---------------------------------------------------------------------------

TEST(ScriptedTruncation, ActiveGridPrefixReplayIsDeterministic) {
  const CsrMatrix a = fixture_matrix();
  const MgSetup setup(Hierarchy::build(a, test_amg()), test_mg());
  const AdditiveCorrector corr(setup, AdditiveOptions{});
  const Vector b = ones_rhs(a);

  RuntimeOptions ro;
  ro.mode = ExecMode::kScripted;
  ro.t_max = 8;
  ro.num_threads = 4;
  ro.seed = 5;
  ro.record_trace = true;
  ro.check_invariants = true;
  ro.active_grids = 2;  // cycle only the first two grids (build-in-progress)

  Vector x1(b.size(), 0.0);
  const RuntimeResult r1 = run_shared_memory(corr, b, x1, ro);
  Vector x2(b.size(), 0.0);
  const RuntimeResult r2 = run_shared_memory(corr, b, x2, ro);

  EXPECT_EQ(r1.final_rel_res, r2.final_rel_res);
  EXPECT_EQ(r1.instants, r2.instants);
  ASSERT_EQ(r1.corrections.size(), r2.corrections.size());
  EXPECT_EQ(r1.corrections, r2.corrections);
  ASSERT_EQ(r1.trace.size(), r2.trace.size());
  for (std::size_t i = 0; i < r1.trace.size(); ++i) {
    EXPECT_EQ(r1.trace[i].grid, r2.trace[i].grid);
    EXPECT_EQ(r1.trace[i].seconds, r2.trace[i].seconds);
  }
  for (std::size_t i = 0; i < x1.size(); ++i) {
    ASSERT_EQ(x1[i], x2[i]) << "entry " << i;
  }
  // Teams exist only for the active prefix; each of those grids corrects.
  ASSERT_EQ(r1.corrections.size(), ro.active_grids);
  for (std::size_t g = 0; g < r1.corrections.size(); ++g) {
    EXPECT_GT(r1.corrections[g], 0) << "grid " << g;
  }
  EXPECT_LT(r1.final_rel_res, 1.0);
}

}  // namespace
}  // namespace asyncmg
