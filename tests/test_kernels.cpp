// Solve-phase kernel engine properties: SELL-C-sigma and the fused kernels
// are bit-identical to their CSR / two-pass references on random matrices
// and at every thread count; the workspace overloads reproduce the
// allocating forms exactly; a whole engine-enabled multigrid cycle matches
// the reference path bitwise; and the cycle loop performs zero heap
// allocations (counting global operator new).

#include <gtest/gtest.h>
#include <omp.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <tuple>

#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/pcg.hpp"
#include "multigrid/setup.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/vec.hpp"
#include "util/partition.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------
// Counting allocator: global operator new/delete instrumented with an
// atomic counter so the zero-allocation contract of the cycle loop is a
// hard assertion, not a claim. Counting is enabled only inside the
// measurement window; the hooks otherwise just forward to malloc/free
// (which sanitizers still intercept).
// ---------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::uint64_t> g_alloc_count{0};

void* counted_alloc(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return std::malloc(size == 0 ? 1 : size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace asyncmg {
namespace {

void expect_bitwise(const Vector& ref, const Vector& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << what << " differs at " << i;
  }
}

CsrMatrix random_csr(Index rows, Index cols, double fill, Rng& rng) {
  std::vector<Triplet> trips;
  const auto target = static_cast<std::size_t>(
      fill * static_cast<double>(rows) * static_cast<double>(cols));
  for (std::size_t k = 0; k < target; ++k) {
    Triplet t;
    t.row = static_cast<Index>(rng.uniform_int(0, rows - 1));
    t.col = static_cast<Index>(rng.uniform_int(0, cols - 1));
    t.value = rng.uniform(-2.0, 2.0);
    trips.push_back(t);
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(trips));
}

// ---------------------------------------------------------------------
// SELL-C-sigma structure and bitwise kernel identity vs CSR.
// ---------------------------------------------------------------------

TEST(SellFormat, PermIsValidAndUniformRowsKeepIdentity) {
  // Uniform row lengths (a diagonal matrix) with rows a multiple of C:
  // stable sort must keep the identity permutation and produce no padding.
  std::vector<Triplet> trips;
  for (Index i = 0; i < 64; ++i) trips.push_back({i, i, 1.0 + i});
  const CsrMatrix d64 = CsrMatrix::from_triplets(64, 64, std::move(trips));
  const SellMatrix sd64 = SellMatrix::from_csr(d64, 8, 64);
  EXPECT_EQ(sd64.padded_entries(), 0u);
  for (Index i = 0; i < 64; ++i) EXPECT_EQ(sd64.perm()[i], i);

  // Rows not a multiple of C: only the tail chunk's pad slots add padding
  // (one lane-column per pad slot here), and they carry the -1 sentinel.
  const Index n = 70;
  trips.clear();
  for (Index i = 0; i < n; ++i) trips.push_back({i, i, 1.0 + i});
  const CsrMatrix d = CsrMatrix::from_triplets(n, n, std::move(trips));
  const SellMatrix sd = SellMatrix::from_csr(d, 8, 64);
  EXPECT_EQ(sd.padded_entries(), sd.perm().size() - static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) EXPECT_EQ(sd.perm()[i], i);
  for (std::size_t s = static_cast<std::size_t>(n); s < sd.perm().size(); ++s) {
    EXPECT_EQ(sd.perm()[s], -1);
  }

  // Ragged random matrix: perm must still be a permutation of all rows.
  Rng rng(7);
  const CsrMatrix a = random_csr(101, 101, 0.08, rng);
  const SellMatrix sa = SellMatrix::from_csr(a, 8, 16);
  std::vector<int> seen(101, 0);
  for (Index p : sa.perm()) {
    if (p >= 0) seen[static_cast<std::size_t>(p)]++;
  }
  for (int c : seen) EXPECT_EQ(c, 1);
  EXPECT_EQ(sa.nnz(), a.nnz());
}

class SellKernelIdentity
    : public ::testing::TestWithParam<std::tuple<Index, Index>> {};

TEST_P(SellKernelIdentity, MatchesCsrBitwise) {
  const auto [chunk, sigma] = GetParam();
  for (std::uint64_t seed : {11u, 52u}) {
    Rng rng(seed);
    const Index n = static_cast<Index>(rng.uniform_int(60, 220));
    // Low fill leaves deliberate empty rows; their outputs must still be
    // written (y = 0, r = b, x_out = x_in + d.*b).
    const CsrMatrix a = random_csr(n, n, 0.05, rng);
    const SellMatrix s = SellMatrix::from_csr(a, chunk, sigma);
    const auto un = static_cast<std::size_t>(n);
    const Vector x = random_vector(un, rng);
    const Vector b = random_vector(un, rng);
    const Vector d = random_vector(un, rng, 0.1, 1.0);

    Vector ref, got;
    a.spmv(x, ref);
    s.spmv(x, got);
    expect_bitwise(ref, got, "spmv");

    a.residual(b, x, ref);
    s.residual(b, x, got);
    expect_bitwise(ref, got, "residual");

    // fused_diag_sweep == residual then x_out = x_in + d .* r.
    Vector r;
    a.residual(b, x, r);
    ref.resize(un);
    for (std::size_t i = 0; i < un; ++i) ref[i] = x[i] + d[i] * r[i];
    s.fused_diag_sweep(d, b, x, got);
    expect_bitwise(ref, got, "fused_diag_sweep");

    // fused_sub_spmv == spmv then tmp = r - tmp (spmv accumulation order).
    a.spmv(x, ref);
    for (std::size_t i = 0; i < un; ++i) ref[i] = b[i] - ref[i];
    s.fused_sub_spmv(b, x, got);
    expect_bitwise(ref, got, "fused_sub_spmv");
  }
}

INSTANTIATE_TEST_SUITE_P(
    ChunkSigma, SellKernelIdentity,
    ::testing::Values(std::tuple<Index, Index>{4, 4},
                      std::tuple<Index, Index>{8, 1},   // sigma clamps to C
                      std::tuple<Index, Index>{8, 32},
                      std::tuple<Index, Index>{16, 1024},  // full-matrix sort
                      std::tuple<Index, Index>{64, 64}),
    [](const ::testing::TestParamInfo<std::tuple<Index, Index>>& i) {
      std::string name = "C";
      name += std::to_string(std::get<0>(i.param));
      name += "_S";
      name += std::to_string(std::get<1>(i.param));
      return name;
    });

// ---------------------------------------------------------------------
// CSR fused kernels vs their two-pass references, serial and OpenMP, at
// several thread counts. The large matrix clears the solve-kernel OpenMP
// cutoff so the parallel paths actually run.
// ---------------------------------------------------------------------

TEST(FusedKernels, BitIdenticalAtEveryThreadCount) {
  const int max_threads = omp_get_max_threads();
  for (Index n : {300, 3000}) {
    Rng rng(19);
    const CsrMatrix a = random_csr(n, n, n > 1000 ? 0.004 : 0.05, rng);
    const SellMatrix s = SellMatrix::from_csr(a, 8, 256);
    const auto un = static_cast<std::size_t>(n);
    const Vector x = random_vector(un, rng);
    const Vector b = random_vector(un, rng);
    const Vector d = random_vector(un, rng, 0.1, 1.0);

    // Serial references (the pre-engine arithmetic).
    Vector r_ref;
    a.residual(b, x, r_ref);
    const double nsq_ref = dot(r_ref, r_ref);
    Vector sweep_ref(un);
    for (std::size_t i = 0; i < un; ++i) {
      sweep_ref[i] = x[i] + d[i] * r_ref[i];
    }
    Vector sub_ref;
    a.spmv(x, sub_ref);
    for (std::size_t i = 0; i < un; ++i) sub_ref[i] = b[i] - sub_ref[i];

    Vector got, r_got;
    fused_diag_sweep(a, d, b, x, got);
    expect_bitwise(sweep_ref, got, "csr fused_diag_sweep");
    fused_sub_spmv(a, b, x, got);
    expect_bitwise(sub_ref, got, "csr fused_sub_spmv");
    EXPECT_EQ(nsq_ref, fused_residual_norm_sq(a, b, x, r_got));
    expect_bitwise(r_ref, r_got, "csr fused_residual_norm_sq r");

    for (int nt : {1, 2, 4}) {
      if (nt > max_threads) continue;
      omp_set_num_threads(nt);
      fused_diag_sweep_omp(a, d, b, x, got);
      expect_bitwise(sweep_ref, got, "csr fused_diag_sweep_omp");
      fused_sub_spmv_omp(a, b, x, got);
      expect_bitwise(sub_ref, got, "csr fused_sub_spmv_omp");
      EXPECT_EQ(nsq_ref, fused_residual_norm_sq_omp(a, b, x, r_got));
      expect_bitwise(r_ref, r_got, "csr fused_residual_norm_sq_omp r");

      s.spmv_omp(x, got);
      Vector tmp;
      a.spmv(x, tmp);
      expect_bitwise(tmp, got, "sell spmv_omp");
      s.residual_omp(b, x, got);
      expect_bitwise(r_ref, got, "sell residual_omp");
      s.fused_diag_sweep_omp(d, b, x, got);
      expect_bitwise(sweep_ref, got, "sell fused_diag_sweep_omp");
      s.fused_sub_spmv_omp(b, x, got);
      expect_bitwise(sub_ref, got, "sell fused_sub_spmv_omp");
    }
    omp_set_num_threads(max_threads);
  }
}

// ---------------------------------------------------------------------
// Smoother workspace overloads: bitwise equal to the allocating forms for
// every smoother family (Jacobi fused path, hybrid block substitution,
// triangular transpose, symmetrized application).
// ---------------------------------------------------------------------

class SmootherWsIdentity : public ::testing::TestWithParam<SmootherType> {};

TEST_P(SmootherWsIdentity, MatchesAllocatingForms) {
  const SmootherType st = GetParam();
  Problem prob = make_laplace_27pt(8);
  SmootherOptions so;
  so.type = st;
  so.omega = 0.9;
  so.num_blocks = 3;
  const Smoother sm(prob.a, so);
  Rng rng(23);
  const auto n = static_cast<std::size_t>(prob.a.rows());
  const Vector b = random_vector(n, rng);
  const Vector x0 = random_vector(n, rng);

  Vector x_ref = x0, x_ws = x0;
  Vector s1, s2, s3;
  sm.sweep(b, x_ref);
  sm.sweep_ws(b, x_ws, s1);
  expect_bitwise(x_ref, x_ws, "sweep_ws");

  x_ref = x0;
  x_ws = x0;
  sm.sweep_transpose(b, x_ref);
  sm.sweep_transpose_ws(b, x_ws, s1, s2);
  expect_bitwise(x_ref, x_ws, "sweep_transpose_ws");

  Vector e_ref, e_ws;
  sm.smooth_zero(b, e_ref, 3);
  sm.smooth_zero_ws(b, e_ws, 3, s1);
  expect_bitwise(e_ref, e_ws, "smooth_zero_ws");

  sm.apply_symmetrized(b, e_ref);
  sm.apply_symmetrized_ws(b, e_ws, s1, s2, s3);
  expect_bitwise(e_ref, e_ws, "apply_symmetrized_ws");
}

INSTANTIATE_TEST_SUITE_P(Types, SmootherWsIdentity,
                         ::testing::Values(SmootherType::kWeightedJacobi,
                                           SmootherType::kL1Jacobi,
                                           SmootherType::kHybridJGS,
                                           SmootherType::kL1HybridJGS),
                         [](const ::testing::TestParamInfo<SmootherType>& i) {
                           std::string name = smoother_name(i.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// ---------------------------------------------------------------------
// Whole-cycle identity: the engine path (fused kernels, SELL levels,
// workspace buffers) must match the reference path bitwise, cycle for
// cycle, for every cycle shape and thread count.
// ---------------------------------------------------------------------

struct CycleConfig {
  SmootherType smoother;
  bool symmetric;
  int pre, post, gamma;
  const char* name;
};

class EngineCycleIdentity : public ::testing::TestWithParam<CycleConfig> {};

TEST_P(EngineCycleIdentity, FusedMatchesReferenceBitwise) {
  const CycleConfig cfg = GetParam();
  Problem prob = make_laplace_27pt(13);  // 2197 rows: OpenMP paths engage
  MgOptions mo;
  mo.smoother.type = cfg.smoother;
  mo.smoother.omega = 0.9;
  mo.smoother.num_blocks = 3;
  mo.engine.sell_min_rows = 1;  // convert every eligible level
  MgSetup s(std::move(prob.a), mo);
  if (cfg.smoother == SmootherType::kWeightedJacobi ||
      cfg.smoother == SmootherType::kL1Jacobi) {
    EXPECT_NE(s.sell(0), nullptr) << "finest level should be SELL";
    EXPECT_EQ(s.sell(s.num_levels() - 1), nullptr) << "coarsest stays CSR";
  } else {
    EXPECT_EQ(s.sell(0), nullptr) << "triangular smoothers stay CSR";
  }

  Rng rng(31);
  const Vector b = random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);

  // Baseline: reference path, single thread.
  const int max_threads = omp_get_max_threads();
  omp_set_num_threads(1);
  MultiplicativeMg ref_mg(s, cfg.symmetric, cfg.pre, cfg.post, cfg.gamma);
  ref_mg.set_fused(false);
  Vector x_ref(b.size(), 0.0);
  for (int t = 0; t < 3; ++t) ref_mg.cycle(b, x_ref);

  for (int nt : {1, 4}) {
    if (nt > max_threads) continue;
    omp_set_num_threads(nt);
    for (bool fused : {false, true}) {
      MultiplicativeMg mg(s, cfg.symmetric, cfg.pre, cfg.post, cfg.gamma);
      mg.set_fused(fused);
      Vector x(b.size(), 0.0);
      for (int t = 0; t < 3; ++t) mg.cycle(b, x);
      expect_bitwise(x_ref, x,
                     fused ? "fused cycle vs reference" : "reference cycle");
    }
  }

  // solve(): the fused residual-norm must reproduce the reference history
  // bitwise (fused_residual_norm_sq == residual + dot identity).
  omp_set_num_threads(max_threads);
  MultiplicativeMg a_mg(s, cfg.symmetric, cfg.pre, cfg.post, cfg.gamma);
  MultiplicativeMg b_mg(s, cfg.symmetric, cfg.pre, cfg.post, cfg.gamma);
  a_mg.set_fused(true);
  b_mg.set_fused(false);
  Vector xa(b.size(), 0.0), xb(b.size(), 0.0);
  const SolveStats sa = a_mg.solve(b, xa, 5);
  const SolveStats sb = b_mg.solve(b, xb, 5);
  ASSERT_EQ(sa.rel_res_history.size(), sb.rel_res_history.size());
  for (std::size_t i = 0; i < sa.rel_res_history.size(); ++i) {
    EXPECT_EQ(sa.rel_res_history[i], sb.rel_res_history[i]) << "history " << i;
  }
  expect_bitwise(xb, xa, "solve x");
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineCycleIdentity,
    ::testing::Values(
        CycleConfig{SmootherType::kWeightedJacobi, false, 1, 1, 1, "V11"},
        CycleConfig{SmootherType::kWeightedJacobi, true, 1, 1, 1, "SymV11"},
        CycleConfig{SmootherType::kWeightedJacobi, false, 0, 2, 1, "V02"},
        CycleConfig{SmootherType::kWeightedJacobi, false, 1, 1, 2, "W11"},
        CycleConfig{SmootherType::kL1Jacobi, false, 2, 1, 1, "L1V21"},
        CycleConfig{SmootherType::kL1HybridJGS, false, 1, 1, 1, "JGSV11"},
        CycleConfig{SmootherType::kL1HybridJGS, true, 1, 1, 1, "JGSSymV11"}),
    [](const ::testing::TestParamInfo<CycleConfig>& i) {
      return i.param.name;
    });

// ---------------------------------------------------------------------
// PCG workspace overload: identical iterates and history.
// ---------------------------------------------------------------------

TEST(PcgWorkspace, MatchesAllocatingOverload) {
  Problem prob = make_laplace_7pt(10);
  MgOptions mo;
  mo.engine.sell_min_rows = 1;
  MgSetup s(std::move(prob.a), mo);
  Rng rng(37);
  const Vector b = random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);
  PcgOptions po;
  po.max_iterations = 12;
  po.tol = 0.0;
  const Preconditioner pre =
      make_mg_preconditioner(s, MgPreconditionerKind::kSymmetricVCycle);

  Vector xa(b.size(), 0.0), xb(b.size(), 0.0);
  const SolveStats sa = pcg_solve(s.a(0), b, xa, pre, po);
  PcgWorkspace ws;
  const SolveStats sb = pcg_solve(s.a(0), b, xb, pre, po, ws);
  ASSERT_EQ(sa.rel_res_history.size(), sb.rel_res_history.size());
  for (std::size_t i = 0; i < sa.rel_res_history.size(); ++i) {
    EXPECT_EQ(sa.rel_res_history[i], sb.rel_res_history[i]);
  }
  expect_bitwise(xa, xb, "pcg x");
}

// ---------------------------------------------------------------------
// nnz-balanced partitioning.
// ---------------------------------------------------------------------

TEST(NnzBalancedChunks, CoversContiguouslyAndBalances) {
  Rng rng(41);
  const CsrMatrix a = random_csr(400, 400, 0.03, rng);
  const std::span<const std::int32_t> prefix(a.row_ptr().data(),
                                             a.row_ptr().size());
  const auto total = static_cast<std::size_t>(a.nnz());
  std::size_t max_row = 0;
  for (Index i = 0; i < a.rows(); ++i) {
    max_row = std::max(max_row, static_cast<std::size_t>(a.row_ptr()[i + 1] -
                                                         a.row_ptr()[i]));
  }
  for (std::size_t parts : {1u, 3u, 7u, 16u}) {
    const std::vector<Range> chunks = nnz_balanced_chunks(prefix, parts);
    ASSERT_EQ(chunks.size(), parts);
    EXPECT_EQ(chunks.front().begin, 0u);
    EXPECT_EQ(chunks.back().end, static_cast<std::size_t>(a.rows()));
    for (std::size_t p = 0; p + 1 < parts; ++p) {
      EXPECT_EQ(chunks[p].end, chunks[p + 1].begin);
    }
    for (std::size_t p = 0; p < parts; ++p) {
      EXPECT_EQ(chunks[p], nnz_balanced_chunk(prefix, parts, p));
      const auto w = static_cast<std::size_t>(
          prefix[chunks[p].end] - prefix[chunks[p].begin]);
      // Each chunk's work is within one max-row of the ideal slice.
      EXPECT_LE(w, total / parts + max_row) << "parts=" << parts << " p=" << p;
    }
  }
}

TEST(NnzBalancedChunks, EmptyPrefixFallsBackToStatic) {
  // All-empty rows: weight gives no information, split must degrade to the
  // static partition instead of putting every row in one chunk.
  const std::vector<std::int32_t> prefix(101, 0);  // 100 rows, 0 nnz
  for (std::size_t parts : {1u, 4u}) {
    for (std::size_t p = 0; p < parts; ++p) {
      EXPECT_EQ(nnz_balanced_chunk(prefix, parts, p),
                static_chunk(100, parts, p));
    }
  }
}

// ---------------------------------------------------------------------
// Format heuristic.
// ---------------------------------------------------------------------

TEST(LevelPrefersSell, Heuristic) {
  KernelEngineOptions o;  // defaults: use_sell, min_rows = 4096
  EXPECT_TRUE(level_prefers_sell(o, 1 << 12, true, false));
  EXPECT_FALSE(level_prefers_sell(o, (1 << 12) - 1, true, false))
      << "small levels stay CSR";
  EXPECT_FALSE(level_prefers_sell(o, 1 << 20, false, false))
      << "triangular smoothers stay CSR";
  EXPECT_FALSE(level_prefers_sell(o, 1 << 20, true, true))
      << "coarsest (direct solve) stays CSR";
  o.use_sell = false;
  EXPECT_FALSE(level_prefers_sell(o, 1 << 20, true, false));
}

// ---------------------------------------------------------------------
// Zero-allocation cycle loop: after one warm-up cycle, N further cycles
// must not touch the heap at all (workspace arena + fused kernels +
// in-place smoother sweeps).
// ---------------------------------------------------------------------

TEST(Workspace, CycleLoopIsAllocationFree) {
  Problem prob = make_laplace_27pt(10);
  MgOptions mo;
  mo.engine.sell_min_rows = 1;  // SELL levels included in the window
  MgSetup s(std::move(prob.a), mo);
  Rng rng(43);
  const Vector b = random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);
  MultiplicativeMg mg(s, /*symmetric=*/true);
  Vector x(b.size(), 0.0);
  mg.cycle(b, x);  // warm-up: workspace resizes settle here

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  for (int t = 0; t < 10; ++t) mg.cycle(b, x);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "heap allocations inside the cycle loop";

  EXPECT_GT(mg.workspace().bytes(), 0u);
}

TEST(Workspace, PcgLoopIsAllocationFree) {
  Problem prob = make_laplace_7pt(10);
  MgOptions mo;
  MgSetup s(std::move(prob.a), mo);
  Rng rng(47);
  const Vector b = random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);
  PcgOptions po;
  po.tol = 0.0;
  const Preconditioner pre =
      make_mg_preconditioner(s, MgPreconditionerKind::kSymmetricVCycle);
  Vector x(b.size(), 0.0);
  PcgWorkspace ws;
  po.max_iterations = 2;
  pcg_solve(s.a(0), b, x, pre, po, ws);  // warm-up

  x.assign(b.size(), 0.0);
  po.max_iterations = 8;
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  pcg_solve(s.a(0), b, x, pre, po, ws);
  g_count_allocs.store(false);
  // The stats history is reserved once up front; everything else in the
  // iteration must be allocation-free.
  EXPECT_LE(g_alloc_count.load(), 1u)
      << "heap allocations inside the PCG loop";
}

}  // namespace
}  // namespace asyncmg
