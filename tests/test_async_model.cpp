// Tests for the Section III asynchronous-model simulators.

#include <gtest/gtest.h>

#include <cmath>

#include "async/model.hpp"
#include "mesh/problems.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(AdditiveKind kind, Index n = 10) {
    Problem prob = make_laplace_7pt(n);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = kind;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
    Rng rng(11);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
  Vector b;
};

double sync_additive_rel_res(Fixture& f, int cycles) {
  Vector x(f.b.size(), 0.0);
  AdditiveMg mg(*f.setup, f.corr->options());
  return mg.solve(f.b, x, cycles).final_rel_res();
}

double model_rel_res(Fixture& f, AsyncModelKind kind, double alpha, int delay,
                     std::uint64_t seed, int updates = 20) {
  Vector x(f.b.size(), 0.0);
  AsyncModelOptions opts;
  opts.kind = kind;
  opts.alpha = alpha;
  opts.max_delay = delay;
  opts.updates_per_grid = updates;
  opts.seed = seed;
  return run_async_model(*f.corr, f.b, x, opts).final_rel_res;
}

// With alpha = 1 every grid updates at every instant and delta = 0 forces
// current reads, so all three models reduce to the synchronous additive
// method: one model instant == one additive V-cycle.
TEST(AsyncModel, Alpha1Delta0MatchesSynchronousMultadd) {
  Fixture f(AdditiveKind::kMultadd);
  const double sync = sync_additive_rel_res(f, 20);
  for (AsyncModelKind kind :
       {AsyncModelKind::kSemiAsync, AsyncModelKind::kFullAsyncSolution,
        AsyncModelKind::kFullAsyncResidual}) {
    const double async_rr = model_rel_res(f, kind, 1.0, 0, /*seed=*/3);
    EXPECT_NEAR(async_rr / sync, 1.0, 1e-6)
        << async_model_name(kind) << ": " << async_rr << " vs " << sync;
  }
}

TEST(AsyncModel, Alpha1Delta0MatchesSynchronousAfacx) {
  Fixture f(AdditiveKind::kAfacx);
  const double sync = sync_additive_rel_res(f, 20);
  const double rr =
      model_rel_res(f, AsyncModelKind::kSemiAsync, 1.0, 0, /*seed=*/3);
  EXPECT_NEAR(rr / sync, 1.0, 1e-6);
}

// Lower update probabilities slow convergence but must not destroy it
// (Figure 1's message).
TEST(AsyncModel, SemiAsyncConvergesWithSmallAlpha) {
  Fixture f(AdditiveKind::kMultadd);
  const double rr = model_rel_res(f, AsyncModelKind::kSemiAsync, 0.1, 0,
                                  /*seed=*/5);
  EXPECT_LT(rr, 1e-2);
  // It should stay in the same decade as the synchronous method rather
  // than collapse (individual seeds can land slightly above or below it).
  const double sync = sync_additive_rel_res(f, 20);
  EXPECT_LT(rr, sync * 100.0);
  EXPECT_GT(rr, sync * 0.01);
}

// Larger delays slow convergence (Figure 2's message); with a small delay
// the method still converges well, and with large delays the residual-based
// version degrades more gracefully than the solution-based one (the paper's
// second observation in Fig. 2).
TEST(AsyncModel, FullAsyncDelayBehaviour) {
  Fixture f(AdditiveKind::kMultadd);
  const double sol1 = model_rel_res(f, AsyncModelKind::kFullAsyncSolution,
                                    0.1, 1, /*seed=*/7);
  const double res1 = model_rel_res(f, AsyncModelKind::kFullAsyncResidual,
                                    0.1, 1, /*seed=*/7);
  EXPECT_LT(sol1, 0.1);
  EXPECT_LT(res1, 0.1);
  // Large delays degrade but stay bounded, and the mean over a few seeds of
  // the residual-based version beats the solution-based one.
  double sol8 = 0.0, res8 = 0.0;
  const int kSeeds = 5;
  for (int s = 0; s < kSeeds; ++s) {
    sol8 += model_rel_res(f, AsyncModelKind::kFullAsyncSolution, 0.1, 8,
                          /*seed=*/100 + s);
    res8 += model_rel_res(f, AsyncModelKind::kFullAsyncResidual, 0.1, 8,
                          /*seed=*/100 + s);
  }
  sol8 /= kSeeds;
  res8 /= kSeeds;
  EXPECT_LT(res8, sol8);
  EXPECT_LT(sol8, 10.0);
  // And convergence degrades monotonically-ish with the delay.
  EXPECT_LT(sol1, sol8);
  EXPECT_LT(res1, res8);
}

TEST(AsyncModel, DeterministicGivenSeed) {
  Fixture f(AdditiveKind::kMultadd);
  const double a = model_rel_res(f, AsyncModelKind::kFullAsyncSolution, 0.3,
                                 3, /*seed=*/42);
  const double b = model_rel_res(f, AsyncModelKind::kFullAsyncSolution, 0.3,
                                 3, /*seed=*/42);
  EXPECT_EQ(a, b);
}

TEST(AsyncModel, ProbabilitiesRespectAlpha) {
  Fixture f(AdditiveKind::kMultadd, 8);
  Vector x(f.b.size(), 0.0);
  AsyncModelOptions opts;
  opts.alpha = 0.4;
  opts.updates_per_grid = 2;
  const AsyncModelResult r = run_async_model(*f.corr, f.b, x, opts);
  ASSERT_FALSE(r.probabilities.empty());
  for (double p : r.probabilities) {
    EXPECT_GE(p, 0.4);
    EXPECT_LE(p, 1.0);
  }
}

TEST(AsyncModel, RecordsHistoryWhenAsked) {
  Fixture f(AdditiveKind::kMultadd, 8);
  Vector x(f.b.size(), 0.0);
  AsyncModelOptions opts;
  opts.alpha = 1.0;
  opts.updates_per_grid = 5;
  opts.record_history = true;
  const AsyncModelResult r = run_async_model(*f.corr, f.b, x, opts);
  ASSERT_EQ(static_cast<int>(r.rel_res_history.size()), r.time_instants);
  EXPECT_NEAR(r.rel_res_history.back(), r.final_rel_res, 1e-14);
}

TEST(AsyncModel, RejectsBadParameters) {
  Fixture f(AdditiveKind::kMultadd, 8);
  Vector x(f.b.size(), 0.0);
  AsyncModelOptions opts;
  opts.alpha = 0.0;
  EXPECT_THROW(run_async_model(*f.corr, f.b, x, opts), std::invalid_argument);
  opts.alpha = 0.5;
  opts.max_delay = -1;
  EXPECT_THROW(run_async_model(*f.corr, f.b, x, opts), std::invalid_argument);
}

}  // namespace
}  // namespace asyncmg
