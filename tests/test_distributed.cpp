// Tests for the distributed-memory asynchronous multigrid simulator (the
// paper's future-work direction).

#include <gtest/gtest.h>

#include "async/distributed.hpp"
#include "mesh/problems.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  Fixture() {
    Problem prob = make_laplace_7pt(8);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
    Rng rng(31);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
  Vector b;
};

TEST(Distributed, AsyncConvergesAtModerateLatency) {
  Fixture f;
  Vector x(f.b.size(), 0.0);
  DistributedOptions o;
  o.t_max = 40;
  // "Moderate": the latency is a fraction of one correction's compute time
  // (this fixture's corrections take a few microseconds in the model).
  o.latency = 1e-6;
  const DistributedResult r = simulate_distributed_async(*f.corr, f.b, x, o);
  EXPECT_LT(r.final_rel_res, 1e-4);
  for (int c : r.corrections) EXPECT_EQ(c, 40);
  EXPECT_GT(r.makespan, 0.0);
}

TEST(Distributed, SyncMatchesSequentialAdditiveConvergence) {
  Fixture f;
  Vector x_sim(f.b.size(), 0.0);
  DistributedOptions o;
  o.t_max = 20;
  const DistributedResult r = simulate_distributed_sync(*f.corr, f.b, x_sim, o);

  Vector x_seq(f.b.size(), 0.0);
  AdditiveMg mg(*f.setup, f.corr->options());
  const SolveStats st = mg.solve(f.b, x_seq, 20);
  EXPECT_NEAR(r.final_rel_res / st.final_rel_res(), 1.0, 1e-9);
}

TEST(Distributed, ZeroLatencyAsyncApproachesSyncAccuracy) {
  // With zero latency every commit is instantly visible, so async
  // corrections always use fresh residuals; accuracy should be within an
  // order of magnitude of the synchronous schedule.
  Fixture f;
  DistributedOptions o;
  o.t_max = 20;
  o.latency = 0.0;
  Vector xa(f.b.size(), 0.0), xs(f.b.size(), 0.0);
  const DistributedResult ra = simulate_distributed_async(*f.corr, f.b, xa, o);
  const DistributedResult rs = simulate_distributed_sync(*f.corr, f.b, xs, o);
  EXPECT_LT(ra.final_rel_res, rs.final_rel_res * 50.0);
}

TEST(Distributed, HigherLatencySlowsConvergence) {
  Fixture f;
  DistributedOptions lo;
  lo.t_max = 30;
  lo.latency = 1e-6;
  DistributedOptions hi = lo;
  hi.latency = 3e-3;
  Vector x1(f.b.size(), 0.0), x2(f.b.size(), 0.0);
  const double r_lo = simulate_distributed_async(*f.corr, f.b, x1, lo).final_rel_res;
  const double r_hi = simulate_distributed_async(*f.corr, f.b, x2, hi).final_rel_res;
  EXPECT_LT(r_lo, r_hi);
}

TEST(Distributed, AsyncMakespanBeatsSyncAtHighLatency) {
  // The whole point: when barriers + latency dominate, the asynchronous
  // discipline finishes the same number of corrections sooner.
  Fixture f;
  DistributedOptions o;
  o.t_max = 20;
  o.latency = 5e-3;
  o.barrier_cost = 1e-3;
  Vector x1(f.b.size(), 0.0), x2(f.b.size(), 0.0);
  const double async_t =
      simulate_distributed_async(*f.corr, f.b, x1, o).makespan;
  const double sync_t = simulate_distributed_sync(*f.corr, f.b, x2, o).makespan;
  EXPECT_LT(async_t, sync_t);
}

TEST(Distributed, DeterministicGivenSeed) {
  Fixture f;
  DistributedOptions o;
  o.t_max = 10;
  Vector x1(f.b.size(), 0.0), x2(f.b.size(), 0.0);
  const DistributedResult a = simulate_distributed_async(*f.corr, f.b, x1, o);
  const DistributedResult b2 = simulate_distributed_async(*f.corr, f.b, x2, o);
  EXPECT_EQ(a.final_rel_res, b2.final_rel_res);
  EXPECT_EQ(a.makespan, b2.makespan);
}

TEST(Distributed, RejectsBadOptions) {
  Fixture f;
  Vector x(f.b.size(), 0.0);
  DistributedOptions o;
  o.t_max = 0;
  EXPECT_THROW(simulate_distributed_async(*f.corr, f.b, x, o),
               std::invalid_argument);
  EXPECT_THROW(simulate_distributed_sync(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.latency = -1e-6;
  EXPECT_THROW(simulate_distributed_async(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.jitter = -0.1;
  EXPECT_THROW(simulate_distributed_sync(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.jitter = 1.0;  // a jitter of 1 can zero a correction's duration
  EXPECT_THROW(simulate_distributed_async(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.heterogeneity = 1.0;
  EXPECT_THROW(simulate_distributed_async(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.flops_per_second = 0.0;
  EXPECT_THROW(simulate_distributed_sync(*f.corr, f.b, x, o),
               std::invalid_argument);
  o = {};
  o.barrier_cost = -1.0;
  EXPECT_THROW(simulate_distributed_sync(*f.corr, f.b, x, o),
               std::invalid_argument);
}

}  // namespace
}  // namespace asyncmg
