// Tests for greedy coloring and the multicolor Gauss-Seidel smoother.

#include <gtest/gtest.h>

#include <set>

#include "mesh/problems.hpp"
#include "smoothers/multicolor.hpp"
#include "smoothers/smoother.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

TEST(Coloring, IsProper) {
  Problem prob = make_laplace_27pt(6);
  const std::vector<int> color = greedy_coloring(prob.a);
  const auto rp = prob.a.row_ptr();
  const auto ci = prob.a.col_idx();
  for (Index i = 0; i < prob.a.rows(); ++i) {
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j != i) {
        EXPECT_NE(color[static_cast<std::size_t>(i)],
                  color[static_cast<std::size_t>(j)])
            << "rows " << i << " and " << j;
      }
    }
  }
}

TEST(Coloring, SevenPointNeedsTwoColors) {
  // The 7pt stencil graph is bipartite (red-black ordering).
  Problem prob = make_laplace_7pt(6);
  const std::vector<int> color = greedy_coloring(prob.a);
  std::set<int> used(color.begin(), color.end());
  EXPECT_EQ(used.size(), 2u);
}

TEST(Coloring, TwentySevenPointNeedsEight) {
  // The full 27pt stencil couples each 2x2x2 block completely: 8 colors.
  Problem prob = make_laplace_27pt(6);
  const std::vector<int> color = greedy_coloring(prob.a);
  std::set<int> used(color.begin(), color.end());
  EXPECT_EQ(used.size(), 8u);
}

TEST(MulticolorGs, RowsPartitionedByColor) {
  Problem prob = make_laplace_7pt(5);
  const MulticolorGS gs(prob.a);
  std::size_t total = 0;
  for (int c = 0; c < gs.num_colors(); ++c) total += gs.color_rows(c).size();
  EXPECT_EQ(total, static_cast<std::size_t>(prob.a.rows()));
}

TEST(MulticolorGs, SweepContracts) {
  Problem prob = make_laplace_7pt(6);
  const MulticolorGS gs(prob.a);
  Rng rng(91);
  const std::size_t n = static_cast<std::size_t>(prob.a.rows());
  const Vector zero(n, 0.0);
  Vector e = random_vector(n, rng);
  double rho = 0.0;
  for (int it = 0; it < 60; ++it) {
    const double before = norm2(e);
    gs.sweep(zero, e);
    const double after = norm2(e);
    if (before > 0.0) rho = after / before;
    if (after > 0.0) scale(e, 1.0 / after);
  }
  EXPECT_LT(rho, 1.0);
  EXPECT_GT(rho, 0.5);
}

TEST(MulticolorGs, ApplyZeroEqualsSweepFromZero) {
  Problem prob = make_laplace_27pt(5);
  const MulticolorGS gs(prob.a);
  Rng rng(93);
  const Vector r = random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
  Vector e1, e2(r.size(), 0.0);
  gs.apply_zero(r, e1);
  gs.sweep(r, e2);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(e1[i], e2[i], 1e-13);
}

// The deterministic parallel-GS property: any execution order within a
// color class yields the same result, so the sweep is reproducible (unlike
// async GS whose result depends on the schedule). Verified by comparing
// color-reversed row processing within each class.
TEST(MulticolorGs, OrderWithinColorIrrelevant) {
  Problem prob = make_laplace_7pt(5);
  const MulticolorGS gs(prob.a);
  Rng rng(97);
  const Vector r = random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
  Vector e_fwd;
  gs.apply_zero(r, e_fwd);

  // Manual recomputation with reversed within-color order.
  const CsrMatrix& a = prob.a;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const Vector d = a.diag();
  Vector e(r.size(), 0.0);
  for (int c = 0; c < gs.num_colors(); ++c) {
    const auto& rows = gs.color_rows(c);
    for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
      const Index i = *it;
      double s = r[static_cast<std::size_t>(i)];
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
        if (static_cast<Index>(j) != i) s -= v[static_cast<std::size_t>(k)] * e[j];
      }
      e[static_cast<std::size_t>(i)] =
          s / d[static_cast<std::size_t>(i)];
    }
  }
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(e_fwd[i], e[i], 1e-14);
  }
}

TEST(MulticolorGs, ComparableToSequentialGs) {
  // Multicolor GS is an *ordering* of GS: one sweep reduces the residual by
  // a similar amount as natural-order GS.
  Problem prob = make_laplace_7pt(6);
  const MulticolorGS mc(prob.a);
  SmootherOptions so;
  so.type = SmootherType::kAsyncGS;  // sequential = natural-order GS
  so.num_blocks = 1;
  const Smoother gs(prob.a, so);
  Rng rng(101);
  const Vector b = random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
  Vector x1, x2;
  mc.apply_zero(b, x1);
  gs.apply_zero(b, x2);
  Vector r1, r2;
  prob.a.residual(b, x1, r1);
  prob.a.residual(b, x2, r2);
  EXPECT_LT(norm2(r1), norm2(b));
  EXPECT_LT(norm2(r1), norm2(r2) * 2.0);
}

TEST(MulticolorGs, RejectsBadMatrices) {
  const CsrMatrix ns = CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_THROW(MulticolorGS{ns}, std::invalid_argument);
  const CsrMatrix zd = CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  EXPECT_THROW(MulticolorGS{zd}, std::invalid_argument);
}

}  // namespace
}  // namespace asyncmg
