// Tests for the spectral-radius estimators and the Section II-C
// asynchronous convergence condition rho(|G|) < 1, plus the l1 hybrid JGS
// smoother (reference [23]) whose point is to keep that kind of condition
// satisfiable with many blocks.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "smoothers/spectral.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

CsrMatrix fixture_matrix(Index n = 6) {
  Problem p = make_laplace_7pt(n);
  return std::move(p.a);
}

SmootherOptions opts_of(SmootherType t, std::size_t blocks = 4,
                        double omega = 0.9) {
  SmootherOptions o;
  o.type = t;
  o.omega = omega;
  o.num_blocks = blocks;
  return o;
}

// For weighted Jacobi on the 1D/3D Laplacian the spectrum is known:
// G = I - w D^{-1} A has eigenvalues 1 - w*lambda_j(D^{-1}A) with
// lambda in (0, 2); for w = 1 the radius approaches 1 from below.
TEST(Spectral, JacobiRadiusMatchesTheoryOn1dLaplace) {
  // 1D Laplacian, n interior points: eigenvalues of D^{-1}A are
  // 1 - cos(pi j/(n+1)), j=1..n, so rho(G) = max |1 - w(1 - cos ...)|.
  const Index n = 20;
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, std::move(t));
  const double w = 0.7;
  const Smoother sm(a, opts_of(SmootherType::kWeightedJacobi, 1, w));
  const double measured = spectral_radius_iteration(sm, 400, 3);
  double expected = 0.0;
  for (Index j = 1; j <= n; ++j) {
    const double lam = 1.0 - std::cos(M_PI * j / (n + 1.0));
    expected = std::max(expected, std::abs(1.0 - w * lam));
  }
  EXPECT_NEAR(measured, expected, 1e-3);
}

TEST(Spectral, AbsRadiusAtLeastPlainRadius) {
  const CsrMatrix a = fixture_matrix();
  for (SmootherType t : {SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi}) {
    const Smoother sm(a, opts_of(t));
    const double rho = spectral_radius_iteration(sm, 200, 5);
    const double rho_abs = spectral_radius_abs_iteration(sm, 200, 5);
    EXPECT_GE(rho_abs, rho - 1e-6) << smoother_name(t);
  }
}

// Section II-C: the asynchronous iteration converges when rho(|G|) < 1.
// For diagonally dominant SPD Laplacians both Jacobi variants satisfy it.
TEST(Spectral, AsyncConvergenceConditionHoldsOnLaplace) {
  const CsrMatrix a = fixture_matrix();
  for (SmootherType t : {SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi}) {
    const Smoother sm(a, opts_of(t));
    EXPECT_LT(spectral_radius_abs_iteration(sm, 200, 7), 1.0)
        << smoother_name(t);
  }
}

// The gap between rho(G) and rho(|G|): a rotation-like iteration matrix
// converges synchronously (complex eigenvalues inside the unit disk) while
// violating the asynchronous condition -- the classic counterexample for
// chaotic relaxation. With A = [[.5 -.7],[.7 .5]] and w = .5 weighted
// Jacobi, G = I - A = [[.5 .7],[-.7 .5]]: rho(G) = |.5 + .7i| ~ .86 but
// rho(|G|) = 1.2.
TEST(Spectral, RotationMatrixBreaksAsyncConditionOnly) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 0.5}, {0, 1, -0.7}, {1, 0, 0.7}, {1, 1, 0.5}});
  const Smoother sm(a, opts_of(SmootherType::kWeightedJacobi, 1, 0.5));
  const double rho = spectral_radius_iteration(sm, 300, 9);
  const double rho_abs = spectral_radius_abs_iteration(sm, 300, 9);
  EXPECT_NEAR(rho, std::sqrt(0.5 * 0.5 + 0.7 * 0.7), 1e-3);
  EXPECT_NEAR(rho_abs, 1.2, 1e-3);
  EXPECT_LT(rho, 1.0);
  EXPECT_GT(rho_abs, 1.0);
}

TEST(Spectral, AbsRadiusRejectsBlockSmoothers) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(SmootherType::kHybridJGS));
  EXPECT_THROW(spectral_radius_abs_iteration(sm, 10, 1),
               std::invalid_argument);
}

// ----- l1 hybrid JGS -----

TEST(L1HybridJgs, ContractsWithManyBlocks) {
  const CsrMatrix a = fixture_matrix(8);
  const Smoother sm(a, opts_of(SmootherType::kL1HybridJGS, 64));
  const double rho = spectral_radius_iteration(sm, 200, 11);
  EXPECT_LT(rho, 1.0);
}

TEST(L1HybridJgs, DampsLessAggressivelyThanPlainHybrid) {
  // The l1 augmentation enlarges the diagonal, so each sweep moves less
  // than plain hybrid JGS -- the price of guaranteed convergence.
  const CsrMatrix a = fixture_matrix(8);
  Rng rng(13);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e_plain, e_l1;
  const Smoother plain(a, opts_of(SmootherType::kHybridJGS, 8));
  const Smoother l1(a, opts_of(SmootherType::kL1HybridJGS, 8));
  plain.apply_zero(r, e_plain);
  l1.apply_zero(r, e_l1);
  EXPECT_LT(norm2(e_l1), norm2(e_plain));
  EXPECT_GT(norm2(e_l1), 0.0);
}

TEST(L1HybridJgs, OneBlockReducesToGaussSeidelPlusNothing) {
  // With a single block there are no off-block entries: identical to
  // plain hybrid JGS.
  const CsrMatrix a = fixture_matrix(6);
  Rng rng(17);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e1, e2;
  Smoother(a, opts_of(SmootherType::kHybridJGS, 1)).apply_zero(r, e1);
  Smoother(a, opts_of(SmootherType::kL1HybridJGS, 1)).apply_zero(r, e2);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(e1[i], e2[i], 1e-13);
}

TEST(L1HybridJgs, MonotoneInANorm) {
  // Like l1-Jacobi, the l1 hybrid smoother monotonically reduces the
  // error's A-norm for SPD matrices.
  const CsrMatrix a = fixture_matrix(6);
  const Smoother sm(a, opts_of(SmootherType::kL1HybridJGS, 16));
  Rng rng(19);
  const Vector xref = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector b;
  a.spmv(xref, b);
  Vector x(xref.size(), 0.0);
  auto err_a_norm = [&] {
    Vector err(xref.size());
    for (std::size_t i = 0; i < err.size(); ++i) err[i] = x[i] - xref[i];
    Vector ae;
    a.spmv(err, ae);
    return std::sqrt(dot(err, ae));
  };
  double prev = err_a_norm();
  for (int sweep = 0; sweep < 12; ++sweep) {
    sm.sweep(b, x);
    const double cur = err_a_norm();
    EXPECT_LE(cur, prev * (1.0 + 1e-12));
    prev = cur;
  }
}

TEST(L1HybridJgs, WorksInsideMultigrid) {
  Problem prob = make_laplace_7pt(8);
  MgOptions mo;
  mo.smoother.type = SmootherType::kL1HybridJGS;
  mo.smoother.num_blocks = 8;
  MgSetup setup(std::move(prob.a), mo);
  Rng rng(21);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  MultiplicativeMg mg(setup);
  const SolveStats st = mg.solve(b, x, 150, 1e-9);
  EXPECT_TRUE(st.converged) << st.final_rel_res();
}

}  // namespace
}  // namespace asyncmg
