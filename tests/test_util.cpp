// Tests for the utility layer: RNG, partitioning, statistics, CLI, tables.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>

#include "util/backoff.hpp"
#include "util/cli.hpp"
#include "util/partition.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace asyncmg {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(8);
  EXPECT_EQ(rng.uniform_int(5, 5), 5);
  EXPECT_EQ(rng.uniform_int(9, 2), 9);  // hi < lo collapses to lo
}

TEST(Rng, DoublesInHalfOpenUnit) {
  Rng rng(9);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.next_double();
    mn = std::min(mn, d);
    mx = std::max(mx, d);
    sum += d;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(10);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(11);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Partition, StaticChunksCoverAndBalance) {
  for (std::size_t n : {0ul, 1ul, 7ul, 64ul, 100ul}) {
    for (std::size_t parts : {1ul, 3ul, 7ul, 64ul}) {
      const auto chunks = static_chunks(n, parts);
      ASSERT_EQ(chunks.size(), parts);
      std::size_t total = 0, mn = n + 1, mx = 0;
      std::size_t expected_begin = 0;
      for (const Range& r : chunks) {
        EXPECT_EQ(r.begin, expected_begin);
        expected_begin = r.end;
        total += r.size();
        mn = std::min(mn, r.size());
        mx = std::max(mx, r.size());
      }
      EXPECT_EQ(total, n);
      EXPECT_LE(mx - mn, 1u) << "n=" << n << " parts=" << parts;
    }
  }
}

TEST(Partition, AssignThreadsEveryGridGetsOne) {
  const std::vector<double> work{100.0, 10.0, 1.0, 0.1};
  const auto counts = assign_threads_to_grids(work, 16);
  ASSERT_EQ(counts.size(), 4u);
  std::size_t total = 0;
  for (std::size_t c : counts) {
    EXPECT_GE(c, 1u);
    total += c;
  }
  EXPECT_EQ(total, 16u);
  // The dominant grid receives the lion's share.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GE(counts[1], counts[2]);
}

TEST(Partition, AssignThreadsExactMinimum) {
  const auto counts = assign_threads_to_grids({5.0, 5.0, 5.0}, 3);
  EXPECT_EQ(counts, (std::vector<std::size_t>{1, 1, 1}));
}

TEST(Partition, AssignThreadsZeroWorkStillCovered) {
  const auto counts = assign_threads_to_grids({0.0, 0.0}, 5);
  EXPECT_EQ(counts[0] + counts[1], 5u);
  EXPECT_GE(counts[0], 1u);
  EXPECT_GE(counts[1], 1u);
}

TEST(Partition, AssignThreadsRejectsBadInput) {
  EXPECT_THROW(assign_threads_to_grids({1.0, 1.0}, 1), std::invalid_argument);
  EXPECT_THROW(assign_threads_to_grids({-1.0}, 2), std::invalid_argument);
}

TEST(Partition, ThreadRangesAreContiguous) {
  const auto ranges = thread_ranges({3, 1, 2});
  EXPECT_EQ(ranges[0], (Range{0, 3}));
  EXPECT_EQ(ranges[1], (Range{3, 4}));
  EXPECT_EQ(ranges[2], (Range{4, 6}));
}

TEST(Stats, BasicMoments) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(variance(xs), 1.25);
  EXPECT_DOUBLE_EQ(stddev(xs), std::sqrt(1.25));
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, PercentileInterpolatesOrderStatistics) {
  const std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);    // matches median
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);   // between 1 and 2
}

TEST(Stats, PercentileEdgeCasesAreDefined) {
  // A single sample is every percentile of itself.
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 95.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
  // Empty samples have no order statistics: NaN, never a fabricated 0.
  EXPECT_TRUE(std::isnan(percentile({}, 50.0)));
  // Out-of-range (and NaN) p is a caller bug, reported by message.
  EXPECT_THROW(percentile({1.0, 2.0}, -0.5), std::invalid_argument);
  EXPECT_THROW(percentile({1.0, 2.0}, 100.5), std::invalid_argument);
  EXPECT_THROW(
      percentile({1.0, 2.0}, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  try {
    percentile({1.0}, 123.0);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("percentile"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("123"), std::string::npos);
  }
}

TEST(Stats, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_THROW(geometric_mean({1.0, 0.0}), std::invalid_argument);
  EXPECT_TRUE(std::isnan(min_of({})));
}

TEST(Stats, RunningMatchesBatch) {
  Rng rng(12);
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    xs.push_back(v);
    rs.add(v);
  }
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(xs), 1e-8);
  EXPECT_EQ(rs.count(), 500u);
}

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",      "--alpha", "0.5",  "--flag",
                        "--sizes=4,8,16", "pos1",    "--n", "42"};
  Cli cli(8, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.0), 0.5);
  EXPECT_TRUE(cli.get_bool("flag", false));
  EXPECT_FALSE(cli.get_bool("missing", false));
  EXPECT_EQ(cli.get_int("n", 0), 42);
  EXPECT_EQ(cli.get_int_list("sizes", {}),
            (std::vector<std::int64_t>{4, 8, 16}));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.get("missing", "dflt"), "dflt");
}

TEST(Cli, DoubleListAndDefaults) {
  const char* argv[] = {"prog", "--alphas", "0.1,0.3"};
  Cli cli(3, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_double_list("alphas", {}),
            (std::vector<double>{0.1, 0.3}));
  EXPECT_EQ(cli.get_double_list("betas", {1.0}), (std::vector<double>{1.0}));
  EXPECT_EQ(cli.get_int("absent", -7), -7);
}

TEST(Table, AlignedTextAndCsv) {
  Table t({"method", "time", "cycles"});
  t.add_row({"mult", Table::fmt(0.1234), Table::fmt_int(75)});
  t.add_row({"multadd", Table::fmt(std::nan("")), Table::fmt_int(0)});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("method"), std::string::npos);
  EXPECT_NE(text.find("0.1234"), std::string::npos);
  EXPECT_NE(text.find("+"), std::string::npos);  // divergence marker
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("method,time,cycles"), std::string::npos);
  EXPECT_NE(csv.find("mult,0.1234,75"), std::string::npos);
}

TEST(Table, EmitWritesCsvFile) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string path = "/tmp/asyncmg_table_test.csv";
  {
    // Redirect stdout noise away is unnecessary; emit also prints the text.
    t.emit(path);
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "a,b");
  std::getline(f, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(Cli, ProgramNameAndEquals) {
  const char* argv[] = {"myprog", "--x=3"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_EQ(cli.program(), "myprog");
  EXPECT_EQ(cli.get_int("x", 0), 3);
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
  BackoffOptions o;
  o.initial_ms = 10.0;
  o.multiplier = 2.0;
  o.max_ms = 100.0;
  o.jitter = 0.0;
  Backoff b(o);
  EXPECT_DOUBLE_EQ(b.next_ms(), 10.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 20.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 40.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 80.0);
  EXPECT_DOUBLE_EQ(b.next_ms(), 100.0);  // capped
  EXPECT_DOUBLE_EQ(b.next_ms(), 100.0);
  EXPECT_EQ(b.attempts(), 6);
  // Very deep attempt counts must not overflow to inf/NaN.
  for (int i = 0; i < 5000; ++i) b.next_ms();
  EXPECT_DOUBLE_EQ(b.peek_base_ms(), 100.0);
}

TEST(Backoff, ResetRewindsToInitial) {
  BackoffOptions o;
  o.jitter = 0.0;
  Backoff b(o);
  b.next_ms();
  b.next_ms();
  EXPECT_EQ(b.attempts(), 2);
  b.reset();
  EXPECT_EQ(b.attempts(), 0);
  EXPECT_DOUBLE_EQ(b.next_ms(), o.initial_ms);
}

TEST(Backoff, JitterBoundedAndDeterministic) {
  BackoffOptions o;
  o.initial_ms = 100.0;
  o.multiplier = 1.0;  // isolate the jitter factor
  o.max_ms = 100.0;
  o.jitter = 0.25;
  o.seed = 7;
  Backoff a(o), b(o);
  bool saw_non_nominal = false;
  for (int i = 0; i < 200; ++i) {
    const double da = a.next_ms();
    EXPECT_DOUBLE_EQ(da, b.next_ms());  // same seed, same stream
    EXPECT_GE(da, 75.0);
    EXPECT_LE(da, 125.0);
    if (std::abs(da - 100.0) > 1e-9) saw_non_nominal = true;
  }
  EXPECT_TRUE(saw_non_nominal);
}

TEST(Backoff, RejectsBadOptions) {
  auto expect_throws = [](BackoffOptions o) {
    EXPECT_THROW(Backoff{o}, std::invalid_argument);
  };
  BackoffOptions o;
  o.initial_ms = 0.0;
  expect_throws(o);
  o = {};
  o.multiplier = 0.5;
  expect_throws(o);
  o = {};
  o.max_ms = o.initial_ms / 2.0;
  expect_throws(o);
  o = {};
  o.jitter = 1.0;
  expect_throws(o);
  o = {};
  o.jitter = -0.1;
  expect_throws(o);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace asyncmg
