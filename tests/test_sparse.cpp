// Unit tests for the sparse kernel substrate (CSR, SpGEMM, dense LU, I/O).

#include <gtest/gtest.h>

#include <sstream>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/io.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

CsrMatrix small_matrix() {
  // [ 4 -1  0]
  // [-1  4 -1]
  // [ 0 -1  4]
  return CsrMatrix::from_triplets(
      3, 3, {{0, 0, 4}, {0, 1, -1}, {1, 0, -1}, {1, 1, 4}, {1, 2, -1},
             {2, 1, -1}, {2, 2, 4}});
}

CsrMatrix random_sparse(Index rows, Index cols, double density, Rng& rng) {
  std::vector<Triplet> t;
  for (Index i = 0; i < rows; ++i) {
    for (Index j = 0; j < cols; ++j) {
      if (rng.next_double() < density) {
        t.push_back({i, j, rng.uniform(-2.0, 2.0)});
      }
    }
  }
  // Guarantee nonempty diagonal-ish structure.
  for (Index i = 0; i < std::min(rows, cols); ++i) t.push_back({i, i, 3.0});
  return CsrMatrix::from_triplets(rows, cols, std::move(t));
}

TEST(Csr, FromTripletsSumsDuplicatesAndSorts) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 3, {{0, 2, 1.0}, {0, 0, 2.0}, {0, 2, 0.5}, {1, 1, -1.0}});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_TRUE(a.rows_sorted());
  EXPECT_DOUBLE_EQ(a.at(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
}

TEST(Csr, FromTripletsRejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}),
               std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, -1, 1.0}}),
               std::out_of_range);
}

TEST(Csr, FromCsrValidates) {
  EXPECT_THROW(CsrMatrix::from_csr(2, 2, {0, 1}, {0}, {1.0}),
               std::invalid_argument);  // row_ptr too short
  EXPECT_THROW(CsrMatrix::from_csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}),
               std::invalid_argument);  // non-monotone
  EXPECT_THROW(CsrMatrix::from_csr(1, 1, {0, 1}, {5}, {1.0}),
               std::out_of_range);  // column out of range
}

TEST(Csr, IdentityAndDiagonal) {
  const CsrMatrix i3 = CsrMatrix::identity(3);
  Vector x{1.0, 2.0, 3.0}, y;
  i3.spmv(x, y);
  EXPECT_EQ(x, y);
  const CsrMatrix d = CsrMatrix::diagonal({2.0, 3.0, 4.0});
  d.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

TEST(Csr, SpmvMatchesDense) {
  Rng rng(21);
  const CsrMatrix a = random_sparse(17, 13, 0.3, rng);
  const DenseMatrix d = DenseMatrix::from_csr(a);
  const Vector x = random_vector(13, rng);
  Vector ys, yd;
  a.spmv(x, ys);
  d.matvec(x, yd);
  for (std::size_t i = 0; i < ys.size(); ++i) EXPECT_NEAR(ys[i], yd[i], 1e-12);
}

TEST(Csr, SpmvOmpMatchesSerial) {
  Rng rng(22);
  const CsrMatrix a = random_sparse(64, 64, 0.2, rng);
  const Vector x = random_vector(64, rng);
  Vector y1, y2;
  a.spmv(x, y1);
  a.spmv_omp(x, y2);
  EXPECT_EQ(y1, y2);
}

TEST(Csr, TransposeRoundTrip) {
  Rng rng(23);
  const CsrMatrix a = random_sparse(11, 19, 0.25, rng);
  const CsrMatrix att = a.transpose().transpose();
  EXPECT_TRUE(a.approx_equal(att));
  EXPECT_TRUE(a.transpose().rows_sorted());
}

TEST(Csr, SpmvTransposeMatchesExplicitTranspose) {
  Rng rng(24);
  const CsrMatrix a = random_sparse(12, 9, 0.3, rng);
  const Vector x = random_vector(12, rng);
  Vector y1, y2;
  a.spmv_transpose(x, y1);
  a.transpose().spmv(x, y2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-12);
}

TEST(Csr, ResidualRowsPartialUpdate) {
  const CsrMatrix a = small_matrix();
  const Vector b{1.0, 2.0, 3.0}, x{0.5, 0.5, 0.5};
  Vector r{-7.0, -7.0, -7.0};
  a.residual_rows(b, x, r, 1, 2);
  EXPECT_DOUBLE_EQ(r[0], -7.0);  // untouched
  EXPECT_DOUBLE_EQ(r[1], 2.0 - (-0.5 + 2.0 - 0.5));
  EXPECT_DOUBLE_EQ(r[2], -7.0);  // untouched
}

TEST(Csr, DiagAndL1Norms) {
  const CsrMatrix a = small_matrix();
  const Vector d = a.diag();
  EXPECT_EQ(d, (Vector{4.0, 4.0, 4.0}));
  const Vector l1 = a.l1_row_norms();
  EXPECT_EQ(l1, (Vector{5.0, 6.0, 5.0}));
}

TEST(Csr, SymmetryCheck) {
  EXPECT_TRUE(small_matrix().is_symmetric());
  const CsrMatrix ns =
      CsrMatrix::from_triplets(2, 2, {{0, 1, 1.0}, {1, 1, 1.0}});
  EXPECT_FALSE(ns.is_symmetric());
}

TEST(SpGemm, MultiplyMatchesDense) {
  Rng rng(31);
  const CsrMatrix a = random_sparse(10, 14, 0.3, rng);
  const CsrMatrix b = random_sparse(14, 8, 0.3, rng);
  const CsrMatrix c = multiply(a, b);
  EXPECT_TRUE(c.rows_sorted());
  const DenseMatrix da = DenseMatrix::from_csr(a);
  const DenseMatrix db = DenseMatrix::from_csr(b);
  for (Index i = 0; i < 10; ++i) {
    for (Index j = 0; j < 8; ++j) {
      double s = 0.0;
      for (Index k = 0; k < 14; ++k) s += da(i, k) * db(k, j);
      EXPECT_NEAR(c.at(i, j), s, 1e-12) << i << "," << j;
    }
  }
}

TEST(SpGemm, MultiplyRejectsShapeMismatch) {
  Rng rng(32);
  const CsrMatrix a = random_sparse(3, 4, 0.5, rng);
  const CsrMatrix b = random_sparse(3, 4, 0.5, rng);
  EXPECT_THROW(multiply(a, b), std::invalid_argument);
}

TEST(SpGemm, AddWithCoefficients) {
  const CsrMatrix a = small_matrix();
  const CsrMatrix c = add(a, a, 2.0, -1.0);  // = a
  EXPECT_TRUE(c.approx_equal(a));
  const CsrMatrix zero = add(a, a, 1.0, -1.0);
  EXPECT_NEAR(zero.frobenius_norm(), 0.0, 1e-14);
}

TEST(SpGemm, GalerkinMatchesExplicit) {
  Rng rng(33);
  const CsrMatrix a = random_sparse(12, 12, 0.3, rng);
  const CsrMatrix p = random_sparse(12, 5, 0.4, rng);
  const CsrMatrix rap = galerkin_product(a, p);
  const CsrMatrix expl = multiply(p.transpose(), multiply(a, p));
  EXPECT_TRUE(rap.approx_equal(expl, 1e-12));
  EXPECT_EQ(rap.rows(), 5);
  EXPECT_EQ(rap.cols(), 5);
}

TEST(SpGemm, DropSmallKeepsDiagonal) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1e-18}, {0, 1, 1.0}, {1, 1, 1e-18}});
  const CsrMatrix d = drop_small(a, 1e-12);
  EXPECT_DOUBLE_EQ(d.at(0, 0), 1e-18);  // diagonal kept
  EXPECT_DOUBLE_EQ(d.at(0, 1), 1.0);
  EXPECT_EQ(d.nnz(), 3);
}

TEST(Dense, LuSolvesRandomSystem) {
  Rng rng(41);
  const CsrMatrix a = random_sparse(20, 20, 0.4, rng);
  const LuSolver lu(a);
  const Vector xref = random_vector(20, rng);
  Vector b, x;
  a.spmv(xref, b);
  lu.solve(b, x);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], xref[i], 1e-9);
}

TEST(Dense, LuThrowsOnSingular) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}});
  EXPECT_THROW(LuSolver{a}, std::runtime_error);
}

TEST(Dense, LuRequiresSquare) {
  Rng rng(42);
  const CsrMatrix a = random_sparse(3, 4, 0.5, rng);
  EXPECT_THROW(LuSolver{a}, std::invalid_argument);
}

TEST(Io, MatrixMarketRoundTrip) {
  Rng rng(51);
  const CsrMatrix a = random_sparse(9, 7, 0.3, rng);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = read_matrix_market(ss);
  EXPECT_TRUE(a.approx_equal(b, 1e-14));
}

TEST(Io, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% comment line\n"
     << "2 2 2\n"
     << "1 1 4.0\n"
     << "2 1 -1.0\n";
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 4.0);
}

TEST(Io, RejectsBadBanner) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix array real general\n1 1\n1.0\n";
  EXPECT_THROW(read_matrix_market(ss), std::runtime_error);
}

TEST(Io, VectorRoundTrip) {
  Rng rng(52);
  const Vector v = random_vector(13, rng);
  std::stringstream ss;
  write_vector(ss, v);
  const Vector w = read_vector(ss);
  ASSERT_EQ(v.size(), w.size());
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_NEAR(v[i], w[i], 1e-15);
}

TEST(Csr, ScaleRowsMultipliesEachRow) {
  const CsrMatrix a = small_matrix();
  CsrMatrix b = a;
  b.scale_rows({2.0, 0.5, -1.0});
  EXPECT_DOUBLE_EQ(b.at(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(b.at(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(b.at(1, 0), -0.5);
  EXPECT_DOUBLE_EQ(b.at(2, 2), -4.0);
}

TEST(Csr, SpmvAddAccumulates) {
  const CsrMatrix a = small_matrix();
  const Vector x{1.0, 1.0, 1.0};
  Vector y{10.0, 10.0, 10.0};
  a.spmv_add(x, y, 2.0);
  EXPECT_DOUBLE_EQ(y[0], 10.0 + 2.0 * 3.0);
  EXPECT_DOUBLE_EQ(y[1], 10.0 + 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(y[2], 10.0 + 2.0 * 3.0);
}

TEST(Csr, FrobeniusNormAndSummary) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, {{0, 0, 3.0}, {1, 1, 4.0}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_EQ(a.summary(), "2 x 2, nnz=2");
}

TEST(Csr, EmptyMatrixBehaves) {
  const CsrMatrix a(3, 3);
  EXPECT_EQ(a.nnz(), 0);
  const Vector x{1.0, 2.0, 3.0};
  Vector y;
  a.spmv(x, y);
  EXPECT_EQ(y, (Vector{0.0, 0.0, 0.0}));
  EXPECT_TRUE(a.is_symmetric());
  const CsrMatrix t = a.transpose();
  EXPECT_EQ(t.nnz(), 0);
}

TEST(Csr, ApproxEqualSeesValueDifferences) {
  const CsrMatrix a = small_matrix();
  CsrMatrix b = a;
  b.values_mutable()[0] += 1e-6;
  EXPECT_FALSE(a.approx_equal(b, 1e-9));
  EXPECT_TRUE(a.approx_equal(b, 1e-3));
  // Different sparsity with equal dense values is still equal.
  const CsrMatrix with_zero = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 0.0}});
  const CsrMatrix without = CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}});
  EXPECT_TRUE(with_zero.approx_equal(without));
}

TEST(Vec, BasicKernels) {
  Vector x{1.0, 2.0, 3.0}, y{1.0, 1.0, 1.0};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{3.0, 5.0, 7.0}));
  EXPECT_DOUBLE_EQ(dot(x, x), 14.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf({-3.0, 2.0}), 3.0);
  scale(x, 0.5);
  EXPECT_EQ(x, (Vector{0.5, 1.0, 1.5}));
  Vector h;
  hadamard({2.0, 3.0, 4.0}, x, h);
  EXPECT_EQ(h, (Vector{1.0, 3.0, 6.0}));
}

TEST(Vec, RandomVectorInRange) {
  Rng rng(61);
  const Vector v = random_vector(1000, rng, -1.0, 1.0);
  for (double e : v) {
    EXPECT_GE(e, -1.0);
    EXPECT_LE(e, 1.0);
  }
  // Mean should be near zero for a uniform [-1,1] sample of this size.
  double m = 0.0;
  for (double e : v) m += e;
  EXPECT_LT(std::abs(m / 1000.0), 0.1);
}

}  // namespace
}  // namespace asyncmg
