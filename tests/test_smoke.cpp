// End-to-end smoke tests: the full setup + solve stack on small problems.

#include <gtest/gtest.h>

#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

MgOptions default_opts(SmootherType st = SmootherType::kWeightedJacobi) {
  MgOptions o;
  o.smoother.type = st;
  o.smoother.omega = 0.9;
  o.smoother.num_blocks = 4;
  return o;
}

TEST(Smoke, MultiplicativeConverges7pt) {
  Problem prob = make_laplace_7pt(12);
  MgSetup setup(std::move(prob.a), default_opts());
  Rng rng(7);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  MultiplicativeMg mg(setup);
  const SolveStats st = mg.solve(b, x, 60, 1e-9);
  EXPECT_TRUE(st.converged) << "final rel res " << st.final_rel_res();
}

TEST(Smoke, MultaddConverges7pt) {
  Problem prob = make_laplace_7pt(12);
  MgSetup setup(std::move(prob.a), default_opts());
  Rng rng(7);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  AdditiveMg mg(setup, ao);
  const SolveStats st = mg.solve(b, x, 120, 1e-9);
  EXPECT_TRUE(st.converged) << "final rel res " << st.final_rel_res();
}

TEST(Smoke, AfacxConverges27pt) {
  Problem prob = make_laplace_27pt(10);
  MgSetup setup(std::move(prob.a), default_opts());
  Rng rng(7);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kAfacx;
  AdditiveMg mg(setup, ao);
  const SolveStats st = mg.solve(b, x, 200, 1e-9);
  EXPECT_TRUE(st.converged) << "final rel res " << st.final_rel_res();
}

}  // namespace
}  // namespace asyncmg
