// Determinism and equivalence tests for the threaded AMG setup kernels:
// every parallel kernel must return a bit-identical matrix (same row_ptr,
// same col_idx, same values) for every thread count, because each output
// row is computed entirely on one thread with a fixed accumulation order.
// The fused RAP is additionally checked against the explicit
// P^T * (A * P) materialization chain.

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/strength.hpp"
#include "mesh/problems.hpp"
#include "sparse/csr.hpp"
#include "sparse/parallel.hpp"
#include "sparse/spgemm.hpp"
#include "util/rng.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {
namespace {

// Thread counts exercised everywhere; 8 oversubscribes small machines on
// purpose (correctness must not depend on how many cores actually exist).
const std::vector<int> kThreadCounts = {1, 2, 8};

void expect_identical(const CsrMatrix& a, const CsrMatrix& b,
                      const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.cols(), b.cols()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  const auto arp = a.row_ptr(), brp = b.row_ptr();
  const auto aci = a.col_idx(), bci = b.col_idx();
  const auto av = a.values(), bv = b.values();
  for (std::size_t i = 0; i <= static_cast<std::size_t>(a.rows()); ++i) {
    ASSERT_EQ(arp[i], brp[i]) << what << ": row_ptr[" << i << "]";
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(a.nnz()); ++k) {
    ASSERT_EQ(aci[k], bci[k]) << what << ": col_idx[" << k << "]";
    ASSERT_EQ(av[k], bv[k]) << what << ": values[" << k << "]";
  }
}

void expect_values_near(const CsrMatrix& a, const CsrMatrix& b, double tol,
                        const char* what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  const auto aci = a.col_idx(), bci = b.col_idx();
  const auto av = a.values(), bv = b.values();
  for (std::size_t k = 0; k < static_cast<std::size_t>(a.nnz()); ++k) {
    ASSERT_EQ(aci[k], bci[k]) << what << ": col_idx[" << k << "]";
    ASSERT_NEAR(av[k], bv[k], tol) << what << ": values[" << k << "]";
  }
}

// 4096 rows: above kSetupSerialCutoff, so the parallel paths actually run.
CsrMatrix big_laplacian() { return make_laplace_27pt(16).a; }

TEST(ParallelSpGemm, MultiplyIdenticalAcrossThreadCounts) {
  const CsrMatrix a = big_laplacian();
  const CsrMatrix ref = multiply(a, a, 1);
  for (int nt : kThreadCounts) {
    expect_identical(ref, multiply(a, a, nt), "A*A");
  }
}

TEST(ParallelSpGemm, AddIdenticalAcrossThreadCounts) {
  const CsrMatrix a = big_laplacian();
  const CsrMatrix b = multiply(a, a, 1);
  const CsrMatrix ref = add(a, b, 2.0, -0.5, 1);
  for (int nt : kThreadCounts) {
    expect_identical(ref, add(a, b, 2.0, -0.5, nt), "2A - 0.5A^2");
  }
}

TEST(ParallelTranspose, IdenticalAcrossThreadCounts) {
  const CsrMatrix a = big_laplacian();
  // Rectangular case too: an interpolation operator.
  const CsrMatrix s = strength_matrix(a, 0.25);
  Rng rng(7);
  const Splitting split = coarsen(CoarsenAlgo::kHMIS, s, rng);
  const CsrMatrix p = interp_direct(a, s, split, 1);
  const CsrMatrix at_ref = a.transpose(1);
  const CsrMatrix pt_ref = p.transpose(1);
  for (int nt : kThreadCounts) {
    expect_identical(at_ref, a.transpose(nt), "A^T");
    expect_identical(pt_ref, p.transpose(nt), "P^T");
  }
}

TEST(ParallelStrength, IdenticalAcrossThreadCounts) {
  const CsrMatrix a = big_laplacian();
  const CsrMatrix ref = strength_matrix(a, 0.25, StrengthNorm::kNegative, 1, 1);
  for (int nt : kThreadCounts) {
    expect_identical(ref,
                     strength_matrix(a, 0.25, StrengthNorm::kNegative, 1, nt),
                     "S");
  }
  const CsrMatrix s2_ref = strength_distance2(ref, 1);
  for (int nt : kThreadCounts) {
    expect_identical(s2_ref, strength_distance2(ref, nt), "S2");
  }
}

TEST(ParallelInterp, IdenticalAcrossThreadCounts) {
  const CsrMatrix a = big_laplacian();
  const CsrMatrix s = strength_matrix(a, 0.25);
  Rng rng(7);
  const Splitting split = coarsen(CoarsenAlgo::kHMIS, s, rng);
  const CsrMatrix pd_ref = interp_direct(a, s, split, 1);
  const CsrMatrix pc_ref = interp_classical_modified(a, s, split, 1);
  const CsrMatrix pm_ref = interp_multipass(a, s, split, 1);
  const CsrMatrix pt_ref = truncate_interpolation(pc_ref, 0.2, 1);
  for (int nt : kThreadCounts) {
    expect_identical(pd_ref, interp_direct(a, s, split, nt), "P direct");
    expect_identical(pc_ref, interp_classical_modified(a, s, split, nt),
                     "P classical");
    expect_identical(pm_ref, interp_multipass(a, s, split, nt), "P multipass");
    expect_identical(pt_ref, truncate_interpolation(pc_ref, 0.2, nt),
                     "P truncated");
  }
}

TEST(FusedRap, MatchesExplicitChain) {
  const CsrMatrix a = big_laplacian();
  const CsrMatrix s = strength_matrix(a, 0.25);
  Rng rng(7);
  const Splitting split = coarsen(CoarsenAlgo::kHMIS, s, rng);
  const CsrMatrix p = interp_classical_modified(a, s, split, 1);

  // Explicit three-matrix chain the fused kernel replaces.
  const CsrMatrix chain = multiply(p.transpose(1), multiply(a, p, 1), 1);
  for (int nt : kThreadCounts) {
    const CsrMatrix fused = galerkin_product(a, p, nt);
    // Same sparsity structure; values differ only by summation order.
    expect_values_near(chain, fused, 1e-12, "RAP");
  }
  // And the fused kernel itself is bit-identical across thread counts.
  const CsrMatrix ref = galerkin_product(a, p, 1);
  for (int nt : kThreadCounts) {
    expect_identical(ref, galerkin_product(a, p, nt), "fused RAP");
  }
}

TEST(ParallelSolveKernels, MatchSerialSpmv) {
  const CsrMatrix a = big_laplacian();
  const std::size_t n = static_cast<std::size_t>(a.rows());
  Rng rng(3);
  Vector x(n), b(n), y0(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(-1.0, 1.0);
    b[i] = rng.uniform(-1.0, 1.0);
    y0[i] = rng.uniform(-1.0, 1.0);
  }

  Vector y_ref = y0, y_omp = y0;
  a.spmv(x, y_ref);
  a.spmv_omp(x, y_omp);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(y_ref[i], y_omp[i]);

  Vector r_ref, r_omp;
  a.residual(b, x, r_ref);
  a.residual_omp(b, x, r_omp);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(r_ref[i], r_omp[i]);

  y_ref = y0;
  y_omp = y0;
  Vector ax(n);
  a.spmv(x, ax);
  for (std::size_t i = 0; i < n; ++i) y_ref[i] += 0.5 * ax[i];
  a.spmv_add_omp(x, y_omp, 0.5);
  for (std::size_t i = 0; i < n; ++i) ASSERT_NEAR(y_ref[i], y_omp[i], 1e-14);

  // On a pool worker the OMP kernels must still produce the same values
  // (they just stay serial to respect the pool's thread budget).
  set_this_thread_pool_worker(true);
  Vector r_pool;
  a.residual_omp(b, x, r_pool);
  set_this_thread_pool_worker(false);
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(r_ref[i], r_pool[i]);
}

TEST(PrefixSum, ThrowsOnIndexOverflow) {
  // Three rows of ~1.2e9 entries each: the total (3.6e9) exceeds int32.
  const std::vector<std::size_t> counts(3, 1'200'000'000u);
  std::vector<Index> row_ptr;
  EXPECT_THROW(prefix_sum_row_counts(counts, row_ptr, "test"),
               std::overflow_error);
  // A sum that fits is accepted and produces an inclusive scan.
  const std::vector<std::size_t> ok = {2, 0, 5};
  const std::size_t total = prefix_sum_row_counts(ok, row_ptr, "test");
  EXPECT_EQ(total, 7u);
  ASSERT_EQ(row_ptr.size(), 4u);
  EXPECT_EQ(row_ptr[0], 0);
  EXPECT_EQ(row_ptr[1], 2);
  EXPECT_EQ(row_ptr[2], 2);
  EXPECT_EQ(row_ptr[3], 7);
}

void expect_hierarchy_identical(const Hierarchy& ref, const Hierarchy& h) {
  ASSERT_EQ(ref.num_levels(), h.num_levels());
  EXPECT_DOUBLE_EQ(ref.operator_complexity(), h.operator_complexity());
  for (std::size_t k = 0; k < ref.num_levels(); ++k) {
    expect_identical(ref.matrix(k), h.matrix(k), "A_k");
    if (k + 1 < ref.num_levels()) {
      expect_identical(ref.interpolation(k), h.interpolation(k), "P_k");
    }
  }
}

TEST(ParallelHierarchy, LaplaceIdenticalAcrossSetupThreads) {
  const CsrMatrix a = big_laplacian();
  AmgOptions opts;
  opts.num_aggressive_levels = 1;  // exercise multipass + distance-2 too
  // Bitwise determinism is defined on the fp64 setup; pin the policy so the
  // values() reads in expect_identical stay valid under ASYNCMG_PRECISION.
  opts.precision = PrecisionPolicy{};
  opts.setup_threads = 1;
  const Hierarchy ref = Hierarchy::build(a, opts);
  ASSERT_GE(ref.num_levels(), 2u);
  for (int nt : kThreadCounts) {
    opts.setup_threads = nt;
    expect_hierarchy_identical(ref, Hierarchy::build(a, opts));
  }
}

TEST(ParallelHierarchy, ElasticityIdenticalAcrossSetupThreads) {
  // 3072 dofs: above the serial cutoff on the finest level.
  const CsrMatrix a = make_elasticity_beam(16, 8, 8).a;
  AmgOptions opts;
  opts.strength_norm = StrengthNorm::kAbsolute;
  opts.num_functions = 3;
  opts.precision = PrecisionPolicy{};
  opts.setup_threads = 1;
  const Hierarchy ref = Hierarchy::build(a, opts);
  ASSERT_GE(ref.num_levels(), 2u);
  for (int nt : kThreadCounts) {
    opts.setup_threads = nt;
    expect_hierarchy_identical(ref, Hierarchy::build(a, opts));
  }
}

}  // namespace
}  // namespace asyncmg
