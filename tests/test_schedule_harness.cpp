// Deterministic interleaving harness tests: schedule sampling/validation,
// scripted-replay equivalence with the sequential Section-III model, bitwise
// reproducibility across runs and thread counts, fault injection, and the
// invariant checkers. This is the test surface ISSUE 3's ScheduleDriver
// refactor exists to enable.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "async/model.hpp"
#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(Index n = 10) {
    Problem prob = make_laplace_7pt(n);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
    Rng rng(13);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
  Vector b;
};

double diff_inf(const Vector& a, const Vector& b) {
  EXPECT_EQ(a.size(), b.size());
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    d = std::max(d, std::abs(a[i] - b[i]));
  }
  return d;
}

AsyncModelOptions semiasync_options(std::uint64_t seed, double alpha = 0.7,
                                    int delta = 2, int updates = 8) {
  AsyncModelOptions mo;
  mo.kind = AsyncModelKind::kSemiAsync;
  mo.alpha = alpha;
  mo.max_delay = delta;
  mo.updates_per_grid = updates;
  mo.seed = seed;
  return mo;
}

RuntimeOptions scripted_options(std::uint64_t seed, std::size_t threads,
                                double alpha = 0.7, int delta = 2,
                                int t_max = 8) {
  RuntimeOptions ro;
  ro.mode = ExecMode::kScripted;
  ro.script_alpha = alpha;
  ro.script_max_delay = delta;
  ro.seed = seed;
  ro.t_max = t_max;
  ro.num_threads = threads;
  return ro;
}

// ---------------------------------------------------------------------------
// Schedule sampling + text round-trip + validation
// ---------------------------------------------------------------------------

TEST(ScheduleSampling, SamplesValidSectionIIITrajectories) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const Schedule sched = sample_schedule(5, semiasync_options(seed));
    const ScheduleCheck check = validate_schedule(sched, 5);
    ASSERT_TRUE(check.ok) << check.error;
    for (int u : check.updates_per_grid) EXPECT_EQ(u, 8);
    EXPECT_LE(check.max_staleness, 2);
    EXPECT_EQ(sched.probabilities.size(), 5u);
    for (double p : sched.probabilities) {
      EXPECT_GE(p, 0.7);
      EXPECT_LT(p, 1.0);
    }
  }
}

TEST(ScheduleSampling, AlphaOneDeltaZeroIsSynchronous) {
  const Schedule sched = sample_schedule(4, semiasync_options(3, 1.0, 0, 6));
  ASSERT_EQ(sched.num_instants(), 6u);
  for (std::size_t t = 0; t < sched.instants.size(); ++t) {
    ASSERT_EQ(sched.instants[t].size(), 4u);  // every grid, every instant
    for (const ScheduleEvent& ev : sched.instants[t]) {
      EXPECT_EQ(ev.read_instant, static_cast<int>(t));  // current reads
    }
  }
}

TEST(ScheduleText, RoundTripsExactly) {
  const Schedule sched = sample_schedule(5, semiasync_options(42));
  const std::string text = schedule_to_string(sched);
  const Schedule back = parse_schedule(text);
  ASSERT_EQ(back.num_instants(), sched.num_instants());
  for (std::size_t t = 0; t < sched.instants.size(); ++t) {
    EXPECT_EQ(back.instants[t], sched.instants[t]) << "instant " << t;
  }
  EXPECT_EQ(schedule_to_string(back), text);
}

TEST(ScheduleText, RejectsMalformedInput) {
  EXPECT_THROW(parse_schedule("no header\n0: 1@0\n"), std::invalid_argument);
  EXPECT_THROW(parse_schedule("schedule v1 grids=2 instants=1\n0 1@0\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_schedule("schedule v1 grids=2 instants=1\n0: 1#0\n"),
               std::invalid_argument);
}

TEST(ScheduleValidation, FlagsStructuralViolations) {
  Schedule future;
  future.instants = {{{0, 1}}};  // reads instant 1 at instant 0
  EXPECT_FALSE(validate_schedule(future, 2).ok);

  Schedule nonmono;
  nonmono.instants = {{{0, 0}}, {{0, 1}}, {{0, 0}}};  // z goes 0, 1, 0
  EXPECT_FALSE(validate_schedule(nonmono, 2).ok);

  Schedule dup;
  dup.instants = {{{1, 0}, {1, 0}}};  // grid 1 twice in one instant
  EXPECT_FALSE(validate_schedule(dup, 2).ok);

  Schedule range;
  range.instants = {{{5, 0}}};
  EXPECT_FALSE(validate_schedule(range, 2).ok);

  Schedule ok;
  ok.instants = {{{0, 0}}, {}, {{0, 2}, {1, 0}}};
  const ScheduleCheck check = validate_schedule(ok, 2);
  ASSERT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.max_staleness, 2);  // grid 1 reads z=0 at t=2
  EXPECT_EQ(check.updates_per_grid, (std::vector<int>{2, 1}));
}

// ---------------------------------------------------------------------------
// Scripted replay vs the sequential semi-async simulator (the tentpole's
// acceptance criterion: same seed => same trajectory => same iterates).
// ---------------------------------------------------------------------------

TEST(ScriptedRuntime, MatchesSequentialSemiAsyncModel) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    Fixture f;
    Vector x_model(f.b.size(), 0.0);
    const AsyncModelResult mr =
        run_async_model(*f.corr, f.b, x_model, semiasync_options(seed));

    Vector x_thr(f.b.size(), 0.0);
    const RuntimeResult rr =
        run_shared_memory(*f.corr, f.b, x_thr, scripted_options(seed, 4));

    EXPECT_LE(diff_inf(x_model, x_thr), 1e-13) << "seed " << seed;
    EXPECT_NEAR(rr.final_rel_res, mr.final_rel_res, 1e-12);
    EXPECT_EQ(rr.instants, mr.time_instants);
    for (int c : rr.corrections) EXPECT_EQ(c, 8);
  }
}

TEST(ScriptedRuntime, MatchesSequentialReplayOnHandcraftedSchedule) {
  Fixture f;
  ASSERT_GE(f.corr->num_grids(), 3u);
  Schedule sched;
  sched.instants = {
      {{0, 0}},          // t=0: grid 0, current read
      {{1, 0}, {2, 1}},  // t=1: grid 1 stale, grid 2 current
      {},                // t=2: nobody
      {{0, 1}, {1, 3}},  // t=3: grid 0 two instants stale
      {{2, 2}},          // t=4
  };
  ASSERT_TRUE(validate_schedule(sched, f.corr->num_grids()).ok);

  Vector x_seq(f.b.size(), 0.0);
  const AsyncModelResult mr =
      replay_semiasync_schedule(*f.corr, f.b, x_seq, sched);

  RuntimeOptions ro = scripted_options(0, 3);
  ro.schedule = &sched;
  Vector x_thr(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x_thr, ro);

  EXPECT_LE(diff_inf(x_seq, x_thr), 1e-13);
  EXPECT_EQ(rr.instants, 5);
  EXPECT_EQ(mr.time_instants, 5);
  std::vector<int> expected(f.corr->num_grids(), 0);
  expected[0] = expected[1] = expected[2] = 2;
  EXPECT_EQ(rr.corrections, expected);
}

TEST(ScriptedRuntime, BitwiseReproducibleAcrossRunsAndThreadCounts) {
  Fixture f;
  Vector x_ref;
  RuntimeResult rr_ref;
  bool first = true;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    for (int rep = 0; rep < 2; ++rep) {
      Vector x(f.b.size(), 0.0);
      RuntimeOptions ro = scripted_options(42, threads);
      ro.record_trace = true;
      const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
      if (first) {
        x_ref = x;
        rr_ref = rr;
        first = false;
        continue;
      }
      // Weighted-Jacobi corrections are per-row independent of the team
      // chunking, so the iterates are identical bit for bit -- across
      // repeated runs AND across thread counts.
      for (std::size_t i = 0; i < x.size(); ++i) {
        ASSERT_EQ(x[i], x_ref[i]) << "threads=" << threads << " i=" << i;
      }
      EXPECT_EQ(rr.instants, rr_ref.instants);
      EXPECT_EQ(rr.corrections, rr_ref.corrections);
      ASSERT_EQ(rr.trace.size(), rr_ref.trace.size());
      for (std::size_t e = 0; e < rr.trace.size(); ++e) {
        EXPECT_EQ(rr.trace[e].grid, rr_ref.trace[e].grid);
        EXPECT_EQ(rr.trace[e].seconds, rr_ref.trace[e].seconds);
      }
    }
  }
}

TEST(ScriptedRuntime, RejectsInvalidScheduleBeforeSpawningThreads) {
  Fixture f;
  Schedule bad;
  bad.instants = {{{0, 0}}, {{0, 1}}, {{0, 0}}};  // non-monotone reads
  RuntimeOptions ro = scripted_options(0, 4);
  ro.schedule = &bad;
  Vector x(f.b.size(), 0.0);
  EXPECT_THROW(run_shared_memory(*f.corr, f.b, x, ro), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden-trace regression: the integer artifacts of a seeded deterministic
// run (sampled schedule, commit trace, correction counts) are committed as
// a fixture and must never drift; the final residual is compared loosely so
// the fixture stays platform-robust.
// ---------------------------------------------------------------------------

std::string golden_body(const Schedule& sched, const RuntimeResult& rr) {
  std::ostringstream os;
  os << schedule_to_string(sched);
  os << "trace:";
  for (const TraceEvent& ev : rr.trace) {
    os << " " << ev.grid << "@" << static_cast<int>(ev.seconds);
  }
  os << "\ninstants: " << rr.instants << "\ncounts:";
  for (int c : rr.corrections) os << " " << c;
  os << "\n";
  return os.str();
}

TEST(ScriptedRuntime, GoldenTraceMatchesFixture) {
  const std::string path =
      std::string(ASYNCMG_FIXTURE_DIR) + "/golden_trace_seed42.txt";

  Fixture f;
  const Schedule sched =
      sample_schedule(f.corr->num_grids(), semiasync_options(42, 0.7, 2, 6));
  RuntimeOptions ro = scripted_options(42, 4, 0.7, 2, 6);
  ro.schedule = &sched;
  ro.record_trace = true;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  const std::string body = golden_body(sched, rr);

  if (std::getenv("ASYNCMG_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << "# Golden deterministic-replay fixture: Multadd + weighted Jacobi\n"
           "# on the 10^3 7-point Laplacian, seed=42 alpha=0.7 delta=2\n"
           "# t_max=6 threads=4. Regenerate with ASYNCMG_REGEN_GOLDEN=1.\n"
        << body << "rel_res: " << std::scientific << rr.final_rel_res << "\n";
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with ASYNCMG_REGEN_GOLDEN=1)";
  std::string expected_body;
  double expected_rel_res = -1.0;
  for (std::string line; std::getline(in, line);) {
    if (line.rfind("#", 0) == 0) continue;
    if (line.rfind("rel_res:", 0) == 0) {
      expected_rel_res = std::stod(line.substr(8));
    } else {
      expected_body += line + "\n";
    }
  }
  EXPECT_EQ(body, expected_body);
  ASSERT_GE(expected_rel_res, 0.0);
  EXPECT_NEAR(rr.final_rel_res, expected_rel_res,
              2e-6 * std::abs(expected_rel_res));
}

// ---------------------------------------------------------------------------
// Invariant checkers
// ---------------------------------------------------------------------------

TEST(Invariants, SumOfCorrectionsConservationHoldsInAllModes) {
  struct Case {
    ExecMode mode;
    WritePolicy write;
    ResComp rescomp;
    bool residual_based;
  };
  const Case cases[] = {
      {ExecMode::kAsynchronous, WritePolicy::kLockWrite, ResComp::kLocal,
       false},
      {ExecMode::kAsynchronous, WritePolicy::kAtomicWrite, ResComp::kLocal,
       false},
      {ExecMode::kAsynchronous, WritePolicy::kAtomicWrite, ResComp::kGlobal,
       true},
      {ExecMode::kSynchronous, WritePolicy::kLockWrite, ResComp::kLocal,
       false},
      {ExecMode::kScripted, WritePolicy::kLockWrite, ResComp::kLocal, false},
  };
  for (const Case& cfg : cases) {
    Fixture f;
    RuntimeOptions ro;
    ro.mode = cfg.mode;
    ro.write = cfg.write;
    ro.rescomp = cfg.rescomp;
    ro.residual_based = cfg.residual_based;
    ro.t_max = 8;
    ro.num_threads = 8;
    ro.seed = 42;
    ro.check_invariants = true;
    Vector x(f.b.size(), 0.0);
    const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
    EXPECT_TRUE(rr.invariants.checked);
    EXPECT_TRUE(rr.invariants.conservation_ok)
        << runtime_config_name(ro)
        << " conservation error = " << rr.invariants.conservation_error;
    EXPECT_FALSE(rr.invariants.diverged);
  }
}

TEST(Invariants, AdversarialDelayPatternIsFlaggedAsDivergent) {
  Fixture f;
  const std::size_t grids = f.corr->num_grids();
  // Every grid re-reads the initial state forever: corrections never see
  // each other, x grows linearly, and the relative residual grows without
  // bound -- the divergence mode stabilised asynchronous FAC papers guard
  // against. Monotone reads hold (z constant at 0), so validation passes
  // and only the sentinel can flag it.
  Schedule sched;
  sched.instants.assign(60, {});
  for (auto& inst : sched.instants) {
    for (std::size_t g = 0; g < grids; ++g) {
      inst.push_back({g, 0});
    }
  }
  ASSERT_TRUE(validate_schedule(sched, grids).ok);

  RuntimeOptions ro = scripted_options(0, 4);
  ro.schedule = &sched;
  ro.check_invariants = true;
  ro.divergence_threshold = 10.0;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);

  EXPECT_TRUE(rr.invariants.diverged);
  EXPECT_GT(rr.invariants.max_rel_res, 10.0);
  EXPECT_GE(rr.invariants.divergence_instant, 0);
  EXPECT_LT(rr.instants, 60);  // halted at the sentinel, not at the end
  EXPECT_EQ(rr.invariants.divergence_instant, rr.instants - 1);
  // The sane seeded trajectory on the same problem does NOT trip the
  // sentinel (checked in SumOfCorrectionsConservationHoldsInAllModes).
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

TEST(Faults, KilledTeamRecoversUnderMasterCriterion) {
  Fixture f;
  ASSERT_GE(f.corr->num_grids(), 3u);
  FaultPlan plan;
  plan.kills.push_back({2, 3});          // grid 2 dies after 3 corrections
  plan.stalls.push_back({1, 0, 2, 2.0});  // grid 1 stalls before its first 2

  RuntimeOptions ro;
  ro.mode = ExecMode::kAsynchronous;
  ro.write = WritePolicy::kAtomicWrite;
  ro.criterion = StopCriterion::kMaster;  // Criterion 2: master waits on all
  ro.t_max = 5;
  ro.num_threads = 8;
  ro.faults = &plan;
  ro.check_invariants = true;
  Vector x(f.b.size(), 0.0);
  // Without dead-grid awareness the master would wait forever for grid 2;
  // completing at all IS the Criterion-2 recovery.
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);

  EXPECT_EQ(rr.invariants.killed_grids, (std::vector<std::size_t>{2}));
  EXPECT_EQ(rr.corrections[2], 3);
  for (std::size_t g = 0; g < rr.corrections.size(); ++g) {
    if (g != 2) {
      EXPECT_GE(rr.corrections[g], 5) << "grid " << g;
    }
  }
  EXPECT_EQ(rr.invariants.stalls_applied, 2);
  EXPECT_TRUE(rr.invariants.conservation_ok)
      << rr.invariants.conservation_error;
  EXPECT_LT(rr.final_rel_res, 0.9);  // still converging without grid 2
}

TEST(Faults, DroppedReadsAreCountedAndDoNotBreakConvergence) {
  Fixture f;
  FaultPlan plan;
  plan.dropped_reads.push_back({1, 2, 3});  // grid 1, corrections 2..4

  RuntimeOptions ro;
  ro.mode = ExecMode::kAsynchronous;
  ro.write = WritePolicy::kAtomicWrite;
  ro.rescomp = ResComp::kLocal;
  ro.criterion = StopCriterion::kIndependent;
  ro.t_max = 10;
  ro.num_threads = 8;
  ro.faults = &plan;
  ro.check_invariants = true;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);

  EXPECT_EQ(rr.invariants.reads_dropped, 3);
  for (int c : rr.corrections) EXPECT_EQ(c, 10);
  EXPECT_TRUE(rr.invariants.conservation_ok);
  EXPECT_LT(rr.final_rel_res, 1.0);
}

TEST(Faults, KillsApplyToScriptedReplays) {
  Fixture f;
  FaultPlan plan;
  plan.kills.push_back({1, 2});

  RuntimeOptions ro = scripted_options(42, 4);
  ro.faults = &plan;
  ro.check_invariants = true;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);

  EXPECT_EQ(rr.corrections[1], 2);
  EXPECT_EQ(rr.invariants.killed_grids, (std::vector<std::size_t>{1}));
  for (std::size_t g = 0; g < rr.corrections.size(); ++g) {
    if (g != 1) {
      EXPECT_EQ(rr.corrections[g], 8) << "grid " << g;
    }
  }
  EXPECT_TRUE(rr.invariants.conservation_ok)
      << rr.invariants.conservation_error;
  EXPECT_GT(rr.instants, 0);
}

}  // namespace
}  // namespace asyncmg
