// Tests for the geometric multigrid builder: trilinear interpolation
// structure, Galerkin hierarchy validity, and end-to-end solves through
// the same solver stack the AMG hierarchy uses.

#include <gtest/gtest.h>

#include "async/runtime.hpp"
#include "gmg/gmg.hpp"
#include "mesh/grid3d.hpp"
#include "sparse/spgemm.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

TEST(GmgInterp, ShapeAndRowSums) {
  const Index n = 7;  // coarse axis 3
  const CsrMatrix p = gmg_trilinear_interpolation(n);
  EXPECT_EQ(p.rows(), n * n * n);
  EXPECT_EQ(p.cols(), 27);
  // Row sums: 1 at points interior to the coarse cell structure, < 1 next
  // to the Dirichlet boundary (the dropped neighbor is the zero boundary).
  const Grid3D g{n, n, n};
  const auto rp = p.row_ptr();
  const auto v = p.values();
  for (Index k = 0; k < n; ++k) {
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) {
        double sum = 0.0;
        const Index row = g.id(i, j, k);
        for (Index kk = rp[row]; kk < rp[row + 1]; ++kk) {
          sum += v[static_cast<std::size_t>(kk)];
        }
        const bool near_boundary = i == 0 || i == n - 1 || j == 0 ||
                                   j == n - 1 || k == 0 || k == n - 1;
        if (near_boundary) {
          EXPECT_LT(sum, 1.0 + 1e-14);
        } else {
          EXPECT_NEAR(sum, 1.0, 1e-14) << i << "," << j << "," << k;
        }
      }
    }
  }
}

TEST(GmgInterp, CoarsePointsInjected) {
  const Index n = 7;
  const CsrMatrix p = gmg_trilinear_interpolation(n);
  const Grid3D fine{n, n, n};
  const Index nc = gmg_coarse_axis(n);
  const Grid3D coarse{nc, nc, nc};
  // Fine point (2j+1) per axis coincides with coarse point j: weight 1.
  for (Index ck = 0; ck < nc; ++ck) {
    for (Index cj = 0; cj < nc; ++cj) {
      for (Index ci = 0; ci < nc; ++ci) {
        const Index frow = fine.id(2 * ci + 1, 2 * cj + 1, 2 * ck + 1);
        EXPECT_DOUBLE_EQ(p.at(frow, coarse.id(ci, cj, ck)), 1.0);
      }
    }
  }
}

TEST(GmgInterp, RejectsBadSizes) {
  EXPECT_THROW(gmg_trilinear_interpolation(4), std::invalid_argument);
  EXPECT_THROW(gmg_trilinear_interpolation(1), std::invalid_argument);
}

TEST(Gmg, HierarchyGalerkinConsistent) {
  const Index n = 15;
  Problem prob = make_laplace_7pt(n);
  Hierarchy h = build_geometric_hierarchy(std::move(prob.a), n);
  EXPECT_GE(h.num_levels(), 3u);  // 15 -> 7 -> 3
  for (std::size_t k = 0; k + 1 < h.num_levels(); ++k) {
    const CsrMatrix rap = galerkin_product(h.matrix(k), h.interpolation(k));
    EXPECT_TRUE(rap.approx_equal(h.matrix(k + 1), 1e-11)) << "level " << k;
    EXPECT_TRUE(h.matrix(k + 1).is_symmetric(1e-10));
  }
}

TEST(Gmg, RejectsSizeMismatch) {
  Problem prob = make_laplace_7pt(7);
  EXPECT_THROW(build_geometric_hierarchy(std::move(prob.a), 9),
               std::invalid_argument);
}

TEST(Gmg, MultSolvesThroughGeometricHierarchy) {
  const Index n = 15;
  Problem prob = make_laplace_7pt(n);
  Hierarchy h = build_geometric_hierarchy(std::move(prob.a), n);
  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;
  MgSetup setup(std::move(h), mo);
  Rng rng(71);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  MultiplicativeMg mg(setup);
  const SolveStats st = mg.solve(b, x, 60, 1e-9);
  EXPECT_TRUE(st.converged) << st.final_rel_res();
  EXPECT_LE(st.cycles, 45);  // geometric MG on the model problem is fast
}

TEST(Gmg, AsyncMultaddRunsOnGeometricHierarchy) {
  const Index n = 15;
  Problem prob = make_laplace_7pt(n);
  Hierarchy h = build_geometric_hierarchy(std::move(prob.a), n);
  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;
  MgSetup setup(std::move(h), mo);
  Rng rng(73);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  const AdditiveCorrector corr(setup, ao);
  RuntimeOptions ro;
  ro.t_max = 30;
  ro.num_threads = 6;
  Vector x(b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(corr, b, x, ro);
  EXPECT_LT(rr.final_rel_res, 1e-2);
}

TEST(Gmg, GridIndependentCycleCounts) {
  std::vector<int> cycles;
  for (Index n : {7, 15, 31}) {
    Problem prob = make_laplace_7pt(n);
    Hierarchy h = build_geometric_hierarchy(std::move(prob.a), n);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    MgSetup setup(std::move(h), mo);
    Rng rng(79);
    const Vector b =
        random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
    Vector x(b.size(), 0.0);
    MultiplicativeMg mg(setup);
    const SolveStats st = mg.solve(b, x, 100, 1e-8);
    ASSERT_TRUE(st.converged) << "n=" << n;
    cycles.push_back(st.cycles);
  }
  EXPECT_LE(cycles.back(), cycles.front() + 10)
      << cycles[0] << " " << cycles[1] << " " << cycles[2];
}

}  // namespace
}  // namespace asyncmg
