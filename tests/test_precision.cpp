// Mixed-precision hierarchy storage tests (DESIGN.md section 12): the
// per-level PrecisionPolicy, demotion wiring through Hierarchy::build and
// MgSetup, serialization round-trips that preserve precision tags bit for
// bit, the fp64 defect-correction oracle discipline (fp32-coarse accepted
// only by error-norm/convergence bounds), cache byte accounting at the
// stored scalar width, and the telemetry level-precision tags.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "amg/hierarchy.hpp"
#include "amg/precision.hpp"
#include "amg/serialize.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/setup.hpp"
#include "service/hierarchy_cache.hpp"
#include "sparse/csr.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

// ---------------------------------------------------------------------------
// PrecisionPolicy unit behavior
// ---------------------------------------------------------------------------

TEST(PrecisionPolicy, DefaultIsAllF64) {
  const PrecisionPolicy pol;
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_EQ(pol.level_precision(k, 6, 100, 1000), Precision::kF64);
  }
}

TEST(PrecisionPolicy, F32CoarseDemotesFromFirstLowLevel) {
  PrecisionPolicy pol;
  pol.mode = PrecisionPolicy::Mode::kF32Coarse;
  pol.first_low_level = 2;
  EXPECT_EQ(pol.level_precision(0, 5, 0, 0), Precision::kF64);
  EXPECT_EQ(pol.level_precision(1, 5, 0, 0), Precision::kF64);
  EXPECT_EQ(pol.level_precision(2, 5, 0, 0), Precision::kF32);
  EXPECT_EQ(pol.level_precision(4, 5, 0, 0), Precision::kF32);
}

TEST(PrecisionPolicy, LevelZeroNeverDemotes) {
  PrecisionPolicy pol;
  pol.mode = PrecisionPolicy::Mode::kF32Coarse;
  pol.first_low_level = 0;  // clamped to 1
  EXPECT_EQ(pol.level_precision(0, 4, 0, 0), Precision::kF64);
  EXPECT_EQ(pol.level_precision(1, 4, 0, 0), Precision::kF32);
  pol.per_level = {Precision::kF32};  // explicit override still loses
  EXPECT_EQ(pol.level_precision(0, 4, 0, 0), Precision::kF64);
}

TEST(PrecisionPolicy, AutoDemotesByNnzFraction) {
  PrecisionPolicy pol;
  pol.mode = PrecisionPolicy::Mode::kAuto;
  pol.auto_nnz_fraction = 0.5;
  EXPECT_EQ(pol.level_precision(1, 4, 800, 1000), Precision::kF64);
  EXPECT_EQ(pol.level_precision(1, 4, 500, 1000), Precision::kF32);
  EXPECT_EQ(pol.level_precision(2, 4, 100, 1000), Precision::kF32);
  EXPECT_EQ(pol.level_precision(0, 4, 100, 1000), Precision::kF64);
}

TEST(PrecisionPolicy, PerLevelOverrideWins) {
  PrecisionPolicy pol;
  pol.mode = PrecisionPolicy::Mode::kF32Coarse;
  pol.per_level = {Precision::kF64, Precision::kF64, Precision::kF32};
  EXPECT_EQ(pol.level_precision(1, 5, 0, 0), Precision::kF64);
  EXPECT_EQ(pol.level_precision(2, 5, 0, 0), Precision::kF32);
  // Levels past the override vector fall back to the mode.
  EXPECT_EQ(pol.level_precision(3, 5, 0, 0), Precision::kF32);
}

// ---------------------------------------------------------------------------
// Matrix-level demotion semantics
// ---------------------------------------------------------------------------

TEST(ConvertPrecision, RoundTripEqualsExplicitFloatRounding) {
  Problem prob = make_laplace_7pt(6);
  CsrMatrix demoted = prob.a;
  demoted.convert_precision(Precision::kF32);
  EXPECT_EQ(demoted.precision(), Precision::kF32);
  EXPECT_EQ(demoted.value_bytes(),
            static_cast<std::size_t>(demoted.nnz()) * sizeof(float));

  // Widening back must give exactly double(float(v)).
  CsrMatrix widened = demoted;
  widened.convert_precision(Precision::kF64);
  const auto ref = prob.a.values();
  const auto got = widened.values();
  for (std::size_t k = 0; k < ref.size(); ++k) {
    EXPECT_EQ(got[k], static_cast<double>(static_cast<float>(ref[k]))) << k;
  }
}

TEST(ConvertPrecision, SpmvMatchesPreRoundedF64Bitwise) {
  // fp32 storage + fp64 accumulation must be bit-identical to an fp64
  // matrix whose values were rounded through float first: the float operand
  // promotes to double before every multiply, so the arithmetic is the same.
  Problem prob = make_laplace_27pt(5);
  CsrMatrix f32 = prob.a;
  f32.convert_precision(Precision::kF32);
  CsrMatrix rounded = f32;
  rounded.convert_precision(Precision::kF64);

  Rng rng(7);
  const Vector x = random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
  Vector y32(x.size(), 0.0), y64(x.size(), 0.0);
  f32.spmv(x, y32);
  rounded.spmv(x, y64);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_EQ(y32[i], y64[i]) << "row " << i;
  }
}

// ---------------------------------------------------------------------------
// Hierarchy wiring
// ---------------------------------------------------------------------------

AmgOptions f32coarse_amg_options() {
  AmgOptions opts;
  opts.precision = PrecisionPolicy{};
  opts.precision.mode = PrecisionPolicy::Mode::kF32Coarse;
  return opts;
}

TEST(HierarchyPrecision, BuildDemotesCoarseLevelsAndInterpolants) {
  Problem prob = make_laplace_7pt(10);
  Hierarchy h = Hierarchy::build(std::move(prob.a), f32coarse_amg_options());
  ASSERT_GE(h.num_levels(), 3u);
  EXPECT_EQ(h.matrix(0).precision(), Precision::kF64);
  for (std::size_t k = 1; k < h.num_levels(); ++k) {
    EXPECT_EQ(h.matrix(k).precision(), Precision::kF32) << "level " << k;
  }
  // P_k maps level k+1 to level k and follows the coarser level's width.
  for (std::size_t k = 0; k + 1 < h.num_levels(); ++k) {
    EXPECT_EQ(h.interpolation(k).precision(), h.matrix(k + 1).precision())
        << "P_" << k;
  }
}

TEST(HierarchyPrecision, SetupDerivedOperatorsFollowHierarchy) {
  Problem prob = make_laplace_7pt(8);
  MgOptions mo;
  mo.amg = f32coarse_amg_options();
  const MgSetup s(std::move(prob.a), mo);
  ASSERT_GE(s.num_levels(), 2u);
  for (std::size_t k = 0; k + 1 < s.num_levels(); ++k) {
    const Precision pc = s.a(k + 1).precision();
    EXPECT_EQ(s.p(k).precision(), pc) << "p_" << k;
    EXPECT_EQ(s.pbar(k).precision(), pc) << "pbar_" << k;
    EXPECT_EQ(s.r(k).precision(), pc) << "r_" << k;
    EXPECT_EQ(s.rbar(k).precision(), pc) << "rbar_" << k;
  }
}

// ---------------------------------------------------------------------------
// Serialization round-trip
// ---------------------------------------------------------------------------

void expect_same_matrix(const CsrMatrix& a, const CsrMatrix& b,
                        const char* what) {
  ASSERT_EQ(a.precision(), b.precision()) << what;
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  // approx_equal with tol 0 widens both sides identically, so this is a
  // bitwise comparison of the stored values at either width.
  EXPECT_TRUE(a.approx_equal(b, 0.0)) << what;
}

TEST(PrecisionSerialize, MixedHierarchyRoundTripsExactly) {
  Problem prob = make_laplace_7pt(9);
  const Hierarchy h =
      Hierarchy::build(std::move(prob.a), f32coarse_amg_options());
  ASSERT_GE(h.num_levels(), 2u);

  const std::string bytes = save_hierarchy_string(h);
  const Hierarchy h2 = load_hierarchy_string(bytes);

  ASSERT_EQ(h2.num_levels(), h.num_levels());
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    expect_same_matrix(h.matrix(k), h2.matrix(k), "A_k");
    if (k + 1 < h.num_levels()) {
      expect_same_matrix(h.interpolation(k), h2.interpolation(k), "P_k");
    }
  }
  // Serializing the reload reproduces the container byte for byte.
  EXPECT_EQ(save_hierarchy_string(h2), bytes);
}

TEST(PrecisionSerialize, AllF64HierarchyStillRoundTrips) {
  Problem prob = make_laplace_7pt(8);
  AmgOptions opts;
  opts.precision = PrecisionPolicy{};
  const Hierarchy h = Hierarchy::build(std::move(prob.a), opts);
  const Hierarchy h2 = load_hierarchy_string(save_hierarchy_string(h));
  ASSERT_EQ(h2.num_levels(), h.num_levels());
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    EXPECT_EQ(h2.matrix(k).precision(), Precision::kF64);
    expect_same_matrix(h.matrix(k), h2.matrix(k), "A_k");
  }
}

// ---------------------------------------------------------------------------
// fp64 oracle discipline: fp32-coarse is accepted by error-norm bounds
// ---------------------------------------------------------------------------

std::unique_ptr<MgSetup> solver_setup(Index n, PrecisionPolicy pol) {
  Problem prob = make_laplace_7pt(n);
  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;
  mo.amg.precision = pol;
  return std::make_unique<MgSetup>(std::move(prob.a), mo);
}

TEST(PrecisionConvergence, F32CoarseConvergesWithinErrorBounds) {
  const Index n = 12;
  PrecisionPolicy f32;
  f32.mode = PrecisionPolicy::Mode::kF32Coarse;
  auto s64 = solver_setup(n, PrecisionPolicy{});
  auto s32 = solver_setup(n, f32);

  Rng rng(21);
  const Vector b =
      random_vector(static_cast<std::size_t>(s64->a(0).rows()), rng);
  const double tol = 1e-8;

  Vector x64(b.size(), 0.0), x32(b.size(), 0.0);
  MultiplicativeMg mg64(*s64), mg32(*s32);
  const SolveStats st64 = mg64.solve(b, x64, 100, tol);
  const SolveStats st32 = mg32.solve(b, x32, 100, tol);

  // Both must converge; the convergence check itself runs on the fp64 fine
  // level, so st32.converged already certifies the fp64 residual bound.
  ASSERT_TRUE(st64.converged);
  ASSERT_TRUE(st32.converged) << "rel res " << st32.final_rel_res();

  // Rounded coarse corrections may cost extra cycles, but boundedly so.
  EXPECT_LE(st32.cycles, 2 * st64.cycles + 5)
      << "f64 " << st64.cycles << " cycles, f32coarse " << st32.cycles;

  // And the answers agree to well within the solve tolerance's accuracy.
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    num += (x64[i] - x32[i]) * (x64[i] - x32[i]);
    den += x64[i] * x64[i];
  }
  EXPECT_LT(std::sqrt(num / den), 1e-4);
}

TEST(PrecisionConvergence, AutoPolicyAlsoConverges) {
  PrecisionPolicy pol;
  pol.mode = PrecisionPolicy::Mode::kAuto;
  auto s = solver_setup(10, pol);
  Rng rng(22);
  const Vector b =
      random_vector(static_cast<std::size_t>(s->a(0).rows()), rng);
  Vector x(b.size(), 0.0);
  MultiplicativeMg mg(*s);
  EXPECT_TRUE(mg.solve(b, x, 100, 1e-8).converged);
}

// ---------------------------------------------------------------------------
// Cache byte accounting and residency
// ---------------------------------------------------------------------------

TEST(PrecisionCache, DemotedSetupIsSmallerAndResidencyImproves) {
  const Index n = 10;
  MgOptions mo64;
  mo64.amg.precision = PrecisionPolicy{};
  MgOptions mo32 = mo64;
  mo32.amg.precision.mode = PrecisionPolicy::Mode::kF32Coarse;

  // Four same-structure fine matrices with distinct fingerprints.
  std::vector<CsrMatrix> mats;
  for (int i = 0; i < 4; ++i) {
    Problem p = make_laplace_7pt(n);
    p.a.values_mutable()[0] += 1e-9 * (i + 1);
    mats.push_back(std::move(p.a));
  }

  const MgSetup probe64(mats[0], mo64);
  const MgSetup probe32(mats[0], mo32);
  const std::size_t b64 = estimate_setup_bytes(probe64);
  const std::size_t b32 = estimate_setup_bytes(probe32);
  // Coarse operators and all four derived interpolant families halve their
  // value bytes; the fp64 fine level and index arrays are unchanged.
  EXPECT_LT(b32, (b64 * 9) / 10) << "b64=" << b64 << " b32=" << b32;

  // Fixed budget that holds two demoted setups but not two fp64 ones.
  const std::size_t budget = 2 * b32 + b32 / 10;
  ASSERT_LT(budget, 2 * b64);

  const auto residency = [&](const MgOptions& mg) {
    HierarchyCacheOptions co;
    co.mg = mg;
    co.max_bytes = budget;
    HierarchyCache cache(co);
    for (const CsrMatrix& a : mats) cache.get_or_build(a);
    return cache.stats().resident_entries;
  };
  const std::size_t res64 = residency(mo64);
  const std::size_t res32 = residency(mo32);
  EXPECT_GE(res32, 2 * res64) << "res64=" << res64 << " res32=" << res32;
}

TEST(PrecisionCache, SpillReloadMatchesFreshBuildExactly) {
  // Spilled fp32 levels are written as exactly-widened doubles and demoted
  // again on load, so a reloaded setup must equal a fresh build bit for bit.
  Problem prob = make_laplace_7pt(9);
  const Hierarchy fresh =
      Hierarchy::build(prob.a, f32coarse_amg_options());
  const Hierarchy reloaded =
      load_hierarchy_string(save_hierarchy_string(fresh));
  for (std::size_t k = 0; k < fresh.num_levels(); ++k) {
    expect_same_matrix(fresh.matrix(k), reloaded.matrix(k), "A_k");
  }
}

// ---------------------------------------------------------------------------
// Telemetry tags
// ---------------------------------------------------------------------------

TEST(PrecisionTelemetry, LevelTagsEmittedOnlyForDemotedLevels) {
  auto s32 = solver_setup(8, [] {
    PrecisionPolicy p;
    p.mode = PrecisionPolicy::Mode::kF32Coarse;
    return p;
  }());
  auto s64 = solver_setup(8, PrecisionPolicy{});

  TelemetrySink sink;
  MultiplicativeMg mg32(*s32);
  mg32.set_telemetry(&sink, 0);
  std::size_t tags = 0;
  for (const DrainedEvent& de : sink.drain()) {
    if (de.ev.kind == EventKind::kLevelPrecision) {
      ++tags;
      EXPECT_GE(de.ev.a, 1);  // level 0 is never demoted
      EXPECT_EQ(static_cast<Precision>(de.ev.b), Precision::kF32);
    }
  }
  EXPECT_EQ(tags, s32->num_levels() - 1);

  // The all-fp64 oracle emits nothing: golden traces stay byte-identical.
  MultiplicativeMg mg64(*s64);
  mg64.set_telemetry(&sink, 0);
  for (const DrainedEvent& de : sink.drain()) {
    EXPECT_NE(de.ev.kind, EventKind::kLevelPrecision);
  }
}

}  // namespace
}  // namespace asyncmg
