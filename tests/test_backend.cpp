// Kernel backend properties (DESIGN.md section 15): the SIMD backends are
// bit-identical to the scalar oracle for every SELL solve kernel, on random
// ragged matrices and banded (contiguous fast-path) matrices, in fp64 and
// fp32, serial and parallel, at several thread counts; dispatch resolves
// explicit requests, the ASYNCMG_BACKEND environment override, and
// unsupported requests (graceful fallback, never a failure); and the SELL
// storage honours the 64-byte kernel alignment contract.

#include <gtest/gtest.h>
#include <omp.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "backend/backend.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "multigrid/setup.hpp"
#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/aligned.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

void expect_bitwise(const Vector& ref, const Vector& got, const char* what) {
  ASSERT_EQ(ref.size(), got.size()) << what;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i], got[i]) << what << " differs at " << i;
  }
}

CsrMatrix random_csr(Index rows, Index cols, double fill, Rng& rng) {
  std::vector<Triplet> trips;
  const auto target = static_cast<std::size_t>(
      fill * static_cast<double>(rows) * static_cast<double>(cols));
  for (std::size_t k = 0; k < target; ++k) {
    Triplet t;
    t.row = static_cast<Index>(rng.uniform_int(0, rows - 1));
    t.col = static_cast<Index>(rng.uniform_int(0, cols - 1));
    t.value = rng.uniform(-2.0, 2.0);
    trips.push_back(t);
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(trips));
}

/// Tridiagonal operator: every SELL chunk's columns are lane-contiguous, so
/// the conversion takes the unit-stride (ucol) fast path and the SIMD
/// kernels' contiguous x loads get exercised.
CsrMatrix tridiag_csr(Index n) {
  std::vector<Triplet> trips;
  for (Index i = 0; i < n; ++i) {
    if (i > 0) trips.push_back({i, i - 1, -1.0 - 0.001 * i});
    trips.push_back({i, i, 2.0 + 0.01 * i});
    if (i + 1 < n) trips.push_back({i, i + 1, -1.0 + 0.002 * i});
  }
  return CsrMatrix::from_triplets(n, n, std::move(trips));
}

/// Runs all four SELL solve kernels through `be` and asserts each result is
/// bitwise the scalar oracle's, for the given parallel flag.
void check_kernels_bitwise(const KernelBackend& be, const SellMatrix& s,
                           Rng& rng, bool parallel) {
  const KernelBackend& oracle = scalar_backend();
  const auto un = static_cast<std::size_t>(s.rows());
  const Vector x = random_vector(un, rng);
  const Vector b = random_vector(un, rng);
  const Vector d = random_vector(un, rng, 0.1, 1.0);

  Vector ref, got;
  oracle.sell_spmv(s, x, ref, parallel);
  be.sell_spmv(s, x, got, parallel);
  expect_bitwise(ref, got, "sell_spmv");

  oracle.sell_residual(s, b, x, ref, parallel);
  be.sell_residual(s, b, x, got, parallel);
  expect_bitwise(ref, got, "sell_residual");

  oracle.sell_diag_sweep(s, d, b, x, ref, parallel);
  be.sell_diag_sweep(s, d, b, x, got, parallel);
  expect_bitwise(ref, got, "sell_diag_sweep");

  oracle.sell_sub_spmv(s, b, x, ref, parallel);
  be.sell_sub_spmv(s, b, x, got, parallel);
  expect_bitwise(ref, got, "sell_sub_spmv");
}

// ---------------------------------------------------------------------
// Bitwise identity: each compiled+supported SIMD backend vs the scalar
// oracle, across chunk sizes (including non-multiples of the SIMD width,
// which force masked tail lanes), sigma windows, precisions, matrix
// shapes (ragged random with empty rows, banded contiguous fast path,
// rows not a multiple of C), serial and parallel, several thread counts.
// ---------------------------------------------------------------------

class SimdBackendIdentity : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    if (!backend_supported(GetParam())) {
      GTEST_SKIP() << backend_kind_name(GetParam())
                   << " not compiled or not supported by this CPU";
    }
  }
};

TEST_P(SimdBackendIdentity, RandomMatricesMatchScalarBitwise) {
  const KernelBackend& be = backend_for(GetParam());
  ASSERT_EQ(be.kind(), GetParam());
  // C = 6 is deliberately not a multiple of either SIMD width; C = 4 makes
  // every AVX-512 block structurally short. Low fill leaves empty rows.
  const std::pair<Index, Index> shapes[] = {{4, 4},   {6, 24},   {8, 1},
                                            {8, 32},  {16, 256}, {32, 32}};
  for (std::uint64_t seed : {3u, 17u}) {
    for (const auto& [chunk, sigma] : shapes) {
      for (const Precision prec : {Precision::kF64, Precision::kF32}) {
        Rng rng(seed);
        const Index n = static_cast<Index>(rng.uniform_int(50, 230));
        CsrMatrix a = random_csr(n, n, 0.06, rng);
        a.convert_precision(prec);
        const SellMatrix s = SellMatrix::from_csr(a, chunk, sigma);
        check_kernels_bitwise(be, s, rng, /*parallel=*/false);
      }
    }
  }
}

TEST_P(SimdBackendIdentity, ContiguousFastPathMatchesScalarBitwise) {
  const KernelBackend& be = backend_for(GetParam());
  for (const Precision prec : {Precision::kF64, Precision::kF32}) {
    // 119 rows: the tail chunk carries pad slots behind the real lanes.
    for (const Index n : {119, 640}) {
      Rng rng(29);
      CsrMatrix a = tridiag_csr(n);
      a.convert_precision(prec);
      const SellMatrix s = SellMatrix::from_csr(a, 8, 8);
      ASSERT_GT(s.contiguous_chunks(), 0u)
          << "tridiagonal operator should take the unit-stride path";
      check_kernels_bitwise(be, s, rng, /*parallel=*/false);
    }
  }
}

TEST_P(SimdBackendIdentity, ParallelMatchesScalarAtEveryThreadCount) {
  const KernelBackend& be = backend_for(GetParam());
  // Large enough to clear the solve-kernel OpenMP cutoff so the chunk
  // partition actually splits; one writer per row makes every thread count
  // produce identical bits.
  Rng rng(41);
  const Index n = 5000;
  CsrMatrix a = random_csr(n, n, 0.002, rng);
  const SellMatrix s = SellMatrix::from_csr(a, 8, 64);
  const int saved = omp_get_max_threads();
  for (int nt : {1, 2, 4}) {
    omp_set_num_threads(nt);
    check_kernels_bitwise(be, s, rng, /*parallel=*/true);
  }
  omp_set_num_threads(saved);
}

INSTANTIATE_TEST_SUITE_P(Isa, SimdBackendIdentity,
                         ::testing::Values(BackendKind::kAvx2,
                                           BackendKind::kAvx512),
                         [](const ::testing::TestParamInfo<BackendKind>& i) {
                           return std::string(backend_kind_name(i.param));
                         });

// ---------------------------------------------------------------------
// Dispatch: explicit requests, CPUID detection, environment override,
// and graceful fallback for unsupported requests.
// ---------------------------------------------------------------------

TEST(BackendDispatch, NamesRoundTrip) {
  EXPECT_STREQ(backend_kind_name(BackendKind::kAuto), "auto");
  EXPECT_STREQ(backend_kind_name(BackendKind::kScalar), "scalar");
  EXPECT_STREQ(backend_kind_name(BackendKind::kAvx2), "avx2");
  EXPECT_STREQ(backend_kind_name(BackendKind::kAvx512), "avx512");
}

TEST(BackendDispatch, ScalarAlwaysAvailableAndSupportImpliesCompiled) {
  EXPECT_TRUE(backend_compiled(BackendKind::kScalar));
  EXPECT_TRUE(backend_supported(BackendKind::kScalar));
  for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
    if (backend_supported(k)) {
      EXPECT_TRUE(backend_compiled(k));
    }
  }
  EXPECT_EQ(scalar_backend().kind(), BackendKind::kScalar);
}

TEST(BackendDispatch, DetectReturnsSupportedKindAndBackendForHonoursIt) {
  const BackendKind k = detect_backend();
  EXPECT_TRUE(backend_supported(k));
  EXPECT_EQ(backend_for(k).kind(), k);
  // Auto resolves to the detected kind when the env override is absent.
  unsetenv("ASYNCMG_BACKEND");
  EXPECT_EQ(resolve_backend_kind(BackendKind::kAuto), k);
}

TEST(BackendDispatch, ExplicitRequestPinsWhenSupportedFallsBackOtherwise) {
  for (const BackendKind k :
       {BackendKind::kScalar, BackendKind::kAvx2, BackendKind::kAvx512}) {
    KernelEngineOptions opts;
    opts.backend = k;
    const KernelBackend& be = resolve_backend(opts);
    if (backend_supported(k)) {
      EXPECT_EQ(be.kind(), k) << backend_kind_name(k);
    } else {
      // Unsupported requests must resolve to something runnable, not fail.
      EXPECT_EQ(be.kind(), detect_backend()) << backend_kind_name(k);
    }
  }
}

TEST(BackendDispatch, EnvOverrideAppliesOnlyToAutoAndInvalidFallsThrough) {
  setenv("ASYNCMG_BACKEND", "scalar", 1);
  EXPECT_EQ(resolve_backend_kind(BackendKind::kAuto), BackendKind::kScalar);
  // An explicit option pins past the env, mirroring PrecisionPolicy.
  if (backend_supported(BackendKind::kAvx2)) {
    EXPECT_EQ(resolve_backend_kind(BackendKind::kAvx2), BackendKind::kAvx2);
  }
  setenv("ASYNCMG_BACKEND", "sse9000", 1);
  EXPECT_EQ(resolve_backend_kind(BackendKind::kAuto), detect_backend());
  unsetenv("ASYNCMG_BACKEND");
}

TEST(BackendDispatch, SupportedBackendsStringListsScalarFirst) {
  const std::string s = supported_backends_string();
  EXPECT_EQ(s.rfind("scalar", 0), 0u) << s;
  for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
    EXPECT_EQ(s.find(backend_kind_name(k)) != std::string::npos,
              backend_supported(k))
        << s;
  }
}

// ---------------------------------------------------------------------
// Storage contracts the SIMD kernels rely on: 64-byte alignment of the
// SELL arrays, and the pass-bytes traffic model used by telemetry/bench.
// ---------------------------------------------------------------------

TEST(BackendStorage, SellArraysAre64ByteAligned) {
  Rng rng(5);
  const CsrMatrix a = random_csr(150, 150, 0.05, rng);
  for (const Precision prec : {Precision::kF64, Precision::kF32}) {
    CsrMatrix ap = a;
    ap.convert_precision(prec);
    const SellMatrix s = SellMatrix::from_csr(ap, 8, 16);
    const SellView v = s.view();
    EXPECT_TRUE(is_kernel_aligned(v.col_idx));
    if (prec == Precision::kF64) {
      EXPECT_TRUE(is_kernel_aligned(v.values));
    } else {
      EXPECT_TRUE(is_kernel_aligned(v.values_f32));
    }
  }
  AlignedVector<double> w(33);
  EXPECT_TRUE(is_kernel_aligned(w.data()));
}

TEST(BackendStorage, SellPassBytesCountsStoredWidthAndMetadata) {
  const Index n = 256;
  CsrMatrix a = tridiag_csr(n);
  const SellMatrix s64 = SellMatrix::from_csr(a, 8, 8);
  EXPECT_EQ(sell_pass_bytes(s64), s64.pass_bytes());
  EXPECT_GT(sell_pass_bytes(s64), s64.stored_entries() * sizeof(double));
  a.convert_precision(Precision::kF32);
  const SellMatrix s32 = SellMatrix::from_csr(a, 8, 8);
  // Same structure at half the value width must stream strictly less.
  EXPECT_LT(sell_pass_bytes(s32), sell_pass_bytes(s64));
}

// ---------------------------------------------------------------------
// Integration: MgSetup resolves one backend for the whole solve, cycles
// through a SIMD backend match the scalar backend bitwise, and the
// kBackendSelect telemetry tag is emitted exactly when non-scalar runs.
// ---------------------------------------------------------------------

std::unique_ptr<MgSetup> make_setup(BackendKind backend) {
  Problem prob = make_laplace_7pt(12);
  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.engine.backend = backend;
  return std::make_unique<MgSetup>(std::move(prob.a), mo);
}

TEST(BackendIntegration, SimdCycleMatchesScalarCycleBitwise) {
  if (!backend_supported(BackendKind::kAvx2) &&
      !backend_supported(BackendKind::kAvx512)) {
    GTEST_SKIP() << "no SIMD backend on this host";
  }
  const auto scalar = make_setup(BackendKind::kScalar);
  ASSERT_EQ(scalar->backend_kind(), BackendKind::kScalar);
  Rng rng(23);
  const Vector b =
      random_vector(static_cast<std::size_t>(scalar->a(0).rows()), rng);
  Vector x_ref(b.size(), 0.0);
  MultiplicativeMg mg_ref(*scalar);
  for (int t = 0; t < 3; ++t) mg_ref.cycle(b, x_ref);

  for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
    if (!backend_supported(k)) continue;
    const auto simd = make_setup(k);
    ASSERT_EQ(simd->backend_kind(), k);
    EXPECT_EQ(&simd->smoother(0).backend(), &simd->backend());
    Vector x(b.size(), 0.0);
    MultiplicativeMg mg(*simd);
    for (int t = 0; t < 3; ++t) mg.cycle(b, x);
    expect_bitwise(x_ref, x, backend_kind_name(k));
  }
}

TEST(BackendIntegration, BackendSelectEventEmittedOnlyForNonScalar) {
  const auto count_selects = [](BackendKind k, BackendKind* resolved) {
    const auto setup = make_setup(k);
    if (resolved != nullptr) *resolved = setup->backend_kind();
    TelemetrySink sink;
    MultiplicativeMg mg(*setup);
    mg.set_telemetry(&sink, 0);
    std::size_t n = 0;
    for (const DrainedEvent& de : sink.drain()) {
      if (de.ev.kind == EventKind::kBackendSelect) {
        EXPECT_EQ(static_cast<BackendKind>(de.ev.a), setup->backend_kind());
        EXPECT_EQ(static_cast<BackendKind>(de.ev.b), k);
        ++n;
      }
    }
    return n;
  };
  // Scalar setups stay silent: golden traces recorded before the backend
  // subsystem existed must match under ASYNCMG_BACKEND=scalar.
  EXPECT_EQ(count_selects(BackendKind::kScalar, nullptr), 0u);
  for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
    if (!backend_supported(k)) continue;
    BackendKind resolved = BackendKind::kAuto;
    EXPECT_EQ(count_selects(k, &resolved), 1u);
    EXPECT_EQ(resolved, k);
  }
}

}  // namespace
}  // namespace asyncmg
