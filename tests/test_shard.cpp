// Tests for the sharded solver subsystem: the domain partitioner's halo
// round-trip identities, local-stencil bitwise equality with the global
// kernels, the multi-shard bitwise oracle (S-shard synchronous == 1-shard),
// free-running convergence, fault injection, the channel transport, and the
// consistent-hash router.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "async/model.hpp"
#include "mesh/problems.hpp"
#include "shard/partition.hpp"
#include "shard/router.hpp"
#include "shard/solver.hpp"
#include "shard/transport.hpp"
#include "sparse/vec.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(int m = 8) {
    Problem prob = make_laplace_7pt(m);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    ao.kind = AdditiveKind::kMultadd;
    Rng rng(31);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  AdditiveOptions ao;
  Vector b;
};

// ---------------------------------------------------------------------------
// Partitioner
// ---------------------------------------------------------------------------

TEST(ShardPartition, EveryRowOwnedExactlyOnce) {
  Fixture f;
  const CsrMatrix& a = f.setup->a(0);
  for (std::size_t shards : {1u, 2u, 3u, 4u, 7u}) {
    const ShardPlan plan = make_shard_plan(a, shards);
    ASSERT_EQ(plan.owned.size(), shards);
    std::vector<int> owned_count(static_cast<std::size_t>(plan.n), 0);
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t i = plan.owned[s].begin; i < plan.owned[s].end; ++i) {
        ++owned_count[i];
      }
    }
    for (int c : owned_count) EXPECT_EQ(c, 1);
    for (Index row = 0; row < plan.n; ++row) {
      const std::size_t s = plan.owner_of(row);
      EXPECT_GE(static_cast<std::size_t>(row), plan.owned[s].begin);
      EXPECT_LT(static_cast<std::size_t>(row), plan.owned[s].end);
    }
  }
}

TEST(ShardPartition, HaloIndicesRoundTrip) {
  Fixture f;
  const ShardPlan plan = make_shard_plan(f.setup->a(0), 4);
  for (std::size_t s = 0; s < plan.num_shards; ++s) {
    // halo[s] is sorted, deduplicated, and entirely foreign.
    EXPECT_TRUE(std::is_sorted(plan.halo[s].begin(), plan.halo[s].end()));
    EXPECT_EQ(std::adjacent_find(plan.halo[s].begin(), plan.halo[s].end()),
              plan.halo[s].end());
    for (Index g : plan.halo[s]) EXPECT_NE(plan.owner_of(g), s);

    for (std::size_t p = 0; p < plan.num_shards; ++p) {
      if (p == s) continue;
      // send[p][s] == halo[s] restricted to owned[p].
      std::vector<Index> expected;
      for (Index g : plan.halo[s]) {
        if (plan.owner_of(g) == p) expected.push_back(g);
      }
      EXPECT_EQ(plan.send[p][s], expected);
      // ghost_slots[s][p] is aligned with send[p][s]: slot i holds the
      // local position of global index send[p][s][i].
      ASSERT_EQ(plan.ghost_slots[s][p].size(), plan.send[p][s].size());
      for (std::size_t i = 0; i < plan.send[p][s].size(); ++i) {
        const std::size_t slot = plan.ghost_slots[s][p][i];
        ASSERT_GE(slot, plan.owned[s].size());
        EXPECT_EQ(plan.halo[s][slot - plan.owned[s].size()],
                  plan.send[p][s][i]);
      }
    }
  }
}

TEST(ShardPartition, RejectsBadShardCounts) {
  Fixture f;
  EXPECT_THROW(make_shard_plan(f.setup->a(0), 0), std::invalid_argument);
  EXPECT_THROW(
      make_shard_plan(f.setup->a(0),
                      static_cast<std::size_t>(f.setup->a(0).rows()) + 1),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Local stencil bitwise equality
// ---------------------------------------------------------------------------

TEST(ShardStencil, ResidualMatchesGlobalBitwise) {
  Fixture f;
  const CsrMatrix& a = f.setup->a(0);
  const std::size_t n = f.b.size();
  Rng rng(7);
  const Vector x = random_vector(n, rng);

  Vector r_global;
  a.residual(f.b, x, r_global);

  for (std::size_t shards : {2u, 3u, 5u}) {
    const ShardPlan plan = make_shard_plan(a, shards);
    Vector r_sharded(n, 0.0);
    for (std::size_t s = 0; s < shards; ++s) {
      Vector x_local(plan.local_size(s));
      std::copy(x.begin() + static_cast<std::ptrdiff_t>(plan.owned[s].begin),
                x.begin() + static_cast<std::ptrdiff_t>(plan.owned[s].end),
                x_local.begin());
      for (std::size_t pos = 0; pos < plan.halo[s].size(); ++pos) {
        x_local[plan.owned[s].size() + pos] =
            x[static_cast<std::size_t>(plan.halo[s][pos])];
      }
      plan.local_a[s].residual_into(f.b, x_local, r_sharded);
    }
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(r_sharded[i], r_global[i]);
  }
}

// ---------------------------------------------------------------------------
// Bitwise oracle: S-shard synchronous == 1-shard synchronous
// ---------------------------------------------------------------------------

TEST(ShardSolver, SynchronousIsBitwiseShardCountInvariant) {
  Fixture f;
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.t_max = 10;

  so.num_shards = 1;
  ShardedSolver oracle(*f.setup, f.ao, so);
  Vector x1(f.b.size(), 0.0);
  const ShardResult r1 = oracle.solve(f.b, x1);
  EXPECT_LT(r1.final_rel_res, 1e-2);

  for (std::size_t shards : {2u, 4u, 7u}) {
    so.num_shards = shards;
    ShardedSolver solver(*f.setup, f.ao, so);
    Vector xs(f.b.size(), 0.0);
    const ShardResult rs = solver.solve(f.b, xs);
    for (std::size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(xs[i], x1[i]);
    EXPECT_EQ(rs.final_rel_res, r1.final_rel_res);
    for (int c : rs.corrections) EXPECT_EQ(c, so.t_max);
  }
}

TEST(ShardSolver, SyncTransportMatchesScriptedSyncBitwise) {
  // The bulk-synchronous rounds executed over the real transport (threads +
  // channel rings + two-exchange rounds, shard/worker.hpp) replay the
  // scripted full-schedule oracle bitwise: every read is fixed by the round
  // structure, not by message timing. This is the in-process anchor of the
  // multi-process oracle chain (sockets == channels == scripted == 1
  // shard).
  Fixture f;
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.t_max = 10;
  so.num_shards = 1;
  ShardedSolver oracle(*f.setup, f.ao, so);
  Vector x1(f.b.size(), 0.0);
  const ShardResult r1 = oracle.solve(f.b, x1);

  for (std::size_t shards : {1u, 2u, 4u}) {
    ShardOptions st_opts;
    st_opts.mode = ShardMode::kSyncTransport;
    st_opts.num_shards = shards;
    st_opts.t_max = 10;
    ShardedSolver solver(*f.setup, f.ao, st_opts);
    Vector x(f.b.size(), 0.0);
    const ShardResult r = solver.solve(f.b, x);
    for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x1[i]);
    EXPECT_EQ(r.final_rel_res, r1.final_rel_res);
    for (int c : r.corrections) EXPECT_EQ(c, st_opts.t_max);
  }
}

TEST(ShardSolver, SyncTransportSurvivesKilledShard) {
  // Criterion-2 for the BSP rounds: a killed shard's frames stop coming;
  // the waits exempt it after its death is published, nobody deadlocks.
  Fixture f;
  FaultPlan faults;
  faults.kills.push_back({/*grid=*/1, /*after_corrections=*/3});
  ShardOptions so;
  so.mode = ShardMode::kSyncTransport;
  so.num_shards = 3;
  so.t_max = 12;
  so.faults = &faults;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  ASSERT_EQ(r.killed_shards.size(), 1u);
  EXPECT_EQ(r.killed_shards[0], 1u);
  EXPECT_EQ(r.corrections[1], 3);
  EXPECT_EQ(r.corrections[0], 12);
  EXPECT_EQ(r.corrections[2], 12);
  EXPECT_LT(r.final_rel_res, 1.0);
}

TEST(ShardSolver, TransportCountersSurfaceInMetricsRegistry) {
  // Satellite of the net PR: channel sends/drops are mirrored onto the
  // telemetry metrics registry so they surface in every stats JSON that
  // merges the registry.
  Fixture f;
  TelemetrySink sink;
  ShardOptions so;
  so.mode = ShardMode::kAsynchronous;
  so.num_shards = 3;
  so.t_max = 10;
  so.telemetry = &sink;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  EXPECT_GT(r.packets_sent, 0u);
  EXPECT_EQ(
      sink.metrics().counter("shard.transport.packets_sent").value(),
      r.packets_sent);
  EXPECT_EQ(
      sink.metrics().counter("shard.transport.packets_dropped").value(),
      r.packets_dropped);
  const std::string json = sink.metrics().to_json();
  EXPECT_NE(json.find("shard.transport.packets_sent"), std::string::npos);
  const std::string rj = r.to_json();
  EXPECT_NE(rj.find("\"packets_sent\":"), std::string::npos);
  EXPECT_NE(rj.find("\"killed_shards\":[]"), std::string::npos);
}

TEST(ShardSolver, SingleShardSyncMatchesSemiAsyncReplayBitwise) {
  // The 1-shard synchronous run IS the sequential Section-III model on the
  // all-grids-fresh schedule.
  Fixture f;
  AdditiveCorrector corr(*f.setup, f.ao);
  Vector x_model(f.b.size(), 0.0);
  const AsyncModelResult mr = replay_semiasync_schedule(
      corr, f.b, x_model, full_schedule(corr.num_grids(), 10));

  ShardOptions so;
  so.num_shards = 1;
  so.mode = ShardMode::kSynchronous;
  so.t_max = 10;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);

  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(x[i], x_model[i]);
  EXPECT_EQ(r.final_rel_res, mr.final_rel_res);
}

// ---------------------------------------------------------------------------
// Scripted replay
// ---------------------------------------------------------------------------

TEST(ShardSolver, ScriptedRunsAreBitwiseReproducible) {
  Fixture f;
  ShardOptions so;
  so.num_shards = 3;
  so.mode = ShardMode::kScripted;
  so.t_max = 12;
  so.script_alpha = 0.6;
  so.script_max_delay = 3;
  so.seed = 42;

  Vector xa(f.b.size(), 0.0), xb(f.b.size(), 0.0);
  ShardedSolver s1(*f.setup, f.ao, so);
  ShardedSolver s2(*f.setup, f.ao, so);
  const ShardResult ra = s1.solve(f.b, xa);
  const ShardResult rb = s2.solve(f.b, xb);
  for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xb[i]);
  EXPECT_EQ(ra.final_rel_res, rb.final_rel_res);
  EXPECT_EQ(ra.instants, rb.instants);
}

TEST(ShardSolver, ScriptedStaleReadsStillConverge) {
  Fixture f;
  ShardOptions so;
  so.num_shards = 4;
  so.mode = ShardMode::kScripted;
  so.t_max = 40;
  so.script_alpha = 0.5;
  so.script_max_delay = 4;
  so.record_history = true;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  EXPECT_LT(r.final_rel_res, 1e-4);
  EXPECT_FALSE(r.rel_res_history.empty());
  EXPECT_EQ(r.rel_res_history.back(), r.final_rel_res);
}

TEST(ShardSolver, ScriptedRejectsInvalidSchedule) {
  Fixture f;
  Schedule bad;
  bad.instants.push_back({{5, 0}});  // grid id out of range for 2 shards
  ShardOptions so;
  so.num_shards = 2;
  so.mode = ShardMode::kScripted;
  so.schedule = &bad;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  EXPECT_THROW(solver.solve(f.b, x), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Free-running asynchronous execution
// ---------------------------------------------------------------------------

TEST(ShardSolver, AsyncConvergesToSingleShardTolerance) {
  // The paper's trade: stale reads degrade the per-correction rate, so the
  // asynchronous discipline needs more corrections to reach a given
  // tolerance -- but it does reach it (no stagnation), with no barriers.
  Fixture f;
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.num_shards = 1;
  so.t_max = 40;
  ShardedSolver oracle(*f.setup, f.ao, so);
  Vector x1(f.b.size(), 0.0);
  const double tol = oracle.solve(f.b, x1).final_rel_res * 50.0;

  for (std::size_t shards : {2u, 4u}) {
    ShardOptions ao_opts;
    ao_opts.mode = ShardMode::kAsynchronous;
    ao_opts.num_shards = shards;
    ao_opts.t_max = 120;  // 3x the sync correction budget
    ao_opts.max_lag = 1;
    ShardedSolver solver(*f.setup, f.ao, ao_opts);
    Vector x(f.b.size(), 0.0);
    const ShardResult r = solver.solve(f.b, x);
    EXPECT_LT(r.final_rel_res, tol) << shards << " shards";
    for (int c : r.corrections) EXPECT_EQ(c, ao_opts.t_max);
    EXPECT_GT(r.packets_sent, 0u);
  }
}

TEST(ShardSolver, AsyncMatchesSequentialModelErrorNorm) {
  // The free-running executor is an instance of the Section-III semi-async
  // model with read delay ~ max_lag; after the same correction budget its
  // error should be within a couple of orders of the sequential model run
  // with a comparable delay bound.
  Fixture f;
  AdditiveCorrector corr(*f.setup, f.ao);
  AsyncModelOptions mo;
  mo.kind = AsyncModelKind::kSemiAsync;
  mo.alpha = 0.7;
  mo.max_delay = 3;
  mo.updates_per_grid = 30;
  Vector x_model(f.b.size(), 0.0);
  const AsyncModelResult mr = run_async_model(corr, f.b, x_model, mo);

  ShardOptions so;
  so.mode = ShardMode::kAsynchronous;
  so.num_shards = 4;
  so.t_max = 30;
  so.max_lag = 3;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  EXPECT_LT(r.final_rel_res, std::max(mr.final_rel_res * 100.0, 1e-6));
}

TEST(ShardSolver, AsyncSurvivesDroppedExchanges) {
  Fixture f;
  FaultPlan faults;
  faults.dropped_reads.push_back({/*grid=*/0, /*from_correction=*/2,
                                  /*corrections=*/10});
  ShardOptions so;
  so.mode = ShardMode::kAsynchronous;
  so.num_shards = 3;
  so.t_max = 60;
  so.faults = &faults;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  EXPECT_EQ(r.reads_dropped, 10);
  EXPECT_LT(r.final_rel_res, 1e-3);  // stale views slow, not break, progress
}

TEST(ShardSolver, AsyncRecoversFromKilledShard) {
  // Criterion-2 recovery: a killed shard's block stops moving; the others
  // neither deadlock nor stop. The global residual stays bounded by the
  // dead shard's frozen rows.
  Fixture f;
  FaultPlan faults;
  faults.kills.push_back({/*grid=*/1, /*after_corrections=*/3});
  ShardOptions so;
  so.mode = ShardMode::kAsynchronous;
  so.num_shards = 3;
  so.t_max = 25;
  so.faults = &faults;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  ASSERT_EQ(r.killed_shards.size(), 1u);
  EXPECT_EQ(r.killed_shards[0], 1u);
  EXPECT_EQ(r.corrections[1], 3);
  EXPECT_EQ(r.corrections[0], 25);
  EXPECT_EQ(r.corrections[2], 25);
  EXPECT_LT(r.final_rel_res, 1.0);  // progress despite the dead block
}

TEST(ShardSolver, ScriptedHonorsKills) {
  Fixture f;
  FaultPlan faults;
  faults.kills.push_back({/*grid=*/0, /*after_corrections=*/2});
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.num_shards = 2;
  so.t_max = 8;
  so.faults = &faults;
  ShardedSolver solver(*f.setup, f.ao, so);
  Vector x(f.b.size(), 0.0);
  const ShardResult r = solver.solve(f.b, x);
  EXPECT_EQ(r.corrections[0], 2);
  EXPECT_EQ(r.corrections[1], 8);
  ASSERT_EQ(r.killed_shards.size(), 1u);
  EXPECT_EQ(r.killed_shards[0], 0u);
}

// ---------------------------------------------------------------------------
// Options validation
// ---------------------------------------------------------------------------

TEST(ShardOptionsTest, RejectsBadValues) {
  Fixture f;
  auto expect_throws = [&](ShardOptions so) {
    EXPECT_THROW(ShardedSolver(*f.setup, f.ao, so), std::invalid_argument);
  };
  ShardOptions so;
  so.num_shards = 0;
  expect_throws(so);
  so = {};
  so.t_max = 0;
  expect_throws(so);
  so = {};
  so.channel_capacity = 0;
  expect_throws(so);
  so = {};
  so.latency_us = -1.0;
  expect_throws(so);
  so = {};
  so.script_alpha = 0.0;
  expect_throws(so);
  so = {};
  so.script_alpha = 1.5;
  expect_throws(so);
  so = {};
  so.script_max_delay = -1;
  expect_throws(so);
}

TEST(ChannelTransportTest, RejectsBadOptions) {
  ChannelTransportOptions o;
  o.num_shards = 0;
  EXPECT_THROW(ChannelTransport{o}, std::invalid_argument);
  o = {};
  o.capacity = 0;
  EXPECT_THROW(ChannelTransport{o}, std::invalid_argument);
  o = {};
  o.latency_us = -2.0;
  EXPECT_THROW(ChannelTransport{o}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Channel transport semantics
// ---------------------------------------------------------------------------

TEST(ChannelTransportTest, DeliversNewestAndCountsDrops) {
  ChannelTransportOptions o;
  o.num_shards = 2;
  o.capacity = 4;
  ChannelTransport tr(o);

  HaloPacket out;
  EXPECT_FALSE(tr.recv_latest(1, 0, HaloTag::kBoundaryX, out));

  for (std::uint64_t seq = 0; seq < 3; ++seq) {
    HaloPacket p;
    p.seq = seq;
    p.data = {static_cast<double>(seq)};
    EXPECT_TRUE(tr.send(0, 1, HaloTag::kBoundaryX, std::move(p)));
  }
  ASSERT_TRUE(tr.recv_latest(1, 0, HaloTag::kBoundaryX, out));
  EXPECT_EQ(out.seq, 2u);  // newest wins; older packets are drained
  EXPECT_FALSE(tr.recv_latest(1, 0, HaloTag::kBoundaryX, out));

  // Fill the ring; the overflowing packet is dropped and counted.
  for (std::uint64_t seq = 0; seq < o.capacity; ++seq) {
    EXPECT_TRUE(tr.send(0, 1, HaloTag::kResidualBlock, HaloPacket{seq, {}}));
  }
  EXPECT_FALSE(tr.send(0, 1, HaloTag::kResidualBlock, HaloPacket{99, {}}));
  EXPECT_EQ(tr.packets_dropped(), 1u);
  EXPECT_EQ(tr.packets_sent(), 3u + o.capacity);

  // Tags and directions are independent channels.
  EXPECT_FALSE(tr.recv_latest(0, 1, HaloTag::kResidualBlock, out));
  ASSERT_TRUE(tr.recv_latest(1, 0, HaloTag::kResidualBlock, out));
  EXPECT_EQ(out.seq, o.capacity - 1);
}

// ---------------------------------------------------------------------------
// Consistent-hash router
// ---------------------------------------------------------------------------

TEST(HashRing, DeterministicBalancedAndStable) {
  const auto ring = build_hash_ring(4, 64, 1);
  EXPECT_EQ(ring, build_hash_ring(4, 64, 1));
  EXPECT_EQ(ring.size(), 4u * 64u);
  EXPECT_TRUE(std::is_sorted(
      ring.begin(), ring.end(),
      [](const RingNode& l, const RingNode& r) { return l.hash < r.hash; }));

  // Every backend serves a nontrivial share of a uniform key population.
  std::vector<int> hits(4, 0);
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) ++hits[ring_lookup(ring, rng.next_u64())];
  for (int h : hits) EXPECT_GT(h, 4000 / 16);
}

TEST(HashRing, AddingABackendRemapsOnlyAFraction) {
  const auto before = build_hash_ring(4, 64, 1);
  const auto after = build_hash_ring(5, 64, 1);
  Rng rng(6);
  int moved = 0;
  const int keys = 5000;
  for (int i = 0; i < keys; ++i) {
    const std::uint64_t k = rng.next_u64();
    if (ring_lookup(before, k) != ring_lookup(after, k)) ++moved;
  }
  // Ideal is 1/5 of the keys; allow generous slack for vnode variance.
  EXPECT_LT(moved, keys / 2);
  EXPECT_GT(moved, 0);
}

TEST(ShardRouterTest, RejectsBadOptions) {
  ShardRouterOptions o;
  o.num_backends = 0;
  EXPECT_THROW(ShardRouter{o}, std::invalid_argument);
  o = {};
  o.vnodes_per_backend = 0;
  EXPECT_THROW(ShardRouter{o}, std::invalid_argument);
  o = {};
  o.service.num_threads = 0;
  EXPECT_THROW(ShardRouter{o}, std::invalid_argument);
}

TEST(ShardRouterTest, RoutesWithCacheAffinityAndMergesStats) {
  ShardRouterOptions o;
  o.num_backends = 2;
  o.service.num_threads = 2;
  o.service.cache.mg.smoother.type = SmootherType::kWeightedJacobi;
  o.service.cache.mg.smoother.omega = 0.9;
  o.service.default_t_max = 30;
  ShardRouter router(o);

  Problem p1 = make_laplace_7pt(6);
  Problem p2 = make_laplace_7pt(7);
  Rng rng(11);
  const Vector b1 =
      random_vector(static_cast<std::size_t>(p1.a.rows()), rng);
  const Vector b2 =
      random_vector(static_cast<std::size_t>(p2.a.rows()), rng);

  // The same matrix always routes to the same backend.
  const std::size_t home1 = router.backend_of(p1.a);
  EXPECT_EQ(home1, router.backend_of(p1.a));

  auto f1 = router.submit(p1.a, b1);
  auto f1again = router.submit(p1.a, b1);
  auto f2 = router.submit(p2.a, b2);
  const SolveResponse r1 = f1.get();
  const SolveResponse r1b = f1again.get();
  const SolveResponse r2 = f2.get();
  EXPECT_LT(r1.stats.final_rel_res(), 1e-6);
  EXPECT_LT(r2.stats.final_rel_res(), 1e-6);
  // Affinity means the repeat request hit the backend's warm cache.
  EXPECT_TRUE(r1.cache_hit || r1b.cache_hit);

  const std::string json = router.stats_json();
  EXPECT_NE(json.find("\"routed\":3"), std::string::npos);
  EXPECT_NE(json.find("\"backends\":2"), std::string::npos);
  EXPECT_NE(json.find("\"routed_per_backend\":["), std::string::npos);
  EXPECT_NE(json.find("\"backend_stats\":["), std::string::npos);
  EXPECT_NE(json.find("\"submitted\":3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Telemetry
// ---------------------------------------------------------------------------

TEST(ShardTelemetry, ScriptedTraceIsDeterministicWithShardTracks) {
  Fixture f;
  auto run_trace = [&]() {
    TelemetryOptions topts;
    topts.logical_time = true;
    TelemetrySink sink(topts);
    ShardOptions so;
    so.mode = ShardMode::kSynchronous;
    so.num_shards = 2;
    so.t_max = 4;
    so.telemetry = &sink;
    ShardedSolver solver(*f.setup, f.ao, so);
    Vector x(f.b.size(), 0.0);
    solver.solve(f.b, x);
    ChromeTraceOptions copts;
    copts.logical_time = true;
    return chrome_trace_json(sink.drain(), copts);
  };
  const std::string trace = run_trace();
  EXPECT_EQ(trace, run_trace());
  EXPECT_NE(trace.find("\"shard 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"shard 1\""), std::string::npos);
  EXPECT_NE(trace.find("shard-step"), std::string::npos);
}

}  // namespace
}  // namespace asyncmg
