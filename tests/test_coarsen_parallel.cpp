// Property tests for the row-parallel C/F splitting (DESIGN.md section 13).
// Over seeded random CSR strength graphs and structured Laplacian strength
// matrices, every parallel algorithm must (a) be bitwise identical for every
// thread count, (b) equal coarsen_parallel_oracle -- the naive full-sweep
// serial implementation of the same rounds -- exactly, (c) with kRngSequence
// weights reproduce the verbatim serial PMIS, and (d) satisfy the splitting
// contracts: a valid independent set on symmetric strength graphs and
// C-coverage of every non-isolated F point in general.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "amg/coarsen.hpp"
#include "amg/hierarchy.hpp"
#include "amg/strength.hpp"
#include "mesh/problems.hpp"
#include "sparse/csr.hpp"
#include "sparse/spgemm.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

// 8 oversubscribes small machines on purpose: the splitting must not depend
// on how many cores actually exist.
const std::vector<int> kThreadCounts = {1, 2, 4, 8};

const std::vector<CoarsenAlgo> kAlgos = {CoarsenAlgo::kRS, CoarsenAlgo::kPMIS,
                                         CoarsenAlgo::kHMIS};

const char* algo_name(CoarsenAlgo a) {
  switch (a) {
    case CoarsenAlgo::kRS:
      return "RS";
    case CoarsenAlgo::kPMIS:
      return "PMIS";
    case CoarsenAlgo::kHMIS:
      return "HMIS";
  }
  return "?";
}

/// Random sparse 0/1 strength pattern (no diagonal, duplicate entries merge,
/// some rows come out empty -- the isolated-point paths get exercised).
/// Sized above kSetupSerialCutoff so the OpenMP paths actually run.
CsrMatrix random_strength(Index n, double avg_degree, Rng& rng) {
  std::vector<Triplet> trips;
  const auto target =
      static_cast<std::size_t>(avg_degree * static_cast<double>(n));
  for (std::size_t k = 0; k < target; ++k) {
    Triplet t;
    t.row = static_cast<Index>(rng.uniform_int(0, n - 1));
    t.col = static_cast<Index>(rng.uniform_int(0, n - 1));
    if (t.row == t.col) continue;
    t.value = 1.0;
    trips.push_back(t);
  }
  return CsrMatrix::from_triplets(n, n, std::move(trips));
}

/// Pattern-symmetrized copy: S + S^T (values irrelevant, only the pattern
/// drives the splitting's neighbor loops).
CsrMatrix symmetrize(const CsrMatrix& s) {
  return add(s, s.transpose(), 1.0, 1.0);
}

void expect_same_splitting(const Splitting& a, const Splitting& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i] == PointType::kCoarse, b[i] == PointType::kCoarse)
        << what << ": point " << i;
  }
}

/// The graphs every equivalence test runs over: random patterns of varying
/// density plus the strength matrices of structured Laplacians.
std::vector<CsrMatrix> test_graphs() {
  std::vector<CsrMatrix> graphs;
  Rng rng(20240808);
  graphs.push_back(random_strength(3000, 2.0, rng));
  graphs.push_back(random_strength(3000, 6.0, rng));
  graphs.push_back(random_strength(4096, 12.0, rng));
  graphs.push_back(strength_matrix(make_laplace_7pt(14).a, 0.25));
  graphs.push_back(strength_matrix(make_laplace_27pt(16).a, 0.25));
  return graphs;
}

TEST(CoarsenParallel, BitIdenticalAcrossThreadCountsAndToOracle) {
  const std::vector<CsrMatrix> graphs = test_graphs();
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (CoarsenAlgo algo : kAlgos) {
      CoarsenParams p;
      p.algo = algo;
      p.seed = 42 + g;
      const Splitting oracle = coarsen_parallel_oracle(graphs[g], p);
      for (int nt : kThreadCounts) {
        p.num_threads = nt;
        expect_same_splitting(oracle, coarsen_parallel(graphs[g], p),
                              std::string("graph ") + std::to_string(g) +
                                  " algo " + algo_name(algo) + " nt " +
                                  std::to_string(nt));
      }
    }
  }
}

TEST(CoarsenParallel, RngSequencePmisMatchesVerbatimSerialPmis) {
  const std::vector<CsrMatrix> graphs = test_graphs();
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    CoarsenParams p;
    p.algo = CoarsenAlgo::kPMIS;
    p.weights = CoarsenWeights::kRngSequence;
    p.seed = 7 + g;
    Rng rng(p.seed);
    const Splitting legacy = coarsen_pmis(graphs[g], rng);
    for (int nt : kThreadCounts) {
      p.num_threads = nt;
      expect_same_splitting(legacy, coarsen_parallel(graphs[g], p),
                            std::string("rng-sequence graph ") +
                                std::to_string(g) + " nt " +
                                std::to_string(nt));
    }
  }
}

TEST(CoarsenParallel, IndependentSetOnSymmetricGraphs) {
  Rng rng(99);
  for (const double deg : {2.0, 5.0, 10.0}) {
    const CsrMatrix s = symmetrize(random_strength(3000, deg, rng));
    for (CoarsenAlgo algo : kAlgos) {
      CoarsenParams p;
      p.algo = algo;
      const Splitting split = coarsen_parallel(s, p);
      EXPECT_GT(count_coarse(split), 0) << algo_name(algo);
      const auto rp = s.row_ptr();
      const auto ci = s.col_idx();
      for (Index i = 0; i < s.rows(); ++i) {
        const bool ic = split[static_cast<std::size_t>(i)] == PointType::kCoarse;
        bool c_neighbor = false;
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          const Index j = ci[static_cast<std::size_t>(k)];
          const bool jc =
              split[static_cast<std::size_t>(j)] == PointType::kCoarse;
          c_neighbor = c_neighbor || jc;
          // Independence: no strong edge connects two C points.
          ASSERT_FALSE(ic && jc)
              << algo_name(algo) << ": adjacent C points " << i << "," << j;
        }
        // Maximality: every F point with a nonempty neighborhood sees a C
        // point (isolated points legitimately stay F).
        if (!ic && rp[i + 1] > rp[i]) {
          ASSERT_TRUE(c_neighbor)
              << algo_name(algo) << ": F point " << i << " uncovered";
        }
      }
    }
  }
}

TEST(CoarsenParallel, EveryFinePointIsIsolatedOrDependsOnCoarse) {
  // General (asymmetric) graphs: the splitting contract all interpolation
  // builders rely on. F points are demoted only by a strong influence
  // turning C, so every non-isolated F point must see a C point in its
  // dependency row.
  const std::vector<CsrMatrix> graphs = test_graphs();
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const CsrMatrix& s = graphs[g];
    const CsrMatrix st = s.transpose();
    for (CoarsenAlgo algo : kAlgos) {
      CoarsenParams p;
      p.algo = algo;
      const Splitting split = coarsen_parallel(s, p);
      const auto rp = s.row_ptr();
      const auto ci = s.col_idx();
      const auto trp = st.row_ptr();
      for (Index i = 0; i < s.rows(); ++i) {
        if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) continue;
        const bool no_dep = rp[i + 1] == rp[i];
        const bool no_infl = trp[i + 1] == trp[i];
        if (no_dep && no_infl) continue;  // isolated: F by definition
        bool dep_on_c = false;
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          if (split[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] ==
              PointType::kCoarse) {
            dep_on_c = true;
            break;
          }
        }
        ASSERT_TRUE(dep_on_c) << "graph " << g << " algo " << algo_name(algo)
                              << ": F point " << i << " has no C influence";
      }
    }
  }
}

TEST(CoarsenParallel, HashTieWeightsDeterministicAndInRange) {
  const Index n = 5000;  // above the serial cutoff
  const std::vector<double> ref =
      coarsen_tie_weights(CoarsenWeights::kHash, n, 42, 1);
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(n));
  for (double w : ref) {
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 1.0);
  }
  for (int nt : kThreadCounts) {
    const std::vector<double> got =
        coarsen_tie_weights(CoarsenWeights::kHash, n, 42, nt);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(ref[i], got[i]) << "weight " << i << " at nt " << nt;
    }
  }
  // Different seeds must give different weight streams.
  const std::vector<double> other =
      coarsen_tie_weights(CoarsenWeights::kHash, n, 43, 1);
  EXPECT_NE(ref, other);
}

TEST(CoarsenParallel, AggressiveStageBitIdenticalAcrossThreadCounts) {
  const CsrMatrix s = strength_matrix(make_laplace_27pt(16).a, 0.25);
  for (CoarsenAlgo algo : kAlgos) {
    CoarsenParams p;
    p.algo = algo;
    const Splitting first = coarsen_parallel(s, p);
    const Splitting ref = coarsen_aggressive_parallel(s, first, p);
    // The C set shrinks to a subset of the first stage's C set.
    EXPECT_LT(count_coarse(ref), count_coarse(first)) << algo_name(algo);
    for (std::size_t i = 0; i < ref.size(); ++i) {
      if (ref[i] == PointType::kCoarse) {
        ASSERT_EQ(first[i], PointType::kCoarse) << algo_name(algo);
      }
    }
    for (int nt : kThreadCounts) {
      CoarsenParams pt = p;
      pt.num_threads = nt;
      expect_same_splitting(ref, coarsen_aggressive_parallel(s, first, pt),
                            std::string("aggressive ") + algo_name(algo) +
                                " nt " + std::to_string(nt));
    }
  }
}

void expect_identical_matrix(const CsrMatrix& a, const CsrMatrix& b,
                             const std::string& what) {
  ASSERT_EQ(a.rows(), b.rows()) << what;
  ASSERT_EQ(a.nnz(), b.nnz()) << what;
  const auto arp = a.row_ptr(), brp = b.row_ptr();
  const auto aci = a.col_idx(), bci = b.col_idx();
  const auto av = a.values(), bv = b.values();
  for (std::size_t i = 0; i <= static_cast<std::size_t>(a.rows()); ++i) {
    ASSERT_EQ(arp[i], brp[i]) << what << ": row_ptr[" << i << "]";
  }
  for (std::size_t k = 0; k < static_cast<std::size_t>(a.nnz()); ++k) {
    ASSERT_EQ(aci[k], bci[k]) << what << ": col_idx[" << k << "]";
    ASSERT_EQ(av[k], bv[k]) << what << ": values[" << k << "]";
  }
}

TEST(CoarsenParallel, HierarchyBuildBitIdenticalAcrossSetupThreads) {
  // End-to-end: the default (parallel coarsening) setup phase must produce
  // one hierarchy regardless of setup_threads, aggressive levels included.
  const CsrMatrix a = make_laplace_27pt(16).a;
  for (const int aggressive : {0, 1}) {
    AmgOptions opts;
    opts.num_aggressive_levels = aggressive;
    opts.precision = PrecisionPolicy{};  // pin the fp64 oracle
    opts.setup_threads = 1;
    const Hierarchy ref = Hierarchy::build(a, opts);
    ASSERT_GE(ref.num_levels(), 2u);
    for (int nt : {2, 4, 8}) {
      opts.setup_threads = nt;
      const Hierarchy h = Hierarchy::build(a, opts);
      ASSERT_EQ(ref.num_levels(), h.num_levels()) << "nt " << nt;
      for (std::size_t k = 0; k < ref.num_levels(); ++k) {
        const std::string tag = "aggr " + std::to_string(aggressive) +
                                " nt " + std::to_string(nt) + " level " +
                                std::to_string(k);
        expect_identical_matrix(ref.matrix(k), h.matrix(k), tag + " A");
        if (k + 1 < ref.num_levels()) {
          expect_identical_matrix(ref.interpolation(k), h.interpolation(k),
                                  tag + " P");
        }
        ASSERT_EQ(ref.level(k).split.size(), h.level(k).split.size()) << tag;
        for (std::size_t i = 0; i < ref.level(k).split.size(); ++i) {
          ASSERT_EQ(ref.level(k).split[i], h.level(k).split[i])
              << tag << " split " << i;
        }
      }
    }
  }
}

TEST(CoarsenParallel, SerialOracleModeStillRunsTheLegacyAlgorithms) {
  // AmgOptions::coarsen_mode = kSerialOracle must keep producing the exact
  // legacy splitting chain (heap RS + rng-sequence PMIS) so regressions in
  // the parallel path can always be diffed against it.
  const CsrMatrix a = make_laplace_7pt(14).a;
  const CsrMatrix s = strength_matrix(a, 0.25);
  AmgOptions opts;
  opts.coarsen_mode = CoarsenMode::kSerialOracle;
  opts.precision = PrecisionPolicy{};
  const Hierarchy h = Hierarchy::build(a, opts);
  Rng rng(opts.seed);
  const Splitting expected = coarsen(opts.coarsening, s, rng);
  expect_same_splitting(expected, h.level(0).split, "serial oracle level 0");
}

}  // namespace
}  // namespace asyncmg
