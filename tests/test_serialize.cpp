// Tests for hierarchy serialization (save the expensive setup phase,
// reload for repeated solves).

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "amg/serialize.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

Hierarchy make_hierarchy(Index n = 8) {
  Problem prob = make_laplace_7pt(n);
  AmgOptions opts;
  opts.num_aggressive_levels = 1;
  return Hierarchy::build(std::move(prob.a), opts);
}

TEST(Serialize, RoundTripPreservesEverything) {
  const Hierarchy h = make_hierarchy();
  std::stringstream ss;
  save_hierarchy(ss, h);
  const Hierarchy g = load_hierarchy(ss);

  ASSERT_EQ(g.num_levels(), h.num_levels());
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    EXPECT_TRUE(g.matrix(k).approx_equal(h.matrix(k), 1e-14)) << "A_" << k;
    if (k + 1 < h.num_levels()) {
      EXPECT_TRUE(g.interpolation(k).approx_equal(h.interpolation(k), 1e-14))
          << "P_" << k;
    }
    EXPECT_EQ(g.level(k).split, h.level(k).split) << "split_" << k;
  }
  EXPECT_DOUBLE_EQ(g.operator_complexity(), h.operator_complexity());
}

TEST(Serialize, ReloadedHierarchySolvesIdentically) {
  const Hierarchy h = make_hierarchy();
  std::stringstream ss;
  save_hierarchy(ss, h);
  Hierarchy g = load_hierarchy(ss);

  MgOptions mo;
  mo.smoother.type = SmootherType::kWeightedJacobi;
  mo.smoother.omega = 0.9;
  // Rebuild an identical second hierarchy for the reference setup (the
  // original was consumed conceptually; Hierarchy is copyable via rebuild).
  MgSetup ref(make_hierarchy(), mo);
  MgSetup loaded(std::move(g), mo);

  Rng rng(83);
  const Vector b = random_vector(static_cast<std::size_t>(ref.a(0).rows()), rng);
  Vector x1(b.size(), 0.0), x2(b.size(), 0.0);
  MultiplicativeMg mg1(ref), mg2(loaded);
  const SolveStats s1 = mg1.solve(b, x1, 20);
  const SolveStats s2 = mg2.solve(b, x2, 20);
  EXPECT_NEAR(s1.final_rel_res(), s2.final_rel_res(), 1e-13);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

TEST(Serialize, FileRoundTrip) {
  const Hierarchy h = make_hierarchy(6);
  const std::string path = "/tmp/asyncmg_test_hierarchy.txt";
  save_hierarchy_file(path, h);
  const Hierarchy g = load_hierarchy_file(path);
  EXPECT_EQ(g.num_levels(), h.num_levels());
  std::remove(path.c_str());
}

TEST(Serialize, StringRoundTripMatchesStreamForm) {
  // The in-memory round-trip (the HierarchyCache spill primitive) must be
  // byte-identical to the stream form and reload losslessly.
  const Hierarchy h = make_hierarchy(6);
  std::stringstream ss;
  save_hierarchy(ss, h);
  const std::string bytes = save_hierarchy_string(h);
  EXPECT_EQ(bytes, ss.str());

  const Hierarchy g = load_hierarchy_string(bytes);
  ASSERT_EQ(g.num_levels(), h.num_levels());
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    EXPECT_TRUE(g.matrix(k).approx_equal(h.matrix(k), 1e-14)) << "A_" << k;
  }
  EXPECT_THROW(load_hierarchy_string("garbage"), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
  std::stringstream ss("not-a-hierarchy at all");
  EXPECT_THROW(load_hierarchy(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncated) {
  const Hierarchy h = make_hierarchy(6);
  std::stringstream ss;
  save_hierarchy(ss, h);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_hierarchy(half), std::runtime_error);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_hierarchy_file("/nonexistent/path/h.txt"),
               std::runtime_error);
}

TEST(FromLevels, ValidatesChain) {
  // Mismatched interpolation shape must be rejected.
  Problem p1 = make_laplace_7pt(4);
  Problem p2 = make_laplace_7pt(3);
  std::vector<AmgLevel> levels(2);
  levels[0].a = std::move(p1.a);
  levels[1].a = std::move(p2.a);
  levels[0].p = CsrMatrix::identity(10);  // wrong shape
  EXPECT_THROW(Hierarchy::from_levels(std::move(levels)),
               std::invalid_argument);
  EXPECT_THROW(Hierarchy::from_levels({}), std::invalid_argument);
}

}  // namespace
}  // namespace asyncmg
