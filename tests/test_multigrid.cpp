// Tests for the cycle drivers: multiplicative V(1,1), BPX, Multadd, AFACx,
// and the mathematical identities the paper states (Multadd with the
// symmetrized smoother == symmetric multiplicative V(1,1)-cycle).

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

std::unique_ptr<MgSetup> make_setup(Index n, SmootherType st,
                                    double omega = 0.9, int aggressive = 0,
                                    bool pin_f64 = false) {
  Problem prob = make_laplace_7pt(n);
  MgOptions mo;
  mo.smoother.type = st;
  mo.smoother.omega = omega;
  mo.smoother.num_blocks = 4;
  mo.amg.num_aggressive_levels = aggressive;
  // Tight cross-scheme equivalence tests are fp64 identities; they pin the
  // policy so ASYNCMG_PRECISION=f32coarse runs do not loosen their bounds.
  if (pin_f64) mo.amg.precision = PrecisionPolicy{};
  return std::make_unique<MgSetup>(std::move(prob.a), mo);
}

Vector rhs_for(const MgSetup& s, std::uint64_t seed) {
  Rng rng(seed);
  return random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);
}

TEST(Setup, BuildsInterpolantsAndRestrictions) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  ASSERT_GE(s->num_levels(), 2u);
  for (std::size_t k = 0; k + 1 < s->num_levels(); ++k) {
    EXPECT_EQ(s->p(k).rows(), s->a(k).rows());
    EXPECT_EQ(s->p(k).cols(), s->a(k + 1).rows());
    EXPECT_EQ(s->pbar(k).rows(), s->p(k).rows());
    EXPECT_EQ(s->pbar(k).cols(), s->p(k).cols());
    // r/rbar are exact transposes.
    EXPECT_TRUE(s->r(k).approx_equal(s->p(k).transpose(), 0.0));
    EXPECT_TRUE(s->rbar(k).approx_equal(s->pbar(k).transpose(), 0.0));
    // The smoothed interpolant is denser (or equal) than the plain one.
    EXPECT_GE(s->pbar(k).nnz(), s->p(k).nnz());
  }
  EXPECT_FALSE(s->coarse_solver().empty());
  EXPECT_EQ(s->grid_work().size(), s->num_levels());
}

TEST(Mult, GridSizeIndependentCycleCount) {
  // The defining multigrid property: cycles to 1e-8 should not grow with n.
  int cycles_small = 0, cycles_large = 0;
  {
    auto s = make_setup(8, SmootherType::kWeightedJacobi);
    Vector b = rhs_for(*s, 1), x(b.size(), 0.0);
    MultiplicativeMg mg(*s);
    cycles_small = mg.solve(b, x, 200, 1e-8).cycles;
  }
  {
    auto s = make_setup(16, SmootherType::kWeightedJacobi);
    Vector b = rhs_for(*s, 1), x(b.size(), 0.0);
    MultiplicativeMg mg(*s);
    cycles_large = mg.solve(b, x, 200, 1e-8).cycles;
  }
  EXPECT_LE(cycles_large, cycles_small + 15);
}

TEST(Mult, ResidualHistoryMonotoneOnLaplace) {
  auto s = make_setup(10, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 2), x(b.size(), 0.0);
  MultiplicativeMg mg(*s);
  const SolveStats st = mg.solve(b, x, 25);
  for (std::size_t i = 1; i < st.rel_res_history.size(); ++i) {
    EXPECT_LT(st.rel_res_history[i], st.rel_res_history[i - 1]);
  }
}

class MultSmootherTest : public ::testing::TestWithParam<SmootherType> {};

TEST_P(MultSmootherTest, SolvesToTolerance) {
  auto s = make_setup(8, GetParam());
  Vector b = rhs_for(*s, 3), x(b.size(), 0.0);
  MultiplicativeMg mg(*s);
  const SolveStats st = mg.solve(b, x, 150, 1e-9);
  EXPECT_TRUE(st.converged) << smoother_name(GetParam()) << " rel res "
                            << st.final_rel_res();
}

INSTANTIATE_TEST_SUITE_P(
    AllSmoothers, MultSmootherTest,
    ::testing::Values(SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi,
                      SmootherType::kHybridJGS, SmootherType::kAsyncGS),
    [](const ::testing::TestParamInfo<SmootherType>& i) {
      switch (i.param) {
        case SmootherType::kWeightedJacobi: return "WJacobi";
        case SmootherType::kL1Jacobi: return "L1Jacobi";
        case SmootherType::kHybridJGS: return "HybridJGS";
        case SmootherType::kAsyncGS: return "AsyncGS";
      }
      return "unknown";
    });

// Section II-B1: with the symmetrized smoothing matrix as Lambda_k, Multadd
// is mathematically equivalent to the symmetric multiplicative V(1,1)-cycle.
TEST(Multadd, SymmetrizedLambdaEqualsSymmetricVCycle) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi, 0.9, 0,
                      /*pin_f64=*/true);
  Vector b = rhs_for(*s, 4);

  Vector x_mult(b.size(), 0.0);
  MultiplicativeMg mult(*s, /*symmetric=*/true);
  mult.cycle(b, x_mult);

  Vector x_add(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  ao.symmetrized_lambda = true;
  AdditiveMg multadd(*s, ao);
  multadd.cycle(b, x_add);

  double max_diff = 0.0, max_val = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(x_mult[i] - x_add[i]));
    max_val = std::max(max_val, std::abs(x_mult[i]));
  }
  EXPECT_LT(max_diff, 1e-10 * std::max(max_val, 1.0))
      << "Multadd(symmetrized) != symmetric V(1,1)";
}

// The equivalence must hold cycle after cycle, not just for the first one.
TEST(Multadd, SymmetrizedEquivalenceOverManyCycles) {
  auto s = make_setup(6, SmootherType::kWeightedJacobi, 0.8, 0,
                      /*pin_f64=*/true);
  Vector b = rhs_for(*s, 5);
  Vector x_mult(b.size(), 0.0), x_add(b.size(), 0.0);
  MultiplicativeMg mult(*s, /*symmetric=*/true);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  ao.symmetrized_lambda = true;
  AdditiveMg multadd(*s, ao);
  for (int t = 0; t < 5; ++t) {
    mult.cycle(b, x_mult);
    multadd.cycle(b, x_add);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_mult[i], x_add[i], 1e-9 * (1.0 + std::abs(x_mult[i])));
  }
}

// BPX over-corrects: as a solver it diverges (Section II-B), which is why
// the paper moves to Multadd/AFACx.
TEST(Bpx, OverCorrectionDiverges) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 6), x(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kBpx;
  AdditiveMg bpx(*s, ao);
  const SolveStats st = bpx.solve(b, x, 25);
  EXPECT_GT(st.final_rel_res(), 1.0);
}

TEST(Multadd, ConvergesWhereBpxDiverges) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 6), x(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  AdditiveMg mg(*s, ao);
  const SolveStats st = mg.solve(b, x, 120, 1e-9);
  EXPECT_TRUE(st.converged);
}

TEST(Afacx, SweepCountsImproveConvergence) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 7);
  auto run = [&](int s1, int s2) {
    Vector x(b.size(), 0.0);
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kAfacx;
    ao.afacx_s1 = s1;
    ao.afacx_s2 = s2;
    AdditiveMg mg(*s, ao);
    return mg.solve(b, x, 25).final_rel_res();
  };
  const double v11 = run(1, 1);
  const double v22 = run(2, 2);
  EXPECT_LT(v22, v11);  // more smoothing per cycle converges faster
}

TEST(Afacx, RejectsNonPositiveSweeps) {
  auto s = make_setup(6, SmootherType::kWeightedJacobi);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kAfacx;
  ao.afacx_s1 = 0;
  EXPECT_THROW(AdditiveCorrector(*s, ao), std::invalid_argument);
}

// Per-grid corrections of the synchronous additive cycle must sum to the
// whole cycle's update.
TEST(AdditiveCorrector, CorrectionsSumToCycleUpdate) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 8);
  for (AdditiveKind kind : {AdditiveKind::kMultadd, AdditiveKind::kAfacx}) {
    AdditiveOptions ao;
    ao.kind = kind;
    AdditiveCorrector corr(*s, ao);
    Vector x(b.size(), 0.0);
    Vector r;
    s->a(0).residual(b, x, r);
    Vector sum(b.size(), 0.0), c;
    for (std::size_t k = 0; k < corr.num_grids(); ++k) {
      corr.correction(k, r, c);
      axpy(1.0, c, sum);
    }
    AdditiveMg mg(*s, ao);
    Vector x2(b.size(), 0.0);
    mg.cycle(b, x2);
    for (std::size_t i = 0; i < b.size(); ++i) {
      EXPECT_NEAR(sum[i], x2[i], 1e-12) << additive_kind_name(kind);
    }
  }
}

TEST(AdditiveCorrector, WorkEstimatesGrowWithChainDepth) {
  auto s = make_setup(10, SmootherType::kWeightedJacobi);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  AdditiveCorrector corr(*s, ao);
  const std::vector<double> w = corr.work();
  ASSERT_EQ(w.size(), corr.num_grids());
  for (double wk : w) EXPECT_GT(wk, 0.0);
}

TEST(Multadd, AggressiveCoarseningStillConverges) {
  auto s = make_setup(10, SmootherType::kWeightedJacobi, 0.9, 1);
  Vector b = rhs_for(*s, 9), x(b.size(), 0.0);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  AdditiveMg mg(*s, ao);
  const SolveStats st = mg.solve(b, x, 120, 1e-9);
  EXPECT_TRUE(st.converged) << st.final_rel_res();
}

TEST(Mult, SolveStopsAtTolerance) {
  auto s = make_setup(8, SmootherType::kWeightedJacobi);
  Vector b = rhs_for(*s, 10), x(b.size(), 0.0);
  MultiplicativeMg mg(*s);
  const SolveStats st = mg.solve(b, x, 500, 1e-6);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.cycles, 500);
  EXPECT_LT(st.final_rel_res(), 1e-6);
  // History has initial value + one entry per cycle.
  EXPECT_EQ(static_cast<int>(st.rel_res_history.size()), st.cycles + 1);
}

}  // namespace
}  // namespace asyncmg
