// Telemetry subsystem tests: SPSC ring semantics, metrics registry, the
// Chrome trace / CSV exporters, and the end-to-end determinism guarantee --
// a scripted Multadd replay records a logical-time event stream whose
// exported trace is bitwise identical across runs and thread counts, and a
// golden copy of that trace is a checked-in regression artifact.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include "async/model.hpp"
#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "service/solve_service.hpp"
#include "sparse/vec.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(Index n = 10) {
    Problem prob = make_laplace_7pt(n);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
    Rng rng(13);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
  Vector b;
};

TelemetryOptions logical_sink_options() {
  TelemetryOptions to;
  to.logical_time = true;
  return to;
}

RuntimeOptions scripted_options(std::uint64_t seed, std::size_t threads,
                                int t_max = 8) {
  RuntimeOptions ro;
  ro.mode = ExecMode::kScripted;
  ro.script_alpha = 0.7;
  ro.script_max_delay = 2;
  ro.seed = seed;
  ro.t_max = t_max;
  ro.num_threads = threads;
  return ro;
}

// ---------------------------------------------------------------------------
// EventRing
// ---------------------------------------------------------------------------

TEST(EventRing, PreservesPushOrderAndCountsOverflowDrops) {
  EventRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    const bool ok = ring.push({i, i * 10, 0, EventKind::kRelax});
    EXPECT_EQ(ok, i < 8) << "push " << i;
  }
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.dropped(), 12u);

  std::vector<Event> out;
  EXPECT_EQ(ring.drain(out), 8u);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].t, i);
    EXPECT_EQ(out[static_cast<std::size_t>(i)].a, i * 10);
  }
  // Drained capacity is reusable.
  EXPECT_TRUE(ring.push({99, 0, 0, EventKind::kRelax}));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_EQ(out[0].t, 99);
}

TEST(EventRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(EventRing(1).capacity(), 2u);
  EXPECT_EQ(EventRing(5).capacity(), 8u);
  EXPECT_EQ(EventRing(64).capacity(), 64u);
}

TEST(EventRing, ConcurrentProducerConsumerLosesNothingButDrops) {
  constexpr std::int64_t kPushes = 200000;
  EventRing ring(1u << 10);
  std::vector<Event> got;
  std::atomic<bool> done{false};

  std::thread consumer([&] {
    while (!done.load(std::memory_order_acquire)) ring.drain(got);
    ring.drain(got);
  });
  for (std::int64_t i = 0; i < kPushes; ++i) {
    ring.push({i, 0, 0, EventKind::kRelax});
  }
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(got.size() + ring.dropped(), static_cast<std::size_t>(kPushes));
  // Whatever arrived arrived in order.
  for (std::size_t i = 1; i < got.size(); ++i) {
    ASSERT_LT(got[i - 1].t, got[i].t) << "out of order at " << i;
  }
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, HistogramSnapshotAgreesWithUtilPercentile) {
  MetricsRegistry reg;
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) {
    xs.push_back(static_cast<double>(i));
    reg.histogram("lat").observe(static_cast<double>(i));
  }
  const HistogramSnapshot s = reg.histogram("lat").snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, mean(xs));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.p50, percentile(xs, 50.0));
  EXPECT_DOUBLE_EQ(s.p95, percentile(xs, 95.0));
  EXPECT_DOUBLE_EQ(s.p99, percentile(xs, 99.0));
}

TEST(MetricsRegistry, EmptyHistogramSnapshotsToZerosNotNaN) {
  MetricsRegistry reg;
  const HistogramSnapshot s = reg.histogram("empty").snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
  EXPECT_NE(reg.to_json().find("\"empty\""), std::string::npos);
  EXPECT_EQ(reg.to_json().find("nan"), std::string::npos);
}

TEST(MetricsRegistry, JsonIsSortedIndependentOfRegistrationOrder) {
  MetricsRegistry a, b;
  a.counter("zeta").add(3);
  a.counter("alpha").add(1);
  a.gauge("mid").set(2.5);
  b.gauge("mid").set(2.5);
  b.counter("alpha").add(1);
  b.counter("zeta").add(3);
  EXPECT_EQ(a.to_json(), b.to_json());
  EXPECT_NE(a.to_json().find("{\"counters\":{\"alpha\":1,\"zeta\":3}"),
            std::string::npos);
}

TEST(MetricsRegistry, HandlesAreStableAcrossLaterRegistrations) {
  MetricsRegistry reg;
  Counter& first = reg.counter("first");
  for (int i = 0; i < 100; ++i) {
    reg.counter("other" + std::to_string(i));
  }
  first.add(7);
  EXPECT_EQ(reg.counter("first").value(), 7u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ChromeTrace, MapsEventKindsToTracksAndPhases) {
  std::vector<DrainedEvent> evs;
  evs.push_back({{1000, 2, 500, EventKind::kRelax}, 4});
  evs.push_back({{1500, 2, -1, EventKind::kSharedRead}, 4});
  evs.push_back({{2000, 7, 0, EventKind::kQueueDepth}, kControlTid});
  evs.push_back({{2500,
                  static_cast<std::int64_t>(CyclePhase::kPreSmooth), 1,
                  EventKind::kPhaseBegin},
                 3});

  const std::string json = chrome_trace_json(evs);
  // Relax: complete slice on the grid's track, fractional-µs wall stamps.
  EXPECT_NE(json.find("\"name\":\"relax\",\"cat\":\"grid\",\"ph\":\"X\","
                      "\"ts\":1.000,\"dur\":0.500,\"pid\":1,\"tid\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"read\""), std::string::npos);
  // Queue depth: counter track.
  EXPECT_NE(json.find("\"name\":\"queue-depth\",\"cat\":\"service\","
                      "\"ph\":\"C\""),
            std::string::npos);
  // Phase: B slice named after the phase, on the recording thread's track.
  EXPECT_NE(json.find("\"name\":\"pre-smooth\",\"cat\":\"cycle\","
                      "\"ph\":\"B\",\"ts\":2.500,\"pid\":1,\"tid\":3"),
            std::string::npos);
  // Track metadata: the grid track is named, the control track is named.
  EXPECT_NE(json.find("\"args\":{\"name\":\"grid 2\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"control\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"thread 3\"}"), std::string::npos);
  // Valid JSON shape.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST(ChromeTrace, LogicalTimeExportsIntegerTicks) {
  std::vector<DrainedEvent> evs;
  evs.push_back({{3, 1, 1, EventKind::kRelax}, 0});
  ChromeTraceOptions opts;
  opts.logical_time = true;
  const std::string json = chrome_trace_json(evs, opts);
  EXPECT_NE(json.find("\"ts\":3,\"dur\":1"), std::string::npos);
}

TEST(ResidualCsv, FormatsExactlyAndValidatesLengths) {
  const std::string csv = residual_csv({0.0, 0.5}, {1.0, 0.25});
  EXPECT_EQ(csv,
            "step,seconds,rel_res\n"
            "0,0.000000000e+00,1.000000000e+00\n"
            "1,5.000000000e-01,2.500000000e-01\n");
  EXPECT_THROW(residual_csv({0.0}, {1.0, 0.5}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sink semantics
// ---------------------------------------------------------------------------

TEST(TelemetrySink, DrainMergesRingsSortedByTimestamp) {
  TelemetrySink sink;
  sink.record_at(1, 20, EventKind::kRelax, 1, 1);
  sink.record_at(0, 10, EventKind::kRelax, 0, 1);
  sink.record_at(0, 30, EventKind::kRelax, 0, 1);
  sink.record_control(EventKind::kQueueDepth, 5);

  const std::vector<DrainedEvent> evs = sink.drain();
  ASSERT_EQ(evs.size(), 4u);
  EXPECT_EQ(evs[0].ev.t, 10);
  EXPECT_EQ(evs[0].tid, 0u);
  EXPECT_EQ(evs[1].ev.t, 20);
  EXPECT_EQ(evs[1].tid, 1u);
  EXPECT_EQ(evs[2].ev.t, 30);
  // The control event carries a session-clock stamp (>= 0) and the control
  // tid; drain() consumed everything.
  EXPECT_EQ(evs[3].tid, kControlTid);
  EXPECT_TRUE(sink.drain().empty());
}

TEST(TelemetrySink, DisabledSinkRecordsNothing) {
  TelemetryOptions to;
  to.start_enabled = false;
  TelemetrySink sink(to);
  sink.record(0, EventKind::kRelax, 1, 1);
  sink.record_control(EventKind::kQueueDepth, 2);
  EXPECT_TRUE(sink.drain().empty());
  EXPECT_EQ(sink.dropped_total(), 0u);

  sink.set_enabled(true);
  sink.record(0, EventKind::kRelax, 1, 1);
  EXPECT_EQ(sink.drain().size(), 1u);
}

TEST(TelemetrySink, OutOfRangeTidFallsBackToControlRing) {
  TelemetryOptions to;
  to.max_threads = 2;
  TelemetrySink sink(to);
  sink.record_at(17, 5, EventKind::kRelax, 0, 1);
  const std::vector<DrainedEvent> evs = sink.drain();
  ASSERT_EQ(evs.size(), 1u);
  EXPECT_EQ(evs[0].tid, kControlTid);
}

// ---------------------------------------------------------------------------
// Runtime instrumentation
// ---------------------------------------------------------------------------

TEST(RuntimeTelemetry, FreeRunRecordsOneRelaxPerCorrection) {
  Fixture f;
  TelemetrySink sink;
  RuntimeOptions ro;
  ro.mode = ExecMode::kAsynchronous;
  ro.write = WritePolicy::kAtomicWrite;
  ro.t_max = 6;
  ro.num_threads = 4;
  ro.telemetry = &sink;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);

  int total = 0;
  for (int c : rr.corrections) total += c;
  const std::vector<DrainedEvent> evs = sink.drain();
  int relaxes = 0;
  int reads = 0;
  for (const DrainedEvent& de : evs) {
    if (de.ev.kind == EventKind::kRelax) {
      ++relaxes;
      EXPECT_GE(de.ev.t, 0);
      EXPECT_GE(de.ev.b, 0);  // duration
    }
    if (de.ev.kind == EventKind::kSharedRead) ++reads;
  }
  EXPECT_EQ(relaxes, total);
  EXPECT_EQ(reads, total);  // no dropped reads in this run
  EXPECT_EQ(sink.metrics().counter("runtime.relaxations").value(),
            static_cast<std::uint64_t>(total));
}

TEST(RuntimeTelemetry, NullAndDisabledSinksAreEquivalentNoOps) {
  for (const bool use_disabled_sink : {false, true}) {
    Fixture f;
    TelemetryOptions to;
    to.start_enabled = false;
    TelemetrySink sink(to);
    RuntimeOptions ro = scripted_options(42, 4);
    ro.telemetry = use_disabled_sink ? &sink : nullptr;
    Vector x(f.b.size(), 0.0);
    run_shared_memory(*f.corr, f.b, x, ro);
    EXPECT_TRUE(sink.drain().empty());
  }
}

TEST(RuntimeTelemetry, ScriptedTraceMatchesSequentialModelStream) {
  Fixture f;
  const Schedule sched = [&] {
    AsyncModelOptions mo;
    mo.alpha = 0.7;
    mo.max_delay = 2;
    mo.updates_per_grid = 8;
    mo.seed = 7;
    return sample_schedule(f.corr->num_grids(), mo);
  }();

  TelemetrySink model_sink(logical_sink_options());
  Vector x_model(f.b.size(), 0.0);
  replay_semiasync_schedule(*f.corr, f.b, x_model, sched, false, &model_sink);

  TelemetrySink run_sink(logical_sink_options());
  RuntimeOptions ro = scripted_options(7, 4);
  ro.schedule = &sched;
  ro.telemetry = &run_sink;
  Vector x_run(f.b.size(), 0.0);
  run_shared_memory(*f.corr, f.b, x_run, ro);

  const std::vector<DrainedEvent> me = model_sink.drain();
  const std::vector<DrainedEvent> re = run_sink.drain();
  ASSERT_FALSE(me.empty());
  ASSERT_EQ(me.size(), re.size());
  for (std::size_t i = 0; i < me.size(); ++i) {
    EXPECT_EQ(me[i].ev.t, re[i].ev.t) << i;
    EXPECT_EQ(me[i].ev.a, re[i].ev.a) << i;
    EXPECT_EQ(me[i].ev.b, re[i].ev.b) << i;
    EXPECT_EQ(static_cast<int>(me[i].ev.kind),
              static_cast<int>(re[i].ev.kind))
        << i;
    EXPECT_EQ(me[i].tid, re[i].tid) << i;
  }
}

// The tentpole acceptance criterion: a scripted Multadd solve with telemetry
// enabled exports Chrome trace JSON that is bitwise identical across runs
// AND across thread counts.
TEST(RuntimeTelemetry, ScriptedChromeTraceIsBitwiseReproducible) {
  std::string ref;
  for (const std::size_t threads : {2u, 5u}) {
    for (int rep = 0; rep < 2; ++rep) {
      Fixture f;
      TelemetrySink sink(logical_sink_options());
      RuntimeOptions ro = scripted_options(42, threads);
      ro.telemetry = &sink;
      Vector x(f.b.size(), 0.0);
      run_shared_memory(*f.corr, f.b, x, ro);
      ChromeTraceOptions copts;
      copts.logical_time = true;
      const std::string json = chrome_trace_json(sink.drain(), copts);
      EXPECT_EQ(sink.dropped_total(), 0u);
      if (ref.empty()) {
        ref = json;
        ASSERT_NE(ref.find("\"name\":\"relax\""), std::string::npos);
      } else {
        ASSERT_EQ(json, ref) << "threads=" << threads << " rep=" << rep;
      }
    }
  }
}

TEST(RuntimeTelemetry, GoldenChromeTraceMatchesFixture) {
  const std::string path =
      std::string(ASYNCMG_FIXTURE_DIR) + "/golden_chrome_trace_seed42.json";

  Fixture f;
  TelemetrySink sink(logical_sink_options());
  RuntimeOptions ro = scripted_options(42, 4, 6);
  ro.telemetry = &sink;
  Vector x(f.b.size(), 0.0);
  run_shared_memory(*f.corr, f.b, x, ro);
  ChromeTraceOptions copts;
  copts.logical_time = true;
  const std::string json = chrome_trace_json(sink.drain(), copts);

  if (std::getenv("ASYNCMG_REGEN_GOLDEN") != nullptr) {
    write_text_file(path, json);
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing fixture " << path
                         << " (run with ASYNCMG_REGEN_GOLDEN=1)";
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(json, buf.str());
}

// ---------------------------------------------------------------------------
// Cycle-phase and service instrumentation
// ---------------------------------------------------------------------------

TEST(CycleTelemetry, PhasesAreBalancedAndOnTheConfiguredTid) {
  Fixture f;
  TelemetrySink sink;
  MultiplicativeMg mg(*f.setup);
  mg.set_telemetry(&sink, 3);
  Vector x(f.b.size(), 0.0);
  mg.cycle(f.b, x);

  const std::vector<DrainedEvent> evs = sink.drain();
  ASSERT_FALSE(evs.empty());
  int begins = 0;
  int ends = 0;
  bool saw_residual = false;
  bool saw_coarse = false;
  for (const DrainedEvent& de : evs) {
    EXPECT_EQ(de.tid, 3u);
    if (de.ev.kind == EventKind::kPhaseBegin) ++begins;
    if (de.ev.kind == EventKind::kPhaseEnd) ++ends;
    if (de.ev.a == static_cast<std::int64_t>(CyclePhase::kResidual)) {
      saw_residual = true;
    }
    if (de.ev.a == static_cast<std::int64_t>(CyclePhase::kCoarseSolve)) {
      saw_coarse = true;
    }
  }
  EXPECT_EQ(begins, ends);
  EXPECT_TRUE(saw_residual);
  EXPECT_TRUE(saw_coarse);

  // Disabled sink: the whole cycle takes the zero-overhead path.
  sink.set_enabled(false);
  mg.cycle(f.b, x);
  EXPECT_TRUE(sink.drain().empty());
}

TEST(ServiceTelemetry, MergedStatsJsonCarriesCacheAndLatencyMetrics) {
  TelemetrySink sink;
  ServiceOptions so;
  so.num_threads = 2;
  so.telemetry = &sink;
  SolveService svc(so);

  Problem prob = make_laplace_7pt(6);
  Rng rng(5);
  const Vector rhs =
      random_vector(static_cast<std::size_t>(prob.a.rows()), rng);
  RequestOptions ropts;
  ropts.t_max = 3;
  for (int i = 0; i < 3; ++i) {
    svc.submit(prob.a, rhs, ropts).get();
  }

  // Request path: one miss then hits, latencies observed, queue depth seen.
  EXPECT_EQ(sink.metrics().counter("service.submitted").value(), 3u);
  EXPECT_EQ(sink.metrics().counter("service.completed").value(), 3u);
  EXPECT_EQ(sink.metrics().counter("cache.misses").value(), 1u);
  EXPECT_EQ(sink.metrics().counter("cache.hits").value(), 2u);
  EXPECT_EQ(
      sink.metrics().histogram("service.latency_seconds").snapshot().count,
      3u);
  bool saw_queue_depth = false;
  for (const DrainedEvent& de : sink.drain()) {
    if (de.ev.kind == EventKind::kQueueDepth) saw_queue_depth = true;
  }
  EXPECT_TRUE(saw_queue_depth);

  const std::string json = svc.stats_json();
  EXPECT_NE(json.find("\"telemetry\":{\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"cache.misses\":1"), std::string::npos);
  EXPECT_NE(json.find("\"service.latency_seconds\":{\"count\":3"),
            std::string::npos);
  // The plain stats JSON is still a prefix-compatible object.
  EXPECT_NE(json.find("\"submitted\":3"), std::string::npos);
}

}  // namespace
}  // namespace asyncmg
