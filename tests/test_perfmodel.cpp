// Tests for the performance model that substitutes for the paper's KNL
// when reproducing Figure 6's thread-scaling shape.

#include <gtest/gtest.h>

#include "mesh/problems.hpp"
#include "perfmodel/perfmodel.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  Fixture() {
    Problem prob = make_laplace_7pt(12);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = AdditiveKind::kMultadd;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
};

TEST(PerfModel, DeterministicGivenSeed) {
  Fixture f;
  MachineModel m;
  const PerfPrediction a = predict_mult(*f.setup, 16, 10, m);
  const PerfPrediction b = predict_mult(*f.setup, 16, 10, m);
  EXPECT_EQ(a.seconds, b.seconds);
}

TEST(PerfModel, MoreCyclesCostMore) {
  Fixture f;
  MachineModel m;
  EXPECT_LT(predict_mult(*f.setup, 8, 5, m).seconds,
            predict_mult(*f.setup, 8, 10, m).seconds);
  EXPECT_LT(predict_async_additive(*f.corr, 8, 5, m).seconds,
            predict_async_additive(*f.corr, 8, 10, m).seconds);
}

TEST(PerfModel, MultFastestAtFewThreads) {
  // At low thread counts synchronization is cheap and Mult does the least
  // arithmetic, so it wins (Figure 6, left side of each panel).
  Fixture f;
  MachineModel m;
  for (std::size_t threads : {1, 2}) {
    const double mult = predict_mult(*f.setup, threads, 20, m).seconds;
    const double async_ma =
        predict_async_additive(*f.corr, threads, 20, m).seconds;
    EXPECT_LT(mult, async_ma) << "threads=" << threads;
  }
}

TEST(PerfModel, AsyncWinsAtManyThreads) {
  // At high thread counts Mult's per-phase global barriers dominate and
  // asynchronous Multadd wins (Figure 6, right side of each panel).
  Fixture f;
  MachineModel m;
  const double mult = predict_mult(*f.setup, 256, 20, m).seconds;
  const double async_ma = predict_async_additive(*f.corr, 256, 20, m).seconds;
  EXPECT_LT(async_ma, mult);
}

TEST(PerfModel, SyncAdditiveBetweenTheTwoAtScale) {
  // Sync Multadd has only two global barriers per cycle: it scales better
  // than Mult but worse than async at large thread counts.
  Fixture f;
  MachineModel m;
  const double mult = predict_mult(*f.setup, 256, 20, m).seconds;
  const double sync_ma = predict_sync_additive(*f.corr, 256, 20, m).seconds;
  const double async_ma = predict_async_additive(*f.corr, 256, 20, m).seconds;
  EXPECT_LT(sync_ma, mult);
  EXPECT_LT(async_ma, sync_ma);
}

TEST(PerfModel, BarrierShareGrowsWithThreads) {
  Fixture f;
  MachineModel m;
  const double share_small = predict_mult(*f.setup, 4, 10, m).barrier_share;
  const double share_large = predict_mult(*f.setup, 128, 10, m).barrier_share;
  EXPECT_GT(share_large, share_small);
  EXPECT_GE(share_small, 0.0);
  EXPECT_LE(share_large, 1.0);
}

TEST(PerfModel, HomogeneousMachineShrinksWaits) {
  Fixture f;
  MachineModel hetero;
  hetero.heterogeneity = 0.5;
  hetero.jitter = 0.4;
  MachineModel homog;
  homog.heterogeneity = 0.0;
  homog.jitter = 0.0;
  const double t_het = predict_mult(*f.setup, 64, 10, hetero).seconds;
  const double t_hom = predict_mult(*f.setup, 64, 10, homog).seconds;
  EXPECT_LT(t_hom, t_het);
}

TEST(PerfModel, WorksWithFewerThreadsThanGrids) {
  Fixture f;
  MachineModel m;
  const PerfPrediction p = predict_async_additive(*f.corr, 2, 10, m);
  EXPECT_GT(p.seconds, 0.0);
}

}  // namespace
}  // namespace asyncmg
