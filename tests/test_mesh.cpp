// Tests for the problem generators (the MFEM substitutes).

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/grid3d.hpp"
#include "mesh/hex8.hpp"
#include "mesh/problems.hpp"
#include "sparse/dense.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

TEST(Grid3D, IndexingRoundTrip) {
  const Grid3D g{4, 5, 6};
  EXPECT_EQ(g.size(), 120);
  EXPECT_EQ(g.id(0, 0, 0), 0);
  EXPECT_EQ(g.id(3, 4, 5), 119);
  EXPECT_EQ(g.id(1, 2, 3), 1 + 4 * (2 + 5 * 3));
  EXPECT_TRUE(g.inside(3, 4, 5));
  EXPECT_FALSE(g.inside(4, 0, 0));
  EXPECT_FALSE(g.inside(-1, 0, 0));
}

// The paper states the 7pt matrix at 30^3 has 27000 rows and 183600
// nonzeros, and the 27pt matrix 681472 nonzeros; our generators must
// reproduce these counts exactly.
TEST(Stencil, PaperNnzCountsAt30) {
  Problem p7 = make_laplace_7pt(30);
  EXPECT_EQ(p7.a.rows(), 27000);
  EXPECT_EQ(p7.a.nnz(), 183600);
  Problem p27 = make_laplace_27pt(30);
  EXPECT_EQ(p27.a.rows(), 27000);
  EXPECT_EQ(p27.a.nnz(), 681472);
}

class StencilCase : public ::testing::TestWithParam<TestSet> {};

TEST_P(StencilCase, SymmetricDiagonallyDominant) {
  Problem p = make_problem(GetParam(), 8);
  EXPECT_TRUE(p.a.is_symmetric(1e-9)) << p.name;
  const auto rp = p.a.row_ptr();
  const auto ci = p.a.col_idx();
  const auto v = p.a.values();
  for (Index i = 0; i < p.a.rows(); ++i) {
    double diag = 0.0, off = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      if (ci[static_cast<std::size_t>(k)] == i) {
        diag = v[static_cast<std::size_t>(k)];
      } else {
        off += std::abs(v[static_cast<std::size_t>(k)]);
      }
    }
    EXPECT_GT(diag, 0.0) << p.name << " row " << i;
    // Weak diagonal dominance holds for the stencils; FEM matrices are SPD
    // but not always diagonally dominant, so only check positivity there.
    if (GetParam() == TestSet::kFD7pt || GetParam() == TestSet::kFD27pt) {
      EXPECT_GE(diag + 1e-12, off) << p.name << " row " << i;
    }
  }
}

TEST_P(StencilCase, PositiveDefiniteOnSmallInstance) {
  Problem p = make_problem(GetParam(), 6);
  // x^T A x > 0 for a handful of random x.
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    const Vector x =
        random_vector(static_cast<std::size_t>(p.a.rows()), rng);
    Vector ax;
    p.a.spmv(x, ax);
    EXPECT_GT(dot(x, ax), 0.0) << p.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSets, StencilCase,
                         ::testing::Values(TestSet::kFD7pt, TestSet::kFD27pt,
                                           TestSet::kFemLaplace,
                                           TestSet::kFemElasticity),
                         [](const ::testing::TestParamInfo<TestSet>& i) {
                           switch (i.param) {
                             case TestSet::kFD7pt: return "FD7pt";
                             case TestSet::kFD27pt: return "FD27pt";
                             case TestSet::kFemLaplace: return "FemLaplace";
                             case TestSet::kFemElasticity:
                               return "FemElasticity";
                           }
                           return "unknown";
                         });

TEST(Stencil, InteriorRowOf7ptIsClassic) {
  Problem p = make_laplace_7pt(5);
  const Grid3D g{5, 5, 5};
  const Index c = g.id(2, 2, 2);
  EXPECT_DOUBLE_EQ(p.a.at(c, c), 6.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(1, 2, 2)), -1.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(2, 3, 2)), -1.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(2, 2, 1)), -1.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(4, 4, 4)), 0.0);
}

TEST(Stencil, JumpCoefficientSymmetricMMatrix) {
  Problem p = make_laplace_7pt_jump(9, 1e3);
  EXPECT_TRUE(p.a.is_symmetric(1e-10));
  // M-matrix structure: positive diagonal, nonpositive off-diagonals.
  const auto rp = p.a.row_ptr();
  const auto ci = p.a.col_idx();
  const auto v = p.a.values();
  for (Index i = 0; i < p.a.rows(); ++i) {
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      if (ci[static_cast<std::size_t>(k)] == i) {
        EXPECT_GT(v[static_cast<std::size_t>(k)], 0.0);
      } else {
        EXPECT_LE(v[static_cast<std::size_t>(k)], 0.0);
      }
    }
  }
}

TEST(Stencil, JumpCoefficientUsesHarmonicMeanAtInterface) {
  const Index n = 9;
  Problem p = make_laplace_7pt_jump(n, 100.0);
  const Grid3D g{n, n, n};
  // Cell (3,4,4) is inside the high-coefficient cube (lo=3, hi=6) and its
  // -x neighbor (2,4,4) is outside: harmonic mean 2*100*1/101.
  const double expected = -2.0 * 100.0 * 1.0 / 101.0;
  EXPECT_NEAR(p.a.at(g.id(3, 4, 4), g.id(2, 4, 4)), expected, 1e-12);
  // Deep inside the cube both cells have kappa = 100.
  EXPECT_NEAR(p.a.at(g.id(4, 4, 4), g.id(5, 4, 4)), -100.0, 1e-12);
}

TEST(Stencil, JumpCoefficientRejectsNonPositive) {
  EXPECT_THROW(make_laplace_7pt_jump(6, 0.0), std::invalid_argument);
  EXPECT_THROW(make_laplace_7pt_jump(6, -2.0), std::invalid_argument);
}

TEST(Stencil, AnisotropyScalesXCoupling) {
  Problem p = make_laplace_7pt_anisotropic(5, 100.0);
  const Grid3D g{5, 5, 5};
  const Index c = g.id(2, 2, 2);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(1, 2, 2)), -100.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, g.id(2, 1, 2)), -1.0);
  EXPECT_DOUBLE_EQ(p.a.at(c, c), 204.0);
}

TEST(Hex8, LaplaceStiffnessRowSumsVanish) {
  // Gradients of a constant field are zero: stiffness rows sum to zero.
  const auto ke = hex8_laplace_stiffness(0.7, 1.3, 0.9, 2.0);
  for (int a = 0; a < 8; ++a) {
    double s = 0.0;
    for (int b = 0; b < 8; ++b) {
      s += ke[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)];
    }
    EXPECT_NEAR(s, 0.0, 1e-12);
  }
}

TEST(Hex8, LaplaceStiffnessSymmetricPsd) {
  const auto ke = hex8_laplace_stiffness(1.0, 1.0, 1.0, 1.0);
  for (int a = 0; a < 8; ++a) {
    EXPECT_GT(ke[static_cast<std::size_t>(a)][static_cast<std::size_t>(a)], 0.0);
    for (int b = 0; b < 8; ++b) {
      EXPECT_NEAR(ke[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)],
                  ke[static_cast<std::size_t>(b)][static_cast<std::size_t>(a)],
                  1e-14);
    }
  }
}

TEST(Hex8, ElasticityRigidBodyTranslationsInKernel) {
  const auto ke = hex8_elasticity_stiffness(1.0, 1.0, 1.0, 1.2, 0.8);
  // A uniform translation in each coordinate direction produces zero force.
  for (int dir = 0; dir < 3; ++dir) {
    double u[24] = {};
    for (int nodeidx = 0; nodeidx < 8; ++nodeidx) u[3 * nodeidx + dir] = 1.0;
    for (int i = 0; i < 24; ++i) {
      double f = 0.0;
      for (int j = 0; j < 24; ++j) {
        f += ke[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] * u[j];
      }
      EXPECT_NEAR(f, 0.0, 1e-12) << "dir " << dir << " dof " << i;
    }
  }
}

TEST(Hex8, LameConversion) {
  const Lame l = lame_from_young_poisson(1.0, 0.25);
  EXPECT_NEAR(l.mu, 0.4, 1e-12);
  EXPECT_NEAR(l.lambda, 0.4, 1e-12);
}

TEST(FemLaplace, SphereMaskProducesIrregularRows) {
  Problem p = make_fem_laplace_sphere(10);
  EXPECT_GT(p.a.rows(), 100);
  // Interior structured rows have up to 27 couplings; boundary-adjacent
  // rows fewer. Both must occur (that's the point of the curved domain).
  const auto rp = p.a.row_ptr();
  Index min_row = 1000, max_row = 0;
  for (Index i = 0; i < p.a.rows(); ++i) {
    min_row = std::min(min_row, rp[i + 1] - rp[i]);
    max_row = std::max(max_row, rp[i + 1] - rp[i]);
  }
  EXPECT_EQ(max_row, 27);
  EXPECT_LT(min_row, 27);
}

TEST(FemLaplace, GrowsWithResolution) {
  const Index n1 = make_fem_laplace_sphere(8).a.rows();
  const Index n2 = make_fem_laplace_sphere(12).a.rows();
  EXPECT_GT(n2, 2 * n1);
}

TEST(FemLaplace, RejectsTinyMesh) {
  EXPECT_THROW(make_fem_laplace_sphere(3), std::invalid_argument);
}

TEST(Elasticity, ThreeDofsPerFreeNode) {
  const Index nx = 6, ny = 3, nz = 3;
  Problem p = make_elasticity_beam(nx, ny, nz);
  const Index free_nodes = nx * (ny + 1) * (nz + 1);  // x=0 plane clamped
  EXPECT_EQ(p.a.rows(), 3 * free_nodes);
}

TEST(Elasticity, MultiMaterialChangesStiffness) {
  // Diagonal entries in the stiff half exceed those in the soft half.
  const Index nx = 8, ny = 2, nz = 2;
  Problem p = make_elasticity_beam(nx, ny, nz);
  const Grid3D nodes{nx + 1, ny + 1, nz + 1};
  // dof index of node (i,1,1), x-component; dof numbering skips the i=0
  // plane, so free node index = (i-1) + nx*(j + (ny+1)*k) ... recompute via
  // the same lexicographic rule used by the generator.
  auto dof_of = [&](Index i, Index j, Index k) {
    Index count = 0;
    for (Index kk = 0; kk <= nz; ++kk) {
      for (Index jj = 0; jj <= ny; ++jj) {
        for (Index ii = 1; ii <= nx; ++ii) {
          if (ii == i && jj == j && kk == k) return count;
          ++count;
        }
      }
    }
    return Index(-1);
  };
  const Index stiff = 3 * dof_of(2, 1, 1);
  const Index soft = 3 * dof_of(nx - 1, 1, 1);
  EXPECT_GT(p.a.at(stiff, stiff), 10.0 * p.a.at(soft, soft));
}

TEST(Elasticity, RejectsDegenerateBeam) {
  EXPECT_THROW(make_elasticity_beam(1, 2, 2), std::invalid_argument);
  EXPECT_THROW(make_elasticity_beam(4, 0, 2), std::invalid_argument);
}

TEST(Problems, FactoryNamesAndLengths) {
  EXPECT_EQ(test_set_name(TestSet::kFD7pt), "7pt");
  EXPECT_EQ(test_set_name(TestSet::kFD27pt), "27pt");
  EXPECT_EQ(test_set_name(TestSet::kFemLaplace), "mfem-laplace");
  EXPECT_EQ(test_set_name(TestSet::kFemElasticity), "mfem-elasticity");
  const Problem p = make_problem(TestSet::kFD7pt, 9);
  EXPECT_EQ(p.grid_length, 9);
  EXPECT_EQ(p.name, "7pt");
}

}  // namespace
}  // namespace asyncmg
