// Tests for preconditioned CG and the multigrid preconditioners — the
// "BPX as a preconditioner" usage the paper describes in Section II-B.

#include <gtest/gtest.h>

#include "mesh/problems.hpp"
#include "multigrid/pcg.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(Index n = 10, SmootherType st = SmootherType::kWeightedJacobi) {
    Problem prob = make_laplace_7pt(n);
    MgOptions mo;
    mo.smoother.type = st;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    Rng rng(23);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  Vector b;
};

TEST(Pcg, PlainCgSolvesLaplace) {
  Fixture f;
  Vector x;
  PcgOptions opts;
  opts.max_iterations = 2000;
  const SolveStats st = pcg_solve(f.setup->a(0), f.b, x, nullptr, opts);
  EXPECT_TRUE(st.converged) << st.final_rel_res();
  // Verify against the residual definition.
  Vector r;
  f.setup->a(0).residual(f.b, x, r);
  EXPECT_NEAR(norm2(r) / norm2(f.b), st.final_rel_res(), 1e-12);
}

TEST(Pcg, RejectsShapeMismatch) {
  Fixture f;
  Vector bad(3, 1.0), x;
  EXPECT_THROW(pcg_solve(f.setup->a(0), bad, x, nullptr, {}),
               std::invalid_argument);
}

class PcgPreconditionerTest
    : public ::testing::TestWithParam<MgPreconditionerKind> {};

TEST_P(PcgPreconditionerTest, AcceleratesCg) {
  Fixture f;
  PcgOptions opts;
  opts.max_iterations = 2000;

  Vector x_plain;
  const SolveStats plain = pcg_solve(f.setup->a(0), f.b, x_plain, nullptr, opts);

  Vector x_prec;
  const Preconditioner m = make_mg_preconditioner(*f.setup, GetParam());
  const SolveStats prec = pcg_solve(f.setup->a(0), f.b, x_prec, m, opts);

  EXPECT_TRUE(prec.converged);
  EXPECT_LT(prec.cycles, plain.cycles / 2)
      << "preconditioned " << prec.cycles << " vs plain " << plain.cycles;
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PcgPreconditionerTest,
    ::testing::Values(MgPreconditionerKind::kBpx,
                      MgPreconditionerKind::kMultaddSymmetrized,
                      MgPreconditionerKind::kSymmetricVCycle),
    [](const ::testing::TestParamInfo<MgPreconditionerKind>& i) {
      switch (i.param) {
        case MgPreconditionerKind::kBpx: return "Bpx";
        case MgPreconditionerKind::kMultaddSymmetrized:
          return "MultaddSymmetrized";
        case MgPreconditionerKind::kSymmetricVCycle: return "SymmetricVCycle";
      }
      return "unknown";
    });

// BPX diverges as a solver (test_multigrid shows this) but must still be a
// useful preconditioner: that contrast is the reason Multadd/AFACx exist.
TEST(Pcg, BpxUsableEvenThoughItDivergesAsSolver) {
  Fixture f;
  const Preconditioner m =
      make_mg_preconditioner(*f.setup, MgPreconditionerKind::kBpx);
  Vector x;
  PcgOptions opts;
  opts.max_iterations = 100;
  const SolveStats st = pcg_solve(f.setup->a(0), f.b, x, m, opts);
  EXPECT_TRUE(st.converged);
  EXPECT_LT(st.cycles, 40);
}

// The symmetrized-Multadd preconditioner is SPD, so PCG convergence should
// be iteration-count comparable to the symmetric V-cycle preconditioner
// (they are the same operator, by Section II-B1).
TEST(Pcg, MultaddSymmetrizedMatchesSymmetricVCycleCounts) {
  Fixture f;
  PcgOptions opts;
  Vector x1, x2;
  const SolveStats s1 = pcg_solve(
      f.setup->a(0), f.b, x1,
      make_mg_preconditioner(*f.setup, MgPreconditionerKind::kMultaddSymmetrized),
      opts);
  const SolveStats s2 = pcg_solve(
      f.setup->a(0), f.b, x2,
      make_mg_preconditioner(*f.setup, MgPreconditionerKind::kSymmetricVCycle),
      opts);
  EXPECT_TRUE(s1.converged);
  EXPECT_TRUE(s2.converged);
  EXPECT_NEAR(s1.cycles, s2.cycles, 2);
}

TEST(Pcg, WorksOnElasticityWithUnknownBasedAmg) {
  Problem prob = make_elasticity_beam(8, 3, 3);
  MgOptions mo;
  mo.amg.num_functions = 3;
  mo.smoother.type = SmootherType::kL1Jacobi;
  MgSetup setup(std::move(prob.a), mo);
  Rng rng(29);
  const Vector b = random_vector(static_cast<std::size_t>(setup.a(0).rows()), rng);
  Vector x;
  PcgOptions opts;
  opts.max_iterations = 400;
  const SolveStats st = pcg_solve(
      setup.a(0), b, x,
      make_mg_preconditioner(setup, MgPreconditionerKind::kSymmetricVCycle),
      opts);
  EXPECT_TRUE(st.converged) << st.final_rel_res();
}

}  // namespace
}  // namespace asyncmg
