// Property-style sweeps across problem sizes, test sets, and seeds: the
// invariants that define the methods, checked over families of inputs
// rather than single fixtures.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>

#include "async/model.hpp"
#include "mesh/problems.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/mult.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

double paper_like_omega(TestSet set) {
  return (set == TestSet::kFD7pt || set == TestSet::kFD27pt) ? 0.9 : 0.5;
}

std::unique_ptr<MgSetup> build(TestSet set, Index n,
                               SmootherType st = SmootherType::kWeightedJacobi,
                               int aggressive = 0) {
  Problem prob = make_problem(set, n);
  MgOptions mo;
  mo.smoother.type = st;
  mo.smoother.omega = paper_like_omega(set);
  mo.amg.num_aggressive_levels = aggressive;
  if (set == TestSet::kFemElasticity) mo.amg.num_functions = 3;
  return std::make_unique<MgSetup>(std::move(prob.a), mo);
}

// ---------------------------------------------------------------------
// Grid-size independence: the paper's central property. Cycle counts to a
// fixed tolerance must not grow meaningfully with the problem size.
// ---------------------------------------------------------------------

class GridIndependence
    : public ::testing::TestWithParam<std::tuple<TestSet, bool>> {};

TEST_P(GridIndependence, CyclesToToleranceBounded) {
  const auto [set, additive] = GetParam();
  std::vector<int> cycles;
  for (Index n : {6, 9, 12}) {
    auto s = build(set, n);
    Rng rng(41);
    const Vector b =
        random_vector(static_cast<std::size_t>(s->a(0).rows()), rng);
    Vector x(b.size(), 0.0);
    SolveStats st;
    if (additive) {
      AdditiveOptions ao;
      ao.kind = AdditiveKind::kMultadd;
      AdditiveMg mg(*s, ao);
      st = mg.solve(b, x, 400, 1e-8);
    } else {
      MultiplicativeMg mg(*s);
      st = mg.solve(b, x, 400, 1e-8);
    }
    ASSERT_TRUE(st.converged)
        << test_set_name(set) << " n=" << n << " rr=" << st.final_rel_res();
    cycles.push_back(st.cycles);
  }
  // Largest problem may need a few more cycles, but not a multiple.
  EXPECT_LE(cycles.back(), cycles.front() * 2 + 10)
      << cycles[0] << " " << cycles[1] << " " << cycles[2];
}

INSTANTIATE_TEST_SUITE_P(
    SetsAndMethods, GridIndependence,
    ::testing::Combine(::testing::Values(TestSet::kFD7pt, TestSet::kFD27pt),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<TestSet, bool>>& i) {
      std::string name = test_set_name(std::get<0>(i.param));
      name += std::get<1>(i.param) ? "_Multadd" : "_Mult";
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// The Multadd == symmetric V(1,1) identity must hold across sizes,
// smoothers, and omegas, not just the fixture test_multigrid uses.
// ---------------------------------------------------------------------

class MultaddEquivalence
    : public ::testing::TestWithParam<std::tuple<SmootherType, double>> {};

TEST_P(MultaddEquivalence, HoldsAcrossConfigs) {
  const auto [st, omega] = GetParam();
  Problem prob = make_laplace_27pt(6);
  MgOptions mo;
  mo.smoother.type = st;
  mo.smoother.omega = omega;
  mo.smoother.num_blocks = 3;
  MgSetup s(std::move(prob.a), mo);
  Rng rng(43);
  const Vector b = random_vector(static_cast<std::size_t>(s.a(0).rows()), rng);

  Vector x_mult(b.size(), 0.0), x_add(b.size(), 0.0);
  MultiplicativeMg mult(s, /*symmetric=*/true);
  AdditiveOptions ao;
  ao.kind = AdditiveKind::kMultadd;
  ao.symmetrized_lambda = true;
  AdditiveMg multadd(s, ao);
  for (int t = 0; t < 3; ++t) {
    mult.cycle(b, x_mult);
    multadd.cycle(b, x_add);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(x_mult[i], x_add[i], 1e-9 * (1.0 + std::abs(x_mult[i])));
  }
}

// Only the diagonal smoothers qualify: Multadd's smoothed interpolants are
// built from the (omega- or l1-) Jacobi iteration matrix (Section V keeps
// them Jacobi-type for sparsity even under hybrid/async smoothing), so the
// exact identity Pbar = G P requires G itself to be Jacobi-type.
INSTANTIATE_TEST_SUITE_P(
    Configs, MultaddEquivalence,
    ::testing::Values(std::make_tuple(SmootherType::kWeightedJacobi, 0.9),
                      std::make_tuple(SmootherType::kWeightedJacobi, 0.5),
                      std::make_tuple(SmootherType::kL1Jacobi, 0.9),
                      std::make_tuple(SmootherType::kL1Jacobi, 0.5)),
    [](const ::testing::TestParamInfo<std::tuple<SmootherType, double>>& i) {
      std::string name = smoother_name(std::get<0>(i.param)) + "_w" +
                         std::to_string(static_cast<int>(
                             std::get<1>(i.param) * 10));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------
// Model consistency: at alpha = 1, delta = 0 every model equals the
// synchronous additive method, for every additive kind and several sizes.
// ---------------------------------------------------------------------

class ModelSyncConsistency
    : public ::testing::TestWithParam<std::tuple<AdditiveKind, int>> {};

TEST_P(ModelSyncConsistency, Alpha1EqualsSync) {
  const auto [kind, n] = GetParam();
  auto s = build(TestSet::kFD7pt, static_cast<Index>(n));
  AdditiveOptions ao;
  ao.kind = kind;
  AdditiveCorrector corr(*s, ao);
  Rng rng(47);
  const Vector b = random_vector(static_cast<std::size_t>(s->a(0).rows()), rng);

  Vector x_sync(b.size(), 0.0);
  AdditiveMg mg(*s, ao);
  const double sync = mg.solve(b, x_sync, 10).final_rel_res();

  Vector x_model(b.size(), 0.0);
  AsyncModelOptions mo;
  mo.kind = AsyncModelKind::kFullAsyncResidual;
  mo.alpha = 1.0;
  mo.max_delay = 0;
  mo.updates_per_grid = 10;
  const double model = run_async_model(corr, b, x_model, mo).final_rel_res;
  EXPECT_NEAR(model / sync, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, ModelSyncConsistency,
    ::testing::Combine(::testing::Values(AdditiveKind::kMultadd,
                                         AdditiveKind::kAfacx),
                       ::testing::Values(6, 9)),
    [](const ::testing::TestParamInfo<std::tuple<AdditiveKind, int>>& i) {
      return additive_kind_name(std::get<0>(i.param)) + "_n" +
             std::to_string(std::get<1>(i.param));
    });

// ---------------------------------------------------------------------
// Galerkin consistency on random rectangular interpolants and seeds.
// ---------------------------------------------------------------------

TEST(GalerkinProperty, RapMatchesTransposeChainAcrossSeeds) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    const Index n = 20 + static_cast<Index>(rng.uniform_int(0, 10));
    const Index nc = 5 + static_cast<Index>(rng.uniform_int(0, 5));
    std::vector<Triplet> ta, tp;
    for (Index i = 0; i < n; ++i) {
      ta.push_back({i, i, 4.0});
      for (int k = 0; k < 3; ++k) {
        const Index j = static_cast<Index>(rng.uniform_int(0, n - 1));
        ta.push_back({i, j, rng.uniform(-1.0, 1.0)});
      }
      tp.push_back({i, static_cast<Index>(rng.uniform_int(0, nc - 1)),
                    rng.uniform(0.1, 1.0)});
    }
    const CsrMatrix a = CsrMatrix::from_triplets(n, n, std::move(ta));
    const CsrMatrix p = CsrMatrix::from_triplets(n, nc, std::move(tp));
    const CsrMatrix rap = galerkin_product(a, p);
    const CsrMatrix expl = multiply(multiply(p.transpose(), a), p);
    EXPECT_TRUE(rap.approx_equal(expl, 1e-11)) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------
// W-cycles: at least as good as V-cycles per cycle, and V(2,2) at least
// as good as V(1,1).
// ---------------------------------------------------------------------

TEST(CycleShapes, WAndHeavierSweepsConvergeFaster) {
  auto s = build(TestSet::kFD7pt, 10);
  Rng rng(53);
  const Vector b = random_vector(static_cast<std::size_t>(s->a(0).rows()), rng);

  auto final_res = [&](int pre, int post, int gamma) {
    Vector x(b.size(), 0.0);
    MultiplicativeMg mg(*s, false, pre, post, gamma);
    return mg.solve(b, x, 10).final_rel_res();
  };
  const double v11 = final_res(1, 1, 1);
  const double v22 = final_res(2, 2, 1);
  const double w11 = final_res(1, 1, 2);
  EXPECT_LT(v22, v11);
  EXPECT_LE(w11, v11 * 1.1);
}

TEST(CycleShapes, RejectsBadParameters) {
  auto s = build(TestSet::kFD7pt, 6);
  EXPECT_THROW(MultiplicativeMg(*s, false, 0, 0), std::invalid_argument);
  EXPECT_THROW(MultiplicativeMg(*s, false, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(MultiplicativeMg(*s, false, -1, 1), std::invalid_argument);
}

// V(0,1) and V(1,0) sawtooth cycles still converge (the chaotic-cycle
// literature the paper discusses uses exactly these).
TEST(CycleShapes, SawtoothCyclesConverge) {
  auto s = build(TestSet::kFD7pt, 8);
  Rng rng(59);
  const Vector b = random_vector(static_cast<std::size_t>(s->a(0).rows()), rng);
  for (auto [pre, post] : {std::pair{0, 1}, std::pair{1, 0}}) {
    Vector x(b.size(), 0.0);
    MultiplicativeMg mg(*s, false, pre, post);
    const SolveStats st = mg.solve(b, x, 300, 1e-8);
    EXPECT_TRUE(st.converged) << "V(" << pre << "," << post << ")";
  }
}

// ---------------------------------------------------------------------
// Randomized sparse-kernel properties: random CSR matrices (with
// deliberate duplicate triplets, empty rows, and negative values) are
// checked entry-by-entry against a dense reference implementation, and
// every threaded kernel is checked bitwise against its serial run.
// ---------------------------------------------------------------------

CsrMatrix random_csr(Index rows, Index cols, double fill, Rng& rng) {
  std::vector<Triplet> trips;
  const auto target = static_cast<std::size_t>(fill * static_cast<double>(rows) *
                                               static_cast<double>(cols));
  for (std::size_t k = 0; k < target; ++k) {
    Triplet t;
    t.row = static_cast<Index>(rng.uniform_int(0, rows - 1));
    t.col = static_cast<Index>(rng.uniform_int(0, cols - 1));
    t.value = rng.uniform(-2.0, 2.0);
    trips.push_back(t);
    // Duplicate some entries so from_triplets' summation path is exercised.
    if (rng.next_double() < 0.25) {
      Triplet dup = t;
      dup.value = rng.uniform(-1.0, 1.0);
      trips.push_back(dup);
    }
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(trips));
}

DenseMatrix dense_multiply(const DenseMatrix& a, const DenseMatrix& b) {
  DenseMatrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (Index j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

TEST(SparseKernelProperties, SpgemmMatchesDenseReference) {
  for (std::uint64_t seed : {3u, 17u, 91u}) {
    Rng rng(seed);
    const Index m = static_cast<Index>(rng.uniform_int(5, 40));
    const Index k = static_cast<Index>(rng.uniform_int(5, 40));
    const Index n = static_cast<Index>(rng.uniform_int(5, 40));
    const CsrMatrix a = random_csr(m, k, 0.15, rng);
    const CsrMatrix b = random_csr(k, n, 0.15, rng);
    const CsrMatrix c = multiply(a, b);
    ASSERT_TRUE(c.rows_sorted());
    const DenseMatrix ref =
        dense_multiply(DenseMatrix::from_csr(a), DenseMatrix::from_csr(b));
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        ASSERT_NEAR(c.at(i, j), ref(i, j), 1e-12)
            << "seed=" << seed << " (" << i << "," << j << ")";
      }
    }
    // Threaded SpGEMM must be bit-identical to serial.
    EXPECT_TRUE(multiply(a, b, 4).approx_equal(c, 0.0));
  }
}

TEST(SparseKernelProperties, TransposeMatchesDenseAndRoundTrips) {
  for (std::uint64_t seed : {5u, 23u, 77u}) {
    Rng rng(seed);
    const Index m = static_cast<Index>(rng.uniform_int(4, 50));
    const Index n = static_cast<Index>(rng.uniform_int(4, 50));
    const CsrMatrix a = random_csr(m, n, 0.2, rng);
    const CsrMatrix at = a.transpose();
    ASSERT_TRUE(at.rows_sorted());
    const DenseMatrix da = DenseMatrix::from_csr(a);
    for (Index i = 0; i < m; ++i) {
      for (Index j = 0; j < n; ++j) {
        ASSERT_EQ(at.at(j, i), da(i, j)) << "seed=" << seed;
      }
    }
    // (A^T)^T == A exactly, and threaded transpose == serial exactly.
    EXPECT_TRUE(at.transpose().approx_equal(a, 0.0));
    EXPECT_TRUE(a.transpose(4).approx_equal(at, 0.0));

    // spmv_transpose agrees with forming A^T explicitly.
    const Vector x = random_vector(static_cast<std::size_t>(m), rng);
    Vector y_implicit, y_explicit;
    a.spmv_transpose(x, y_implicit);
    at.spmv(x, y_explicit);
    ASSERT_EQ(y_implicit.size(), y_explicit.size());
    for (std::size_t i = 0; i < y_implicit.size(); ++i) {
      EXPECT_NEAR(y_implicit[i], y_explicit[i], 1e-13);
    }
  }
}

TEST(SparseKernelProperties, FusedRapMatchesDenseTripleProduct) {
  for (std::uint64_t seed : {11u, 29u, 63u}) {
    Rng rng(seed);
    const Index n = static_cast<Index>(rng.uniform_int(8, 40));
    const Index nc = static_cast<Index>(rng.uniform_int(3, n - 1));
    const CsrMatrix a = random_csr(n, n, 0.2, rng);
    const CsrMatrix p = random_csr(n, nc, 0.3, rng);
    const CsrMatrix rap = galerkin_product(a, p);
    ASSERT_TRUE(rap.rows_sorted());
    const DenseMatrix dp = DenseMatrix::from_csr(p);
    DenseMatrix dpt(nc, n);
    for (Index i = 0; i < n; ++i) {
      for (Index j = 0; j < nc; ++j) dpt(j, i) = dp(i, j);
    }
    const DenseMatrix ref =
        dense_multiply(dense_multiply(dpt, DenseMatrix::from_csr(a)), dp);
    for (Index i = 0; i < nc; ++i) {
      for (Index j = 0; j < nc; ++j) {
        ASSERT_NEAR(rap.at(i, j), ref(i, j), 1e-11) << "seed=" << seed;
      }
    }
    // The fused kernel is deterministic across thread counts.
    EXPECT_TRUE(galerkin_product(a, p, 4).approx_equal(rap, 0.0));
  }
}

TEST(SparseKernelProperties, AddAndDropSmallMatchDense) {
  Rng rng(47);
  const Index m = 30, n = 30;  // square, so drop_small keeps diagonals
  const CsrMatrix a = random_csr(m, n, 0.2, rng);
  const CsrMatrix b = random_csr(m, n, 0.2, rng);
  const double alpha = 1.0, beta = -0.5;
  const CsrMatrix c = add(a, b, alpha, beta);
  const DenseMatrix da = DenseMatrix::from_csr(a);
  const DenseMatrix db = DenseMatrix::from_csr(b);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      ASSERT_NEAR(c.at(i, j), alpha * da(i, j) + beta * db(i, j), 1e-13);
    }
  }
  const double tol = 0.5;
  const CsrMatrix dropped = drop_small(a, tol);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      const double v = da(i, j);
      // drop_small keeps diagonal entries unconditionally.
      if (i == j || std::abs(v) > tol) {
        ASSERT_EQ(dropped.at(i, j), v);
      } else {
        ASSERT_EQ(dropped.at(i, j), 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace asyncmg
