// Tests for the shared-memory asynchronous runtime (Section IV).

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "async/runtime.hpp"
#include "mesh/problems.hpp"
#include "multigrid/mult.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(AdditiveKind kind,
                   SmootherType st = SmootherType::kWeightedJacobi,
                   Index n = 10) {
    Problem prob = make_laplace_7pt(n);
    MgOptions mo;
    mo.smoother.type = st;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    AdditiveOptions ao;
    ao.kind = kind;
    corr = std::make_unique<AdditiveCorrector>(*setup, ao);
    Rng rng(13);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  std::unique_ptr<AdditiveCorrector> corr;
  Vector b;
};

TEST(Runtime, SyncModeMatchesSequentialAdditive) {
  Fixture f(AdditiveKind::kMultadd);
  Vector x_seq(f.b.size(), 0.0);
  AdditiveMg mg(*f.setup, f.corr->options());
  const double seq = mg.solve(f.b, x_seq, 15).final_rel_res();

  RuntimeOptions ro;
  ro.mode = ExecMode::kSynchronous;
  ro.t_max = 15;
  ro.num_threads = 8;
  Vector x_par(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x_par, ro);
  EXPECT_NEAR(rr.final_rel_res / seq, 1.0, 1e-6);
  for (int c : rr.corrections) EXPECT_EQ(c, 15);
}

TEST(Runtime, MultThreadedMatchesSequentialMult) {
  Fixture f(AdditiveKind::kMultadd);
  Vector x_seq(f.b.size(), 0.0);
  MultiplicativeMg mg(*f.setup);
  const double seq = mg.solve(f.b, x_seq, 12).final_rel_res();

  Vector x_par(f.b.size(), 0.0);
  const RuntimeResult rr = run_mult_threaded(*f.setup, f.b, x_par, 12, 6);
  EXPECT_NEAR(rr.final_rel_res / seq, 1.0, 1e-9);
}

struct AsyncCase {
  ResComp rescomp;
  WritePolicy write;
  bool residual_based;
};

class RuntimeAsyncConfig : public ::testing::TestWithParam<AsyncCase> {};

TEST_P(RuntimeAsyncConfig, MultaddConverges) {
  const AsyncCase& cfg = GetParam();
  Fixture f(AdditiveKind::kMultadd);
  RuntimeOptions ro;
  ro.mode = ExecMode::kAsynchronous;
  ro.rescomp = cfg.rescomp;
  ro.write = cfg.write;
  ro.residual_based = cfg.residual_based;
  ro.criterion = StopCriterion::kIndependent;
  ro.t_max = 30;
  ro.num_threads = 8;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  for (int c : rr.corrections) EXPECT_GE(c, 30);
  if (cfg.rescomp == ResComp::kLocal) {
    // Convergence thresholds are loose: the exact reduction depends on the
    // OS schedule (this is an asynchronous method).
    EXPECT_LT(rr.final_rel_res, 0.05) << runtime_config_name(ro);
  } else {
    // global-res may converge slowly or diverge when residual chunks go
    // stale (the paper itself reports divergent global-res cells in
    // Table I); on an oversubscribed single core staleness is extreme, so
    // only require a sane, completed run.
    EXPECT_TRUE(std::isfinite(rr.final_rel_res)) << runtime_config_name(ro);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, RuntimeAsyncConfig,
    ::testing::Values(
        AsyncCase{ResComp::kLocal, WritePolicy::kLockWrite, false},
        AsyncCase{ResComp::kLocal, WritePolicy::kAtomicWrite, false},
        AsyncCase{ResComp::kGlobal, WritePolicy::kLockWrite, false},
        AsyncCase{ResComp::kGlobal, WritePolicy::kAtomicWrite, false},
        AsyncCase{ResComp::kLocal, WritePolicy::kAtomicWrite, true}),
    [](const ::testing::TestParamInfo<AsyncCase>& info) {
      const AsyncCase& c = info.param;
      std::string name = c.rescomp == ResComp::kLocal ? "local" : "global";
      name += c.write == WritePolicy::kLockWrite ? "Lock" : "Atomic";
      if (c.residual_based) name += "Rbased";
      return name;
    });

TEST(Runtime, AfacxAsyncConverges) {
  Fixture f(AdditiveKind::kAfacx);
  RuntimeOptions ro;
  ro.t_max = 40;
  ro.num_threads = 8;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  EXPECT_LT(rr.final_rel_res, 0.05);
}

TEST(Runtime, AsyncGsSmootherConverges) {
  Fixture f(AdditiveKind::kMultadd, SmootherType::kAsyncGS);
  RuntimeOptions ro;
  ro.t_max = 30;
  ro.num_threads = 8;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  EXPECT_LT(rr.final_rel_res, 0.05);
}

TEST(Runtime, MasterCriterionRunsAllGridsToAtLeastTmax) {
  Fixture f(AdditiveKind::kMultadd);
  RuntimeOptions ro;
  ro.criterion = StopCriterion::kMaster;
  ro.t_max = 10;
  ro.num_threads = 8;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  for (int c : rr.corrections) EXPECT_GE(c, 10);
  EXPECT_GE(rr.mean_corrections(), 10.0);
}

TEST(Runtime, FewerThreadsThanGridsStillWorks) {
  Fixture f(AdditiveKind::kMultadd);
  ASSERT_GE(f.setup->num_levels(), 3u);
  RuntimeOptions ro;
  ro.t_max = 20;
  ro.num_threads = 2;  // fewer than grids: teams own several grids
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  EXPECT_LT(rr.final_rel_res, 1e-2);
  for (int c : rr.corrections) EXPECT_GE(c, 20);
}

TEST(Runtime, SingleThreadWorks) {
  Fixture f(AdditiveKind::kMultadd);
  RuntimeOptions ro;
  ro.t_max = 20;
  ro.num_threads = 1;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  EXPECT_LT(rr.final_rel_res, 1e-2);
}

TEST(Runtime, RejectsZeroThreads) {
  Fixture f(AdditiveKind::kMultadd, SmootherType::kWeightedJacobi, 6);
  RuntimeOptions ro;
  ro.num_threads = 0;
  Vector x(f.b.size(), 0.0);
  EXPECT_THROW(run_shared_memory(*f.corr, f.b, x, ro), std::invalid_argument);
  EXPECT_THROW(run_mult_threaded(*f.setup, f.b, x, 5, 0),
               std::invalid_argument);
}

TEST(Runtime, ConfigNamesAreDescriptive) {
  RuntimeOptions ro;
  ro.mode = ExecMode::kAsynchronous;
  ro.write = WritePolicy::kLockWrite;
  ro.rescomp = ResComp::kLocal;
  EXPECT_EQ(runtime_config_name(ro), "async lock-write local-res");
  ro.residual_based = true;
  ro.rescomp = ResComp::kGlobal;
  ro.write = WritePolicy::kAtomicWrite;
  EXPECT_EQ(runtime_config_name(ro), "async atomic-write global-res r-based");
  ro.mode = ExecMode::kSynchronous;
  EXPECT_EQ(runtime_config_name(ro), "sync atomic-write");
}

TEST(Runtime, MultThreadedIndependentOfThreadCountForJacobi) {
  // w-Jacobi phases are order-independent, so the threaded Mult result must
  // be identical (to rounding) for any thread count.
  Fixture f(AdditiveKind::kMultadd);
  Vector x1(f.b.size(), 0.0), x2(f.b.size(), 0.0);
  const RuntimeResult r1 = run_mult_threaded(*f.setup, f.b, x1, 8, 1);
  const RuntimeResult r2 = run_mult_threaded(*f.setup, f.b, x2, 8, 7);
  EXPECT_NEAR(r1.final_rel_res / r2.final_rel_res, 1.0, 1e-9);
}

TEST(Runtime, TraceRecordsEveryCommit) {
  Fixture f(AdditiveKind::kMultadd);
  RuntimeOptions ro;
  ro.t_max = 12;
  ro.num_threads = 8;
  ro.record_trace = true;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  int total = 0;
  for (int c : rr.corrections) total += c;
  ASSERT_EQ(static_cast<int>(rr.trace.size()), total);
  // Per-grid commit times are recorded in nondecreasing order.
  std::map<std::size_t, double> last;
  for (const TraceEvent& ev : rr.trace) {
    EXPECT_GE(ev.seconds, 0.0);
    auto it = last.find(ev.grid);
    if (it != last.end()) EXPECT_GE(ev.seconds, it->second);
    last[ev.grid] = ev.seconds;
  }
  EXPECT_EQ(last.size(), rr.corrections.size());
}

TEST(Runtime, TraceOffByDefault) {
  Fixture f(AdditiveKind::kMultadd);
  RuntimeOptions ro;
  ro.t_max = 5;
  ro.num_threads = 4;
  Vector x(f.b.size(), 0.0);
  const RuntimeResult rr = run_shared_memory(*f.corr, f.b, x, ro);
  EXPECT_TRUE(rr.trace.empty());
}

}  // namespace
}  // namespace asyncmg
