// Unit and property tests for the four smoothers (Section V) and the
// smoothed interpolants used by Multadd.

#include <gtest/gtest.h>

#include <cmath>

#include "mesh/problems.hpp"
#include "smoothers/smoother.hpp"
#include "sparse/dense.hpp"
#include "sparse/spgemm.hpp"
#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

CsrMatrix fixture_matrix() {
  Problem p = make_laplace_7pt(6);  // 216 rows
  return std::move(p.a);
}

SmootherOptions opts_of(SmootherType t, std::size_t blocks = 4,
                        double omega = 0.9) {
  SmootherOptions o;
  o.type = t;
  o.omega = omega;
  o.num_blocks = blocks;
  return o;
}

/// Estimates the spectral radius of the iteration matrix G = I - M^{-1}A by
/// power iteration using only sweeps: e <- e - (sweep on b=0 updates
/// x += M^{-1}(0 - A x), which is exactly G x).
double estimate_rho(const Smoother& sm, std::size_t n, int iters, Rng& rng) {
  Vector e = random_vector(n, rng);
  const Vector zero(n, 0.0);
  double rho = 0.0;
  for (int it = 0; it < iters; ++it) {
    const double before = norm2(e);
    sm.sweep(zero, e);  // e <- G e
    const double after = norm2(e);
    if (before > 0.0) rho = after / before;
    if (after > 0.0) scale(e, 1.0 / after);
  }
  return rho;
}

class SmootherTypeTest : public ::testing::TestWithParam<SmootherType> {};

TEST_P(SmootherTypeTest, IterationContractsOnSpdLaplace) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(GetParam()));
  Rng rng(3);
  const double rho = estimate_rho(sm, static_cast<std::size_t>(a.rows()), 60, rng);
  EXPECT_LT(rho, 1.0) << smoother_name(GetParam());
  EXPECT_GT(rho, 0.3);  // smoothers are not direct solvers
}

TEST_P(SmootherTypeTest, ApplyZeroEqualsSweepFromZero) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(GetParam()));
  Rng rng(4);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e1, e2(r.size(), 0.0);
  sm.apply_zero(r, e1);
  sm.sweep(r, e2);  // one sweep starting from zero
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(e1[i], e2[i], 1e-12) << smoother_name(GetParam());
  }
}

TEST_P(SmootherTypeTest, BlockApplicationsComposeToFullApply) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(GetParam()));
  Rng rng(5);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector whole, blocks(r.size(), 0.0);
  sm.apply_zero(r, whole);
  for (std::size_t b = 0; b < sm.num_blocks(); ++b) {
    sm.apply_zero_block(r, blocks, b);
  }
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(whole[i], blocks[i], 1e-12);
  }
}

TEST_P(SmootherTypeTest, SmoothZeroMultipleSweepsReducesResidual) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(GetParam()));
  Rng rng(6);
  const Vector b = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector x1, x4;
  sm.smooth_zero(b, x1, 1);
  sm.smooth_zero(b, x4, 4);
  Vector r1, r4;
  a.residual(b, x1, r1);
  a.residual(b, x4, r4);
  EXPECT_LT(norm2(r4), norm2(r1));
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, SmootherTypeTest,
    ::testing::Values(SmootherType::kWeightedJacobi, SmootherType::kL1Jacobi,
                      SmootherType::kHybridJGS, SmootherType::kAsyncGS,
                      SmootherType::kL1HybridJGS),
    [](const ::testing::TestParamInfo<SmootherType>& i) {
      switch (i.param) {
        case SmootherType::kWeightedJacobi: return "WJacobi";
        case SmootherType::kL1Jacobi: return "L1Jacobi";
        case SmootherType::kHybridJGS: return "HybridJGS";
        case SmootherType::kAsyncGS: return "AsyncGS";
        case SmootherType::kL1HybridJGS: return "L1HybridJGS";
      }
      return "unknown";
    });

TEST(Smoother, WeightedJacobiMatchesFormula) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(SmootherType::kWeightedJacobi, 1, 0.7));
  Rng rng(7);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e;
  sm.apply_zero(r, e);
  const Vector d = a.diag();
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(e[i], 0.7 * r[i] / d[i], 1e-14);
  }
}

TEST(Smoother, L1JacobiUsesRowNorms) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(SmootherType::kL1Jacobi));
  Rng rng(8);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e;
  sm.apply_zero(r, e);
  const Vector l1 = a.l1_row_norms();
  for (std::size_t i = 0; i < r.size(); ++i) {
    EXPECT_NEAR(e[i], r[i] / l1[i], 1e-14);
  }
}

// The defining property of l1-Jacobi (Section V): for SPD A the error
// decreases monotonically in the A-norm.
TEST(Smoother, L1JacobiMonotoneInANorm) {
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(SmootherType::kL1Jacobi));
  Rng rng(9);
  const Vector xref = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector b;
  a.spmv(xref, b);
  Vector x(xref.size(), 0.0);
  auto a_norm_err = [&] {
    Vector err(xref.size());
    for (std::size_t i = 0; i < err.size(); ++i) err[i] = x[i] - xref[i];
    Vector ae;
    a.spmv(err, ae);
    return std::sqrt(dot(err, ae));
  };
  double prev = a_norm_err();
  for (int sweep = 0; sweep < 15; ++sweep) {
    sm.sweep(b, x);
    const double cur = a_norm_err();
    EXPECT_LE(cur, prev * (1.0 + 1e-12)) << "sweep " << sweep;
    prev = cur;
  }
}

TEST(Smoother, HybridJgsEqualsGaussSeidelWithOneBlock) {
  const CsrMatrix a = fixture_matrix();
  const Smoother hybrid(a, opts_of(SmootherType::kHybridJGS, 1));
  const Smoother gs(a, opts_of(SmootherType::kAsyncGS, 1));
  Rng rng(10);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e1, e2;
  hybrid.apply_zero(r, e1);
  gs.apply_zero(r, e2);
  // Sequential async GS from zero is plain forward GS; with one block the
  // hybrid smoother is also plain forward GS.
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_NEAR(e1[i], e2[i], 1e-12);
}

TEST(Smoother, HybridJgsBlockCountChangesResult) {
  const CsrMatrix a = fixture_matrix();
  const Smoother one(a, opts_of(SmootherType::kHybridJGS, 1));
  const Smoother many(a, opts_of(SmootherType::kHybridJGS, 8));
  Rng rng(11);
  const Vector r = random_vector(static_cast<std::size_t>(a.rows()), rng);
  Vector e1, e2;
  one.apply_zero(r, e1);
  many.apply_zero(r, e2);
  double diff = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) diff += std::abs(e1[i] - e2[i]);
  EXPECT_GT(diff, 1e-8);  // more blocks -> more Jacobi-like -> different
}

TEST(Smoother, SweepTransposeIsAdjointSweep) {
  // For SPD A, <G x, y>_A == <x, G^T-sweep y>_A where G and G^T-sweep are
  // the forward and transposed iteration operators. Verify via the identity
  // (I - M^{-T}A) = A^{-1} (I - A M^{-1})^T A on a small dense check.
  const CsrMatrix a = fixture_matrix();
  const Smoother sm(a, opts_of(SmootherType::kHybridJGS, 4));
  Rng rng(12);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const Vector zero(n, 0.0);
  Vector x = random_vector(n, rng);
  Vector y = random_vector(n, rng);
  // u = G x (forward sweep with b=0), v = Gt y (transposed sweep with b=0).
  Vector u = x, v = y;
  sm.sweep(zero, u);
  sm.sweep_transpose(zero, v);
  // A-inner products: <u, A y> == <A x, v>.
  Vector ay, ax;
  a.spmv(y, ay);
  a.spmv(x, ax);
  EXPECT_NEAR(dot(u, ay), dot(ax, v), 1e-8 * std::abs(dot(u, ay)) + 1e-10);
}

TEST(Smoother, SymmetrizedApplicationIsSymmetric) {
  const CsrMatrix a = fixture_matrix();
  Rng rng(13);
  const std::size_t n = static_cast<std::size_t>(a.rows());
  for (SmootherType t : {SmootherType::kWeightedJacobi,
                         SmootherType::kHybridJGS}) {
    const Smoother sm(a, opts_of(t));
    const Vector x = random_vector(n, rng);
    const Vector y = random_vector(n, rng);
    Vector mx, my;
    sm.apply_symmetrized(x, mx);
    sm.apply_symmetrized(y, my);
    // <Mbar^{-1} x, y> == <x, Mbar^{-1} y>.
    EXPECT_NEAR(dot(mx, y), dot(x, my),
                1e-10 * std::abs(dot(mx, y)) + 1e-12)
        << smoother_name(t);
  }
}

TEST(Smoother, RejectsZeroDiagonal) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, 2, {{0, 0, 1.0}});
  EXPECT_THROW(Smoother(a, opts_of(SmootherType::kWeightedJacobi)),
               std::invalid_argument);
}

TEST(Smoother, RejectsNonSquare) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, 3, {{0, 0, 1.0}, {1, 1, 1.0}});
  EXPECT_THROW(Smoother(a, opts_of(SmootherType::kWeightedJacobi)),
               std::invalid_argument);
}

TEST(SmoothedInterpolant, MatchesExplicitProduct) {
  Problem prob = make_laplace_7pt(6);
  // A rectangular "interpolation" with plausible structure: take every
  // second column of the identity plus small couplings.
  const Index n = prob.a.rows();
  const Index nc = n / 2;
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) t.push_back({i, std::min(i / 2, nc - 1), 1.0});
  const CsrMatrix p = CsrMatrix::from_triplets(n, nc, std::move(t));

  const double omega = 0.9;
  const CsrMatrix pbar =
      smoothed_interpolant(prob.a, p, SmootherType::kWeightedJacobi, omega);

  // Explicit: (I - omega D^{-1} A) P.
  const Vector d = prob.a.diag();
  Vector dinv(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) dinv[i] = omega / d[i];
  CsrMatrix da = prob.a;
  da.scale_rows(dinv);
  const CsrMatrix expl = multiply(add(CsrMatrix::identity(n), da, 1.0, -1.0), p);
  EXPECT_TRUE(pbar.approx_equal(expl, 1e-12));
}

TEST(SmoothedInterpolant, L1VariantUsesL1Diagonal) {
  Problem prob = make_laplace_7pt(5);
  const Index n = prob.a.rows();
  const CsrMatrix p = CsrMatrix::identity(n);
  const CsrMatrix pbar =
      smoothed_interpolant(prob.a, p, SmootherType::kL1Jacobi, 0.9);
  // Pbar = I - D_l1^{-1} A; its diagonal entries are 1 - a_ii / l1_i.
  const Vector d = prob.a.diag();
  const Vector l1 = prob.a.l1_row_norms();
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(pbar.at(i, i), 1.0 - d[static_cast<std::size_t>(i)] /
                                         l1[static_cast<std::size_t>(i)],
                1e-13);
  }
}

}  // namespace
}  // namespace asyncmg
