// Unit tests for the AMG setup substrate: strength of connection,
// coarse/fine splitting invariants, interpolation properties, hierarchy
// construction.

#include <gtest/gtest.h>

#include "amg/coarsen.hpp"
#include "amg/hierarchy.hpp"
#include "amg/interp.hpp"
#include "amg/strength.hpp"
#include "mesh/problems.hpp"
#include "sparse/spgemm.hpp"

namespace asyncmg {
namespace {

CsrMatrix laplace1d(Index n) {
  std::vector<Triplet> t;
  for (Index i = 0; i < n; ++i) {
    t.push_back({i, i, 2.0});
    if (i > 0) t.push_back({i, i - 1, -1.0});
    if (i + 1 < n) t.push_back({i, i + 1, -1.0});
  }
  return CsrMatrix::from_triplets(n, n, std::move(t));
}

TEST(Strength, Laplace1dAllNeighborsStrong) {
  const CsrMatrix a = laplace1d(10);
  const CsrMatrix s = strength_matrix(a, 0.25);
  // Every off-diagonal is equally strong; interior rows have two strong
  // dependencies, boundary rows one.
  EXPECT_EQ(s.nnz(), a.nnz() - a.rows());
  EXPECT_DOUBLE_EQ(s.at(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(s.at(3, 3), 0.0);  // no self-dependence
}

TEST(Strength, ThetaFiltersWeakConnections) {
  // Row 0: strong -4, weak -1 (threshold 0.5 * 4 = 2).
  const CsrMatrix a = CsrMatrix::from_triplets(
      3, 3, {{0, 0, 6.0}, {0, 1, -4.0}, {0, 2, -1.0},
             {1, 0, -4.0}, {1, 1, 6.0}, {2, 0, -1.0}, {2, 2, 6.0}});
  const CsrMatrix s = strength_matrix(a, 0.5);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(s.at(0, 2), 0.0);
}

TEST(Strength, AbsoluteNormSeesPositiveOffDiagonals) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, 2, {{0, 0, 2.0}, {0, 1, 1.5}, {1, 0, 1.5}, {1, 1, 2.0}});
  EXPECT_EQ(strength_matrix(a, 0.25, StrengthNorm::kNegative).nnz(), 0);
  EXPECT_EQ(strength_matrix(a, 0.25, StrengthNorm::kAbsolute).nnz(), 2);
}

TEST(Strength, Distance2ReachesNeighborsOfNeighbors) {
  const CsrMatrix a = laplace1d(7);
  const CsrMatrix s = strength_matrix(a, 0.25);
  const CsrMatrix s2 = strength_distance2(s);
  EXPECT_DOUBLE_EQ(s2.at(3, 1), 1.0);  // distance 2
  EXPECT_DOUBLE_EQ(s2.at(3, 5), 1.0);
  EXPECT_DOUBLE_EQ(s2.at(3, 0), 0.0);  // distance 3
  EXPECT_DOUBLE_EQ(s2.at(3, 3), 0.0);  // no diagonal
}

/// Invariant of all our splittings: every F point with at least one strong
/// connection has a strong C neighbor (so interpolation has something to
/// work with), except after aggressive coarsening.
void check_f_points_covered(const CsrMatrix& s, const Splitting& split) {
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  for (Index i = 0; i < s.rows(); ++i) {
    if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) continue;
    if (rp[i + 1] == rp[i]) continue;  // no strong deps: smoother-only point
    bool has_c = false;
    for (Index k = rp[i]; k < rp[i + 1] && !has_c; ++k) {
      has_c = split[static_cast<std::size_t>(
                  ci[static_cast<std::size_t>(k)])] == PointType::kCoarse;
    }
    EXPECT_TRUE(has_c) << "F point " << i << " has no strong C neighbor";
  }
}

/// C points must form an independent set in S for PMIS-type coarsenings.
void check_c_independent(const CsrMatrix& s, const Splitting& split) {
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  for (Index i = 0; i < s.rows(); ++i) {
    if (split[static_cast<std::size_t>(i)] != PointType::kCoarse) continue;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      EXPECT_NE(split[static_cast<std::size_t>(
                    ci[static_cast<std::size_t>(k)])],
                PointType::kCoarse)
          << "C-C strong connection " << i;
    }
  }
}

class CoarsenAlgoTest : public ::testing::TestWithParam<CoarsenAlgo> {};

TEST_P(CoarsenAlgoTest, FPointsCoveredOn7pt) {
  Problem prob = make_laplace_7pt(8);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(5);
  const Splitting split = coarsen(GetParam(), s, rng);
  const Index nc = count_coarse(split);
  EXPECT_GT(nc, 0);
  EXPECT_LT(nc, prob.a.rows());
  check_f_points_covered(s, split);
}

TEST_P(CoarsenAlgoTest, CoarsensAnisotropic) {
  Problem prob = make_laplace_7pt_anisotropic(8, 100.0);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(6);
  const Splitting split = coarsen(GetParam(), s, rng);
  const Index nc = count_coarse(split);
  EXPECT_GT(nc, 0);
  EXPECT_LT(nc, prob.a.rows());
  check_f_points_covered(s, split);
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, CoarsenAlgoTest,
                         ::testing::Values(CoarsenAlgo::kRS,
                                           CoarsenAlgo::kPMIS,
                                           CoarsenAlgo::kHMIS),
                         [](const ::testing::TestParamInfo<CoarsenAlgo>& i) {
                           switch (i.param) {
                             case CoarsenAlgo::kRS: return "RS";
                             case CoarsenAlgo::kPMIS: return "PMIS";
                             case CoarsenAlgo::kHMIS: return "HMIS";
                           }
                           return "unknown";
                         });

TEST(Coarsen, PmisCIndependent) {
  Problem prob = make_laplace_27pt(6);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(7);
  const Splitting split = coarsen_pmis(s, rng);
  check_c_independent(s, split);
}

TEST(Coarsen, AggressiveCoarsensFurther) {
  Problem prob = make_laplace_7pt(8);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(8);
  const Splitting first = coarsen_hmis(s, rng);
  const Splitting agg = coarsen_aggressive(CoarsenAlgo::kHMIS, s, first, rng);
  const Index nc1 = count_coarse(first);
  const Index nc2 = count_coarse(agg);
  EXPECT_GT(nc2, 0);
  EXPECT_LT(nc2, nc1);
  // Aggressive C points must be a subset of the first-stage C points.
  for (std::size_t i = 0; i < first.size(); ++i) {
    if (agg[i] == PointType::kCoarse) {
      EXPECT_EQ(first[i], PointType::kCoarse);
    }
  }
}

TEST(Coarsen, IsolatedPointsBecomeFine) {
  // 3 disconnected points: no strong connections anywhere.
  const CsrMatrix a = CsrMatrix::diagonal({1.0, 2.0, 3.0});
  const CsrMatrix s = strength_matrix(a, 0.25);
  Rng rng(9);
  for (CoarsenAlgo algo :
       {CoarsenAlgo::kRS, CoarsenAlgo::kPMIS, CoarsenAlgo::kHMIS}) {
    const Splitting split = coarsen(algo, s, rng);
    EXPECT_EQ(count_coarse(split), 0);
  }
}

TEST(Coarsen, NumberingIsContiguous) {
  Splitting split{PointType::kFine, PointType::kCoarse, PointType::kFine,
                  PointType::kCoarse};
  const auto num = coarse_numbering(split);
  EXPECT_EQ(num, (std::vector<Index>{-1, 0, -1, 1}));
  EXPECT_EQ(count_coarse(split), 2);
}

class InterpAlgoTest : public ::testing::TestWithParam<InterpAlgo> {};

// Constant vectors must be reproduced by interpolation on M-matrix rows
// with full strong-C coverage: row sums of P over F rows are <= 1 and
// positive, and C rows are exactly identity.
TEST_P(InterpAlgoTest, IdentityOnCPointsAndBoundedRows) {
  Problem prob = make_laplace_7pt(7);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(10);
  const Splitting split = coarsen_hmis(s, rng);
  const CsrMatrix p = build_interpolation(GetParam(), prob.a, s, split);
  EXPECT_EQ(p.rows(), prob.a.rows());
  EXPECT_EQ(p.cols(), count_coarse(split));
  const auto cnum = coarse_numbering(split);
  const auto rp = p.row_ptr();
  const auto vals = p.values();
  for (Index i = 0; i < p.rows(); ++i) {
    if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) {
      ASSERT_EQ(rp[i + 1] - rp[i], 1);
      EXPECT_DOUBLE_EQ(p.at(i, cnum[static_cast<std::size_t>(i)]), 1.0);
    } else {
      double row_sum = 0.0;
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        row_sum += vals[static_cast<std::size_t>(k)];
      }
      EXPECT_GE(row_sum, 0.0);
      EXPECT_LE(row_sum, 1.0 + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, InterpAlgoTest,
                         ::testing::Values(InterpAlgo::kDirect,
                                           InterpAlgo::kClassicalModified,
                                           InterpAlgo::kMultipass),
                         [](const ::testing::TestParamInfo<InterpAlgo>& i) {
                           switch (i.param) {
                             case InterpAlgo::kDirect: return "Direct";
                             case InterpAlgo::kClassicalModified:
                               return "ClassicalModified";
                             case InterpAlgo::kMultipass: return "Multipass";
                           }
                           return "unknown";
                         });

TEST(Interp, MultipassCoversAggressiveSplitting) {
  Problem prob = make_laplace_7pt(8);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(11);
  Splitting split = coarsen_hmis(s, rng);
  split = coarsen_aggressive(CoarsenAlgo::kHMIS, s, split, rng);
  const CsrMatrix p = interp_multipass(prob.a, s, split);
  // Every row must interpolate from something (the mesh is connected).
  const auto rp = p.row_ptr();
  for (Index i = 0; i < p.rows(); ++i) {
    EXPECT_GT(rp[i + 1], rp[i]) << "empty interpolation row " << i;
  }
}

TEST(Interp, TruncationPreservesRowSums) {
  Problem prob = make_laplace_27pt(6);
  const CsrMatrix s = strength_matrix(prob.a, 0.25);
  Rng rng(12);
  const Splitting split = coarsen_hmis(s, rng);
  const CsrMatrix p = interp_classical_modified(prob.a, s, split);
  const CsrMatrix pt = truncate_interpolation(p, 0.3);
  EXPECT_LE(pt.nnz(), p.nnz());
  const auto rp0 = p.row_ptr();
  const auto v0 = p.values();
  const auto rp1 = pt.row_ptr();
  const auto v1 = pt.values();
  for (Index i = 0; i < p.rows(); ++i) {
    double s0 = 0.0, s1 = 0.0;
    for (Index k = rp0[i]; k < rp0[i + 1]; ++k) {
      s0 += v0[static_cast<std::size_t>(k)];
    }
    for (Index k = rp1[i]; k < rp1[i + 1]; ++k) {
      s1 += v1[static_cast<std::size_t>(k)];
    }
    EXPECT_NEAR(s0, s1, 1e-12) << "row " << i;
  }
}

TEST(Strength, UnknownBasedIgnoresCrossComponentCouplings) {
  // Two interleaved components with strong cross-couplings: with
  // num_functions = 2 only same-component entries may appear in S.
  const CsrMatrix a = CsrMatrix::from_triplets(
      4, 4, {{0, 0, 2.0}, {0, 1, -5.0}, {0, 2, -1.0},
             {1, 0, -5.0}, {1, 1, 2.0}, {1, 3, -1.0},
             {2, 0, -1.0}, {2, 2, 2.0},
             {3, 1, -1.0}, {3, 3, 2.0}});
  const CsrMatrix s_scalar = strength_matrix(a, 0.25);
  EXPECT_GT(s_scalar.at(0, 1), 0.0);  // cross coupling counts
  const CsrMatrix s_nf = strength_matrix(a, 0.25, StrengthNorm::kNegative, 2);
  EXPECT_DOUBLE_EQ(s_nf.at(0, 1), 0.0);  // cross coupling ignored
  EXPECT_GT(s_nf.at(0, 2), 0.0);         // same-component survives
}

TEST(Hierarchy, UnknownBasedKeepsComponentsSeparate) {
  Problem prob = make_elasticity_beam(6, 3, 3);
  AmgOptions opts;
  opts.num_functions = 3;
  Hierarchy h = Hierarchy::build(std::move(prob.a), opts);
  EXPECT_GE(h.num_levels(), 2u);
  // Interpolation never mixes components on the finest level: P(i, c) != 0
  // only when coarse dof c came from a fine dof with i's component.
  const Splitting& split = h.level(0).split;
  std::vector<int> coarse_comp;
  for (std::size_t i = 0; i < split.size(); ++i) {
    if (split[i] == PointType::kCoarse) {
      coarse_comp.push_back(static_cast<int>(i % 3));
    }
  }
  const CsrMatrix& p = h.interpolation(0);
  const auto rp = p.row_ptr();
  const auto ci = p.col_idx();
  for (Index i = 0; i < p.rows(); ++i) {
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      EXPECT_EQ(coarse_comp[static_cast<std::size_t>(
                    ci[static_cast<std::size_t>(k)])],
                static_cast<int>(i % 3))
          << "row " << i;
    }
  }
}

TEST(Hierarchy, BuildsMultipleLevelsAndStaysSpd) {
  Problem prob = make_laplace_7pt(10);
  AmgOptions opts;
  // fp64 oracle: the 1e-10 Galerkin-consistency check below compares a
  // freshly computed RAP against the stored coarse operator, which only
  // holds to that tolerance when nothing was demoted. Mixed-precision
  // hierarchies are covered by test_precision.
  opts.precision = PrecisionPolicy{};
  Hierarchy h = Hierarchy::build(std::move(prob.a), opts);
  EXPECT_GE(h.num_levels(), 3u);
  EXPECT_LE(h.matrix(h.num_levels() - 1).rows(), opts.coarse_size);
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    EXPECT_TRUE(h.matrix(k).is_symmetric(1e-8)) << "level " << k;
  }
  // Galerkin consistency: A_{k+1} == P^T A_k P.
  for (std::size_t k = 0; k + 1 < h.num_levels(); ++k) {
    const CsrMatrix rap = galerkin_product(h.matrix(k), h.interpolation(k));
    EXPECT_TRUE(rap.approx_equal(h.matrix(k + 1), 1e-10)) << "level " << k;
  }
}

TEST(Hierarchy, AggressiveReducesComplexity) {
  Problem p1 = make_laplace_27pt(8);
  Problem p2 = make_laplace_27pt(8);
  AmgOptions plain;
  AmgOptions agg;
  agg.num_aggressive_levels = 1;
  Hierarchy h0 = Hierarchy::build(std::move(p1.a), plain);
  Hierarchy h1 = Hierarchy::build(std::move(p2.a), agg);
  // Aggressive coarsening must shrink the second level.
  ASSERT_GE(h0.num_levels(), 2u);
  ASSERT_GE(h1.num_levels(), 2u);
  EXPECT_LT(h1.matrix(1).rows(), h0.matrix(1).rows());
  EXPECT_LT(h1.grid_complexity(), h0.grid_complexity());
}

TEST(Hierarchy, DeterministicGivenSeed) {
  Problem p1 = make_laplace_7pt(8);
  Problem p2 = make_laplace_7pt(8);
  AmgOptions opts;
  opts.seed = 99;
  Hierarchy h0 = Hierarchy::build(std::move(p1.a), opts);
  Hierarchy h1 = Hierarchy::build(std::move(p2.a), opts);
  ASSERT_EQ(h0.num_levels(), h1.num_levels());
  for (std::size_t k = 0; k < h0.num_levels(); ++k) {
    EXPECT_TRUE(h0.matrix(k).approx_equal(h1.matrix(k), 0.0));
  }
}

TEST(Hierarchy, ComplexityStatsSane) {
  Problem prob = make_laplace_7pt(10);
  Hierarchy h = Hierarchy::build(std::move(prob.a), {});
  EXPECT_GT(h.operator_complexity(), 1.0);
  EXPECT_LT(h.operator_complexity(), 3.0);
  EXPECT_GT(h.grid_complexity(), 1.0);
  EXPECT_LT(h.grid_complexity(), 2.0);
  EXPECT_FALSE(h.summary().empty());
}

}  // namespace
}  // namespace asyncmg
