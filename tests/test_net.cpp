// Tests for the multi-process solver service (src/net): wire-protocol
// round-trip and fuzz/robustness properties, the framed TCP connection, the
// socket transport's mailbox semantics, and the control plane -- a BSP
// multi-process solve over localhost bitwise-identical to the in-process
// oracle, free-running convergence, and crash recovery (a worker dropping
// its connection mid-solve must trigger dead-peer detection and Criterion-2
// recovery, never a deadlock).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "amg/serialize.hpp"
#include "mesh/problems.hpp"
#include "net/cluster.hpp"
#include "net/socket.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "net/workerd.hpp"
#include "shard/solver.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"

namespace asyncmg {
namespace {

struct Fixture {
  explicit Fixture(int m = 8) {
    Problem prob = make_laplace_7pt(m);
    MgOptions mo;
    mo.smoother.type = SmootherType::kWeightedJacobi;
    mo.smoother.omega = 0.9;
    setup = std::make_unique<MgSetup>(std::move(prob.a), mo);
    ao.kind = AdditiveKind::kMultadd;
    Rng rng(31);
    b = random_vector(static_cast<std::size_t>(setup->a(0).rows()), rng);
  }
  std::unique_ptr<MgSetup> setup;
  AdditiveOptions ao;
  Vector b;
};

HaloFrameMsg random_halo(Rng& rng, WireWidth w, std::size_t len) {
  HaloFrameMsg m;
  m.from = static_cast<std::uint32_t>(rng.next_below(8));
  m.to = static_cast<std::uint32_t>((m.from + 1 + rng.next_below(7)) % 8);
  m.tag = static_cast<std::uint8_t>(rng.next_below(kNumHaloTags));
  m.width = w;
  m.seq = rng.next_u64();
  m.data.resize(len);
  for (double& v : m.data) {
    v = rng.uniform(-1e6, 1e6);
    if (w == WireWidth::kF32) v = static_cast<double>(static_cast<float>(v));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Wire protocol: round trips
// ---------------------------------------------------------------------------

TEST(Wire, PrimitivesRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.f32(3.14159f);
  w.str("halo");
  w.vec({1.0, -2.5, 1e-300}, WireWidth::kF64);

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.f32(), 3.14159f);
  EXPECT_EQ(r.str(), "halo");
  const std::vector<double> v = r.vec(WireWidth::kF64);
  EXPECT_EQ(v, (std::vector<double>{1.0, -2.5, 1e-300}));
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Wire, HaloFramesRoundTripBitExact) {
  // Property: random halo frames encode -> frame -> decode to bit-identical
  // payloads at fp64; at fp32 the fp32-rounded values round-trip exactly.
  Rng rng(1234);
  for (int it = 0; it < 200; ++it) {
    const WireWidth w = it % 2 == 0 ? WireWidth::kF64 : WireWidth::kF32;
    const HaloFrameMsg m = random_halo(rng, w, rng.next_below(64));
    const std::vector<std::uint8_t> frame =
        encode_frame(MsgType::kHaloFrame, encode_halo_frame(m));

    const FrameHeader h = decode_frame_header(frame.data(), frame.size());
    ASSERT_EQ(h.type, MsgType::kHaloFrame);
    ASSERT_EQ(frame.size(), kFrameHeaderBytes + h.payload_len);
    ASSERT_NO_THROW(
        verify_frame_payload(h, frame.data() + kFrameHeaderBytes));
    const HaloFrameMsg out = decode_halo_frame(std::vector<std::uint8_t>(
        frame.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
        frame.end()));
    EXPECT_EQ(out.from, m.from);
    EXPECT_EQ(out.to, m.to);
    EXPECT_EQ(out.tag, m.tag);
    EXPECT_EQ(out.width, m.width);
    EXPECT_EQ(out.seq, m.seq);
    ASSERT_EQ(out.data.size(), m.data.size());
    for (std::size_t i = 0; i < m.data.size(); ++i) {
      EXPECT_EQ(out.data[i], m.data[i]);  // bitwise (values already rounded)
    }
  }
}

TEST(Wire, SolveRequestRoundTrip) {
  SolveRequestMsg m;
  m.shard = 2;
  m.num_shards = 4;
  m.bsp = 0;
  m.width = WireWidth::kF32;
  m.t_max = 17;
  m.max_lag = 5;
  m.seed = 99;
  m.additive_kind = 2;
  m.symmetrized_lambda = 1;
  m.afacx_s1 = 2;
  m.afacx_s2 = 3;
  m.smoother_type = 1;
  m.smoother_omega = 0.5;
  m.smoother_blocks = 8;
  m.max_dense_coarse = 1234;
  m.crash_after = 7;
  m.hierarchy = "not a real hierarchy\n\0binary-ish";
  m.b = {1.0, 2.0, 3.0};
  m.x0 = {0.0, -1.0, 0.5};
  const SolveRequestMsg out = decode_solve_request(encode_solve_request(m));
  EXPECT_EQ(out.shard, m.shard);
  EXPECT_EQ(out.num_shards, m.num_shards);
  EXPECT_EQ(out.bsp, m.bsp);
  EXPECT_EQ(out.width, m.width);
  EXPECT_EQ(out.t_max, m.t_max);
  EXPECT_EQ(out.max_lag, m.max_lag);
  EXPECT_EQ(out.seed, m.seed);
  EXPECT_EQ(out.additive_kind, m.additive_kind);
  EXPECT_EQ(out.symmetrized_lambda, m.symmetrized_lambda);
  EXPECT_EQ(out.afacx_s1, m.afacx_s1);
  EXPECT_EQ(out.afacx_s2, m.afacx_s2);
  EXPECT_EQ(out.smoother_type, m.smoother_type);
  EXPECT_EQ(out.smoother_omega, m.smoother_omega);
  EXPECT_EQ(out.smoother_blocks, m.smoother_blocks);
  EXPECT_EQ(out.max_dense_coarse, m.max_dense_coarse);
  EXPECT_EQ(out.crash_after, m.crash_after);
  EXPECT_EQ(out.hierarchy, m.hierarchy);
  EXPECT_EQ(out.b, m.b);
  EXPECT_EQ(out.x0, m.x0);
}

TEST(Wire, ControlMessagesRoundTrip) {
  HelloMsg hello;
  hello.role = WireRole::kWorker;
  hello.name = "w-3";
  const HelloMsg hello2 = decode_hello(encode_hello(hello));
  EXPECT_EQ(hello2.role, hello.role);
  EXPECT_EQ(hello2.name, hello.name);

  HelloAckMsg ack;
  ack.shard = 3;
  ack.num_shards = 5;
  const HelloAckMsg ack2 = decode_hello_ack(encode_hello_ack(ack));
  EXPECT_EQ(ack2.shard, 3u);
  EXPECT_EQ(ack2.num_shards, 5u);

  ProgressMsg pr{2, 41};
  const ProgressMsg pr2 = decode_progress(encode_progress(pr));
  EXPECT_EQ(pr2.shard, 2u);
  EXPECT_EQ(pr2.commits, 41u);

  HeartbeatMsg hb{1, 7, 99};
  const HeartbeatMsg hb2 = decode_heartbeat(encode_heartbeat(hb));
  EXPECT_EQ(hb2.shard, 1u);
  EXPECT_EQ(hb2.commits, 7u);
  EXPECT_EQ(hb2.seq, 99u);

  const PeerDeadMsg pd2 = decode_peer_dead(encode_peer_dead({4}));
  EXPECT_EQ(pd2.shard, 4u);

  SolveDoneMsg dm;
  dm.shard = 1;
  dm.corrections = 20;
  dm.reads_dropped = 2;
  dm.killed = 1;
  dm.frames_sent = 100;
  dm.frames_dropped = 3;
  dm.bytes_sent = 4096;
  dm.bytes_received = 8192;
  dm.x_block = {0.25, -0.75};
  const SolveDoneMsg dm2 = decode_solve_done(encode_solve_done(dm));
  EXPECT_EQ(dm2.corrections, 20u);
  EXPECT_EQ(dm2.killed, 1);
  EXPECT_EQ(dm2.frames_dropped, 3u);
  EXPECT_EQ(dm2.x_block, dm.x_block);

  const StatsResponseMsg st2 =
      decode_stats_response(encode_stats_response({"{\"x\":1}"}));
  EXPECT_EQ(st2.json, "{\"x\":1}");
}

// ---------------------------------------------------------------------------
// Wire protocol: fuzz / robustness (run under ASan+UBSan in CI)
// ---------------------------------------------------------------------------

TEST(WireFuzz, TruncatedPayloadsAlwaysThrow) {
  // Every strict prefix of a valid message payload must throw WireError --
  // never read out of bounds, never return garbage silently.
  Rng rng(77);
  for (int it = 0; it < 50; ++it) {
    const HaloFrameMsg m = random_halo(
        rng, it % 2 == 0 ? WireWidth::kF64 : WireWidth::kF32, rng.next_below(16));
    const std::vector<std::uint8_t> payload = encode_halo_frame(m);
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::vector<std::uint8_t> trunc(payload.begin(),
                                            payload.begin() +
                                                static_cast<std::ptrdiff_t>(
                                                    cut));
      EXPECT_THROW(decode_halo_frame(trunc), WireError) << "cut=" << cut;
    }
  }
  // Same for the big composite message.
  SolveRequestMsg req;
  req.hierarchy = "hier";
  req.b = {1.0, 2.0};
  req.x0 = {0.0, 0.0};
  const std::vector<std::uint8_t> payload = encode_solve_request(req);
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    const std::vector<std::uint8_t> trunc(
        payload.begin(), payload.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_THROW(decode_solve_request(trunc), WireError);
  }
}

TEST(WireFuzz, TrailingBytesRejected) {
  std::vector<std::uint8_t> payload = encode_progress({1, 2});
  payload.push_back(0);
  EXPECT_THROW(decode_progress(payload), WireError);
}

TEST(WireFuzz, HostileLengthPrefixesRejected) {
  // A length prefix larger than the remaining bytes must throw before any
  // allocation explosion or OOB read.
  WireWriter w;
  w.u32(0xFFFFFFFFu);  // str/vec length
  EXPECT_THROW(
      {
        WireReader r(w.bytes());
        (void)r.str();
      },
      WireError);
  EXPECT_THROW(
      {
        WireReader r(w.bytes());
        (void)r.vec(WireWidth::kF64);
      },
      WireError);
}

TEST(WireFuzz, CorruptedFramesDetected) {
  // Flip each single bit of a framed message: the decode pipeline (header
  // validation -> length check -> checksum -> typed decode) must throw for
  // every flip outside the type byte, and must never crash for any flip.
  Rng rng(5);
  const HaloFrameMsg m = random_halo(rng, WireWidth::kF64, 9);
  const std::vector<std::uint8_t> frame =
      encode_frame(MsgType::kHaloFrame, encode_halo_frame(m));

  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::uint8_t> f = frame;
      f[byte] = static_cast<std::uint8_t>(f[byte] ^ (1u << bit));
      bool threw = false;
      try {
        const FrameHeader h = decode_frame_header(f.data(), f.size());
        if (f.size() != kFrameHeaderBytes + h.payload_len) {
          throw WireError("length mismatch");  // reassembly-layer check
        }
        verify_frame_payload(h, f.data() + kFrameHeaderBytes);
        (void)decode_halo_frame(std::vector<std::uint8_t>(
            f.begin() + static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
            f.end()));
      } catch (const WireError&) {
        threw = true;
      }
      if (byte != 5) {  // type byte: a flip may yield another valid type
        EXPECT_TRUE(threw) << "byte " << byte << " bit " << bit;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Framed TCP connection
// ---------------------------------------------------------------------------

TEST(NetSocket, FrameConnReassemblesAcrossSegments) {
  ListenSocket listener(0);
  ASSERT_GT(listener.port(), 0);

  std::unique_ptr<FrameConn> server;
  std::thread accepter([&] {
    server = std::make_unique<FrameConn>(listener.accept(5000));
  });
  FrameConn client(connect_tcp("127.0.0.1", listener.port(), 5000));
  accepter.join();
  ASSERT_TRUE(server != nullptr && server->open());

  // Frames from tiny to well past one TCP segment, interleaved both ways.
  Rng rng(9);
  for (const std::size_t len : {0ul, 1ul, 100ul, 70000ul, 300000ul}) {
    const HaloFrameMsg m = random_halo(rng, WireWidth::kF64, len);
    ASSERT_TRUE(client.send_frame(MsgType::kHaloFrame, encode_halo_frame(m)));
    MsgType type{};
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(server->recv_frame(type, payload, 5000), RecvStatus::kFrame);
    ASSERT_EQ(type, MsgType::kHaloFrame);
    const HaloFrameMsg out = decode_halo_frame(payload);
    EXPECT_EQ(out.seq, m.seq);
    ASSERT_EQ(out.data.size(), m.data.size());
    for (std::size_t i = 0; i < len; ++i) EXPECT_EQ(out.data[i], m.data[i]);

    ASSERT_TRUE(server->send_frame(MsgType::kHeartbeat,
                                   encode_heartbeat({1, 2, m.seq})));
    ASSERT_EQ(client.recv_frame(type, payload, 5000), RecvStatus::kFrame);
    EXPECT_EQ(type, MsgType::kHeartbeat);
    EXPECT_EQ(decode_heartbeat(payload).seq, m.seq);
  }
  EXPECT_GT(client.bytes_sent(), 0u);
  EXPECT_EQ(client.frames_sent(), 5u);
  EXPECT_EQ(server->frames_received(), 5u);

  // Orderly close surfaces as kClosed, not an error.
  client.close();
  MsgType type{};
  std::vector<std::uint8_t> payload;
  EXPECT_EQ(server->recv_frame(type, payload, 5000), RecvStatus::kClosed);
}

// ---------------------------------------------------------------------------
// SocketTransport mailboxes + NetPeerBoard
// ---------------------------------------------------------------------------

struct ConnPair {
  ConnPair() : listener(0) {
    std::thread accepter(
        [&] { a = std::make_unique<FrameConn>(listener.accept(5000)); });
    b = std::make_unique<FrameConn>(
        connect_tcp("127.0.0.1", listener.port(), 5000));
    accepter.join();
  }
  ListenSocket listener;
  std::unique_ptr<FrameConn> a, b;
};

TEST(NetTransport, MailboxFifoAndNewestWins) {
  ConnPair pair;
  SocketTransportOptions sto;
  sto.shard = 0;
  sto.num_shards = 3;
  sto.mailbox_capacity = 2;
  sto.conn = pair.a.get();
  SocketTransport t(sto);

  auto frame = [](std::uint64_t seq) {
    HaloFrameMsg m;
    m.from = 1;
    m.to = 0;
    m.tag = 0;
    m.seq = seq;
    m.data = {static_cast<double>(seq)};
    return m;
  };

  // FIFO: recv_next pops oldest first.
  t.deliver(frame(1));
  t.deliver(frame(2));
  HaloPacket p;
  ASSERT_TRUE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_EQ(p.seq, 1u);
  ASSERT_TRUE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_EQ(p.seq, 2u);
  EXPECT_FALSE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));

  // Newest wins: recv_latest takes the back and clears.
  t.deliver(frame(3));
  t.deliver(frame(4));
  ASSERT_TRUE(t.recv_latest(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_EQ(p.seq, 4u);
  EXPECT_FALSE(t.recv_latest(0, 1, HaloTag::kBoundaryX, p));

  // Overflow evicts the OLDEST (capacity 2) and counts a drop.
  t.deliver(frame(5));
  t.deliver(frame(6));
  t.deliver(frame(7));
  EXPECT_EQ(t.packets_dropped(), 1u);
  ASSERT_TRUE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_EQ(p.seq, 6u);

  // Misaddressed / malformed deliveries are counted, never applied.
  const std::uint64_t dropped = t.packets_dropped();
  HaloFrameMsg bad = frame(8);
  bad.to = 2;  // not our shard
  t.deliver(bad);
  bad = frame(9);
  bad.from = 99;  // out of range
  t.deliver(bad);
  EXPECT_EQ(t.packets_dropped(), dropped + 2);

  // send() writes a decodable frame to the wire.
  HaloPacket out;
  out.seq = 42;
  out.data = {1.5, -2.5};
  ASSERT_TRUE(t.send(0, 1, HaloTag::kResidualBlock, std::move(out)));
  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(pair.b->recv_frame(type, payload, 5000), RecvStatus::kFrame);
  ASSERT_EQ(type, MsgType::kHaloFrame);
  const HaloFrameMsg got = decode_halo_frame(payload);
  EXPECT_EQ(got.from, 0u);
  EXPECT_EQ(got.to, 1u);
  EXPECT_EQ(got.seq, 42u);
  EXPECT_EQ(got.data, (std::vector<double>{1.5, -2.5}));
}

TEST(NetTransport, LengthMismatchedFramesDropped) {
  // When the plan-derived payload lengths are configured, deliver() must
  // drop any frame whose length disagrees -- a wrong-sized ghost or
  // residual block off the wire can never reach the solver's copy loops
  // (which would read or write out of bounds).
  ConnPair pair;
  SocketTransportOptions sto;
  sto.shard = 0;
  sto.num_shards = 2;
  sto.conn = pair.a.get();
  sto.expect_boundary = {0, 3};  // peer 1 fills 3 ghost slots
  sto.expect_residual = {0, 5};  // peer 1 owns 5 rows
  SocketTransport t(sto);

  HaloFrameMsg m;
  m.from = 1;
  m.to = 0;
  m.seq = 1;
  m.tag = static_cast<std::uint8_t>(HaloTag::kBoundaryX);
  m.data = {1.0, 2.0};  // short: 2 != 3 ghost slots
  t.deliver(m);
  m.tag = static_cast<std::uint8_t>(HaloTag::kResidualBlock);
  m.data = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0};  // long: 7 != 5 owned rows
  t.deliver(m);
  EXPECT_EQ(t.packets_dropped(), 2u);
  HaloPacket p;
  EXPECT_FALSE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_FALSE(t.recv_next(0, 1, HaloTag::kResidualBlock, p));

  // Exact lengths pass through untouched.
  m.tag = static_cast<std::uint8_t>(HaloTag::kBoundaryX);
  m.data = {1.0, 2.0, 3.0};
  t.deliver(m);
  m.tag = static_cast<std::uint8_t>(HaloTag::kResidualBlock);
  m.data = {1.0, 2.0, 3.0, 4.0, 5.0};
  t.deliver(m);
  ASSERT_TRUE(t.recv_next(0, 1, HaloTag::kBoundaryX, p));
  EXPECT_EQ(p.data.size(), 3u);
  ASSERT_TRUE(t.recv_next(0, 1, HaloTag::kResidualBlock, p));
  EXPECT_EQ(p.data.size(), 5u);
  EXPECT_EQ(t.packets_dropped(), 2u);

  // Mis-sized expectation vectors are rejected at construction.
  sto.expect_boundary = {0};
  EXPECT_THROW(SocketTransport bad(sto), std::invalid_argument);
}

TEST(NetTransport, PeerBoardPublishesAndApplies) {
  ConnPair pair;
  NetPeerBoard board(3, 0, pair.a.get());

  board.publish_commits(0, 5);
  EXPECT_EQ(board.commits(0), 5);
  MsgType type{};
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(pair.b->recv_frame(type, payload, 5000), RecvStatus::kFrame);
  ASSERT_EQ(type, MsgType::kProgress);
  const ProgressMsg m = decode_progress(payload);
  EXPECT_EQ(m.shard, 0u);
  EXPECT_EQ(m.commits, 5u);

  board.apply_progress({1, 9});
  EXPECT_EQ(board.commits(1), 9);
  EXPECT_FALSE(board.dead(2));
  board.apply_dead(2);
  EXPECT_TRUE(board.dead(2));
  board.apply_dead(0);  // self: ignored
  EXPECT_FALSE(board.dead(0));
}

// ---------------------------------------------------------------------------
// Multi-process control plane (daemons in threads, real TCP on loopback)
// ---------------------------------------------------------------------------

struct DaemonSet {
  explicit DaemonSet(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      WorkerDaemonOptions wo;
      wo.port = 0;
      wo.name = "w";
      wo.name += std::to_string(i);
      daemons.push_back(std::make_unique<WorkerDaemon>(wo));
      endpoints.push_back({"127.0.0.1", daemons.back()->port()});
    }
    for (auto& d : daemons) {
      threads.emplace_back([p = d.get()] { p->run(); });
    }
  }
  ~DaemonSet() {
    for (auto& d : daemons) d->request_stop();
    for (std::thread& t : threads) t.join();
  }
  std::vector<std::unique_ptr<WorkerDaemon>> daemons;
  std::vector<Endpoint> endpoints;
  std::vector<std::thread> threads;
};

TEST(NetCluster, BspSolveMatchesInProcessOracleBitwise) {
  // The acceptance gate: a BSP sharded solve across worker processes over
  // localhost TCP is bitwise identical to the in-process ChannelTransport
  // oracle (which is itself bitwise equal to the 1-shard scripted sync
  // run). Workers rebuild the setup from the serialized hierarchy, so this
  // also pins the serialize -> rebuild -> solve chain end to end.
  Fixture f;
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.t_max = 8;
  so.num_shards = 1;
  ShardedSolver oracle(*f.setup, f.ao, so);
  Vector x1(f.b.size(), 0.0);
  const ShardResult r1 = oracle.solve(f.b, x1);

  for (const std::size_t shards : {2u, 4u}) {
    DaemonSet fleet(shards);
    ClusterOptions co;
    co.endpoints = fleet.endpoints;
    ClusterCoordinator coordinator(co);
    ClusterSolveOptions cso;
    cso.bsp = true;
    cso.t_max = 8;
    cso.additive = f.ao;
    Vector x(f.b.size(), 0.0);
    const ClusterResult r = coordinator.solve(*f.setup, f.b, x, cso);
    EXPECT_TRUE(r.dead_workers.empty());
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_EQ(x[i], x1[i]) << shards << " shards, row " << i;
    }
    EXPECT_EQ(r.final_rel_res, r1.final_rel_res);
    for (int c : r.corrections) EXPECT_EQ(c, cso.t_max);
    EXPECT_GT(r.frames_relayed, 0u);
    EXPECT_GT(r.bytes_received, 0u);
    const std::string json = r.to_json();
    EXPECT_NE(json.find("\"frames_relayed\""), std::string::npos);
    EXPECT_NE(json.find("\"dead_workers\":[]"), std::string::npos);
  }
}

TEST(NetCluster, FreeRunningSolveConverges) {
  // Free-running across processes: no round barrier, stale views allowed;
  // convergence must stay within the PR 6 error-norm discipline (bounded
  // degradation vs the synchronous oracle, same bound the in-process
  // free-running test uses).
  Fixture f;
  ShardOptions so;
  so.mode = ShardMode::kSynchronous;
  so.t_max = 12;
  so.num_shards = 1;
  ShardedSolver oracle(*f.setup, f.ao, so);
  Vector x1(f.b.size(), 0.0);
  const ShardResult r1 = oracle.solve(f.b, x1);

  DaemonSet fleet(3);
  ClusterOptions co;
  co.endpoints = fleet.endpoints;
  ClusterCoordinator coordinator(co);
  ClusterSolveOptions cso;
  cso.bsp = false;
  cso.t_max = 12;
  cso.max_lag = 3;
  cso.additive = f.ao;
  Vector x(f.b.size(), 0.0);
  const ClusterResult r = coordinator.solve(*f.setup, f.b, x, cso);
  EXPECT_TRUE(r.dead_workers.empty());
  for (int c : r.corrections) EXPECT_EQ(c, cso.t_max);
  EXPECT_LT(r.final_rel_res, std::max(r1.final_rel_res * 100.0, 1e-6));
}

TEST(NetCluster, WorkerCrashMidSolveRecovers) {
  // Criterion-2 across processes: worker 1 drops its connection after 3
  // corrections (the deterministic SIGKILL stand-in). The coordinator must
  // detect the dead peer, broadcast kPeerDead, and the survivors must
  // finish all their rounds with the dead shard's rows frozen -- bounded
  // residual, no deadlock (the test completing IS the no-deadlock gate,
  // backstopped by the ctest timeout).
  Fixture f;
  DaemonSet fleet(3);
  ClusterOptions co;
  co.endpoints = fleet.endpoints;
  ClusterCoordinator coordinator(co);
  ClusterSolveOptions cso;
  cso.bsp = true;
  cso.t_max = 10;
  cso.additive = f.ao;
  cso.crash_after = {-1, 3, -1};
  Vector x(f.b.size(), 0.0);
  const ClusterResult r = coordinator.solve(*f.setup, f.b, x, cso);
  ASSERT_EQ(r.dead_workers.size(), 1u);
  EXPECT_EQ(r.dead_workers[0], 1u);
  EXPECT_EQ(r.corrections[0], 10);
  EXPECT_EQ(r.corrections[1], 0);  // no SolveDone from the crashed worker
  EXPECT_EQ(r.corrections[2], 10);
  EXPECT_LT(r.final_rel_res, 1.0);
  EXPECT_TRUE(std::isfinite(r.final_rel_res));
  const std::string json = r.to_json();
  EXPECT_NE(json.find("\"dead_workers\":[1]"), std::string::npos);
}

TEST(NetCluster, MalformedWorkerFrameMarksDeadNotTerminate) {
  // A worker that handshakes correctly and then sends a checksum-VALID but
  // semantically invalid frame (here: a halo frame addressed to itself,
  // which decode_halo_frame rejects) must be treated like any other
  // protocol violation: the coordinator marks it dead and the survivors
  // finish with Criterion-2 recovery. Before the reader wrapped its decode
  // calls in the try block this threw out of the thread function and
  // std::terminate'd the whole coordinator process.
  Fixture f;
  DaemonSet fleet(2);
  ListenSocket rogue_listener(0);
  ASSERT_GT(rogue_listener.port(), 0);
  std::thread rogue([&] {
    try {
      FrameConn conn(rogue_listener.accept(10000));
      HelloMsg hello;
      hello.role = WireRole::kWorker;
      hello.name = "rogue";
      conn.send_frame(MsgType::kHello, encode_hello(hello));
      MsgType type{};
      std::vector<std::uint8_t> payload;
      // Play along through the handshake, wait for the solve request.
      while (conn.recv_frame(type, payload, 10000) == RecvStatus::kFrame) {
        if (type == MsgType::kSolveRequest) break;
      }
      // Hand-rolled halo payload with from == to: the frame layer accepts
      // it (checksum is ours), the semantic decoder throws WireError.
      WireWriter w;
      w.u32(1);  // from
      w.u32(1);  // to == from: "halo frame to self"
      w.u8(0);
      w.u8(0);
      w.u64(0);
      w.u32(0);  // empty data vector
      conn.send_frame(MsgType::kHaloFrame, w.bytes());
      // Keep the connection open so only the decode error (never an EOF)
      // can be what kills the session; leave when the coordinator cuts us.
      while (conn.recv_frame(type, payload, 10000) == RecvStatus::kFrame) {
      }
    } catch (const std::exception&) {
      // Coordinator shut the socket down mid-read: expected.
    }
  });

  ClusterOptions co;
  co.endpoints = {fleet.endpoints[0],
                  {"127.0.0.1", rogue_listener.port()},
                  fleet.endpoints[1]};
  ClusterCoordinator coordinator(co);
  ClusterSolveOptions cso;
  cso.bsp = true;
  cso.t_max = 6;
  cso.additive = f.ao;
  Vector x(f.b.size(), 0.0);
  const ClusterResult r = coordinator.solve(*f.setup, f.b, x, cso);
  rogue.join();
  ASSERT_EQ(r.dead_workers.size(), 1u);
  EXPECT_EQ(r.dead_workers[0], 1u);
  EXPECT_EQ(r.corrections[0], cso.t_max);
  EXPECT_EQ(r.corrections[2], cso.t_max);
  EXPECT_TRUE(std::isfinite(r.final_rel_res));
  EXPECT_LT(r.final_rel_res, 1.0);
}

TEST(NetWorkerd, SurvivesMalformedCoordinatorFrame) {
  // The worker-side mirror: a checksum-valid but semantically invalid
  // frame arriving mid-solve must not unwind past the reader loop while
  // the solver and heartbeat threads are joinable (which would
  // std::terminate the daemon). The worker treats it as a lost
  // coordinator, finishes the solve locally, and serves the next session.
  Fixture f;
  WorkerDaemonOptions wo;
  wo.port = 0;
  wo.name = "w0";
  WorkerDaemon daemon(wo);
  std::thread dt([&] { daemon.run(); });

  const std::string hierarchy = save_hierarchy_string(f.setup->hierarchy());
  {
    FrameConn conn(connect_tcp("127.0.0.1", daemon.port(), 5000));
    MsgType type{};
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(conn.recv_frame(type, payload, 5000), RecvStatus::kFrame);
    ASSERT_EQ(type, MsgType::kHello);
    HelloAckMsg ack;
    ack.shard = 0;
    ack.num_shards = 2;
    ASSERT_TRUE(conn.send_frame(MsgType::kHelloAck, encode_hello_ack(ack)));

    SolveRequestMsg req;
    req.shard = 0;
    req.num_shards = 2;
    req.bsp = 1;
    req.t_max = 3;
    req.additive_kind = static_cast<std::uint8_t>(f.ao.kind);
    req.smoother_type =
        static_cast<std::uint8_t>(f.setup->options().smoother.type);
    req.smoother_omega = f.setup->options().smoother.omega;
    req.smoother_blocks =
        static_cast<std::uint32_t>(f.setup->options().smoother.num_blocks);
    req.max_dense_coarse =
        static_cast<std::int64_t>(f.setup->options().max_dense_coarse);
    req.hierarchy = hierarchy;
    req.b = f.b;
    req.x0 = Vector(f.b.size(), 0.0);
    ASSERT_TRUE(conn.send_frame(MsgType::kSolveRequest,
                                encode_solve_request(req)));

    // Mid-solve poison: halo frame to self, rejected by the semantic
    // decoder inside the worker's reader loop.
    WireWriter w;
    w.u32(1);
    w.u32(1);
    w.u8(0);
    w.u8(0);
    w.u64(0);
    w.u32(0);
    ASSERT_TRUE(conn.send_frame(MsgType::kHaloFrame, w.bytes()));
    // Scope exit closes the connection; by then the worker has already
    // treated the poison frame as a lost coordinator.
  }

  // The daemon survived: a fresh session serves stats counting the solve.
  {
    FrameConn conn(connect_tcp("127.0.0.1", daemon.port(), 5000));
    MsgType type{};
    std::vector<std::uint8_t> payload;
    ASSERT_EQ(conn.recv_frame(type, payload, 5000), RecvStatus::kFrame);
    ASSERT_EQ(type, MsgType::kHello);
    HelloAckMsg ack;
    ASSERT_TRUE(conn.send_frame(MsgType::kHelloAck, encode_hello_ack(ack)));
    ASSERT_TRUE(conn.send_frame(MsgType::kStatsRequest, {}));
    std::string json;
    while (conn.recv_frame(type, payload, 5000) == RecvStatus::kFrame) {
      if (type == MsgType::kStatsResponse) {
        json = decode_stats_response(payload).json;
        break;
      }
    }
    EXPECT_NE(json.find("\"solves\":1"), std::string::npos);
  }
  daemon.request_stop();
  dt.join();
}

TEST(NetCluster, ConnectBacksOffThenFails) {
  // Nobody listening: the coordinator must retry with backoff and then
  // fail with a SocketError, not hang.
  ClusterOptions co;
  co.endpoints = {{"127.0.0.1", 1}};  // port 1: connection refused
  co.connect_attempts = 3;
  co.backoff.initial_ms = 1.0;
  co.backoff.max_ms = 4.0;
  co.connect_timeout_ms = 200;
  ClusterCoordinator coordinator(co);
  Fixture f;
  Vector x(f.b.size(), 0.0);
  ClusterSolveOptions cso;
  cso.t_max = 2;
  EXPECT_THROW(coordinator.solve(*f.setup, f.b, x, cso), SocketError);
}

TEST(NetCluster, StatsAndShutdownRoundTrip) {
  Fixture f;
  DaemonSet fleet(2);
  ClusterOptions co;
  co.endpoints = fleet.endpoints;
  ClusterCoordinator coordinator(co);
  ClusterSolveOptions cso;
  cso.t_max = 4;
  cso.additive = f.ao;
  Vector x(f.b.size(), 0.0);
  coordinator.solve(*f.setup, f.b, x, cso);

  const std::string stats = coordinator.stats_json();
  EXPECT_NE(stats.find("\"workers\":["), std::string::npos);
  EXPECT_NE(stats.find("\"name\":\"w0\""), std::string::npos);
  EXPECT_NE(stats.find("\"solves\":1"), std::string::npos);

  // Shutdown ends run() without request_stop.
  coordinator.shutdown_workers();
  for (std::thread& t : fleet.threads) t.join();
  fleet.threads.clear();
}

TEST(NetCluster, SetupCacheWarmAcrossSolves) {
  Fixture f;
  DaemonSet fleet(2);
  ClusterOptions co;
  co.endpoints = fleet.endpoints;
  ClusterCoordinator coordinator(co);
  ClusterSolveOptions cso;
  cso.t_max = 3;
  cso.additive = f.ao;
  Vector x(f.b.size(), 0.0);
  coordinator.solve(*f.setup, f.b, x, cso);
  Vector y(f.b.size(), 0.0);
  coordinator.solve(*f.setup, f.b, y, cso);
  for (std::size_t i = 0; i < x.size(); ++i) ASSERT_EQ(x[i], y[i]);
  const std::string stats = coordinator.stats_json();
  EXPECT_NE(stats.find("\"setup_cache_hits\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ClusterRouter placement
// ---------------------------------------------------------------------------

TEST(NetRouter, SelectBackendsDistinctAndDeterministic) {
  const std::vector<RingNode> ring = build_hash_ring(5, 16, 0);
  Rng rng(3);
  for (int it = 0; it < 100; ++it) {
    const std::uint64_t key = rng.next_u64();
    const std::vector<std::size_t> a = select_backends(ring, key, 3);
    const std::vector<std::size_t> b = select_backends(ring, key, 3);
    EXPECT_EQ(a, b);
    ASSERT_EQ(a.size(), 3u);
    std::vector<std::size_t> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()),
              sorted.end());
    for (std::size_t e : a) EXPECT_LT(e, 5u);
  }
  EXPECT_THROW(select_backends(ring, 0, 6), std::invalid_argument);
}

TEST(NetRouter, RoutesSolveToHomeWorkers) {
  Fixture f;
  DaemonSet fleet(3);
  ClusterRouterOptions ro;
  ro.endpoints = fleet.endpoints;
  ro.shards_per_solve = 2;
  ClusterRouter router(ro);

  const std::vector<std::size_t> home = router.endpoints_for(f.setup->a(0));
  ASSERT_EQ(home.size(), 2u);
  EXPECT_EQ(home, router.endpoints_for(f.setup->a(0)));  // stable placement

  ClusterSolveOptions cso;
  cso.t_max = 6;
  cso.additive = f.ao;
  Vector x(f.b.size(), 0.0);
  const ClusterResult r = router.solve(*f.setup, f.b, x, cso);
  EXPECT_TRUE(r.dead_workers.empty());
  EXPECT_LT(r.final_rel_res, 1.0);

  const std::string stats = router.stats_json();
  EXPECT_NE(stats.find("\"routed\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"routed_per_endpoint\""), std::string::npos);
  // The two home workers each served one solve; the third served none.
  EXPECT_NE(stats.find("\"solves\":1"), std::string::npos);
  EXPECT_NE(stats.find("\"solves\":0"), std::string::npos);
}

}  // namespace
}  // namespace asyncmg
