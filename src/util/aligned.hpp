#pragma once
// 64-byte-aligned allocation for kernel-facing arrays. The SELL value and
// column slabs are streamed by the SIMD backends (src/backend) with 256/512
// bit loads; cache-line alignment of the slab base guarantees an aligned
// vector load never splits a line (the loads themselves stay unaligned-op
// encodings, so alignment is a performance property, never a correctness
// one). std::vector's default allocator only promises alignof(std::max_align_t)
// (16 on x86-64), hence the dedicated allocator.

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace asyncmg {

/// Alignment of kernel-streamed arrays: one cache line, which also covers a
/// full AVX-512 register.
inline constexpr std::size_t kKernelAlign = 64;

template <class T, std::size_t Align = kKernelAlign>
struct AlignedAllocator {
  static_assert((Align & (Align - 1)) == 0, "alignment must be a power of 2");
  static_assert(Align >= alignof(T), "alignment below the type's own");

  using value_type = T;

  AlignedAllocator() = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Cache-line-aligned vector for kernel-streamed slabs (SELL values and
/// column indices). Element access and iteration are identical to
/// std::vector; only the allocation alignment differs.
template <class T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// Debug-build check used by SellMatrix::from_csr.
template <class T>
inline bool is_kernel_aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kKernelAlign == 0;
}

}  // namespace asyncmg
