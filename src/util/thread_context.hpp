#pragma once
// Per-thread execution-context marker shared across layers.
//
// The thread-ownership rule for the library (DESIGN.md section 7): the
// SolverPool owns solve-phase concurrency -- each worker is one execution
// lane and must not fan out further -- while the AMG setup phase sizes its
// own OpenMP teams explicitly. Solve kernels with OpenMP variants consult
// this flag and fall back to their serial body on pool workers, so a client
// thread gets a parallel SpMV but a pool running N concurrent solves never
// multiplies into N OpenMP teams.

namespace asyncmg {

/// True when the calling thread is a SolverPool worker.
bool this_thread_is_pool_worker();

/// Marks (or unmarks) the calling thread as a pool worker. Called by
/// SolverPool::worker_loop on entry; user code should not need it.
void set_this_thread_pool_worker(bool worker);

}  // namespace asyncmg
