#pragma once
// Small statistics helpers for averaging benchmark runs (the paper reports
// the mean of 20 runs for every data point).

#include <vector>

namespace asyncmg {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  // population variance
double stddev(const std::vector<double>& xs);
double median(std::vector<double> xs);           // by value: sorts a copy
/// p-th percentile with linear interpolation between order statistics;
/// by value: sorts a copy. Used for service latency p50/p95 and telemetry
/// histogram snapshots. Edge cases are defined: an empty sample returns
/// quiet NaN, a single sample is every percentile of itself, and p outside
/// [0,100] (or NaN) throws std::invalid_argument naming the bad value.
double percentile(std::vector<double> xs, double p);
double geometric_mean(const std::vector<double>& xs);  // requires xs > 0
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);

/// Online accumulator (Welford) for streaming runs.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace asyncmg
