#include "util/text.hpp"

namespace asyncmg {

namespace {
bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}
}  // namespace

std::string_view trim(std::string_view s) {
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      const std::string_view piece = trim(s.substr(start, i - start));
      if (!piece.empty()) out.emplace_back(piece);
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '\n') {
      if (i == s.size() && start == i) break;  // no trailing empty line
      out.emplace_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

}  // namespace asyncmg
