#include "util/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace asyncmg {

Range static_chunk(std::size_t n, std::size_t parts, std::size_t part) {
  assert(parts > 0 && part < parts);
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  // The first `rem` chunks get base+1 elements.
  const std::size_t begin =
      part * base + std::min<std::size_t>(part, rem);
  const std::size_t len = base + (part < rem ? 1 : 0);
  return Range{begin, begin + len};
}

std::vector<Range> static_chunks(std::size_t n, std::size_t parts) {
  std::vector<Range> out(parts);
  for (std::size_t p = 0; p < parts; ++p) out[p] = static_chunk(n, parts, p);
  return out;
}

std::vector<std::size_t> assign_threads_to_grids(
    const std::vector<double>& work, std::size_t num_threads) {
  const std::size_t g = work.size();
  if (g == 0) return {};
  if (num_threads < g) {
    throw std::invalid_argument(
        "assign_threads_to_grids: need at least one thread per grid");
  }
  double total = 0.0;
  for (double w : work) {
    if (w < 0.0) {
      throw std::invalid_argument("assign_threads_to_grids: negative work");
    }
    total += w;
  }

  std::vector<std::size_t> counts(g, 1);
  std::size_t extra = num_threads - g;  // threads beyond the per-grid minimum
  if (extra == 0 || total <= 0.0) {
    // Degenerate: no extra threads, or all grids report zero work; spread
    // the surplus round-robin so the assignment is still deterministic.
    for (std::size_t i = 0; extra > 0; i = (i + 1) % g, --extra) ++counts[i];
    return counts;
  }

  // Largest-remainder apportionment of the extra threads.
  std::vector<double> share(g), frac(g);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < g; ++i) {
    share[i] = static_cast<double>(extra) * (work[i] / total);
    const auto floor_i = static_cast<std::size_t>(share[i]);
    counts[i] += floor_i;
    assigned += floor_i;
    frac[i] = share[i] - static_cast<double>(floor_i);
  }
  std::vector<std::size_t> order(g);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t j = 0; assigned < extra; ++j) {
    ++counts[order[j % g]];
    ++assigned;
  }
  return counts;
}

std::vector<Range> thread_ranges(const std::vector<std::size_t>& counts) {
  std::vector<Range> out(counts.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = Range{off, off + counts[i]};
    off += counts[i];
  }
  return out;
}

}  // namespace asyncmg
