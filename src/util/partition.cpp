#include "util/partition.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace asyncmg {

Range static_chunk(std::size_t n, std::size_t parts, std::size_t part) {
  assert(parts > 0 && part < parts);
  const std::size_t base = n / parts;
  const std::size_t rem = n % parts;
  // The first `rem` chunks get base+1 elements.
  const std::size_t begin =
      part * base + std::min<std::size_t>(part, rem);
  const std::size_t len = base + (part < rem ? 1 : 0);
  return Range{begin, begin + len};
}

std::vector<Range> static_chunks(std::size_t n, std::size_t parts) {
  std::vector<Range> out(parts);
  for (std::size_t p = 0; p < parts; ++p) out[p] = static_chunk(n, parts, p);
  return out;
}

Range nnz_balanced_chunk(std::span<const std::int32_t> prefix,
                         std::size_t parts, std::size_t part) {
  assert(!prefix.empty() && parts > 0 && part < parts);
  const std::size_t n = prefix.size() - 1;
  const auto total = static_cast<std::uint64_t>(prefix[n]);
  if (total == 0) return static_chunk(n, parts, part);  // uniform fallback
  // Chunk p starts at the first row whose cumulative weight reaches
  // p * total / parts; upper_bound keeps boundaries monotone, so chunks
  // are contiguous, disjoint, and cover [0, n) for any weight profile.
  const auto boundary = [&](std::size_t p) -> std::size_t {
    if (p == 0) return 0;
    if (p >= parts) return n;
    const auto target =
        static_cast<std::int32_t>(total * static_cast<std::uint64_t>(p) /
                                  static_cast<std::uint64_t>(parts));
    const auto it =
        std::upper_bound(prefix.begin(), prefix.end() - 1, target);
    return static_cast<std::size_t>(it - prefix.begin());
  };
  return Range{boundary(part), boundary(part + 1)};
}

std::vector<Range> nnz_balanced_chunks(std::span<const std::int32_t> prefix,
                                       std::size_t parts) {
  std::vector<Range> out(parts);
  for (std::size_t p = 0; p < parts; ++p) {
    out[p] = nnz_balanced_chunk(prefix, parts, p);
  }
  return out;
}

std::vector<std::size_t> assign_threads_to_grids(
    const std::vector<double>& work, std::size_t num_threads) {
  const std::size_t g = work.size();
  if (g == 0) return {};
  if (num_threads < g) {
    throw std::invalid_argument(
        "assign_threads_to_grids: need at least one thread per grid");
  }
  double total = 0.0;
  for (double w : work) {
    if (w < 0.0) {
      throw std::invalid_argument("assign_threads_to_grids: negative work");
    }
    total += w;
  }

  std::vector<std::size_t> counts(g, 1);
  std::size_t extra = num_threads - g;  // threads beyond the per-grid minimum
  if (extra == 0 || total <= 0.0) {
    // Degenerate: no extra threads, or all grids report zero work; spread
    // the surplus round-robin so the assignment is still deterministic.
    for (std::size_t i = 0; extra > 0; i = (i + 1) % g, --extra) ++counts[i];
    return counts;
  }

  // Largest-remainder apportionment of the extra threads.
  std::vector<double> share(g), frac(g);
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < g; ++i) {
    share[i] = static_cast<double>(extra) * (work[i] / total);
    const auto floor_i = static_cast<std::size_t>(share[i]);
    counts[i] += floor_i;
    assigned += floor_i;
    frac[i] = share[i] - static_cast<double>(floor_i);
  }
  std::vector<std::size_t> order(g);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t j = 0; assigned < extra; ++j) {
    ++counts[order[j % g]];
    ++assigned;
  }
  return counts;
}

std::vector<Range> thread_ranges(const std::vector<std::size_t>& counts) {
  std::vector<Range> out(counts.size());
  std::size_t off = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    out[i] = Range{off, off + counts[i]};
    off += counts[i];
  }
  return out;
}

}  // namespace asyncmg
