#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace asyncmg {

Cli::Cli(int argc, char** argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& key) const { return options_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& def) const {
  const auto it = options_.find(key);
  return it == options_.end() ? def : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t def) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return def;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double def) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return def;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool def) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return def;
  const std::string& v = it->second;
  if (v.empty() || v == "1" || v == "true" || v == "yes" || v == "on") {
    return true;
  }
  return false;
}

namespace {
template <typename T, typename Parse>
std::vector<T> parse_list(const std::string& text, Parse parse) {
  std::vector<T> out;
  std::stringstream ss(text);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) out.push_back(parse(tok));
  }
  return out;
}
}  // namespace

std::vector<std::int64_t> Cli::get_int_list(
    const std::string& key, const std::vector<std::int64_t>& def) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return def;
  return parse_list<std::int64_t>(it->second, [](const std::string& s) {
    return std::strtoll(s.c_str(), nullptr, 10);
  });
}

std::vector<double> Cli::get_double_list(const std::string& key,
                                         const std::vector<double>& def) const {
  const auto it = options_.find(key);
  if (it == options_.end() || it->second.empty()) return def;
  return parse_list<double>(it->second, [](const std::string& s) {
    return std::strtod(s.c_str(), nullptr);
  });
}

}  // namespace asyncmg
