#pragma once
// Minimal command-line option parser for the benchmark and example binaries.
//
// Accepts `--key value`, `--key=value`, and bare `--flag` forms. Benches use
// it to expose paper-scale parameters (mesh sizes, run counts, thread
// counts) without pulling in an external dependency.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace asyncmg {

class Cli {
 public:
  Cli(int argc, char** argv);

  bool has(const std::string& key) const;

  std::string get(const std::string& key, const std::string& def) const;
  std::int64_t get_int(const std::string& key, std::int64_t def) const;
  double get_double(const std::string& key, double def) const;
  bool get_bool(const std::string& key, bool def) const;

  /// Comma-separated integer list, e.g. "--sizes 16,24,32".
  std::vector<std::int64_t> get_int_list(
      const std::string& key, const std::vector<std::int64_t>& def) const;

  /// Comma-separated double list, e.g. "--alphas 0.1,0.3,0.5".
  std::vector<double> get_double_list(const std::string& key,
                                      const std::vector<double>& def) const;

  /// Positional arguments (everything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace asyncmg
