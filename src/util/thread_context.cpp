#include "util/thread_context.hpp"

namespace asyncmg {

namespace {
thread_local bool t_pool_worker = false;
}  // namespace

bool this_thread_is_pool_worker() { return t_pool_worker; }

void set_this_thread_pool_worker(bool worker) { t_pool_worker = worker; }

}  // namespace asyncmg
