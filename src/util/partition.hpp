#pragma once
// Index-range partitioning and work-balanced thread-to-grid assignment.
//
// Section IV of the paper distributes threads among multigrid levels so that
// the per-grid "work" (roughly the flops of one correction) is balanced,
// with every grid receiving at least one thread. `assign_threads_to_grids`
// implements that policy.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace asyncmg {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Static (OpenMP-style) split of [0, n) into `parts` contiguous chunks whose
/// sizes differ by at most one. Parts beyond n are empty.
Range static_chunk(std::size_t n, std::size_t parts, std::size_t part);

/// All chunks of `static_chunk` at once.
std::vector<Range> static_chunks(std::size_t n, std::size_t parts);

/// Work-balanced split of [0, prefix.size()-1) into `parts` contiguous
/// chunks: `prefix` is a monotone prefix-sum of per-item weights (a CSR
/// row_ptr array is exactly this, with nonzeros as the weight), and chunk p
/// covers the rows whose cumulative weight falls in the p-th equal slice of
/// the total. Solve-phase kernels use this so a thread owning a few dense
/// rows does no more flops than one owning many sparse rows. Chunks are
/// contiguous and cover every row; trailing chunks may be empty.
Range nnz_balanced_chunk(std::span<const std::int32_t> prefix,
                         std::size_t parts, std::size_t part);

/// All chunks of `nnz_balanced_chunk` at once.
std::vector<Range> nnz_balanced_chunks(std::span<const std::int32_t> prefix,
                                       std::size_t parts);

/// Thread counts per grid: distributes `num_threads` among `work.size()`
/// grids proportionally to `work` (largest-remainder rounding), guaranteeing
/// at least one thread per grid. Requires num_threads >= work.size() and
/// nonnegative work. Zero-work grids still get one thread.
std::vector<std::size_t> assign_threads_to_grids(
    const std::vector<double>& work, std::size_t num_threads);

/// Contiguous thread-id ranges implied by per-grid counts: grid g owns
/// threads [offsets[g], offsets[g] + counts[g]).
std::vector<Range> thread_ranges(const std::vector<std::size_t>& counts);

}  // namespace asyncmg
