#pragma once
// Index-range partitioning and work-balanced thread-to-grid assignment.
//
// Section IV of the paper distributes threads among multigrid levels so that
// the per-grid "work" (roughly the flops of one correction) is balanced,
// with every grid receiving at least one thread. `assign_threads_to_grids`
// implements that policy.

#include <cstddef>
#include <vector>

namespace asyncmg {

/// Half-open index range [begin, end).
struct Range {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  friend bool operator==(const Range&, const Range&) = default;
};

/// Static (OpenMP-style) split of [0, n) into `parts` contiguous chunks whose
/// sizes differ by at most one. Parts beyond n are empty.
Range static_chunk(std::size_t n, std::size_t parts, std::size_t part);

/// All chunks of `static_chunk` at once.
std::vector<Range> static_chunks(std::size_t n, std::size_t parts);

/// Thread counts per grid: distributes `num_threads` among `work.size()`
/// grids proportionally to `work` (largest-remainder rounding), guaranteeing
/// at least one thread per grid. Requires num_threads >= work.size() and
/// nonnegative work. Zero-work grids still get one thread.
std::vector<std::size_t> assign_threads_to_grids(
    const std::vector<double>& work, std::size_t num_threads);

/// Contiguous thread-id ranges implied by per-grid counts: grid g owns
/// threads [offsets[g], offsets[g] + counts[g]).
std::vector<Range> thread_ranges(const std::vector<std::size_t>& counts);

}  // namespace asyncmg
