#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

namespace asyncmg {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double v, int precision) {
  if (std::isnan(v)) return "+";  // divergence marker (paper uses a dagger)
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::fmt_int(long long v) { return std::to_string(v); }

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(width[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  line(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) line(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(header_);
  for (const auto& row : rows_) line(row);
  return os.str();
}

void Table::emit(const std::string& csv_path) const {
  std::cout << to_text();
  if (!csv_path.empty()) {
    std::ofstream f(csv_path);
    f << to_csv();
    std::cout << "[csv written to " << csv_path << "]\n";
  }
}

}  // namespace asyncmg
