#pragma once
// Small text helpers for the plain-text fixture formats (schedule scripts,
// golden traces): tokenization and whitespace trimming with no locale
// dependence.

#include <string>
#include <string_view>
#include <vector>

namespace asyncmg {

/// Strips leading/trailing whitespace (space, tab, CR, LF).
std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are dropped.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits into lines (handles both \n and \r\n); lines are trimmed but
/// empty lines are kept so line numbers stay meaningful.
std::vector<std::string> split_lines(std::string_view s);

/// True when `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

}  // namespace asyncmg
