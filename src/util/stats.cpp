#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace asyncmg {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double percentile(std::vector<double> xs, double p) {
  if (!(p >= 0.0 && p <= 100.0)) {  // also rejects NaN
    throw std::invalid_argument("percentile: p must be in [0, 100], got " +
                                std::to_string(p));
  }
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (xs.size() == 1) return xs.front();
  if (p <= 0.0) return min_of(xs);
  if (p >= 100.0) return max_of(xs);
  std::sort(xs.begin(), xs.end());
  const double pos = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geometric_mean: nonpositive");
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double min_of(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace asyncmg
