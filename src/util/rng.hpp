#pragma once
// Deterministic, seedable pseudo-random number generation.
//
// The asynchronous-model experiments (Section III of the paper) average over
// many seeded runs; reproducibility across platforms matters, so we use a
// self-contained xoshiro256** generator and hand-rolled distributions rather
// than the implementation-defined <random> distributions.

#include <cstdint>
#include <limits>

namespace asyncmg {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Advances `state` and returns the next value of the sequence.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** 1.0 (Blackman & Vigna). Small, fast, high-quality PRNG with
/// a 2^256-1 period; entirely deterministic given the seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection
  /// method (unbiased). `bound` must be nonzero.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// True with probability p (p outside [0,1] is clamped).
  bool bernoulli(double p);

  /// Split off an independent generator (seeded from this one's stream);
  /// used to give each run / grid / thread its own stream.
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace asyncmg
