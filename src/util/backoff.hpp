#pragma once
// Jittered exponential backoff for retry loops (socket reconnects, lock
// retries). Deterministic given the seed: delays are sampled from the
// library Rng (util/rng.hpp), not from wall-clock entropy, so reconnect
// storms in tests replay identically.
//
// Delay for attempt k (0-based) before jitter is
//
//   min(initial_ms * multiplier^k, max_ms)
//
// and jitter scales it by a uniform factor in [1 - jitter, 1 + jitter].
// The full-jitter lower bound keeps simultaneous retriers from
// synchronizing (the thundering-herd failure mode ad-hoc fixed sleeps
// have); the cap bounds the worst-case reconnect latency after long
// outages. reset() rewinds to attempt 0 after a success.

#include <cstdint>

#include "util/rng.hpp"

namespace asyncmg {

struct BackoffOptions {
  /// Delay of attempt 0, milliseconds.
  double initial_ms = 10.0;
  /// Growth factor per attempt (>= 1).
  double multiplier = 2.0;
  /// Cap applied before jitter, milliseconds.
  double max_ms = 5000.0;
  /// Jitter fraction in [0, 1): each delay is scaled by a uniform factor
  /// in [1 - jitter, 1 + jitter]. 0 disables jitter.
  double jitter = 0.2;
  std::uint64_t seed = 1;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

class Backoff {
 public:
  explicit Backoff(BackoffOptions opts = {});

  /// Delay to sleep before the next retry, milliseconds; advances the
  /// attempt counter.
  double next_ms();

  /// Jitter-free delay the next next_ms() call will scale (exposed for
  /// tests and for logging "retrying in ~N ms" without consuming jitter).
  double peek_base_ms() const;

  /// Attempts consumed since construction or the last reset().
  int attempts() const { return attempt_; }

  /// Rewinds to attempt 0 (call after a successful connect). The jitter
  /// stream is NOT rewound, so distinct outages see distinct jitter.
  void reset() { attempt_ = 0; }

  const BackoffOptions& options() const { return opts_; }

 private:
  BackoffOptions opts_;
  Rng rng_;
  int attempt_ = 0;
};

}  // namespace asyncmg
