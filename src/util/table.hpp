#pragma once
// Aligned text tables + CSV emission for the benchmark harnesses. Every
// bench prints the same rows/series the paper reports and can optionally
// dump CSV for plotting.

#include <string>
#include <vector>

namespace asyncmg {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` significant digits; NaN
  /// renders as the paper's divergence marker "+" (dagger stand-in).
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);

  /// Render with aligned columns.
  std::string to_text() const;

  /// Render as CSV (header + rows).
  std::string to_csv() const;

  /// Print to stdout, and when `csv_path` is nonempty also write the CSV.
  void emit(const std::string& csv_path = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace asyncmg
