#include "util/backoff.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace asyncmg {

void BackoffOptions::validate() const {
  if (!(initial_ms > 0.0) || !std::isfinite(initial_ms)) {
    throw std::invalid_argument("BackoffOptions: initial_ms must be > 0");
  }
  if (!(multiplier >= 1.0) || !std::isfinite(multiplier)) {
    throw std::invalid_argument("BackoffOptions: multiplier must be >= 1");
  }
  if (!(max_ms >= initial_ms) || !std::isfinite(max_ms)) {
    throw std::invalid_argument(
        "BackoffOptions: max_ms must be >= initial_ms");
  }
  if (!(jitter >= 0.0) || jitter >= 1.0) {
    throw std::invalid_argument("BackoffOptions: jitter must be in [0, 1)");
  }
}

Backoff::Backoff(BackoffOptions opts) : opts_(opts), rng_(opts.seed) {
  opts_.validate();
}

double Backoff::peek_base_ms() const {
  // pow overflows to inf for large attempt counts; min() with the cap keeps
  // the result finite either way.
  const double raw =
      opts_.initial_ms * std::pow(opts_.multiplier, attempt_);
  return std::min(raw, opts_.max_ms);
}

double Backoff::next_ms() {
  const double base = peek_base_ms();
  ++attempt_;
  if (opts_.jitter == 0.0) return base;
  return base * rng_.uniform(1.0 - opts_.jitter, 1.0 + opts_.jitter);
}

}  // namespace asyncmg
