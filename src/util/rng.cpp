#include "util/rng.hpp"

namespace asyncmg {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed; xoshiro must not be seeded with all-zero state, which
  // splitmix64 cannot produce for four consecutive outputs.
  for (auto& s : s_) s = splitmix64(seed);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

Rng Rng::split() {
  std::uint64_t seed = next_u64();
  return Rng(seed);
}

}  // namespace asyncmg
