#include "perfmodel/perfmodel.hpp"

#include <algorithm>
#include <cmath>

#include "util/partition.hpp"
#include "util/rng.hpp"

namespace asyncmg {

namespace {

double barrier_cost(const MachineModel& m, std::size_t participants) {
  if (participants <= 1) return 0.0;
  return m.barrier_alpha +
         m.barrier_beta * std::log2(static_cast<double>(participants));
}

/// Simulates one barriered phase of `flops` total work split evenly over
/// the threads whose persistent speeds are given; returns the slowest
/// participant's time (everyone waits) and accumulates the wait imbalance.
double phase_time(const MachineModel& m, double flops,
                  const std::vector<double>& speeds, Rng& rng,
                  double* wait_accum) {
  const std::size_t p = speeds.size();
  if (p == 0) return 0.0;
  const double chunk = flops / static_cast<double>(p);
  double worst = 0.0, total = 0.0;
  for (double s : speeds) {
    const double jitter = 1.0 - m.jitter * rng.next_double();
    const double t = chunk / (m.flops_per_second * s * jitter);
    worst = std::max(worst, t);
    total += t;
  }
  if (wait_accum) *wait_accum += worst - total / static_cast<double>(p);
  return worst;
}

std::vector<double> draw_speeds(const MachineModel& m, std::size_t threads,
                                Rng& rng) {
  std::vector<double> s(threads);
  for (double& v : s) v = 1.0 - m.heterogeneity * rng.next_double();
  return s;
}

/// Flops of the phases one grid-k correction executes, in order
/// (restriction chain, level solve, prolongation chain, fine-grid write).
std::vector<double> correction_phases(const AdditiveCorrector& corr,
                                      std::size_t k) {
  const MgSetup& s = corr.setup();
  const AdditiveOptions& ao = corr.options();
  const std::size_t coarsest = s.num_levels() - 1;
  const bool multadd = ao.kind == AdditiveKind::kMultadd;
  std::vector<double> phases;
  for (std::size_t j = 0; j < k; ++j) {
    phases.push_back(2.0 * (multadd ? s.pbar(j).nnz() : s.p(j).nnz()));
  }
  if (k == coarsest) {
    const double nc = static_cast<double>(s.a(k).rows());
    phases.push_back(2.0 * nc * nc);  // triangular solves of the LU factors
  } else if (ao.kind == AdditiveKind::kAfacx) {
    phases.push_back(2.0 * s.p(k).nnz());                      // restrict r
    phases.push_back(2.0 * s.a(k + 1).nnz() * ao.afacx_s2);    // smooth k+1
    phases.push_back(2.0 * s.p(k).nnz());                      // P u
    phases.push_back(2.0 * s.a(k).nnz());                      // A_k P u
    phases.push_back(2.0 * s.a(k).nnz() * ao.afacx_s1);        // smooth k
  } else {
    phases.push_back(2.0 * s.a(k).nnz());                      // Lambda_k
  }
  for (std::size_t j = k; j-- > 0;) {
    phases.push_back(2.0 * (multadd ? s.pbar(j).nnz() : s.p(j).nnz()));
  }
  phases.push_back(static_cast<double>(s.a(0).rows()));        // x += e
  return phases;
}

}  // namespace

PerfPrediction predict_mult(const MgSetup& setup, std::size_t threads,
                            int t_max, const MachineModel& m) {
  Rng rng(m.seed);
  const std::vector<double> speeds = draw_speeds(m, threads, rng);
  const std::size_t nl = setup.num_levels();
  const std::size_t coarsest = nl - 1;

  // Phase list of one V(1,1)-cycle; every phase ends in a global barrier.
  std::vector<double> phases;
  phases.push_back(2.0 * setup.a(0).nnz());  // fine residual
  for (std::size_t k = 0; k < coarsest; ++k) {
    phases.push_back(2.0 * setup.a(k).nnz());  // pre-smooth
    phases.push_back(2.0 * setup.a(k).nnz());  // r - A e
    phases.push_back(2.0 * setup.p(k).nnz());  // restrict
  }
  const double nc = static_cast<double>(setup.a(coarsest).rows());
  for (std::size_t k = coarsest; k-- > 0;) {
    phases.push_back(2.0 * setup.p(k).nnz());  // prolong + add
    phases.push_back(2.0 * setup.a(k).nnz());  // r - A e
    phases.push_back(2.0 * setup.a(k).nnz());  // post-smooth
  }
  phases.push_back(static_cast<double>(setup.a(0).rows()));  // x += e

  PerfPrediction out;
  double wait = 0.0;
  const double bar = barrier_cost(m, threads);
  for (int t = 0; t < t_max; ++t) {
    for (double f : phases) {
      out.seconds += phase_time(m, f, speeds, rng, &wait) + bar;
      wait += bar;
    }
    // Coarse solve on one thread, everyone else waits at the barrier.
    const double solve = 2.0 * nc * nc / (m.flops_per_second * speeds[0]);
    out.seconds += solve + bar;
    wait += solve * (1.0 - 1.0 / static_cast<double>(threads)) + bar;
  }
  out.barrier_share = out.seconds > 0.0 ? wait / out.seconds : 0.0;
  return out;
}

namespace {

struct Teams {
  std::vector<std::vector<double>> speeds;  // thread speeds, per grid
  /// Executor id of each grid: grids sharing an executor run back to back
  /// on the same thread(s), so their times add instead of overlapping.
  std::vector<std::size_t> executor;
  std::size_t num_executors = 0;
};

Teams split_teams(const AdditiveCorrector& corr, std::size_t threads,
                  const std::vector<double>& all_speeds) {
  const std::size_t grids = corr.num_grids();
  Teams t;
  if (threads >= grids) {
    const auto counts = assign_threads_to_grids(corr.work(), threads);
    const auto ranges = thread_ranges(counts);
    for (std::size_t k = 0; k < grids; ++k) {
      t.speeds.emplace_back(all_speeds.begin() + static_cast<std::ptrdiff_t>(ranges[k].begin),
                            all_speeds.begin() + static_cast<std::ptrdiff_t>(ranges[k].end));
      t.executor.push_back(k);
    }
    t.num_executors = grids;
  } else {
    // Single-thread teams own contiguous grid ranges; grids of the same
    // owner execute sequentially.
    for (std::size_t tid = 0; tid < threads; ++tid) {
      const Range gr = static_chunk(grids, threads, tid);
      for (std::size_t k = gr.begin; k < gr.end; ++k) {
        t.speeds.push_back({all_speeds[tid]});
        t.executor.push_back(tid);
      }
    }
    t.num_executors = threads;
  }
  return t;
}

}  // namespace

PerfPrediction predict_sync_additive(const AdditiveCorrector& corr,
                                     std::size_t threads, int t_max,
                                     const MachineModel& m) {
  Rng rng(m.seed);
  const std::vector<double> all_speeds = draw_speeds(m, threads, rng);
  const Teams teams = split_teams(corr, threads, all_speeds);
  const std::size_t grids = corr.num_grids();
  const double global_bar = barrier_cost(m, threads);
  const MgSetup& s = corr.setup();

  PerfPrediction out;
  double wait = 0.0;
  for (int t = 0; t < t_max; ++t) {
    // Global residual phase over all threads.
    out.seconds +=
        phase_time(m, 2.0 * s.a(0).nnz(), all_speeds, rng, &wait) + global_bar;
    // Teams correct concurrently (grids of the same executor run back to
    // back); the cycle waits for the slowest executor.
    std::vector<double> executor_time(teams.num_executors, 0.0);
    for (std::size_t k = 0; k < grids; ++k) {
      const auto& sp = teams.speeds[k];
      const double team_bar = barrier_cost(m, sp.size());
      double team_time = m.lock_cost;  // one write of x per correction
      for (double f : correction_phases(corr, k)) {
        team_time += phase_time(m, f, sp, rng, nullptr) + team_bar;
      }
      executor_time[teams.executor[k]] += team_time;
    }
    double slowest = 0.0, sum = 0.0;
    for (double et : executor_time) {
      slowest = std::max(slowest, et);
      sum += et;
    }
    out.seconds += slowest + global_bar;
    wait += slowest - sum / static_cast<double>(teams.num_executors) +
            global_bar;
  }
  out.barrier_share = out.seconds > 0.0 ? wait / out.seconds : 0.0;
  return out;
}

PerfPrediction predict_async_additive(const AdditiveCorrector& corr,
                                      std::size_t threads, int t_max,
                                      const MachineModel& m) {
  Rng rng(m.seed);
  const std::vector<double> all_speeds = draw_speeds(m, threads, rng);
  const Teams teams = split_teams(corr, threads, all_speeds);
  const std::size_t grids = corr.num_grids();
  const MgSetup& s = corr.setup();
  const double n0 = static_cast<double>(s.a(0).rows());

  // Each team runs t_max corrections privately (local-res: it also
  // recomputes the fine residual itself); grids sharing an executor run
  // sequentially, and the makespan is the slowest executor's total. No
  // global barriers anywhere.
  PerfPrediction out;
  std::vector<double> executor_time(teams.num_executors, 0.0);
  for (std::size_t k = 0; k < grids; ++k) {
    const auto& sp = teams.speeds[k];
    const double team_bar = barrier_cost(m, sp.size());
    double team_total = 0.0;
    for (int t = 0; t < t_max; ++t) {
      double ct = m.lock_cost;  // write x
      for (double f : correction_phases(corr, k)) {
        ct += phase_time(m, f, sp, rng, nullptr) + team_bar;
      }
      // local-res refresh: read x, recompute r^k = b - A x^k.
      ct += phase_time(m, n0, sp, rng, nullptr) + team_bar + m.lock_cost;
      ct += phase_time(m, 2.0 * s.a(0).nnz(), sp, rng, nullptr) + team_bar;
      team_total += ct;
    }
    executor_time[teams.executor[k]] += team_total;
  }
  double makespan = 0.0, sum = 0.0;
  for (double et : executor_time) {
    makespan = std::max(makespan, et);
    sum += et;
  }
  out.seconds = makespan;
  out.barrier_share =
      makespan > 0.0
          ? (makespan - sum / static_cast<double>(teams.num_executors)) /
                makespan
          : 0.0;
  return out;
}

}  // namespace asyncmg
