#pragma once
// Deterministic performance model replaying the execution schedules of
// sync Mult, sync Multadd, and async Multadd on a parameterized machine.
//
// The paper's Figure 6 and Table I timing columns were measured on a
// 68-core / 272-thread Knights Landing; this container has one core, so
// measured wall-clock cannot reproduce the thread-scaling *shape*. This
// module substitutes a discrete cost model (documented in DESIGN.md):
//
//   * each thread retires `flops_per_second` useful flops;
//   * thread heterogeneity: thread i's speed is drawn from
//     U[1 - heterogeneity, 1] (deterministic per seed) and, per barrier
//     episode, jittered by U[1 - jitter, 1] -- the "some processes take
//     longer than others" premise of asynchronous methods;
//   * a barrier over m threads costs barrier_alpha + barrier_beta*log2(m)
//     seconds on top of waiting for the slowest participant;
//   * a lock acquisition costs lock_cost seconds and serializes with other
//     acquisitions of the same lock.
//
// The schedules mirror the real implementations: Mult executes every phase
// on all threads with a global barrier between phases; sync Multadd runs
// per-grid teams and two global barriers per cycle; async Multadd runs
// per-grid teams that never synchronize globally, so its makespan is the
// slowest team's private makespan.

#include <cstdint>
#include <vector>

#include "multigrid/additive.hpp"
#include "multigrid/setup.hpp"

namespace asyncmg {

struct MachineModel {
  double flops_per_second = 2.0e9;  // per-thread useful throughput
  double barrier_alpha = 2.0e-6;    // fixed barrier cost (s)
  double barrier_beta = 4.0e-7;     // per-log2(participant) barrier cost (s)
  double lock_cost = 1.0e-6;        // mutex acquire+release (s)
  double heterogeneity = 0.3;       // persistent per-thread slowdown spread
  double jitter = 0.2;              // per-episode random slowdown spread
  std::uint64_t seed = 1234;
};

struct PerfPrediction {
  double seconds = 0.0;       // predicted makespan of t_max cycles
  double barrier_share = 0.0; // fraction of makespan spent in barrier waits
};

/// Predicted makespan of `t_max` multiplicative V(1,1)-cycles on `threads`
/// threads (all phases global).
PerfPrediction predict_mult(const MgSetup& setup, std::size_t threads,
                            int t_max, const MachineModel& m);

/// Predicted makespan of `t_max` synchronous additive cycles (per-grid
/// teams + 2 global barriers per cycle).
PerfPrediction predict_sync_additive(const AdditiveCorrector& corr,
                                     std::size_t threads, int t_max,
                                     const MachineModel& m);

/// Predicted makespan of asynchronous additive multigrid where every grid
/// performs `t_max` corrections: the slowest team's private time (local-res;
/// no global synchronization).
PerfPrediction predict_async_additive(const AdditiveCorrector& corr,
                                      std::size_t threads, int t_max,
                                      const MachineModel& m);

}  // namespace asyncmg
