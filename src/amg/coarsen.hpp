#pragma once
// Coarse/fine splitting algorithms: classical Ruge-Stuben first pass, PMIS,
// and HMIS (RS first pass feeding PMIS), plus a distance-2 "aggressive"
// second stage. These mirror the BoomerAMG options the paper selects
// ("HMIS coarsening with one/two aggressive levels").
//
// Two implementations coexist (DESIGN.md section 13):
//
//   serial oracle   the original sequential algorithms, kept verbatim:
//                   heap-driven RS first pass and the round-based PMIS with
//                   rng-sequence tie-break weights. Selected by
//                   AmgOptions::coarsen_mode = CoarsenMode::kSerialOracle.
//
//   row-parallel    Luby-style rounds over the strength graph with
//                   per-round frontier sets, hash-based deterministic
//                   tie-break weights, and owner-computes writes only.
//                   The C/F splitting is bit-identical for every thread
//                   count, and equals coarsen_parallel_oracle (a naive
//                   serial implementation of the same rounds) exactly.
//                   For PMIS with kRngSequence weights it is additionally
//                   bit-identical to the verbatim serial coarsen_pmis.

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace asyncmg {

enum class PointType : std::int8_t { kFine = 0, kCoarse = 1 };
using Splitting = std::vector<PointType>;

enum class CoarsenAlgo { kRS, kPMIS, kHMIS };

/// How Hierarchy::build runs the C/F splitting (see header comment).
enum class CoarsenMode { kSerialOracle, kParallel };

/// Source of the random tie-break weights of the parallel independent-set
/// rounds. kHash derives weight[i] from splitmix64(seed, i) -- computable
/// row-parallel with no serial dependency. kRngSequence draws them from one
/// xoshiro stream in row order (a cheap O(n) serial pass), reproducing the
/// exact weights of the verbatim serial PMIS.
enum class CoarsenWeights { kHash, kRngSequence };

/// Configuration of one parallel C/F splitting run.
struct CoarsenParams {
  CoarsenAlgo algo = CoarsenAlgo::kHMIS;
  CoarsenWeights weights = CoarsenWeights::kHash;
  std::uint64_t seed = 42;
  /// Setup-kernel thread count; 0 = OpenMP default. Every value yields a
  /// bit-identical splitting.
  int num_threads = 0;
};

// --------------------------------------------------------------------------
// Serial oracle algorithms (original code, kept verbatim).
// --------------------------------------------------------------------------

/// Classical Ruge-Stuben first pass. Measures are the number of points each
/// point strongly influences; deterministic given the matrix.
Splitting coarsen_rs_first_pass(const CsrMatrix& s);

/// PMIS: parallel maximal independent set with randomized tie-breaking.
/// `init` optionally seeds points as already-coarse (used by HMIS); pass an
/// empty vector otherwise.
Splitting coarsen_pmis(const CsrMatrix& s, Rng& rng,
                       const Splitting& init = {});

/// PMIS rounds with an explicit per-row tie-break weight array (the same
/// serial body coarsen_pmis runs after drawing its weights). The parallel
/// path is verified bitwise against this with matching weights.
Splitting coarsen_pmis_weighted(const CsrMatrix& s,
                                const std::vector<double>& weights,
                                const Splitting& init = {});

/// HMIS: RS first pass, whose C points seed PMIS.
Splitting coarsen_hmis(const CsrMatrix& s, Rng& rng);

/// Dispatch on the algorithm enum (serial oracle path).
Splitting coarsen(CoarsenAlgo algo, const CsrMatrix& s, Rng& rng);

/// Aggressive coarsening stage: re-coarsens the C points of `first` using
/// distance-2 strength, demoting most of them to F. Returns the combined
/// splitting (C set is a subset of first's C set). `num_threads` only
/// parallelizes the distance-2 strength pattern; the splitting itself is
/// serial and identical for every thread count.
Splitting coarsen_aggressive(CoarsenAlgo algo, const CsrMatrix& s,
                             const Splitting& first, Rng& rng,
                             int num_threads = 0);

// --------------------------------------------------------------------------
// Row-parallel algorithms.
// --------------------------------------------------------------------------

/// Per-row random tie-break weights in [0, 1). kHash is row-parallel;
/// kRngSequence reproduces the serial PMIS draws (infl + next_double order).
std::vector<double> coarsen_tie_weights(CoarsenWeights mode, Index n,
                                        std::uint64_t seed,
                                        int num_threads = 0);

/// Per-level salt Hierarchy::build applies to AmgOptions::seed before each
/// parallel splitting, so every level draws an independent deterministic
/// weight stream. Public so harnesses mirroring the build loop phase by
/// phase (bench/setup_scaling) reproduce the exact same splittings.
std::uint64_t coarsen_level_seed(std::uint64_t seed, Index level);

/// Round-based Ruge-Stuben first pass: per round, every undecided point
/// that is a strict (measure, index) local maximum over its undecided
/// symmetrized strong neighborhood becomes C; points strongly depending on
/// a new C point become F; integer measures are then updated in gather form
/// (m = max(0, m - #new-C influences) + #new-F dependents). Deterministic
/// for every thread count. Output differs from the sequential heap greedy
/// (coarsen_rs_first_pass) but satisfies the same first-pass contract:
/// every non-isolated F point strongly depends on a C point.
Splitting coarsen_rs_rounds(const CsrMatrix& s, int num_threads = 0);

/// Full parallel C/F splitting: kPMIS runs weighted PMIS rounds, kRS the
/// round-based first pass, kHMIS the round-based first pass feeding PMIS.
/// Bit-identical across thread counts and to coarsen_parallel_oracle.
Splitting coarsen_parallel(const CsrMatrix& s, const CoarsenParams& p);

/// Naive serial reference of coarsen_parallel: same round semantics written
/// as plain full-sweep loops (no frontier, no OpenMP). The bitwise oracle
/// of the parallel implementation in tests and the bench gate.
Splitting coarsen_parallel_oracle(const CsrMatrix& s, const CoarsenParams& p);

/// Aggressive (distance-2) second stage on the parallel path: deterministic
/// two-pass parallel subgraph extraction over the first-stage C points, then
/// coarsen_parallel on the subgraph with a salted seed.
Splitting coarsen_aggressive_parallel(const CsrMatrix& s,
                                      const Splitting& first,
                                      const CoarsenParams& p);

/// Number of coarse points.
Index count_coarse(const Splitting& split);

/// Coarse-point numbering: result[i] = index of i among C points, or -1.
std::vector<Index> coarse_numbering(const Splitting& split);

}  // namespace asyncmg
