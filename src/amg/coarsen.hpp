#pragma once
// Coarse/fine splitting algorithms: classical Ruge-Stuben first pass, PMIS,
// and HMIS (RS first pass feeding PMIS), plus a distance-2 "aggressive"
// second stage. These mirror the BoomerAMG options the paper selects
// ("HMIS coarsening with one/two aggressive levels").

#include <cstdint>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace asyncmg {

enum class PointType : std::int8_t { kFine = 0, kCoarse = 1 };
using Splitting = std::vector<PointType>;

enum class CoarsenAlgo { kRS, kPMIS, kHMIS };

/// Classical Ruge-Stuben first pass. Measures are the number of points each
/// point strongly influences; deterministic given the matrix.
Splitting coarsen_rs_first_pass(const CsrMatrix& s);

/// PMIS: parallel maximal independent set with randomized tie-breaking.
/// `init` optionally seeds points as already-coarse (used by HMIS); pass an
/// empty vector otherwise.
Splitting coarsen_pmis(const CsrMatrix& s, Rng& rng,
                       const Splitting& init = {});

/// HMIS: RS first pass, whose C points seed PMIS.
Splitting coarsen_hmis(const CsrMatrix& s, Rng& rng);

/// Dispatch on the algorithm enum.
Splitting coarsen(CoarsenAlgo algo, const CsrMatrix& s, Rng& rng);

/// Aggressive coarsening stage: re-coarsens the C points of `first` using
/// distance-2 strength, demoting most of them to F. Returns the combined
/// splitting (C set is a subset of first's C set). `num_threads` only
/// parallelizes the distance-2 strength pattern; the splitting itself is
/// serial and identical for every thread count.
Splitting coarsen_aggressive(CoarsenAlgo algo, const CsrMatrix& s,
                             const Splitting& first, Rng& rng,
                             int num_threads = 0);

/// Number of coarse points.
Index count_coarse(const Splitting& split);

/// Coarse-point numbering: result[i] = index of i among C points, or -1.
std::vector<Index> coarse_numbering(const Splitting& split);

}  // namespace asyncmg
