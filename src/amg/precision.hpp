#pragma once
// Per-level precision policy for the hierarchy (DESIGN.md section 12).
//
// The solve phase is bandwidth-bound, and after the SELL/fused-kernel work
// the remaining factor-of-two in operator bytes is scalar width. Following
// Murray & Weinzierl's dynamic-precision multigrid argument, coarse levels —
// where algebraic error dominates discretization accuracy anyway — can store
// their operators and interpolants in fp32 while every iteration vector,
// accumulator, and the outer residual/correction loop stays fp64. The fp64
// defect-correction wrapper on the fine level absorbs the rounded coarse
// corrections, so convergence degrades by bounded error norms, not bitwise.
//
// Discipline: the all-fp64 policy (the default) is the bitwise correctness
// oracle — it must produce results identical to the pre-policy code for
// every thread count. Reduced-precision policies are accepted only by
// error-norm/convergence-rate bounds against that oracle.

#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace asyncmg {

struct PrecisionPolicy {
  enum class Mode {
    /// Everything fp64 (the default and the bitwise oracle).
    kF64 = 0,
    /// Levels >= first_low_level store operators and interpolants in fp32.
    kF32Coarse = 1,
    /// Demote by size: levels whose operator nnz is at most
    /// auto_nnz_fraction of the fine level's nnz go fp32. Coarse operators
    /// shrink geometrically, so this demotes everything below the first
    /// level or two without needing a depth knob.
    kAuto = 2,
  };

  Mode mode = Mode::kF64;

  /// First fp32 level under kF32Coarse. Clamped to >= 1: level 0 always
  /// stays fp64 — the defect-correction residual is computed there and the
  /// async runtime's fine-level refresh assumes full precision.
  Index first_low_level = 1;

  /// kAuto demotion threshold: level k (k >= 1) is demoted when
  /// nnz(A_k) <= auto_nnz_fraction * nnz(A_0).
  double auto_nnz_fraction = 0.5;

  /// Explicit per-level overrides; entry k (when present) wins over the
  /// mode for level k. Level 0 still cannot be demoted.
  std::vector<Precision> per_level;

  /// Stored width for level `level` of `num_levels` under this policy.
  /// `level_nnz`/`fine_nnz` feed the kAuto threshold.
  Precision level_precision(std::size_t level, std::size_t num_levels,
                            std::size_t level_nnz,
                            std::size_t fine_nnz) const;
};

/// Stable mode name ("f64" / "f32coarse" / "auto") for summaries and JSON.
const char* precision_mode_name(PrecisionPolicy::Mode m);

/// Policy picked up by AmgOptions{}: kF64 unless the ASYNCMG_PRECISION
/// environment variable says otherwise ("f64", "f32coarse", "auto";
/// anything else is ignored). This is how CI forces the whole ctest suite
/// through the fp32-coarse path without touching call sites. Tests that
/// need the bitwise oracle pin `PrecisionPolicy{}` explicitly, which
/// bypasses the environment.
PrecisionPolicy default_precision_policy();

}  // namespace asyncmg
