#include "amg/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/io.hpp"

namespace asyncmg {

namespace {
constexpr const char* kMagic = "asyncmg-hierarchy-v1";
}

void save_hierarchy(std::ostream& out, const Hierarchy& h) {
  out << kMagic << '\n' << h.num_levels() << '\n';
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    const AmgLevel& lvl = h.level(k);
    out << "level " << k << '\n';
    out << "matrix\n";
    write_matrix_market(out, lvl.a);
    const bool coarsest = k + 1 == h.num_levels();
    out << "interp " << (coarsest ? 0 : 1) << '\n';
    if (!coarsest) write_matrix_market(out, lvl.p);
    out << "split " << lvl.split.size() << '\n';
    for (std::size_t i = 0; i < lvl.split.size(); ++i) {
      out << (lvl.split[i] == PointType::kCoarse ? 1 : 0)
          << ((i + 1) % 64 == 0 ? '\n' : ' ');
    }
    out << '\n';
  }
}

void save_hierarchy_file(const std::string& path, const Hierarchy& h) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_hierarchy: cannot open " + path);
  save_hierarchy(f, h);
}

namespace {

std::string expect_token(std::istream& in, const std::string& what) {
  std::string tok;
  if (!(in >> tok)) {
    throw std::runtime_error("load_hierarchy: truncated, expected " + what);
  }
  return tok;
}

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error("load_hierarchy: " + msg);
}

}  // namespace

Hierarchy load_hierarchy(std::istream& in) {
  require(expect_token(in, "magic") == kMagic, "bad magic");
  std::size_t nl = 0;
  in >> nl;
  require(in.good() && nl > 0 && nl < 1000, "bad level count");

  std::vector<AmgLevel> levels;
  levels.reserve(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    require(expect_token(in, "level") == "level", "expected 'level'");
    std::size_t idx = 0;
    in >> idx;
    require(idx == k, "level index mismatch");
    require(expect_token(in, "matrix") == "matrix", "expected 'matrix'");
    in.ignore();  // consume newline before the Matrix Market banner
    AmgLevel lvl;
    lvl.a = read_matrix_market(in);
    require(expect_token(in, "interp") == "interp", "expected 'interp'");
    int has_p = 0;
    in >> has_p;
    if (has_p) {
      in.ignore();
      lvl.p = read_matrix_market(in);
    }
    require(expect_token(in, "split") == "split", "expected 'split'");
    std::size_t ns = 0;
    in >> ns;
    require(in.good() && ns <= static_cast<std::size_t>(lvl.a.rows()),
            "bad split size");
    lvl.split.resize(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      int v = 0;
      in >> v;
      require(in.good() && (v == 0 || v == 1), "bad split entry");
      lvl.split[i] = v ? PointType::kCoarse : PointType::kFine;
    }
    levels.push_back(std::move(lvl));
  }
  return Hierarchy::from_levels(std::move(levels));
}

Hierarchy load_hierarchy_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_hierarchy: cannot open " + path);
  return load_hierarchy(f);
}

std::string save_hierarchy_string(const Hierarchy& h) {
  std::ostringstream out;
  save_hierarchy(out, h);
  return std::move(out).str();
}

Hierarchy load_hierarchy_string(const std::string& bytes) {
  std::istringstream in(bytes);
  return load_hierarchy(in);
}

}  // namespace asyncmg
