#include "amg/serialize.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "sparse/io.hpp"

namespace asyncmg {

namespace {
// v2 adds a per-level "precision <a> <p>" line carrying the stored scalar
// widths; v1 files (all-fp64) are still accepted by load_hierarchy.
constexpr const char* kMagic = "asyncmg-hierarchy-v2";
constexpr const char* kMagicV1 = "asyncmg-hierarchy-v1";
}

void save_hierarchy(std::ostream& out, const Hierarchy& h) {
  out << kMagic << '\n' << h.num_levels() << '\n';
  for (std::size_t k = 0; k < h.num_levels(); ++k) {
    const AmgLevel& lvl = h.level(k);
    const bool coarsest = k + 1 == h.num_levels();
    out << "level " << k << '\n';
    // Values are written as exactly-widened doubles (Matrix Market text);
    // the precision tags restore the stored width on load, so fp32 levels
    // round-trip bit for bit.
    out << "precision " << precision_name(lvl.a.precision()) << ' '
        << (coarsest ? "-" : precision_name(lvl.p.precision())) << '\n';
    out << "matrix\n";
    write_matrix_market(out, lvl.a);
    out << "interp " << (coarsest ? 0 : 1) << '\n';
    if (!coarsest) write_matrix_market(out, lvl.p);
    out << "split " << lvl.split.size() << '\n';
    for (std::size_t i = 0; i < lvl.split.size(); ++i) {
      out << (lvl.split[i] == PointType::kCoarse ? 1 : 0)
          << ((i + 1) % 64 == 0 ? '\n' : ' ');
    }
    out << '\n';
  }
}

void save_hierarchy_file(const std::string& path, const Hierarchy& h) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("save_hierarchy: cannot open " + path);
  save_hierarchy(f, h);
}

namespace {

std::string expect_token(std::istream& in, const std::string& what) {
  std::string tok;
  if (!(in >> tok)) {
    throw std::runtime_error("load_hierarchy: truncated, expected " + what);
  }
  return tok;
}

void require(bool cond, const std::string& msg) {
  if (!cond) throw std::runtime_error("load_hierarchy: " + msg);
}

Precision parse_precision(const std::string& tok) {
  if (tok == "f32") return Precision::kF32;
  require(tok == "f64", "bad precision tag '" + tok + "'");
  return Precision::kF64;
}

}  // namespace

Hierarchy load_hierarchy(std::istream& in) {
  const std::string magic = expect_token(in, "magic");
  const bool v1 = magic == kMagicV1;
  require(v1 || magic == kMagic, "bad magic");
  std::size_t nl = 0;
  in >> nl;
  require(in.good() && nl > 0 && nl < 1000, "bad level count");

  std::vector<AmgLevel> levels;
  levels.reserve(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    require(expect_token(in, "level") == "level", "expected 'level'");
    std::size_t idx = 0;
    in >> idx;
    require(idx == k, "level index mismatch");
    Precision a_prec = Precision::kF64;
    Precision p_prec = Precision::kF64;
    if (!v1) {
      require(expect_token(in, "precision") == "precision",
              "expected 'precision'");
      a_prec = parse_precision(expect_token(in, "matrix precision"));
      const std::string ptok = expect_token(in, "interp precision");
      if (ptok != "-") p_prec = parse_precision(ptok);
    }
    require(expect_token(in, "matrix") == "matrix", "expected 'matrix'");
    in.ignore();  // consume newline before the Matrix Market banner
    AmgLevel lvl;
    lvl.a = read_matrix_market(in);
    lvl.a.convert_precision(a_prec);
    require(expect_token(in, "interp") == "interp", "expected 'interp'");
    int has_p = 0;
    in >> has_p;
    if (has_p) {
      in.ignore();
      lvl.p = read_matrix_market(in);
      lvl.p.convert_precision(p_prec);
    }
    require(expect_token(in, "split") == "split", "expected 'split'");
    std::size_t ns = 0;
    in >> ns;
    require(in.good() && ns <= static_cast<std::size_t>(lvl.a.rows()),
            "bad split size");
    lvl.split.resize(ns);
    for (std::size_t i = 0; i < ns; ++i) {
      int v = 0;
      in >> v;
      require(in.good() && (v == 0 || v == 1), "bad split entry");
      lvl.split[i] = v ? PointType::kCoarse : PointType::kFine;
    }
    levels.push_back(std::move(lvl));
  }
  return Hierarchy::from_levels(std::move(levels));
}

Hierarchy load_hierarchy_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("load_hierarchy: cannot open " + path);
  return load_hierarchy(f);
}

std::string save_hierarchy_string(const Hierarchy& h) {
  std::ostringstream out;
  save_hierarchy(out, h);
  return std::move(out).str();
}

Hierarchy load_hierarchy_string(const std::string& bytes) {
  std::istringstream in(bytes);
  return load_hierarchy(in);
}

}  // namespace asyncmg
