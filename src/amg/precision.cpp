#include "amg/precision.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace asyncmg {

Precision PrecisionPolicy::level_precision(std::size_t level,
                                           std::size_t num_levels,
                                           std::size_t level_nnz,
                                           std::size_t fine_nnz) const {
  (void)num_levels;
  if (level == 0) return Precision::kF64;
  if (level < per_level.size()) return per_level[level];
  switch (mode) {
    case Mode::kF64:
      return Precision::kF64;
    case Mode::kF32Coarse: {
      const auto first =
          static_cast<std::size_t>(std::max<Index>(1, first_low_level));
      return level >= first ? Precision::kF32 : Precision::kF64;
    }
    case Mode::kAuto: {
      const double frac = fine_nnz == 0
                              ? 0.0
                              : static_cast<double>(level_nnz) /
                                    static_cast<double>(fine_nnz);
      return frac <= auto_nnz_fraction ? Precision::kF32 : Precision::kF64;
    }
  }
  return Precision::kF64;
}

const char* precision_mode_name(PrecisionPolicy::Mode m) {
  switch (m) {
    case PrecisionPolicy::Mode::kF64:
      return "f64";
    case PrecisionPolicy::Mode::kF32Coarse:
      return "f32coarse";
    case PrecisionPolicy::Mode::kAuto:
      return "auto";
  }
  return "f64";
}

PrecisionPolicy default_precision_policy() {
  PrecisionPolicy p;
  const char* env = std::getenv("ASYNCMG_PRECISION");
  if (env == nullptr) return p;
  if (std::strcmp(env, "f32coarse") == 0) {
    p.mode = PrecisionPolicy::Mode::kF32Coarse;
  } else if (std::strcmp(env, "auto") == 0) {
    p.mode = PrecisionPolicy::Mode::kAuto;
  }
  return p;
}

}  // namespace asyncmg
