#pragma once
// Interpolation (prolongation) operators for classical AMG: direct,
// classical "modified" (Ruge-Stuben with lumping of strong F-F connections
// lacking a common C point), and multipass (for aggressive coarsening).
// These mirror the BoomerAMG interpolation options used in the paper.
//
// Assembly is row-parallel (rows are independent given the splitting);
// `num_threads` 0 means the OpenMP default, and every kernel returns an
// identical matrix for every thread count.

#include "amg/coarsen.hpp"
#include "sparse/csr.hpp"

namespace asyncmg {

enum class InterpAlgo { kDirect, kClassicalModified, kMultipass };

/// Direct interpolation: F-point rows distribute the full row sum over the
/// strong C neighbors, with positive/negative parts treated separately
/// (hypre's scheme). C-point rows are identity.
CsrMatrix interp_direct(const CsrMatrix& a, const CsrMatrix& s,
                        const Splitting& split, int num_threads = 0);

/// Classical modified interpolation: strong F-F connections are distributed
/// through common strong C points; when an F neighbor shares no C point with
/// the row, its coefficient is lumped into the diagonal ("modified").
CsrMatrix interp_classical_modified(const CsrMatrix& a, const CsrMatrix& s,
                                    const Splitting& split,
                                    int num_threads = 0);

/// Multipass interpolation: C points first, then F points with strong C
/// neighbors (direct), then remaining F points through already-interpolated
/// strong neighbors, pass by pass. Required after aggressive coarsening,
/// where many F points have no direct strong C neighbor. Passes are
/// sequential but each pass's candidate rows are computed in parallel.
CsrMatrix interp_multipass(const CsrMatrix& a, const CsrMatrix& s,
                           const Splitting& split, int num_threads = 0);

CsrMatrix build_interpolation(InterpAlgo algo, const CsrMatrix& a,
                              const CsrMatrix& s, const Splitting& split,
                              int num_threads = 0);

/// Truncates interpolation rows: drops entries below `trunc * max|row|` and
/// rescales the survivors to preserve the row sum (positive and negative
/// parts rescaled separately). trunc <= 0 is a no-op.
CsrMatrix truncate_interpolation(const CsrMatrix& p, double trunc,
                                 int num_threads = 0);

}  // namespace asyncmg
