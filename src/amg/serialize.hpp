#pragma once
// Hierarchy serialization: the AMG setup phase is the expensive part of a
// solve (strength + coarsening + interpolation + SpGEMMs), so production
// users persist it and reload it for repeated right-hand sides. The format
// is a self-describing text container of Matrix Market blocks plus the CF
// splittings.

#include <iosfwd>
#include <string>

#include "amg/hierarchy.hpp"

namespace asyncmg {

/// Writes the hierarchy (operators, interpolations, splittings).
void save_hierarchy(std::ostream& out, const Hierarchy& h);
void save_hierarchy_file(const std::string& path, const Hierarchy& h);

/// Reads a hierarchy previously written by save_hierarchy. Validates the
/// interpolation chain; throws std::runtime_error on malformed input.
Hierarchy load_hierarchy(std::istream& in);
Hierarchy load_hierarchy_file(const std::string& path);

/// In-memory round-trip: the serialized container as a string. This is the
/// primitive the HierarchyCache spill path builds on (serialize once, then
/// hand the bytes to whatever store backs the cache).
std::string save_hierarchy_string(const Hierarchy& h);
Hierarchy load_hierarchy_string(const std::string& bytes);

}  // namespace asyncmg
