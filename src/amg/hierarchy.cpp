#include "amg/hierarchy.hpp"

#include <sstream>
#include <stdexcept>

#include "sparse/spgemm.hpp"

namespace asyncmg {

Hierarchy Hierarchy::build(CsrMatrix a_fine, const AmgOptions& opts) {
  Hierarchy h;
  Rng rng(opts.seed);
  h.levels_.push_back(AmgLevel{std::move(a_fine), {}, {}});

  // Per-dof function map for unknown-based AMG; carried to coarse levels
  // (a C point keeps its fine-level component).
  std::vector<int> funcs;
  if (opts.num_functions > 1) {
    funcs.resize(static_cast<std::size_t>(h.levels_.back().a.rows()));
    for (std::size_t i = 0; i < funcs.size(); ++i) {
      funcs[i] =
          static_cast<int>(i % static_cast<std::size_t>(opts.num_functions));
    }
  }

  for (Index lvl = 0; lvl + 1 < opts.max_levels; ++lvl) {
    const CsrMatrix& a = h.levels_.back().a;
    const Index n = a.rows();
    if (n <= opts.coarse_size) break;

    const CsrMatrix s = strength_matrix_mapped(
        a, opts.strength_theta, opts.strength_norm, funcs, opts.setup_threads);
    Splitting split = coarsen(opts.coarsening, s, rng);
    const bool aggressive = lvl < static_cast<Index>(opts.num_aggressive_levels);
    if (aggressive) {
      split =
          coarsen_aggressive(opts.coarsening, s, split, rng, opts.setup_threads);
    }

    const Index nc = count_coarse(split);
    if (nc == 0 || nc >= n ||
        static_cast<double>(nc) >
            opts.max_coarsen_ratio * static_cast<double>(n)) {
      break;  // coarsening stalled; keep current coarsest level
    }

    // Aggressive coarsening leaves F points without strong C neighbors, so
    // it always pairs with multipass interpolation (as in BoomerAMG).
    const InterpAlgo interp_algo =
        aggressive ? InterpAlgo::kMultipass : opts.interpolation;
    CsrMatrix p =
        build_interpolation(interp_algo, a, s, split, opts.setup_threads);
    p = truncate_interpolation(p, opts.trunc_factor, opts.setup_threads);

    CsrMatrix ac = galerkin_product(a, p, opts.setup_threads);

    if (!funcs.empty()) {
      std::vector<int> coarse_funcs;
      coarse_funcs.reserve(static_cast<std::size_t>(nc));
      for (std::size_t i = 0; i < split.size(); ++i) {
        if (split[i] == PointType::kCoarse) coarse_funcs.push_back(funcs[i]);
      }
      funcs = std::move(coarse_funcs);
    }

    h.levels_.back().p = std::move(p);
    h.levels_.back().split = std::move(split);
    h.levels_.push_back(AmgLevel{std::move(ac), {}, {}});
  }

  // Demote per the precision policy only after the whole (fp64) setup is
  // done: Galerkin products, strength, and interpolation all see full
  // precision, and the stored hierarchy is identical whether it is used
  // fresh or round-tripped through the spill serializer. The interpolant
  // P_k couples level k to level k+1 and follows the coarser level's
  // width.
  const std::size_t nl = h.levels_.size();
  const std::size_t fine_nnz = static_cast<std::size_t>(h.levels_[0].a.nnz());
  for (std::size_t k = 0; k < nl; ++k) {
    const Precision pk = opts.precision.level_precision(
        k, nl, static_cast<std::size_t>(h.levels_[k].a.nnz()), fine_nnz);
    h.levels_[k].a.convert_precision(pk);
    if (k + 1 < nl && h.levels_[k].p.rows() > 0) {
      const Precision pc = opts.precision.level_precision(
          k + 1, nl, static_cast<std::size_t>(h.levels_[k + 1].a.nnz()),
          fine_nnz);
      h.levels_[k].p.convert_precision(pc);
    }
  }
  return h;
}

Hierarchy Hierarchy::from_levels(std::vector<AmgLevel> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("from_levels: need at least one level");
  }
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const bool coarsest = k + 1 == levels.size();
    if (levels[k].a.rows() != levels[k].a.cols()) {
      throw std::invalid_argument("from_levels: non-square operator");
    }
    if (coarsest) {
      if (levels[k].p.rows() != 0) {
        throw std::invalid_argument(
            "from_levels: coarsest level must have no interpolation");
      }
    } else {
      if (levels[k].p.rows() != levels[k].a.rows() ||
          levels[k].p.cols() != levels[k + 1].a.rows()) {
        throw std::invalid_argument(
            "from_levels: interpolation shape mismatch at level " +
            std::to_string(k));
      }
    }
  }
  Hierarchy h;
  h.levels_ = std::move(levels);
  return h;
}

double Hierarchy::operator_complexity() const {
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.nnz());
  return total / static_cast<double>(levels_.front().a.nnz());
}

double Hierarchy::grid_complexity() const {
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.rows());
  return total / static_cast<double>(levels_.front().a.rows());
}

std::string Hierarchy::summary() const {
  std::ostringstream os;
  os << "AMG hierarchy: " << levels_.size() << " levels\n";
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    os << "  level " << k << ": " << levels_[k].a.summary();
    if (levels_[k].p.rows() > 0) {
      os << "  (P: " << levels_[k].p.summary() << ")";
    }
    os << '\n';
  }
  os << "  operator complexity " << operator_complexity()
     << ", grid complexity " << grid_complexity() << '\n';
  return os.str();
}

}  // namespace asyncmg
