#include "amg/hierarchy.hpp"

#include <sstream>
#include <stdexcept>

#include "sparse/spgemm.hpp"

namespace asyncmg {

HierarchyBuilder::HierarchyBuilder(CsrMatrix a_fine, const AmgOptions& opts)
    : opts_(opts), rng_(opts.seed) {
  levels_.push_back(AmgLevel{std::move(a_fine), {}, {}});

  // Per-dof function map for unknown-based AMG; carried to coarse levels
  // (a C point keeps its fine-level component).
  if (opts_.num_functions > 1) {
    funcs_.resize(static_cast<std::size_t>(levels_.back().a.rows()));
    for (std::size_t i = 0; i < funcs_.size(); ++i) {
      funcs_[i] =
          static_cast<int>(i % static_cast<std::size_t>(opts_.num_functions));
    }
  }
}

bool HierarchyBuilder::step() {
  if (done_) return false;
  if (lvl_ + 1 >= opts_.max_levels) {
    done_ = true;
    return false;
  }
  const CsrMatrix& a = levels_.back().a;
  const Index n = a.rows();
  if (n <= opts_.coarse_size) {
    done_ = true;
    return false;
  }

  const CsrMatrix s = strength_matrix_mapped(a, opts_.strength_theta,
                                             opts_.strength_norm, funcs_,
                                             opts_.setup_threads);
  const bool aggressive =
      lvl_ < static_cast<Index>(opts_.num_aggressive_levels);
  Splitting split;
  if (opts_.coarsen_mode == CoarsenMode::kSerialOracle) {
    split = coarsen(opts_.coarsening, s, rng_);
    if (aggressive) {
      split = coarsen_aggressive(opts_.coarsening, s, split, rng_,
                                 opts_.setup_threads);
    }
  } else {
    CoarsenParams cp;
    cp.algo = opts_.coarsening;
    cp.weights = opts_.coarsen_weights;
    cp.seed = coarsen_level_seed(opts_.seed, lvl_);
    cp.num_threads = opts_.setup_threads;
    split = coarsen_parallel(s, cp);
    if (aggressive) split = coarsen_aggressive_parallel(s, split, cp);
  }

  const Index nc = count_coarse(split);
  if (nc == 0 || nc >= n ||
      static_cast<double>(nc) >
          opts_.max_coarsen_ratio * static_cast<double>(n)) {
    done_ = true;  // coarsening stalled; keep current coarsest level
    return false;
  }

  // Aggressive coarsening leaves F points without strong C neighbors, so
  // it always pairs with multipass interpolation (as in BoomerAMG).
  const InterpAlgo interp_algo =
      aggressive ? InterpAlgo::kMultipass : opts_.interpolation;
  CsrMatrix p =
      build_interpolation(interp_algo, a, s, split, opts_.setup_threads);
  p = truncate_interpolation(p, opts_.trunc_factor, opts_.setup_threads);

  CsrMatrix ac = galerkin_product(a, p, opts_.setup_threads);

  if (!funcs_.empty()) {
    std::vector<int> coarse_funcs;
    coarse_funcs.reserve(static_cast<std::size_t>(nc));
    for (std::size_t i = 0; i < split.size(); ++i) {
      if (split[i] == PointType::kCoarse) coarse_funcs.push_back(funcs_[i]);
    }
    funcs_ = std::move(coarse_funcs);
  }

  levels_.back().p = std::move(p);
  levels_.back().split = std::move(split);
  levels_.push_back(AmgLevel{std::move(ac), {}, {}});
  ++lvl_;
  return !done_;
}

Hierarchy HierarchyBuilder::snapshot_prefix(std::size_t k) const {
  if (k < 1 || k > levels_.size()) {
    throw std::invalid_argument("snapshot_prefix: bad level count");
  }
  std::vector<AmgLevel> pre(levels_.begin(),
                            levels_.begin() + static_cast<std::ptrdiff_t>(k));
  // The snapshot's coarsest level is a working level mid-coarsening: drop
  // its (not yet existing or pending) interpolation and splitting so it
  // validates as a coarsest level.
  pre.back().p = CsrMatrix{};
  pre.back().split = Splitting{};
  return Hierarchy::from_levels(std::move(pre));
}

Hierarchy HierarchyBuilder::finish() {
  while (step()) {
  }

  Hierarchy h;
  h.levels_ = std::move(levels_);

  // Demote per the precision policy only after the whole (fp64) setup is
  // done: Galerkin products, strength, and interpolation all see full
  // precision, and the stored hierarchy is identical whether it is used
  // fresh or round-tripped through the spill serializer. The interpolant
  // P_k couples level k to level k+1 and follows the coarser level's
  // width.
  const std::size_t nl = h.levels_.size();
  const std::size_t fine_nnz = static_cast<std::size_t>(h.levels_[0].a.nnz());
  for (std::size_t k = 0; k < nl; ++k) {
    const Precision pk = opts_.precision.level_precision(
        k, nl, static_cast<std::size_t>(h.levels_[k].a.nnz()), fine_nnz);
    h.levels_[k].a.convert_precision(pk);
    if (k + 1 < nl && h.levels_[k].p.rows() > 0) {
      const Precision pc = opts_.precision.level_precision(
          k + 1, nl, static_cast<std::size_t>(h.levels_[k + 1].a.nnz()),
          fine_nnz);
      h.levels_[k].p.convert_precision(pc);
    }
  }
  return h;
}

Hierarchy Hierarchy::build(CsrMatrix a_fine, const AmgOptions& opts) {
  HierarchyBuilder builder(std::move(a_fine), opts);
  return builder.finish();
}

Hierarchy Hierarchy::from_levels(std::vector<AmgLevel> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("from_levels: need at least one level");
  }
  for (std::size_t k = 0; k < levels.size(); ++k) {
    const bool coarsest = k + 1 == levels.size();
    if (levels[k].a.rows() != levels[k].a.cols()) {
      throw std::invalid_argument("from_levels: non-square operator");
    }
    if (coarsest) {
      if (levels[k].p.rows() != 0) {
        throw std::invalid_argument(
            "from_levels: coarsest level must have no interpolation");
      }
    } else {
      if (levels[k].p.rows() != levels[k].a.rows() ||
          levels[k].p.cols() != levels[k + 1].a.rows()) {
        throw std::invalid_argument(
            "from_levels: interpolation shape mismatch at level " +
            std::to_string(k));
      }
    }
  }
  Hierarchy h;
  h.levels_ = std::move(levels);
  return h;
}

double Hierarchy::operator_complexity() const {
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.nnz());
  return total / static_cast<double>(levels_.front().a.nnz());
}

double Hierarchy::grid_complexity() const {
  double total = 0.0;
  for (const auto& l : levels_) total += static_cast<double>(l.a.rows());
  return total / static_cast<double>(levels_.front().a.rows());
}

std::string Hierarchy::summary() const {
  std::ostringstream os;
  os << "AMG hierarchy: " << levels_.size() << " levels\n";
  for (std::size_t k = 0; k < levels_.size(); ++k) {
    os << "  level " << k << ": " << levels_[k].a.summary();
    if (levels_[k].p.rows() > 0) {
      os << "  (P: " << levels_[k].p.summary() << ")";
    }
    os << '\n';
  }
  os << "  operator complexity " << operator_complexity()
     << ", grid complexity " << grid_complexity() << '\n';
  return os.str();
}

}  // namespace asyncmg
