#pragma once
// Classical strength-of-connection for algebraic multigrid.
//
// Point i *strongly depends* on j (j strongly influences i) when
//   -a_ij >= theta * max_{k != i} (-a_ik)            (kNegative), or
//   |a_ij| >= theta * max_{k != i} |a_ik|            (kAbsolute).
// The negative variant is the classical Ruge-Stuben choice for M-matrices;
// the absolute variant is more robust for FEM systems with positive
// off-diagonals (our elasticity set).

#include "sparse/csr.hpp"

namespace asyncmg {

enum class StrengthNorm { kNegative, kAbsolute };

/// Strength matrix S: S(i,j) = 1 iff i strongly depends on j (j != i).
/// Shape of A; values are all 1.0, pattern only. Row-parallel assembly;
/// `num_threads` 0 means the OpenMP default, and the result is identical
/// for every thread count.
///
/// `num_functions` enables unknown-based AMG for systems of PDEs with
/// interleaved components (dof = num_functions*node + component): only
/// couplings between same-component dofs are considered, which is how
/// BoomerAMG treats elasticity (num_functions = 3).
CsrMatrix strength_matrix(const CsrMatrix& a, double theta,
                          StrengthNorm norm = StrengthNorm::kNegative,
                          int num_functions = 1, int num_threads = 0);

/// Variant with an explicit per-dof function map (used on coarse levels,
/// where C-point renumbering destroys the interleaving). Empty map means
/// scalar behaviour.
CsrMatrix strength_matrix_mapped(const CsrMatrix& a, double theta,
                                 StrengthNorm norm,
                                 const std::vector<int>& function_map,
                                 int num_threads = 0);

/// Distance-2 strength pattern S2 = pattern(S + S*S) with zero diagonal;
/// used by aggressive coarsening (a point is distance-2 strongly connected
/// to another if a strong path of length <= 2 joins them).
CsrMatrix strength_distance2(const CsrMatrix& s, int num_threads = 0);

}  // namespace asyncmg
