#include "amg/strength.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sparse/parallel.hpp"

namespace asyncmg {

CsrMatrix strength_matrix(const CsrMatrix& a, double theta, StrengthNorm norm,
                          int num_functions, int num_threads) {
  std::vector<int> map;
  if (num_functions > 1) {
    map.resize(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < map.size(); ++i) {
      map[i] = static_cast<int>(i % static_cast<std::size_t>(num_functions));
    }
  }
  return strength_matrix_mapped(a, theta, norm, map, num_threads);
}

CsrMatrix strength_matrix_mapped(const CsrMatrix& a, double theta,
                                 StrengthNorm norm,
                                 const std::vector<int>& function_map,
                                 int num_threads) {
  const Index n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const bool mapped = !function_map.empty();

  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      n, num_threads, "strength", row_ptr, col_idx, values, [&] {
        return [&](Index i, std::vector<Index>& cols,
                   std::vector<double>& vals) {
          auto same_function = [&](Index j) {
            return !mapped || function_map[static_cast<std::size_t>(j)] ==
                                  function_map[static_cast<std::size_t>(i)];
          };
          double strongest = 0.0;
          for (Index k = rp[i]; k < rp[i + 1]; ++k) {
            const Index j = ci[static_cast<std::size_t>(k)];
            if (j == i || !same_function(j)) continue;
            const double val = v[static_cast<std::size_t>(k)];
            const double mag =
                norm == StrengthNorm::kNegative ? -val : std::abs(val);
            strongest = std::max(strongest, mag);
          }
          const double cut = theta * strongest;
          if (strongest > 0.0) {
            for (Index k = rp[i]; k < rp[i + 1]; ++k) {
              const Index j = ci[static_cast<std::size_t>(k)];
              if (j == i || !same_function(j)) continue;
              const double val = v[static_cast<std::size_t>(k)];
              const double mag =
                  norm == StrengthNorm::kNegative ? -val : std::abs(val);
              if (mag >= cut && mag > 0.0) {
                cols.push_back(j);
                vals.push_back(1.0);
              }
            }
          }
        };
      });
  return CsrMatrix::from_csr(n, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix strength_distance2(const CsrMatrix& s, int num_threads) {
  const Index n = s.rows();
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();

  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      n, num_threads, "strength_distance2", row_ptr, col_idx, values, [&] {
        // Per-block scratch: row stamps are the row index, which is unique
        // across the whole matrix, so reuse within a block is safe.
        return [&, marker = std::vector<Index>(static_cast<std::size_t>(n), -1),
                row_cols = std::vector<Index>()](
                   Index i, std::vector<Index>& cols,
                   std::vector<double>& vals) mutable {
          row_cols.clear();
          auto visit = [&](Index j) {
            if (j == i) return;
            if (marker[static_cast<std::size_t>(j)] != i) {
              marker[static_cast<std::size_t>(j)] = i;
              row_cols.push_back(j);
            }
          };
          for (Index k = rp[i]; k < rp[i + 1]; ++k) {
            const Index m = ci[static_cast<std::size_t>(k)];
            visit(m);
            for (Index k2 = rp[m]; k2 < rp[m + 1]; ++k2) {
              visit(ci[static_cast<std::size_t>(k2)]);
            }
          }
          std::sort(row_cols.begin(), row_cols.end());
          for (Index j : row_cols) {
            cols.push_back(j);
            vals.push_back(1.0);
          }
        };
      });
  return CsrMatrix::from_csr(n, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

}  // namespace asyncmg
