#include "amg/strength.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace asyncmg {

CsrMatrix strength_matrix(const CsrMatrix& a, double theta, StrengthNorm norm,
                          int num_functions) {
  std::vector<int> map;
  if (num_functions > 1) {
    map.resize(static_cast<std::size_t>(a.rows()));
    for (std::size_t i = 0; i < map.size(); ++i) {
      map[i] = static_cast<int>(i % static_cast<std::size_t>(num_functions));
    }
  }
  return strength_matrix_mapped(a, theta, norm, map);
}

CsrMatrix strength_matrix_mapped(const CsrMatrix& a, double theta,
                                 StrengthNorm norm,
                                 const std::vector<int>& function_map) {
  const Index n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const bool mapped = !function_map.empty();

  std::vector<Index> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(a.nnz()));

  for (Index i = 0; i < n; ++i) {
    auto same_function = [&](Index j) {
      return !mapped || function_map[static_cast<std::size_t>(j)] ==
                            function_map[static_cast<std::size_t>(i)];
    };
    double strongest = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j == i || !same_function(j)) continue;
      const double val = v[static_cast<std::size_t>(k)];
      const double mag = norm == StrengthNorm::kNegative ? -val : std::abs(val);
      strongest = std::max(strongest, mag);
    }
    const double cut = theta * strongest;
    if (strongest > 0.0) {
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        const Index j = ci[static_cast<std::size_t>(k)];
        if (j == i || !same_function(j)) continue;
        const double val = v[static_cast<std::size_t>(k)];
        const double mag =
            norm == StrengthNorm::kNegative ? -val : std::abs(val);
        if (mag >= cut && mag > 0.0) {
          col_idx.push_back(j);
          values.push_back(1.0);
        }
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix::from_csr(n, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix strength_distance2(const CsrMatrix& s) {
  const Index n = s.rows();
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();

  std::vector<Index> row_ptr(static_cast<std::size_t>(n) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  std::vector<Index> marker(static_cast<std::size_t>(n), -1);
  std::vector<Index> row_cols;

  for (Index i = 0; i < n; ++i) {
    row_cols.clear();
    auto visit = [&](Index j) {
      if (j == i) return;
      if (marker[static_cast<std::size_t>(j)] != i) {
        marker[static_cast<std::size_t>(j)] = i;
        row_cols.push_back(j);
      }
    };
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      const Index m = ci[static_cast<std::size_t>(k)];
      visit(m);
      for (Index k2 = rp[m]; k2 < rp[m + 1]; ++k2) {
        visit(ci[static_cast<std::size_t>(k2)]);
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (Index j : row_cols) {
      col_idx.push_back(j);
      values.push_back(1.0);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix::from_csr(n, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

}  // namespace asyncmg
