#include "amg/coarsen.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "amg/strength.hpp"

namespace asyncmg {

namespace {

enum : std::int8_t { kUndecided = -1, kF = 0, kC = 1 };

/// Neighbor iteration over a CSR pattern row.
template <typename Fn>
void for_row(const CsrMatrix& s, Index i, Fn&& fn) {
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  for (Index k = rp[i]; k < rp[i + 1]; ++k) fn(ci[static_cast<std::size_t>(k)]);
}

}  // namespace

Splitting coarsen_rs_first_pass(const CsrMatrix& s) {
  const Index n = s.rows();
  const CsrMatrix st = s.transpose();

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<Index> measure(static_cast<std::size_t>(n), 0);
  for (Index i = 0; i < n; ++i) {
    measure[static_cast<std::size_t>(i)] = st.row_ptr()[i + 1] - st.row_ptr()[i];
  }

  // Lazy max-heap of (measure, node); stale entries are skipped on pop.
  using Entry = std::pair<Index, Index>;
  std::priority_queue<Entry> heap;
  Index undecided = 0;
  for (Index i = 0; i < n; ++i) {
    const bool isolated =
        measure[static_cast<std::size_t>(i)] == 0 &&
        s.row_ptr()[i + 1] == s.row_ptr()[i];
    if (isolated) {
      state[static_cast<std::size_t>(i)] = kF;  // no strong couplings at all
    } else {
      heap.push({measure[static_cast<std::size_t>(i)], i});
      ++undecided;
    }
  }

  auto bump = [&](Index i) {
    heap.push({measure[static_cast<std::size_t>(i)], i});
  };

  while (undecided > 0) {
    // Pop the highest-measure undecided point.
    Index i = -1;
    while (!heap.empty()) {
      const auto [m, node] = heap.top();
      heap.pop();
      if (state[static_cast<std::size_t>(node)] == kUndecided &&
          m == measure[static_cast<std::size_t>(node)]) {
        i = node;
        break;
      }
    }
    if (i < 0) {
      // All remaining undecided points have stale heap entries only; they
      // have measure 0 and influence nobody: make them F.
      for (Index j = 0; j < n; ++j) {
        if (state[static_cast<std::size_t>(j)] == kUndecided) {
          state[static_cast<std::size_t>(j)] = kF;
          --undecided;
        }
      }
      break;
    }

    state[static_cast<std::size_t>(i)] = kC;
    --undecided;
    // Points that strongly depend on the new C point become F; their other
    // strong influences gain importance.
    for_row(st, i, [&](Index j) {
      if (state[static_cast<std::size_t>(j)] != kUndecided) return;
      state[static_cast<std::size_t>(j)] = kF;
      --undecided;
      for_row(s, j, [&](Index k) {
        if (state[static_cast<std::size_t>(k)] == kUndecided) {
          ++measure[static_cast<std::size_t>(k)];
          bump(k);
        }
      });
    });
    // Strong influences of the new C point become slightly less urgent.
    for_row(s, i, [&](Index j) {
      if (state[static_cast<std::size_t>(j)] == kUndecided) {
        if (measure[static_cast<std::size_t>(j)] > 0) {
          --measure[static_cast<std::size_t>(j)];
        }
        bump(j);
      }
    });
  }

  Splitting split(static_cast<std::size_t>(n), PointType::kFine);
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] == kC) {
      split[static_cast<std::size_t>(i)] = PointType::kCoarse;
    }
  }
  return split;
}

Splitting coarsen_pmis(const CsrMatrix& s, Rng& rng, const Splitting& init) {
  const Index n = s.rows();
  const CsrMatrix st = s.transpose();

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<double> measure(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    const Index infl = st.row_ptr()[i + 1] - st.row_ptr()[i];
    measure[static_cast<std::size_t>(i)] =
        static_cast<double>(infl) + rng.next_double();
  }

  Index undecided = n;
  auto decide = [&](Index i, std::int8_t what) {
    state[static_cast<std::size_t>(i)] = what;
    --undecided;
  };

  // Seed points forced coarse (HMIS).
  if (!init.empty()) {
    if (init.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument("coarsen_pmis: init size mismatch");
    }
    for (Index i = 0; i < n; ++i) {
      if (init[static_cast<std::size_t>(i)] == PointType::kCoarse) {
        decide(i, kC);
      }
    }
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      bool dep_on_c = false;
      for_row(s, i, [&](Index j) {
        if (state[static_cast<std::size_t>(j)] == kC) dep_on_c = true;
      });
      if (dep_on_c) decide(i, kF);
    }
  }

  // Isolated points (no strong couplings either way) are F.
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
    const bool no_dep = s.row_ptr()[i + 1] == s.row_ptr()[i];
    const bool no_infl = st.row_ptr()[i + 1] == st.row_ptr()[i];
    if (no_dep && no_infl) decide(i, kF);
  }

  std::vector<Index> new_c;
  while (undecided > 0) {
    new_c.clear();
    // Local maxima of the measure over undecided symmetrized neighborhoods.
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      bool is_max = true;
      auto check = [&](Index j) {
        if (!is_max || state[static_cast<std::size_t>(j)] != kUndecided) return;
        const double mi = measure[static_cast<std::size_t>(i)];
        const double mj = measure[static_cast<std::size_t>(j)];
        if (mj > mi || (mj == mi && j < i)) is_max = false;
      };
      for_row(s, i, check);
      for_row(st, i, check);
      if (is_max) new_c.push_back(i);
    }
    if (new_c.empty()) {
      throw std::runtime_error("coarsen_pmis: stalled (no local maxima)");
    }
    for (Index i : new_c) decide(i, kC);
    // Undecided points strongly depending on a new C point become F.
    for (Index i : new_c) {
      for_row(st, i, [&](Index j) {
        if (state[static_cast<std::size_t>(j)] == kUndecided) decide(j, kF);
      });
    }
  }

  Splitting split(static_cast<std::size_t>(n), PointType::kFine);
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] == kC) {
      split[static_cast<std::size_t>(i)] = PointType::kCoarse;
    }
  }
  return split;
}

Splitting coarsen_hmis(const CsrMatrix& s, Rng& rng) {
  const Splitting rs = coarsen_rs_first_pass(s);
  return coarsen_pmis(s, rng, rs);
}

Splitting coarsen(CoarsenAlgo algo, const CsrMatrix& s, Rng& rng) {
  switch (algo) {
    case CoarsenAlgo::kRS:
      return coarsen_rs_first_pass(s);
    case CoarsenAlgo::kPMIS:
      return coarsen_pmis(s, rng);
    case CoarsenAlgo::kHMIS:
      return coarsen_hmis(s, rng);
  }
  throw std::invalid_argument("unknown coarsening algorithm");
}

Splitting coarsen_aggressive(CoarsenAlgo algo, const CsrMatrix& s,
                             const Splitting& first, Rng& rng,
                             int num_threads) {
  const Index n = s.rows();
  // Compress the first-stage C points and build their distance-2 strength
  // subgraph.
  std::vector<Index> cnum = coarse_numbering(first);
  const Index nc = count_coarse(first);
  if (nc == 0) return first;
  std::vector<Index> cinv(static_cast<std::size_t>(nc));
  for (Index i = 0; i < n; ++i) {
    if (cnum[static_cast<std::size_t>(i)] >= 0) {
      cinv[static_cast<std::size_t>(cnum[static_cast<std::size_t>(i)])] = i;
    }
  }

  const CsrMatrix s2 = strength_distance2(s, num_threads);
  std::vector<Index> row_ptr(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  for (Index ic = 0; ic < nc; ++ic) {
    const Index i = cinv[static_cast<std::size_t>(ic)];
    for_row(s2, i, [&](Index j) {
      const Index jc = cnum[static_cast<std::size_t>(j)];
      if (jc >= 0 && jc != ic) {
        col_idx.push_back(jc);
        values.push_back(1.0);
      }
    });
    row_ptr[static_cast<std::size_t>(ic) + 1] =
        static_cast<Index>(col_idx.size());
  }
  const CsrMatrix sub = CsrMatrix::from_csr(
      nc, nc, std::move(row_ptr), std::move(col_idx), std::move(values));

  const Splitting sub_split = coarsen(algo, sub, rng);

  Splitting out(static_cast<std::size_t>(n), PointType::kFine);
  for (Index ic = 0; ic < nc; ++ic) {
    if (sub_split[static_cast<std::size_t>(ic)] == PointType::kCoarse) {
      out[static_cast<std::size_t>(cinv[static_cast<std::size_t>(ic)])] =
          PointType::kCoarse;
    }
  }
  return out;
}

Index count_coarse(const Splitting& split) {
  Index c = 0;
  for (PointType p : split) c += (p == PointType::kCoarse) ? 1 : 0;
  return c;
}

std::vector<Index> coarse_numbering(const Splitting& split) {
  std::vector<Index> num(split.size(), -1);
  Index next = 0;
  for (std::size_t i = 0; i < split.size(); ++i) {
    if (split[i] == PointType::kCoarse) num[i] = next++;
  }
  return num;
}

}  // namespace asyncmg
