#include "amg/coarsen.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "amg/strength.hpp"
#include "sparse/parallel.hpp"

namespace asyncmg {

namespace {

enum : std::int8_t { kUndecided = -1, kF = 0, kC = 1 };

/// Neighbor iteration over a CSR pattern row.
template <typename Fn>
void for_row(const CsrMatrix& s, Index i, Fn&& fn) {
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  for (Index k = rp[i]; k < rp[i + 1]; ++k) fn(ci[static_cast<std::size_t>(k)]);
}

Splitting state_to_splitting(const std::vector<std::int8_t>& state) {
  Splitting split(state.size(), PointType::kFine);
  for (std::size_t i = 0; i < state.size(); ++i) {
    if (state[i] == kC) split[i] = PointType::kCoarse;
  }
  return split;
}

}  // namespace

Splitting coarsen_rs_first_pass(const CsrMatrix& s) {
  const Index n = s.rows();
  const CsrMatrix st = s.transpose();

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<Index> measure(static_cast<std::size_t>(n), 0);
  for (Index i = 0; i < n; ++i) {
    measure[static_cast<std::size_t>(i)] = st.row_ptr()[i + 1] - st.row_ptr()[i];
  }

  // Lazy max-heap of (measure, node); stale entries are skipped on pop.
  using Entry = std::pair<Index, Index>;
  std::priority_queue<Entry> heap;
  Index undecided = 0;
  for (Index i = 0; i < n; ++i) {
    const bool isolated =
        measure[static_cast<std::size_t>(i)] == 0 &&
        s.row_ptr()[i + 1] == s.row_ptr()[i];
    if (isolated) {
      state[static_cast<std::size_t>(i)] = kF;  // no strong couplings at all
    } else {
      heap.push({measure[static_cast<std::size_t>(i)], i});
      ++undecided;
    }
  }

  auto bump = [&](Index i) {
    heap.push({measure[static_cast<std::size_t>(i)], i});
  };

  while (undecided > 0) {
    // Pop the highest-measure undecided point.
    Index i = -1;
    while (!heap.empty()) {
      const auto [m, node] = heap.top();
      heap.pop();
      if (state[static_cast<std::size_t>(node)] == kUndecided &&
          m == measure[static_cast<std::size_t>(node)]) {
        i = node;
        break;
      }
    }
    if (i < 0) {
      // All remaining undecided points have stale heap entries only; they
      // have measure 0 and influence nobody: make them F.
      for (Index j = 0; j < n; ++j) {
        if (state[static_cast<std::size_t>(j)] == kUndecided) {
          state[static_cast<std::size_t>(j)] = kF;
          --undecided;
        }
      }
      break;
    }

    state[static_cast<std::size_t>(i)] = kC;
    --undecided;
    // Points that strongly depend on the new C point become F; their other
    // strong influences gain importance.
    for_row(st, i, [&](Index j) {
      if (state[static_cast<std::size_t>(j)] != kUndecided) return;
      state[static_cast<std::size_t>(j)] = kF;
      --undecided;
      for_row(s, j, [&](Index k) {
        if (state[static_cast<std::size_t>(k)] == kUndecided) {
          ++measure[static_cast<std::size_t>(k)];
          bump(k);
        }
      });
    });
    // Strong influences of the new C point become slightly less urgent.
    for_row(s, i, [&](Index j) {
      if (state[static_cast<std::size_t>(j)] == kUndecided) {
        if (measure[static_cast<std::size_t>(j)] > 0) {
          --measure[static_cast<std::size_t>(j)];
        }
        bump(j);
      }
    });
  }

  return state_to_splitting(state);
}

Splitting coarsen_pmis_weighted(const CsrMatrix& s,
                                const std::vector<double>& weights,
                                const Splitting& init) {
  const Index n = s.rows();
  if (weights.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("coarsen_pmis: weights size mismatch");
  }
  const CsrMatrix st = s.transpose();

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<double> measure(static_cast<std::size_t>(n), 0.0);
  for (Index i = 0; i < n; ++i) {
    const Index infl = st.row_ptr()[i + 1] - st.row_ptr()[i];
    measure[static_cast<std::size_t>(i)] =
        static_cast<double>(infl) + weights[static_cast<std::size_t>(i)];
  }

  Index undecided = n;
  auto decide = [&](Index i, std::int8_t what) {
    state[static_cast<std::size_t>(i)] = what;
    --undecided;
  };

  // Seed points forced coarse (HMIS).
  if (!init.empty()) {
    if (init.size() != static_cast<std::size_t>(n)) {
      throw std::invalid_argument("coarsen_pmis: init size mismatch");
    }
    for (Index i = 0; i < n; ++i) {
      if (init[static_cast<std::size_t>(i)] == PointType::kCoarse) {
        decide(i, kC);
      }
    }
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      bool dep_on_c = false;
      for_row(s, i, [&](Index j) {
        if (state[static_cast<std::size_t>(j)] == kC) dep_on_c = true;
      });
      if (dep_on_c) decide(i, kF);
    }
  }

  // Isolated points (no strong couplings either way) are F.
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
    const bool no_dep = s.row_ptr()[i + 1] == s.row_ptr()[i];
    const bool no_infl = st.row_ptr()[i + 1] == st.row_ptr()[i];
    if (no_dep && no_infl) decide(i, kF);
  }

  std::vector<Index> new_c;
  while (undecided > 0) {
    new_c.clear();
    // Local maxima of the measure over undecided symmetrized neighborhoods.
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      bool is_max = true;
      auto check = [&](Index j) {
        if (!is_max || state[static_cast<std::size_t>(j)] != kUndecided) return;
        const double mi = measure[static_cast<std::size_t>(i)];
        const double mj = measure[static_cast<std::size_t>(j)];
        if (mj > mi || (mj == mi && j < i)) is_max = false;
      };
      for_row(s, i, check);
      for_row(st, i, check);
      if (is_max) new_c.push_back(i);
    }
    if (new_c.empty()) {
      throw std::runtime_error("coarsen_pmis: stalled (no local maxima)");
    }
    for (Index i : new_c) decide(i, kC);
    // Undecided points strongly depending on a new C point become F.
    for (Index i : new_c) {
      for_row(st, i, [&](Index j) {
        if (state[static_cast<std::size_t>(j)] == kUndecided) decide(j, kF);
      });
    }
  }

  return state_to_splitting(state);
}

Splitting coarsen_pmis(const CsrMatrix& s, Rng& rng, const Splitting& init) {
  // Weight draws in row order, exactly the sequence the original in-place
  // measure initialization consumed.
  std::vector<double> weights(static_cast<std::size_t>(s.rows()));
  for (std::size_t i = 0; i < weights.size(); ++i) {
    weights[i] = rng.next_double();
  }
  return coarsen_pmis_weighted(s, weights, init);
}

Splitting coarsen_hmis(const CsrMatrix& s, Rng& rng) {
  const Splitting rs = coarsen_rs_first_pass(s);
  return coarsen_pmis(s, rng, rs);
}

Splitting coarsen(CoarsenAlgo algo, const CsrMatrix& s, Rng& rng) {
  switch (algo) {
    case CoarsenAlgo::kRS:
      return coarsen_rs_first_pass(s);
    case CoarsenAlgo::kPMIS:
      return coarsen_pmis(s, rng);
    case CoarsenAlgo::kHMIS:
      return coarsen_hmis(s, rng);
  }
  throw std::invalid_argument("unknown coarsening algorithm");
}

// --------------------------------------------------------------------------
// Row-parallel path.
// --------------------------------------------------------------------------

namespace {

/// Stateless per-row hash weight in [0, 1): a salted splitmix64 draw, so
/// any thread can compute any row's weight independently.
double hash_weight(std::uint64_t seed, Index i) {
  std::uint64_t state =
      seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(i) + 1));
  return static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
}

/// Drops every decided index from the frontier, preserving index order
/// (deterministic: membership depends only on state).
void compact_frontier(std::vector<Index>& frontier,
                      const std::vector<std::int8_t>& state) {
  std::size_t w = 0;
  for (std::size_t r = 0; r < frontier.size(); ++r) {
    if (state[static_cast<std::size_t>(frontier[r])] == kUndecided) {
      frontier[w++] = frontier[r];
    }
  }
  frontier.resize(w);
}

/// Parallel PMIS rounds: identical round semantics to the serial body in
/// coarsen_pmis_weighted, restructured so every write is owner-computes
/// (state[i] and flag[i] are written only by the iteration that owns row i)
/// and each round touches only the frontier of still-undecided rows.
Splitting pmis_rounds_parallel(const CsrMatrix& s, const CsrMatrix& st,
                               const std::vector<double>& weights,
                               const Splitting& init, int num_threads) {
  const Index n = s.rows();
  const int nt =
      n >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<double> measure(static_cast<std::size_t>(n), 0.0);
  std::vector<std::int8_t> newc(static_cast<std::size_t>(n), 0);

  if (!init.empty() && init.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("coarsen_parallel: init size mismatch");
  }
  const bool seeded = !init.empty();

#pragma omp parallel for schedule(static) num_threads(nt)
  for (Index i = 0; i < n; ++i) {
    const Index infl = st.row_ptr()[i + 1] - st.row_ptr()[i];
    measure[static_cast<std::size_t>(i)] =
        static_cast<double>(infl) + weights[static_cast<std::size_t>(i)];
    // Seeds forced C; their strong dependents F; isolated points F. Each
    // decision reads only init (immutable) and row i's pattern.
    if (seeded && init[static_cast<std::size_t>(i)] == PointType::kCoarse) {
      state[static_cast<std::size_t>(i)] = kC;
      continue;
    }
    if (seeded) {
      bool dep_on_c = false;
      for_row(s, i, [&](Index j) {
        if (init[static_cast<std::size_t>(j)] == PointType::kCoarse) {
          dep_on_c = true;
        }
      });
      if (dep_on_c) {
        state[static_cast<std::size_t>(i)] = kF;
        continue;
      }
    }
    const bool no_dep = s.row_ptr()[i + 1] == s.row_ptr()[i];
    const bool no_infl = st.row_ptr()[i + 1] == st.row_ptr()[i];
    if (no_dep && no_infl) state[static_cast<std::size_t>(i)] = kF;
  }

  std::vector<Index> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] == kUndecided) frontier.push_back(i);
  }

  while (!frontier.empty()) {
    const auto fn = static_cast<std::int64_t>(frontier.size());
    std::int64_t selected = 0;

    // Round phase 1: local maxima of (measure, smaller-index-wins) over the
    // undecided symmetrized strong neighborhood.
#pragma omp parallel for schedule(static) num_threads(nt) reduction(+ : selected)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      bool is_max = true;
      auto check = [&](Index j) {
        if (!is_max || state[static_cast<std::size_t>(j)] != kUndecided) return;
        const double mi = measure[static_cast<std::size_t>(i)];
        const double mj = measure[static_cast<std::size_t>(j)];
        if (mj > mi || (mj == mi && j < i)) is_max = false;
      };
      for_row(s, i, check);
      for_row(st, i, check);
      newc[static_cast<std::size_t>(i)] = is_max ? 1 : 0;
      selected += is_max ? 1 : 0;
    }
    if (selected == 0) {
      throw std::runtime_error("coarsen_parallel: stalled (no local maxima)");
    }

    // Round phase 2: promote the winners, then demote their strong
    // dependents. F-ness is decided by row i looking at its own strong
    // influences (i depends on a new C point), so state[i] has exactly one
    // writer; reads go through the stable newc flags.
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      if (newc[static_cast<std::size_t>(i)] != 0) {
        state[static_cast<std::size_t>(i)] = kC;
        continue;
      }
      bool dep_on_new_c = false;
      for_row(s, i, [&](Index j) {
        if (newc[static_cast<std::size_t>(j)] != 0) dep_on_new_c = true;
      });
      if (dep_on_new_c) state[static_cast<std::size_t>(i)] = kF;
    }

    // Clear the round's winner flags before winners leave the frontier, so
    // later rounds' gathers only ever see fresh decisions.
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      newc[static_cast<std::size_t>(frontier[static_cast<std::size_t>(f)])] = 0;
    }

    compact_frontier(frontier, state);
  }

  return state_to_splitting(state);
}

/// Parallel round-based RS first pass (see header). Integer measures are
/// updated in gather form so every write is owner-computes and the result
/// is independent of the thread count.
Splitting rs_rounds_parallel(const CsrMatrix& s, const CsrMatrix& st,
                             int num_threads) {
  const Index n = s.rows();
  const int nt =
      n >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<Index> measure(static_cast<std::size_t>(n), 0);
  std::vector<std::int8_t> newc(static_cast<std::size_t>(n), 0);
  std::vector<std::int8_t> newf(static_cast<std::size_t>(n), 0);

#pragma omp parallel for schedule(static) num_threads(nt)
  for (Index i = 0; i < n; ++i) {
    const Index infl = st.row_ptr()[i + 1] - st.row_ptr()[i];
    measure[static_cast<std::size_t>(i)] = infl;
    const bool isolated = infl == 0 && s.row_ptr()[i + 1] == s.row_ptr()[i];
    if (isolated) state[static_cast<std::size_t>(i)] = kF;
  }

  std::vector<Index> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    if (state[static_cast<std::size_t>(i)] == kUndecided) frontier.push_back(i);
  }

  while (!frontier.empty()) {
    const auto fn = static_cast<std::int64_t>(frontier.size());

    // Phase 1: (measure, smaller-index-wins) local maxima become C. The
    // strict total order guarantees at least the frontier's global maximum
    // wins, so every round makes progress.
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      bool is_max = true;
      auto check = [&](Index j) {
        if (!is_max || state[static_cast<std::size_t>(j)] != kUndecided) return;
        const Index mi = measure[static_cast<std::size_t>(i)];
        const Index mj = measure[static_cast<std::size_t>(j)];
        if (mj > mi || (mj == mi && j < i)) is_max = false;
      };
      for_row(s, i, check);
      for_row(st, i, check);
      newc[static_cast<std::size_t>(i)] = is_max ? 1 : 0;
    }

    // Phase 2: winners become C; rows strongly depending on a winner F.
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      if (newc[static_cast<std::size_t>(i)] != 0) {
        state[static_cast<std::size_t>(i)] = kC;
        newf[static_cast<std::size_t>(i)] = 0;
        continue;
      }
      bool dep_on_new_c = false;
      for_row(s, i, [&](Index j) {
        if (newc[static_cast<std::size_t>(j)] != 0) dep_on_new_c = true;
      });
      newf[static_cast<std::size_t>(i)] = dep_on_new_c ? 1 : 0;
      if (dep_on_new_c) state[static_cast<std::size_t>(i)] = kF;
    }

    // Phase 3: gather-form measure update for the survivors. The classical
    // heap algorithm's scatter updates (++ per new F dependent, clamped --
    // per new C influence) become per-row counts over st: exact integer
    // arithmetic, one writer per row.
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      Index inc = 0;
      Index dec = 0;
      for_row(st, i, [&](Index j) {
        inc += (newf[static_cast<std::size_t>(j)] != 0) ? 1 : 0;
        dec += (newc[static_cast<std::size_t>(j)] != 0) ? 1 : 0;
      });
      Index m = measure[static_cast<std::size_t>(i)];
      m = std::max(Index{0}, m - dec) + inc;
      measure[static_cast<std::size_t>(i)] = m;
    }

    // Phase 4: clear this round's flags before rows leave the frontier, so
    // the next round's gathers see only that round's decisions (the naive
    // reference zero-fills whole arrays; only frontier rows can be set).
#pragma omp parallel for schedule(static) num_threads(nt)
    for (std::int64_t f = 0; f < fn; ++f) {
      const Index i = frontier[static_cast<std::size_t>(f)];
      newc[static_cast<std::size_t>(i)] = 0;
      newf[static_cast<std::size_t>(i)] = 0;
    }

    compact_frontier(frontier, state);
  }

  return state_to_splitting(state);
}

}  // namespace

std::vector<double> coarsen_tie_weights(CoarsenWeights mode, Index n,
                                        std::uint64_t seed, int num_threads) {
  std::vector<double> w(static_cast<std::size_t>(n));
  if (mode == CoarsenWeights::kRngSequence) {
    Rng rng(seed);
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = rng.next_double();
    return w;
  }
  const int nt =
      n >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;
#pragma omp parallel for schedule(static) num_threads(nt)
  for (Index i = 0; i < n; ++i) {
    w[static_cast<std::size_t>(i)] = hash_weight(seed, i);
  }
  return w;
}

std::uint64_t coarsen_level_seed(std::uint64_t seed, Index level) {
  std::uint64_t state =
      seed ^ (0xd1b54a32d192ed03ull * (static_cast<std::uint64_t>(level) + 1));
  return splitmix64(state);
}

Splitting coarsen_rs_rounds(const CsrMatrix& s, int num_threads) {
  const CsrMatrix st = s.transpose(num_threads);
  return rs_rounds_parallel(s, st, num_threads);
}

Splitting coarsen_parallel(const CsrMatrix& s, const CoarsenParams& p) {
  const CsrMatrix st = s.transpose(p.num_threads);
  switch (p.algo) {
    case CoarsenAlgo::kRS:
      return rs_rounds_parallel(s, st, p.num_threads);
    case CoarsenAlgo::kPMIS: {
      const std::vector<double> w =
          coarsen_tie_weights(p.weights, s.rows(), p.seed, p.num_threads);
      return pmis_rounds_parallel(s, st, w, {}, p.num_threads);
    }
    case CoarsenAlgo::kHMIS: {
      const Splitting seeds = rs_rounds_parallel(s, st, p.num_threads);
      const std::vector<double> w =
          coarsen_tie_weights(p.weights, s.rows(), p.seed, p.num_threads);
      return pmis_rounds_parallel(s, st, w, seeds, p.num_threads);
    }
  }
  throw std::invalid_argument("unknown coarsening algorithm");
}

namespace {

/// Naive serial RS rounds: full sweeps over all rows, no frontier. Mirrors
/// rs_rounds_parallel's phase semantics exactly.
Splitting rs_rounds_naive(const CsrMatrix& s, const CsrMatrix& st) {
  const Index n = s.rows();
  std::vector<std::int8_t> state(static_cast<std::size_t>(n), kUndecided);
  std::vector<Index> measure(static_cast<std::size_t>(n), 0);
  Index undecided = 0;
  for (Index i = 0; i < n; ++i) {
    const Index infl = st.row_ptr()[i + 1] - st.row_ptr()[i];
    measure[static_cast<std::size_t>(i)] = infl;
    const bool isolated = infl == 0 && s.row_ptr()[i + 1] == s.row_ptr()[i];
    if (isolated) {
      state[static_cast<std::size_t>(i)] = kF;
    } else {
      ++undecided;
    }
  }

  std::vector<std::int8_t> newc(static_cast<std::size_t>(n));
  std::vector<std::int8_t> newf(static_cast<std::size_t>(n));
  while (undecided > 0) {
    std::fill(newc.begin(), newc.end(), std::int8_t{0});
    std::fill(newf.begin(), newf.end(), std::int8_t{0});
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      bool is_max = true;
      auto check = [&](Index j) {
        if (!is_max || state[static_cast<std::size_t>(j)] != kUndecided) return;
        const Index mi = measure[static_cast<std::size_t>(i)];
        const Index mj = measure[static_cast<std::size_t>(j)];
        if (mj > mi || (mj == mi && j < i)) is_max = false;
      };
      for_row(s, i, check);
      for_row(st, i, check);
      newc[static_cast<std::size_t>(i)] = is_max ? 1 : 0;
    }
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      if (newc[static_cast<std::size_t>(i)] != 0) {
        state[static_cast<std::size_t>(i)] = kC;
        --undecided;
        continue;
      }
      bool dep = false;
      for_row(s, i, [&](Index j) {
        if (newc[static_cast<std::size_t>(j)] != 0) dep = true;
      });
      if (dep) {
        newf[static_cast<std::size_t>(i)] = 1;
        state[static_cast<std::size_t>(i)] = kF;
        --undecided;
      }
    }
    for (Index i = 0; i < n; ++i) {
      if (state[static_cast<std::size_t>(i)] != kUndecided) continue;
      Index inc = 0;
      Index dec = 0;
      for_row(st, i, [&](Index j) {
        inc += (newf[static_cast<std::size_t>(j)] != 0) ? 1 : 0;
        dec += (newc[static_cast<std::size_t>(j)] != 0) ? 1 : 0;
      });
      Index m = measure[static_cast<std::size_t>(i)];
      m = std::max(Index{0}, m - dec) + inc;
      measure[static_cast<std::size_t>(i)] = m;
    }
  }
  return state_to_splitting(state);
}

}  // namespace

Splitting coarsen_parallel_oracle(const CsrMatrix& s, const CoarsenParams& p) {
  const CsrMatrix st = s.transpose();
  switch (p.algo) {
    case CoarsenAlgo::kRS:
      return rs_rounds_naive(s, st);
    case CoarsenAlgo::kPMIS: {
      const std::vector<double> w =
          coarsen_tie_weights(p.weights, s.rows(), p.seed, 1);
      return coarsen_pmis_weighted(s, w);
    }
    case CoarsenAlgo::kHMIS: {
      const Splitting seeds = rs_rounds_naive(s, st);
      const std::vector<double> w =
          coarsen_tie_weights(p.weights, s.rows(), p.seed, 1);
      return coarsen_pmis_weighted(s, w, seeds);
    }
  }
  throw std::invalid_argument("unknown coarsening algorithm");
}

namespace {

/// Shared second-stage plumbing: extract the C-point distance-2 subgraph
/// (deterministic two-pass parallel assembly), coarsen it with `sub_coarsen`,
/// and map the surviving C points back to the fine numbering.
template <typename SubCoarsen>
Splitting aggressive_stage(const CsrMatrix& s, const Splitting& first,
                           int num_threads, SubCoarsen&& sub_coarsen) {
  const Index n = s.rows();
  std::vector<Index> cnum = coarse_numbering(first);
  const Index nc = count_coarse(first);
  if (nc == 0) return first;
  std::vector<Index> cinv(static_cast<std::size_t>(nc));
  for (Index i = 0; i < n; ++i) {
    if (cnum[static_cast<std::size_t>(i)] >= 0) {
      cinv[static_cast<std::size_t>(cnum[static_cast<std::size_t>(i)])] = i;
    }
  }

  const CsrMatrix s2 = strength_distance2(s, num_threads);
  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      nc, num_threads, "coarsen_aggressive", row_ptr, col_idx, values, [&] {
        return [&](Index ic, std::vector<Index>& cols,
                   std::vector<double>& vals) {
          const Index i = cinv[static_cast<std::size_t>(ic)];
          for_row(s2, i, [&](Index j) {
            const Index jc = cnum[static_cast<std::size_t>(j)];
            if (jc >= 0 && jc != ic) {
              cols.push_back(jc);
              vals.push_back(1.0);
            }
          });
        };
      });
  const CsrMatrix sub = CsrMatrix::from_csr(
      nc, nc, std::move(row_ptr), std::move(col_idx), std::move(values));

  const Splitting sub_split = sub_coarsen(sub);

  Splitting out(static_cast<std::size_t>(n), PointType::kFine);
  for (Index ic = 0; ic < nc; ++ic) {
    if (sub_split[static_cast<std::size_t>(ic)] == PointType::kCoarse) {
      out[static_cast<std::size_t>(cinv[static_cast<std::size_t>(ic)])] =
          PointType::kCoarse;
    }
  }
  return out;
}

}  // namespace

Splitting coarsen_aggressive(CoarsenAlgo algo, const CsrMatrix& s,
                             const Splitting& first, Rng& rng,
                             int num_threads) {
  return aggressive_stage(s, first, num_threads, [&](const CsrMatrix& sub) {
    return coarsen(algo, sub, rng);
  });
}

Splitting coarsen_aggressive_parallel(const CsrMatrix& s,
                                      const Splitting& first,
                                      const CoarsenParams& p) {
  CoarsenParams sub_p = p;
  // Salt the seed so the second stage draws independent tie-break weights.
  sub_p.seed = p.seed ^ 0xa5a5a5a55a5a5a5aull;
  return aggressive_stage(s, first, p.num_threads, [&](const CsrMatrix& sub) {
    return coarsen_parallel(sub, sub_p);
  });
}

Index count_coarse(const Splitting& split) {
  Index c = 0;
  for (PointType p : split) c += (p == PointType::kCoarse) ? 1 : 0;
  return c;
}

std::vector<Index> coarse_numbering(const Splitting& split) {
  std::vector<Index> num(split.size(), -1);
  Index next = 0;
  for (std::size_t i = 0; i < split.size(); ++i) {
    if (split[i] == PointType::kCoarse) num[i] = next++;
  }
  return num;
}

}  // namespace asyncmg
