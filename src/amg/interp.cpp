#include "amg/interp.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sparse/parallel.hpp"

namespace asyncmg {

namespace {

constexpr double kTiny = 1e-300;

/// Guard for the interpolation denominators: lumping mixed-sign weak
/// connections into the diagonal can cancel it toward zero (or flip its
/// sign), which would make interpolation weights unbounded. Clamp the
/// effective diagonal to keep a_ii's sign and at least a tenth of its
/// magnitude; for M-matrices the clamp never activates.
inline double guarded_diag(double lumped, double aii) {
  const double floor_mag = 0.1 * std::abs(aii);
  if (aii >= 0.0) return std::max(lumped, floor_mag);
  return std::min(lumped, -floor_mag);
}

/// Marks the strong columns of row i of S in `stamp` using stamp `i`.
void stamp_strong(const CsrMatrix& s, Index i, std::vector<Index>& stamp) {
  const auto rp = s.row_ptr();
  const auto ci = s.col_idx();
  for (Index k = rp[i]; k < rp[i + 1]; ++k) {
    stamp[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])] = i;
  }
}

}  // namespace

CsrMatrix interp_direct(const CsrMatrix& a, const CsrMatrix& s,
                        const Splitting& split, int num_threads) {
  const Index n = a.rows();
  const std::vector<Index> cnum = coarse_numbering(split);
  const Index nc = count_coarse(split);

  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();

  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      n, num_threads, "interp_direct", row_ptr, col_idx, values, [&] {
        return [&, strong_stamp =
                       std::vector<Index>(static_cast<std::size_t>(n), -1)](
                   Index i, std::vector<Index>& cols,
                   std::vector<double>& vals) mutable {
          if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) {
            cols.push_back(cnum[static_cast<std::size_t>(i)]);
            vals.push_back(1.0);
            return;
          }
          stamp_strong(s, i, strong_stamp);

          // Sum positive/negative off-diagonals over the whole row and over
          // the strong C subset.
          double diag = 0.0, sum_n = 0.0, sum_p = 0.0, sum_cn = 0.0,
                 sum_cp = 0.0;
          for (Index k = arp[i]; k < arp[i + 1]; ++k) {
            const Index j = aci[static_cast<std::size_t>(k)];
            const double v = av[static_cast<std::size_t>(k)];
            if (j == i) {
              diag = v;
              continue;
            }
            (v < 0 ? sum_n : sum_p) += v;
            const bool strong_c =
                strong_stamp[static_cast<std::size_t>(j)] == i &&
                split[static_cast<std::size_t>(j)] == PointType::kCoarse;
            if (strong_c) (v < 0 ? sum_cn : sum_cp) += v;
          }
          // No strong C neighbors: this F point gets no coarse correction.
          if (std::abs(sum_cn) < kTiny && std::abs(sum_cp) < kTiny) return;
          const double alpha = std::abs(sum_cn) > kTiny ? sum_n / sum_cn : 0.0;
          double beta = 0.0;
          if (std::abs(sum_cp) > kTiny) {
            beta = sum_p / sum_cp;
          } else {
            diag += sum_p;  // no positive C entries: lump into diagonal
          }
          if (std::abs(diag) < kTiny) return;
          for (Index k = arp[i]; k < arp[i + 1]; ++k) {
            const Index j = aci[static_cast<std::size_t>(k)];
            const double v = av[static_cast<std::size_t>(k)];
            if (j == i) continue;
            const bool strong_c =
                strong_stamp[static_cast<std::size_t>(j)] == i &&
                split[static_cast<std::size_t>(j)] == PointType::kCoarse;
            if (!strong_c) continue;
            const double w = -((v < 0 ? alpha : beta) * v) / diag;
            if (w != 0.0) {
              cols.push_back(cnum[static_cast<std::size_t>(j)]);
              vals.push_back(w);
            }
          }
        };
      });
  return CsrMatrix::from_csr(n, nc, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix interp_classical_modified(const CsrMatrix& a, const CsrMatrix& s,
                                    const Splitting& split, int num_threads) {
  const Index n = a.rows();
  const std::vector<Index> cnum = coarse_numbering(split);
  const Index nc = count_coarse(split);

  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();

  struct Scratch {
    std::vector<Index> strong_stamp;
    // Accumulator over coarse columns for the numerators, stamped per row.
    std::vector<double> num;
    std::vector<Index> num_stamp;
    std::vector<Index> row_cols;
  };

  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      n, num_threads, "interp_classical_modified", row_ptr, col_idx, values,
      [&] {
        Scratch sc;
        sc.strong_stamp.assign(static_cast<std::size_t>(n), -1);
        sc.num.assign(static_cast<std::size_t>(n), 0.0);
        sc.num_stamp.assign(static_cast<std::size_t>(n), -1);
        return [&, sc = std::move(sc)](Index i, std::vector<Index>& cols,
                                       std::vector<double>& vals) mutable {
          if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) {
            cols.push_back(cnum[static_cast<std::size_t>(i)]);
            vals.push_back(1.0);
            return;
          }
          stamp_strong(s, i, sc.strong_stamp);
          sc.row_cols.clear();

          auto is_strong = [&](Index j) {
            return sc.strong_stamp[static_cast<std::size_t>(j)] == i;
          };
          auto is_strong_c = [&](Index j) {
            return is_strong(j) &&
                   split[static_cast<std::size_t>(j)] == PointType::kCoarse;
          };

          auto add_num = [&](Index j, double v) {
            if (sc.num_stamp[static_cast<std::size_t>(j)] != i) {
              sc.num_stamp[static_cast<std::size_t>(j)] = i;
              sc.num[static_cast<std::size_t>(j)] = 0.0;
              sc.row_cols.push_back(j);
            }
            sc.num[static_cast<std::size_t>(j)] += v;
          };

          double diag = 0.0;
          double aii = 0.0;
          // First pass over the row: direct C contributions, weak lumping,
          // and the list of strong F neighbors to distribute.
          for (Index k = arp[i]; k < arp[i + 1]; ++k) {
            const Index j = aci[static_cast<std::size_t>(k)];
            const double v = av[static_cast<std::size_t>(k)];
            if (j == i) {
              diag += v;
              aii = v;
            } else if (is_strong_c(j)) {
              add_num(j, v);
            } else if (is_strong(j)) {
              // Strong F neighbor m: distribute a_im over the C points common
              // to rows i and m; if none, lump into the diagonal (the
              // "modified" classical rule). Only common entries whose sign
              // opposes m's diagonal participate: summing mixed-sign entries
              // can cancel to (near) zero and produce unbounded weights (this
              // bites on the elasticity set, whose rows have both signs). For
              // M-matrices the restriction is a no-op.
              const Index m = j;
              double m_diag = 0.0;
              for (Index k2 = arp[m]; k2 < arp[m + 1]; ++k2) {
                if (aci[static_cast<std::size_t>(k2)] == m) {
                  m_diag = av[static_cast<std::size_t>(k2)];
                  break;
                }
              }
              auto participates = [&](double amk) {
                return m_diag > 0.0 ? amk < 0.0 : amk > 0.0;
              };
              double common = 0.0;
              for (Index k2 = arp[m]; k2 < arp[m + 1]; ++k2) {
                const Index c = aci[static_cast<std::size_t>(k2)];
                const double amk = av[static_cast<std::size_t>(k2)];
                if (c != m && is_strong_c(c) && participates(amk)) {
                  common += amk;
                }
              }
              if (std::abs(common) < kTiny) {
                diag += v;
              } else {
                for (Index k2 = arp[m]; k2 < arp[m + 1]; ++k2) {
                  const Index c = aci[static_cast<std::size_t>(k2)];
                  const double amk = av[static_cast<std::size_t>(k2)];
                  if (c != m && is_strong_c(c) && participates(amk)) {
                    add_num(c, v * amk / common);
                  }
                }
              }
            } else {
              diag += v;  // weak connection: lump into the diagonal
            }
          }

          diag = guarded_diag(diag, aii);
          if (std::abs(diag) < kTiny || sc.row_cols.empty()) return;
          std::sort(sc.row_cols.begin(), sc.row_cols.end());
          for (Index j : sc.row_cols) {
            const double w = -sc.num[static_cast<std::size_t>(j)] / diag;
            if (w != 0.0) {
              cols.push_back(cnum[static_cast<std::size_t>(j)]);
              vals.push_back(w);
            }
          }
        };
      });
  return CsrMatrix::from_csr(n, nc, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix interp_multipass(const CsrMatrix& a, const CsrMatrix& s,
                           const Splitting& split, int num_threads) {
  const Index n = a.rows();
  const std::vector<Index> cnum = coarse_numbering(split);
  const Index nc = count_coarse(split);

  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  const auto srp = s.row_ptr();
  const auto sci = s.col_idx();
  const int nt =
      n >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  // Per-row interpolation stencils built pass by pass.
  std::vector<std::vector<std::pair<Index, double>>> rows(
      static_cast<std::size_t>(n));
  std::vector<char> assigned(static_cast<std::size_t>(n), 0);

  // Pass 0: C points.
  for (Index i = 0; i < n; ++i) {
    if (split[static_cast<std::size_t>(i)] == PointType::kCoarse) {
      rows[static_cast<std::size_t>(i)] = {
          {cnum[static_cast<std::size_t>(i)], 1.0}};
      assigned[static_cast<std::size_t>(i)] = 1;
    }
  }

  // Pass 1: F points with at least one strong C neighbor -> direct interp.
  const CsrMatrix p_direct = interp_direct(a, s, split, num_threads);
  const auto drp = p_direct.row_ptr();
  const auto dci = p_direct.col_idx();
  const auto dv = p_direct.values();
  for (Index i = 0; i < n; ++i) {
    if (assigned[static_cast<std::size_t>(i)]) continue;
    if (drp[i + 1] > drp[i]) {
      auto& r = rows[static_cast<std::size_t>(i)];
      for (Index k = drp[i]; k < drp[i + 1]; ++k) {
        r.emplace_back(dci[static_cast<std::size_t>(k)],
                       dv[static_cast<std::size_t>(k)]);
      }
      assigned[static_cast<std::size_t>(i)] = 1;
    }
  }

  // Later passes: distribute through already-assigned strong neighbors.
  // Each pass reads the previous passes' `assigned`/`rows` and writes only
  // its own candidates' rows, so candidates are independent within a pass;
  // the `pending` flags commit after the pass to keep passes identical to
  // the serial schedule.
  std::vector<char> pending(static_cast<std::size_t>(n), 0);
  bool progress = true;
  while (progress) {
    progress = false;
#pragma omp parallel num_threads(nt)
    {
      std::vector<double> acc(static_cast<std::size_t>(nc), 0.0);
      std::vector<Index> stamp(static_cast<std::size_t>(nc), -1);
      std::vector<Index> cols;
#pragma omp for schedule(static)
      for (Index i = 0; i < n; ++i) {
        if (assigned[static_cast<std::size_t>(i)]) continue;
        // Strong neighbors already assigned?
        bool any = false;
        for (Index k = srp[i]; k < srp[i + 1]; ++k) {
          if (assigned[static_cast<std::size_t>(
                  sci[static_cast<std::size_t>(k)])]) {
            any = true;
            break;
          }
        }
        if (!any) continue;

        cols.clear();
        double diag = 0.0;
        double aii = 0.0;
        for (Index k = arp[i]; k < arp[i + 1]; ++k) {
          const Index j = aci[static_cast<std::size_t>(k)];
          const double v = av[static_cast<std::size_t>(k)];
          if (j == i) {
            diag += v;
            aii = v;
            continue;
          }
          // Strong assigned neighbor: distribute through its stencil.
          bool strong = false;
          for (Index k2 = srp[i]; k2 < srp[i + 1]; ++k2) {
            if (sci[static_cast<std::size_t>(k2)] == j) {
              strong = true;
              break;
            }
          }
          if (strong && assigned[static_cast<std::size_t>(j)]) {
            for (const auto& [c, w] : rows[static_cast<std::size_t>(j)]) {
              if (stamp[static_cast<std::size_t>(c)] != i) {
                stamp[static_cast<std::size_t>(c)] = i;
                acc[static_cast<std::size_t>(c)] = 0.0;
                cols.push_back(c);
              }
              acc[static_cast<std::size_t>(c)] += v * w;
            }
          } else {
            diag += v;  // weak or unassigned: lump
          }
        }
        diag = guarded_diag(diag, aii);
        if (std::abs(diag) < kTiny || cols.empty()) continue;
        auto& r = rows[static_cast<std::size_t>(i)];
        std::sort(cols.begin(), cols.end());
        for (Index c : cols) {
          const double w = -acc[static_cast<std::size_t>(c)] / diag;
          if (w != 0.0) r.emplace_back(c, w);
        }
        pending[static_cast<std::size_t>(i)] = 1;
      }
    }
    for (Index i = 0; i < n; ++i) {
      if (pending[static_cast<std::size_t>(i)]) {
        pending[static_cast<std::size_t>(i)] = 0;
        assigned[static_cast<std::size_t>(i)] = 1;
        progress = true;
      }
    }
  }

  std::vector<std::size_t> counts(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) {
    counts[static_cast<std::size_t>(i)] = rows[static_cast<std::size_t>(i)].size();
  }
  std::vector<Index> row_ptr;
  const std::size_t total =
      prefix_sum_row_counts(counts, row_ptr, "interp_multipass");
  std::vector<Index> col_idx(total);
  std::vector<double> values(total);
  for (Index i = 0; i < n; ++i) {
    auto out = static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
    for (const auto& [c, w] : rows[static_cast<std::size_t>(i)]) {
      col_idx[out] = c;
      values[out] = w;
      ++out;
    }
  }
  return CsrMatrix::from_csr(n, nc, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix build_interpolation(InterpAlgo algo, const CsrMatrix& a,
                              const CsrMatrix& s, const Splitting& split,
                              int num_threads) {
  switch (algo) {
    case InterpAlgo::kDirect:
      return interp_direct(a, s, split, num_threads);
    case InterpAlgo::kClassicalModified:
      return interp_classical_modified(a, s, split, num_threads);
    case InterpAlgo::kMultipass:
      return interp_multipass(a, s, split, num_threads);
  }
  throw std::invalid_argument("unknown interpolation algorithm");
}

CsrMatrix truncate_interpolation(const CsrMatrix& p, double trunc,
                                 int num_threads) {
  if (trunc <= 0.0) return p;
  const Index n = p.rows();
  const auto rp = p.row_ptr();
  const auto ci = p.col_idx();
  const auto v = p.values();

  std::vector<Index> row_ptr;
  std::vector<Index> col_idx;
  std::vector<double> values;
  assemble_rows_blocked(
      n, num_threads, "truncate_interpolation", row_ptr, col_idx, values,
      [&] {
        return [&](Index i, std::vector<Index>& cols,
                   std::vector<double>& vals) {
          double maxabs = 0.0, pos = 0.0, neg = 0.0;
          for (Index k = rp[i]; k < rp[i + 1]; ++k) {
            const double val = v[static_cast<std::size_t>(k)];
            maxabs = std::max(maxabs, std::abs(val));
            (val > 0 ? pos : neg) += val;
          }
          const double cut = trunc * maxabs;
          double kept_pos = 0.0, kept_neg = 0.0;
          for (Index k = rp[i]; k < rp[i + 1]; ++k) {
            const double val = v[static_cast<std::size_t>(k)];
            if (std::abs(val) >= cut) (val > 0 ? kept_pos : kept_neg) += val;
          }
          const double scale_pos = kept_pos > kTiny ? pos / kept_pos : 1.0;
          const double scale_neg = kept_neg < -kTiny ? neg / kept_neg : 1.0;
          for (Index k = rp[i]; k < rp[i + 1]; ++k) {
            const double val = v[static_cast<std::size_t>(k)];
            if (std::abs(val) >= cut) {
              cols.push_back(ci[static_cast<std::size_t>(k)]);
              vals.push_back(val * (val > 0 ? scale_pos : scale_neg));
            }
          }
        };
      });
  return CsrMatrix::from_csr(n, p.cols(), std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

}  // namespace asyncmg
