#pragma once
// AMG setup phase: builds the grid hierarchy (A_k, P_{k+1}^k) from a fine
// matrix, mirroring the BoomerAMG options the paper uses (HMIS coarsening,
// aggressive coarsening on the finest level(s), classical modified
// interpolation, Galerkin coarse operators).

#include <cstdint>
#include <string>
#include <vector>

#include "amg/coarsen.hpp"
#include "amg/interp.hpp"
#include "amg/precision.hpp"
#include "amg/strength.hpp"
#include "sparse/csr.hpp"

namespace asyncmg {

struct AmgOptions {
  double strength_theta = 0.25;
  StrengthNorm strength_norm = StrengthNorm::kNegative;
  /// Unknown-based AMG for interleaved PDE systems (BoomerAMG's
  /// num_functions): strength ignores couplings between different
  /// components. Applied on the finest level only (coarse dofs lose the
  /// component structure under C-point renumbering).
  int num_functions = 1;
  CoarsenAlgo coarsening = CoarsenAlgo::kHMIS;
  /// C/F splitting implementation (coarsen.hpp). kParallel (default) runs
  /// the row-parallel frontier rounds, bit-identical for every
  /// setup_threads value; kSerialOracle runs the original sequential
  /// algorithms (heap RS, rng-sequence PMIS) kept verbatim as the oracle.
  /// The two modes produce different (both valid) hierarchies.
  CoarsenMode coarsen_mode = CoarsenMode::kParallel;
  /// Tie-break weight source of the parallel rounds (ignored by the serial
  /// oracle). kHash has no serial dependency at all.
  CoarsenWeights coarsen_weights = CoarsenWeights::kHash;
  InterpAlgo interpolation = InterpAlgo::kClassicalModified;
  /// Aggressive (distance-2) coarsening is applied on this many of the
  /// finest levels, with multipass interpolation (as in BoomerAMG).
  int num_aggressive_levels = 0;
  /// Interpolation truncation threshold (relative to the row max).
  double trunc_factor = 0.2;
  Index max_levels = 25;
  /// Stop coarsening when a grid has at most this many rows.
  Index coarse_size = 64;
  /// Stop when coarsening stalls (nc/n above this ratio).
  double max_coarsen_ratio = 0.9;
  std::uint64_t seed = 42;
  /// Thread count for the setup-phase kernels (strength, interpolation,
  /// transpose, SpGEMM/RAP). 0 means the OpenMP default; the SolveService
  /// defaults it to its pool size so cache-miss setups use the pool's
  /// budget instead of oversubscribing. Every value yields a bit-identical
  /// hierarchy (see DESIGN.md on setup determinism).
  int setup_threads = 0;
  /// Per-level stored scalar width (DESIGN.md section 12). Setup always
  /// runs in fp64; the policy demotes coarse operators/interpolants at the
  /// end of build(), so fresh builds and spill-reloaded hierarchies see
  /// identical (rounded) values. Defaults to all-fp64 unless the
  /// ASYNCMG_PRECISION environment variable overrides it; assign
  /// `PrecisionPolicy{}` to pin the fp64 oracle regardless of environment.
  PrecisionPolicy precision = default_precision_policy();
};

/// One level of the hierarchy. `p` interpolates from level k+1 to level k
/// and is absent (empty) on the coarsest level.
struct AmgLevel {
  CsrMatrix a;
  CsrMatrix p;
  Splitting split;
};

class Hierarchy {
 public:
  /// Runs the full setup phase.
  static Hierarchy build(CsrMatrix a_fine, const AmgOptions& opts = {});

  /// Assembles a hierarchy from explicit levels (geometric builders,
  /// deserialization). Validates the chain: level k's interpolation must
  /// map level k+1's rows to level k's, and the coarsest level must have
  /// no interpolation.
  static Hierarchy from_levels(std::vector<AmgLevel> levels);

  std::size_t num_levels() const { return levels_.size(); }
  const AmgLevel& level(std::size_t k) const { return levels_[k]; }
  AmgLevel& level(std::size_t k) { return levels_[k]; }
  const CsrMatrix& matrix(std::size_t k) const { return levels_[k].a; }
  const CsrMatrix& interpolation(std::size_t k) const { return levels_[k].p; }

  /// Sum of nnz(A_k) over all levels divided by nnz(A_0).
  double operator_complexity() const;
  /// Sum of rows(A_k) over all levels divided by rows(A_0).
  double grid_complexity() const;

  /// Multi-line human-readable summary of the hierarchy.
  std::string summary() const;

 private:
  friend class HierarchyBuilder;
  std::vector<AmgLevel> levels_;
};

/// Resumable level-by-level setup (DESIGN.md section 13). Each step() runs
/// one coarsening iteration: strength + C/F splitting + interpolation +
/// Galerkin product, appending one coarse level. The background setup
/// pipeline drives steps on pool lanes and serves truncated snapshots of
/// the finished prefix; finish() is bit-identical to Hierarchy::build
/// (which delegates here), including the end-of-build precision demotion.
///
/// Not thread-safe: callers serialize step()/finish() against
/// snapshot_prefix() externally (BackgroundSetup holds the lock).
class HierarchyBuilder {
 public:
  HierarchyBuilder(CsrMatrix a_fine, const AmgOptions& opts = {});

  /// True once no further coarse level will be appended.
  bool done() const { return done_; }

  /// Number of levels currently built (>= 1 from construction on).
  std::size_t levels_built() const { return levels_.size(); }

  /// Rows of the current coarsest level (the next step coarsens it).
  Index coarsest_rows() const { return levels_.back().a.rows(); }

  /// Builds one more coarse level. Returns false when the hierarchy is
  /// complete (and from then on). Stored values stay fp64 until finish().
  bool step();

  /// Copies the first `k` finished levels (1 <= k <= levels_built()) into a
  /// standalone truncated hierarchy: the k-th level becomes a temporary
  /// coarsest (its pending interpolation is dropped). Values are the
  /// builder's working fp64 state; the precision policy only applies to the
  /// finished hierarchy.
  Hierarchy snapshot_prefix(std::size_t k) const;

  /// Runs any remaining steps, applies the precision policy, and returns
  /// the finished hierarchy. The builder is consumed.
  Hierarchy finish();

 private:
  AmgOptions opts_;
  Rng rng_;                 // serial-oracle tie-break stream
  std::vector<AmgLevel> levels_;
  std::vector<int> funcs_;  // unknown-based AMG component map
  Index lvl_ = 0;
  bool done_ = false;
};

}  // namespace asyncmg
