#pragma once
// The paper's four smoothers (Section V):
//
//   weighted Jacobi   M = D / omega
//   l1-Jacobi         M = diag(sum_j |a_ij|)
//   hybrid JGS        M = blockdiag(L_1..L_p): one Gauss-Seidel sweep inside
//                     each of p row blocks (p = threads), Jacobi across
//   async GS          the asynchronous version of hybrid JGS: each thread
//                     relaxes its rows writing updates immediately; reads of
//                     other blocks' entries may be new or old
//
// A Smoother is bound to one matrix. Two operations matter to multigrid:
//   apply_zero:  e = Lambda r   (one sweep on A e = r from a zero guess)
//   sweep:       x <- x + M^{-1}(b - A x)
// Block/range forms exist for the per-grid thread teams of the async
// runtime; the block decomposition is the same static row partition the
// teams use, so hybrid JGS blocks coincide with thread ranges.

#include <cstddef>
#include <memory>
#include <string>

#include "backend/backend.hpp"
#include "sparse/csr.hpp"
#include "util/partition.hpp"

namespace asyncmg {

// kL1HybridJGS is the l1 variant of hybrid JGS from Baker et al. (the
// paper's reference [23]): the block diagonal is augmented with the l1 norm
// of each row's off-block entries, which makes the method unconditionally
// convergent for SPD matrices no matter how many blocks are used (plain
// hybrid JGS can diverge with many blocks, as the paper notes).
enum class SmootherType {
  kWeightedJacobi,
  kL1Jacobi,
  kHybridJGS,
  kAsyncGS,
  kL1HybridJGS,
};

std::string smoother_name(SmootherType t);

struct SmootherOptions {
  SmootherType type = SmootherType::kWeightedJacobi;
  /// Damping for weighted Jacobi (the paper uses .9 for the stencil sets and
  /// .5 for the MFEM sets).
  double omega = 0.9;
  /// Number of row blocks for hybrid JGS / async GS; the paper sets this to
  /// the number of threads assigned to the grid.
  std::size_t num_blocks = 1;
};

class Smoother {
 public:
  Smoother(const CsrMatrix& a, SmootherOptions opts);

  const CsrMatrix& matrix() const { return *a_; }
  SmootherType type() const { return opts_.type; }
  const SmootherOptions& options() const { return opts_; }
  std::size_t num_blocks() const { return blocks_.size(); }
  const Range& block(std::size_t b) const { return blocks_[b]; }

  /// Diagonal scaling of the sweep: entry i is omega/d_ii (Jacobi),
  /// 1/sum|a_ij| (l1), or 1/d_ii (JGS family). This is the diagonal D~^{-1}
  /// in the iteration matrix G = I - D~^{-1} A used for Jacobi-type
  /// smoothed interpolants.
  const Vector& inv_diag() const { return inv_diag_; }

  /// Kernel backend for the workspace sweeps' bulk kernels (fused diagonal
  /// sweep, residual). MgSetup points every level's smoother at its resolved
  /// backend; a default-constructed Smoother runs the scalar oracle. Only
  /// whole-matrix kernels route through the backend — the block GS
  /// substitutions are serial dependence chains and stay scalar.
  void set_backend(const KernelBackend* be) {
    be_ = be != nullptr ? be : &scalar_backend();
  }
  const KernelBackend& backend() const { return *be_; }

  /// e = Lambda r: one sweep on A e = r with zero initial guess, all rows.
  void apply_zero(const Vector& r, Vector& e) const;

  /// Block form of apply_zero for thread teams: computes e over the rows of
  /// block `blk` only. For kAsyncGS the block reads `e` live (entries of
  /// other blocks may be mid-update); for the other types it touches only
  /// its own rows.
  void apply_zero_block(const Vector& r, Vector& e, std::size_t blk) const;

  /// One sweep x <- x + M^{-1}(b - A x) over all rows (synchronous).
  void sweep(const Vector& b, Vector& x) const;

  /// Transposed sweep x <- x + M^{-T}(b - A x). Post-smoothing with M^T
  /// makes the multiplicative V(1,1)-cycle symmetric (G^T post-smoothing in
  /// Section II-B1). Identical to sweep() for the diagonal smoothers.
  void sweep_transpose(const Vector& b, Vector& x) const;

  /// One live asynchronous Gauss-Seidel sweep over block `blk` of A x = b,
  /// updating x in place through relaxed atomics (entries owned by other
  /// threads may be read mid-update). This is the in-place counterpart of
  /// apply_zero_block for kAsyncGS; usable with any smoother type's block
  /// decomposition but always relaxes GS-style.
  void async_gs_sweep_block(const Vector& b, Vector& x, std::size_t blk) const;

  /// `n` successive sweeps with zero initial guess (x is overwritten);
  /// n >= 1. Used by AFACx V(s1/s2,0) inner smoothing.
  void smooth_zero(const Vector& b, Vector& x, int sweeps) const;

  // Allocation-free variants for the solve-phase kernel engine: scratch
  // buffers come from the caller's workspace (resized on first use, no
  // reallocation once warm) and results are bitwise identical to the
  // allocating forms at every thread count. Scratch contents are garbage on
  // return; sweep_ws may swap `x` with `scratch` (Jacobi ping-pong), so
  // both must be caller-owned plain buffers.

  /// sweep() without heap allocation; Jacobi-family types run as one fused
  /// read-A-once pass (kernels.hpp fusion identities).
  void sweep_ws(const Vector& b, Vector& x, Vector& scratch) const;

  /// sweep_transpose() without heap allocation (two scratch buffers: the
  /// residual and the triangular solve).
  void sweep_transpose_ws(const Vector& b, Vector& x, Vector& scratch,
                          Vector& scratch2) const;

  /// smooth_zero() without heap allocation.
  void smooth_zero_ws(const Vector& b, Vector& x, int sweeps,
                      Vector& scratch) const;

  /// e = Mbar^{-1} r with the symmetrized smoothing matrix
  /// Mbar^{-1} = M^{-T} (M + M^T - A) M^{-1} (Section II-B1). With this
  /// choice Multadd is mathematically equivalent to a symmetric
  /// multiplicative V(1,1)-cycle; used by tests and the `exact` Multadd
  /// variant. (kAsyncGS uses its hybrid-JGS matrix.)
  void apply_symmetrized(const Vector& r, Vector& e) const;

  /// apply_symmetrized without heap allocation: the three internal
  /// temporaries come from the caller (identical arithmetic and results).
  void apply_symmetrized_ws(const Vector& r, Vector& e, Vector& scratch,
                            Vector& scratch2, Vector& scratch3) const;

 private:
  void sweep_jacobi_like(const Vector& b, Vector& x) const;
  void sweep_block_gs(const Vector& b, Vector& x) const;
  /// In-place blockdiag(L) e = r forward substitution (r becomes e); the
  /// shared tail of sweep_block_gs and sweep_ws.
  void block_lower_substitute(Vector& r) const;
  void triangular_apply_block(const Vector& r, Vector& e, std::size_t blk,
                              bool live) const;
  /// y = M^{-1} r and z = M^{-T} r for the symmetrized application.
  void lower_solve(const Vector& r, Vector& y) const;
  void upper_solve(const Vector& r, Vector& y) const;

  const CsrMatrix* a_;
  const KernelBackend* be_ = &scalar_backend();
  SmootherOptions opts_;
  Vector inv_diag_;
  Vector diag_;  // plain matrix diagonal
  std::vector<Range> blocks_;
};

/// Smoothed interpolant Pbar = (I - D~^{-1} A) P where D~ is the Jacobi-type
/// diagonal of `smoother_type` (omega-Jacobi or l1-Jacobi; the paper keeps
/// Jacobi-type interpolants even for hybrid/async smoothing, for sparsity).
CsrMatrix smoothed_interpolant(const CsrMatrix& a, const CsrMatrix& p,
                               SmootherType smoother_type, double omega,
                               int num_threads = 0);

}  // namespace asyncmg
