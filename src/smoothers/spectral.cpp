#include "smoothers/spectral.hpp"

#include <cmath>
#include <stdexcept>

#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {

double spectral_radius_iteration(const Smoother& smoother, int iterations,
                                 std::uint64_t seed) {
  const std::size_t n = static_cast<std::size_t>(smoother.matrix().rows());
  Rng rng(seed);
  Vector e = random_vector(n, rng);
  const Vector zero(n, 0.0);
  double rho = 0.0;
  for (int it = 0; it < iterations; ++it) {
    const double before = norm2(e);
    if (before == 0.0) break;
    smoother.sweep(zero, e);  // e <- G e
    const double after = norm2(e);
    rho = after / before;
    if (after > 0.0) scale(e, 1.0 / after);
  }
  return rho;
}

double spectral_radius_abs_iteration(const Smoother& smoother, int iterations,
                                     std::uint64_t seed) {
  const SmootherType t = smoother.type();
  if (t != SmootherType::kWeightedJacobi && t != SmootherType::kL1Jacobi) {
    throw std::invalid_argument(
        "spectral_radius_abs_iteration: only diagonal smoothers");
  }
  const CsrMatrix& a = smoother.matrix();
  const Vector& d = smoother.inv_diag();
  const std::size_t n = static_cast<std::size_t>(a.rows());
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  // y = |G| x with G = I - D~ A; diagonal entries |1 - d_i a_ii|,
  // off-diagonals |d_i a_ij|. (A zero stored diagonal is handled by the
  // delta term either way.)
  auto apply_abs = [&](const Vector& x, Vector& y) {
    a.with_values([&](const auto* v) {
      for (std::size_t i = 0; i < n; ++i) {
        double s = 0.0;
        bool saw_diag = false;
        const auto row = static_cast<Index>(i);
        for (Index k = rp[row]; k < rp[row + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          const double g = (j == i)
                               ? 1.0 - d[i] * v[static_cast<std::size_t>(k)]
                               : -d[i] * v[static_cast<std::size_t>(k)];
          if (j == i) saw_diag = true;
          s += std::abs(g) * x[j];
        }
        if (!saw_diag) s += x[i];  // implicit identity contribution
        y[i] = s;
      }
    });
  };

  Rng rng(seed);
  Vector x(n);
  for (double& e : x) e = rng.uniform(0.5, 1.0);  // positive start vector
  Vector y(n);
  double rho = 0.0;
  for (int it = 0; it < iterations; ++it) {
    const double before = norm2(x);
    if (before == 0.0) break;
    apply_abs(x, y);
    const double after = norm2(y);
    rho = after / before;
    if (after > 0.0) {
      for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / after;
    }
  }
  return rho;
}

}  // namespace asyncmg
