#pragma once
// Multicolor Gauss-Seidel: a parallel GS variant that is *deterministic*
// (unlike async GS) — the graph of A is greedily colored, and a sweep
// relaxes color classes in order; rows of one color have no couplings to
// each other, so they can be updated concurrently without races. The paper
// cites multicoloring (Tai & Tseng [10]) as the classical way to make
// additive multigrid convergent; this class lets users compare that
// deterministic parallel smoother with the nondeterministic async GS.

#include <cstddef>
#include <vector>

#include "sparse/csr.hpp"

namespace asyncmg {

/// Greedy graph coloring of the sparsity pattern (natural order, smallest
/// admissible color). Returns one color id per row; colors are 0-based and
/// contiguous.
std::vector<int> greedy_coloring(const CsrMatrix& a);

class MulticolorGS {
 public:
  explicit MulticolorGS(const CsrMatrix& a);

  const CsrMatrix& matrix() const { return *a_; }
  int num_colors() const { return num_colors_; }
  const std::vector<int>& coloring() const { return color_; }

  /// e = one color-ordered GS sweep on A e = r from a zero initial guess.
  void apply_zero(const Vector& r, Vector& e) const;

  /// x <- x + sweep update: one full color-ordered GS sweep on A x = b.
  void sweep(const Vector& b, Vector& x) const;

  /// Rows of one color, for parallel execution of a color phase.
  const std::vector<Index>& color_rows(int color) const {
    return by_color_[static_cast<std::size_t>(color)];
  }

 private:
  const CsrMatrix* a_;
  Vector inv_diag_;
  std::vector<int> color_;
  std::vector<std::vector<Index>> by_color_;
  int num_colors_ = 0;
};

}  // namespace asyncmg
