#include "smoothers/multicolor.hpp"

#include <algorithm>
#include <stdexcept>

namespace asyncmg {

std::vector<int> greedy_coloring(const CsrMatrix& a) {
  const Index n = a.rows();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::vector<int> color(static_cast<std::size_t>(n), -1);
  std::vector<char> used;  // scratch: colors used by already-colored neighbors
  for (Index i = 0; i < n; ++i) {
    used.assign(used.size(), 0);
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      if (j == i) continue;
      const int cj = color[static_cast<std::size_t>(j)];
      if (cj >= 0) {
        if (static_cast<std::size_t>(cj) >= used.size()) {
          used.resize(static_cast<std::size_t>(cj) + 1, 0);
        }
        used[static_cast<std::size_t>(cj)] = 1;
      }
    }
    int c = 0;
    while (static_cast<std::size_t>(c) < used.size() &&
           used[static_cast<std::size_t>(c)]) {
      ++c;
    }
    color[static_cast<std::size_t>(i)] = c;
  }
  return color;
}

MulticolorGS::MulticolorGS(const CsrMatrix& a) : a_(&a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("MulticolorGS: matrix must be square");
  }
  const Vector d = a.diag();
  inv_diag_.resize(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (d[i] == 0.0) {
      throw std::invalid_argument("MulticolorGS: zero diagonal entry");
    }
    inv_diag_[i] = 1.0 / d[i];
  }
  color_ = greedy_coloring(a);
  num_colors_ = color_.empty()
                    ? 0
                    : 1 + *std::max_element(color_.begin(), color_.end());
  by_color_.resize(static_cast<std::size_t>(num_colors_));
  for (Index i = 0; i < a.rows(); ++i) {
    by_color_[static_cast<std::size_t>(color_[static_cast<std::size_t>(i)])]
        .push_back(i);
  }
}

void MulticolorGS::apply_zero(const Vector& r, Vector& e) const {
  e.assign(r.size(), 0.0);
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (const auto& rows : by_color_) {
      // Rows of one color have no mutual couplings: any execution order
      // (including concurrent) yields this exact result.
      for (Index i : rows) {
        double s = r[static_cast<std::size_t>(i)];
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (static_cast<Index>(j) != i) {
            s -= v[static_cast<std::size_t>(k)] * e[j];
          }
        }
        e[static_cast<std::size_t>(i)] =
            s * inv_diag_[static_cast<std::size_t>(i)];
      }
    }
  });
}

void MulticolorGS::sweep(const Vector& b, Vector& x) const {
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (const auto& rows : by_color_) {
      for (Index i : rows) {
        double s = b[static_cast<std::size_t>(i)];
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (static_cast<Index>(j) != i) {
            s -= v[static_cast<std::size_t>(k)] * x[j];
          }
        }
        x[static_cast<std::size_t>(i)] =
            s * inv_diag_[static_cast<std::size_t>(i)];
      }
    }
  });
}

}  // namespace asyncmg
