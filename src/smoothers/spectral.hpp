#pragma once
// Spectral estimates for smoother iteration matrices.
//
// Section II-C of the paper: an asynchronous fixed-point iteration with
// iteration matrix G converges if rho(|G|) < 1, where |G| is the
// element-wise absolute value. These helpers estimate both rho(G) (the
// synchronous rate) and rho(|G|) (the asynchronous condition) by power
// iteration, matrix-free.

#include <cstdint>

#include "smoothers/smoother.hpp"

namespace asyncmg {

/// Estimates rho(G), G = I - M^{-1} A, via power iteration on G (any
/// smoother type; uses sweeps with b = 0).
double spectral_radius_iteration(const Smoother& smoother, int iterations,
                                 std::uint64_t seed);

/// Estimates rho(|G|) for the *diagonal* smoothers (weighted Jacobi,
/// l1-Jacobi), where |G| has entries |delta_ij - d_i a_ij| and can be
/// applied matrix-free. Since |G| is nonnegative, power iteration from a
/// positive vector converges to the Perron root. Throws for block
/// smoothers (their M^{-1} A is not sparse).
double spectral_radius_abs_iteration(const Smoother& smoother, int iterations,
                                     std::uint64_t seed);

}  // namespace asyncmg
