#include "smoothers/smoother.hpp"

#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sparse/kernels.hpp"
#include "sparse/spgemm.hpp"

namespace asyncmg {

std::string smoother_name(SmootherType t) {
  switch (t) {
    case SmootherType::kWeightedJacobi:
      return "w-jacobi";
    case SmootherType::kL1Jacobi:
      return "l1-jacobi";
    case SmootherType::kHybridJGS:
      return "hybrid-jgs";
    case SmootherType::kAsyncGS:
      return "async-gs";
    case SmootherType::kL1HybridJGS:
      return "l1-hybrid-jgs";
  }
  return "unknown";
}

Smoother::Smoother(const CsrMatrix& a, SmootherOptions opts)
    : a_(&a), opts_(opts) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Smoother: matrix must be square");
  }
  diag_ = a.diag();
  for (double d : diag_) {
    if (d == 0.0) throw std::invalid_argument("Smoother: zero diagonal entry");
  }
  const std::size_t n = static_cast<std::size_t>(a.rows());
  inv_diag_.resize(n);
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
      for (std::size_t i = 0; i < n; ++i) inv_diag_[i] = opts_.omega / diag_[i];
      break;
    case SmootherType::kL1Jacobi: {
      const Vector l1 = a.l1_row_norms();
      for (std::size_t i = 0; i < n; ++i) inv_diag_[i] = 1.0 / l1[i];
      break;
    }
    case SmootherType::kHybridJGS:
    case SmootherType::kAsyncGS:
    case SmootherType::kL1HybridJGS:
      for (std::size_t i = 0; i < n; ++i) inv_diag_[i] = 1.0 / diag_[i];
      break;
  }
  const std::size_t nb = std::max<std::size_t>(1, opts_.num_blocks);
  blocks_ = static_chunks(n, std::min(nb, std::max<std::size_t>(1, n)));

  if (opts_.type == SmootherType::kL1HybridJGS) {
    // Augment each diagonal with the l1 norm of the row's off-block
    // entries (Baker et al.); depends on the block decomposition, so it
    // must happen after blocks_ is fixed.
    std::vector<std::size_t> block_of(n);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      for (std::size_t i = blocks_[b].begin; i < blocks_[b].end; ++i) {
        block_of[i] = b;
      }
    }
    const auto rp = a.row_ptr();
    const auto ci = a.col_idx();
    a.with_values([&](const auto* v) {
      for (std::size_t i = 0; i < n; ++i) {
        double off = 0.0;
        const auto row = static_cast<Index>(i);
        for (Index k = rp[row]; k < rp[row + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (block_of[j] != block_of[i]) {
            off += std::abs(static_cast<double>(v[static_cast<std::size_t>(k)]));
          }
        }
        diag_[i] += off;
        inv_diag_[i] = 1.0 / diag_[i];
      }
    });
  }
}

void Smoother::apply_zero(const Vector& r, Vector& e) const {
  const std::size_t n = static_cast<std::size_t>(a_->rows());
  assert(r.size() == n);
  e.assign(n, 0.0);
  for (std::size_t b = 0; b < blocks_.size(); ++b) apply_zero_block(r, e, b);
}

void Smoother::apply_zero_block(const Vector& r, Vector& e,
                                std::size_t blk) const {
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi: {
      const Range rg = blocks_[blk];
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        e[i] = inv_diag_[i] * r[i];
      }
      break;
    }
    case SmootherType::kHybridJGS:
    case SmootherType::kL1HybridJGS:
      triangular_apply_block(r, e, blk, /*live=*/false);
      break;
    case SmootherType::kAsyncGS:
      triangular_apply_block(r, e, blk, /*live=*/true);
      break;
  }
}

void Smoother::triangular_apply_block(const Vector& r, Vector& e,
                                      std::size_t blk, bool live) const {
  const Range rg = blocks_[blk];
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      double s = r[i];
      const auto row = static_cast<Index>(i);
      for (Index k = rp[row]; k < rp[row + 1]; ++k) {
        const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
        if (j == i) continue;
        double ej;
        if (live) {
          // Asynchronous Gauss-Seidel: read whatever value the owning thread
          // has published so far (relaxed atomic load; Eq. 5's mixed-age
          // reads). Our own block's earlier rows are always current.
          ej = std::atomic_ref<const double>(e[j]).load(
              std::memory_order_relaxed);
        } else {
          // Hybrid JGS: only earlier rows of *this* block contribute (the
          // block's strictly-lower triangle); everything else is the zero
          // initial guess.
          if (j < rg.begin || j >= i) continue;
          ej = e[j];
        }
        s -= v[static_cast<std::size_t>(k)] * ej;
      }
      const double val = s * inv_diag_[i];
      if (live) {
        std::atomic_ref<double>(e[i]).store(val, std::memory_order_relaxed);
      } else {
        e[i] = val;
      }
    }
  });
}

void Smoother::sweep(const Vector& b, Vector& x) const {
  const std::size_t n = static_cast<std::size_t>(a_->rows());
  assert(b.size() == n && x.size() == n);
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi:
      sweep_jacobi_like(b, x);
      break;
    case SmootherType::kHybridJGS:
    case SmootherType::kL1HybridJGS:
      sweep_block_gs(b, x);
      break;
    case SmootherType::kAsyncGS: {
      // Sequential execution of async GS is a plain forward Gauss-Seidel
      // sweep (every read returns the freshest value).
      const auto rp = a_->row_ptr();
      const auto ci = a_->col_idx();
      a_->with_values([&](const auto* v) {
        for (std::size_t i = 0; i < n; ++i) {
          double s = b[i];
          const auto row = static_cast<Index>(i);
          for (Index k = rp[row]; k < rp[row + 1]; ++k) {
            const auto j =
                static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
            if (j != i) s -= v[static_cast<std::size_t>(k)] * x[j];
          }
          x[i] = s * inv_diag_[i];
        }
      });
      break;
    }
  }
}

void Smoother::sweep_transpose(const Vector& b, Vector& x) const {
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi:
      sweep(b, x);  // M is diagonal, hence symmetric
      break;
    case SmootherType::kHybridJGS:
    case SmootherType::kAsyncGS:
    case SmootherType::kL1HybridJGS: {
      Vector r;
      a_->residual(b, x, r);
      Vector e;
      upper_solve(r, e);
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += e[i];
      break;
    }
  }
}

void Smoother::sweep_jacobi_like(const Vector& b, Vector& x) const {
  // Local scratch keeps const methods safe to call concurrently: one
  // Smoother per level is shared by every solver running on the setup.
  Vector r;
  a_->residual(b, x, r);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += inv_diag_[i] * r[i];
}

void Smoother::sweep_block_gs(const Vector& b, Vector& x) const {
  Vector r;
  a_->residual(b, x, r);
  block_lower_substitute(r);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += r[i];
}

void Smoother::block_lower_substitute(Vector& r) const {
  // Solve blockdiag(L) e = r in place of r; within a block this is a
  // forward substitution on the block's lower triangle.
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (const Range& rg : blocks_) {
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        double s = r[i];
        const auto row = static_cast<Index>(i);
        for (Index k = rp[row]; k < rp[row + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (j >= rg.begin && j < i) {
            s -= v[static_cast<std::size_t>(k)] * r[j];
          }
        }
        r[i] = s * inv_diag_[i];
      }
    }
  });
}

void Smoother::sweep_ws(const Vector& b, Vector& x, Vector& scratch) const {
  const std::size_t n = static_cast<std::size_t>(a_->rows());
  assert(b.size() == n && x.size() == n);
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi:
      // One fused pass over A; the new iterate lands in scratch and is
      // swapped in (in-place would turn Jacobi into Gauss-Seidel).
      be_->csr_diag_sweep(*a_, inv_diag_, b, x, scratch, /*parallel=*/true);
      x.swap(scratch);
      break;
    case SmootherType::kHybridJGS:
    case SmootherType::kL1HybridJGS:
      be_->csr_residual(*a_, b, x, scratch, /*parallel=*/true);
      block_lower_substitute(scratch);
      for (std::size_t i = 0; i < n; ++i) x[i] += scratch[i];
      break;
    case SmootherType::kAsyncGS:
      sweep(b, x);  // sequential forward GS is already in-place
      break;
  }
}

void Smoother::sweep_transpose_ws(const Vector& b, Vector& x, Vector& scratch,
                                  Vector& scratch2) const {
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi:
      sweep_ws(b, x, scratch);  // M diagonal, hence symmetric
      break;
    case SmootherType::kHybridJGS:
    case SmootherType::kAsyncGS:
    case SmootherType::kL1HybridJGS:
      be_->csr_residual(*a_, b, x, scratch, /*parallel=*/true);
      upper_solve(scratch, scratch2);
      for (std::size_t i = 0; i < x.size(); ++i) x[i] += scratch2[i];
      break;
  }
}

void Smoother::smooth_zero_ws(const Vector& b, Vector& x, int sweeps,
                              Vector& scratch) const {
  assert(sweeps >= 1);
  apply_zero(b, x);
  for (int s = 1; s < sweeps; ++s) sweep_ws(b, x, scratch);
}

void Smoother::async_gs_sweep_block(const Vector& b, Vector& x,
                                    std::size_t blk) const {
  const Range rg = blocks_[blk];
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      double s = b[i];
      const auto row = static_cast<Index>(i);
      for (Index k = rp[row]; k < rp[row + 1]; ++k) {
        const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
        if (j == i) continue;
        s -= v[static_cast<std::size_t>(k)] *
             std::atomic_ref<const double>(x[j]).load(
                 std::memory_order_relaxed);
      }
      std::atomic_ref<double>(x[i]).store(s * inv_diag_[i],
                                          std::memory_order_relaxed);
    }
  });
}

void Smoother::smooth_zero(const Vector& b, Vector& x, int sweeps) const {
  assert(sweeps >= 1);
  apply_zero(b, x);
  for (int s = 1; s < sweeps; ++s) sweep(b, x);
}

void Smoother::lower_solve(const Vector& r, Vector& y) const {
  // y = M^{-1} r where M = blockdiag(L) (diagonal included).
  const std::size_t n = r.size();
  y.assign(n, 0.0);
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (const Range& rg : blocks_) {
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        double s = r[i];
        const auto row = static_cast<Index>(i);
        for (Index k = rp[row]; k < rp[row + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (j >= rg.begin && j < i) {
            s -= v[static_cast<std::size_t>(k)] * y[j];
          }
        }
        y[i] = s / diag_[i];
      }
    }
  });
}

void Smoother::upper_solve(const Vector& r, Vector& y) const {
  // y = M^{-T} r: backward substitution on each block's upper triangle
  // (the transpose of blockdiag(L)). Assumes a symmetric sparsity pattern,
  // which holds for all our SPD test matrices: row i's upper entries are
  // the transpose's column entries.
  const std::size_t n = r.size();
  y.assign(n, 0.0);
  const auto rp = a_->row_ptr();
  const auto ci = a_->col_idx();
  a_->with_values([&](const auto* v) {
    for (const Range& rg : blocks_) {
      for (std::size_t ii = rg.end; ii-- > rg.begin;) {
        double s = r[ii];
        const auto row = static_cast<Index>(ii);
        for (Index k = rp[row]; k < rp[row + 1]; ++k) {
          const auto j =
              static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
          if (j > ii && j < rg.end) {
            s -= v[static_cast<std::size_t>(k)] * y[j];
          }
        }
        y[ii] = s / diag_[ii];
        if (ii == 0) break;
      }
    }
  });
}

void Smoother::apply_symmetrized(const Vector& r, Vector& e) const {
  Vector s1, s2, s3;
  apply_symmetrized_ws(r, e, s1, s2, s3);
}

void Smoother::apply_symmetrized_ws(const Vector& r, Vector& e,
                                    Vector& scratch, Vector& scratch2,
                                    Vector& scratch3) const {
  const std::size_t n = r.size();
  switch (opts_.type) {
    case SmootherType::kWeightedJacobi:
    case SmootherType::kL1Jacobi: {
      // M diagonal: e = D~ (2 r - A (D~ r)) with D~ = inv_diag.
      Vector& y = scratch;
      y.resize(n);
      for (std::size_t i = 0; i < n; ++i) y[i] = inv_diag_[i] * r[i];
      Vector& ay = scratch2;
      a_->spmv(y, ay);
      e.resize(n);
      for (std::size_t i = 0; i < n; ++i) {
        e[i] = inv_diag_[i] * (2.0 * r[i] - ay[i]);
      }
      break;
    }
    case SmootherType::kHybridJGS:
    case SmootherType::kAsyncGS:
    case SmootherType::kL1HybridJGS: {
      // e = M^{-T} (M + M^T - A) M^{-1} r with M = blockdiag(L).
      Vector& y = scratch;
      Vector& z = scratch3;
      z.resize(n);
      Vector& ay = scratch2;
      lower_solve(r, y);
      a_->spmv(y, ay);
      // (M + M^T) y: block lower + block upper, diagonal counted twice.
      const auto rp = a_->row_ptr();
      const auto ci = a_->col_idx();
      a_->with_values([&](const auto* v) {
        for (const Range& rg : blocks_) {
          for (std::size_t i = rg.begin; i < rg.end; ++i) {
            double s = 2.0 * diag_[i] * y[i];
            const auto row = static_cast<Index>(i);
            for (Index k = rp[row]; k < rp[row + 1]; ++k) {
              const auto j =
                  static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
              if (j != i && j >= rg.begin && j < rg.end) {
                s += v[static_cast<std::size_t>(k)] * y[j];
              }
            }
            z[i] = s - ay[i];
          }
        }
      });
      upper_solve(z, e);
      break;
    }
  }
}

CsrMatrix smoothed_interpolant(const CsrMatrix& a, const CsrMatrix& p,
                               SmootherType smoother_type, double omega,
                               int num_threads) {
  Vector dtilde(static_cast<std::size_t>(a.rows()));
  if (smoother_type == SmootherType::kL1Jacobi) {
    const Vector l1 = a.l1_row_norms();
    for (std::size_t i = 0; i < dtilde.size(); ++i) dtilde[i] = 1.0 / l1[i];
  } else {
    // omega-Jacobi iteration matrix for every other smoother (the paper's
    // choice, to keep the interpolants sparse).
    const Vector d = a.diag();
    for (std::size_t i = 0; i < dtilde.size(); ++i) dtilde[i] = omega / d[i];
  }
  CsrMatrix ap = multiply(a, p, num_threads);
  ap.scale_rows(dtilde);
  return add(p, ap, 1.0, -1.0, num_threads);  // P - D~^{-1} A P
}

}  // namespace asyncmg
