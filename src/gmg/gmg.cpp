#include "gmg/gmg.hpp"

#include <stdexcept>
#include <vector>

#include "mesh/grid3d.hpp"
#include "sparse/spgemm.hpp"

namespace asyncmg {

namespace {

/// Per-axis trilinear weights of fine coordinate i (0-based, interior
/// Dirichlet grid of n points with mesh width h): coarse points sit at the
/// odd fine coordinates (2j+1 <-> coarse j), boundaries are homogeneous.
struct AxisWeights {
  Index idx[2];
  double w[2];
  int count = 0;
};

AxisWeights axis_weights(Index i, Index nc) {
  AxisWeights a;
  if (i % 2 == 1) {
    a.idx[0] = (i - 1) / 2;
    a.w[0] = 1.0;
    a.count = 1;
    return a;
  }
  // Even coordinate: midpoint between coarse i/2 - 1 and i/2 (either may
  // fall on the zero boundary and is then dropped).
  const Index left = i / 2 - 1;
  const Index right = i / 2;
  if (left >= 0) {
    a.idx[a.count] = left;
    a.w[a.count] = 0.5;
    ++a.count;
  }
  if (right < nc) {
    a.idx[a.count] = right;
    a.w[a.count] = 0.5;
    ++a.count;
  }
  return a;
}

}  // namespace

Index gmg_coarse_axis(Index n_fine) { return (n_fine - 1) / 2; }

CsrMatrix gmg_trilinear_interpolation(Index n) {
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument(
        "gmg_trilinear_interpolation: need odd n >= 3");
  }
  const Index nc = gmg_coarse_axis(n);
  const Grid3D fine{n, n, n};
  const Grid3D coarse{nc, nc, nc};

  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(fine.size()) * 8);
  for (Index k = 0; k < n; ++k) {
    const AxisWeights wz = axis_weights(k, nc);
    for (Index j = 0; j < n; ++j) {
      const AxisWeights wy = axis_weights(j, nc);
      for (Index i = 0; i < n; ++i) {
        const AxisWeights wx = axis_weights(i, nc);
        const Index row = fine.id(i, j, k);
        for (int a = 0; a < wz.count; ++a) {
          for (int b = 0; b < wy.count; ++b) {
            for (int c = 0; c < wx.count; ++c) {
              trips.push_back(
                  {row, coarse.id(wx.idx[c], wy.idx[b], wz.idx[a]),
                   wx.w[c] * wy.w[b] * wz.w[a]});
            }
          }
        }
      }
    }
  }
  return CsrMatrix::from_triplets(fine.size(), coarse.size(),
                                  std::move(trips));
}

Hierarchy build_geometric_hierarchy(CsrMatrix a_fine, Index n,
                                    const GmgOptions& opts) {
  if (a_fine.rows() != n * n * n) {
    throw std::invalid_argument(
        "build_geometric_hierarchy: operator size != n^3");
  }
  std::vector<AmgLevel> levels;
  levels.push_back(AmgLevel{std::move(a_fine), {}, {}});
  Index axis = n;
  for (Index lvl = 0; lvl + 1 < opts.max_levels; ++lvl) {
    if (axis < 2 * opts.min_points_per_axis + 1 || axis % 2 == 0) break;
    CsrMatrix p = gmg_trilinear_interpolation(axis);
    CsrMatrix ac = galerkin_product(levels.back().a, p);
    levels.back().p = std::move(p);
    levels.push_back(AmgLevel{std::move(ac), {}, {}});
    axis = gmg_coarse_axis(axis);
  }
  return Hierarchy::from_levels(std::move(levels));
}

}  // namespace asyncmg
