#pragma once
// Geometric multigrid setup for structured 3D grids — the classical
// alternative to the algebraic setup phase, and the natural setting for
// the paper's 7pt/27pt test sets (AFACx itself originates from geometric
// composite-grid methods).
//
// Coarsening is by factor 2 in every direction on the vertex grid of an
// n^3 Dirichlet problem with n odd-friendly sizes: coarse points are the
// fine points with all-odd (1-based) coordinates, i.e. every second point
// per axis; interpolation is trilinear. Coarse operators are Galerkin
// (P^T A P), so the resulting Hierarchy drops into MgSetup and every
// solver in the library (Mult, Multadd, AFACx, the async runtime, the
// models) without changes.

#include "amg/hierarchy.hpp"
#include "sparse/csr.hpp"

namespace asyncmg {

struct GmgOptions {
  /// Stop when a grid has at most this many points per axis.
  Index min_points_per_axis = 3;
  Index max_levels = 25;
};

/// Trilinear interpolation from the coarse vertex grid ((n-1)/2 points per
/// axis) to the fine n^3 grid. Requires n odd and n >= 3.
CsrMatrix gmg_trilinear_interpolation(Index n_fine);

/// Number of coarse points per axis for a fine grid of n points per axis.
Index gmg_coarse_axis(Index n_fine);

/// Builds a geometric hierarchy for an operator living on an n x n x n
/// vertex grid (lexicographic order, x fastest), e.g. make_laplace_7pt(n)
/// or make_laplace_27pt(n) with odd n. Coarse operators are Galerkin
/// products through trilinear interpolation.
Hierarchy build_geometric_hierarchy(CsrMatrix a_fine, Index n,
                                    const GmgOptions& opts = {});

}  // namespace asyncmg
