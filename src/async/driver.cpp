#include "async/driver.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "async/model.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"

namespace asyncmg {

namespace {

/// Snapshot the sink once per worker: a disabled sink degrades to the same
/// single null check as an absent one for the rest of the run.
TelemetrySink* live_sink(const Shared& sh) {
  TelemetrySink* tel = sh.opts.telemetry;
  return (tel != nullptr && tel->enabled()) ? tel : nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Base: fault counters + conservation check shared by all drivers.
// ---------------------------------------------------------------------------

void ScheduleDriver::finalize(RuntimeResult& out) {
  InvariantReport& inv = out.invariants;
  inv.stalls_applied = sh_.stalls_applied.load(std::memory_order_relaxed);
  inv.reads_dropped = sh_.reads_dropped.load(std::memory_order_relaxed);
  if (sh_.dead) {
    for (std::size_t g = 0; g < sh_.num_grids; ++g) {
      if (sh_.dead[g].load(std::memory_order_relaxed)) {
        inv.killed_grids.push_back(g);
      }
    }
  }
  if (!sh_.opts.check_invariants) return;
  inv.checked = true;
  // x_final - x_0 must equal the sum of every committed correction; the two
  // sides accumulate in different orders, so the bound is rounding-level,
  // not exact.
  Vector expected = sh_.x0;
  sum_commits(expected);
  const Vector& x = *sh_.x;
  double err = 0.0;
  double xmax = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    err = std::max(err, std::abs(x[i] - expected[i]));
    xmax = std::max(xmax, std::abs(x[i]));
  }
  inv.conservation_error = err / (1.0 + xmax);
  inv.conservation_ok = inv.conservation_error <= 1e-8;
}

void ScheduleDriver::sum_commits(Vector& into) const {
  for (const Team& t : teams_) {
    if (t.commit_acc.empty()) continue;
    for (std::size_t i = 0; i < into.size(); ++i) into[i] += t.commit_acc[i];
  }
}

// ---------------------------------------------------------------------------
// FreeRunDriver: the paper's free-running asynchronous teams, with the
// FaultPlan hooks. Fault decisions are made from the grid's commit count
// read once at the top of the grid iteration; only this team's rank 0
// increments it, and the increment is separated from the next read by team
// barriers, so every rank computes the same kill/stall/drop verdicts.
// ---------------------------------------------------------------------------

void FreeRunDriver::worker(const Ctx& c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const int t_max = sh.opts.t_max;
  const FaultPlan* fp = sh.opts.faults;
  TelemetrySink* const tel = live_sink(sh);
  Counter* const relax_ctr =
      (tel != nullptr && c.rank == 0) ? &tel->metrics().counter(
                                            "runtime.relaxations")
                                      : nullptr;

  // Initialize the team-local fine residual (and, via run_shared_memory,
  // the shared r was already filled before threads started).
  {
    const CsrMatrix& a = sh.s->a(0);
    const Range rg = c.chunk(t.rchain[0].size());
    a.residual_rows(*sh.b, *sh.x, t.rchain[0], static_cast<Index>(rg.begin),
                    static_cast<Index>(rg.end));
  }
  c.gbar();  // also publishes x for relaxed readers and starts the clock
  if (c.global_id == 0) sh.clock.start();
  c.gbar();

  while (true) {
    bool all_done = true;
    for (std::size_t g = 0; g < t.num_grids; ++g) {
      const std::size_t grid = t.first_grid + g;
      auto& count = sh.counts[grid];
      const int done = count.load(std::memory_order_relaxed);
      if (fp != nullptr && fp->kills_grid(grid, done)) {
        // Dead grid: treated as finished by both stop criteria (all_done
        // stays true), which is what lets a Criterion-2 run recover.
        if (c.rank == 0 && !sh.dead[grid].load(std::memory_order_relaxed)) {
          sh.dead[grid].store(true, std::memory_order_relaxed);
          if (tel != nullptr) {
            tel->record(c.global_id, EventKind::kFaultKill,
                        static_cast<std::int64_t>(grid), done);
          }
        }
        continue;
      }
      if (sh.opts.criterion == StopCriterion::kIndependent && done >= t_max) {
        continue;
      }
      all_done = false;

      if (fp != nullptr) {
        const double ms = fp->stall_ms(grid, done);
        if (ms > 0.0) {
          if (c.rank == 0) {
            sh.stalls_applied.fetch_add(1, std::memory_order_relaxed);
            if (tel != nullptr) {
              tel->record(c.global_id, EventKind::kFaultStall,
                          static_cast<std::int64_t>(grid), done);
            }
          }
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
      }

      const std::int64_t t_begin =
          tel != nullptr && c.rank == 0 ? tel->clock().now_ns() : 0;
      team_correction(c, g);
      team_add_shared(c, *sh.x, t.echain[0]);
      if (sh.opts.check_invariants) {
        team_accumulate(c, t.echain[0], t.commit_acc);
      }
      if (c.rank == 0) {
        count.fetch_add(1, std::memory_order_relaxed);
        sh.record_commit(grid);
        if (tel != nullptr) {
          tel->record_at(c.global_id, t_begin, EventKind::kRelax,
                         static_cast<std::int64_t>(grid),
                         tel->clock().now_ns() - t_begin);
          relax_ctr->add(1);
        }
      }
      // `done` is the 0-based index of the correction just committed.
      const bool drop = fp != nullptr && fp->drops_read(grid, done);
      if (drop && c.rank == 0) {
        sh.reads_dropped.fetch_add(1, std::memory_order_relaxed);
        if (tel != nullptr) {
          tel->record(c.global_id, EventKind::kFaultDropRead,
                      static_cast<std::int64_t>(grid), done);
        }
      }
      team_refresh_residual(c, drop);
      if (!drop && tel != nullptr && c.rank == 0) {
        tel->record(c.global_id, EventKind::kSharedRead,
                    static_cast<std::int64_t>(grid), -1);
      }
      // Encourage the OS to interleave teams when cores are oversubscribed;
      // without this, one team can burn through many corrections per
      // timeslice while the others' residual views go completely stale.
      std::this_thread::yield();
    }
    // A team whose grids are all finished/dead under Criterion 2 spins on
    // the master's stop flag; don't spin hot.
    if (all_done) std::this_thread::yield();

    // Collective termination: rank 0 decides, the team barrier publishes
    // the verdict, everyone acts on the same value.
    if (c.rank == 0) {
      if (sh.opts.criterion == StopCriterion::kIndependent) {
        t.stop_verdict = all_done;
      } else {
        if (c.global_id == 0) {
          bool done = true;
          for (std::size_t g = 0; g < sh.num_grids; ++g) {
            if (sh.dead[g].load(std::memory_order_relaxed)) continue;
            if (sh.counts[g].load(std::memory_order_relaxed) < t_max) {
              done = false;
              break;
            }
          }
          if (done) sh.stop.store(true, std::memory_order_relaxed);
        }
        t.stop_verdict = sh.stop.load(std::memory_order_relaxed);
      }
    }
    c.tbar();
    // Read the verdict into a local and re-synchronize: without the second
    // barrier, rank 0 could loop around and overwrite stop_verdict for the
    // next iteration while a slow teammate is still reading this one's
    // value -- the teammate would exit on the future verdict and leave
    // rank 0 stranded at a team barrier.
    const bool stop_now = t.stop_verdict;
    c.tbar();
    if (stop_now) break;
  }
}

// ---------------------------------------------------------------------------
// SyncDriver: one global residual phase + one correction per grid per
// cycle, global barriers between. FaultPlan does not apply here.
// ---------------------------------------------------------------------------

void SyncDriver::worker(const Ctx& c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const CsrMatrix& a = sh.s->a(0);
  TelemetrySink* const tel = live_sink(sh);

  c.gbar();
  if (c.global_id == 0) sh.clock.start();
  c.gbar();

  for (int cycle = 0; cycle < sh.opts.t_max; ++cycle) {
    // All threads: shared r = b - A x (x is stable during this phase).
    {
      const Range rg = static_chunk(static_cast<std::size_t>(a.rows()),
                                    sh.num_threads, c.global_id);
      a.residual_rows(*sh.b, *sh.x, sh.r, static_cast<Index>(rg.begin),
                      static_cast<Index>(rg.end));
    }
    c.gbar();

    for (std::size_t g = 0; g < t.num_grids; ++g) {
      // Team-local copy of the (stable) shared residual, then correct.
      {
        const Range rg = c.chunk(t.rchain[0].size());
        for (std::size_t i = rg.begin; i < rg.end; ++i) {
          t.rchain[0][i] = sh.r[i];
        }
        c.tbar();
      }
      const std::int64_t t_begin =
          tel != nullptr && c.rank == 0 ? tel->clock().now_ns() : 0;
      team_correction(c, g);
      team_add_shared(c, *sh.x, t.echain[0]);
      if (sh.opts.check_invariants) {
        team_accumulate(c, t.echain[0], t.commit_acc);
      }
      if (c.rank == 0) {
        sh.counts[t.first_grid + g].fetch_add(1, std::memory_order_relaxed);
        sh.record_commit(t.first_grid + g);
        if (tel != nullptr) {
          tel->record_at(c.global_id, t_begin, EventKind::kRelax,
                         static_cast<std::int64_t>(t.first_grid + g),
                         tel->clock().now_ns() - t_begin);
        }
      }
    }
    c.gbar();
  }
}

// ---------------------------------------------------------------------------
// ScriptedDriver: deterministic replay. Each instant runs in three
// globally-barriered phases so every value a thread reads is stable while
// it reads it:
//
//   A  each team computes the corrections of its scheduled events from
//      history snapshots into per-grid staging vectors (snapshots are only
//      written in phase B of a *later* point of the ring, see depth_);
//   B  all threads jointly apply the instant's corrections to x in event
//      order (element-wise: tot = sum of staged corrections, x += tot --
//      the same summation order as the sequential model's axpy chain, so
//      iterates match bitwise) and push the new snapshot;
//   C  global thread 0 does the bookkeeping: commit counts, trace, kill
//      marking, and the divergence sentinel. Counts are stable during A/B,
//      so the dead-grid predicate is consistent across threads.
// ---------------------------------------------------------------------------

ScriptedDriver::ScriptedDriver(Shared& sh, std::vector<Team>& teams)
    : ScheduleDriver(sh, teams) {
  const RuntimeOptions& o = sh.opts;
  if (o.schedule != nullptr) {
    sched_ = o.schedule;
  } else {
    AsyncModelOptions mo;
    mo.alpha = o.script_alpha;
    mo.max_delay = o.script_max_delay;
    mo.updates_per_grid = o.t_max;
    mo.seed = o.seed;
    owned_ = sample_schedule(sh.num_grids, mo);
    sched_ = &owned_;
  }
  check_ = validate_schedule(*sched_, sh.num_grids);
  if (!check_.ok) {
    throw std::invalid_argument("scripted schedule invalid: " + check_.error);
  }
  depth_ = static_cast<std::size_t>(check_.max_staleness) + 1;
  const std::size_t n = sh.b->size();
  hist_.assign(depth_, *sh.x);
  staging_.assign(sh.num_grids, Vector(n, 0.0));
  if (o.check_invariants) applied_sum_.assign(n, 0.0);
  rtmp_.assign(n, 0.0);
  const double bnorm = norm2(*sh.b);
  res_scale_ = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
}

bool ScriptedDriver::grid_dead(std::size_t grid) const {
  const FaultPlan* fp = sh_.opts.faults;
  return fp != nullptr &&
         fp->kills_grid(grid, sh_.counts[grid].load(std::memory_order_relaxed));
}

void ScriptedDriver::worker(const Ctx& c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const CsrMatrix& a = sh.s->a(0);
  const std::size_t n = sh.b->size();
  const int num_instants = static_cast<int>(sched_->num_instants());

  // Scripted telemetry is recorded exclusively by global thread 0 with
  // logical-time stamps, so the drained stream -- and the exported trace --
  // is identical across runs and thread counts for the same schedule.
  TelemetrySink* const tel = live_sink(sh);

  c.gbar();
  if (c.global_id == 0) {
    sh.clock.start();
    // Report grids that a FaultPlan kills before their first correction.
    if (sh.opts.faults != nullptr) {
      for (std::size_t g = 0; g < sh.num_grids; ++g) {
        if (sh.opts.faults->kills_grid(g, 0)) {
          sh.dead[g].store(true, std::memory_order_relaxed);
          if (tel != nullptr) {
            tel->record_at(0, 0, EventKind::kFaultKill,
                           static_cast<std::int64_t>(g), 0);
          }
        }
      }
    }
  }
  c.gbar();

  for (int ti = 0; ti < num_instants; ++ti) {
    const std::vector<ScheduleEvent>& inst =
        sched_->instants[static_cast<std::size_t>(ti)];

    // Phase A: correction computation from snapshots.
    for (const ScheduleEvent& ev : inst) {
      if (!t.owns(ev.grid) || grid_dead(ev.grid)) continue;
      const Vector& snap = hist_[slot(ev.read_instant)];
      const Range rg = c.chunk(n);
      a.residual_rows(*sh.b, snap, t.rchain[0], static_cast<Index>(rg.begin),
                      static_cast<Index>(rg.end));
      c.tbar();
      team_correction(c, ev.grid - t.first_grid);
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        staging_[ev.grid][i] = t.echain[0][i];
      }
      c.tbar();  // staging complete before the next event reuses echain
    }
    c.gbar();

    // Phase B: joint apply + snapshot push over global static chunks.
    std::size_t live = 0;
    for (const ScheduleEvent& ev : inst) {
      if (!grid_dead(ev.grid)) ++live;
    }
    {
      const Range rg = static_chunk(n, sh.num_threads, c.global_id);
      Vector& snap_next = hist_[slot(ti + 1)];
      Vector& x = *sh.x;
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        if (live > 0) {
          double tot = 0.0;
          for (const ScheduleEvent& ev : inst) {
            if (!grid_dead(ev.grid)) tot += staging_[ev.grid][i];
          }
          x[i] += tot;
          if (!applied_sum_.empty()) applied_sum_[i] += tot;
        }
        snap_next[i] = x[i];
      }
    }
    c.gbar();

    // Phase C: bookkeeping by global thread 0 (counts are written only
    // here, between the phase-B and phase-D barriers).
    if (c.global_id == 0) {
      if (tel != nullptr) {
        tel->record_at(0, ti, EventKind::kInstant, ti, 1);
      }
      for (const ScheduleEvent& ev : inst) {
        if (grid_dead(ev.grid)) continue;
        sh.counts[ev.grid].fetch_add(1, std::memory_order_relaxed);
        if (sh.opts.record_trace) {
          sh.trace.push_back({ev.grid, static_cast<double>(ti)});
        }
        if (tel != nullptr) {
          tel->record_at(0, ti, EventKind::kRelax,
                         static_cast<std::int64_t>(ev.grid), 1);
          tel->record_at(0, ti, EventKind::kSharedRead,
                         static_cast<std::int64_t>(ev.grid), ev.read_instant);
        }
      }
      if (sh.opts.faults != nullptr) {
        for (std::size_t g = 0; g < sh.num_grids; ++g) {
          if (!sh.dead[g].load(std::memory_order_relaxed) &&
              sh.opts.faults->kills_grid(
                  g, sh.counts[g].load(std::memory_order_relaxed))) {
            sh.dead[g].store(true, std::memory_order_relaxed);
            if (tel != nullptr) {
              tel->record_at(
                  0, ti, EventKind::kFaultKill, static_cast<std::int64_t>(g),
                  sh.counts[g].load(std::memory_order_relaxed));
            }
          }
        }
      }
      instants_done_ = ti + 1;
      if (sh.opts.check_invariants) {
        a.residual(*sh.b, *sh.x, rtmp_);
        const double rel = norm2(rtmp_) * res_scale_;
        max_rel_res_ = std::max(max_rel_res_, rel);
        if (rel > sh.opts.divergence_threshold) {
          diverged_ = true;
          divergence_instant_ = ti;
          halt_ = true;
        }
      }
    }
    c.gbar();
    if (halt_) break;
  }
}

void ScriptedDriver::finalize(RuntimeResult& out) {
  ScheduleDriver::finalize(out);
  out.instants = instants_done_;
  out.invariants.diverged = diverged_;
  out.invariants.divergence_instant = divergence_instant_;
  out.invariants.max_rel_res = max_rel_res_;
  out.invariants.max_read_staleness = check_.max_staleness;
}

void ScriptedDriver::sum_commits(Vector& into) const {
  for (std::size_t i = 0; i < into.size(); ++i) into[i] += applied_sum_[i];
}

std::unique_ptr<ScheduleDriver> make_driver(Shared& sh,
                                            std::vector<Team>& teams) {
  switch (sh.opts.mode) {
    case ExecMode::kSynchronous:
      return std::make_unique<SyncDriver>(sh, teams);
    case ExecMode::kScripted:
      return std::make_unique<ScriptedDriver>(sh, teams);
    case ExecMode::kAsynchronous:
      break;
  }
  return std::make_unique<FreeRunDriver>(sh, teams);
}

}  // namespace asyncmg
