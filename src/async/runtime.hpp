#pragma once
// Shared-memory asynchronous additive multigrid (Section IV, Algorithms
// 3-5), plus the synchronous additive and multiplicative baselines executed
// on the same thread pool so that timings are comparable.
//
// Threads are partitioned into per-grid teams balanced by the per-grid work
// estimate; a team synchronizes internally with a std::barrier but -- in
// asynchronous mode -- never with other teams. The shared solution x (and,
// for global-res / residual-based runs, the shared residual r) is accessed
// under one of two write policies:
//
//   lock-write    one global mutex; a team's master acquires it, the team
//                 updates with a parallel loop, the master releases. Reads
//                 of shared vectors also take the lock, so local-res +
//                 lock-write realizes the semi-async model (Eq. 6) exactly.
//   atomic-write  std::atomic_ref<double>::fetch_add per element; reads are
//                 relaxed atomic loads (full-async, Eq. 7/10).
//
// The fine-grid residual is produced per the rescomp flag:
//
//   local-res     each team copies x and recomputes r^k = b - A x^k itself
//                 (more flops per team, fresher residuals).
//   global-res    r is a shared vector; after a correction, every thread
//                 refreshes its own static chunk of r from the shared x
//                 with a non-blocking loop, and the team then reads r.
//
// residual_based (the paper's r- prefix) replaces the recomputation with an
// incremental shared-residual update r <- r - A e.

#include <cstdint>
#include <string>
#include <vector>

#include "async/schedule.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/setup.hpp"

namespace asyncmg {

class SolverPool;
class TelemetrySink;

enum class ResComp { kGlobal, kLocal };
enum class WritePolicy { kLockWrite, kAtomicWrite };
/// Criterion 1: a grid stops as soon as it has done t_max corrections.
/// Criterion 2: a master thread stops everyone once *all* grids reached
/// t_max (grids keep correcting meanwhile).
enum class StopCriterion { kIndependent, kMaster };
/// kScripted replays a deterministic interleaving (a Schedule) on the same
/// thread teams: semi-async (Eq. 6) semantics with snapshot reads and joint
/// per-instant applies, reproducible across runs and -- for Jacobi-type
/// smoothers -- across thread counts. See async/schedule.hpp.
enum class ExecMode { kAsynchronous, kSynchronous, kScripted };

struct RuntimeOptions {
  ExecMode mode = ExecMode::kAsynchronous;
  ResComp rescomp = ResComp::kLocal;
  WritePolicy write = WritePolicy::kLockWrite;
  StopCriterion criterion = StopCriterion::kIndependent;
  bool residual_based = false;  // r-Multadd
  int t_max = 20;
  std::size_t num_threads = 4;
  /// Restrict the solve to the first `active_grids` grids (0 = all). Teams
  /// are built only for the active prefix, so fine grids start correcting
  /// while deeper levels are still under construction (the background setup
  /// pipeline's truncated-cycle mode). Grid g only ever touches levels g
  /// and g+1 of its (fully built) setup, so any prefix is safe.
  std::size_t active_grids = 0;
  /// Record a per-correction commit trace (grid id + seconds since the
  /// solve started; in scripted mode `seconds` is the time *instant* of the
  /// commit instead, making traces reproducible). Costs one clock read per
  /// correction in the free-running modes.
  bool record_trace = false;
  /// When set, the solve runs as a gang on this persistent pool instead of
  /// spawning and joining num_threads fresh std::threads per call (the
  /// service layer's amortization lever). Requires pool->size() >=
  /// num_threads. Not owned; must outlive the call.
  SolverPool* pool = nullptr;
  /// Telemetry event sink (see telemetry/sink.hpp): relaxations, shared
  /// reads, and fault injections are recorded per thread. nullptr (the
  /// default) disables instrumentation entirely; a disabled sink costs one
  /// branch per site. Scripted replays record logical-time events from
  /// global thread 0 only, so their drained streams are deterministic.
  /// Not owned; must outlive the call.
  TelemetrySink* telemetry = nullptr;

  // --- Deterministic harness (see async/schedule.hpp) -------------------
  /// kScripted only: the exact interleaving to replay. Not owned; must
  /// outlive the call. When null, a schedule is sampled internally with
  /// sample_schedule using (script_alpha, script_max_delay, seed) and
  /// updates_per_grid = t_max -- the Section-III sampling, so the run walks
  /// the same trajectory as run_async_model(kSemiAsync) for the same seed.
  const Schedule* schedule = nullptr;
  double script_alpha = 1.0;
  int script_max_delay = 0;
  /// Explicit seed for every stochastic choice the runtime makes (today:
  /// internal schedule sampling). Free-running runs have no RNG -- their
  /// nondeterminism is the OS schedule, which the harness exists to remove.
  std::uint64_t seed = 1;
  /// Fault injection for the free-running asynchronous driver (kills also
  /// apply to scripted replays). Not owned; must outlive the call.
  const FaultPlan* faults = nullptr;
  /// Run the invariant checkers: sum-of-corrections conservation (all
  /// modes) and the per-instant divergence sentinel (scripted mode).
  /// Results land in RuntimeResult::invariants.
  bool check_invariants = false;
  /// Scripted + check_invariants: halt and flag divergence once the
  /// relative residual exceeds this.
  double divergence_threshold = 1e6;
};

/// One committed correction in the execution trace.
struct TraceEvent {
  std::size_t grid = 0;
  double seconds = 0.0;  // since the solve loop started (instant if scripted)
};

std::string runtime_config_name(const RuntimeOptions& o);

struct RuntimeResult {
  double seconds = 0.0;
  /// True ||b - A x|| / ||b|| measured after all threads joined.
  double final_rel_res = 1.0;
  /// Corrections carried out by each grid.
  std::vector<int> corrections;
  /// Commit trace (only when RuntimeOptions::record_trace), in commit
  /// order per grid; interleave across grids by sorting on seconds. In
  /// scripted mode the trace is in global commit order already.
  std::vector<TraceEvent> trace;
  /// Time instants executed (scripted mode; 0 otherwise).
  int instants = 0;
  /// Invariant-checker verdicts and fault-injection counters.
  InvariantReport invariants;
  /// The paper's "Corrects": total corrections divided by number of grids.
  double mean_corrections() const;
};

/// Runs the asynchronous (or synchronous additive) solver. x is updated in
/// place. Thread-to-grid assignment is balanced by corrector.work(); when
/// fewer threads than grids are given, single-thread teams own several
/// consecutive grids.
RuntimeResult run_shared_memory(const AdditiveCorrector& corrector,
                                const Vector& b, Vector& x,
                                const RuntimeOptions& opts);

/// Threaded classical multiplicative V(1,1) baseline ("Mult"): every
/// operation uses all threads with a global barrier between phases, as an
/// OpenMP static-schedule implementation would. A non-null `pool` runs the
/// phases as a gang on the persistent pool (see RuntimeOptions::pool).
RuntimeResult run_mult_threaded(const MgSetup& setup, const Vector& b,
                                Vector& x, int t_max, std::size_t num_threads,
                                SolverPool* pool = nullptr);

}  // namespace asyncmg
