#pragma once
// ScheduleDriver: the execution-order policy of the threaded runtime. The
// team/worker substrate (async/team.hpp) is fixed; what varies between the
// paper's real asynchronous solver and the correctness harness is *who runs
// when*, and that policy lives behind this interface:
//
//   FreeRunDriver    the paper's Section-IV solver: teams loop at their own
//                    pace, never synchronizing across teams; ordering comes
//                    from the OS scheduler. Honors FaultPlan stalls,
//                    dropped reads, and kills.
//   SyncDriver       the synchronous additive baseline (global barriers
//                    between residual and correction phases).
//   ScriptedDriver   deterministic replay of a Schedule: per time instant,
//                    scheduled teams compute corrections from history
//                    snapshots, then all threads apply them jointly in
//                    event order and push the new snapshot. Iterates are
//                    reproducible across runs and -- for Jacobi-type
//                    smoothers, whose per-row arithmetic is independent of
//                    the block partition -- across thread counts, and equal
//                    the sequential semi-async simulator's on the same
//                    schedule.
//
// Internal header: include async/runtime.hpp instead.

#include <memory>
#include <vector>

#include "async/team.hpp"

namespace asyncmg {

class ScheduleDriver {
 public:
  ScheduleDriver(Shared& sh, std::vector<Team>& teams)
      : sh_(sh), teams_(teams) {}
  virtual ~ScheduleDriver() = default;

  /// Worker body, called once per thread with that thread's context; the
  /// entire step loop of the run happens in here.
  virtual void worker(const Ctx& c) = 0;

  /// Called on the main thread after all workers joined: fills the
  /// invariant report (fault counters, killed grids, conservation) and any
  /// driver-owned result fields.
  virtual void finalize(RuntimeResult& out);

 protected:
  /// into += every committed correction (conservation check). The default
  /// sums the per-team accumulators the free-running/sync workers fill.
  virtual void sum_commits(Vector& into) const;

  Shared& sh_;
  std::vector<Team>& teams_;
};

/// Free-running asynchronous teams (ExecMode::kAsynchronous).
class FreeRunDriver final : public ScheduleDriver {
 public:
  using ScheduleDriver::ScheduleDriver;
  void worker(const Ctx& c) override;
};

/// Synchronous additive baseline (ExecMode::kSynchronous).
class SyncDriver final : public ScheduleDriver {
 public:
  using ScheduleDriver::ScheduleDriver;
  void worker(const Ctx& c) override;
};

/// Deterministic scripted replay (ExecMode::kScripted). The constructor
/// validates the schedule (throws std::invalid_argument on a structural
/// violation) and samples one from RuntimeOptions::{script_alpha,
/// script_max_delay, seed, t_max} when none was supplied.
class ScriptedDriver final : public ScheduleDriver {
 public:
  ScriptedDriver(Shared& sh, std::vector<Team>& teams);
  void worker(const Ctx& c) override;
  void finalize(RuntimeResult& out) override;

 private:
  void sum_commits(Vector& into) const override;
  std::size_t slot(int instant) const {
    return static_cast<std::size_t>(instant) % depth_;
  }
  /// True when a FaultPlan kill has retired this grid (counts are stable
  /// while the predicate is evaluated; see worker()).
  bool grid_dead(std::size_t grid) const;

  Schedule owned_;            // backing storage when sampled internally
  const Schedule* sched_ = nullptr;
  ScheduleCheck check_;
  std::size_t depth_ = 1;     // history ring depth (max staleness + 1)
  std::vector<Vector> hist_;  // snapshot ring, indexed by instant % depth_
  std::vector<Vector> staging_;  // per-grid corrections of the instant
  Vector applied_sum_;        // conservation accumulator (check_invariants)
  Vector rtmp_;               // residual scratch for the sentinel
  double res_scale_ = 1.0;    // 1 / ||b|| (1 when b = 0)
  // Written by global thread 0 between global barriers, read by everyone
  // after the barrier that follows.
  bool halt_ = false;
  bool diverged_ = false;
  int divergence_instant_ = -1;
  double max_rel_res_ = 0.0;
  int instants_done_ = 0;
};

/// Factory keyed on RuntimeOptions::mode (and ::schedule).
std::unique_ptr<ScheduleDriver> make_driver(Shared& sh,
                                            std::vector<Team>& teams);

}  // namespace asyncmg
