#include "async/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "async/model.hpp"
#include "util/rng.hpp"
#include "util/text.hpp"

namespace asyncmg {

std::size_t Schedule::num_events() const {
  std::size_t n = 0;
  for (const auto& inst : instants) n += inst.size();
  return n;
}

namespace {

/// Uniform integer sample from [lo, t] (collapses to t when lo >= t); the
/// shared Section-III read-instant draw (see async/model.hpp on max vs the
/// paper's printed min).
int sample_instant(Rng& rng, int lo, int t) {
  if (lo >= t) return t;
  return static_cast<int>(rng.uniform_int(lo, t));
}

}  // namespace

Schedule sample_schedule(std::size_t num_grids, const AsyncModelOptions& opts) {
  if (opts.alpha <= 0.0 || opts.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (opts.max_delay < 0) throw std::invalid_argument("max_delay must be >= 0");
  if (opts.updates_per_grid < 1) {
    throw std::invalid_argument("updates_per_grid must be >= 1");
  }

  Rng rng(opts.seed);
  Schedule sched;
  sched.probabilities.resize(num_grids);
  for (double& p : sched.probabilities) p = rng.uniform(opts.alpha, 1.0);

  const int delta = opts.max_delay;
  std::vector<int> last_z(num_grids, 0);
  std::vector<int> updates(num_grids, 0);
  std::size_t grids_done = 0;
  int t = 0;
  while (grids_done < num_grids) {
    std::vector<ScheduleEvent> inst;
    for (std::size_t k = 0; k < num_grids; ++k) {
      if (updates[k] >= opts.updates_per_grid) continue;
      if (!rng.bernoulli(sched.probabilities[k])) continue;
      const int lo = std::max(last_z[k], t - delta);
      const int z = sample_instant(rng, lo, t);
      last_z[k] = z;
      inst.push_back({k, z});
      if (++updates[k] == opts.updates_per_grid) ++grids_done;
    }
    sched.instants.push_back(std::move(inst));
    ++t;
  }
  return sched;
}

Schedule full_schedule(std::size_t num_grids, int t_max) {
  Schedule s;
  s.instants.resize(static_cast<std::size_t>(t_max));
  for (int t = 0; t < t_max; ++t) {
    auto& inst = s.instants[static_cast<std::size_t>(t)];
    inst.reserve(num_grids);
    for (std::size_t g = 0; g < num_grids; ++g) inst.push_back({g, t});
  }
  return s;
}

ScheduleCheck validate_schedule(const Schedule& s, std::size_t num_grids) {
  ScheduleCheck check;
  check.updates_per_grid.assign(num_grids, 0);
  std::vector<int> last_z(num_grids, 0);
  std::vector<int> seen_at(num_grids, -1);
  auto fail = [&](std::string msg) {
    check.ok = false;
    if (check.error.empty()) check.error = std::move(msg);
  };
  for (std::size_t t = 0; t < s.instants.size(); ++t) {
    for (const ScheduleEvent& ev : s.instants[t]) {
      std::ostringstream where;
      where << "instant " << t << " grid " << ev.grid << ": ";
      if (ev.grid >= num_grids) {
        fail(where.str() + "grid id out of range");
        continue;
      }
      if (seen_at[ev.grid] == static_cast<int>(t)) {
        fail(where.str() + "grid scheduled twice in one instant");
      }
      seen_at[ev.grid] = static_cast<int>(t);
      if (ev.read_instant < 0 || ev.read_instant > static_cast<int>(t)) {
        fail(where.str() + "read instant outside [0, t]");
      } else {
        if (ev.read_instant < last_z[ev.grid]) {
          fail(where.str() + "read instants not monotone (reads older than "
                             "already-read information)");
        }
        last_z[ev.grid] = std::max(last_z[ev.grid], ev.read_instant);
        check.max_staleness = std::max(
            check.max_staleness, static_cast<int>(t) - ev.read_instant);
      }
      ++check.updates_per_grid[ev.grid];
    }
  }
  return check;
}

std::string schedule_to_string(const Schedule& s) {
  std::ostringstream os;
  std::size_t grids = 0;
  for (const auto& inst : s.instants) {
    for (const ScheduleEvent& ev : inst) grids = std::max(grids, ev.grid + 1);
  }
  os << "schedule v1 grids=" << grids << " instants=" << s.instants.size()
     << "\n";
  for (std::size_t t = 0; t < s.instants.size(); ++t) {
    os << t << ":";
    if (s.instants[t].empty()) {
      os << " -";
    } else {
      for (const ScheduleEvent& ev : s.instants[t]) {
        os << " " << ev.grid << "@" << ev.read_instant;
      }
    }
    os << "\n";
  }
  return os.str();
}

Schedule parse_schedule(const std::string& text) {
  Schedule sched;
  bool header_seen = false;
  for (const std::string& raw : split_lines(text)) {
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (!header_seen) {
      if (!starts_with(line, "schedule v1")) {
        throw std::invalid_argument("schedule: missing 'schedule v1' header");
      }
      header_seen = true;
      continue;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      throw std::invalid_argument("schedule: instant line without ':'");
    }
    std::vector<ScheduleEvent> inst;
    for (const std::string& tok : split(line.substr(colon + 1), ' ')) {
      if (tok == "-") continue;
      const std::size_t at = tok.find('@');
      if (at == std::string::npos) {
        throw std::invalid_argument("schedule: event token without '@': " +
                                    tok);
      }
      ScheduleEvent ev;
      try {
        ev.grid = static_cast<std::size_t>(std::stoul(tok.substr(0, at)));
        ev.read_instant = std::stoi(tok.substr(at + 1));
      } catch (const std::exception&) {
        throw std::invalid_argument("schedule: bad event token: " + tok);
      }
      inst.push_back(ev);
    }
    sched.instants.push_back(std::move(inst));
  }
  if (!header_seen) {
    throw std::invalid_argument("schedule: missing 'schedule v1' header");
  }
  return sched;
}

double FaultPlan::stall_ms(std::size_t grid, int correction) const {
  double ms = 0.0;
  for (const Stall& s : stalls) {
    if (s.grid == grid && correction >= s.from_correction &&
        correction < s.from_correction + s.corrections) {
      ms += s.milliseconds;
    }
  }
  return ms;
}

bool FaultPlan::drops_read(std::size_t grid, int correction) const {
  for (const DropReads& d : dropped_reads) {
    if (d.grid == grid && correction >= d.from_correction &&
        correction < d.from_correction + d.corrections) {
      return true;
    }
  }
  return false;
}

bool FaultPlan::kills_grid(std::size_t grid, int corrections_done) const {
  for (const Kill& k : kills) {
    if (k.grid == grid && corrections_done >= k.after_corrections) return true;
  }
  return false;
}

}  // namespace asyncmg
