#pragma once
// Internal shared state of the threaded runtime: per-run shared vectors,
// per-grid thread teams, and the team-parallel numerical kernels that both
// schedule drivers (free-running and scripted; see async/driver.hpp)
// execute. Split out of runtime.cpp so the drivers are separate
// implementations of one step-loop substrate. Not part of the public API --
// include async/runtime.hpp instead.

#include <atomic>
#include <barrier>
#include <memory>
#include <mutex>
#include <vector>

#include "async/runtime.hpp"
#include "smoothers/smoother.hpp"
#include "telemetry/clock.hpp"
#include "util/partition.hpp"

namespace asyncmg {

inline double relaxed_load(const double& v) {
  return std::atomic_ref<const double>(v).load(std::memory_order_relaxed);
}
inline void relaxed_store(double& v, double val) {
  std::atomic_ref<double>(v).store(val, std::memory_order_relaxed);
}
inline void relaxed_add(double& v, double d) {
  std::atomic_ref<double>(v).fetch_add(d, std::memory_order_relaxed);
}

/// State shared by every thread of a run.
struct Shared {
  const AdditiveCorrector* corr = nullptr;
  const MgSetup* s = nullptr;
  const Vector* b = nullptr;
  Vector* x = nullptr;
  Vector r;  // shared residual (global-res / residual-based / sync modes)
  std::mutex lock;
  std::atomic<bool> stop{false};
  std::unique_ptr<std::atomic<int>[]> counts;  // per grid
  RuntimeOptions opts;
  std::size_t num_grids = 0;
  std::size_t num_threads = 0;
  std::unique_ptr<std::barrier<>> global_barrier;
  /// Session clock for timestamps: started by global thread 0 before the
  /// first global barrier, so every thread measures from the same origin
  /// (also the stamp source for wall-time telemetry events).
  SessionClock clock;
  // Commit trace (record_trace): protected by trace_lock, not the main
  // lock-write mutex (tracing must not perturb the write-policy contention
  // being measured more than necessary).
  std::mutex trace_lock;
  std::vector<TraceEvent> trace;

  // Fault-injection bookkeeping (see async/schedule.hpp). `dead[g]` is set
  // once by grid g's team when a FaultPlan kill fires; both stop criteria
  // treat dead grids as finished.
  std::unique_ptr<std::atomic<bool>[]> dead;
  std::atomic<int> stalls_applied{0};
  std::atomic<int> reads_dropped{0};
  /// Copy of x on entry, kept when opts.check_invariants for the
  /// sum-of-corrections conservation check.
  Vector x0;

  void record_commit(std::size_t grid) {
    if (!opts.record_trace) return;
    const double secs = clock.seconds();
    const std::lock_guard<std::mutex> g(trace_lock);
    trace.push_back({grid, secs});
  }

  bool uses_shared_r() const {
    if (opts.mode == ExecMode::kScripted) return false;
    return opts.mode == ExecMode::kSynchronous ||
           opts.rescomp == ResComp::kGlobal || opts.residual_based;
  }
};

/// One per-grid (or per-grid-range) thread team and its workspaces.
struct Team {
  std::size_t first_grid = 0;
  std::size_t num_grids = 0;  // contiguous grids owned by this team
  std::size_t nthreads = 0;
  std::size_t first_thread = 0;  // global id of this team's rank 0
  std::unique_ptr<std::barrier<>> barrier;

  // Per-owned-grid smoothers: at the grid's own level and (AFACx) at the
  // next level, both with block count = team size.
  std::vector<std::unique_ptr<Smoother>> smooth_k;
  std::vector<std::unique_ptr<Smoother>> smooth_k1;

  /// Team-collective stop verdict: written by rank 0, published to the
  /// team by the barrier that follows. Without this, threads of one team
  /// could read the global stop flag at different times, disagree, and
  /// deadlock the team barrier.
  bool stop_verdict = false;

  // Workspaces, indexed by hierarchy level (sized lazily at build).
  std::vector<Vector> rchain;   // restricted residuals; level 0 = rloc
  std::vector<Vector> echain;   // corrections on the way up
  std::vector<Vector> scratch;  // per-level scratch for sweeps / AFACx
  Vector xk;                    // local copy of shared x (local-res)
  Vector u, pu;                 // AFACx: e_{k+1} and P e_{k+1}
  /// Extra-sweep block solve buffer for team_smooth_zero: ranks write
  /// disjoint block rows and read only rows they just wrote, so one
  /// team-shared vector replaces a per-thread per-sweep allocation without
  /// changing a single arithmetic result.
  Vector sweep_delta;
  /// Running sum of this team's committed corrections (check_invariants);
  /// accumulated team-parallel after each commit.
  Vector commit_acc;

  bool owns(std::size_t grid) const {
    return grid >= first_grid && grid < first_grid + num_grids;
  }
};

/// Everything a worker needs: shared state + its team + its rank.
struct Ctx {
  Shared* sh;
  Team* team;
  std::size_t rank;       // rank within team
  std::size_t global_id;  // global thread id

  Range chunk(std::size_t n) const {
    return static_chunk(n, team->nthreads, rank);
  }
  void tbar() const { team->barrier->arrive_and_wait(); }
  void gbar() const { sh->global_barrier->arrive_and_wait(); }
};

// ---------------------------------------------------------------------------
// Team-parallel kernels (implemented in team.cpp).
// ---------------------------------------------------------------------------

/// dst (team-local) = src (shared), team-parallel under the write policy.
void team_read_shared(const Ctx& c, const Vector& src, Vector& dst);

/// shared dst += e, team-parallel under the write policy.
void team_add_shared(const Ctx& c, Vector& dst, const Vector& e);

/// shared r -= A e, team-parallel over all rows (r-Multadd update).
void team_residual_update_shared(const Ctx& c, const CsrMatrix& a,
                                 const Vector& e, Vector& r);

/// Non-blocking ("No Wait") refresh of this *thread's* static chunk of the
/// shared residual from the shared x.
void thread_refresh_global_residual(const Ctx& c);

/// y = M v over the team (rows of y chunked by rank), trailing team barrier.
void team_spmv(const Ctx& c, const CsrMatrix& m, const Vector& v, Vector& y);

/// out = `sweeps` smoothing sweeps on A out = rhs from a zero initial
/// guess, team-parallel. `lvl_scratch` is a level-sized scratch vector.
void team_smooth_zero(const Ctx& c, const Smoother& sm, const Vector& rhs,
                      Vector& out, Vector& lvl_scratch, int sweeps);

/// Computes grid (team.first_grid + grid_pos)'s fine-level correction into
/// team.echain[0] from the team-local fine residual team.rchain[0].
void team_correction(const Ctx& c, std::size_t grid_pos);

/// Refreshes the team-local fine residual after a correction, per the
/// configured residual-computation scheme. `drop_shared_read` (fault
/// injection) skips the read of shared state so the team keeps its stale
/// view; shared-residual *writes* still happen.
void team_refresh_residual(const Ctx& c, bool drop_shared_read = false);

/// Team-parallel acc += e (conservation bookkeeping after a commit).
void team_accumulate(const Ctx& c, const Vector& e, Vector& acc);

/// Builds the team structures (thread assignment, smoothers, workspaces).
std::vector<Team> build_teams(const Shared& sh);

}  // namespace asyncmg
