#include "async/runtime.hpp"

#include <atomic>
#include <barrier>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "service/solver_pool.hpp"
#include "sparse/vec.hpp"
#include "util/partition.hpp"

namespace asyncmg {

std::string runtime_config_name(const RuntimeOptions& o) {
  std::string s = o.mode == ExecMode::kSynchronous ? "sync" : "async";
  s += o.write == WritePolicy::kLockWrite ? " lock-write" : " atomic-write";
  if (o.mode == ExecMode::kAsynchronous) {
    s += o.rescomp == ResComp::kLocal ? " local-res" : " global-res";
    if (o.residual_based) s += " r-based";
  }
  return s;
}

double RuntimeResult::mean_corrections() const {
  if (corrections.empty()) return 0.0;
  double total = 0.0;
  for (int c : corrections) total += c;
  return total / static_cast<double>(corrections.size());
}

namespace {

inline double relaxed_load(const double& v) {
  return std::atomic_ref<const double>(v).load(std::memory_order_relaxed);
}
inline void relaxed_store(double& v, double val) {
  std::atomic_ref<double>(v).store(val, std::memory_order_relaxed);
}
inline void relaxed_add(double& v, double d) {
  std::atomic_ref<double>(v).fetch_add(d, std::memory_order_relaxed);
}

/// State shared by every thread of a run.
struct Shared {
  const AdditiveCorrector* corr = nullptr;
  const MgSetup* s = nullptr;
  const Vector* b = nullptr;
  Vector* x = nullptr;
  Vector r;  // shared residual (global-res / residual-based / sync modes)
  std::mutex lock;
  std::atomic<bool> stop{false};
  std::unique_ptr<std::atomic<int>[]> counts;  // per grid
  RuntimeOptions opts;
  std::size_t num_grids = 0;
  std::size_t num_threads = 0;
  std::unique_ptr<std::barrier<>> global_barrier;
  std::chrono::steady_clock::time_point t0;
  // Commit trace (record_trace): protected by trace_lock, not the main
  // lock-write mutex (tracing must not perturb the write-policy contention
  // being measured more than necessary).
  std::mutex trace_lock;
  std::vector<TraceEvent> trace;

  void record_commit(std::size_t grid) {
    if (!opts.record_trace) return;
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const std::lock_guard<std::mutex> g(trace_lock);
    trace.push_back({grid, secs});
  }

  bool uses_shared_r() const {
    return opts.mode == ExecMode::kSynchronous ||
           opts.rescomp == ResComp::kGlobal || opts.residual_based;
  }
};

/// One per-grid (or per-grid-range) thread team and its workspaces.
struct Team {
  std::size_t first_grid = 0;
  std::size_t num_grids = 0;  // contiguous grids owned by this team
  std::size_t nthreads = 0;
  std::size_t first_thread = 0;  // global id of this team's rank 0
  std::unique_ptr<std::barrier<>> barrier;

  // Per-owned-grid smoothers: at the grid's own level and (AFACx) at the
  // next level, both with block count = team size.
  std::vector<std::unique_ptr<Smoother>> smooth_k;
  std::vector<std::unique_ptr<Smoother>> smooth_k1;

  /// Team-collective stop verdict: written by rank 0, published to the
  /// team by the barrier that follows. Without this, threads of one team
  /// could read the global stop flag at different times, disagree, and
  /// deadlock the team barrier.
  bool stop_verdict = false;

  // Workspaces, indexed by hierarchy level (sized lazily at build).
  std::vector<Vector> rchain;   // restricted residuals; level 0 = rloc
  std::vector<Vector> echain;   // corrections on the way up
  std::vector<Vector> scratch;  // per-level scratch for sweeps / AFACx
  Vector xk;                    // local copy of shared x (local-res)
  Vector u, pu;                 // AFACx: e_{k+1} and P e_{k+1}
};

/// Everything a worker needs: shared state + its team + its rank.
struct Ctx {
  Shared* sh;
  Team* team;
  std::size_t rank;        // rank within team
  std::size_t global_id;   // global thread id

  Range chunk(std::size_t n) const {
    return static_chunk(n, team->nthreads, rank);
  }
  void tbar() const { team->barrier->arrive_and_wait(); }
  void gbar() const { sh->global_barrier->arrive_and_wait(); }
};

// ---------------------------------------------------------------------------
// Shared-vector access under the configured write policy.
// ---------------------------------------------------------------------------

/// dst (team-local) = src (shared), team-parallel.
void team_read_shared(const Ctx& c, const Vector& src, Vector& dst) {
  const Range rg = c.chunk(src.size());
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    // Align the team before rank 0 takes the global mutex: a teammate may
    // still be inside its own lock-taking code (e.g. the non-blocking
    // global-res refresh); locking before it finishes would deadlock the
    // team barrier below against the mutex.
    c.tbar();
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] = src[i];
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] = relaxed_load(src[i]);
    c.tbar();
  }
}

/// shared dst += e, team-parallel.
void team_add_shared(const Ctx& c, Vector& dst, const Vector& e) {
  const Range rg = c.chunk(dst.size());
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    c.tbar();  // see team_read_shared
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] += e[i];
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    for (std::size_t i = rg.begin; i < rg.end; ++i) relaxed_add(dst[i], e[i]);
    c.tbar();
  }
}

/// shared r -= A e, team-parallel over all rows (r-Multadd update).
void team_residual_update_shared(const Ctx& c, const CsrMatrix& a,
                                 const Vector& e, Vector& r) {
  const Range rg = c.chunk(static_cast<std::size_t>(a.rows()));
  const auto rb = static_cast<Index>(rg.begin);
  const auto re = static_cast<Index>(rg.end);
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    c.tbar();  // see team_read_shared
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    for (Index i = rb; i < re; ++i) {
      double s = 0.0;
      const auto rp = a.row_ptr();
      const auto ci = a.col_idx();
      const auto v = a.values();
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        s += v[static_cast<std::size_t>(k)] *
             e[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
      }
      r[static_cast<std::size_t>(i)] -= s;
    }
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    for (Index i = rb; i < re; ++i) {
      double s = 0.0;
      const auto rp = a.row_ptr();
      const auto ci = a.col_idx();
      const auto v = a.values();
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        s += v[static_cast<std::size_t>(k)] *
             e[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
      }
      relaxed_add(r[static_cast<std::size_t>(i)], -s);
    }
    c.tbar();
  }
}

/// Non-blocking ("No Wait") refresh of this *thread's* static chunk of the
/// shared residual from the shared x: r_i = b_i - sum_j a_ij x_j.
void thread_refresh_global_residual(const Ctx& c) {
  const CsrMatrix& a = c.sh->s->a(0);
  const Vector& b = *c.sh->b;
  const Vector& x = *c.sh->x;
  Vector& r = c.sh->r;
  const Range rg = static_chunk(static_cast<std::size_t>(a.rows()),
                                c.sh->num_threads, c.global_id);
  const bool locking = c.sh->opts.write == WritePolicy::kLockWrite;
  if (locking) c.sh->lock.lock();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  for (std::size_t i = rg.begin; i < rg.end; ++i) {
    double s = b[i];
    const auto row = static_cast<Index>(i);
    for (Index k = rp[row]; k < rp[row + 1]; ++k) {
      const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
      s -= v[static_cast<std::size_t>(k)] * (locking ? x[j] : relaxed_load(x[j]));
    }
    if (locking) {
      r[i] = s;
    } else {
      relaxed_store(r[i], s);
    }
  }
  if (locking) c.sh->lock.unlock();
}

// ---------------------------------------------------------------------------
// Team-parallel numerical kernels.
// ---------------------------------------------------------------------------

/// y = M v over the team (rows of y chunked by rank), with a trailing
/// team barrier.
void team_spmv(const Ctx& c, const CsrMatrix& m, const Vector& v, Vector& y) {
  const Range rg = c.chunk(static_cast<std::size_t>(m.rows()));
  m.spmv_rows(v, y, static_cast<Index>(rg.begin), static_cast<Index>(rg.end));
  c.tbar();
}

/// out = `sweeps` smoothing sweeps on A out = rhs from a zero initial
/// guess, team-parallel. `lvl_scratch` is a level-sized scratch vector.
void team_smooth_zero(const Ctx& c, const Smoother& sm, const Vector& rhs,
                      Vector& out, Vector& lvl_scratch, int sweeps) {
  const std::size_t n = rhs.size();
  const Range rg = c.chunk(n);
  for (std::size_t i = rg.begin; i < rg.end; ++i) out[i] = 0.0;
  c.tbar();
  const bool has_block = c.rank < sm.num_blocks();
  if (sm.type() == SmootherType::kAsyncGS) {
    // Asynchronous smoothing: no intra-sweep or inter-sweep barriers.
    for (int s = 0; s < sweeps; ++s) {
      if (has_block) sm.async_gs_sweep_block(rhs, out, c.rank);
    }
    c.tbar();
    return;
  }
  if (has_block) sm.apply_zero_block(rhs, out, c.rank);
  c.tbar();
  for (int s = 1; s < sweeps; ++s) {
    // scratch = rhs - A out over this rank's rows.
    sm.matrix().residual_rows(rhs, out, lvl_scratch,
                              static_cast<Index>(rg.begin),
                              static_cast<Index>(rg.end));
    c.tbar();
    if (has_block) {
      // out_block += M^{-1} scratch_block: apply_zero_block writes the
      // block's solve into a zeroed temp, folded into out immediately.
      // (The block rows coincide with this rank's chunk rows.)
      const Range blk = sm.block(c.rank);
      Vector delta(rhs.size(), 0.0);
      sm.apply_zero_block(lvl_scratch, delta, c.rank);
      for (std::size_t i = blk.begin; i < blk.end; ++i) out[i] += delta[i];
    }
    c.tbar();
  }
}

/// Computes grid k's fine-level correction into team.echain[0] from the
/// team-local fine residual team.rchain[0]. Matches
/// AdditiveCorrector::correction step for step, but team-parallel.
void team_correction(const Ctx& c, std::size_t grid_pos) {
  Team& t = *c.team;
  const Shared& sh = *c.sh;
  const MgSetup& s = *sh.s;
  const AdditiveOptions& ao = sh.corr->options();
  const std::size_t k = t.first_grid + grid_pos;
  const std::size_t coarsest = s.num_levels() - 1;
  const bool multadd = ao.kind == AdditiveKind::kMultadd;

  // Restrict down to level k.
  for (std::size_t j = 0; j < k; ++j) {
    const CsrMatrix& r = multadd ? s.rbar(j) : s.r(j);
    team_spmv(c, r, t.rchain[j], t.rchain[j + 1]);
  }
  const Vector& rk = t.rchain[k];
  Vector& ek = t.echain[k];

  if (k == coarsest) {
    if (c.rank == 0) {
      if (!s.coarse_solver().empty()) {
        s.coarse_solver().solve(rk, ek);
      } else {
        s.smoother(k).apply_zero(rk, ek);
      }
    }
    c.tbar();
  } else if (ao.kind == AdditiveKind::kAfacx) {
    // e_{k+1} from s2 sweeps (or the exact solve when k+1 is the coarsest
    // level and an LU factorization exists).
    team_spmv(c, s.r(k), rk, t.rchain[k + 1]);
    if (k + 1 == coarsest && !s.coarse_solver().empty()) {
      if (c.rank == 0) s.coarse_solver().solve(t.rchain[k + 1], t.u);
      c.tbar();
    } else {
      team_smooth_zero(c, *t.smooth_k1[grid_pos], t.rchain[k + 1], t.u,
                       t.scratch[k + 1], ao.afacx_s2);
    }
    // rhs = r_k - A_k P u, then s1 sweeps from zero.
    team_spmv(c, s.p(k), t.u, t.pu);
    team_spmv(c, s.a(k), t.pu, t.scratch[k]);
    {
      const Range rg = c.chunk(rk.size());
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        t.scratch[k][i] = rk[i] - t.scratch[k][i];
      }
      c.tbar();
    }
    // Note scratch[k] doubles as the rhs; sweeps > 1 need a second scratch.
    team_smooth_zero(c, *t.smooth_k[grid_pos], t.scratch[k], ek, t.pu,
                     ao.afacx_s1);
  } else {
    // Multadd / BPX: Lambda_k = one sweep from a zero guess.
    team_smooth_zero(c, *t.smooth_k[grid_pos], rk, ek, t.scratch[k], 1);
  }

  // Prolong back up to the fine grid.
  for (std::size_t j = k; j-- > 0;) {
    const CsrMatrix& p = multadd ? s.pbar(j) : s.p(j);
    team_spmv(c, p, t.echain[j + 1], t.echain[j]);
  }
}

/// Refreshes the team-local fine residual after a correction, per the
/// configured residual-computation scheme.
void team_refresh_residual(const Ctx& c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const CsrMatrix& a = sh.s->a(0);
  if (sh.opts.residual_based) {
    team_residual_update_shared(c, a, t.echain[0], sh.r);
    team_read_shared(c, sh.r, t.rchain[0]);
  } else if (sh.opts.rescomp == ResComp::kLocal) {
    team_read_shared(c, *sh.x, t.xk);
    const Range rg = c.chunk(t.rchain[0].size());
    a.residual_rows(*sh.b, t.xk, t.rchain[0], static_cast<Index>(rg.begin),
                    static_cast<Index>(rg.end));
    c.tbar();
  } else {
    thread_refresh_global_residual(c);  // No Wait: no barrier
    team_read_shared(c, sh.r, t.rchain[0]);
  }
}

/// Worker body for the asynchronous mode.
void worker_async(Ctx c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const int t_max = sh.opts.t_max;

  // Initialize the team-local fine residual (and, via run_shared_memory,
  // the shared r was already filled before threads started).
  {
    const CsrMatrix& a = sh.s->a(0);
    const Range rg = c.chunk(t.rchain[0].size());
    a.residual_rows(*sh.b, *sh.x, t.rchain[0], static_cast<Index>(rg.begin),
                    static_cast<Index>(rg.end));
  }
  c.gbar();  // also publishes x for relaxed readers and starts the clock
  if (c.global_id == 0) sh.t0 = std::chrono::steady_clock::now();
  c.gbar();

  while (true) {
    bool all_done = true;
    for (std::size_t g = 0; g < t.num_grids; ++g) {
      const std::size_t grid = t.first_grid + g;
      auto& count = sh.counts[grid];
      if (sh.opts.criterion == StopCriterion::kIndependent &&
          count.load(std::memory_order_relaxed) >= t_max) {
        continue;
      }
      all_done = false;

      team_correction(c, g);
      team_add_shared(c, *sh.x, t.echain[0]);
      if (c.rank == 0) {
        count.fetch_add(1, std::memory_order_relaxed);
        sh.record_commit(grid);
      }
      team_refresh_residual(c);
      // Encourage the OS to interleave teams when cores are oversubscribed;
      // without this, one team can burn through many corrections per
      // timeslice while the others' residual views go completely stale.
      std::this_thread::yield();
    }

    // Collective termination: rank 0 decides, the team barrier publishes
    // the verdict, everyone acts on the same value.
    if (c.rank == 0) {
      if (sh.opts.criterion == StopCriterion::kIndependent) {
        t.stop_verdict = all_done;
      } else {
        if (c.global_id == 0) {
          bool done = true;
          for (std::size_t g = 0; g < sh.num_grids; ++g) {
            if (sh.counts[g].load(std::memory_order_relaxed) < t_max) {
              done = false;
              break;
            }
          }
          if (done) sh.stop.store(true, std::memory_order_relaxed);
        }
        t.stop_verdict = sh.stop.load(std::memory_order_relaxed);
      }
    }
    c.tbar();
    // Read the verdict into a local and re-synchronize: without the second
    // barrier, rank 0 could loop around and overwrite stop_verdict for the
    // next iteration while a slow teammate is still reading this one's
    // value -- the teammate would exit on the future verdict and leave
    // rank 0 stranded at a team barrier.
    const bool stop_now = t.stop_verdict;
    c.tbar();
    if (stop_now) break;
  }
}

/// Worker body for the synchronous additive mode: one global residual
/// phase + one correction per grid per cycle, global barriers between.
void worker_sync(Ctx c) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const CsrMatrix& a = sh.s->a(0);

  c.gbar();
  if (c.global_id == 0) sh.t0 = std::chrono::steady_clock::now();
  c.gbar();

  for (int cycle = 0; cycle < sh.opts.t_max; ++cycle) {
    // All threads: shared r = b - A x (x is stable during this phase).
    {
      const Range rg = static_chunk(static_cast<std::size_t>(a.rows()),
                                    sh.num_threads, c.global_id);
      a.residual_rows(*sh.b, *sh.x, sh.r, static_cast<Index>(rg.begin),
                      static_cast<Index>(rg.end));
    }
    c.gbar();

    for (std::size_t g = 0; g < t.num_grids; ++g) {
      // Team-local copy of the (stable) shared residual, then correct.
      {
        const Range rg = c.chunk(t.rchain[0].size());
        for (std::size_t i = rg.begin; i < rg.end; ++i) {
          t.rchain[0][i] = sh.r[i];
        }
        c.tbar();
      }
      team_correction(c, g);
      team_add_shared(c, *sh.x, t.echain[0]);
      if (c.rank == 0) {
        sh.counts[t.first_grid + g].fetch_add(1, std::memory_order_relaxed);
        sh.record_commit(t.first_grid + g);
      }
    }
    c.gbar();
  }
}

/// Builds the team structures (thread assignment, smoothers, workspaces).
std::vector<Team> build_teams(const Shared& sh) {
  const MgSetup& s = *sh.s;
  const std::size_t grids = sh.num_grids;
  const std::size_t threads = sh.num_threads;
  const AdditiveOptions& ao = sh.corr->options();

  std::vector<Team> teams;
  if (threads >= grids) {
    // One team per grid, threads balanced by work.
    const std::vector<std::size_t> counts =
        assign_threads_to_grids(sh.corr->work(), threads);
    const std::vector<Range> ranges = thread_ranges(counts);
    teams.resize(grids);
    for (std::size_t k = 0; k < grids; ++k) {
      teams[k].first_grid = k;
      teams[k].num_grids = 1;
      teams[k].nthreads = counts[k];
      teams[k].first_thread = ranges[k].begin;
    }
  } else {
    // Fewer threads than grids: single-thread teams own contiguous grid
    // ranges.
    teams.resize(threads);
    for (std::size_t tid = 0; tid < threads; ++tid) {
      const Range gr = static_chunk(grids, threads, tid);
      teams[tid].first_grid = gr.begin;
      teams[tid].num_grids = gr.size();
      teams[tid].nthreads = 1;
      teams[tid].first_thread = tid;
    }
  }

  for (Team& t : teams) {
    t.barrier = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(t.nthreads));
    const std::size_t top = t.first_grid + t.num_grids - 1;
    const std::size_t levels_needed =
        std::min(s.num_levels(), top + 2);  // +1 level for AFACx's e_{k+1}
    t.rchain.resize(levels_needed);
    t.echain.resize(levels_needed);
    t.scratch.resize(levels_needed);
    for (std::size_t j = 0; j < levels_needed; ++j) {
      const auto n = static_cast<std::size_t>(s.a(j).rows());
      t.rchain[j].assign(n, 0.0);
      t.echain[j].assign(n, 0.0);
      t.scratch[j].assign(n, 0.0);
    }
    t.xk.assign(static_cast<std::size_t>(s.a(0).rows()), 0.0);
    // AFACx u lives on level k+1 and pu on level k for each owned grid k;
    // sizes shrink with depth, so the finest owned grid dictates both.
    t.u.assign(static_cast<std::size_t>(
                   s.a(std::min(t.first_grid + 1, s.num_levels() - 1)).rows()),
               0.0);
    t.pu.assign(static_cast<std::size_t>(s.a(t.first_grid).rows()), 0.0);

    SmootherOptions so = s.options().smoother;
    so.num_blocks = t.nthreads;
    for (std::size_t g = 0; g < t.num_grids; ++g) {
      const std::size_t k = t.first_grid + g;
      t.smooth_k.push_back(std::make_unique<Smoother>(s.a(k), so));
      if (ao.kind == AdditiveKind::kAfacx && k + 1 < s.num_levels()) {
        t.smooth_k1.push_back(std::make_unique<Smoother>(s.a(k + 1), so));
      } else {
        t.smooth_k1.push_back(nullptr);
      }
    }
  }
  return teams;
}

/// Runs `body(0..num_threads-1)` either as a gang on an external pool or on
/// freshly spawned threads (the historical per-solve spawn/join path).
void dispatch_threads(SolverPool* pool, std::size_t num_threads,
                      const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    if (pool->size() < num_threads) {
      throw std::invalid_argument(
          "runtime: pool smaller than num_threads (gang would deadlock)");
    }
    pool->run_gang(num_threads, body);
    return;
  }
  std::vector<std::jthread> workers;
  workers.reserve(num_threads);
  for (std::size_t id = 0; id < num_threads; ++id) {
    workers.emplace_back(body, id);
  }
}

}  // namespace

RuntimeResult run_shared_memory(const AdditiveCorrector& corrector,
                                const Vector& b, Vector& x,
                                const RuntimeOptions& opts) {
  if (opts.num_threads == 0) {
    throw std::invalid_argument("num_threads must be >= 1");
  }
  const MgSetup& s = corrector.setup();

  Shared sh;
  sh.corr = &corrector;
  sh.s = &s;
  sh.b = &b;
  sh.x = &x;
  sh.opts = opts;
  sh.num_grids = corrector.num_grids();
  sh.num_threads = opts.num_threads;
  sh.counts = std::make_unique<std::atomic<int>[]>(sh.num_grids);
  for (std::size_t g = 0; g < sh.num_grids; ++g) sh.counts[g].store(0);
  sh.global_barrier = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(sh.num_threads));
  if (sh.uses_shared_r()) s.a(0).residual(b, x, sh.r);

  std::vector<Team> teams = build_teams(sh);

  // Flat global-id -> (team, rank) map so one gang body serves both the
  // spawn path and the pool path.
  struct Slot {
    Team* team = nullptr;
    std::size_t rank = 0;
  };
  std::vector<Slot> slots(sh.num_threads);
  for (Team& t : teams) {
    for (std::size_t r = 0; r < t.nthreads; ++r) {
      slots[t.first_thread + r] = Slot{&t, r};
    }
  }
  dispatch_threads(opts.pool, sh.num_threads, [&](std::size_t id) {
    Ctx c{&sh, slots[id].team, slots[id].rank, id};
    if (sh.opts.mode == ExecMode::kSynchronous) {
      worker_sync(c);
    } else {
      worker_async(c);
    }
  });

  RuntimeResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - sh.t0)
          .count();
  result.corrections.resize(sh.num_grids);
  for (std::size_t g = 0; g < sh.num_grids; ++g) {
    result.corrections[static_cast<std::size_t>(g)] =
        sh.counts[g].load(std::memory_order_relaxed);
  }
  result.trace = std::move(sh.trace);
  Vector r;
  s.a(0).residual(b, x, r);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  return result;
}

RuntimeResult run_mult_threaded(const MgSetup& setup, const Vector& b,
                                Vector& x, int t_max, std::size_t num_threads,
                                SolverPool* pool) {
  if (num_threads == 0) {
    throw std::invalid_argument("num_threads must be >= 1");
  }
  const std::size_t nl = setup.num_levels();
  const std::size_t coarsest = nl - 1;

  // Level workspaces shared by all threads.
  std::vector<Vector> r(nl), e(nl), tmp(nl), tmp2(nl);
  std::vector<std::unique_ptr<Smoother>> sm(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<std::size_t>(setup.a(k).rows());
    r[k].assign(n, 0.0);
    e[k].assign(n, 0.0);
    tmp[k].assign(n, 0.0);
    tmp2[k].assign(n, 0.0);
    SmootherOptions so = setup.options().smoother;
    so.num_blocks = num_threads;
    sm[k] = std::make_unique<Smoother>(setup.a(k), so);
  }

  std::barrier<> bar(static_cast<std::ptrdiff_t>(num_threads));
  std::chrono::steady_clock::time_point t0;

  auto worker = [&](std::size_t tid) {
    auto chunk = [&](std::size_t n) { return static_chunk(n, num_threads, tid); };
    auto rows = [&](std::size_t k) {
      return chunk(static_cast<std::size_t>(setup.a(k).rows()));
    };
    bar.arrive_and_wait();
    if (tid == 0) t0 = std::chrono::steady_clock::now();
    bar.arrive_and_wait();

    for (int t = 0; t < t_max; ++t) {
      // Fine residual.
      {
        const Range rg = rows(0);
        setup.a(0).residual_rows(b, x, r[0], static_cast<Index>(rg.begin),
                                 static_cast<Index>(rg.end));
      }
      bar.arrive_and_wait();

      // Downward sweep.
      for (std::size_t k = 0; k < coarsest; ++k) {
        if (tid < sm[k]->num_blocks()) {
          // Pre-smooth: e_k = M^{-1} r_k from zero.
          const Range blk = sm[k]->block(tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) e[k][i] = 0.0;
        }
        bar.arrive_and_wait();
        if (tid < sm[k]->num_blocks()) sm[k]->apply_zero_block(r[k], e[k], tid);
        bar.arrive_and_wait();
        {
          const Range rg = rows(k);
          setup.a(k).residual_rows(r[k], e[k], tmp[k],
                                   static_cast<Index>(rg.begin),
                                   static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
        {
          const Range rg = rows(k + 1);
          setup.r(k).spmv_rows(tmp[k], r[k + 1], static_cast<Index>(rg.begin),
                               static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
      }

      // Coarsest solve.
      if (tid == 0) {
        if (!setup.coarse_solver().empty()) {
          setup.coarse_solver().solve(r[coarsest], e[coarsest]);
        } else {
          setup.smoother(coarsest).apply_zero(r[coarsest], e[coarsest]);
        }
      }
      bar.arrive_and_wait();

      // Upward sweep.
      for (std::size_t k = coarsest; k-- > 0;) {
        {
          const Range rg = rows(k);
          setup.p(k).spmv_rows(e[k + 1], tmp[k], static_cast<Index>(rg.begin),
                               static_cast<Index>(rg.end));
          for (std::size_t i = rg.begin; i < rg.end; ++i) e[k][i] += tmp[k][i];
        }
        bar.arrive_and_wait();
        {
          const Range rg = rows(k);
          setup.a(k).residual_rows(r[k], e[k], tmp[k],
                                   static_cast<Index>(rg.begin),
                                   static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
        if (tid < sm[k]->num_blocks()) {
          const Range blk = sm[k]->block(tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) tmp2[k][i] = 0.0;
          sm[k]->apply_zero_block(tmp[k], tmp2[k], tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) e[k][i] += tmp2[k][i];
        }
        bar.arrive_and_wait();
      }

      // Correct x.
      {
        const Range rg = rows(0);
        for (std::size_t i = rg.begin; i < rg.end; ++i) x[i] += e[0][i];
      }
      bar.arrive_and_wait();
    }
  };

  dispatch_threads(pool, num_threads, worker);

  RuntimeResult result;
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  result.corrections.assign(setup.num_levels(), t_max);
  Vector res;
  setup.a(0).residual(b, x, res);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(res) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  return result;
}

}  // namespace asyncmg
