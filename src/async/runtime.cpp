#include "async/runtime.hpp"

#include <functional>
#include <memory>
#include <stdexcept>
#include <thread>

#include "async/driver.hpp"
#include "async/team.hpp"
#include "service/solver_pool.hpp"
#include "sparse/vec.hpp"
#include "telemetry/clock.hpp"
#include "util/partition.hpp"

namespace asyncmg {

std::string runtime_config_name(const RuntimeOptions& o) {
  std::string s = o.mode == ExecMode::kSynchronous ? "sync"
                  : o.mode == ExecMode::kScripted  ? "scripted"
                                                   : "async";
  s += o.write == WritePolicy::kLockWrite ? " lock-write" : " atomic-write";
  if (o.mode == ExecMode::kAsynchronous) {
    s += o.rescomp == ResComp::kLocal ? " local-res" : " global-res";
    if (o.residual_based) s += " r-based";
  }
  return s;
}

double RuntimeResult::mean_corrections() const {
  if (corrections.empty()) return 0.0;
  double total = 0.0;
  for (int c : corrections) total += c;
  return total / static_cast<double>(corrections.size());
}

namespace {

/// Runs `body(0..num_threads-1)` either as a gang on an external pool or on
/// freshly spawned threads (the historical per-solve spawn/join path).
void dispatch_threads(SolverPool* pool, std::size_t num_threads,
                      const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    if (pool->size() < num_threads) {
      throw std::invalid_argument(
          "runtime: pool smaller than num_threads (gang would deadlock)");
    }
    pool->run_gang(num_threads, body);
    return;
  }
  std::vector<std::jthread> workers;
  workers.reserve(num_threads);
  for (std::size_t id = 0; id < num_threads; ++id) {
    workers.emplace_back(body, id);
  }
}

}  // namespace

RuntimeResult run_shared_memory(const AdditiveCorrector& corrector,
                                const Vector& b, Vector& x,
                                const RuntimeOptions& opts) {
  if (opts.num_threads == 0) {
    throw std::invalid_argument("num_threads must be >= 1");
  }
  const MgSetup& s = corrector.setup();

  Shared sh;
  sh.corr = &corrector;
  sh.s = &s;
  sh.b = &b;
  sh.x = &x;
  sh.opts = opts;
  sh.num_grids = corrector.num_grids();
  if (opts.active_grids > 0 && opts.active_grids < sh.num_grids) {
    sh.num_grids = opts.active_grids;
  }
  sh.num_threads = opts.num_threads;
  sh.counts = std::make_unique<std::atomic<int>[]>(sh.num_grids);
  sh.dead = std::make_unique<std::atomic<bool>[]>(sh.num_grids);
  for (std::size_t g = 0; g < sh.num_grids; ++g) {
    sh.counts[g].store(0);
    sh.dead[g].store(false);
  }
  sh.global_barrier = std::make_unique<std::barrier<>>(
      static_cast<std::ptrdiff_t>(sh.num_threads));
  if (opts.check_invariants) sh.x0 = x;
  if (sh.uses_shared_r()) {
    s.backend().csr_residual(s.a(0), b, x, sh.r, /*parallel=*/false);
  }

  std::vector<Team> teams = build_teams(sh);
  // May throw std::invalid_argument (scripted mode rejects a structurally
  // invalid schedule) -- before any thread starts.
  const std::unique_ptr<ScheduleDriver> driver = make_driver(sh, teams);

  // Flat global-id -> (team, rank) map so one gang body serves both the
  // spawn path and the pool path.
  struct Slot {
    Team* team = nullptr;
    std::size_t rank = 0;
  };
  std::vector<Slot> slots(sh.num_threads);
  for (Team& t : teams) {
    for (std::size_t r = 0; r < t.nthreads; ++r) {
      slots[t.first_thread + r] = Slot{&t, r};
    }
  }
  dispatch_threads(opts.pool, sh.num_threads, [&](std::size_t id) {
    driver->worker(Ctx{&sh, slots[id].team, slots[id].rank, id});
  });

  RuntimeResult result;
  result.seconds = sh.clock.seconds();
  result.corrections.resize(sh.num_grids);
  for (std::size_t g = 0; g < sh.num_grids; ++g) {
    result.corrections[static_cast<std::size_t>(g)] =
        sh.counts[g].load(std::memory_order_relaxed);
  }
  result.trace = std::move(sh.trace);
  Vector r;
  s.backend().csr_residual(s.a(0), b, x, r, /*parallel=*/false);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  driver->finalize(result);
  return result;
}

RuntimeResult run_mult_threaded(const MgSetup& setup, const Vector& b,
                                Vector& x, int t_max, std::size_t num_threads,
                                SolverPool* pool) {
  if (num_threads == 0) {
    throw std::invalid_argument("num_threads must be >= 1");
  }
  const std::size_t nl = setup.num_levels();
  const std::size_t coarsest = nl - 1;

  // Level workspaces shared by all threads.
  std::vector<Vector> r(nl), e(nl), tmp(nl), tmp2(nl);
  std::vector<std::unique_ptr<Smoother>> sm(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<std::size_t>(setup.a(k).rows());
    r[k].assign(n, 0.0);
    e[k].assign(n, 0.0);
    tmp[k].assign(n, 0.0);
    tmp2[k].assign(n, 0.0);
    SmootherOptions so = setup.options().smoother;
    so.num_blocks = num_threads;
    sm[k] = std::make_unique<Smoother>(setup.a(k), so);
  }

  std::barrier<> bar(static_cast<std::ptrdiff_t>(num_threads));
  SessionClock clock;

  auto worker = [&](std::size_t tid) {
    auto chunk = [&](std::size_t n) { return static_chunk(n, num_threads, tid); };
    auto rows = [&](std::size_t k) {
      return chunk(static_cast<std::size_t>(setup.a(k).rows()));
    };
    bar.arrive_and_wait();
    if (tid == 0) clock.start();
    bar.arrive_and_wait();

    for (int t = 0; t < t_max; ++t) {
      // Fine residual.
      {
        const Range rg = rows(0);
        setup.backend().csr_residual_rows(setup.a(0), b, x, r[0],
                                          static_cast<Index>(rg.begin),
                                          static_cast<Index>(rg.end));
      }
      bar.arrive_and_wait();

      // Downward sweep.
      for (std::size_t k = 0; k < coarsest; ++k) {
        if (tid < sm[k]->num_blocks()) {
          // Pre-smooth: e_k = M^{-1} r_k from zero.
          const Range blk = sm[k]->block(tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) e[k][i] = 0.0;
        }
        bar.arrive_and_wait();
        if (tid < sm[k]->num_blocks()) sm[k]->apply_zero_block(r[k], e[k], tid);
        bar.arrive_and_wait();
        {
          const Range rg = rows(k);
          setup.backend().csr_residual_rows(setup.a(k), r[k], e[k], tmp[k],
                                            static_cast<Index>(rg.begin),
                                            static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
        {
          const Range rg = rows(k + 1);
          setup.backend().csr_spmv_rows(setup.r(k), tmp[k], r[k + 1],
                                        static_cast<Index>(rg.begin),
                                        static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
      }

      // Coarsest solve.
      if (tid == 0) {
        if (!setup.coarse_solver().empty()) {
          setup.coarse_solver().solve(r[coarsest], e[coarsest]);
        } else {
          setup.smoother(coarsest).apply_zero(r[coarsest], e[coarsest]);
        }
      }
      bar.arrive_and_wait();

      // Upward sweep.
      for (std::size_t k = coarsest; k-- > 0;) {
        {
          const Range rg = rows(k);
          setup.backend().csr_spmv_rows(setup.p(k), e[k + 1], tmp[k],
                                        static_cast<Index>(rg.begin),
                                        static_cast<Index>(rg.end));
          for (std::size_t i = rg.begin; i < rg.end; ++i) e[k][i] += tmp[k][i];
        }
        bar.arrive_and_wait();
        {
          const Range rg = rows(k);
          setup.backend().csr_residual_rows(setup.a(k), r[k], e[k], tmp[k],
                                            static_cast<Index>(rg.begin),
                                            static_cast<Index>(rg.end));
        }
        bar.arrive_and_wait();
        if (tid < sm[k]->num_blocks()) {
          const Range blk = sm[k]->block(tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) tmp2[k][i] = 0.0;
          sm[k]->apply_zero_block(tmp[k], tmp2[k], tid);
          for (std::size_t i = blk.begin; i < blk.end; ++i) e[k][i] += tmp2[k][i];
        }
        bar.arrive_and_wait();
      }

      // Correct x.
      {
        const Range rg = rows(0);
        for (std::size_t i = rg.begin; i < rg.end; ++i) x[i] += e[0][i];
      }
      bar.arrive_and_wait();
    }
  };

  dispatch_threads(pool, num_threads, worker);

  RuntimeResult result;
  result.seconds = clock.seconds();
  result.corrections.assign(setup.num_levels(), t_max);
  Vector res;
  setup.backend().csr_residual(setup.a(0), b, x, res, /*parallel=*/false);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(res) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  return result;
}

}  // namespace asyncmg
