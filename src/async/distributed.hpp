#pragma once
// Discrete-event simulation of *distributed-memory* asynchronous additive
// multigrid -- the extension the paper's conclusion points to ("we believe
// the global-res approach is the most natural way to implement a
// distributed asynchronous multigrid method").
//
// Each grid of the hierarchy is owned by one process (group). Processes
// compute corrections whose duration is work/speed with multiplicative
// jitter; a committed correction becomes visible to the *other* grids'
// residual views only after a per-message network latency. This is the
// time-based analogue of the Section III models: the read delay is no
// longer a bounded count of iterations but the product of compute-time
// imbalance and network latency.
//
// Two execution disciplines are simulated on identical workloads:
//   * asynchronous: every grid loops on its own clock (global-res style --
//     it trusts its possibly-stale view of the fine residual);
//   * bulk-synchronous: all grids correct from the same residual and wait
//     at a barrier each cycle (the distributed analogue of sync Multadd).
//
// The simulator reports the true final residual, the simulated makespan,
// and per-grid correction counts, so one can sweep the latency and watch
// the asynchronous version overtake the synchronous one (bench/
// distributed_sim).

#include <cstdint>

#include "multigrid/additive.hpp"

namespace asyncmg {

struct DistributedOptions {
  /// Corrections per grid.
  int t_max = 20;
  /// Per-thread useful throughput (flops/s) of one process.
  double flops_per_second = 2.0e9;
  /// Persistent per-process slowdown drawn from U[1 - heterogeneity, 1].
  double heterogeneity = 0.3;
  /// Per-correction multiplicative jitter drawn from U[1 - jitter, 1].
  double jitter = 0.2;
  /// Mean one-way message latency (seconds); individual messages sample
  /// U[0.5, 1.5] * latency.
  double latency = 1.0e-4;
  /// Barrier cost of the synchronous discipline (seconds per cycle).
  double barrier_cost = 5.0e-5;
  std::uint64_t seed = 7;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting (both simulate entry points call this).
  void validate() const;
};

struct DistributedResult {
  double final_rel_res = 1.0;  // true ||b - A x|| / ||b|| at the end
  double makespan = 0.0;       // simulated seconds until the last commit
  std::vector<int> corrections;
  double mean_corrections() const;
};

/// Simulates the asynchronous discipline.
DistributedResult simulate_distributed_async(const AdditiveCorrector& corr,
                                             const Vector& b, Vector& x,
                                             const DistributedOptions& opts);

/// Simulates the bulk-synchronous discipline on the same cost model.
DistributedResult simulate_distributed_sync(const AdditiveCorrector& corr,
                                            const Vector& b, Vector& x,
                                            const DistributedOptions& opts);

}  // namespace asyncmg
