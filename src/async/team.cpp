#include "async/team.hpp"

#include <algorithm>

namespace asyncmg {

// ---------------------------------------------------------------------------
// Shared-vector access under the configured write policy.
// ---------------------------------------------------------------------------

void team_read_shared(const Ctx& c, const Vector& src, Vector& dst) {
  const Range rg = c.chunk(src.size());
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    // Align the team before rank 0 takes the global mutex: a teammate may
    // still be inside its own lock-taking code (e.g. the non-blocking
    // global-res refresh); locking before it finishes would deadlock the
    // team barrier below against the mutex.
    c.tbar();
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] = src[i];
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] = relaxed_load(src[i]);
    c.tbar();
  }
}

void team_add_shared(const Ctx& c, Vector& dst, const Vector& e) {
  const Range rg = c.chunk(dst.size());
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    c.tbar();  // see team_read_shared
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    for (std::size_t i = rg.begin; i < rg.end; ++i) dst[i] += e[i];
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    for (std::size_t i = rg.begin; i < rg.end; ++i) relaxed_add(dst[i], e[i]);
    c.tbar();
  }
}

void team_residual_update_shared(const Ctx& c, const CsrMatrix& a,
                                 const Vector& e, Vector& r) {
  const Range rg = c.chunk(static_cast<std::size_t>(a.rows()));
  const auto rb = static_cast<Index>(rg.begin);
  const auto re = static_cast<Index>(rg.end);
  if (c.sh->opts.write == WritePolicy::kLockWrite) {
    c.tbar();  // see team_read_shared
    if (c.rank == 0) c.sh->lock.lock();
    c.tbar();
    a.with_values([&](const auto* v) {
      const auto rp = a.row_ptr();
      const auto ci = a.col_idx();
      for (Index i = rb; i < re; ++i) {
        double s = 0.0;
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          s += v[static_cast<std::size_t>(k)] *
               e[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
        }
        r[static_cast<std::size_t>(i)] -= s;
      }
    });
    c.tbar();
    if (c.rank == 0) c.sh->lock.unlock();
  } else {
    a.with_values([&](const auto* v) {
      const auto rp = a.row_ptr();
      const auto ci = a.col_idx();
      for (Index i = rb; i < re; ++i) {
        double s = 0.0;
        for (Index k = rp[i]; k < rp[i + 1]; ++k) {
          s += v[static_cast<std::size_t>(k)] *
               e[static_cast<std::size_t>(ci[static_cast<std::size_t>(k)])];
        }
        relaxed_add(r[static_cast<std::size_t>(i)], -s);
      }
    });
    c.tbar();
  }
}

void thread_refresh_global_residual(const Ctx& c) {
  const CsrMatrix& a = c.sh->s->a(0);
  const Vector& b = *c.sh->b;
  const Vector& x = *c.sh->x;
  Vector& r = c.sh->r;
  const Range rg = static_chunk(static_cast<std::size_t>(a.rows()),
                                c.sh->num_threads, c.global_id);
  const bool locking = c.sh->opts.write == WritePolicy::kLockWrite;
  if (locking) c.sh->lock.lock();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  a.with_values([&](const auto* v) {
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      double s = b[i];
      const auto row = static_cast<Index>(i);
      for (Index k = rp[row]; k < rp[row + 1]; ++k) {
        const auto j = static_cast<std::size_t>(ci[static_cast<std::size_t>(k)]);
        s -= v[static_cast<std::size_t>(k)] *
             (locking ? x[j] : relaxed_load(x[j]));
      }
      if (locking) {
        r[i] = s;
      } else {
        relaxed_store(r[i], s);
      }
    }
  });
  if (locking) c.sh->lock.unlock();
}

// ---------------------------------------------------------------------------
// Team-parallel numerical kernels.
// ---------------------------------------------------------------------------

void team_spmv(const Ctx& c, const CsrMatrix& m, const Vector& v, Vector& y) {
  const Range rg = c.chunk(static_cast<std::size_t>(m.rows()));
  c.sh->s->backend().csr_spmv_rows(m, v, y, static_cast<Index>(rg.begin),
                                   static_cast<Index>(rg.end));
  c.tbar();
}

void team_smooth_zero(const Ctx& c, const Smoother& sm, const Vector& rhs,
                      Vector& out, Vector& lvl_scratch, int sweeps) {
  const std::size_t n = rhs.size();
  const Range rg = c.chunk(n);
  for (std::size_t i = rg.begin; i < rg.end; ++i) out[i] = 0.0;
  c.tbar();
  const bool has_block = c.rank < sm.num_blocks();
  if (sm.type() == SmootherType::kAsyncGS) {
    // Asynchronous smoothing: no intra-sweep or inter-sweep barriers.
    for (int s = 0; s < sweeps; ++s) {
      if (has_block) sm.async_gs_sweep_block(rhs, out, c.rank);
    }
    c.tbar();
    return;
  }
  if (has_block) sm.apply_zero_block(rhs, out, c.rank);
  c.tbar();
  for (int s = 1; s < sweeps; ++s) {
    // scratch = rhs - A out over this rank's rows.
    c.sh->s->backend().csr_residual_rows(sm.matrix(), rhs, out, lvl_scratch,
                                         static_cast<Index>(rg.begin),
                                         static_cast<Index>(rg.end));
    c.tbar();
    if (has_block) {
      // out_block += M^{-1} scratch_block: apply_zero_block writes the
      // block's solve into the team's shared sweep buffer, folded into out
      // immediately. (The block rows coincide with this rank's chunk rows;
      // every rank writes its own block's rows before reading them, so the
      // buffer needs no zeroing and sharing it across ranks is race-free.)
      const Range blk = sm.block(c.rank);
      Vector& delta = c.team->sweep_delta;
      sm.apply_zero_block(lvl_scratch, delta, c.rank);
      for (std::size_t i = blk.begin; i < blk.end; ++i) out[i] += delta[i];
    }
    c.tbar();
  }
}

void team_correction(const Ctx& c, std::size_t grid_pos) {
  Team& t = *c.team;
  const Shared& sh = *c.sh;
  const MgSetup& s = *sh.s;
  const AdditiveOptions& ao = sh.corr->options();
  const std::size_t k = t.first_grid + grid_pos;
  const std::size_t coarsest = s.num_levels() - 1;
  const bool multadd = ao.kind == AdditiveKind::kMultadd;

  // Restrict down to level k.
  for (std::size_t j = 0; j < k; ++j) {
    const CsrMatrix& r = multadd ? s.rbar(j) : s.r(j);
    team_spmv(c, r, t.rchain[j], t.rchain[j + 1]);
  }
  const Vector& rk = t.rchain[k];
  Vector& ek = t.echain[k];

  if (k == coarsest) {
    if (c.rank == 0) {
      if (!s.coarse_solver().empty()) {
        s.coarse_solver().solve(rk, ek);
      } else {
        s.smoother(k).apply_zero(rk, ek);
      }
    }
    c.tbar();
  } else if (ao.kind == AdditiveKind::kAfacx) {
    // e_{k+1} from s2 sweeps (or the exact solve when k+1 is the coarsest
    // level and an LU factorization exists).
    team_spmv(c, s.r(k), rk, t.rchain[k + 1]);
    if (k + 1 == coarsest && !s.coarse_solver().empty()) {
      if (c.rank == 0) s.coarse_solver().solve(t.rchain[k + 1], t.u);
      c.tbar();
    } else {
      team_smooth_zero(c, *t.smooth_k1[grid_pos], t.rchain[k + 1], t.u,
                       t.scratch[k + 1], ao.afacx_s2);
    }
    // rhs = r_k - A_k P u, then s1 sweeps from zero.
    team_spmv(c, s.p(k), t.u, t.pu);
    team_spmv(c, s.a(k), t.pu, t.scratch[k]);
    {
      const Range rg = c.chunk(rk.size());
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        t.scratch[k][i] = rk[i] - t.scratch[k][i];
      }
      c.tbar();
    }
    // Note scratch[k] doubles as the rhs; sweeps > 1 need a second scratch.
    team_smooth_zero(c, *t.smooth_k[grid_pos], t.scratch[k], ek, t.pu,
                     ao.afacx_s1);
  } else {
    // Multadd / BPX: Lambda_k = one sweep from a zero guess.
    team_smooth_zero(c, *t.smooth_k[grid_pos], rk, ek, t.scratch[k], 1);
  }

  // Prolong back up to the fine grid.
  for (std::size_t j = k; j-- > 0;) {
    const CsrMatrix& p = multadd ? s.pbar(j) : s.p(j);
    team_spmv(c, p, t.echain[j + 1], t.echain[j]);
  }
}

void team_refresh_residual(const Ctx& c, bool drop_shared_read) {
  Team& t = *c.team;
  Shared& sh = *c.sh;
  const CsrMatrix& a = sh.s->a(0);
  if (sh.opts.residual_based) {
    // The commit's residual effect must still be published (drops affect
    // reads only), so the shared update always runs.
    team_residual_update_shared(c, a, t.echain[0], sh.r);
    if (!drop_shared_read) team_read_shared(c, sh.r, t.rchain[0]);
  } else if (sh.opts.rescomp == ResComp::kLocal) {
    if (drop_shared_read) return;  // keep the stale local view untouched
    team_read_shared(c, *sh.x, t.xk);
    const Range rg = c.chunk(t.rchain[0].size());
    sh.s->backend().csr_residual_rows(a, *sh.b, t.xk, t.rchain[0],
                                      static_cast<Index>(rg.begin),
                                      static_cast<Index>(rg.end));
    c.tbar();
  } else {
    thread_refresh_global_residual(c);  // No Wait: no barrier
    if (!drop_shared_read) team_read_shared(c, sh.r, t.rchain[0]);
  }
}

void team_accumulate(const Ctx& c, const Vector& e, Vector& acc) {
  const Range rg = c.chunk(acc.size());
  for (std::size_t i = rg.begin; i < rg.end; ++i) acc[i] += e[i];
  c.tbar();
}

std::vector<Team> build_teams(const Shared& sh) {
  const MgSetup& s = *sh.s;
  const std::size_t grids = sh.num_grids;
  const std::size_t threads = sh.num_threads;
  const AdditiveOptions& ao = sh.corr->options();

  std::vector<Team> teams;
  if (threads >= grids) {
    // One team per grid, threads balanced by work. Only the active prefix
    // gets teams, so its grids share the whole thread budget.
    std::vector<double> work = sh.corr->work();
    work.resize(grids);
    const std::vector<std::size_t> counts =
        assign_threads_to_grids(work, threads);
    const std::vector<Range> ranges = thread_ranges(counts);
    teams.resize(grids);
    for (std::size_t k = 0; k < grids; ++k) {
      teams[k].first_grid = k;
      teams[k].num_grids = 1;
      teams[k].nthreads = counts[k];
      teams[k].first_thread = ranges[k].begin;
    }
  } else {
    // Fewer threads than grids: single-thread teams own contiguous grid
    // ranges.
    teams.resize(threads);
    for (std::size_t tid = 0; tid < threads; ++tid) {
      const Range gr = static_chunk(grids, threads, tid);
      teams[tid].first_grid = gr.begin;
      teams[tid].num_grids = gr.size();
      teams[tid].nthreads = 1;
      teams[tid].first_thread = tid;
    }
  }

  for (Team& t : teams) {
    t.barrier = std::make_unique<std::barrier<>>(
        static_cast<std::ptrdiff_t>(t.nthreads));
    const std::size_t top = t.first_grid + t.num_grids - 1;
    const std::size_t levels_needed =
        std::min(s.num_levels(), top + 2);  // +1 level for AFACx's e_{k+1}
    t.rchain.resize(levels_needed);
    t.echain.resize(levels_needed);
    t.scratch.resize(levels_needed);
    for (std::size_t j = 0; j < levels_needed; ++j) {
      const auto n = static_cast<std::size_t>(s.a(j).rows());
      t.rchain[j].assign(n, 0.0);
      t.echain[j].assign(n, 0.0);
      t.scratch[j].assign(n, 0.0);
    }
    t.xk.assign(static_cast<std::size_t>(s.a(0).rows()), 0.0);
    if (sh.opts.check_invariants) {
      t.commit_acc.assign(static_cast<std::size_t>(s.a(0).rows()), 0.0);
    }
    // AFACx u lives on level k+1 and pu on level k for each owned grid k;
    // sizes shrink with depth, so the finest owned grid dictates both.
    t.u.assign(static_cast<std::size_t>(
                   s.a(std::min(t.first_grid + 1, s.num_levels() - 1)).rows()),
               0.0);
    t.pu.assign(static_cast<std::size_t>(s.a(t.first_grid).rows()), 0.0);
    // Level sizes shrink with depth, so the finest grid this team smooths
    // bounds every level's sweep buffer.
    t.sweep_delta.assign(static_cast<std::size_t>(s.a(t.first_grid).rows()),
                         0.0);

    SmootherOptions so = s.options().smoother;
    so.num_blocks = t.nthreads;
    for (std::size_t g = 0; g < t.num_grids; ++g) {
      const std::size_t k = t.first_grid + g;
      t.smooth_k.push_back(std::make_unique<Smoother>(s.a(k), so));
      if (ao.kind == AdditiveKind::kAfacx && k + 1 < s.num_levels()) {
        t.smooth_k1.push_back(std::make_unique<Smoother>(s.a(k + 1), so));
      } else {
        t.smooth_k1.push_back(nullptr);
      }
    }
  }
  return teams;
}

}  // namespace asyncmg
