#include "async/model.hpp"

#include <algorithm>
#include <stdexcept>

#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/rng.hpp"

namespace asyncmg {

std::string async_model_name(AsyncModelKind k) {
  switch (k) {
    case AsyncModelKind::kSemiAsync:
      return "semi-async";
    case AsyncModelKind::kFullAsyncSolution:
      return "full-async-solution";
    case AsyncModelKind::kFullAsyncResidual:
      return "full-async-residual";
  }
  return "unknown";
}

namespace {

/// Ring buffer of the last (delta+1) state snapshots, indexed by absolute
/// time instant.
class History {
 public:
  History(int depth, const Vector& initial) : depth_(depth) {
    snapshots_.assign(static_cast<std::size_t>(depth), initial);
  }

  /// Snapshot of instant `t` (caller guarantees t is within the window).
  const Vector& at(int t) const {
    return snapshots_[static_cast<std::size_t>(t % depth_)];
  }

  /// Record the state of instant `t`.
  void push(int t, const Vector& state) {
    snapshots_[static_cast<std::size_t>(t % depth_)] = state;
  }

 private:
  int depth_;
  std::vector<Vector> snapshots_;
};

/// Uniform integer sample from [lo, t] (collapses to t when lo >= t).
/// The inclusive lower bound realizes the paper's definition of delta as
/// the *maximum* of t - z_k(t): with lo = max(z_old, t - delta) a read can
/// be delta instants old, and re-reading the last-read instant is allowed.
int sample_instant(Rng& rng, int lo, int t) {
  if (lo >= t) return t;
  return static_cast<int>(rng.uniform_int(lo, t));
}

}  // namespace

AsyncModelResult replay_semiasync_schedule(const AdditiveCorrector& corrector,
                                           const Vector& b, Vector& x,
                                           const Schedule& schedule,
                                           bool record_history,
                                           TelemetrySink* telemetry) {
  const ScheduleCheck check =
      validate_schedule(schedule, corrector.num_grids());
  if (!check.ok) {
    throw std::invalid_argument("replay: schedule invalid: " + check.error);
  }

  const MgSetup& s = corrector.setup();
  const CsrMatrix& a = s.a(0);
  const std::size_t n = b.size();

  AsyncModelResult result;
  result.probabilities = schedule.probabilities;

  History hist(check.max_staleness + 1, x);
  Vector r_read(n), correction, total(n);
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;

  TelemetrySink* const tel =
      (telemetry != nullptr && telemetry->enabled()) ? telemetry : nullptr;

  int t = 0;
  for (const std::vector<ScheduleEvent>& inst : schedule.instants) {
    fill(total, 0.0);
    bool any = false;
    // Same event stream (on tid 0, logical stamps) as the scripted runtime
    // driver's phase C: replay and replayed-run traces compare bitwise.
    if (tel != nullptr) tel->record_at(0, t, EventKind::kInstant, t, 1);
    for (const ScheduleEvent& ev : inst) {
      const Vector& read_state = hist.at(ev.read_instant);
      a.residual(b, read_state, r_read);
      corrector.correction(ev.grid, r_read, correction);
      axpy(1.0, correction, total);
      any = true;
      if (tel != nullptr) {
        tel->record_at(0, t, EventKind::kRelax,
                       static_cast<std::int64_t>(ev.grid), 1);
        tel->record_at(0, t, EventKind::kSharedRead,
                       static_cast<std::int64_t>(ev.grid), ev.read_instant);
      }
    }
    ++t;
    if (any) axpy(1.0, total, x);
    hist.push(t, x);
    if (record_history) {
      Vector r;
      a.residual(b, x, r);
      result.rel_res_history.push_back(norm2(r) * scale);
    }
  }

  result.time_instants = t;
  Vector r;
  a.residual(b, x, r);
  result.final_rel_res = norm2(r) * scale;
  return result;
}

AsyncModelResult run_async_model(const AdditiveCorrector& corrector,
                                 const Vector& b, Vector& x,
                                 const AsyncModelOptions& opts) {
  if (opts.alpha <= 0.0 || opts.alpha > 1.0) {
    throw std::invalid_argument("alpha must be in (0, 1]");
  }
  if (opts.max_delay < 0) throw std::invalid_argument("max_delay must be >= 0");

  if (opts.kind == AsyncModelKind::kSemiAsync) {
    // One sampling path for simulator and scripted runtime: draw the
    // trajectory, then replay it. RNG consumption matches the historical
    // inline loop draw for draw, so results are unchanged bitwise.
    const Schedule sched = sample_schedule(corrector.num_grids(), opts);
    return replay_semiasync_schedule(corrector, b, x, sched,
                                     opts.record_history, opts.telemetry);
  }

  const MgSetup& s = corrector.setup();
  const CsrMatrix& a = s.a(0);
  const std::size_t n = b.size();
  const std::size_t grids = corrector.num_grids();
  const int delta = opts.max_delay;
  const bool residual_based = opts.kind == AsyncModelKind::kFullAsyncResidual;

  Rng rng(opts.seed);

  AsyncModelResult result;
  result.probabilities.resize(grids);
  for (double& p : result.probabilities) p = rng.uniform(opts.alpha, 1.0);

  // State being iterated (x for the solution-based models, r for the
  // residual-based model) and its history window.
  Vector state;
  if (residual_based) {
    a.residual(b, x, state);
  } else {
    state = x;
  }
  History hist(delta + 1, state);

  // Read-instant bookkeeping (assumption 1 of Section III: reads are
  // monotone in time), per component in the full-async models.
  std::vector<std::vector<int>> last_z_comp(grids, std::vector<int>(n, 0));

  std::vector<int> updates(grids, 0);
  std::size_t grids_done = 0;

  Vector read_state(n), r_read(n), correction, total(n);
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  TelemetrySink* const tel =
      (opts.telemetry != nullptr && opts.telemetry->enabled())
          ? opts.telemetry
          : nullptr;

  int t = 0;
  while (grids_done < grids) {
    fill(total, 0.0);
    bool any = false;
    for (std::size_t k = 0; k < grids; ++k) {
      if (updates[k] >= opts.updates_per_grid) continue;
      if (!rng.bernoulli(result.probabilities[k])) continue;

      // Assemble this grid's read of the state, component by component.
      auto& zk = last_z_comp[k];
      for (std::size_t i = 0; i < n; ++i) {
        const int lo = std::max(zk[i], t - delta);
        const int z = sample_instant(rng, lo, t);
        zk[i] = z;
        read_state[i] = hist.at(z)[i];
      }

      // B_k / C_k: the grid's fine-level correction from its read.
      if (residual_based) {
        corrector.correction(k, read_state, correction);
      } else {
        a.residual(b, read_state, r_read);
        corrector.correction(k, r_read, correction);
      }
      axpy(1.0, correction, total);
      any = true;
      if (tel != nullptr) {
        tel->record_at(0, t, EventKind::kRelax, static_cast<std::int64_t>(k),
                       1);
      }
      if (++updates[k] == opts.updates_per_grid) ++grids_done;
    }

    ++t;
    if (any) {
      // Apply the joint update of this time instant.
      axpy(1.0, total, x);
      if (residual_based) {
        Vector atotal;
        a.spmv(total, atotal);
        axpy(-1.0, atotal, state);
      } else {
        state = x;
      }
    }
    hist.push(t, state);
    if (opts.record_history) {
      if (residual_based) {
        result.rel_res_history.push_back(norm2(state) * scale);
      } else {
        Vector r;
        a.residual(b, x, r);
        result.rel_res_history.push_back(norm2(r) * scale);
      }
    }
  }

  result.time_instants = t;
  if (residual_based) {
    result.final_rel_res = norm2(state) * scale;
  } else {
    Vector r;
    a.residual(b, x, r);
    result.final_rel_res = norm2(r) * scale;
  }
  return result;
}

}  // namespace asyncmg
