#include "async/distributed.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "sparse/vec.hpp"
#include "util/rng.hpp"

namespace asyncmg {

void DistributedOptions::validate() const {
  if (t_max < 1) {
    throw std::invalid_argument("DistributedOptions: t_max must be >= 1");
  }
  if (!(flops_per_second > 0.0) || !std::isfinite(flops_per_second)) {
    throw std::invalid_argument(
        "DistributedOptions: flops_per_second must be finite and > 0");
  }
  if (!(heterogeneity >= 0.0) || heterogeneity >= 1.0) {
    throw std::invalid_argument(
        "DistributedOptions: heterogeneity must be in [0, 1)");
  }
  if (!(jitter >= 0.0) || jitter >= 1.0) {
    throw std::invalid_argument("DistributedOptions: jitter must be in [0, 1)");
  }
  if (!(latency >= 0.0) || !std::isfinite(latency)) {
    throw std::invalid_argument(
        "DistributedOptions: latency must be finite and >= 0");
  }
  if (!(barrier_cost >= 0.0) || !std::isfinite(barrier_cost)) {
    throw std::invalid_argument(
        "DistributedOptions: barrier_cost must be finite and >= 0");
  }
}

double DistributedResult::mean_corrections() const {
  if (corrections.empty()) return 0.0;
  double s = 0.0;
  for (int c : corrections) s += c;
  return s / static_cast<double>(corrections.size());
}

namespace {

/// A committed correction whose residual effect (A c) is still in flight
/// to some grids.
struct InFlight {
  Vector a_c;                       // A * correction, fine grid
  std::vector<double> visible_at;   // per destination grid
};

/// Per-grid compute cost of one correction (same accounting as the
/// perfmodel): chain transport + smoothing + fine-grid write.
std::vector<double> correction_flops(const AdditiveCorrector& corr) {
  return corr.work();
}

double sample_latency(Rng& rng, double mean) {
  return mean * rng.uniform(0.5, 1.5);
}

}  // namespace

DistributedResult simulate_distributed_async(const AdditiveCorrector& corr,
                                             const Vector& b, Vector& x,
                                             const DistributedOptions& opts) {
  opts.validate();
  const MgSetup& s = corr.setup();
  const CsrMatrix& a = s.a(0);
  const std::size_t grids = corr.num_grids();
  const std::size_t n = b.size();
  Rng rng(opts.seed);

  // Process speeds (one process group per grid).
  std::vector<double> speed(grids);
  for (double& v : speed) v = 1.0 - opts.heterogeneity * rng.next_double();
  const std::vector<double> flops = correction_flops(corr);

  // True residual, kept exact under commits.
  Vector r_true;
  a.residual(b, x, r_true);

  std::vector<InFlight> in_flight;

  DistributedResult result;
  result.corrections.assign(grids, 0);

  // Event queue: (completion time, grid). Every grid starts a correction
  // at t = 0 from the initial residual.
  using Ev = std::pair<double, std::size_t>;
  std::priority_queue<Ev, std::vector<Ev>, std::greater<>> events;

  // Pending correction payloads: the correction vector each grid is
  // currently computing (captured from its residual view at start time).
  std::vector<Vector> pending(grids);
  Vector view(n);

  auto grid_view = [&](std::size_t k, double now, Vector& out) {
    // out = r_true + sum of in-flight A*c not yet visible to grid k
    // (those corrections are already subtracted from r_true but grid k
    // has not heard about them).
    out = r_true;
    for (const InFlight& f : in_flight) {
      if (f.visible_at[k] > now) axpy(1.0, f.a_c, out);
    }
  };

  auto start_correction = [&](std::size_t k, double now) {
    grid_view(k, now, view);
    corr.correction(k, view, pending[k]);
    const double jitter = 1.0 - opts.jitter * rng.next_double();
    const double dur =
        flops[k] / (opts.flops_per_second * speed[k] * jitter);
    events.push({now + dur, k});
  };

  for (std::size_t k = 0; k < grids; ++k) start_correction(k, 0.0);

  double makespan = 0.0;
  std::size_t done = 0;
  while (!events.empty()) {
    const auto [now, k] = events.top();
    events.pop();
    makespan = std::max(makespan, now);

    // Commit: x += c globally; residual effect propagates with latency.
    axpy(1.0, pending[k], x);
    InFlight f;
    a.spmv(pending[k], f.a_c);
    axpy(-1.0, f.a_c, r_true);
    f.visible_at.assign(grids, now);
    for (std::size_t j = 0; j < grids; ++j) {
      if (j != k) f.visible_at[j] = now + sample_latency(rng, opts.latency);
    }
    in_flight.push_back(std::move(f));

    // Garbage-collect corrections visible everywhere.
    std::erase_if(in_flight, [&](const InFlight& g) {
      return std::all_of(g.visible_at.begin(), g.visible_at.end(),
                         [&](double t) { return t <= now; });
    });

    if (++result.corrections[k] < opts.t_max) {
      start_correction(k, now);
    } else {
      ++done;
    }
  }
  (void)done;

  result.makespan = makespan;
  Vector r;
  a.residual(b, x, r);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  return result;
}

DistributedResult simulate_distributed_sync(const AdditiveCorrector& corr,
                                            const Vector& b, Vector& x,
                                            const DistributedOptions& opts) {
  opts.validate();
  const MgSetup& s = corr.setup();
  const CsrMatrix& a = s.a(0);
  const std::size_t grids = corr.num_grids();
  Rng rng(opts.seed);

  std::vector<double> speed(grids);
  for (double& v : speed) v = 1.0 - opts.heterogeneity * rng.next_double();
  const std::vector<double> flops = correction_flops(corr);

  DistributedResult result;
  result.corrections.assign(grids, opts.t_max);

  Vector r, c;
  double clock = 0.0;
  for (int t = 0; t < opts.t_max; ++t) {
    // All grids read the same residual (computed after the barrier).
    a.residual(b, x, r);
    double slowest = 0.0;
    for (std::size_t k = 0; k < grids; ++k) {
      corr.correction(k, r, c);
      axpy(1.0, c, x);
      const double jitter = 1.0 - opts.jitter * rng.next_double();
      slowest = std::max(
          slowest, flops[k] / (opts.flops_per_second * speed[k] * jitter));
    }
    // The cycle ends when the slowest grid finishes, plus an all-reduce
    // style barrier whose cost includes one message round trip.
    clock += slowest + opts.barrier_cost +
             2.0 * sample_latency(rng, opts.latency);
  }

  result.makespan = clock;
  a.residual(b, x, r);
  const double bnorm = norm2(b);
  result.final_rel_res = norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);
  return result;
}

}  // namespace asyncmg
