#pragma once
// Sequential simulators of the paper's asynchronous multigrid models
// (Section III):
//
//   semi-async            Eq. (6): every grid's read of x is a consistent
//                         snapshot from one past time instant.
//   full-async, solution  Eq. (7): each *component* of x is read from its
//                         own past time instant.
//   full-async, residual  Eq. (10): the iteration is carried on the
//                         residual, with per-component read instants.
//
// Randomness follows Section III exactly: grid k joins Psi(t) with a
// pre-drawn probability p_k ~ U[alpha, 1]; read instants are sampled
// uniformly from (max(z_k(tau_k), t - delta), t]. (The paper prints `min`
// in that range, but its stated assumption "a grid cannot read older
// information than what has already been read" requires `max`; see
// DESIGN.md.) Each grid stops after `updates_per_grid` updates and the
// simulation ends when every grid is done. delta = 0 makes every read
// current, which with one grid per instant recovers the synchronous method.

#include <cstdint>

#include "async/schedule.hpp"
#include "multigrid/additive.hpp"
#include "multigrid/solve_stats.hpp"

namespace asyncmg {

class TelemetrySink;

enum class AsyncModelKind {
  kSemiAsync,          // Eq. 6 (solution- and residual-based coincide)
  kFullAsyncSolution,  // Eq. 7
  kFullAsyncResidual,  // Eq. 10
};

std::string async_model_name(AsyncModelKind k);

struct AsyncModelOptions {
  AsyncModelKind kind = AsyncModelKind::kSemiAsync;
  /// Minimum update probability alpha in (0, 1]; p_k ~ U[alpha, 1].
  double alpha = 1.0;
  /// Maximum read delay delta >= 0.
  int max_delay = 0;
  /// Each grid performs exactly this many corrections ("20 V-cycles").
  int updates_per_grid = 20;
  /// Record ||b - Ax||/||b|| after every time instant (costs one SpMV per
  /// instant; off by default).
  bool record_history = false;
  std::uint64_t seed = 1;
  /// Telemetry sink: the simulators record logical-time events (instants,
  /// relaxations, reads) on tid 0, exactly the stream the scripted runtime
  /// driver records for the same schedule. Not owned; must outlive the call.
  TelemetrySink* telemetry = nullptr;
};

struct AsyncModelResult {
  /// ||b - A x|| / ||b|| at the end of the simulation.
  double final_rel_res = 1.0;
  /// Time instants elapsed until every grid finished.
  int time_instants = 0;
  /// Per-grid update probabilities that were drawn.
  std::vector<double> probabilities;
  /// Relative residual after each time instant (for plotting trajectories).
  std::vector<double> rel_res_history;
};

/// Runs one simulated asynchronous solve of A x = b with the additive
/// method wrapped by `corrector`. `x` is updated in place. The semi-async
/// path is sample_schedule + replay_semiasync_schedule, so it walks exactly
/// the trajectory the scripted runtime driver replays for the same seed.
AsyncModelResult run_async_model(const AdditiveCorrector& corrector,
                                 const Vector& b, Vector& x,
                                 const AsyncModelOptions& opts);

/// Sequentially replays an explicit semi-async interleaving (Eq. 6): at
/// each instant every scheduled grid reads the snapshot of its read
/// instant, and the corrections are applied jointly in event order. Throws
/// std::invalid_argument when the schedule violates the model's structural
/// assumptions (see validate_schedule). This is the sequential reference
/// the scripted runtime driver (ExecMode::kScripted) is tested against.
AsyncModelResult replay_semiasync_schedule(const AdditiveCorrector& corrector,
                                           const Vector& b, Vector& x,
                                           const Schedule& schedule,
                                           bool record_history = false,
                                           TelemetrySink* telemetry = nullptr);

}  // namespace asyncmg
