#pragma once
// Deterministic interleaving schedules and fault plans for the asynchronous
// runtime (the correctness harness for Section III/IV).
//
// A Schedule is an explicit interleaving of (grid, read-instant) events
// grouped by time instant -- exactly the trajectory space of the paper's
// semi-asynchronous model (Eq. 6): at instant t every scheduled grid reads
// the consistent snapshot x^{z} with z <= t, computes its correction, and
// all corrections of the instant are applied jointly. `sample_schedule`
// draws one with the Section-III randomness (p_k ~ U[alpha, 1] grid
// participation, read instants uniform on (max(z_k, t - delta), t]) using
// the same RNG consumption order as run_async_model, so a schedule sampled
// with seed s is the trajectory the sequential semi-async simulator walks
// for seed s. The scripted runtime driver (ExecMode::kScripted) replays a
// Schedule on real threads; replay_semiasync_schedule (async/model.hpp)
// replays it sequentially; for Jacobi-type smoothers the two produce the
// same iterates, which is the model-vs-runtime equivalence the harness
// tests enforce.
//
// Schedules may also be handcrafted to realize adversarial delay patterns
// (e.g. every grid rereading instant 0 forever) that the sampled model
// cannot produce -- the divergence scenarios of Murray & Weinzierl's
// stabilised asynchronous FAC paper. validate_schedule checks the model's
// structural assumptions (monotone per-grid read instants, reads not from
// the future, no duplicate grid per instant) and reports the maximum
// staleness actually used.
//
// FaultPlan injects faults into the *free-running* asynchronous driver:
// per-grid stall windows (sleep before a range of corrections), dropped
// shared-vector reads (the team keeps its stale local view), and killed
// teams (a grid stops correcting forever; both stop criteria treat a dead
// grid as finished so the run recovers instead of deadlocking). Scripted
// runs honor kills; stalls and delayed reads are expressed directly in the
// schedule there.

#include <cstdint>
#include <string>
#include <vector>

namespace asyncmg {

struct AsyncModelOptions;

/// One correction event: grid `grid` reads the snapshot of instant
/// `read_instant` (<= the event's own instant).
struct ScheduleEvent {
  std::size_t grid = 0;
  int read_instant = 0;
  friend bool operator==(const ScheduleEvent&, const ScheduleEvent&) = default;
};

/// An explicit interleaving: instants[t] is Psi(t), the events executed at
/// time instant t (possibly empty). Within an instant, corrections are
/// computed from pre-instant snapshots and applied jointly in event order.
struct Schedule {
  std::vector<std::vector<ScheduleEvent>> instants;
  /// Per-grid participation probabilities drawn by sample_schedule
  /// (informational; empty for handcrafted schedules).
  std::vector<double> probabilities;

  std::size_t num_instants() const { return instants.size(); }
  std::size_t num_events() const;
};

/// Samples a semi-async trajectory with the Section-III randomness, using
/// `opts.alpha`, `opts.max_delay`, `opts.updates_per_grid`, and `opts.seed`
/// (`opts.kind` is ignored). RNG consumption matches run_async_model's
/// semi-async path draw for draw.
Schedule sample_schedule(std::size_t num_grids, const AsyncModelOptions& opts);

/// The canonical bulk-synchronous schedule: `t_max` instants, every grid
/// correcting with a fresh read (read_instant = t) at each instant.
/// Replaying it realizes the synchronous additive method; the sharded
/// executor (src/shard) uses it as its synchronous discipline and as the
/// single-shard bitwise oracle.
Schedule full_schedule(std::size_t num_grids, int t_max);

/// Structural verdict of validate_schedule.
struct ScheduleCheck {
  bool ok = true;
  std::string error;  // first violation, empty when ok
  /// Events per grid (the correction count a replay will produce).
  std::vector<int> updates_per_grid;
  /// Maximum observed read staleness max(t - z) over all events.
  int max_staleness = 0;
};

/// Checks the model's structural assumptions: grid ids < num_grids, read
/// instants in [0, t], per-grid read instants nondecreasing (assumption 1 of
/// Section III), and no grid scheduled twice in one instant.
ScheduleCheck validate_schedule(const Schedule& s, std::size_t num_grids);

/// Plain-text round-trip format (one line per instant: "t: g@z g@z ..." with
/// "-" for an empty instant), used by the golden-trace fixtures.
std::string schedule_to_string(const Schedule& s);
Schedule parse_schedule(const std::string& text);

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

/// Faults applied by the free-running asynchronous driver (kills also apply
/// to scripted replays). Correction indices are 0-based commit counts of the
/// grid, so a window {from_correction=2, corrections=3} hits the 3rd..5th
/// corrections.
struct FaultPlan {
  /// Sleep `milliseconds` before each correction in the window (every
  /// thread of the team sleeps, emulating a descheduled / slow team).
  struct Stall {
    std::size_t grid = 0;
    int from_correction = 0;
    int corrections = 1;
    double milliseconds = 1.0;
  };
  /// Skip the team's read of the shared vector after each correction in the
  /// window: the team keeps correcting from its stale local view (a lost or
  /// late message in the distributed reading). Writes still happen.
  struct DropReads {
    std::size_t grid = 0;
    int from_correction = 0;
    int corrections = 1;
  };
  /// The grid's team stops correcting permanently once it has committed
  /// `after_corrections` corrections. Both stop criteria treat a dead grid
  /// as finished (Criterion-2 recovery: the master no longer waits for it).
  struct Kill {
    std::size_t grid = 0;
    int after_corrections = 0;
  };

  std::vector<Stall> stalls;
  std::vector<DropReads> dropped_reads;
  std::vector<Kill> kills;

  /// Stall duration before correction number `correction` of `grid` (sum of
  /// matching windows; 0 when none).
  double stall_ms(std::size_t grid, int correction) const;
  /// True when the shared read after correction number `correction` of
  /// `grid` is dropped.
  bool drops_read(std::size_t grid, int correction) const;
  /// True when `grid` is dead after `corrections_done` commits.
  bool kills_grid(std::size_t grid, int corrections_done) const;
};

// ---------------------------------------------------------------------------
// Invariant checking.
// ---------------------------------------------------------------------------

/// Filled by the runtime when RuntimeOptions::check_invariants is set (fault
/// counters and killed grids are reported even without it).
struct InvariantReport {
  bool checked = false;
  /// Sum-of-corrections conservation: max_i |x_final - x_0 - sum of all
  /// committed corrections|_i, scaled by (1 + |x|_inf). Under both write
  /// policies every commit must land exactly once (atomic-write: no lost
  /// updates), so this is rounding-level when the runtime is correct.
  double conservation_error = 0.0;
  bool conservation_ok = true;
  /// Divergence sentinel (scripted runs): relative residual exceeded
  /// RuntimeOptions::divergence_threshold at `divergence_instant`; the
  /// replay halts there.
  bool diverged = false;
  int divergence_instant = -1;
  double max_rel_res = 0.0;
  /// Maximum read staleness of the replayed schedule (scripted runs).
  int max_read_staleness = 0;
  /// Grids whose teams a FaultPlan killed.
  std::vector<std::size_t> killed_grids;
  int stalls_applied = 0;
  int reads_dropped = 0;
};

}  // namespace asyncmg
