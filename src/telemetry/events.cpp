#include "telemetry/events.hpp"

namespace asyncmg {

const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kRelax:
      return "relax";
    case EventKind::kSharedRead:
      return "read";
    case EventKind::kInstant:
      return "instant";
    case EventKind::kFaultStall:
      return "stall";
    case EventKind::kFaultDropRead:
      return "drop-read";
    case EventKind::kFaultKill:
      return "kill";
    case EventKind::kCacheHit:
      return "cache-hit";
    case EventKind::kCacheMiss:
      return "cache-miss";
    case EventKind::kCacheEvict:
      return "cache-evict";
    case EventKind::kCacheSpillWrite:
      return "cache-spill-write";
    case EventKind::kCacheSpillLoad:
      return "cache-spill-load";
    case EventKind::kQueueDepth:
      return "queue-depth";
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      return "phase";
    case EventKind::kShardStep:
      return "shard-step";
    case EventKind::kShardExchange:
      return "shard-exchange";
    case EventKind::kShardDrop:
      return "shard-drop";
    case EventKind::kLevelPrecision:
      return "level-precision";
    case EventKind::kLevelReady:
      return "level-ready";
    case EventKind::kSetupFallback:
      return "setup-fallback";
    case EventKind::kBackendSelect:
      return "backend-select";
  }
  return "unknown";
}

const char* cycle_phase_name(std::int64_t id) {
  switch (static_cast<CyclePhase>(id)) {
    case CyclePhase::kResidual:
      return "residual";
    case CyclePhase::kPreSmooth:
      return "pre-smooth";
    case CyclePhase::kRestrict:
      return "restrict";
    case CyclePhase::kCoarseSolve:
      return "coarse-solve";
    case CyclePhase::kProlong:
      return "prolong";
    case CyclePhase::kPostSmooth:
      return "post-smooth";
  }
  return "phase";
}

}  // namespace asyncmg
