#pragma once
// Telemetry exporters:
//
//   chrome_trace_json   Chrome trace_event JSON (the legacy "JSON Array /
//                       Object Format"), loadable in Perfetto
//                       (ui.perfetto.dev) and chrome://tracing. Relaxations
//                       become complete slices on per-grid tracks, shared
//                       reads and faults become instant markers, cycle
//                       phases become nested B/E slices, queue depth a
//                       counter track.
//   residual_csv        residual-vs-time histories in the paper's figure
//                       format (one row per recorded point).
//
// Both emit deterministic byte streams for deterministic inputs: fixed
// field order, fixed number formatting, events in drain order (stably
// sorted by timestamp). A scripted-replay trace is therefore a regression
// artifact that can be byte-compared against a golden fixture.

#include <string>
#include <vector>

#include "telemetry/events.hpp"

namespace asyncmg {

struct ChromeTraceOptions {
  std::string process_name = "asyncmg";
  /// Timestamps are logical time instants: exported as integer `ts` ticks
  /// (1 tick = 1 trace microsecond). Otherwise timestamps are session
  /// nanoseconds, exported as fractional microseconds.
  bool logical_time = false;
};

/// Serializes drained events to Chrome trace-event JSON.
std::string chrome_trace_json(const std::vector<DrainedEvent>& events,
                              const ChromeTraceOptions& opts = {});

/// CSV residual history: "step,seconds,rel_res" rows, one per entry.
/// Throws std::invalid_argument when the vectors differ in length.
std::string residual_csv(const std::vector<double>& seconds,
                         const std::vector<double>& rel_res);

/// Writes `content` to `path`, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace asyncmg
