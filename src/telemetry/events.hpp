#pragma once
// Typed telemetry event schema shared by the recorders (async runtime,
// solver service, multigrid cycle) and the exporters. An Event is a fixed
// 32-byte POD so the per-thread ring buffers (telemetry/ring.hpp) stay
// trivially copyable and cache-friendly; the meaning of the two payload
// slots `a`/`b` is per-kind and documented below.
//
// Timestamps `t` are in session-clock nanoseconds (free-running modes) or
// logical time instants (scripted replays / the sequential model), chosen
// by the recorder; TelemetryOptions::logical_time tells the exporters which
// unit a sink's stream uses.

#include <cstdint>

namespace asyncmg {

enum class EventKind : std::uint8_t {
  // Solver progress. kRelax is a complete slice: t = begin, b = duration
  // (ns, or ticks in logical time), a = grid.
  kRelax = 0,      // a = grid, b = duration
  kSharedRead,     // a = grid, b = read instant (scripted/model; -1 wall)
  kInstant,        // scripted: a = time instant, b = duration (1 tick)
  // Fault injection (async/schedule.hpp FaultPlan).
  kFaultStall,     // a = grid, b = correction count at the stall
  kFaultDropRead,  // a = grid, b = correction count at the drop
  kFaultKill,      // a = grid, b = correction count at death
  // Hierarchy cache (service/hierarchy_cache.hpp).
  kCacheHit,        // a = resident bytes of the entry
  kCacheMiss,       // a = resident bytes of the freshly built entry
  kCacheEvict,      // a = bytes released
  kCacheSpillWrite, // a = bytes spilled to disk
  kCacheSpillLoad,  // a = bytes reloaded from disk
  // Service / pool load.
  kQueueDepth,     // a = queue depth after the change
  // Multiplicative-cycle phases (B/E pair). a = CyclePhase, b = level.
  kPhaseBegin,
  kPhaseEnd,
  // Sharded executor (shard/solver.hpp); a = shard id throughout.
  kShardStep,      // a = shard, b = duration (ns, or 1 tick scripted)
  kShardExchange,  // a = shard, b = packets merged (read instant scripted)
  kShardDrop,      // a = shard, b = peer the send to was dropped (-1 = a
                   //     FaultPlan drop-read skipped the whole refresh)
  // Mixed-precision hierarchy (amg/precision.hpp). Emitted once per solver
  // attach and only for levels stored below fp64, so all-fp64 traces (the
  // golden fixtures) are unchanged.
  kLevelPrecision,  // a = level, b = Precision enum value of the operator
  // Background setup pipeline (service/background_setup.hpp).
  kLevelReady,      // a = level index now built, b = rows of that level
  kSetupFallback,   // a = levels built when the lane died, b = 0
  // Kernel backend selection (backend/backend.hpp). Emitted once per solver
  // attach and only when the resolved backend is not the scalar oracle, so
  // scalar-only traces (the golden fixtures) are unchanged.
  kBackendSelect,  // a = resolved BackendKind, b = requested BackendKind
};

/// Stable display name of an event kind (used by the Chrome exporter).
const char* event_name(EventKind k);

/// Phase ids carried in kPhaseBegin/kPhaseEnd events.
enum class CyclePhase : std::int64_t {
  kResidual = 0,
  kPreSmooth,
  kRestrict,
  kCoarseSolve,
  kProlong,
  kPostSmooth,
};

const char* cycle_phase_name(std::int64_t id);

struct Event {
  std::int64_t t = 0;  // session ns or logical tick (see header comment)
  std::int64_t a = 0;
  std::int64_t b = 0;
  EventKind kind = EventKind::kRelax;
};

/// An event together with the id of the ring (thread) it was drained from.
struct DrainedEvent {
  Event ev;
  std::size_t tid = 0;
};

/// Ring id used for control-plane events recorded from arbitrary threads
/// (cache, admission queue) via TelemetrySink::record_control.
inline constexpr std::size_t kControlTid = 1000000;

/// Trace-track offset for shard events: shard s displays on track
/// kShardTrackBase + s ("shard s"), keeping shard tracks clear of grid and
/// thread tracks in mixed traces.
inline constexpr std::size_t kShardTrackBase = 500000;

}  // namespace asyncmg
