#pragma once
// Monotonic session clock: one start epoch shared by everything that stamps
// time during a run. Replaces the per-driver `steady_clock::now()` t0
// plumbing that used to be duplicated across the runtime drivers and every
// bench -- the runtime's Shared state, the telemetry sink, and the service
// all hold one of these and read seconds()/now_ns() against the same epoch.
//
// Thread-safety: start() is a plain write; callers must publish it to
// readers themselves (the runtime drivers start the clock on global thread
// 0 between two global barriers, exactly as the old t0 assignment did).

#include <cstdint>

#include "util/timer.hpp"

namespace asyncmg {

class SessionClock {
 public:
  /// (Re)starts the session epoch. Defaults to construction time, so an
  /// unstarted clock still yields monotone, sensible readings.
  void start() { timer_.reset(); }

  /// Seconds since the session epoch.
  double seconds() const { return timer_.seconds(); }

  /// Nanoseconds since the session epoch (telemetry event timestamps).
  std::int64_t now_ns() const {
    return static_cast<std::int64_t>(timer_.seconds() * 1e9);
  }

 private:
  Timer timer_;
};

}  // namespace asyncmg
