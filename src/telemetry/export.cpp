#include "telemetry/export.hpp"

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "sparse/kernels.hpp"
#include "sparse/types.hpp"

namespace asyncmg {

namespace {

/// Trace `tid` the event is displayed on: per-grid tracks for solver
/// progress and faults, the recording thread for cycle phases, one control
/// track for everything else.
std::size_t track_of(const DrainedEvent& de) {
  switch (de.ev.kind) {
    case EventKind::kRelax:
    case EventKind::kSharedRead:
    case EventKind::kFaultStall:
    case EventKind::kFaultDropRead:
    case EventKind::kFaultKill:
      return static_cast<std::size_t>(de.ev.a);
    case EventKind::kPhaseBegin:
    case EventKind::kPhaseEnd:
      return de.tid;
    case EventKind::kShardStep:
    case EventKind::kShardExchange:
    case EventKind::kShardDrop:
      return kShardTrackBase + static_cast<std::size_t>(de.ev.a);
    default:
      return kControlTid;
  }
}

bool is_shard_event(EventKind k) {
  return k == EventKind::kShardStep || k == EventKind::kShardExchange ||
         k == EventKind::kShardDrop;
}

bool is_grid_event(EventKind k) {
  return k == EventKind::kRelax || k == EventKind::kSharedRead ||
         k == EventKind::kFaultStall || k == EventKind::kFaultDropRead ||
         k == EventKind::kFaultKill;
}

/// ts/dur in trace microseconds: logical ticks map 1:1, wall nanoseconds
/// are printed as fixed-point microseconds (exact: no floating point).
std::string us_string(std::int64_t t, bool logical) {
  if (logical) return std::to_string(t);
  std::ostringstream o;
  const std::int64_t abs = t < 0 ? -t : t;
  if (t < 0) o << "-";
  o << abs / 1000 << ".";
  const std::int64_t frac = abs % 1000;
  o << frac / 100 << (frac / 10) % 10 << frac % 10;
  return o.str();
}

}  // namespace

std::string chrome_trace_json(const std::vector<DrainedEvent>& events,
                              const ChromeTraceOptions& opts) {
  // Name the tracks: grids beat threads when both kinds of event land on
  // the same numeric tid (they don't in practice; grids win for clarity).
  std::map<std::size_t, std::string> names;
  for (const DrainedEvent& de : events) {
    const std::size_t track = track_of(de);
    if (is_grid_event(de.ev.kind)) {
      names[track] = "grid " + std::to_string(de.ev.a);
    } else if (is_shard_event(de.ev.kind)) {
      names[track] = "shard " + std::to_string(de.ev.a);
    } else if (track == kControlTid) {
      names.emplace(track, "control");
    } else {
      names.emplace(track, "thread " + std::to_string(track));
    }
  }

  std::ostringstream o;
  o << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  o << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\""
    << opts.process_name << "\"}}";
  for (const auto& [track, name] : names) {
    o << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << track
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"" << name << "\"}}";
  }

  for (const DrainedEvent& de : events) {
    const Event& e = de.ev;
    const std::size_t track = track_of(de);
    const std::string ts = us_string(e.t, opts.logical_time);
    o << ",\n{";
    switch (e.kind) {
      case EventKind::kRelax:
        o << "\"name\":\"relax\",\"cat\":\"grid\",\"ph\":\"X\",\"ts\":" << ts
          << ",\"dur\":" << us_string(e.b, opts.logical_time)
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"grid\":" << e.a
          << "}";
        break;
      case EventKind::kSharedRead:
        o << "\"name\":\"read\",\"cat\":\"grid\",\"ph\":\"i\",\"s\":\"t\","
          << "\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"grid\":" << e.a << ",\"read_instant\":" << e.b
          << "}";
        break;
      case EventKind::kFaultStall:
      case EventKind::kFaultDropRead:
      case EventKind::kFaultKill:
        o << "\"name\":\"" << event_name(e.kind)
          << "\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"grid\":" << e.a
          << ",\"count\":" << e.b << "}";
        break;
      case EventKind::kInstant:
        o << "\"name\":\"instant\",\"cat\":\"schedule\",\"ph\":\"X\",\"ts\":"
          << ts << ",\"dur\":" << us_string(e.b, opts.logical_time)
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"t\":" << e.a
          << "}";
        break;
      case EventKind::kPhaseBegin:
      case EventKind::kPhaseEnd:
        o << "\"name\":\"" << cycle_phase_name(e.a)
          << "\",\"cat\":\"cycle\",\"ph\":\""
          << (e.kind == EventKind::kPhaseBegin ? "B" : "E")
          << "\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"level\":" << e.b << "}";
        break;
      case EventKind::kCacheHit:
      case EventKind::kCacheMiss:
      case EventKind::kCacheEvict:
      case EventKind::kCacheSpillWrite:
      case EventKind::kCacheSpillLoad:
        o << "\"name\":\"" << event_name(e.kind)
          << "\",\"cat\":\"cache\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"bytes\":" << e.a
          << "}";
        break;
      case EventKind::kQueueDepth:
        o << "\"name\":\"queue-depth\",\"cat\":\"service\",\"ph\":\"C\","
          << "\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"depth\":" << e.a << "}";
        break;
      case EventKind::kShardStep:
        o << "\"name\":\"shard-step\",\"cat\":\"shard\",\"ph\":\"X\",\"ts\":"
          << ts << ",\"dur\":" << us_string(e.b, opts.logical_time)
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"shard\":" << e.a
          << "}";
        break;
      case EventKind::kShardExchange:
      case EventKind::kShardDrop:
        o << "\"name\":\"" << event_name(e.kind)
          << "\",\"cat\":\"shard\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << ts
          << ",\"pid\":1,\"tid\":" << track << ",\"args\":{\"shard\":" << e.a
          << ",\"detail\":" << e.b << "}";
        break;
      case EventKind::kLevelPrecision:
        o << "\"name\":\"level-precision\",\"cat\":\"precision\",\"ph\":\"i\","
          << "\"s\":\"t\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"level\":" << e.a << ",\"precision\":\""
          << precision_name(static_cast<Precision>(e.b)) << "\"}";
        break;
      case EventKind::kLevelReady:
        o << "\"name\":\"level-ready\",\"cat\":\"setup\",\"ph\":\"i\","
          << "\"s\":\"t\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"level\":" << e.a << ",\"rows\":" << e.b << "}";
        break;
      case EventKind::kSetupFallback:
        o << "\"name\":\"setup-fallback\",\"cat\":\"setup\",\"ph\":\"i\","
          << "\"s\":\"t\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"levels_built\":" << e.a << "}";
        break;
      case EventKind::kBackendSelect:
        o << "\"name\":\"backend-select\",\"cat\":\"backend\",\"ph\":\"i\","
          << "\"s\":\"t\",\"ts\":" << ts << ",\"pid\":1,\"tid\":" << track
          << ",\"args\":{\"backend\":\""
          << backend_kind_name(static_cast<BackendKind>(e.a))
          << "\",\"requested\":\""
          << backend_kind_name(static_cast<BackendKind>(e.b)) << "\"}";
        break;
    }
    o << "}";
  }
  o << "\n]}\n";
  return o.str();
}

std::string residual_csv(const std::vector<double>& seconds,
                         const std::vector<double>& rel_res) {
  if (seconds.size() != rel_res.size()) {
    throw std::invalid_argument("residual_csv: length mismatch");
  }
  std::ostringstream o;
  o.precision(9);
  o << std::scientific;
  o << "step,seconds,rel_res\n";
  for (std::size_t i = 0; i < seconds.size(); ++i) {
    o << i << "," << seconds[i] << "," << rel_res[i] << "\n";
  }
  return o.str();
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path + " for writing");
  f << content;
  if (!f) throw std::runtime_error("failed writing " + path);
}

}  // namespace asyncmg
