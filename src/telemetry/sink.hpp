#pragma once
// TelemetrySink: the handle every instrumented layer holds. It bundles
//
//   - per-thread SPSC event rings (telemetry/ring.hpp) for hot-path events,
//   - a mutex-protected control ring for low-rate events recorded from
//     arbitrary threads (cache hits, admission-queue depth),
//   - the session clock that stamps wall-time events, and
//   - a metrics registry (counters / gauges / histograms).
//
// Ownership and overhead: options structs carry a raw `TelemetrySink*`
// (nullptr = telemetry off) that must outlive the call; instrumented code
// checks the pointer and enabled() before doing any work, so a disabled or
// absent sink costs one predictable branch per site. An enabled sink costs
// one ring push (a few ns) per event and never blocks the recording thread.
//
// Determinism: scripted replays record via record_at with logical time
// instants from global thread 0 only, so for a sink constructed with
// logical_time = true the drained stream -- and the exported Chrome trace
// -- is bitwise identical across runs and thread counts.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/events.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/ring.hpp"

namespace asyncmg {

struct TelemetryOptions {
  /// Per-thread rings preallocated; record() calls with tid >= max_threads
  /// fall back to the control ring.
  std::size_t max_threads = 64;
  /// Events per ring (rounded up to a power of two). Overflow drops events
  /// and counts them; it never blocks.
  std::size_t ring_capacity = 1u << 12;
  /// Constructed enabled? set_enabled() toggles at runtime.
  bool start_enabled = true;
  /// Event timestamps are logical time instants (deterministic scripted
  /// replay / sequential model) rather than session-clock nanoseconds.
  /// Informational: it selects the exporters' time unit; mixing wall-time
  /// control events into a logical sink is allowed but those events carry
  /// nanosecond stamps.
  bool logical_time = false;
};

class TelemetrySink {
 public:
  explicit TelemetrySink(TelemetryOptions opts = {});

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool logical_time() const { return opts_.logical_time; }
  const TelemetryOptions& options() const { return opts_; }

  SessionClock& clock() { return clock_; }
  const SessionClock& clock() const { return clock_; }

  /// Records an event stamped with the session clock. `tid` must be this
  /// thread's stable id (one producer per ring).
  void record(std::size_t tid, EventKind kind, std::int64_t a = 0,
              std::int64_t b = 0) {
    record_at(tid, clock_.now_ns(), kind, a, b);
  }

  /// Records an event with an explicit timestamp (logical instants, or a
  /// begin stamp captured before a timed region).
  void record_at(std::size_t tid, std::int64_t t, EventKind kind,
                 std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled()) return;
    if (tid >= rings_.size()) {
      control_push({t, a, b, kind});
      return;
    }
    rings_[tid]->push({t, a, b, kind});
  }

  /// Control-plane recording from arbitrary threads (cache, queue depth):
  /// mutex-protected, clock-stamped, drained as tid = kControlTid.
  void record_control(EventKind kind, std::int64_t a = 0, std::int64_t b = 0) {
    if (!enabled()) return;
    control_push({clock_.now_ns(), a, b, kind});
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Consumes every buffered event, merged across rings and stably sorted
  /// by timestamp (ties keep per-ring push order, rings in tid order).
  /// Single consumer: not safe to call concurrently with itself.
  std::vector<DrainedEvent> drain();

  /// Total events dropped to ring overflow since construction.
  std::uint64_t dropped_total() const;

 private:
  void control_push(const Event& e) {
    const std::lock_guard<std::mutex> g(control_mu_);
    control_.push(e);
  }

  TelemetryOptions opts_;
  std::atomic<bool> enabled_;
  SessionClock clock_;
  std::vector<std::unique_ptr<EventRing>> rings_;
  std::mutex control_mu_;
  EventRing control_;
  MetricsRegistry metrics_;
};

}  // namespace asyncmg
