#pragma once
// Fixed-capacity single-producer/single-consumer event ring buffer. The
// producing thread pushes with one relaxed load, one acquire load, and one
// release store -- no locks, no allocation -- so recording an event costs a
// few nanoseconds on the solver's hot path. When the ring is full the event
// is dropped and counted rather than blocking the producer: telemetry must
// never introduce synchronization the solver under observation doesn't
// have.
//
// Contract: exactly one thread calls push() and exactly one thread calls
// drain()/size() concurrently with it. TelemetrySink assigns one ring per
// worker thread to uphold the producer side.

#include <atomic>
#include <cstdint>
#include <vector>

#include "telemetry/events.hpp"

namespace asyncmg {

class EventRing {
 public:
  /// Capacity is rounded up to a power of two (minimum 2).
  explicit EventRing(std::size_t capacity = 1u << 12) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer only. Returns false (and counts a drop) when full.
  bool push(const Event& e) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    if (h - t > mask_) {  // h - t == capacity: full
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    buf_[h & mask_] = e;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only: appends every pending event to `out` in push order and
  /// returns how many were moved.
  std::size_t drain(std::vector<Event>& out) {
    const std::size_t h = head_.load(std::memory_order_acquire);
    std::size_t t = tail_.load(std::memory_order_relaxed);
    const std::size_t moved = h - t;
    out.reserve(out.size() + moved);
    for (; t != h; ++t) out.push_back(buf_[t & mask_]);
    tail_.store(t, std::memory_order_release);
    return moved;
  }

  /// Events currently buffered (racy snapshot; exact when quiescent).
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<Event> buf_;
  std::size_t mask_ = 0;
  std::atomic<std::size_t> head_{0};  // next write slot (producer)
  std::atomic<std::size_t> tail_{0};  // next read slot (consumer)
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace asyncmg
