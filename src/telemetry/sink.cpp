#include "telemetry/sink.hpp"

#include <algorithm>

namespace asyncmg {

TelemetrySink::TelemetrySink(TelemetryOptions opts)
    : opts_(opts),
      enabled_(opts.start_enabled),
      control_(opts.ring_capacity) {
  rings_.reserve(opts_.max_threads);
  for (std::size_t i = 0; i < opts_.max_threads; ++i) {
    rings_.push_back(std::make_unique<EventRing>(opts_.ring_capacity));
  }
}

std::vector<DrainedEvent> TelemetrySink::drain() {
  std::vector<DrainedEvent> out;
  std::vector<Event> scratch;
  for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
    scratch.clear();
    rings_[tid]->drain(scratch);
    for (const Event& e : scratch) out.push_back({e, tid});
  }
  scratch.clear();
  {
    const std::lock_guard<std::mutex> g(control_mu_);
    control_.drain(scratch);
  }
  for (const Event& e : scratch) out.push_back({e, kControlTid});
  std::stable_sort(out.begin(), out.end(),
                   [](const DrainedEvent& x, const DrainedEvent& y) {
                     return x.ev.t < y.ev.t;
                   });
  return out;
}

std::uint64_t TelemetrySink::dropped_total() const {
  std::uint64_t total = control_.dropped();
  for (const auto& r : rings_) total += r->dropped();
  return total;
}

}  // namespace asyncmg
