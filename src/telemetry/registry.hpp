#pragma once
// Metrics registry: named counters, gauges, and histograms with a JSON
// snapshot. Handles returned by counter()/gauge()/histogram() are stable
// for the registry's lifetime (node-based storage), so hot paths look a
// metric up once and then update it lock-free; registration itself takes
// the registry mutex. Histogram snapshots reuse util/stats percentiles so
// service latency percentiles and telemetry histograms agree by
// construction.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace asyncmg {

class Counter {
 public:
  void add(std::uint64_t d = 1) { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

struct HistogramSnapshot {
  std::size_t count = 0;
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

class Histogram {
 public:
  void observe(double v);
  /// Percentiles via util::percentile; all zeros when no samples (keeps the
  /// JSON dump NaN-free).
  HistogramSnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> samples_;
};

class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Deterministic JSON dump (names sorted): {"counters":{...},
  /// "gauges":{...},"histograms":{name:{count,mean,min,max,p50,p95,p99}}}.
  std::string to_json() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace asyncmg
