#include "telemetry/registry.hpp"

#include <sstream>

#include "util/stats.hpp"

namespace asyncmg {

void Histogram::observe(double v) {
  const std::lock_guard<std::mutex> g(mu_);
  samples_.push_back(v);
}

HistogramSnapshot Histogram::snapshot() const {
  std::vector<double> xs;
  {
    const std::lock_guard<std::mutex> g(mu_);
    xs = samples_;
  }
  HistogramSnapshot s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.mean = mean(xs);
  s.min = min_of(xs);
  s.max = max_of(xs);
  s.p50 = percentile(xs, 50.0);
  s.p95 = percentile(xs, 95.0);
  s.p99 = percentile(xs, 99.0);
  return s;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> g(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> g(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> g(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> g(mu_);
  std::ostringstream o;
  o.precision(9);
  o << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) o << ",";
    first = false;
    o << "\"" << name << "\":" << c->value();
  }
  o << "},\"gauges\":{";
  first = true;
  for (const auto& [name, gv] : gauges_) {
    if (!first) o << ",";
    first = false;
    o << "\"" << name << "\":" << gv->value();
  }
  o << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) o << ",";
    first = false;
    const HistogramSnapshot s = h->snapshot();
    o << "\"" << name << "\":{"
      << "\"count\":" << s.count << ",\"mean\":" << s.mean
      << ",\"min\":" << s.min << ",\"max\":" << s.max << ",\"p50\":" << s.p50
      << ",\"p95\":" << s.p95 << ",\"p99\":" << s.p99 << "}";
  }
  o << "}}";
  return o.str();
}

}  // namespace asyncmg
