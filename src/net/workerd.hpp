#pragma once
// WorkerDaemon: one shard of the multi-process solver service. The daemon
// listens on loopback (port 0 = ephemeral, reported via port()), accepts a
// coordinator session, and for every kSolveRequest runs the SAME per-shard
// loop the in-process solver runs (shard/worker.hpp run_shard_worker) over
// a SocketTransport -- the executor cannot tell threads from processes.
//
// Session threading (one solve):
//
//   reader (this thread)   dispatches inbound frames: kHaloFrame ->
//                          SocketTransport::deliver, kProgress / kPeerDead
//                          -> NetPeerBoard, kShutdown -> stop after the
//                          solve. A closed connection marks every peer dead
//                          so the solver finishes locally instead of
//                          waiting on relays that will never come.
//   solver thread          run_shard_worker, untouched.
//   heartbeat thread       kHeartbeat every heartbeat_ms so the coordinator
//                          can tell a slow worker from a dead one.
//
// Determinism: the worker rebuilds the full MgSetup and ShardPlan from the
// request's serialized hierarchy (amg/serialize round trips bit-exactly)
// and computes the initial residual itself, so every process starts from
// identical state with no data exchange beyond the request. Setups are
// cached by hierarchy-bytes hash: repeated solves on the same operator skip
// the smoother/interpolant rebuild (the remote analogue of the service's
// HierarchyCache affinity).
//
// The kSolveRequest crash_after hook makes the worker drop the connection
// without kSolveDone after that many corrections -- a deterministic SIGKILL
// stand-in so crash-recovery tests are not racing a signal. The bench
// harness kills real processes instead; both end in the same EOF at the
// coordinator.

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "multigrid/setup.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace asyncmg {

class TelemetrySink;

struct WorkerDaemonOptions {
  /// Loopback port to listen on; 0 binds an ephemeral port.
  std::uint16_t port = 0;
  std::string name = "worker";
  double heartbeat_ms = 25.0;
  /// Serve exactly one coordinator session, then return from run() (the
  /// in-process test mode; the binary loops by default).
  bool once = false;
  /// Setups kept in the hierarchy cache before evicting the oldest.
  std::size_t setup_cache_entries = 4;
  /// Per-shard solver events land on tid = shard; counters under "net.*".
  /// Not owned; may be null.
  TelemetrySink* telemetry = nullptr;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

class WorkerDaemon {
 public:
  /// Validates options and binds the listener (throws SocketError when the
  /// port is taken).
  explicit WorkerDaemon(WorkerDaemonOptions opts);

  std::uint16_t port() const { return listener_.port(); }
  const WorkerDaemonOptions& options() const { return opts_; }

  /// Accept/serve loop; returns after kShutdown, request_stop(), or (with
  /// options().once) the first session.
  void run();

  /// Makes run() return at its next accept/read timeout (thread-safe).
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  /// Daemon counters as JSON: solves served, crashes injected, setup cache
  /// hits/misses, connection byte totals, plus the telemetry registry when
  /// a sink is attached.
  std::string stats_json() const;

 private:
  enum class SessionEnd { kPeerGone, kShutdown, kCrashed };

  SessionEnd serve(FrameConn& conn);
  /// Runs one solve over `conn`; false means the crash hook fired and the
  /// connection must be dropped without kSolveDone.
  bool handle_solve(FrameConn& conn, const SolveRequestMsg& req);
  const MgSetup& setup_for(const SolveRequestMsg& req);

  WorkerDaemonOptions opts_;
  ListenSocket listener_;
  std::atomic<bool> stop_{false};

  struct CacheEntry {
    std::uint64_t key = 0;
    std::unique_ptr<MgSetup> setup;
  };
  std::vector<CacheEntry> cache_;  // newest at the back
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t crashes_ = 0;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
};

}  // namespace asyncmg
