#pragma once
// SocketTransport: the out-of-process implementation of the sharded
// executor's Transport seam (shard/transport.hpp). One worker process holds
// one SocketTransport over its single connection to the coordinator; frames
// addressed to a peer are relayed by the coordinator (hub and spoke), so a
// worker never dials its peers directly and the control plane sees every
// byte of data traffic.
//
//   send        encodes a HaloFrameMsg and writes it to the connection; a
//               gone coordinator makes send return false (a dropped packet,
//               exactly the ChannelTransport full-ring semantics).
//   deliver     called by the daemon's reader thread for every inbound
//               kHaloFrame: appends to the per-(peer, tag) mailbox. A full
//               mailbox evicts the OLDEST frame (newest wins, counted as a
//               drop) -- the BSP discipline never overflows (skew is
//               bounded by one round), the free-running discipline only
//               cares about the newest view anyway.
//   recv_latest newest-wins: takes the back of the mailbox, discards the
//               rest (the PR 6 free-running read).
//   recv_next   FIFO: pops the front (the BSP one-frame-per-round read).
//
// Mailboxes are guarded by one mutex (reader thread vs solver thread; the
// traffic is a handful of frames per round, far from contention). The
// ChannelTransport stays lock-free for the in-process path; this class
// exists for the process boundary where a socket round trip dwarfs a mutex.
//
// NetPeerBoard is the matching control-plane seam: commits published by the
// local solver go out as kProgress frames (the coordinator broadcasts them),
// peer commits and deaths arrive from the reader thread via apply_*.

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "shard/transport.hpp"
#include "shard/worker.hpp"

namespace asyncmg {

struct SocketTransportOptions {
  std::size_t shard = 0;
  std::size_t num_shards = 1;
  /// Frames kept per (peer, tag) mailbox; overflow evicts the oldest.
  std::size_t mailbox_capacity = 64;
  /// Scalar width of outgoing halo payloads (fp32 halves the wire bytes;
  /// ghosts and foreign residual rows then carry fp32-rounded values, the
  /// PR 7 mixed-precision trade).
  WireWidth width = WireWidth::kF64;
  /// Connection to the coordinator. Not owned; must outlive the transport.
  FrameConn* conn = nullptr;
  /// Expected kBoundaryX payload length per sending peer (indexed by peer):
  /// the plan's ghost_slots[shard][peer].size(). Empty disables the check
  /// (bare unit-test rigs); when set (size num_shards), a frame whose
  /// payload length disagrees with the plan is counted as dropped and never
  /// reaches a mailbox -- a confused or malicious coordinator/peer cannot
  /// make the solver read or write out of bounds.
  std::vector<std::size_t> expect_boundary;
  /// Expected kResidualBlock payload length per sending peer: the plan's
  /// owned[peer].size(). Same empty/checked semantics as expect_boundary.
  std::vector<std::size_t> expect_residual;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

class SocketTransport final : public Transport {
 public:
  explicit SocketTransport(SocketTransportOptions opts);

  bool send(std::size_t from, std::size_t to, HaloTag tag,
            HaloPacket&& p) override;
  bool recv_latest(std::size_t to, std::size_t from, HaloTag tag,
                   HaloPacket& out) override;
  bool recv_next(std::size_t to, std::size_t from, HaloTag tag,
                 HaloPacket& out) override;

  /// Inbound frame from the reader thread. Frames not addressed to this
  /// shard, carrying an out-of-range peer, or whose payload length does not
  /// match the plan expectation for the (peer, tag) edge are counted as
  /// dropped (a confused or malicious coordinator cannot corrupt a mailbox
  /// or smuggle a wrong-sized payload to the solver).
  void deliver(const HaloFrameMsg& m);

  std::uint64_t packets_sent() const override {
    return sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t packets_dropped() const override {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  std::deque<HaloPacket>& box(std::size_t from, HaloTag tag) {
    return boxes_[from * static_cast<std::size_t>(kNumHaloTags) +
                  static_cast<std::size_t>(tag)];
  }

  SocketTransportOptions opts_;
  std::mutex mu_;
  std::vector<std::deque<HaloPacket>> boxes_;
  std::atomic<std::uint64_t> sent_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

/// PeerBoard over the coordinator connection: local state is a mirror of
/// the cluster's progress, fed by the reader thread; the local shard's own
/// publishes go out on the wire (and into the mirror, so self-reads agree).
class NetPeerBoard final : public PeerBoard {
 public:
  NetPeerBoard(std::size_t num_shards, std::size_t self, FrameConn* conn);

  void publish_commits(std::size_t self, int commits) override;
  void publish_dead(std::size_t self) override;
  int commits(std::size_t peer) const override {
    return commits_[peer].load(std::memory_order_acquire);
  }
  bool dead(std::size_t peer) const override {
    return dead_[peer].load(std::memory_order_acquire);
  }

  /// Reader-thread application of inbound control frames.
  void apply_progress(const ProgressMsg& m);
  void apply_dead(std::size_t peer);

 private:
  std::size_t self_;
  FrameConn* conn_;
  std::vector<std::atomic<int>> commits_;
  std::vector<std::atomic<bool>> dead_;
};

}  // namespace asyncmg
