#pragma once
// Thin POSIX TCP layer of the multi-process solver service: RAII sockets,
// loopback/host connect with timeout, and FrameConn -- a framed connection
// that speaks the wire protocol (net/wire.hpp) with incremental reassembly,
// so a frame split across arbitrarily many TCP segments is reconstructed
// without ever trusting a length prefix beyond kMaxPayloadBytes.
//
// Concurrency: FrameConn serializes writers through a mutex (the worker's
// solver thread and heartbeat thread share one connection to the router) and
// assumes a single reader thread, which is how every user is structured
// (one reader loop per connection).

#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/wire.hpp"

namespace asyncmg {

class SocketError : public std::runtime_error {
 public:
  explicit SocketError(const std::string& what)
      : std::runtime_error("socket: " + what) {}
};

/// Move-only RAII wrapper over a connected TCP file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Closes the descriptor; safe to call repeatedly.
  void close();

 private:
  int fd_ = -1;
};

/// Listening TCP socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// `port()` reports the actual one (the worker daemon prints it so tests and
/// the bench harness can spawn on port 0 without races).
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port, int backlog = 16);
  ~ListenSocket();
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  std::uint16_t port() const { return port_; }
  int fd() const { return fd_; }

  /// Waits up to `timeout_ms` for a connection (-1 = forever). Returns an
  /// invalid Socket on timeout; throws SocketError on failure.
  Socket accept(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to host:port, failing after `timeout_ms`. Throws SocketError.
Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms);

/// Result of FrameConn::recv_frame.
enum class RecvStatus {
  kFrame,    // a complete, checksum-verified frame was produced
  kTimeout,  // nothing complete within the deadline; partial bytes retained
  kClosed,   // orderly EOF or connection reset by peer
};

/// One wire-protocol connection: writes whole frames, reads frames
/// incrementally across TCP segment boundaries. Byte counters feed the
/// per-worker telemetry (bytes on the wire, frames in each direction).
class FrameConn {
 public:
  explicit FrameConn(Socket sock);

  /// Encodes and writes one frame. Thread-safe (internal mutex); blocks
  /// until the frame is fully written. Returns false when the peer is gone
  /// (EPIPE / reset) -- senders treat that as a dead peer, never an error.
  bool send_frame(MsgType type, const std::vector<std::uint8_t>& payload);

  /// Reads until one complete frame is available or `timeout_ms` elapses
  /// (-1 = forever). On kFrame fills `type` and `payload` (checksum already
  /// verified). Throws WireError on protocol violations (bad magic, bad
  /// checksum, oversized length) -- callers drop the connection.
  RecvStatus recv_frame(MsgType& type, std::vector<std::uint8_t>& payload,
                        int timeout_ms);

  bool open() const { return sock_.valid() && !peer_gone_; }
  void close() { sock_.close(); }
  /// Half-closes both directions (::shutdown). Unlike close() this is safe
  /// to call from another thread while a reader polls or a writer blocks:
  /// both wake with EOF/EPIPE -- the control plane uses it to cut off a
  /// worker declared dead without racing on the descriptor.
  void shutdown_both();
  int fd() const { return sock_.fd(); }

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t frames_received() const { return frames_received_; }

 private:
  Socket sock_;
  std::mutex send_mu_;
  bool peer_gone_ = false;
  std::vector<std::uint8_t> rbuf_;  // unconsumed reassembly bytes
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace asyncmg
