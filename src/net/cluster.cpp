#include "net/cluster.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "amg/serialize.hpp"
#include "service/fingerprint.hpp"
#include "shard/partition.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void ClusterOptions::validate() const {
  if (endpoints.empty()) {
    throw std::invalid_argument(
        "ClusterOptions: endpoints must be non-empty");
  }
  if (connect_timeout_ms < 1) {
    throw std::invalid_argument(
        "ClusterOptions: connect_timeout_ms must be >= 1");
  }
  if (connect_attempts < 1) {
    throw std::invalid_argument(
        "ClusterOptions: connect_attempts must be >= 1");
  }
  if (!(heartbeat_timeout_ms > 0.0)) {
    throw std::invalid_argument(
        "ClusterOptions: heartbeat_timeout_ms must be > 0");
  }
  backoff.validate();
}

std::string ClusterResult::to_json() const {
  std::ostringstream o;
  o << "{\"final_rel_res\":" << final_rel_res << ",\"seconds\":" << seconds
    << ",\"reads_dropped\":" << reads_dropped
    << ",\"frames_relayed\":" << frames_relayed
    << ",\"frames_dropped\":" << frames_dropped
    << ",\"bytes_sent\":" << bytes_sent
    << ",\"bytes_received\":" << bytes_received
    << ",\"connect_retries\":" << connect_retries << ",\"corrections\":[";
  for (std::size_t i = 0; i < corrections.size(); ++i) {
    if (i != 0) o << ",";
    o << corrections[i];
  }
  o << "],\"dead_workers\":[";
  for (std::size_t i = 0; i < dead_workers.size(); ++i) {
    if (i != 0) o << ",";
    o << dead_workers[i];
  }
  o << "]}";
  return o.str();
}

ClusterCoordinator::ClusterCoordinator(ClusterOptions opts)
    : opts_(std::move(opts)) {
  opts_.validate();
}

std::unique_ptr<FrameConn> ClusterCoordinator::connect_worker(
    std::size_t i, std::uint64_t& retries) const {
  BackoffOptions bo = opts_.backoff;
  bo.seed = opts_.backoff.seed + i;  // decorrelate redial storms per worker
  Backoff backoff(bo);
  std::string last_error = "unreachable";
  for (int attempt = 0; attempt < opts_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff.next_ms()));
    }
    try {
      auto conn = std::make_unique<FrameConn>(
          connect_tcp(opts_.endpoints[i].host, opts_.endpoints[i].port,
                      opts_.connect_timeout_ms));
      // Handshake: the worker announces itself, we assign its shard.
      MsgType type{};
      std::vector<std::uint8_t> payload;
      const RecvStatus st =
          conn->recv_frame(type, payload, opts_.connect_timeout_ms);
      if (st != RecvStatus::kFrame || type != MsgType::kHello) {
        throw SocketError("worker did not say hello");
      }
      const HelloMsg hello = decode_hello(payload);
      if (hello.role != WireRole::kWorker ||
          hello.protocol != kWireVersion) {
        throw SocketError("incompatible worker: " + hello.name);
      }
      HelloAckMsg ack;
      ack.shard = static_cast<std::uint32_t>(i);
      ack.num_shards = static_cast<std::uint32_t>(opts_.endpoints.size());
      if (!conn->send_frame(MsgType::kHelloAck, encode_hello_ack(ack))) {
        throw SocketError("worker closed during handshake");
      }
      return conn;
    } catch (const std::exception& e) {
      last_error = e.what();
    }
  }
  throw SocketError("worker " + std::to_string(i) + " at " +
                    opts_.endpoints[i].host + ":" +
                    std::to_string(opts_.endpoints[i].port) + ": " +
                    last_error);
}

ClusterResult ClusterCoordinator::solve(const MgSetup& setup, const Vector& b,
                                        Vector& x,
                                        const ClusterSolveOptions& so) {
  const std::size_t N = opts_.endpoints.size();
  if (so.t_max < 1) {
    throw std::invalid_argument("ClusterSolveOptions: t_max must be >= 1");
  }
  if (so.max_lag < 0) {
    throw std::invalid_argument("ClusterSolveOptions: max_lag must be >= 0");
  }
  if (!so.crash_after.empty() && so.crash_after.size() != N) {
    throw std::invalid_argument(
        "ClusterSolveOptions: crash_after must be empty or one per shard");
  }
  const ShardPlan plan = make_shard_plan(setup.a(0), N);
  if (b.size() != static_cast<std::size_t>(plan.n) || x.size() != b.size()) {
    throw std::invalid_argument("ClusterCoordinator: b/x size mismatch");
  }

  Timer timer;
  ClusterResult res;
  res.corrections.assign(N, 0);

  std::vector<std::unique_ptr<FrameConn>> conns(N);
  for (std::size_t i = 0; i < N; ++i) {
    conns[i] = connect_worker(i, res.connect_retries);
  }

  // One request per shard; the hierarchy bytes are shared verbatim.
  const std::string hierarchy = save_hierarchy_string(setup.hierarchy());
  for (std::size_t i = 0; i < N; ++i) {
    SolveRequestMsg req;
    req.shard = static_cast<std::uint32_t>(i);
    req.num_shards = static_cast<std::uint32_t>(N);
    req.bsp = so.bsp ? 1 : 0;
    req.width = opts_.width;
    req.t_max = so.t_max;
    req.max_lag = so.max_lag;
    req.seed = so.seed;
    req.additive_kind = static_cast<std::uint8_t>(so.additive.kind);
    req.symmetrized_lambda = so.additive.symmetrized_lambda ? 1 : 0;
    req.afacx_s1 = so.additive.afacx_s1;
    req.afacx_s2 = so.additive.afacx_s2;
    req.smoother_type =
        static_cast<std::uint8_t>(setup.options().smoother.type);
    req.smoother_omega = setup.options().smoother.omega;
    req.smoother_blocks =
        static_cast<std::uint32_t>(setup.options().smoother.num_blocks);
    req.max_dense_coarse =
        static_cast<std::int64_t>(setup.options().max_dense_coarse);
    req.crash_after = so.crash_after.empty() ? -1 : so.crash_after[i];
    req.hierarchy = hierarchy;
    req.b = b;
    req.x0 = x;
    if (!conns[i]->send_frame(MsgType::kSolveRequest,
                              encode_solve_request(req))) {
      throw SocketError("worker " + std::to_string(i) +
                        " closed before the solve started");
    }
  }

  // Relay loop: one reader per worker; the monitor below owns heartbeat
  // timeouts. All shared flags are atomics; bc_mu serializes the dead/done
  // bookkeeping (check-and-set plus target snapshot) so every survivor sees
  // each kPeerDead exactly once -- but the blocking send_frame calls happen
  // OUTSIDE the lock, so a survivor with a full send buffer can never stall
  // another death broadcast or the monitor's mark_dead behind bc_mu.
  std::vector<std::atomic<std::int64_t>> last_seen(N);
  std::vector<std::atomic<bool>> done(N), dead(N);
  for (std::size_t i = 0; i < N; ++i) last_seen[i].store(now_ns());
  std::vector<SolveDoneMsg> results(N);
  std::atomic<std::uint64_t> relayed{0};
  std::mutex bc_mu;

  auto mark_dead = [&](std::size_t i) {
    std::vector<std::size_t> targets;
    {
      std::lock_guard<std::mutex> lock(bc_mu);
      if (done[i].load() || dead[i].load()) return;
      dead[i].store(true);
      for (std::size_t j = 0; j < N; ++j) {
        if (j != i && !done[j].load() && !dead[j].load()) {
          targets.push_back(j);
        }
      }
    }
    // Cut the dead worker loose FIRST: shutdown_both unblocks any relayer
    // mid-send to it and forces its reader out of poll, so the recovery
    // path never waits on the very connection that stopped draining. A
    // target that died between snapshot and send just fails its send.
    conns[i]->shutdown_both();
    PeerDeadMsg m;
    m.shard = static_cast<std::uint32_t>(i);
    const std::vector<std::uint8_t> payload = encode_peer_dead(m);
    for (std::size_t j : targets) {
      conns[j]->send_frame(MsgType::kPeerDead, payload);
    }
  };

  auto reader = [&](std::size_t i) {
    MsgType type{};
    std::vector<std::uint8_t> payload;
    for (;;) {
      // The whole receive + decode + dispatch step runs under the try: a
      // checksum-valid but semantically invalid frame (decode_* throwing
      // WireError) is as much a protocol violation as a bad checksum, and
      // must end in mark_dead -- never escape the thread function, which
      // would std::terminate the coordinator.
      try {
        const RecvStatus st = conns[i]->recv_frame(type, payload, 50);
        if (st == RecvStatus::kTimeout) {
          if (dead[i].load()) return;  // monitor declared us dead
          continue;
        }
        if (st == RecvStatus::kClosed) {
          mark_dead(i);
          return;
        }
        last_seen[i].store(now_ns(), std::memory_order_relaxed);
        switch (type) {
          case MsgType::kHaloFrame: {
            const HaloFrameMsg m = decode_halo_frame(payload);
            // Relay only frames consistent with the plan: the worker must
            // speak as itself and the payload length must match the edge
            // (send list for kBoundaryX, owned block for kResidualBlock).
            // The workers re-validate at delivery; dropping here keeps a
            // confused worker's frames off the wire entirely.
            const std::size_t expect =
                static_cast<HaloTag>(m.tag) == HaloTag::kBoundaryX
                    ? (m.to < N ? plan.send[i][m.to].size() : 0)
                    : plan.owned[i].size();
            if (m.from == i && m.to < N && m.data.size() == expect &&
                !dead[m.to].load() && !done[m.to].load()) {
              conns[m.to]->send_frame(MsgType::kHaloFrame, payload);
              relayed.fetch_add(1, std::memory_order_relaxed);
            }
            break;
          }
          case MsgType::kProgress: {
            // A worker may only publish its own progress (a spoofed commit
            // count would defeat peers' bounded-skew gates).
            if (decode_progress(payload).shard != i) break;
            std::vector<std::size_t> targets;
            {
              std::lock_guard<std::mutex> lock(bc_mu);
              for (std::size_t j = 0; j < N; ++j) {
                if (j != i && !dead[j].load() && !done[j].load()) {
                  targets.push_back(j);
                }
              }
            }
            // Sends outside bc_mu (see the mark_dead rationale above).
            for (std::size_t j : targets) {
              conns[j]->send_frame(MsgType::kProgress, payload);
            }
            break;
          }
          case MsgType::kHeartbeat:
            break;  // recency already noted
          case MsgType::kSolveDone: {
            results[i] = decode_solve_done(payload);
            done[i].store(true);
            return;
          }
          default:
            break;
        }
      } catch (const std::exception&) {
        mark_dead(i);  // protocol violation == lost worker
        return;
      }
    }
  };

  std::vector<std::thread> readers;
  readers.reserve(N);
  for (std::size_t i = 0; i < N; ++i) readers.emplace_back(reader, i);

  // Monitor: heartbeat-recency dead-peer detection.
  const auto timeout_ns = static_cast<std::int64_t>(
      opts_.heartbeat_timeout_ms * 1e6);
  for (;;) {
    bool all_settled = true;
    for (std::size_t i = 0; i < N; ++i) {
      if (done[i].load() || dead[i].load()) continue;
      all_settled = false;
      if (now_ns() - last_seen[i].load(std::memory_order_relaxed) >
          timeout_ns) {
        mark_dead(i);
      }
    }
    if (all_settled) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (std::thread& t : readers) t.join();

  // Criterion-2 assembly: survivors' owned blocks land in x, a dead
  // worker's rows keep the initial iterate (frozen, exactly like a killed
  // in-process shard), and the residual is computed against the true
  // operator so recovery claims are measured, not assumed.
  for (std::size_t i = 0; i < N; ++i) {
    if (done[i].load()) {
      const Range rg = plan.owned[i];
      const SolveDoneMsg& dm = results[i];
      if (dm.x_block.size() == rg.size()) {
        std::copy(dm.x_block.begin(), dm.x_block.end(),
                  x.begin() + static_cast<std::ptrdiff_t>(rg.begin));
      }
      res.corrections[i] = static_cast<int>(dm.corrections);
      res.reads_dropped += static_cast<int>(dm.reads_dropped);
      res.frames_dropped += dm.frames_dropped;
    } else {
      res.dead_workers.push_back(i);
    }
    res.bytes_sent += conns[i]->bytes_sent();
    res.bytes_received += conns[i]->bytes_received();
  }
  res.frames_relayed = relayed.load();
  res.seconds = timer.seconds();

  Vector r;
  setup.a(0).residual(b, x, r);
  const double bnorm = norm2(b);
  res.final_rel_res = norm2(r) * (bnorm > 0.0 ? 1.0 / bnorm : 1.0);

  if (opts_.telemetry != nullptr) {
    MetricsRegistry& m = opts_.telemetry->metrics();
    m.counter("net.cluster.frames_relayed").add(res.frames_relayed);
    m.counter("net.cluster.solves").add(1);
    m.counter("net.cluster.dead_workers").add(res.dead_workers.size());
    m.counter("net.cluster.connect_retries").add(res.connect_retries);
  }
  return res;
}

std::string ClusterCoordinator::stats_json() const {
  std::ostringstream o;
  o << "{\"workers\":[";
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    if (i != 0) o << ",";
    std::string json = "null";
    try {
      std::uint64_t retries = 0;
      const std::unique_ptr<FrameConn> conn = connect_worker(i, retries);
      conn->send_frame(MsgType::kStatsRequest, {});
      MsgType type{};
      std::vector<std::uint8_t> payload;
      while (conn->recv_frame(type, payload, opts_.connect_timeout_ms) ==
             RecvStatus::kFrame) {
        if (type == MsgType::kStatsResponse) {
          json = decode_stats_response(payload).json;
          break;
        }
      }
    } catch (const std::exception&) {
      json = "null";  // unreachable worker reports as null
    }
    o << json;
  }
  o << "]}";
  return o.str();
}

void ClusterCoordinator::shutdown_workers() const {
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    try {
      std::uint64_t retries = 0;
      const std::unique_ptr<FrameConn> conn = connect_worker(i, retries);
      conn->send_frame(MsgType::kShutdown, {});
    } catch (const std::exception&) {
      // Already gone is as good as shut down.
    }
  }
}

// ---------------------------------------------------------------------------
// ClusterRouter
// ---------------------------------------------------------------------------

std::vector<std::size_t> select_backends(const std::vector<RingNode>& ring,
                                         std::uint64_t key,
                                         std::size_t count) {
  std::vector<std::size_t> out;
  if (ring.empty() || count == 0) {
    throw std::invalid_argument("select_backends: empty ring or zero count");
  }
  // First vnode clockwise from key, then keep walking collecting distinct
  // backends (wrapping once).
  std::size_t start = ring.size();
  for (std::size_t i = 0; i < ring.size(); ++i) {
    if (ring[i].hash >= key) {
      start = i;
      break;
    }
  }
  if (start == ring.size()) start = 0;  // wrapped
  for (std::size_t step = 0; step < ring.size() && out.size() < count;
       ++step) {
    const std::size_t backend = ring[(start + step) % ring.size()].backend;
    if (std::find(out.begin(), out.end(), backend) == out.end()) {
      out.push_back(backend);
    }
  }
  if (out.size() < count) {
    throw std::invalid_argument(
        "select_backends: ring has fewer distinct backends than requested");
  }
  return out;
}

void ClusterRouterOptions::validate() const {
  if (endpoints.empty()) {
    throw std::invalid_argument(
        "ClusterRouterOptions: endpoints must be non-empty");
  }
  if (shards_per_solve < 1 || shards_per_solve > endpoints.size()) {
    throw std::invalid_argument(
        "ClusterRouterOptions: shards_per_solve must be in [1, endpoints]");
  }
  if (vnodes_per_endpoint < 1) {
    throw std::invalid_argument(
        "ClusterRouterOptions: vnodes_per_endpoint must be >= 1");
  }
}

ClusterRouter::ClusterRouter(ClusterRouterOptions opts)
    : opts_(std::move(opts)) {
  opts_.validate();
  ring_ = build_hash_ring(opts_.endpoints.size(), opts_.vnodes_per_endpoint,
                          opts_.ring_seed);
  routed_per_endpoint_.assign(opts_.endpoints.size(), 0);
}

std::vector<std::size_t> ClusterRouter::endpoints_for(
    const CsrMatrix& a) const {
  return select_backends(ring_, ring_key(matrix_fingerprint(a)),
                         opts_.shards_per_solve);
}

ClusterResult ClusterRouter::solve(const MgSetup& setup, const Vector& b,
                                   Vector& x, const ClusterSolveOptions& so) {
  const std::vector<std::size_t> picked = endpoints_for(setup.a(0));
  ClusterOptions co = opts_.cluster;
  co.endpoints.clear();
  for (std::size_t e : picked) {
    co.endpoints.push_back(opts_.endpoints[e]);
    ++routed_per_endpoint_[e];
  }
  ++routed_;
  ClusterCoordinator coordinator(std::move(co));
  return coordinator.solve(setup, b, x, so);
}

std::string ClusterRouter::stats_json() const {
  std::ostringstream o;
  o << "{\"routed\":" << routed_ << ",\"routed_per_endpoint\":[";
  for (std::size_t i = 0; i < routed_per_endpoint_.size(); ++i) {
    if (i != 0) o << ",";
    o << routed_per_endpoint_[i];
  }
  o << "],\"fleet\":[";
  for (std::size_t i = 0; i < opts_.endpoints.size(); ++i) {
    if (i != 0) o << ",";
    ClusterOptions co = opts_.cluster;
    co.endpoints = {opts_.endpoints[i]};
    co.connect_attempts = 1;
    std::string json = "null";
    try {
      const ClusterCoordinator one(std::move(co));
      const std::string fleet = one.stats_json();
      // one.stats_json() == {"workers":[<json>]}; splice the single entry.
      const std::size_t b0 = fleet.find('[');
      const std::size_t b1 = fleet.rfind(']');
      if (b0 != std::string::npos && b1 != std::string::npos && b1 > b0) {
        json = fleet.substr(b0 + 1, b1 - b0 - 1);
      }
    } catch (const std::exception&) {
    }
    o << json;
  }
  o << "]}";
  return o.str();
}

}  // namespace asyncmg
