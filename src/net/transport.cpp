#include "net/transport.hpp"

#include <stdexcept>

namespace asyncmg {

void SocketTransportOptions::validate() const {
  if (num_shards < 1) {
    throw std::invalid_argument(
        "SocketTransportOptions: num_shards must be >= 1");
  }
  if (shard >= num_shards) {
    throw std::invalid_argument(
        "SocketTransportOptions: shard must be < num_shards");
  }
  if (mailbox_capacity < 1) {
    throw std::invalid_argument(
        "SocketTransportOptions: mailbox_capacity must be >= 1");
  }
  if (conn == nullptr) {
    throw std::invalid_argument("SocketTransportOptions: conn must be set");
  }
  if (!expect_boundary.empty() && expect_boundary.size() != num_shards) {
    throw std::invalid_argument(
        "SocketTransportOptions: expect_boundary must be empty or one entry "
        "per shard");
  }
  if (!expect_residual.empty() && expect_residual.size() != num_shards) {
    throw std::invalid_argument(
        "SocketTransportOptions: expect_residual must be empty or one entry "
        "per shard");
  }
}

SocketTransport::SocketTransport(SocketTransportOptions opts)
    : opts_(opts),
      boxes_(opts.num_shards * static_cast<std::size_t>(kNumHaloTags)) {
  opts_.validate();
}

bool SocketTransport::send(std::size_t from, std::size_t to, HaloTag tag,
                           HaloPacket&& p) {
  if (from != opts_.shard || to >= opts_.num_shards || to == from) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const HaloFrameMsg m = halo_to_wire(from, to, tag, p, opts_.width);
  if (!opts_.conn->send_frame(MsgType::kHaloFrame, encode_halo_frame(m))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  sent_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool SocketTransport::recv_latest(std::size_t to, std::size_t from,
                                  HaloTag tag, HaloPacket& out) {
  if (to != opts_.shard || from >= opts_.num_shards) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<HaloPacket>& q = box(from, tag);
  if (q.empty()) return false;
  out = std::move(q.back());
  q.clear();
  return true;
}

bool SocketTransport::recv_next(std::size_t to, std::size_t from, HaloTag tag,
                                HaloPacket& out) {
  if (to != opts_.shard || from >= opts_.num_shards) return false;
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<HaloPacket>& q = box(from, tag);
  if (q.empty()) return false;
  out = std::move(q.front());
  q.pop_front();
  return true;
}

void SocketTransport::deliver(const HaloFrameMsg& m) {
  if (m.to != opts_.shard || m.from >= opts_.num_shards ||
      m.from == opts_.shard || m.tag >= kNumHaloTags) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::vector<std::size_t>& expect =
      static_cast<HaloTag>(m.tag) == HaloTag::kBoundaryX
          ? opts_.expect_boundary
          : opts_.expect_residual;
  if (!expect.empty() && m.data.size() != expect[m.from]) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::deque<HaloPacket>& q = box(m.from, static_cast<HaloTag>(m.tag));
  if (q.size() >= opts_.mailbox_capacity) {
    q.pop_front();  // newest wins
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  q.push_back(wire_to_halo(m));
}

NetPeerBoard::NetPeerBoard(std::size_t num_shards, std::size_t self,
                           FrameConn* conn)
    : self_(self), conn_(conn), commits_(num_shards), dead_(num_shards) {}

void NetPeerBoard::publish_commits(std::size_t self, int commits) {
  commits_[self].store(commits, std::memory_order_release);
  ProgressMsg m;
  m.shard = static_cast<std::uint32_t>(self);
  m.commits = static_cast<std::uint64_t>(commits);
  conn_->send_frame(MsgType::kProgress, encode_progress(m));
}

void NetPeerBoard::publish_dead(std::size_t self) {
  // The wire-level death signal is the session outcome (kSolveDone or a
  // dropped connection), which the coordinator turns into kPeerDead for
  // everyone else; locally the flag just stops this worker's own waits.
  dead_[self].store(true, std::memory_order_release);
}

void NetPeerBoard::apply_progress(const ProgressMsg& m) {
  if (m.shard >= commits_.size() || m.shard == self_) return;
  commits_[m.shard].store(static_cast<int>(m.commits),
                          std::memory_order_release);
}

void NetPeerBoard::apply_dead(std::size_t peer) {
  if (peer >= dead_.size() || peer == self_) return;
  dead_[peer].store(true, std::memory_order_release);
}

}  // namespace asyncmg
