#pragma once
// Control plane of the multi-process solver service (DESIGN.md section 14).
//
// ClusterCoordinator drives one solve across N worker daemons, one shard
// each, hub-and-spoke: every worker holds a single TCP connection to the
// coordinator and the coordinator relays data-plane frames between them.
// Per solve it
//
//   1. connects to every endpoint with jittered exponential backoff
//      (util/backoff) and handshakes the shard assignment,
//   2. ships the serialized hierarchy + b + x0 + solver options
//      (kSolveRequest) -- workers rebuild identical state deterministically,
//   3. relays kHaloFrame by destination, broadcasts kProgress, and tracks
//      liveness (heartbeat recency and connection EOF); a worker declared
//      dead gets kPeerDead broadcast to the survivors, whose gates and BSP
//      waits then exempt it (Criterion-2 across processes: the dead shard's
//      rows freeze, nobody deadlocks),
//   4. assembles the result: owned blocks from each kSolveDone, the initial
//      block x0 for dead shards, and the true final residual computed
//      against the coordinator's own copy of the operator.
//
// ClusterRouter sits in front: it places each solve on a subset of the
// worker fleet with the consistent-hash ring from shard/router.hpp keyed by
// matrix fingerprint, so repeated solves of the same operator land on the
// same workers (their setup caches stay warm) and resizing the fleet remaps
// only ~1/N of the key space.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "multigrid/additive.hpp"
#include "multigrid/setup.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"
#include "shard/router.hpp"
#include "util/backoff.hpp"

namespace asyncmg {

class TelemetrySink;

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct ClusterOptions {
  /// One worker per shard; shard id = position in this list.
  std::vector<Endpoint> endpoints;
  int connect_timeout_ms = 2000;
  /// Connection attempts per worker before the solve fails; attempts are
  /// separated by the jittered exponential backoff below.
  int connect_attempts = 10;
  BackoffOptions backoff;
  /// A worker whose last heartbeat (or any frame) is older than this is
  /// declared dead mid-solve.
  double heartbeat_timeout_ms = 2000.0;
  /// Halo payload width on the wire (fp32 halves the data-plane bytes).
  WireWidth width = WireWidth::kF64;
  /// Coordinator-side counters under "net.cluster.*". Not owned.
  TelemetrySink* telemetry = nullptr;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

struct ClusterSolveOptions {
  /// Deterministic BSP rounds (bitwise equal to the in-process oracle) vs
  /// free-running asynchronous rounds.
  bool bsp = true;
  int t_max = 20;
  int max_lag = 3;
  std::uint64_t seed = 1;
  AdditiveOptions additive;
  /// Per-shard crash hook forwarded to the workers (empty = none); shard i
  /// drops its connection after crash_after[i] corrections when >= 0.
  std::vector<std::int32_t> crash_after;
};

struct ClusterResult {
  double final_rel_res = 1.0;
  double seconds = 0.0;
  std::vector<int> corrections;       // per shard; 0 for dead workers
  std::vector<std::size_t> dead_workers;
  int reads_dropped = 0;
  std::uint64_t frames_relayed = 0;
  std::uint64_t frames_dropped = 0;   // worker mailbox + send drops, summed
  std::uint64_t bytes_sent = 0;       // coordinator -> workers
  std::uint64_t bytes_received = 0;   // workers -> coordinator
  std::uint64_t connect_retries = 0;  // backoff-spaced redials
  std::string to_json() const;
};

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ClusterOptions opts);

  std::size_t num_workers() const { return opts_.endpoints.size(); }
  const ClusterOptions& options() const { return opts_; }

  /// Solves A x = b across the workers (shard count = endpoint count); x is
  /// updated in place. Throws SocketError when a worker cannot be reached
  /// within connect_attempts.
  ClusterResult solve(const MgSetup& setup, const Vector& b, Vector& x,
                      const ClusterSolveOptions& so);

  /// Asks every reachable worker for its stats JSON and merges them with
  /// the coordinator counters (one fresh connection per worker).
  std::string stats_json() const;

  /// Sends kShutdown to every endpoint that still answers (used by the
  /// bench harness and the CI smoke job to end daemons cleanly).
  void shutdown_workers() const;

 private:
  /// Dial + handshake one worker, with backoff between attempts; counts
  /// retries into `retries`. (FrameConn owns a mutex, so it travels behind
  /// a pointer.)
  std::unique_ptr<FrameConn> connect_worker(std::size_t i,
                                            std::uint64_t& retries) const;

  ClusterOptions opts_;
};

/// Walks the ring clockwise from `key` collecting the first `count`
/// DISTINCT backends (the placement primitive of ClusterRouter, a free
/// function so tests cover it without sockets). Throws std::invalid_argument
/// when fewer distinct backends exist than requested.
std::vector<std::size_t> select_backends(const std::vector<RingNode>& ring,
                                         std::uint64_t key,
                                         std::size_t count);

struct ClusterRouterOptions {
  /// The worker fleet (superset of any one solve's participants).
  std::vector<Endpoint> endpoints;
  /// Workers participating in one solve (= shard count).
  std::size_t shards_per_solve = 2;
  std::size_t vnodes_per_endpoint = 64;
  std::uint64_t ring_seed = 0;
  /// Coordinator settings applied to every solve (endpoints overwritten per
  /// solve with the ring's selection).
  ClusterOptions cluster;

  /// Throws std::invalid_argument with a field-naming message on the first
  /// invalid setting.
  void validate() const;
};

class ClusterRouter {
 public:
  explicit ClusterRouter(ClusterRouterOptions opts);

  const std::vector<RingNode>& ring() const { return ring_; }

  /// Endpoint indices (into options().endpoints) the ring assigns to this
  /// matrix, in shard order.
  std::vector<std::size_t> endpoints_for(const CsrMatrix& a) const;

  /// Routes the solve to the matrix's home workers.
  ClusterResult solve(const MgSetup& setup, const Vector& b, Vector& x,
                      const ClusterSolveOptions& so);

  const ClusterRouterOptions& options() const { return opts_; }

  /// Router counters plus the per-worker stats JSON of the fleet spliced in
  /// verbatim (same shape as ShardRouter::stats_json).
  std::string stats_json() const;

 private:
  ClusterRouterOptions opts_;
  std::vector<RingNode> ring_;
  std::uint64_t routed_ = 0;
  std::vector<std::uint64_t> routed_per_endpoint_;
};

}  // namespace asyncmg
