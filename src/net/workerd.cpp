#include "net/workerd.hpp"

#include <chrono>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "amg/serialize.hpp"
#include "async/schedule.hpp"
#include "backend/backend.hpp"
#include "multigrid/additive.hpp"
#include "net/transport.hpp"
#include "service/fingerprint.hpp"
#include "shard/partition.hpp"
#include "shard/worker.hpp"
#include "telemetry/sink.hpp"

namespace asyncmg {

void WorkerDaemonOptions::validate() const {
  if (!(heartbeat_ms > 0.0)) {
    throw std::invalid_argument(
        "WorkerDaemonOptions: heartbeat_ms must be > 0");
  }
  if (setup_cache_entries < 1) {
    throw std::invalid_argument(
        "WorkerDaemonOptions: setup_cache_entries must be >= 1");
  }
}

WorkerDaemon::WorkerDaemon(WorkerDaemonOptions opts)
    : opts_(opts), listener_((opts.validate(), opts.port)) {}

void WorkerDaemon::run() {
  while (!stop_.load(std::memory_order_relaxed)) {
    Socket s = listener_.accept(100);
    if (!s.valid()) continue;  // timeout; recheck stop flag
    FrameConn conn(std::move(s));
    const SessionEnd end = serve(conn);
    bytes_sent_.fetch_add(conn.bytes_sent(), std::memory_order_relaxed);
    bytes_received_.fetch_add(conn.bytes_received(),
                              std::memory_order_relaxed);
    conn.close();
    if (end == SessionEnd::kShutdown || opts_.once) return;
  }
}

WorkerDaemon::SessionEnd WorkerDaemon::serve(FrameConn& conn) {
  HelloMsg hello;
  hello.role = WireRole::kWorker;
  hello.name = opts_.name;
  if (!conn.send_frame(MsgType::kHello, encode_hello(hello))) {
    return SessionEnd::kPeerGone;
  }

  MsgType type{};
  std::vector<std::uint8_t> payload;
  try {
    // Handshake: the coordinator answers the hello with our assignment.
    for (;;) {
      const RecvStatus st = conn.recv_frame(type, payload, 100);
      if (st == RecvStatus::kClosed) return SessionEnd::kPeerGone;
      if (st == RecvStatus::kTimeout) {
        if (stop_.load(std::memory_order_relaxed)) {
          return SessionEnd::kShutdown;
        }
        continue;
      }
      if (type == MsgType::kHelloAck) {
        const HelloAckMsg ack = decode_hello_ack(payload);
        if (ack.protocol != kWireVersion) return SessionEnd::kPeerGone;
        break;
      }
      if (type == MsgType::kShutdown) return SessionEnd::kShutdown;
      return SessionEnd::kPeerGone;  // protocol violation
    }

    for (;;) {
      const RecvStatus st = conn.recv_frame(type, payload, 100);
      if (st == RecvStatus::kClosed) return SessionEnd::kPeerGone;
      if (st == RecvStatus::kTimeout) {
        if (stop_.load(std::memory_order_relaxed)) {
          return SessionEnd::kShutdown;
        }
        continue;
      }
      switch (type) {
        case MsgType::kSolveRequest: {
          const SolveRequestMsg req = decode_solve_request(payload);
          if (!handle_solve(conn, req)) return SessionEnd::kCrashed;
          break;
        }
        case MsgType::kStatsRequest: {
          StatsResponseMsg m;
          m.json = stats_json();
          conn.send_frame(MsgType::kStatsResponse, encode_stats_response(m));
          break;
        }
        case MsgType::kShutdown:
          return SessionEnd::kShutdown;
        default:
          break;  // stray data-plane frames outside a solve
      }
    }
  } catch (const std::exception&) {
    // Malformed frame or unusable request: drop the session; the daemon
    // keeps serving (a bad coordinator must not take the worker down).
    return SessionEnd::kPeerGone;
  }
}

const MgSetup& WorkerDaemon::setup_for(const SolveRequestMsg& req) {
  std::uint64_t key =
      fnv1a_bytes(req.hierarchy.data(), req.hierarchy.size());
  const double omega = req.smoother_omega;
  key = fnv1a_bytes(&omega, sizeof(omega), key);
  const std::uint64_t rest =
      (static_cast<std::uint64_t>(req.smoother_type) << 48) ^
      (static_cast<std::uint64_t>(req.smoother_blocks) << 16) ^
      static_cast<std::uint64_t>(req.max_dense_coarse);
  key = fnv1a_bytes(&rest, sizeof(rest), key);

  for (CacheEntry& e : cache_) {
    if (e.key == key) {
      ++cache_hits_;
      return *e.setup;
    }
  }
  ++cache_misses_;
  MgOptions mo;
  mo.smoother.type = static_cast<SmootherType>(req.smoother_type);
  mo.smoother.omega = req.smoother_omega;
  mo.smoother.num_blocks = req.smoother_blocks;
  mo.max_dense_coarse = static_cast<Index>(req.max_dense_coarse);
  CacheEntry e;
  e.key = key;
  e.setup = std::make_unique<MgSetup>(load_hierarchy_string(req.hierarchy),
                                      mo);
  if (cache_.size() >= opts_.setup_cache_entries) {
    cache_.erase(cache_.begin());  // oldest
  }
  cache_.push_back(std::move(e));
  return *cache_.back().setup;
}

bool WorkerDaemon::handle_solve(FrameConn& conn, const SolveRequestMsg& req) {
  const MgSetup& setup = setup_for(req);
  AdditiveOptions ao;
  ao.kind = static_cast<AdditiveKind>(req.additive_kind);
  ao.afacx_s1 = req.afacx_s1;
  ao.afacx_s2 = req.afacx_s2;
  ao.symmetrized_lambda = req.symmetrized_lambda != 0;
  const AdditiveCorrector corrector(setup, ao);
  const ShardPlan plan = make_shard_plan(setup.a(0), req.num_shards);
  if (req.b.size() != static_cast<std::size_t>(plan.n)) {
    throw std::invalid_argument("workerd: b size does not match hierarchy");
  }
  const std::size_t s = req.shard;
  const Range rg = plan.owned[s];

  // Deterministic local state: every participant computes the same initial
  // residual from the same (hierarchy, b, x0), so solving can start with no
  // further exchange.
  Vector x_local;
  shard_local_view(plan, s, req.x0, x_local);
  Vector r_view;
  shard_initial_residual(plan, req.b, req.x0, r_view);

  SocketTransportOptions sto;
  sto.shard = s;
  sto.num_shards = req.num_shards;
  sto.width = req.width;
  sto.conn = &conn;
  // Plan-derived payload lengths: deliver() drops any wire frame whose
  // length disagrees, so peers (or the relay) can never feed the solver a
  // wrong-sized ghost or residual block.
  sto.expect_boundary.resize(req.num_shards, 0);
  sto.expect_residual.resize(req.num_shards, 0);
  for (std::size_t p = 0; p < req.num_shards; ++p) {
    if (p == s) continue;
    sto.expect_boundary[p] = plan.ghost_slots[s][p].size();
    sto.expect_residual[p] = plan.owned[p].size();
  }
  SocketTransport transport(sto);
  NetPeerBoard board(req.num_shards, s, &conn);

  FaultPlan faults;
  if (req.crash_after >= 0) {
    FaultPlan::Kill k;
    k.grid = s;
    k.after_corrections = req.crash_after;
    faults.kills.push_back(k);
  }

  ShardWorkerOptions wo;
  wo.shard = s;
  wo.t_max = req.t_max;
  wo.max_lag = req.max_lag;
  wo.bsp = req.bsp != 0;
  wo.faults = req.crash_after >= 0 ? &faults : nullptr;
  wo.telemetry = opts_.telemetry;

  std::atomic<bool> done{false};
  ShardWorkerResult result;
  std::thread solver([&] {
    result = run_shard_worker(plan, corrector, req.b, x_local, r_view,
                              transport, board, wo);
    done.store(true, std::memory_order_release);
  });
  std::thread heartbeat([&] {
    std::uint64_t seq = 0;
    while (!done.load(std::memory_order_acquire)) {
      HeartbeatMsg hb;
      hb.shard = static_cast<std::uint32_t>(s);
      hb.commits = static_cast<std::uint64_t>(board.commits(s));
      hb.seq = seq++;
      conn.send_frame(MsgType::kHeartbeat, encode_heartbeat(hb));
      // Sleep in short slices so the thread ends promptly with the solve.
      double slept = 0.0;
      while (slept < opts_.heartbeat_ms &&
             !done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        slept += 5.0;
      }
    }
  });

  // Reader: feed the data plane (halo frames) and the control plane
  // (progress, peer deaths) until the solver finishes.
  MsgType type{};
  std::vector<std::uint8_t> payload;
  bool coordinator_gone = false;
  while (!done.load(std::memory_order_acquire)) {
    // The whole receive + decode + dispatch step runs under the try: the
    // solver and heartbeat threads are joinable here, so no exception may
    // unwind past this loop (that would std::terminate the daemon). A
    // malformed frame -- truncated, bad checksum, OR checksum-valid but
    // semantically invalid -- is a protocol violation and means the
    // coordinator can no longer be trusted: treat it exactly like a closed
    // connection.
    bool lost = false;
    try {
      const RecvStatus st = conn.recv_frame(type, payload, 20);
      if (st == RecvStatus::kTimeout) continue;
      if (st == RecvStatus::kClosed) {
        lost = true;
      } else {
        switch (type) {
          case MsgType::kHaloFrame:
            transport.deliver(decode_halo_frame(payload));
            break;
          case MsgType::kProgress:
            board.apply_progress(decode_progress(payload));
            break;
          case MsgType::kPeerDead:
            board.apply_dead(decode_peer_dead(payload).shard);
            break;
          case MsgType::kShutdown:
            stop_.store(true, std::memory_order_relaxed);
            break;
          default:
            break;
        }
      }
    } catch (const std::exception&) {
      lost = true;  // protocol violation: treat as lost link
    }
    if (lost) {
      // Coordinator lost: no relay will ever arrive again. Mark every peer
      // dead so the solver finishes from its current view instead of
      // waiting forever -- Criterion-2 from the worker's side.
      coordinator_gone = true;
      for (std::size_t p = 0; p < req.num_shards; ++p) {
        if (p != s) board.apply_dead(p);
      }
      break;
    }
  }
  solver.join();
  heartbeat.join();
  ++solves_;

  if (result.killed && req.crash_after >= 0) {
    ++crashes_;
    return false;  // crash hook: vanish without kSolveDone
  }
  if (coordinator_gone) return true;  // nobody left to report to

  SolveDoneMsg dm;
  dm.shard = static_cast<std::uint32_t>(s);
  dm.corrections = static_cast<std::uint32_t>(result.corrections);
  dm.reads_dropped = static_cast<std::uint32_t>(result.reads_dropped);
  dm.killed = result.killed ? 1 : 0;
  dm.frames_sent = transport.packets_sent();
  dm.frames_dropped = transport.packets_dropped();
  dm.bytes_sent = conn.bytes_sent();
  dm.bytes_received = conn.bytes_received();
  dm.x_block.assign(x_local.begin(),
                    x_local.begin() + static_cast<std::ptrdiff_t>(rg.size()));
  conn.send_frame(MsgType::kSolveDone, encode_solve_done(dm));

  if (opts_.telemetry != nullptr) {
    MetricsRegistry& m = opts_.telemetry->metrics();
    m.counter("net.worker.frames_sent").add(transport.packets_sent());
    m.counter("net.worker.frames_dropped").add(transport.packets_dropped());
    m.counter("net.worker.solves").add(1);
    m.gauge("net.worker.bytes_sent")
        .set(static_cast<double>(conn.bytes_sent()));
    m.gauge("net.worker.bytes_received")
        .set(static_cast<double>(conn.bytes_received()));
  }
  return true;
}

std::string WorkerDaemon::stats_json() const {
  std::ostringstream o;
  o << "{\"name\":\"" << opts_.name << "\",\"backend\":\""
    << backend_kind_name(resolve_backend_kind(BackendKind::kAuto))
    << "\",\"solves\":" << solves_
    << ",\"crashes\":" << crashes_ << ",\"setup_cache_hits\":" << cache_hits_
    << ",\"setup_cache_misses\":" << cache_misses_ << ",\"bytes_sent\":"
    << bytes_sent_.load(std::memory_order_relaxed) << ",\"bytes_received\":"
    << bytes_received_.load(std::memory_order_relaxed);
  if (opts_.telemetry != nullptr) {
    o << ",\"metrics\":" << opts_.telemetry->metrics().to_json();
  }
  o << "}";
  return o.str();
}

}  // namespace asyncmg
