#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace asyncmg {

namespace {

std::string errno_str(const char* op) {
  return std::string(op) + ": " + std::strerror(errno);
}

/// Remaining milliseconds until `deadline`; -1 when there is no deadline.
int remaining_ms(std::chrono::steady_clock::time_point deadline,
                 bool has_deadline) {
  if (!has_deadline) return -1;
  const auto now = std::chrono::steady_clock::now();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  return ms > 0 ? static_cast<int>(ms) : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Socket
// ---------------------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// ---------------------------------------------------------------------------
// ListenSocket
// ---------------------------------------------------------------------------

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw SocketError(errno_str("socket"));
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = errno_str("bind");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(err);
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const std::string err = errno_str("getsockname");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(err);
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(fd_, backlog) != 0) {
    const std::string err = errno_str("listen");
    ::close(fd_);
    fd_ = -1;
    throw SocketError(err);
  }
}

ListenSocket::~ListenSocket() { close(); }

void ListenSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket ListenSocket::accept(int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_str("poll"));
    }
    if (rc == 0) return Socket();  // timeout
    break;
  }
  const int cfd = ::accept(fd_, nullptr, nullptr);
  if (cfd < 0) throw SocketError(errno_str("accept"));
  const int one = 1;
  ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Socket(cfd);
}

// ---------------------------------------------------------------------------
// connect_tcp
// ---------------------------------------------------------------------------

Socket connect_tcp(const std::string& host, std::uint16_t port,
                   int timeout_ms) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("bad IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw SocketError(errno_str("socket"));
  Socket sock(fd);

  // Nonblocking connect + poll so a down peer fails after timeout_ms rather
  // than the kernel's multi-minute default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    throw SocketError(errno_str("connect"));
  }
  if (rc != 0) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    for (;;) {
      rc = ::poll(&pfd, 1, timeout_ms);
      if (rc < 0 && errno == EINTR) continue;
      break;
    }
    if (rc < 0) throw SocketError(errno_str("poll"));
    if (rc == 0) throw SocketError("connect timeout");
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      throw SocketError(errno_str("connect"));
    }
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

// ---------------------------------------------------------------------------
// FrameConn
// ---------------------------------------------------------------------------

FrameConn::FrameConn(Socket sock) : sock_(std::move(sock)) {}

void FrameConn::shutdown_both() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_RDWR);
}

bool FrameConn::send_frame(MsgType type,
                           const std::vector<std::uint8_t>& payload) {
  const std::vector<std::uint8_t> frame = encode_frame(type, payload);
  std::lock_guard<std::mutex> lock(send_mu_);
  if (!sock_.valid() || peer_gone_) return false;
  std::size_t off = 0;
  while (off < frame.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the process.
    const ssize_t n = ::send(sock_.fd(), frame.data() + off,
                             frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      peer_gone_ = true;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  bytes_sent_ += frame.size();
  ++frames_sent_;
  return true;
}

RecvStatus FrameConn::recv_frame(MsgType& type,
                                 std::vector<std::uint8_t>& payload,
                                 int timeout_ms) {
  const bool has_deadline = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(has_deadline ? timeout_ms : 0);
  for (;;) {
    // Try to peel a complete frame off the reassembly buffer first.
    if (rbuf_.size() >= kFrameHeaderBytes) {
      const FrameHeader h = decode_frame_header(rbuf_.data(), rbuf_.size());
      const std::size_t total = kFrameHeaderBytes + h.payload_len;
      if (rbuf_.size() >= total) {
        verify_frame_payload(h, rbuf_.data() + kFrameHeaderBytes);
        type = h.type;
        payload.assign(rbuf_.begin() + kFrameHeaderBytes,
                       rbuf_.begin() + static_cast<std::ptrdiff_t>(total));
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() +
                                       static_cast<std::ptrdiff_t>(total));
        ++frames_received_;
        return RecvStatus::kFrame;
      }
    }
    if (!sock_.valid()) return RecvStatus::kClosed;

    pollfd pfd{};
    pfd.fd = sock_.fd();
    pfd.events = POLLIN;
    const int wait = remaining_ms(deadline, has_deadline);
    const int rc = ::poll(&pfd, 1, wait);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw SocketError(errno_str("poll"));
    }
    if (rc == 0) return RecvStatus::kTimeout;

    std::uint8_t chunk[65536];
    const ssize_t n = ::recv(sock_.fd(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return RecvStatus::kClosed;  // ECONNRESET et al.
    }
    if (n == 0) return RecvStatus::kClosed;  // orderly EOF
    bytes_received_ += static_cast<std::uint64_t>(n);
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

}  // namespace asyncmg
