#pragma once
// Versioned, length-prefixed wire protocol of the multi-process solver
// service (DESIGN.md section 14). Every message is one frame:
//
//   [u32 magic "aMG1"] [u8 version] [u8 type] [u16 reserved = 0]
//   [u32 payload_len]  [u32 payload FNV-1a-32 checksum] [payload bytes]
//
// All integers are little-endian ON THE WIRE regardless of host order --
// encode/decode goes through explicit byte shifts, never memcpy of host
// representations -- and floating-point payloads are width-aware (fp64 or
// fp32 per frame, the PR 7 precision tags carried into the halo path): an
// fp32 frame ships 4-byte IEEE singles that round-trip bit for bit.
//
// Decoding is defensive by construction: WireReader bounds-checks every
// read and throws WireError on truncation, the frame header rejects bad
// magic/version/oversized lengths before any payload is touched, and the
// checksum rejects corrupted payloads -- a malformed peer can make us throw,
// never read out of bounds (the fuzz suite in tests/test_net.cpp runs these
// decoders under ASan/UBSan on random truncations and bit flips).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "shard/transport.hpp"

namespace asyncmg {

class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what)
      : std::runtime_error("wire: " + what) {}
};

inline constexpr std::uint32_t kWireMagic = 0x314D4761u;  // "aMG1"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on a payload; longer length prefixes are treated as
/// corruption (protects the reassembly buffer from a hostile length).
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 30;

enum class MsgType : std::uint8_t {
  kHello = 1,       // worker -> router: who am I
  kHelloAck,        // router -> worker: your shard assignment
  kSolveRequest,    // router -> worker: problem + role for one solve
  kHaloFrame,       // worker <-> worker (relayed): halo / residual block
  kProgress,        // worker -> all: committed correction count
  kHeartbeat,       // worker -> router: liveness + progress
  kPeerDead,        // router -> workers: peer will never commit again
  kSolveDone,       // worker -> router: owned block + per-worker counters
  kStatsRequest,    // router -> worker
  kStatsResponse,   // worker -> router: metrics JSON
  kShutdown,        // router -> worker: exit cleanly
};

const char* msg_type_name(MsgType t);

/// Scalar width of a frame's floating-point payload.
enum class WireWidth : std::uint8_t { kF64 = 0, kF32 = 1 };

// ---------------------------------------------------------------------------
// Byte-level encode / decode
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void f32(float v);
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);
  /// Length-prefixed (u32) vector of doubles at the given width; fp32
  /// narrows each value (the caller owns the rounding decision).
  void vec(const std::vector<double>& v, WireWidth w);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), n_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& b)
      : WireReader(b.data(), b.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  float f32();
  std::string str();
  std::vector<double> vec(WireWidth w);

  std::size_t remaining() const { return n_ - off_; }
  /// Throws WireError unless the payload was consumed exactly.
  void expect_end() const;

 private:
  void need(std::size_t k) const;
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// FNV-1a over a byte range, folded to 32 bits (frame checksum).
std::uint32_t wire_checksum(const std::uint8_t* data, std::size_t size);

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

struct FrameHeader {
  MsgType type = MsgType::kHello;
  std::uint32_t payload_len = 0;
  std::uint32_t checksum = 0;
};

/// Serializes header + payload into one contiguous wire frame.
std::vector<std::uint8_t> encode_frame(MsgType type,
                                       const std::vector<std::uint8_t>& payload);

/// Parses and validates the 16-byte header (magic, version, reserved bytes,
/// length bound). Throws WireError on any violation.
FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t size);

/// Validates `payload` against the header checksum; throws WireError.
void verify_frame_payload(const FrameHeader& h, const std::uint8_t* payload);

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

enum class WireRole : std::uint8_t { kRouter = 0, kWorker = 1 };

struct HelloMsg {
  WireRole role = WireRole::kWorker;
  std::uint32_t protocol = kWireVersion;
  std::string name;
};

struct HelloAckMsg {
  std::uint32_t protocol = kWireVersion;
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 1;
};

/// Everything a worker needs to run one shard of a solve. The hierarchy
/// travels as the PR 7 serialization (bit-exact round trip), so every
/// participant deterministically reconstructs the SAME MgSetup and
/// ShardPlan -- no further coordination is needed for the BSP discipline to
/// be bitwise reproducible across processes.
struct SolveRequestMsg {
  std::uint32_t shard = 0;
  std::uint32_t num_shards = 1;
  std::uint8_t bsp = 1;  // 1 = deterministic BSP rounds, 0 = free-running
  WireWidth width = WireWidth::kF64;  // halo payload width
  std::int32_t t_max = 20;
  std::int32_t max_lag = 3;
  std::uint64_t seed = 1;
  // AdditiveOptions
  std::uint8_t additive_kind = 1;  // AdditiveKind
  std::uint8_t symmetrized_lambda = 0;
  std::int32_t afacx_s1 = 1;
  std::int32_t afacx_s2 = 1;
  // MgOptions subset the solve path reads (hierarchy is prebuilt)
  std::uint8_t smoother_type = 0;
  double smoother_omega = 0.9;
  std::uint32_t smoother_blocks = 1;
  std::int64_t max_dense_coarse = 2000;
  /// Test hook: worker drops the connection without SolveDone after this
  /// many corrections (-1 = never) -- a deterministic stand-in for SIGKILL
  /// in crash-recovery tests.
  std::int32_t crash_after = -1;
  std::string hierarchy;  // save_hierarchy_string bytes
  std::vector<double> b;
  std::vector<double> x0;
};

struct HaloFrameMsg {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  std::uint8_t tag = 0;  // HaloTag
  WireWidth width = WireWidth::kF64;
  std::uint64_t seq = 0;
  std::vector<double> data;
};

struct ProgressMsg {
  std::uint32_t shard = 0;
  std::uint64_t commits = 0;
};

struct HeartbeatMsg {
  std::uint32_t shard = 0;
  std::uint64_t commits = 0;
  std::uint64_t seq = 0;
};

struct PeerDeadMsg {
  std::uint32_t shard = 0;
};

struct SolveDoneMsg {
  std::uint32_t shard = 0;
  std::uint32_t corrections = 0;
  std::uint32_t reads_dropped = 0;
  std::uint8_t killed = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::vector<double> x_block;  // owned rows, always fp64
};

struct StatsResponseMsg {
  std::string json;
};

std::vector<std::uint8_t> encode_hello(const HelloMsg& m);
std::vector<std::uint8_t> encode_hello_ack(const HelloAckMsg& m);
std::vector<std::uint8_t> encode_solve_request(const SolveRequestMsg& m);
std::vector<std::uint8_t> encode_halo_frame(const HaloFrameMsg& m);
std::vector<std::uint8_t> encode_progress(const ProgressMsg& m);
std::vector<std::uint8_t> encode_heartbeat(const HeartbeatMsg& m);
std::vector<std::uint8_t> encode_peer_dead(const PeerDeadMsg& m);
std::vector<std::uint8_t> encode_solve_done(const SolveDoneMsg& m);
std::vector<std::uint8_t> encode_stats_response(const StatsResponseMsg& m);

/// Decoders validate every field (enum ranges, payload fully consumed) and
/// throw WireError on malformed input.
HelloMsg decode_hello(const std::vector<std::uint8_t>& p);
HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p);
SolveRequestMsg decode_solve_request(const std::vector<std::uint8_t>& p);
HaloFrameMsg decode_halo_frame(const std::vector<std::uint8_t>& p);
ProgressMsg decode_progress(const std::vector<std::uint8_t>& p);
HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p);
PeerDeadMsg decode_peer_dead(const std::vector<std::uint8_t>& p);
SolveDoneMsg decode_solve_done(const std::vector<std::uint8_t>& p);
StatsResponseMsg decode_stats_response(const std::vector<std::uint8_t>& p);

/// HaloFrameMsg <-> the shard executor's HaloPacket.
HaloFrameMsg halo_to_wire(std::size_t from, std::size_t to, HaloTag tag,
                          const HaloPacket& p, WireWidth w);
HaloPacket wire_to_halo(const HaloFrameMsg& m);

}  // namespace asyncmg
