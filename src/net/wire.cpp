#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace asyncmg {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kHello:
      return "hello";
    case MsgType::kHelloAck:
      return "hello-ack";
    case MsgType::kSolveRequest:
      return "solve-request";
    case MsgType::kHaloFrame:
      return "halo-frame";
    case MsgType::kProgress:
      return "progress";
    case MsgType::kHeartbeat:
      return "heartbeat";
    case MsgType::kPeerDead:
      return "peer-dead";
    case MsgType::kSolveDone:
      return "solve-done";
    case MsgType::kStatsRequest:
      return "stats-request";
    case MsgType::kStatsResponse:
      return "stats-response";
    case MsgType::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// WireWriter
// ---------------------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::vec(const std::vector<double>& v, WireWidth w) {
  u32(static_cast<std::uint32_t>(v.size()));
  if (w == WireWidth::kF64) {
    for (double x : v) f64(x);
  } else {
    for (double x : v) f32(static_cast<float>(x));
  }
}

// ---------------------------------------------------------------------------
// WireReader
// ---------------------------------------------------------------------------

void WireReader::need(std::size_t k) const {
  if (n_ - off_ < k) throw WireError("truncated payload");
}

std::uint8_t WireReader::u8() {
  need(1);
  return p_[off_++];
}

std::uint16_t WireReader::u16() {
  need(2);
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v = static_cast<std::uint16_t>(v | (static_cast<std::uint16_t>(p_[off_ + i])
                                        << (8 * i)));
  }
  off_ += 2;
  return v;
}

std::uint32_t WireReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p_[off_ + i]) << (8 * i);
  }
  off_ += 4;
  return v;
}

std::uint64_t WireReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p_[off_ + i]) << (8 * i);
  }
  off_ += 8;
  return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

float WireReader::f32() { return std::bit_cast<float>(u32()); }

std::string WireReader::str() {
  const std::uint32_t len = u32();
  // The length prefix is attacker-controlled; bound it by the bytes
  // actually present before allocating.
  need(len);
  std::string s(reinterpret_cast<const char*>(p_ + off_), len);
  off_ += len;
  return s;
}

std::vector<double> WireReader::vec(WireWidth w) {
  const std::uint32_t len = u32();
  const std::size_t elem = w == WireWidth::kF64 ? 8 : 4;
  need(static_cast<std::size_t>(len) * elem);
  std::vector<double> v;
  v.reserve(len);
  if (w == WireWidth::kF64) {
    for (std::uint32_t i = 0; i < len; ++i) v.push_back(f64());
  } else {
    for (std::uint32_t i = 0; i < len; ++i) {
      v.push_back(static_cast<double>(f32()));
    }
  }
  return v;
}

void WireReader::expect_end() const {
  if (off_ != n_) throw WireError("trailing bytes after payload");
}

std::uint32_t wire_checksum(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_frame(
    MsgType type, const std::vector<std::uint8_t>& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    throw WireError("payload exceeds kMaxPayloadBytes");
  }
  WireWriter w;
  w.u32(kWireMagic);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(type));
  w.u16(0);  // reserved
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(wire_checksum(payload.data(), payload.size()));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t size) {
  if (size < kFrameHeaderBytes) throw WireError("truncated frame header");
  WireReader r(data, kFrameHeaderBytes);
  if (r.u32() != kWireMagic) throw WireError("bad magic");
  const std::uint8_t version = r.u8();
  if (version != kWireVersion) {
    throw WireError("unsupported protocol version " + std::to_string(version));
  }
  const std::uint8_t type = r.u8();
  if (type < static_cast<std::uint8_t>(MsgType::kHello) ||
      type > static_cast<std::uint8_t>(MsgType::kShutdown)) {
    throw WireError("unknown message type " + std::to_string(type));
  }
  if (r.u16() != 0) throw WireError("nonzero reserved field");
  FrameHeader h;
  h.type = static_cast<MsgType>(type);
  h.payload_len = r.u32();
  if (h.payload_len > kMaxPayloadBytes) {
    throw WireError("payload length exceeds bound");
  }
  h.checksum = r.u32();
  return h;
}

void verify_frame_payload(const FrameHeader& h, const std::uint8_t* payload) {
  if (wire_checksum(payload, h.payload_len) != h.checksum) {
    throw WireError("payload checksum mismatch");
  }
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

namespace {

WireWidth parse_width(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(WireWidth::kF32)) {
    throw WireError("bad payload width tag");
  }
  return static_cast<WireWidth>(v);
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloMsg& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(m.role));
  w.u32(m.protocol);
  w.str(m.name);
  return w.take();
}

HelloMsg decode_hello(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloMsg m;
  const std::uint8_t role = r.u8();
  if (role > static_cast<std::uint8_t>(WireRole::kWorker)) {
    throw WireError("bad role");
  }
  m.role = static_cast<WireRole>(role);
  m.protocol = r.u32();
  m.name = r.str();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_hello_ack(const HelloAckMsg& m) {
  WireWriter w;
  w.u32(m.protocol);
  w.u32(m.shard);
  w.u32(m.num_shards);
  return w.take();
}

HelloAckMsg decode_hello_ack(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HelloAckMsg m;
  m.protocol = r.u32();
  m.shard = r.u32();
  m.num_shards = r.u32();
  if (m.num_shards == 0 || m.shard >= m.num_shards) {
    throw WireError("bad shard assignment");
  }
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_solve_request(const SolveRequestMsg& m) {
  WireWriter w;
  w.u32(m.shard);
  w.u32(m.num_shards);
  w.u8(m.bsp);
  w.u8(static_cast<std::uint8_t>(m.width));
  w.u32(static_cast<std::uint32_t>(m.t_max));
  w.u32(static_cast<std::uint32_t>(m.max_lag));
  w.u64(m.seed);
  w.u8(m.additive_kind);
  w.u8(m.symmetrized_lambda);
  w.u32(static_cast<std::uint32_t>(m.afacx_s1));
  w.u32(static_cast<std::uint32_t>(m.afacx_s2));
  w.u8(m.smoother_type);
  w.f64(m.smoother_omega);
  w.u32(m.smoother_blocks);
  w.i64(m.max_dense_coarse);
  w.u32(static_cast<std::uint32_t>(m.crash_after));
  w.str(m.hierarchy);
  w.vec(m.b, WireWidth::kF64);
  w.vec(m.x0, WireWidth::kF64);
  return w.take();
}

SolveRequestMsg decode_solve_request(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  SolveRequestMsg m;
  m.shard = r.u32();
  m.num_shards = r.u32();
  if (m.num_shards == 0 || m.shard >= m.num_shards) {
    throw WireError("bad shard assignment");
  }
  m.bsp = r.u8();
  if (m.bsp > 1) throw WireError("bad bsp flag");
  m.width = parse_width(r.u8());
  m.t_max = static_cast<std::int32_t>(r.u32());
  if (m.t_max < 1) throw WireError("bad t_max");
  m.max_lag = static_cast<std::int32_t>(r.u32());
  if (m.max_lag < 0) throw WireError("bad max_lag");
  m.seed = r.u64();
  m.additive_kind = r.u8();
  if (m.additive_kind > 2) throw WireError("bad additive kind");
  m.symmetrized_lambda = r.u8();
  if (m.symmetrized_lambda > 1) throw WireError("bad symmetrized flag");
  m.afacx_s1 = static_cast<std::int32_t>(r.u32());
  m.afacx_s2 = static_cast<std::int32_t>(r.u32());
  if (m.afacx_s1 < 1 || m.afacx_s2 < 1) throw WireError("bad afacx sweeps");
  m.smoother_type = r.u8();
  if (m.smoother_type > 4) throw WireError("bad smoother type");
  m.smoother_omega = r.f64();
  m.smoother_blocks = r.u32();
  if (m.smoother_blocks < 1) throw WireError("bad smoother blocks");
  m.max_dense_coarse = r.i64();
  m.crash_after = static_cast<std::int32_t>(r.u32());
  m.hierarchy = r.str();
  m.b = r.vec(WireWidth::kF64);
  m.x0 = r.vec(WireWidth::kF64);
  if (m.b.size() != m.x0.size()) throw WireError("b/x0 size mismatch");
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_halo_frame(const HaloFrameMsg& m) {
  WireWriter w;
  w.u32(m.from);
  w.u32(m.to);
  w.u8(m.tag);
  w.u8(static_cast<std::uint8_t>(m.width));
  w.u64(m.seq);
  w.vec(m.data, m.width);
  return w.take();
}

HaloFrameMsg decode_halo_frame(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HaloFrameMsg m;
  m.from = r.u32();
  m.to = r.u32();
  if (m.from == m.to) throw WireError("halo frame to self");
  m.tag = r.u8();
  if (m.tag >= kNumHaloTags) throw WireError("bad halo tag");
  m.width = parse_width(r.u8());
  m.seq = r.u64();
  m.data = r.vec(m.width);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_progress(const ProgressMsg& m) {
  WireWriter w;
  w.u32(m.shard);
  w.u64(m.commits);
  return w.take();
}

ProgressMsg decode_progress(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  ProgressMsg m;
  m.shard = r.u32();
  m.commits = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_heartbeat(const HeartbeatMsg& m) {
  WireWriter w;
  w.u32(m.shard);
  w.u64(m.commits);
  w.u64(m.seq);
  return w.take();
}

HeartbeatMsg decode_heartbeat(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  HeartbeatMsg m;
  m.shard = r.u32();
  m.commits = r.u64();
  m.seq = r.u64();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_peer_dead(const PeerDeadMsg& m) {
  WireWriter w;
  w.u32(m.shard);
  return w.take();
}

PeerDeadMsg decode_peer_dead(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  PeerDeadMsg m;
  m.shard = r.u32();
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_solve_done(const SolveDoneMsg& m) {
  WireWriter w;
  w.u32(m.shard);
  w.u32(m.corrections);
  w.u32(m.reads_dropped);
  w.u8(m.killed);
  w.u64(m.frames_sent);
  w.u64(m.frames_dropped);
  w.u64(m.bytes_sent);
  w.u64(m.bytes_received);
  w.vec(m.x_block, WireWidth::kF64);
  return w.take();
}

SolveDoneMsg decode_solve_done(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  SolveDoneMsg m;
  m.shard = r.u32();
  m.corrections = r.u32();
  m.reads_dropped = r.u32();
  m.killed = r.u8();
  if (m.killed > 1) throw WireError("bad killed flag");
  m.frames_sent = r.u64();
  m.frames_dropped = r.u64();
  m.bytes_sent = r.u64();
  m.bytes_received = r.u64();
  m.x_block = r.vec(WireWidth::kF64);
  r.expect_end();
  return m;
}

std::vector<std::uint8_t> encode_stats_response(const StatsResponseMsg& m) {
  WireWriter w;
  w.str(m.json);
  return w.take();
}

StatsResponseMsg decode_stats_response(const std::vector<std::uint8_t>& p) {
  WireReader r(p);
  StatsResponseMsg m;
  m.json = r.str();
  r.expect_end();
  return m;
}

HaloFrameMsg halo_to_wire(std::size_t from, std::size_t to, HaloTag tag,
                          const HaloPacket& p, WireWidth w) {
  HaloFrameMsg m;
  m.from = static_cast<std::uint32_t>(from);
  m.to = static_cast<std::uint32_t>(to);
  m.tag = static_cast<std::uint8_t>(tag);
  m.width = w;
  m.seq = p.seq;
  m.data = p.data;
  return m;
}

HaloPacket wire_to_halo(const HaloFrameMsg& m) {
  HaloPacket p;
  p.seq = m.seq;
  p.data = m.data;
  return p;
}

}  // namespace asyncmg
