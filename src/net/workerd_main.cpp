// asyncmg_workerd: one shard of the multi-process solver service as an OS
// process. Binds loopback (ephemeral by default), prints "LISTENING <port>"
// on stdout (and optionally to --port-file) so harnesses can spawn on port
// 0 without races, then serves coordinator sessions until kShutdown.
//
//   asyncmg_workerd [--port N] [--port-file PATH] [--name S] [--once]
//                   [--heartbeat-ms X] [--trace PATH]
//
// --once exits after the first coordinator session (the CI smoke job runs
// three of these); --trace writes the worker's Chrome trace on exit, one
// process per worker, so merged traces show per-worker tracks.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "backend/backend.hpp"
#include "net/workerd.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sink.hpp"

namespace {

void usage() {
  std::cerr << "usage: asyncmg_workerd [--port N] [--port-file PATH] "
               "[--name S] [--once] [--heartbeat-ms X] [--trace PATH]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace asyncmg;

  WorkerDaemonOptions opts;
  std::string port_file;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      opts.port = static_cast<std::uint16_t>(std::stoi(value()));
    } else if (arg == "--port-file") {
      port_file = value();
    } else if (arg == "--name") {
      opts.name = value();
    } else if (arg == "--once") {
      opts.once = true;
    } else if (arg == "--heartbeat-ms") {
      opts.heartbeat_ms = std::stod(value());
    } else if (arg == "--trace") {
      trace_path = value();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      usage();
      return 2;
    }
  }

  try {
    TelemetrySink sink;
    if (!trace_path.empty()) opts.telemetry = &sink;

    WorkerDaemon daemon(opts);
    std::cerr << "workerd " << opts.name << ": kernel backend "
              << backend_kind_name(resolve_backend_kind(BackendKind::kAuto))
              << " (supported: " << supported_backends_string() << ")\n";
    // The harness contract: one line, fixed prefix, flushed before serving.
    std::cout << "LISTENING " << daemon.port() << "\n" << std::flush;
    if (!port_file.empty()) {
      std::ofstream f(port_file);
      f << daemon.port() << "\n";
    }
    daemon.run();

    if (!trace_path.empty()) {
      ChromeTraceOptions to;
      to.process_name = opts.name;
      write_text_file(trace_path, chrome_trace_json(sink.drain(), to));
    }
    std::cerr << "workerd " << opts.name << ": " << daemon.stats_json()
              << "\n";
  } catch (const std::exception& e) {
    std::cerr << "workerd: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
