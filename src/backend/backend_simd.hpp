#pragma once
// Internal seam between the dispatcher (backend.cpp) and the per-ISA TUs
// (simd_avx2.cpp / simd_avx512.cpp). Each TU is compiled with exactly its
// own ISA flags (-mavx2 / -mavx512f, plus -ffp-contract=off so the compiler
// cannot contract the kernels' mul+add chains into FMAs and break bitwise
// identity); when the toolchain lacks the flag the TU compiles to a stub
// returning nullptr, keeping the rest of the binary portable.

namespace asyncmg {

class KernelBackend;

namespace detail {

/// Singleton SIMD backends, or nullptr when the TU was built as a stub.
const KernelBackend* avx2_backend();
const KernelBackend* avx512_backend();

/// Runtime CPU probes (CPUID + OS xsave state via __builtin_cpu_supports;
/// false on non-GNU-compatible toolchains or non-x86 targets).
bool cpu_supports_avx2();
bool cpu_supports_avx512f();

}  // namespace detail
}  // namespace asyncmg
