#pragma once
// Kernel backend abstraction (DESIGN.md section 15).
//
// AMGCL-style split (Demidov, PAPERS.md): the builder produces a
// backend-neutral hierarchy (CSR operators plus optional SELL-C-σ forms),
// and a KernelBackend supplies the solve-phase kernel set — SpMV, the fused
// diagonal sweep, the fused sub-SpMV, residual(+norm), restrict/prolong
// application, axpy/dot, and workspace preparation. MgSetup resolves one
// backend per hierarchy from KernelEngineOptions::backend and every cycle
// driver (multiplicative, additive, async teams, shard workers) runs its
// kernels through it.
//
// Bitwise contract: every backend's result is bit-identical to the scalar
// oracle (the existing OpenMP CSR/SELL engine) for every kernel, precision,
// and thread count. The SIMD backends achieve this by vectorizing ACROSS
// SELL chunk lanes — one matrix row per SIMD lane — so each row's serial
// CSR-order accumulation is reproduced exactly; see sparse/sell_ops.hpp and
// DESIGN.md §15 for the full argument. Because a CSR row's accumulation is
// a serial dependence chain, the CSR kernels, transfers, and reductions are
// NOT ISA-specialized: they are shared scalar code inherited from this base
// class, and SIMD backends override only the SELL entry points. A future
// CUDA backend slots into the same seam (ISSUE: it would override the
// workspace hooks too and relax the bitwise contract to an error bound;
// the dispatch below already reserves the selection path).
//
// Backends are stateless singletons; pointers returned by the resolvers are
// valid for the process lifetime and safe to share across threads.

#include <cstddef>
#include <string>

#include "sparse/csr.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/types.hpp"

namespace asyncmg {

class KernelBackend {
 public:
  virtual ~KernelBackend() = default;

  /// Concrete kind (never kAuto).
  virtual BackendKind kind() const = 0;
  const char* name() const { return backend_kind_name(kind()); }

  // --- SELL-C-σ solve kernels (the ISA-specialized set) -------------------
  //
  // `parallel` requests the engine's standard nnz-balanced chunk split; it
  // is still subject to solve_omp_eligible (pool workers and small matrices
  // stay serial), and chunks own disjoint output rows, so the result is
  // identical for every thread count either way.

  /// y = A x.
  virtual void sell_spmv(const SellMatrix& a, const Vector& x, Vector& y,
                         bool parallel) const;
  /// r = b - A x (residual accumulation order).
  virtual void sell_residual(const SellMatrix& a, const Vector& b,
                             const Vector& x, Vector& r, bool parallel) const;
  /// x_out = x_in + d .* (b - A x_in), the fused damped-Jacobi sweep.
  virtual void sell_diag_sweep(const SellMatrix& a, const Vector& d,
                               const Vector& b, const Vector& x_in,
                               Vector& x_out, bool parallel) const;
  /// tmp = r - A e (spmv accumulation order), the fused restriction input.
  virtual void sell_sub_spmv(const SellMatrix& a, const Vector& r,
                             const Vector& e, Vector& tmp,
                             bool parallel) const;

  // --- CSR kernels (shared scalar engine; see header comment) -------------

  virtual void csr_spmv(const CsrMatrix& a, const Vector& x, Vector& y,
                        bool parallel) const;
  virtual void csr_spmv_rows(const CsrMatrix& a, const Vector& x, Vector& y,
                             Index begin, Index end) const;
  /// y += alpha * A x.
  virtual void csr_spmv_add(const CsrMatrix& a, const Vector& x, Vector& y,
                            double alpha, bool parallel) const;
  virtual void csr_spmv_transpose(const CsrMatrix& a, const Vector& x,
                                  Vector& y) const;
  virtual void csr_residual(const CsrMatrix& a, const Vector& b,
                            const Vector& x, Vector& r, bool parallel) const;
  virtual void csr_residual_rows(const CsrMatrix& a, const Vector& b,
                                 const Vector& x, Vector& r, Index begin,
                                 Index end) const;
  virtual void csr_diag_sweep(const CsrMatrix& a, const Vector& d,
                              const Vector& b, const Vector& x_in,
                              Vector& x_out, bool parallel) const;
  virtual void csr_sub_spmv(const CsrMatrix& a, const Vector& r,
                            const Vector& e, Vector& tmp, bool parallel) const;
  /// r = b - A x and returns sum r_i^2 (serial row-order reduction).
  virtual double csr_residual_norm_sq(const CsrMatrix& a, const Vector& b,
                                      const Vector& x, Vector& r,
                                      bool parallel) const;

  // --- Transfer application ------------------------------------------------

  /// y = R x through the explicitly stored transpose R = P^T (row-parallel).
  virtual void restrict_apply(const CsrMatrix& rt, const Vector& x, Vector& y,
                              bool parallel) const;
  /// e += P e_c.
  virtual void prolong_add(const CsrMatrix& p, const Vector& e_c, Vector& e,
                           bool parallel) const;

  // --- BLAS-1 --------------------------------------------------------------

  virtual double dot(const Vector& x, const Vector& y) const;
  virtual void axpy(double alpha, const Vector& x, Vector& y) const;

  // --- Workspace -----------------------------------------------------------

  /// Sizes one cycle-workspace buffer. With `first_touch`, large buffers are
  /// re-zeroed by a parallel loop so first-touch NUMA policies place pages
  /// with the team that runs the kernels; pool workers and small buffers
  /// skip it, exactly like the solve kernels' OpenMP gate.
  virtual void prepare_workspace(Vector& v, std::size_t n,
                                 bool first_touch) const;
};

// --- Dispatch ---------------------------------------------------------------

/// The TU for `k` was compiled into this binary (per-TU -mavx2/-mavx512f;
/// false on non-x86 builds). kScalar is always compiled; kAuto is never.
bool backend_compiled(BackendKind k);

/// backend_compiled(k) AND the running CPU reports the ISA (CPUID with OS
/// state, via __builtin_cpu_supports).
bool backend_supported(BackendKind k);

/// Widest supported backend on this host (at least kScalar).
BackendKind detect_backend();

/// Resolves a request to a concrete supported kind: an explicit request
/// pins the kind (falling back to detect_backend() with a one-time logged
/// warning when unsupported); kAuto consults ASYNCMG_BACKEND
/// (scalar|avx2|avx512|auto, invalid values warn once and mean auto) and
/// otherwise picks detect_backend(). Never returns kAuto, never throws.
BackendKind resolve_backend_kind(BackendKind requested);

/// Singleton backend instance for a concrete supported kind (kScalar for
/// anything unsupported or kAuto — callers should resolve first).
const KernelBackend& backend_for(BackendKind k);

/// resolve_backend_kind + backend_for in one step: the backend an engine
/// configured with `opts` runs on.
const KernelBackend& resolve_backend(const KernelEngineOptions& opts);

/// The scalar oracle backend (always available).
const KernelBackend& scalar_backend();

/// "scalar avx2 avx512"-style list of supported kinds, for logs/stats.
std::string supported_backends_string();

}  // namespace asyncmg
