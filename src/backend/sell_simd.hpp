#pragma once
// Shared skeleton of the SIMD SELL backends: the precision dispatch and the
// engine's standard nnz-balanced OpenMP chunk split, identical to
// SellMatrix::run/run_values in sellcs.cpp. The ISA-specific TU supplies
// `Apply`, a functor running chunks [c0, c1) of a SellView against one Op
// (sparse/sell_ops.hpp). Chunks own disjoint output rows, so the partition
// never affects the result.
//
// This header is included only from TUs compiled with their ISA flags; it
// contains no intrinsics itself.

#include <omp.h>

#include <cstddef>
#include <span>

#include "sparse/kernels.hpp"
#include "sparse/sell_ops.hpp"
#include "sparse/sellcs.hpp"
#include "util/partition.hpp"

namespace asyncmg {
namespace detail {

template <class Apply, class Op>
void run_sell_simd(const SellView& v, const double* x, const Op& op,
                   bool parallel, const Apply& apply) {
  const bool par = parallel && v.nchunks > 1 && solve_omp_eligible(v.rows);
  if (!par) {
    if (v.prec == Precision::kF32) {
      apply(v, v.values_f32, x, op, std::size_t{0}, v.nchunks);
    } else {
      apply(v, v.values, x, op, std::size_t{0}, v.nchunks);
    }
    return;
  }
  const std::span<const Index> prefix(v.chunk_ptr, v.nchunks + 1);
#pragma omp parallel
  {
    const auto nt = static_cast<std::size_t>(omp_get_num_threads());
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    const Range rg = nnz_balanced_chunk(prefix, nt, t);
    if (v.prec == Precision::kF32) {
      apply(v, v.values_f32, x, op, rg.begin, rg.end);
    } else {
      apply(v, v.values, x, op, rg.begin, rg.end);
    }
  }
}

}  // namespace detail
}  // namespace asyncmg
