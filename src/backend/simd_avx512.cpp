// AVX-512F SELL-C-σ kernels (DESIGN.md §15). Compiled with -mavx512f and
// -ffp-contract=off; like the AVX2 TU, only separate mul and masked add/sub
// intrinsics are used — never FMA — so the per-lane arithmetic is exactly
// the scalar oracle's mul-then-accumulate sequence.
//
// Same lane-per-row layout as simd_avx2.cpp, with 8 fp64 lanes per block.
// AVX-512 masking simplifies both rules AVX2 needs two mechanisms for:
// masked loads/gathers architecturally never touch masked-off elements, and
// _mm512_mask_add/sub_pd leaves an inactive lane's accumulator bits intact,
// so one __mmask8 covers structural short blocks and the ragged active-lane
// tail alike. Only AVX-512F forms are used (512-bit masked loads plus a cast
// for the 8x i32 index vector), so the TU needs no VL/BW/DQ extensions.

#include "backend/backend_simd.hpp"

#if defined(ASYNCMG_ENABLE_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "backend/backend.hpp"
#include "backend/sell_simd.hpp"

namespace asyncmg {
namespace detail {
namespace {

// First-n-lanes mask (n in [0, 8]).
inline __mmask8 maskn(int n) {
  return static_cast<__mmask8>((1u << n) - 1u);
}

inline __m512d load_values(const double* p, __mmask8 m) {
  return _mm512_maskz_loadu_pd(m, p);
}
inline __m512d load_values(const float* p, __mmask8 m) {
  // 512-bit masked float load (mask <= 0xFF reads at most 8 floats), then
  // widen the low 8 to fp64 — the scalar engine's load-time widening.
  const __m256 f = _mm512_castps512_ps256(
      _mm512_maskz_loadu_ps(static_cast<__mmask16>(m), p));
  return _mm512_cvtps_pd(f);
}

template <class VT, class Op>
void apply_chunks_avx512(const SellView& v, const VT* va, const double* x,
                         const Op& op, std::size_t c0, std::size_t c1) {
  const Index c = v.chunk;
  for (std::size_t ch = c0; ch < c1; ++ch) {
    const std::size_t s0 = ch * static_cast<std::size_t>(c);
    Index lanes = c;
    while (lanes > 0 &&
           v.perm[s0 + static_cast<std::size_t>(lanes) - 1] < 0) {
      --lanes;
    }
    const VT* vals = va + v.chunk_ptr[ch];
    const Index* cols = v.col_idx + v.chunk_ptr[ch];
    const Index* ub =
        v.ucol_ofs[ch] >= 0 ? v.ucol_base + v.ucol_ofs[ch] : nullptr;

    // One column's products for the mask's lanes of block [L, L+8);
    // masked-off lanes never read memory and their product lanes are zeroed
    // (and then left untouched by the masked accumulates below).
    const auto column = [&](Index j, Index L, __mmask8 m) -> __m512d {
      const std::size_t ofs = static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(c) +
                              static_cast<std::size_t>(L);
      const __m512d vv = load_values(vals + ofs, m);
      __m512d xv;
      if (ub != nullptr) {
        const double* xs =
            x + static_cast<std::size_t>(ub[j]) + static_cast<std::size_t>(L);
        xv = _mm512_maskz_loadu_pd(m, xs);
      } else {
        const __m256i ci = _mm512_castsi512_si256(_mm512_maskz_loadu_epi32(
            static_cast<__mmask16>(m),
            reinterpret_cast<const void*>(cols + ofs)));
        xv = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), m, ci, x, 8);
      }
      return _mm512_mul_pd(vv, xv);
    };

    const auto seed_acc = [&](Index L, int nl) -> __m512d {
      alignas(64) double seed[8] = {0.0};
      for (int l = 0; l < nl; ++l) {
        seed[l] = op.init(v.perm[s0 + static_cast<std::size_t>(L + l)]);
      }
      return _mm512_load_pd(seed);
    };

    // Runs block [L, L+nl) from column j0 with accumulator acc (already
    // holding the seed plus columns [0, j0)), then stores. Per-lane order
    // is ascending j throughout, whichever path fed j0.
    const auto finish_block = [&](Index L, int nl, Index j0, __m512d acc) {
      const Index len_hi = v.slot_len[s0 + static_cast<std::size_t>(L)];
      const Index len_lo =
          v.slot_len[s0 + static_cast<std::size_t>(L + nl) - 1];
      const __mmask8 lm = maskn(nl);

      const auto accumulate = [&](__m512d p, __mmask8 m) {
        if constexpr (Op::kSubtract) {
          acc = _mm512_mask_sub_pd(acc, m, acc, p);
        } else {
          acc = _mm512_mask_add_pd(acc, m, acc, p);
        }
      };

      Index j = j0;
      for (; j < len_lo; ++j) accumulate(column(j, L, lm), lm);
      // Ragged tail: the active lanes form a shrinking prefix (slot lengths
      // descend within the chunk); the mask shrinks with them.
      int na = nl;
      for (; j < len_hi; ++j) {
        while (na > 0 &&
               v.slot_len[s0 + static_cast<std::size_t>(L + na) - 1] <= j) {
          --na;
        }
        const __mmask8 am = maskn(na);
        accumulate(column(j, L, am), am);
      }

      alignas(64) double out[8];
      _mm512_store_pd(out, acc);
      for (int l = 0; l < nl; ++l) {
        op.store(v.perm[s0 + static_cast<std::size_t>(L + l)], out[l]);
      }
    };

    // Paired blocks first: one accumulator chain per 8 rows is latency-
    // bound on the masked sub/add (the gathers overlap fine), so run two
    // blocks' chains in the shared columns where both are fully active.
    // Slot lengths descend, so that range is the second block's len_lo.
    Index L = 0;
    const __mmask8 full = maskn(8);
    for (; L + 16 <= lanes; L += 16) {
      const Index shared = v.slot_len[s0 + static_cast<std::size_t>(L) + 15];
      __m512d a0 = seed_acc(L, 8);
      __m512d a1 = seed_acc(L + 8, 8);
      for (Index j = 0; j < shared; ++j) {
        const __m512d p0 = column(j, L, full);
        const __m512d p1 = column(j, L + 8, full);
        if constexpr (Op::kSubtract) {
          a0 = _mm512_sub_pd(a0, p0);
          a1 = _mm512_sub_pd(a1, p1);
        } else {
          a0 = _mm512_add_pd(a0, p0);
          a1 = _mm512_add_pd(a1, p1);
        }
      }
      finish_block(L, 8, shared, a0);
      finish_block(L + 8, 8, shared, a1);
    }
    for (; L < lanes; L += 8) {
      const int nl = static_cast<int>(std::min<Index>(8, lanes - L));
      finish_block(L, nl, 0, seed_acc(L, nl));
    }
  }
}

struct Avx512Apply {
  template <class VT, class Op>
  void operator()(const SellView& v, const VT* va, const double* x,
                  const Op& op, std::size_t c0, std::size_t c1) const {
    apply_chunks_avx512(v, va, x, op, c0, c1);
  }
};

class Avx512Backend final : public KernelBackend {
 public:
  BackendKind kind() const override { return BackendKind::kAvx512; }

  void sell_spmv(const SellMatrix& a, const Vector& x, Vector& y,
                 bool parallel) const override {
    assert(static_cast<Index>(x.size()) == a.cols());
    y.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), x.data(), sellops::SpmvOp{y.data()}, parallel,
                  Avx512Apply{});
  }

  void sell_residual(const SellMatrix& a, const Vector& b, const Vector& x,
                     Vector& r, bool parallel) const override {
    assert(static_cast<Index>(b.size()) == a.rows() &&
           static_cast<Index>(x.size()) == a.cols());
    r.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), x.data(), sellops::ResidualOp{b.data(), r.data()},
                  parallel, Avx512Apply{});
  }

  void sell_diag_sweep(const SellMatrix& a, const Vector& d, const Vector& b,
                       const Vector& x_in, Vector& x_out,
                       bool parallel) const override {
    assert(a.rows() == a.cols() && static_cast<Index>(d.size()) == a.rows() &&
           static_cast<Index>(b.size()) == a.rows() &&
           static_cast<Index>(x_in.size()) == a.rows() && &x_in != &x_out);
    x_out.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(
        a.view(), x_in.data(),
        sellops::DiagSweepOp{b.data(), d.data(), x_in.data(), x_out.data()},
        parallel, Avx512Apply{});
  }

  void sell_sub_spmv(const SellMatrix& a, const Vector& r, const Vector& e,
                     Vector& tmp, bool parallel) const override {
    assert(static_cast<Index>(r.size()) == a.rows() &&
           static_cast<Index>(e.size()) == a.cols());
    tmp.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), e.data(),
                  sellops::SubSpmvOp{r.data(), tmp.data()}, parallel,
                  Avx512Apply{});
  }
};

}  // namespace

const KernelBackend* avx512_backend() {
  static const Avx512Backend be;
  return &be;
}

}  // namespace detail
}  // namespace asyncmg

#else  // !ASYNCMG_ENABLE_AVX512

namespace asyncmg {
namespace detail {

const KernelBackend* avx512_backend() { return nullptr; }

}  // namespace detail
}  // namespace asyncmg

#endif
