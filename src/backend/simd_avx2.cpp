// AVX2 SELL-C-σ kernels (DESIGN.md §15). Compiled with -mavx2 and
// -ffp-contract=off (CMake source properties): the contract ban plus the
// exclusive use of separate mul/sub|add intrinsics (never FMA) is what lets
// AVX2 hardware — where FMA is available and GCC's default contract=fast
// would otherwise fuse — reproduce the scalar oracle bit for bit.
//
// Vectorization runs ACROSS chunk lanes: SIMD lane l of a block holds matrix
// row perm[s0 + L + l], and column j of the chunk contributes exactly one
// product to each active lane, in ascending-j order — the same serial
// left-to-right per-row accumulation as the scalar engine, so every lane's
// result is bitwise the scalar result. Masking rules:
//   * structurally short blocks (chunk C not a multiple of 4, or trailing
//     pad slots) use masked value/column loads so nothing past the column
//     slab is read; their dead lanes are never stored, so no blending.
//   * the ragged tail (active-lane prefix shrinking with j) blends the
//     accumulator — never accumulates-through — because an inactive lane
//     must keep its exact bits (-0.0 included) until its store.
//   * gathers are masked so an inactive lane never dereferences x.

#include "backend/backend_simd.hpp"

#if defined(ASYNCMG_ENABLE_AVX2)

#include <immintrin.h>

#include <algorithm>
#include <cassert>
#include <cstddef>

#include "backend/backend.hpp"
#include "backend/sell_simd.hpp"

namespace asyncmg {
namespace detail {
namespace {

// First-n-lanes masks (n in [0, 4]).
inline __m256i mask_epi64(int n) {
  const __m256i iota = _mm256_set_epi64x(3, 2, 1, 0);
  return _mm256_cmpgt_epi64(_mm256_set1_epi64x(n), iota);
}
inline __m128i mask_epi32(int n) {
  const __m128i iota = _mm_set_epi32(3, 2, 1, 0);
  return _mm_cmpgt_epi32(_mm_set1_epi32(n), iota);
}

// Stored-value loads widen fp32 to fp64 on load, exactly like the scalar
// engine's `double p = v[lane] * x[...]` with VT = float.
inline __m256d load_values(const double* p, int n, __m256i m64, __m128i) {
  return n == 4 ? _mm256_loadu_pd(p) : _mm256_maskload_pd(p, m64);
}
inline __m256d load_values(const float* p, int n, __m256i, __m128i m32) {
  const __m128 f = n == 4 ? _mm_loadu_ps(p) : _mm_maskload_ps(p, m32);
  return _mm256_cvtps_pd(f);
}

template <class VT, class Op>
void apply_chunks_avx2(const SellView& v, const VT* va, const double* x,
                       const Op& op, std::size_t c0, std::size_t c1) {
  const Index c = v.chunk;
  for (std::size_t ch = c0; ch < c1; ++ch) {
    const std::size_t s0 = ch * static_cast<std::size_t>(c);
    // Pad slots (perm == -1) trail the final chunk; real slots before them
    // all get an accumulator, even empty rows (their seed is the result).
    Index lanes = c;
    while (lanes > 0 &&
           v.perm[s0 + static_cast<std::size_t>(lanes) - 1] < 0) {
      --lanes;
    }
    const VT* vals = va + v.chunk_ptr[ch];
    const Index* cols = v.col_idx + v.chunk_ptr[ch];
    const Index* ub =
        v.ucol_ofs[ch] >= 0 ? v.ucol_base + v.ucol_ofs[ch] : nullptr;

    // One column's products for lanes [L, L+n): value load, x fetch
    // (unit-stride on the contiguous fast path, masked gather otherwise),
    // separate multiply — never an FMA.
    const auto column = [&](Index j, Index L, int n, __m256i m64,
                            __m128i m32) -> __m256d {
      const std::size_t ofs = static_cast<std::size_t>(j) *
                                  static_cast<std::size_t>(c) +
                              static_cast<std::size_t>(L);
      const __m256d vv = load_values(vals + ofs, n, m64, m32);
      __m256d xv;
      if (ub != nullptr) {
        const double* xs =
            x + static_cast<std::size_t>(ub[j]) + static_cast<std::size_t>(L);
        xv = n == 4 ? _mm256_loadu_pd(xs) : _mm256_maskload_pd(xs, m64);
      } else {
        const Index* cp = cols + ofs;
        const __m128i ci =
            n == 4 ? _mm_loadu_si128(reinterpret_cast<const __m128i*>(cp))
                   : _mm_maskload_epi32(reinterpret_cast<const int*>(cp),
                                        m32);
        xv = n == 4
                 ? _mm256_i32gather_pd(x, ci, 8)
                 : _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, ci,
                                            _mm256_castsi256_pd(m64), 8);
      }
      return _mm256_mul_pd(vv, xv);
    };

    const auto seed_acc = [&](Index L, int nl) -> __m256d {
      alignas(32) double seed[4] = {0.0, 0.0, 0.0, 0.0};
      for (int l = 0; l < nl; ++l) {
        seed[l] = op.init(v.perm[s0 + static_cast<std::size_t>(L + l)]);
      }
      return _mm256_load_pd(seed);
    };

    // Runs block [L, L+nl) from column j0 with accumulator acc (already
    // holding the seed plus columns [0, j0)), then stores. Per-lane order
    // is ascending j throughout, whichever path fed j0.
    const auto finish_block = [&](Index L, int nl, Index j0, __m256d acc) {
      const Index len_hi = v.slot_len[s0 + static_cast<std::size_t>(L)];
      const Index len_lo =
          v.slot_len[s0 + static_cast<std::size_t>(L + nl) - 1];
      const __m256i lm64 = mask_epi64(nl);
      const __m128i lm32 = mask_epi32(nl);
      Index j = j0;
      // Columns where all nl stored lanes are active: accumulate without
      // blending (lanes >= nl are never stored).
      for (; j < len_lo; ++j) {
        const __m256d p = column(j, L, nl, lm64, lm32);
        if constexpr (Op::kSubtract) {
          acc = _mm256_sub_pd(acc, p);
        } else {
          acc = _mm256_add_pd(acc, p);
        }
      }
      // Ragged tail: slot lengths descend within the chunk, so the active
      // lanes form a shrinking prefix; blend keeps exhausted lanes' bits.
      int na = nl;
      for (; j < len_hi; ++j) {
        while (na > 0 &&
               v.slot_len[s0 + static_cast<std::size_t>(L + na) - 1] <= j) {
          --na;
        }
        const __m256i am64 = mask_epi64(na);
        const __m128i am32 = mask_epi32(na);
        const __m256d p = column(j, L, na, am64, am32);
        __m256d upd;
        if constexpr (Op::kSubtract) {
          upd = _mm256_sub_pd(acc, p);
        } else {
          upd = _mm256_add_pd(acc, p);
        }
        acc = _mm256_blendv_pd(acc, upd, _mm256_castsi256_pd(am64));
      }

      alignas(32) double out[4];
      _mm256_store_pd(out, acc);
      for (int l = 0; l < nl; ++l) {
        op.store(v.perm[s0 + static_cast<std::size_t>(L + l)], out[l]);
      }
    };

    // Paired blocks first: one accumulator chain per 4 rows is latency-
    // bound on the sub/add (the gathers overlap fine), so run two blocks'
    // chains in the shared columns where both are fully active. Slot
    // lengths descend, so that shared range is the second block's len_lo.
    Index L = 0;
    const __m256i f64 = mask_epi64(4);
    const __m128i f32 = mask_epi32(4);
    for (; L + 8 <= lanes; L += 8) {
      const Index shared = v.slot_len[s0 + static_cast<std::size_t>(L) + 7];
      __m256d a0 = seed_acc(L, 4);
      __m256d a1 = seed_acc(L + 4, 4);
      for (Index j = 0; j < shared; ++j) {
        const __m256d p0 = column(j, L, 4, f64, f32);
        const __m256d p1 = column(j, L + 4, 4, f64, f32);
        if constexpr (Op::kSubtract) {
          a0 = _mm256_sub_pd(a0, p0);
          a1 = _mm256_sub_pd(a1, p1);
        } else {
          a0 = _mm256_add_pd(a0, p0);
          a1 = _mm256_add_pd(a1, p1);
        }
      }
      finish_block(L, 4, shared, a0);
      finish_block(L + 4, 4, shared, a1);
    }
    for (; L < lanes; L += 4) {
      const int nl = static_cast<int>(std::min<Index>(4, lanes - L));
      finish_block(L, nl, 0, seed_acc(L, nl));
    }
  }
}

struct Avx2Apply {
  template <class VT, class Op>
  void operator()(const SellView& v, const VT* va, const double* x,
                  const Op& op, std::size_t c0, std::size_t c1) const {
    apply_chunks_avx2(v, va, x, op, c0, c1);
  }
};

class Avx2Backend final : public KernelBackend {
 public:
  BackendKind kind() const override { return BackendKind::kAvx2; }

  void sell_spmv(const SellMatrix& a, const Vector& x, Vector& y,
                 bool parallel) const override {
    assert(static_cast<Index>(x.size()) == a.cols());
    y.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), x.data(), sellops::SpmvOp{y.data()}, parallel,
                  Avx2Apply{});
  }

  void sell_residual(const SellMatrix& a, const Vector& b, const Vector& x,
                     Vector& r, bool parallel) const override {
    assert(static_cast<Index>(b.size()) == a.rows() &&
           static_cast<Index>(x.size()) == a.cols());
    r.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), x.data(), sellops::ResidualOp{b.data(), r.data()},
                  parallel, Avx2Apply{});
  }

  void sell_diag_sweep(const SellMatrix& a, const Vector& d, const Vector& b,
                       const Vector& x_in, Vector& x_out,
                       bool parallel) const override {
    assert(a.rows() == a.cols() && static_cast<Index>(d.size()) == a.rows() &&
           static_cast<Index>(b.size()) == a.rows() &&
           static_cast<Index>(x_in.size()) == a.rows() && &x_in != &x_out);
    x_out.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(
        a.view(), x_in.data(),
        sellops::DiagSweepOp{b.data(), d.data(), x_in.data(), x_out.data()},
        parallel, Avx2Apply{});
  }

  void sell_sub_spmv(const SellMatrix& a, const Vector& r, const Vector& e,
                     Vector& tmp, bool parallel) const override {
    assert(static_cast<Index>(r.size()) == a.rows() &&
           static_cast<Index>(e.size()) == a.cols());
    tmp.resize(static_cast<std::size_t>(a.rows()));
    run_sell_simd(a.view(), e.data(), sellops::SubSpmvOp{r.data(), tmp.data()},
                  parallel, Avx2Apply{});
  }
};

}  // namespace

const KernelBackend* avx2_backend() {
  static const Avx2Backend be;
  return &be;
}

}  // namespace detail
}  // namespace asyncmg

#else  // !ASYNCMG_ENABLE_AVX2

namespace asyncmg {
namespace detail {

const KernelBackend* avx2_backend() { return nullptr; }

}  // namespace detail
}  // namespace asyncmg

#endif
