#include "backend/backend.hpp"

#include <omp.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "backend/backend_simd.hpp"
#include "sparse/parallel.hpp"
#include "sparse/vec.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

// ---------------------------------------------------------------------------
// Base-class (scalar oracle) kernel set: delegates verbatim to the existing
// OpenMP CSR/SELL engine, so backend #1 IS the pre-backend code path.
// ---------------------------------------------------------------------------

void KernelBackend::sell_spmv(const SellMatrix& a, const Vector& x, Vector& y,
                              bool parallel) const {
  if (parallel) {
    a.spmv_omp(x, y);
  } else {
    a.spmv(x, y);
  }
}

void KernelBackend::sell_residual(const SellMatrix& a, const Vector& b,
                                  const Vector& x, Vector& r,
                                  bool parallel) const {
  if (parallel) {
    a.residual_omp(b, x, r);
  } else {
    a.residual(b, x, r);
  }
}

void KernelBackend::sell_diag_sweep(const SellMatrix& a, const Vector& d,
                                    const Vector& b, const Vector& x_in,
                                    Vector& x_out, bool parallel) const {
  if (parallel) {
    a.fused_diag_sweep_omp(d, b, x_in, x_out);
  } else {
    a.fused_diag_sweep(d, b, x_in, x_out);
  }
}

void KernelBackend::sell_sub_spmv(const SellMatrix& a, const Vector& r,
                                  const Vector& e, Vector& tmp,
                                  bool parallel) const {
  if (parallel) {
    a.fused_sub_spmv_omp(r, e, tmp);
  } else {
    a.fused_sub_spmv(r, e, tmp);
  }
}

void KernelBackend::csr_spmv(const CsrMatrix& a, const Vector& x, Vector& y,
                             bool parallel) const {
  if (parallel) {
    a.spmv_omp(x, y);
  } else {
    a.spmv(x, y);
  }
}

void KernelBackend::csr_spmv_rows(const CsrMatrix& a, const Vector& x,
                                  Vector& y, Index begin, Index end) const {
  a.spmv_rows(x, y, begin, end);
}

void KernelBackend::csr_spmv_add(const CsrMatrix& a, const Vector& x,
                                 Vector& y, double alpha,
                                 bool parallel) const {
  if (parallel) {
    a.spmv_add_omp(x, y, alpha);
  } else {
    a.spmv_add(x, y, alpha);
  }
}

void KernelBackend::csr_spmv_transpose(const CsrMatrix& a, const Vector& x,
                                       Vector& y) const {
  a.spmv_transpose(x, y);
}

void KernelBackend::csr_residual(const CsrMatrix& a, const Vector& b,
                                 const Vector& x, Vector& r,
                                 bool parallel) const {
  if (parallel) {
    a.residual_omp(b, x, r);
  } else {
    a.residual(b, x, r);
  }
}

void KernelBackend::csr_residual_rows(const CsrMatrix& a, const Vector& b,
                                      const Vector& x, Vector& r, Index begin,
                                      Index end) const {
  a.residual_rows(b, x, r, begin, end);
}

void KernelBackend::csr_diag_sweep(const CsrMatrix& a, const Vector& d,
                                   const Vector& b, const Vector& x_in,
                                   Vector& x_out, bool parallel) const {
  if (parallel) {
    fused_diag_sweep_omp(a, d, b, x_in, x_out);
  } else {
    fused_diag_sweep(a, d, b, x_in, x_out);
  }
}

void KernelBackend::csr_sub_spmv(const CsrMatrix& a, const Vector& r,
                                 const Vector& e, Vector& tmp,
                                 bool parallel) const {
  if (parallel) {
    fused_sub_spmv_omp(a, r, e, tmp);
  } else {
    fused_sub_spmv(a, r, e, tmp);
  }
}

double KernelBackend::csr_residual_norm_sq(const CsrMatrix& a, const Vector& b,
                                           const Vector& x, Vector& r,
                                           bool parallel) const {
  return parallel ? fused_residual_norm_sq_omp(a, b, x, r)
                  : fused_residual_norm_sq(a, b, x, r);
}

void KernelBackend::restrict_apply(const CsrMatrix& rt, const Vector& x,
                                   Vector& y, bool parallel) const {
  csr_spmv(rt, x, y, parallel);
}

void KernelBackend::prolong_add(const CsrMatrix& p, const Vector& e_c,
                                Vector& e, bool parallel) const {
  csr_spmv_add(p, e_c, e, 1.0, parallel);
}

double KernelBackend::dot(const Vector& x, const Vector& y) const {
  return asyncmg::dot(x, y);
}

void KernelBackend::axpy(double alpha, const Vector& x, Vector& y) const {
  asyncmg::axpy(alpha, x, y);
}

void KernelBackend::prepare_workspace(Vector& v, std::size_t n,
                                      bool first_touch) const {
  v.resize(n);
  if (!first_touch || this_thread_is_pool_worker() ||
      static_cast<Index>(n) < kSetupSerialCutoff) {
    return;
  }
  double* const p = v.data();
  const auto in = static_cast<Index>(n);
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < in; ++i) p[static_cast<std::size_t>(i)] = 0.0;
}

namespace detail {

// The probes live here (not in the SIMD TUs) so they exist even when those
// TUs are stubs; __builtin_cpu_supports checks CPUID plus the OS XCR0 state.
bool cpu_supports_avx2() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_supports_avx512f() {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

}  // namespace detail

namespace {

class ScalarBackend final : public KernelBackend {
 public:
  BackendKind kind() const override { return BackendKind::kScalar; }
};

const KernelBackend* simd_backend(BackendKind k) {
  switch (k) {
    case BackendKind::kAvx2:
      return detail::avx2_backend();
    case BackendKind::kAvx512:
      return detail::avx512_backend();
    default:
      return nullptr;
  }
}

/// One stderr line per distinct mishap slot; services resolve a backend per
/// setup, so the fallback warning must not spam.
bool warn_once(int slot) {
  static std::atomic<unsigned> warned{0};
  const unsigned bit = 1u << slot;
  return (warned.fetch_or(bit, std::memory_order_relaxed) & bit) == 0;
}

bool parse_backend_kind(const char* s, BackendKind& out) {
  for (const BackendKind k :
       {BackendKind::kAuto, BackendKind::kScalar, BackendKind::kAvx2,
        BackendKind::kAvx512}) {
    if (std::strcmp(s, backend_kind_name(k)) == 0) {
      out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

bool backend_compiled(BackendKind k) {
  switch (k) {
    case BackendKind::kScalar:
      return true;
    case BackendKind::kAvx2:
    case BackendKind::kAvx512:
      return simd_backend(k) != nullptr;
    case BackendKind::kAuto:
      return false;
  }
  return false;
}

bool backend_supported(BackendKind k) {
  if (!backend_compiled(k)) return false;
  switch (k) {
    case BackendKind::kAvx2:
      return detail::cpu_supports_avx2();
    case BackendKind::kAvx512:
      return detail::cpu_supports_avx512f();
    default:
      return true;
  }
}

BackendKind detect_backend() {
  if (backend_supported(BackendKind::kAvx512)) return BackendKind::kAvx512;
  if (backend_supported(BackendKind::kAvx2)) return BackendKind::kAvx2;
  return BackendKind::kScalar;
}

BackendKind resolve_backend_kind(BackendKind requested) {
  BackendKind want = requested;
  if (want == BackendKind::kAuto) {
    if (const char* env = std::getenv("ASYNCMG_BACKEND");
        env != nullptr && *env != '\0') {
      if (!parse_backend_kind(env, want)) {
        if (warn_once(0)) {
          std::fprintf(stderr,
                       "asyncmg: ignoring invalid ASYNCMG_BACKEND='%s'"
                       " (want scalar|avx2|avx512|auto)\n",
                       env);
        }
        want = BackendKind::kAuto;
      }
    }
  }
  if (want == BackendKind::kAuto) return detect_backend();
  if (backend_supported(want)) return want;
  const BackendKind fell = detect_backend();
  if (warn_once(want == BackendKind::kAvx512 ? 1 : 2)) {
    std::fprintf(stderr,
                 "asyncmg: kernel backend '%s' %s on this host;"
                 " falling back to '%s'\n",
                 backend_kind_name(want),
                 backend_compiled(want) ? "is not supported by the CPU"
                                        : "was not compiled into this binary",
                 backend_kind_name(fell));
  }
  return fell;
}

const KernelBackend& scalar_backend() {
  static const ScalarBackend be;
  return be;
}

const KernelBackend& backend_for(BackendKind k) {
  if (k == BackendKind::kAvx2 || k == BackendKind::kAvx512) {
    if (backend_supported(k)) return *simd_backend(k);
  }
  return scalar_backend();
}

const KernelBackend& resolve_backend(const KernelEngineOptions& opts) {
  return backend_for(resolve_backend_kind(opts.backend));
}

std::string supported_backends_string() {
  std::string s = "scalar";
  for (const BackendKind k : {BackendKind::kAvx2, BackendKind::kAvx512}) {
    if (backend_supported(k)) {
      s += ' ';
      s += backend_kind_name(k);
    }
  }
  return s;
}

}  // namespace asyncmg
