#pragma once
// Sparse matrix-matrix kernels: SpGEMM (Gustavson's row-wise algorithm),
// sparse addition, and the Galerkin triple product P^T A P used to build
// coarse-grid operators (Section II-A) and the smoothed interpolants
// Pbar = G P of Multadd (Section II-B1).

#include "sparse/csr.hpp"

namespace asyncmg {

/// C = A * B.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b);

/// C = alpha * A + beta * B (same shape).
CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, double alpha = 1.0,
              double beta = 1.0);

/// Galerkin coarse operator A_c = P^T A P.
CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p);

/// Drop entries with |value| <= tol (keeps the diagonal of square matrices).
CsrMatrix drop_small(const CsrMatrix& a, double tol);

}  // namespace asyncmg
