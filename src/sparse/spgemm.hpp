#pragma once
// Sparse matrix-matrix kernels: SpGEMM (Gustavson's row-wise algorithm,
// two-pass and row-parallel), sparse addition, and the Galerkin triple
// product P^T A P used to build coarse-grid operators (Section II-A) and the
// smoothed interpolants Pbar = G P of Multadd (Section II-B1).
//
// All kernels take an optional setup-team size (`num_threads`, 0 = OpenMP
// default) and produce bit-identical results for every thread count: rows
// of the output are computed independently with a fixed per-row
// accumulation order, so parallelism never changes the arithmetic.

#include "sparse/csr.hpp"

namespace asyncmg {

/// C = A * B. Two-pass Gustavson SpGEMM: a symbolic pass counts each output
/// row's nnz (accumulated in std::size_t, overflow-checked against Index),
/// then a numeric pass fills preallocated arrays; both passes are
/// parallelized over row blocks with per-thread accumulators.
CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b,
                   int num_threads = 0);

/// C = alpha * A + beta * B (same shape). Two-pass and row-parallel.
CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, double alpha = 1.0,
              double beta = 1.0, int num_threads = 0);

/// Galerkin coarse operator A_c = P^T A P, built all-at-once: one parallel
/// sweep over coarse rows forms row I as (P^T A)(I, :) merged through P,
/// using only a coarse-to-fine adjacency of P -- no A*P or explicit P^T
/// matrix is materialized (Kong 2019's memory-efficient triple product).
CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p,
                           int num_threads = 0);

/// Drop entries with |value| <= tol (keeps the diagonal of square matrices).
CsrMatrix drop_small(const CsrMatrix& a, double tol);

}  // namespace asyncmg
