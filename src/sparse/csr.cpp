#include "sparse/csr.hpp"

#include <omp.h>

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <type_traits>

#include "sparse/parallel.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

namespace {

/// Solve-phase OpenMP kernels only fan out on client threads over matrices
/// large enough to amortize a team start; SolverPool workers are one
/// execution lane each (see util/thread_context.hpp). A one-thread team is
/// pure overhead, so single-thread runs take the serial body directly
/// (bit-identical either way: rows write disjoint outputs).
bool use_solve_omp(Index rows) {
  return rows >= kSetupSerialCutoff && omp_get_max_threads() > 1 &&
         !this_thread_is_pool_worker();
}

/// Static partition matching `omp parallel for schedule(static)`.
struct RowRange {
  Index lo, hi;
};
RowRange static_rows(Index n, int nt, int t) {
  const Index chunk = (n + nt - 1) / nt;
  const Index lo = std::min<Index>(n, chunk * t);
  return {lo, std::min<Index>(n, lo + chunk)};
}

// Raw-pointer row-range bodies shared by the serial and OpenMP entry points.
// Calling one plain function from inside the parallel region (instead of
// letting the compiler outline the loop body) keeps the aliasing information
// the vectorizer needs; the outlined form measures ~30% slower at one
// thread. Rows write disjoint outputs, so the partition cannot affect the
// result.
//
// Bodies are templated over the stored value type (double or float, per the
// matrix's Precision): values widen to double on load and every accumulator
// stays double, so the fp64 instantiation is bit-for-bit the pre-template
// code and the fp32 instantiation only narrows the streamed operator bytes.

template <class AV>
void spmv_body(const Index* rp, const Index* ci, const AV* av,
               const double* xp, double* yp, Index lo, Index hi) {
  for (Index i = lo; i < hi; ++i) {
    double s = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      s += av[k] * xp[ci[k]];
    }
    yp[i] = s;
  }
}

template <class AV>
void spmv_add_body(const Index* rp, const Index* ci, const AV* av,
                   const double* xp, double* yp, double alpha, Index lo,
                   Index hi) {
  for (Index i = lo; i < hi; ++i) {
    double s = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      s += av[k] * xp[ci[k]];
    }
    yp[i] += alpha * s;
  }
}

template <class AV>
void residual_body(const Index* rp, const Index* ci, const AV* av,
                   const double* bp, const double* xp, double* rr, Index lo,
                   Index hi) {
  for (Index i = lo; i < hi; ++i) {
    double s = bp[i];
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      s -= av[k] * xp[ci[k]];
    }
    rr[i] = s;
  }
}

}  // namespace

void CsrMatrix::convert_precision(Precision p) {
  if (p == prec_) return;
  if (p == Precision::kF32) {
    values_f32_.assign(values_.begin(), values_.end());
    values_.clear();
    values_.shrink_to_fit();
  } else {
    values_.assign(values_f32_.begin(), values_f32_.end());
    values_f32_.clear();
    values_f32_.shrink_to_fit();
  }
  prec_ = p;
}

CsrMatrix::CsrMatrix(Index rows, Index cols)
    : rows_(rows), cols_(cols), row_ptr_(static_cast<std::size_t>(rows) + 1, 0) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative dimension");
}

CsrMatrix CsrMatrix::from_triplets(Index rows, Index cols,
                                   std::vector<Triplet> triplets) {
  CsrMatrix a(rows, cols);
  for (const auto& t : triplets) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      throw std::out_of_range("triplet index out of range");
    }
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& x, const Triplet& y) {
              return x.row != y.row ? x.row < y.row : x.col < y.col;
            });
  // Merge duplicates while counting row sizes.
  a.col_idx_.reserve(triplets.size());
  a.values_.reserve(triplets.size());
  std::size_t i = 0;
  while (i < triplets.size()) {
    const Index r = triplets[i].row;
    const Index c = triplets[i].col;
    double v = triplets[i].value;
    std::size_t j = i + 1;
    while (j < triplets.size() && triplets[j].row == r && triplets[j].col == c) {
      v += triplets[j].value;
      ++j;
    }
    a.col_idx_.push_back(c);
    a.values_.push_back(v);
    ++a.row_ptr_[static_cast<std::size_t>(r) + 1];
    i = j;
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    a.row_ptr_[r + 1] += a.row_ptr_[r];
  }
  return a;
}

CsrMatrix CsrMatrix::from_csr(Index rows, Index cols,
                              std::vector<Index> row_ptr,
                              std::vector<Index> cols_idx,
                              std::vector<double> values) {
  if (row_ptr.size() != static_cast<std::size_t>(rows) + 1) {
    throw std::invalid_argument("row_ptr size mismatch");
  }
  if (cols_idx.size() != values.size() ||
      row_ptr.back() != static_cast<Index>(values.size()) || row_ptr[0] != 0) {
    throw std::invalid_argument("CSR arrays inconsistent");
  }
  for (std::size_t r = 0; r < static_cast<std::size_t>(rows); ++r) {
    if (row_ptr[r] > row_ptr[r + 1]) {
      throw std::invalid_argument("row_ptr not monotone");
    }
  }
  for (Index c : cols_idx) {
    if (c < 0 || c >= cols) throw std::out_of_range("column index out of range");
  }
  CsrMatrix a;
  a.rows_ = rows;
  a.cols_ = cols;
  a.row_ptr_ = std::move(row_ptr);
  a.col_idx_ = std::move(cols_idx);
  a.values_ = std::move(values);
  return a;
}

CsrMatrix CsrMatrix::identity(Index n) {
  CsrMatrix a(n, n);
  a.col_idx_.resize(static_cast<std::size_t>(n));
  a.values_.assign(static_cast<std::size_t>(n), 1.0);
  for (Index i = 0; i < n; ++i) {
    a.row_ptr_[static_cast<std::size_t>(i) + 1] = i + 1;
    a.col_idx_[static_cast<std::size_t>(i)] = i;
  }
  return a;
}

CsrMatrix CsrMatrix::diagonal(const Vector& d) {
  const Index n = static_cast<Index>(d.size());
  CsrMatrix a = identity(n);
  std::copy(d.begin(), d.end(), a.values_.begin());
  return a;
}

double CsrMatrix::at(Index i, Index j) const {
  assert(i >= 0 && i < rows_ && j >= 0 && j < cols_);
  const Index b = row_ptr_[static_cast<std::size_t>(i)];
  const Index e = row_ptr_[static_cast<std::size_t>(i) + 1];
  const auto first = col_idx_.begin() + b;
  const auto last = col_idx_.begin() + e;
  const auto it = std::lower_bound(first, last, j);
  if (it != last && *it == j) {
    return with_values([&](const auto* v) -> double {
      return v[static_cast<std::size_t>(it - col_idx_.begin())];
    });
  }
  return 0.0;
}

Vector CsrMatrix::diag() const {
  Vector d(static_cast<std::size_t>(rows_), 0.0);
  with_values([&](const auto* v) {
    for (Index i = 0; i < rows_; ++i) {
      for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        if (col_idx_[static_cast<std::size_t>(k)] == i) {
          d[static_cast<std::size_t>(i)] = v[static_cast<std::size_t>(k)];
          break;
        }
      }
    }
  });
  return d;
}

Vector CsrMatrix::l1_row_norms() const {
  Vector d(static_cast<std::size_t>(rows_), 0.0);
  with_values([&](const auto* v) {
    for (Index i = 0; i < rows_; ++i) {
      double s = 0.0;
      for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        s += std::abs(static_cast<double>(v[static_cast<std::size_t>(k)]));
      }
      d[static_cast<std::size_t>(i)] = s;
    }
  });
  return d;
}

void CsrMatrix::spmv(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.resize(static_cast<std::size_t>(rows_));
  spmv_rows(x, y, 0, rows_);
}

void CsrMatrix::spmv_rows(const Vector& x, Vector& y, Index row_begin,
                          Index row_end) const {
  assert(row_begin >= 0 && row_end <= rows_);
  with_values([&](const auto* av) {
    spmv_body(row_ptr_.data(), col_idx_.data(), av, x.data(), y.data(),
              row_begin, row_end);
  });
}

void CsrMatrix::spmv_omp(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.resize(static_cast<std::size_t>(rows_));
  const Index* const rp = row_ptr_.data();
  const Index* const ci = col_idx_.data();
  const double* const xp = x.data();
  double* const yp = y.data();
  with_values([&](const auto* av) {
    if (!use_solve_omp(rows_)) {
      spmv_body(rp, ci, av, xp, yp, 0, rows_);
      return;
    }
#pragma omp parallel
    {
      const RowRange rg =
          static_rows(rows_, omp_get_num_threads(), omp_get_thread_num());
      spmv_body(rp, ci, av, xp, yp, rg.lo, rg.hi);
    }
  });
}

void CsrMatrix::spmv_add(const Vector& x, Vector& y, double alpha) const {
  assert(static_cast<Index>(x.size()) == cols_ &&
         static_cast<Index>(y.size()) == rows_);
  with_values([&](const auto* av) {
    spmv_add_body(row_ptr_.data(), col_idx_.data(), av, x.data(), y.data(),
                  alpha, 0, rows_);
  });
}

void CsrMatrix::spmv_add_omp(const Vector& x, Vector& y, double alpha) const {
  assert(static_cast<Index>(x.size()) == cols_ &&
         static_cast<Index>(y.size()) == rows_);
  const Index* const rp = row_ptr_.data();
  const Index* const ci = col_idx_.data();
  const double* const xp = x.data();
  double* const yp = y.data();
  with_values([&](const auto* av) {
    if (!use_solve_omp(rows_)) {
      spmv_add_body(rp, ci, av, xp, yp, alpha, 0, rows_);
      return;
    }
#pragma omp parallel
    {
      const RowRange rg =
          static_rows(rows_, omp_get_num_threads(), omp_get_thread_num());
      spmv_add_body(rp, ci, av, xp, yp, alpha, rg.lo, rg.hi);
    }
  });
}

void CsrMatrix::residual(const Vector& b, const Vector& x, Vector& r) const {
  r.resize(static_cast<std::size_t>(rows_));
  residual_rows(b, x, r, 0, rows_);
}

void CsrMatrix::residual_omp(const Vector& b, const Vector& x,
                             Vector& r) const {
  assert(static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x.size()) == cols_);
  r.resize(static_cast<std::size_t>(rows_));
  const Index* const rp = row_ptr_.data();
  const Index* const ci = col_idx_.data();
  const double* const bp = b.data();
  const double* const xp = x.data();
  double* const rr = r.data();
  with_values([&](const auto* av) {
    if (!use_solve_omp(rows_)) {
      residual_body(rp, ci, av, bp, xp, rr, 0, rows_);
      return;
    }
#pragma omp parallel
    {
      const RowRange rg =
          static_rows(rows_, omp_get_num_threads(), omp_get_thread_num());
      residual_body(rp, ci, av, bp, xp, rr, rg.lo, rg.hi);
    }
  });
}

void CsrMatrix::residual_rows(const Vector& b, const Vector& x, Vector& r,
                              Index row_begin, Index row_end) const {
  assert(static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x.size()) == cols_);
  with_values([&](const auto* av) {
    residual_body(row_ptr_.data(), col_idx_.data(), av, b.data(), x.data(),
                  r.data(), row_begin, row_end);
  });
}

CsrMatrix CsrMatrix::transpose(int num_threads) const {
  CsrMatrix t(cols_, rows_);
  const auto nz = static_cast<std::size_t>(nnz());
  t.prec_ = prec_;
  t.col_idx_.resize(nz);
  if (prec_ == Precision::kF32) {
    t.values_f32_.resize(nz);
  } else {
    t.values_.resize(nz);
  }
  // Width-generic scatter target: same element type as the source array.
  const auto dst = [&t](const auto* src) {
    if constexpr (std::is_same_v<std::decay_t<decltype(*src)>, float>) {
      return t.values_f32_.data();
    } else {
      return t.values_.data();
    }
  };
  const int nt =
      rows_ >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;
  if (nt == 1) {
    // Count entries per column.
    for (Index c : col_idx_) ++t.row_ptr_[static_cast<std::size_t>(c) + 1];
    for (std::size_t r = 0; r < static_cast<std::size_t>(cols_); ++r) {
      t.row_ptr_[r + 1] += t.row_ptr_[r];
    }
    std::vector<Index> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
    with_values([&](const auto* sv) {
      auto* tv = dst(sv);
      for (Index i = 0; i < rows_; ++i) {
        for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          const Index c = col_idx_[static_cast<std::size_t>(k)];
          const Index pos = next[static_cast<std::size_t>(c)]++;
          t.col_idx_[static_cast<std::size_t>(pos)] = i;
          tv[static_cast<std::size_t>(pos)] = sv[static_cast<std::size_t>(k)];
        }
      }
    });
    return t;  // rows visited in increasing i => columns sorted per row
  }

  // Parallel path: split source rows into contiguous blocks, bucket-count
  // each block's entries per output row, turn the counts into per-block
  // starting offsets with one prefix sweep, then let each block scatter into
  // its reserved slots. Blocks are stitched in source-row order, so the
  // result is entry-for-entry the serial transpose.
  const std::vector<Range> blocks = static_chunks(
      static_cast<std::size_t>(rows_), static_cast<std::size_t>(nt));
  const int nb = static_cast<int>(blocks.size());
  const auto ncols = static_cast<std::size_t>(cols_);
  std::vector<Index> offsets(static_cast<std::size_t>(nb) * ncols, 0);
#pragma omp parallel for schedule(static, 1) num_threads(nt)
  for (int b = 0; b < nb; ++b) {
    Index* cnt = offsets.data() + static_cast<std::size_t>(b) * ncols;
    const Range rg = blocks[static_cast<std::size_t>(b)];
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        ++cnt[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
      }
    }
  }
  // counts -> starting offsets (and the output row_ptr), column-major over
  // (column, block) so each block's slot range lands after every earlier
  // block's entries for that column.
  Index pos = 0;
  for (std::size_t c = 0; c < ncols; ++c) {
    for (int b = 0; b < nb; ++b) {
      Index& slot = offsets[static_cast<std::size_t>(b) * ncols + c];
      const Index n_entries = slot;
      slot = pos;
      pos += n_entries;
    }
    t.row_ptr_[c + 1] = pos;
  }
  with_values([&](const auto* sv) {
    auto* tv = dst(sv);
#pragma omp parallel for schedule(static, 1) num_threads(nt)
    for (int b = 0; b < nb; ++b) {
      Index* next = offsets.data() + static_cast<std::size_t>(b) * ncols;
      const Range rg = blocks[static_cast<std::size_t>(b)];
      for (std::size_t i = rg.begin; i < rg.end; ++i) {
        for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
          const Index c = col_idx_[static_cast<std::size_t>(k)];
          const Index p = next[static_cast<std::size_t>(c)]++;
          t.col_idx_[static_cast<std::size_t>(p)] = static_cast<Index>(i);
          tv[static_cast<std::size_t>(p)] = sv[static_cast<std::size_t>(k)];
        }
      }
    }
  });
  return t;
}

void CsrMatrix::spmv_transpose(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == rows_);
  y.assign(static_cast<std::size_t>(cols_), 0.0);
  with_values([&](const auto* av) {
    for (Index i = 0; i < rows_; ++i) {
      const double xi = x[static_cast<std::size_t>(i)];
      if (xi == 0.0) continue;
      for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
        y[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])] +=
            av[static_cast<std::size_t>(k)] * xi;
      }
    }
  });
}

void CsrMatrix::scale_rows(const Vector& s) {
  // Setup-phase only: scaling mutates fp64 assembly values (demotion to a
  // narrower stored width happens after all setup algebra).
  assert(prec_ == Precision::kF64);
  assert(static_cast<Index>(s.size()) == rows_);
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      values_[static_cast<std::size_t>(k)] *= s[static_cast<std::size_t>(i)];
    }
  }
}

double CsrMatrix::frobenius_norm() const {
  return with_values([&](const auto* av) {
    double s = 0.0;
    const auto nz = static_cast<std::size_t>(nnz());
    for (std::size_t k = 0; k < nz; ++k) {
      const double v = av[k];
      s += v * v;
    }
    return std::sqrt(s);
  });
}

bool CsrMatrix::approx_equal(const CsrMatrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return with_values([&](const auto* av) {
    return other.with_values([&](const auto* bv) {
      for (Index i = 0; i < rows_; ++i) {
        // Merge the two sorted rows, comparing values entrywise.
        Index ka = row_ptr_[i], kb = other.row_ptr_[i];
        const Index ea = row_ptr_[i + 1], eb = other.row_ptr_[i + 1];
        while (ka < ea || kb < eb) {
          const Index ca = ka < ea ? col_idx_[static_cast<std::size_t>(ka)]
                                   : std::numeric_limits<Index>::max();
          const Index cb = kb < eb
                               ? other.col_idx_[static_cast<std::size_t>(kb)]
                               : std::numeric_limits<Index>::max();
          double va = 0.0, vb = 0.0;
          if (ca <= cb) va = av[static_cast<std::size_t>(ka++)];
          if (cb <= ca) vb = bv[static_cast<std::size_t>(kb++)];
          if (std::abs(va - vb) > tol) return false;
        }
      }
      return true;
    });
  });
}

bool CsrMatrix::rows_sorted() const {
  for (Index i = 0; i < rows_; ++i) {
    for (Index k = row_ptr_[i] + 1; k < row_ptr_[i + 1]; ++k) {
      if (col_idx_[static_cast<std::size_t>(k - 1)] >=
          col_idx_[static_cast<std::size_t>(k)]) {
        return false;
      }
    }
  }
  return true;
}

bool CsrMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  return approx_equal(transpose(), tol);
}

std::string CsrMatrix::summary() const {
  std::ostringstream os;
  os << rows_ << " x " << cols_ << ", nnz=" << nnz();
  if (prec_ != Precision::kF64) os << ", " << precision_name(prec_);
  return os.str();
}

}  // namespace asyncmg
