#include "sparse/spgemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sparse/parallel.hpp"

namespace asyncmg {

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b, int num_threads) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: inner dimension mismatch");
  }
  const Index m = a.rows();
  const Index n = b.cols();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto brp = b.row_ptr();
  const auto bci = b.col_idx();
  const int nt =
      m >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  // Symbolic pass: per-row output nnz via a per-thread "seen" marker.
  std::vector<std::size_t> counts(static_cast<std::size_t>(m), 0);
#pragma omp parallel num_threads(nt)
  {
    std::vector<Index> marker(static_cast<std::size_t>(n), -1);
#pragma omp for schedule(static)
    for (Index i = 0; i < m; ++i) {
      std::size_t c = 0;
      for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
        const Index k = aci[static_cast<std::size_t>(ka)];
        for (Index kb = brp[k]; kb < brp[k + 1]; ++kb) {
          const Index j = bci[static_cast<std::size_t>(kb)];
          if (marker[static_cast<std::size_t>(j)] != i) {
            marker[static_cast<std::size_t>(j)] = i;
            ++c;
          }
        }
      }
      counts[static_cast<std::size_t>(i)] = c;
    }
  }

  std::vector<Index> row_ptr;
  const std::size_t total = prefix_sum_row_counts(counts, row_ptr, "multiply");
  std::vector<Index> col_idx(total);
  std::vector<double> values(total);

  // Numeric pass: Gustavson dense accumulator per thread, filling each row's
  // preallocated [row_ptr[i], row_ptr[i+1]) slice. The accumulation order
  // within a row is the serial one for every thread count. Inputs may be
  // reduced-precision (demoted coarse operators); products and accumulators
  // are double, and the output is always fp64.
  a.with_values([&](const auto* av) {
    b.with_values([&](const auto* bv) {
#pragma omp parallel num_threads(nt)
      {
        std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
        std::vector<Index> marker(static_cast<std::size_t>(n), -1);
        std::vector<Index> row_cols;
#pragma omp for schedule(static)
        for (Index i = 0; i < m; ++i) {
          row_cols.clear();
          for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
            const Index k = aci[static_cast<std::size_t>(ka)];
            const double aval = av[static_cast<std::size_t>(ka)];
            for (Index kb = brp[k]; kb < brp[k + 1]; ++kb) {
              const Index j = bci[static_cast<std::size_t>(kb)];
              if (marker[static_cast<std::size_t>(j)] != i) {
                marker[static_cast<std::size_t>(j)] = i;
                acc[static_cast<std::size_t>(j)] = 0.0;
                row_cols.push_back(j);
              }
              acc[static_cast<std::size_t>(j)] +=
                  aval * bv[static_cast<std::size_t>(kb)];
            }
          }
          std::sort(row_cols.begin(), row_cols.end());
          auto out =
              static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
          for (Index j : row_cols) {
            col_idx[out] = j;
            values[out] = acc[static_cast<std::size_t>(j)];
            ++out;
          }
        }
      }
    });
  });
  return CsrMatrix::from_csr(m, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, double alpha,
              double beta, int num_threads) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  const Index m = a.rows();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto brp = b.row_ptr();
  const auto bci = b.col_idx();
  const int nt =
      m >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  // Symbolic pass: merged row sizes.
  std::vector<std::size_t> counts(static_cast<std::size_t>(m), 0);
#pragma omp parallel for schedule(static) num_threads(nt)
  for (Index i = 0; i < m; ++i) {
    Index ka = arp[i], kb = brp[i];
    const Index ea = arp[i + 1], eb = brp[i + 1];
    std::size_t c = 0;
    while (ka < ea || kb < eb) {
      const Index ca = ka < ea ? aci[static_cast<std::size_t>(ka)]
                               : std::numeric_limits<Index>::max();
      const Index cb = kb < eb ? bci[static_cast<std::size_t>(kb)]
                               : std::numeric_limits<Index>::max();
      if (ca <= cb) ++ka;
      if (cb <= ca) ++kb;
      ++c;
    }
    counts[static_cast<std::size_t>(i)] = c;
  }

  std::vector<Index> row_ptr;
  const std::size_t total = prefix_sum_row_counts(counts, row_ptr, "add");
  std::vector<Index> col_idx(total);
  std::vector<double> values(total);

  a.with_values([&](const auto* av) {
    b.with_values([&](const auto* bv) {
#pragma omp parallel for schedule(static) num_threads(nt)
      for (Index i = 0; i < m; ++i) {
        Index ka = arp[i], kb = brp[i];
        const Index ea = arp[i + 1], eb = brp[i + 1];
        auto out =
            static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(i)]);
        while (ka < ea || kb < eb) {
          const Index ca = ka < ea ? aci[static_cast<std::size_t>(ka)]
                                   : std::numeric_limits<Index>::max();
          const Index cb = kb < eb ? bci[static_cast<std::size_t>(kb)]
                                   : std::numeric_limits<Index>::max();
          double v = 0.0;
          Index c;
          if (ca < cb) {
            c = ca;
            v = alpha * av[static_cast<std::size_t>(ka++)];
          } else if (cb < ca) {
            c = cb;
            v = beta * bv[static_cast<std::size_t>(kb++)];
          } else {
            c = ca;
            v = alpha * av[static_cast<std::size_t>(ka++)] +
                beta * bv[static_cast<std::size_t>(kb++)];
          }
          col_idx[out] = c;
          values[out] = v;
          ++out;
        }
      }
    });
  });
  return CsrMatrix::from_csr(m, a.cols(), std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p,
                           int num_threads) {
  if (a.rows() != a.cols() || a.cols() != p.rows()) {
    throw std::invalid_argument("galerkin_product: shape mismatch");
  }
  const Index n = a.rows();
  const Index nc = p.cols();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto prp = p.row_ptr();
  const auto pci = p.col_idx();
  const auto pnnz = static_cast<std::size_t>(p.nnz());

  // Coarse-row -> fine-row adjacency of P (raw arrays, fine rows ascending
  // within each coarse row): coarse row I of the product reads exactly the
  // fine rows i with P(i, I) != 0. O(nnz(P)) counting scatter; no explicit
  // P^T CsrMatrix and no A*P intermediate are ever materialized.
  std::vector<Index> tptr(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<Index> tfine(pnnz);
  std::vector<double> tval(pnnz);
  for (std::size_t k = 0; k < pnnz; ++k) {
    ++tptr[static_cast<std::size_t>(pci[k]) + 1];
  }
  for (std::size_t c = 0; c < static_cast<std::size_t>(nc); ++c) {
    tptr[c + 1] += tptr[c];
  }
  // Transposed weights widen to double here; the rest of the product then
  // only streams P's values once more (the expansion pass below).
  p.with_values([&](const auto* pv) {
    std::vector<Index> next(tptr.begin(), tptr.end() - 1);
    for (Index i = 0; i < n; ++i) {
      for (Index k = prp[i]; k < prp[i + 1]; ++k) {
        const Index c = pci[static_cast<std::size_t>(k)];
        const auto pos =
            static_cast<std::size_t>(next[static_cast<std::size_t>(c)]++);
        tfine[pos] = i;
        tval[pos] = pv[static_cast<std::size_t>(k)];
      }
    }
  });

  const int nt =
      nc >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;

  // Symbolic pass: row I's nnz by merging the fine-column pattern of
  // (P^T A)(I, :) first (marker over fine columns), then expanding each
  // distinct fine column once through P (marker over coarse columns). Same
  // association as the numeric pass, so total work matches the two-product
  // chain without its intermediates.
  std::vector<std::size_t> counts(static_cast<std::size_t>(nc), 0);
#pragma omp parallel num_threads(nt)
  {
    std::vector<Index> fmark(static_cast<std::size_t>(n), -1);
    std::vector<Index> cmark(static_cast<std::size_t>(nc), -1);
    std::vector<Index> fcols;
#pragma omp for schedule(static)
    for (Index ic = 0; ic < nc; ++ic) {
      fcols.clear();
      for (Index t = tptr[static_cast<std::size_t>(ic)];
           t < tptr[static_cast<std::size_t>(ic) + 1]; ++t) {
        const Index i = tfine[static_cast<std::size_t>(t)];
        for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
          const Index k = aci[static_cast<std::size_t>(ka)];
          if (fmark[static_cast<std::size_t>(k)] != ic) {
            fmark[static_cast<std::size_t>(k)] = ic;
            fcols.push_back(k);
          }
        }
      }
      std::size_t c = 0;
      for (Index k : fcols) {
        for (Index kp = prp[k]; kp < prp[k + 1]; ++kp) {
          const Index j = pci[static_cast<std::size_t>(kp)];
          if (cmark[static_cast<std::size_t>(j)] != ic) {
            cmark[static_cast<std::size_t>(j)] = ic;
            ++c;
          }
        }
      }
      counts[static_cast<std::size_t>(ic)] = c;
    }
  }

  std::vector<Index> row_ptr;
  const std::size_t total =
      prefix_sum_row_counts(counts, row_ptr, "galerkin_product");
  std::vector<Index> col_idx(total);
  std::vector<double> values(total);

  // Numeric pass: row I of P^T A into a fine-column accumulator, then one
  // expansion through P into a coarse-column accumulator. Accumulation
  // order per row is fixed (fine rows ascending, then A-row and P-row
  // order), so values are bit-identical across thread counts.
  a.with_values([&](const auto* av) {
    p.with_values([&](const auto* pv) {
#pragma omp parallel num_threads(nt)
      {
        std::vector<Index> fmark(static_cast<std::size_t>(n), -1);
        std::vector<Index> cmark(static_cast<std::size_t>(nc), -1);
        std::vector<double> facc(static_cast<std::size_t>(n), 0.0);
        std::vector<double> cacc(static_cast<std::size_t>(nc), 0.0);
        std::vector<Index> fcols;
        std::vector<Index> ccols;
#pragma omp for schedule(static)
        for (Index ic = 0; ic < nc; ++ic) {
          fcols.clear();
          ccols.clear();
          for (Index t = tptr[static_cast<std::size_t>(ic)];
               t < tptr[static_cast<std::size_t>(ic) + 1]; ++t) {
            const Index i = tfine[static_cast<std::size_t>(t)];
            const double w = tval[static_cast<std::size_t>(t)];
            for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
              const Index k = aci[static_cast<std::size_t>(ka)];
              if (fmark[static_cast<std::size_t>(k)] != ic) {
                fmark[static_cast<std::size_t>(k)] = ic;
                facc[static_cast<std::size_t>(k)] = 0.0;
                fcols.push_back(k);
              }
              facc[static_cast<std::size_t>(k)] +=
                  w * av[static_cast<std::size_t>(ka)];
            }
          }
          for (Index k : fcols) {
            const double v = facc[static_cast<std::size_t>(k)];
            for (Index kp = prp[k]; kp < prp[k + 1]; ++kp) {
              const Index j = pci[static_cast<std::size_t>(kp)];
              if (cmark[static_cast<std::size_t>(j)] != ic) {
                cmark[static_cast<std::size_t>(j)] = ic;
                cacc[static_cast<std::size_t>(j)] = 0.0;
                ccols.push_back(j);
              }
              cacc[static_cast<std::size_t>(j)] +=
                  v * pv[static_cast<std::size_t>(kp)];
            }
          }
          std::sort(ccols.begin(), ccols.end());
          auto out =
              static_cast<std::size_t>(row_ptr[static_cast<std::size_t>(ic)]);
          for (Index j : ccols) {
            col_idx[out] = j;
            values[out] = cacc[static_cast<std::size_t>(j)];
            ++out;
          }
        }
      }
    });
  });
  return CsrMatrix::from_csr(nc, nc, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix drop_small(const CsrMatrix& a, double tol) {
  const Index m = a.rows();
  std::vector<Index> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const bool square = a.rows() == a.cols();
  a.with_values([&](const auto* v) {
    for (Index i = 0; i < m; ++i) {
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        const Index j = ci[static_cast<std::size_t>(k)];
        const double val = v[static_cast<std::size_t>(k)];
        if (std::abs(val) > tol || (square && j == i)) {
          col_idx.push_back(j);
          values.push_back(val);
        }
      }
      row_ptr[static_cast<std::size_t>(i) + 1] =
          static_cast<Index>(col_idx.size());
    }
  });
  return CsrMatrix::from_csr(m, a.cols(), std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

}  // namespace asyncmg
