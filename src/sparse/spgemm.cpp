#include "sparse/spgemm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace asyncmg {

CsrMatrix multiply(const CsrMatrix& a, const CsrMatrix& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("multiply: inner dimension mismatch");
  }
  const Index m = a.rows();
  const Index n = b.cols();
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  const auto brp = b.row_ptr();
  const auto bci = b.col_idx();
  const auto bv = b.values();

  // Gustavson: one dense accumulator + "seen" marker reused across rows.
  std::vector<double> acc(static_cast<std::size_t>(n), 0.0);
  std::vector<Index> marker(static_cast<std::size_t>(n), -1);
  std::vector<Index> row_cols;

  std::vector<Index> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(a.nnz()) + b.nnz());
  values.reserve(static_cast<std::size_t>(a.nnz()) + b.nnz());

  for (Index i = 0; i < m; ++i) {
    row_cols.clear();
    for (Index ka = arp[i]; ka < arp[i + 1]; ++ka) {
      const Index k = aci[static_cast<std::size_t>(ka)];
      const double aval = av[static_cast<std::size_t>(ka)];
      for (Index kb = brp[k]; kb < brp[k + 1]; ++kb) {
        const Index j = bci[static_cast<std::size_t>(kb)];
        if (marker[static_cast<std::size_t>(j)] != i) {
          marker[static_cast<std::size_t>(j)] = i;
          acc[static_cast<std::size_t>(j)] = 0.0;
          row_cols.push_back(j);
        }
        acc[static_cast<std::size_t>(j)] +=
            aval * bv[static_cast<std::size_t>(kb)];
      }
    }
    std::sort(row_cols.begin(), row_cols.end());
    for (Index j : row_cols) {
      col_idx.push_back(j);
      values.push_back(acc[static_cast<std::size_t>(j)]);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix::from_csr(m, n, std::move(row_ptr), std::move(col_idx),
                             std::move(values));
}

CsrMatrix add(const CsrMatrix& a, const CsrMatrix& b, double alpha,
              double beta) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("add: shape mismatch");
  }
  const Index m = a.rows();
  std::vector<Index> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  col_idx.reserve(static_cast<std::size_t>(a.nnz()) + b.nnz());
  values.reserve(static_cast<std::size_t>(a.nnz()) + b.nnz());

  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  const auto brp = b.row_ptr();
  const auto bci = b.col_idx();
  const auto bv = b.values();

  for (Index i = 0; i < m; ++i) {
    Index ka = arp[i], kb = brp[i];
    const Index ea = arp[i + 1], eb = brp[i + 1];
    while (ka < ea || kb < eb) {
      const Index ca = ka < ea ? aci[static_cast<std::size_t>(ka)]
                               : std::numeric_limits<Index>::max();
      const Index cb = kb < eb ? bci[static_cast<std::size_t>(kb)]
                               : std::numeric_limits<Index>::max();
      double v = 0.0;
      Index c;
      if (ca < cb) {
        c = ca;
        v = alpha * av[static_cast<std::size_t>(ka++)];
      } else if (cb < ca) {
        c = cb;
        v = beta * bv[static_cast<std::size_t>(kb++)];
      } else {
        c = ca;
        v = alpha * av[static_cast<std::size_t>(ka++)] +
            beta * bv[static_cast<std::size_t>(kb++)];
      }
      col_idx.push_back(c);
      values.push_back(v);
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix::from_csr(m, a.cols(), std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

CsrMatrix galerkin_product(const CsrMatrix& a, const CsrMatrix& p) {
  const CsrMatrix ap = multiply(a, p);
  const CsrMatrix pt = p.transpose();
  return multiply(pt, ap);
}

CsrMatrix drop_small(const CsrMatrix& a, double tol) {
  const Index m = a.rows();
  std::vector<Index> row_ptr(static_cast<std::size_t>(m) + 1, 0);
  std::vector<Index> col_idx;
  std::vector<double> values;
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto v = a.values();
  const bool square = a.rows() == a.cols();
  for (Index i = 0; i < m; ++i) {
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      const Index j = ci[static_cast<std::size_t>(k)];
      const double val = v[static_cast<std::size_t>(k)];
      if (std::abs(val) > tol || (square && j == i)) {
        col_idx.push_back(j);
        values.push_back(val);
      }
    }
    row_ptr[static_cast<std::size_t>(i) + 1] =
        static_cast<Index>(col_idx.size());
  }
  return CsrMatrix::from_csr(m, a.cols(), std::move(row_ptr),
                             std::move(col_idx), std::move(values));
}

}  // namespace asyncmg
