#include "sparse/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace asyncmg {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw std::runtime_error("mm: empty stream");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket" || lower(object) != "matrix" ||
      lower(format) != "coordinate" || lower(field) != "real") {
    throw std::runtime_error("mm: unsupported banner: " + line);
  }
  const std::string sym = lower(symmetry);
  if (sym != "general" && sym != "symmetric") {
    throw std::runtime_error("mm: unsupported symmetry: " + symmetry);
  }
  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long long rows = 0, cols = 0, nnz = 0;
  if (!(dims >> rows >> cols >> nnz)) {
    throw std::runtime_error("mm: bad dimension line");
  }
  std::vector<Triplet> trips;
  trips.reserve(static_cast<std::size_t>(sym == "symmetric" ? 2 * nnz : nnz));
  for (long long k = 0; k < nnz; ++k) {
    long long i = 0, j = 0;
    double v = 0.0;
    if (!(in >> i >> j >> v)) throw std::runtime_error("mm: truncated entries");
    const auto r = static_cast<Index>(i - 1);
    const auto c = static_cast<Index>(j - 1);
    trips.push_back({r, c, v});
    if (sym == "symmetric" && r != c) trips.push_back({c, r, v});
  }
  return CsrMatrix::from_triplets(static_cast<Index>(rows),
                                  static_cast<Index>(cols), std::move(trips));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << ' ' << a.cols() << ' ' << a.nnz() << '\n';
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  // fp32 values widen exactly to double; 17 significant digits round-trips
  // either width through the text form.
  out.precision(17);
  a.with_values([&](const auto* v) {
    for (Index i = 0; i < a.rows(); ++i) {
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        out << (i + 1) << ' ' << (ci[static_cast<std::size_t>(k)] + 1) << ' '
            << static_cast<double>(v[static_cast<std::size_t>(k)]) << '\n';
      }
    }
  });
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream f(path);
  if (!f) throw std::runtime_error("mm: cannot open " + path);
  write_matrix_market(f, a);
}

Vector read_vector(std::istream& in) {
  std::size_t n = 0;
  if (!(in >> n)) throw std::runtime_error("vec: bad length");
  Vector v(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!(in >> v[i])) throw std::runtime_error("vec: truncated");
  }
  return v;
}

void write_vector(std::ostream& out, const Vector& v) {
  out << v.size() << '\n';
  out.precision(17);
  for (double x : v) out << x << '\n';
}

}  // namespace asyncmg
