#pragma once
// Common scalar/index typedefs for the sparse kernels.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asyncmg {

/// Row/column index type. 32-bit indices keep CSR structures compact; all
/// problems in the paper (up to 80^3 = 512000 rows, ~14M nonzeros) fit
/// comfortably.
using Index = std::int32_t;

/// Dense vector of doubles.
using Vector = std::vector<double>;

/// Stored scalar width of a sparse operator's values. Iteration vectors,
/// accumulators, and the outer residual/correction loop are always fp64;
/// kF32 only narrows the *stored* operator entries (the bandwidth-bound
/// stream), which every kernel widens back to double on load. The fp64 form
/// is the bitwise correctness oracle; fp32 paths are accepted by error-norm
/// bounds, never bitwise.
enum class Precision : std::uint8_t {
  kF64 = 0,
  kF32 = 1,
};

/// Bytes of one stored value at `p`.
inline std::size_t scalar_width(Precision p) {
  return p == Precision::kF32 ? sizeof(float) : sizeof(double);
}

/// Stable display name ("f64" / "f32"), used by summaries, serialization,
/// and telemetry traces.
inline const char* precision_name(Precision p) {
  return p == Precision::kF32 ? "f32" : "f64";
}

}  // namespace asyncmg
