#pragma once
// Common scalar/index typedefs for the sparse kernels.

#include <cstdint>
#include <vector>

namespace asyncmg {

/// Row/column index type. 32-bit indices keep CSR structures compact; all
/// problems in the paper (up to 80^3 = 512000 rows, ~14M nonzeros) fit
/// comfortably.
using Index = std::int32_t;

/// Dense vector of doubles.
using Vector = std::vector<double>;

}  // namespace asyncmg
