#pragma once
// Shared plumbing for the threaded AMG setup kernels: thread-count
// resolution, overflow-checked CSR prefix sums, and deterministic
// row-blocked parallel assembly.
//
// Every setup kernel built on these helpers produces bit-identical output
// for every thread count: rows are computed independently, each row's
// entries are accumulated in a fixed order, and blocked results are
// concatenated in row order. Parallelism only changes which thread computes
// a row, never the arithmetic inside it.

#include <omp.h>

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sparse/types.hpp"
#include "util/partition.hpp"

namespace asyncmg {

/// Resolve a requested setup-phase team size: values >= 1 are used as given,
/// 0 means the OpenMP default (OMP_NUM_THREADS / hardware concurrency).
int resolve_setup_threads(int requested);

/// Row count below which the setup kernels run their serial path; OpenMP
/// team startup costs more than these matrices (the coarse tail of every
/// hierarchy) take to process.
inline constexpr Index kSetupSerialCutoff = 1 << 11;

/// Exclusive prefix sum of per-row entry counts into a CSR row_ptr.
/// Accumulates in std::size_t and throws std::overflow_error (tagged with
/// `what`) before narrowing a total nnz that Index cannot represent.
/// Returns the total nnz.
std::size_t prefix_sum_row_counts(const std::vector<std::size_t>& counts,
                                  std::vector<Index>& row_ptr,
                                  const char* what);

/// Deterministic row-blocked parallel CSR assembly for kernels whose rows
/// are expensive to compute (strength, interpolation): [0, n_rows) is split
/// into resolve_setup_threads(num_threads) contiguous blocks, each built
/// left-to-right by one task into private buffers, then stitched in block
/// order after an overflow-checked prefix sum. `make_worker()` runs once per
/// block and returns a callable `worker(Index row, cols, vals)` that appends
/// the row's (sorted) entries -- per-block workers let row bodies keep
/// stamp/accumulator scratch without sharing it across threads.
template <class WorkerFactory>
void assemble_rows_blocked(Index n_rows, int num_threads, const char* what,
                           std::vector<Index>& row_ptr,
                           std::vector<Index>& col_idx,
                           std::vector<double>& values,
                           WorkerFactory&& make_worker) {
  const int nt =
      n_rows >= kSetupSerialCutoff ? resolve_setup_threads(num_threads) : 1;
  const std::vector<Range> blocks =
      static_chunks(static_cast<std::size_t>(n_rows),
                    static_cast<std::size_t>(nt));
  const int nb = static_cast<int>(blocks.size());
  std::vector<std::vector<Index>> block_cols(blocks.size());
  std::vector<std::vector<double>> block_vals(blocks.size());
  std::vector<std::size_t> counts(static_cast<std::size_t>(n_rows), 0);

#pragma omp parallel for schedule(static, 1) num_threads(nt)
  for (int b = 0; b < nb; ++b) {
    auto worker = make_worker();
    auto& cols = block_cols[static_cast<std::size_t>(b)];
    auto& vals = block_vals[static_cast<std::size_t>(b)];
    const Range rg = blocks[static_cast<std::size_t>(b)];
    for (std::size_t i = rg.begin; i < rg.end; ++i) {
      const std::size_t before = cols.size();
      worker(static_cast<Index>(i), cols, vals);
      counts[i] = cols.size() - before;
    }
  }

  const std::size_t total = prefix_sum_row_counts(counts, row_ptr, what);
  col_idx.resize(total);
  values.resize(total);
#pragma omp parallel for schedule(static, 1) num_threads(nt)
  for (int b = 0; b < nb; ++b) {
    const Range rg = blocks[static_cast<std::size_t>(b)];
    if (rg.empty()) continue;
    const auto dst = static_cast<std::size_t>(row_ptr[rg.begin]);
    const auto& cols = block_cols[static_cast<std::size_t>(b)];
    const auto& vals = block_vals[static_cast<std::size_t>(b)];
    std::copy(cols.begin(), cols.end(), col_idx.begin() + dst);
    std::copy(vals.begin(), vals.end(), values.begin() + dst);
  }
}

}  // namespace asyncmg
