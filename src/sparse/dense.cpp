#include "sparse/dense.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace asyncmg {

DenseMatrix::DenseMatrix(Index rows, Index cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
            0.0) {}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix d(a.rows(), a.cols());
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  a.with_values([&](const auto* v) {
    for (Index i = 0; i < a.rows(); ++i) {
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        d(i, ci[static_cast<std::size_t>(k)]) += v[static_cast<std::size_t>(k)];
      }
    }
  });
  return d;
}

void DenseMatrix::matvec(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.assign(static_cast<std::size_t>(rows_), 0.0);
  for (Index i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (Index j = 0; j < cols_; ++j) s += (*this)(i, j) * x[static_cast<std::size_t>(j)];
    y[static_cast<std::size_t>(i)] = s;
  }
}

LuSolver::LuSolver(const CsrMatrix& a) : LuSolver(DenseMatrix::from_csr(a)) {}

LuSolver::LuSolver(DenseMatrix a) : n_(a.rows()), lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) {
    throw std::invalid_argument("LuSolver: matrix must be square");
  }
  factor();
}

void LuSolver::factor() {
  piv_.resize(static_cast<std::size_t>(n_));
  for (Index k = 0; k < n_; ++k) {
    // Partial pivot: largest magnitude in column k at/below the diagonal.
    Index p = k;
    double best = std::abs(lu_(k, k));
    for (Index i = k + 1; i < n_; ++i) {
      const double cand = std::abs(lu_(i, k));
      if (cand > best) {
        best = cand;
        p = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("LuSolver: singular matrix");
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (Index j = 0; j < n_; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const double pivot = lu_(k, k);
    for (Index i = k + 1; i < n_; ++i) {
      const double m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      for (Index j = k + 1; j < n_; ++j) lu_(i, j) -= m * lu_(k, j);
    }
  }
}

void LuSolver::solve(const Vector& b, Vector& x) const {
  assert(static_cast<Index>(b.size()) == n_);
  x = b;
  // Apply row permutation.
  for (Index k = 0; k < n_; ++k) {
    const Index p = piv_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(x[static_cast<std::size_t>(k)], x[static_cast<std::size_t>(p)]);
  }
  // Forward substitution with unit lower triangle.
  for (Index i = 1; i < n_; ++i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index j = 0; j < i; ++j) s -= lu_(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s;
  }
  // Back substitution.
  for (Index i = n_ - 1; i >= 0; --i) {
    double s = x[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n_; ++j) s -= lu_(i, j) * x[static_cast<std::size_t>(j)];
    x[static_cast<std::size_t>(i)] = s / lu_(i, i);
    if (i == 0) break;
  }
}

}  // namespace asyncmg
