#pragma once
// Solve-phase kernel engine: fused CSR kernels, the per-level format
// selection heuristic, and the engine configuration shared by the multigrid
// cycles, smoothers, and the async runtime drivers (DESIGN.md section 10).
//
// Fusion identities (each fused kernel is bit-identical to the two-pass
// reference it replaces because it performs the same floating-point
// operations in the same order):
//
//   fused_diag_sweep :  x_out = x_in + d .* (b - A x_in)
//       == residual(b, x_in, r); x_out[i] = x_in[i] + d[i] * r[i]
//       (residual accumulation order: s = b_i, then s -= a_ij x_j)
//
//   fused_sub_spmv   :  tmp = r - A e
//       == spmv(e, tmp); tmp[i] = r[i] - tmp[i]
//       (spmv accumulation order: s = 0, then s += a_ij e_j)
//
//   fused_residual_norm_sq :  r = b - A x, returns sum_i r_i^2
//       == residual(b, x, r); dot(r, r)
//       (the sum-of-squares accumulates serially left to right, exactly
//       like dot(), regardless of how many threads computed r)
//
// The two accumulation orders are not interchangeable bitwise; every caller
// must pick the one its reference path uses.

#include <cstddef>
#include <cstdint>

#include "sparse/csr.hpp"
#include "sparse/sellcs.hpp"
#include "sparse/types.hpp"

namespace asyncmg {

/// Which kernel backend (src/backend) executes the solve-phase kernel set.
/// kScalar is the portable OpenMP CSR/SELL engine and the bitwise oracle;
/// the SIMD kinds hand-vectorize the SELL-C-sigma kernels across chunk
/// lanes (one row per lane, so per-row accumulation order — and therefore
/// every bit of the result — matches the oracle). kAuto resolves at runtime
/// to the widest ISA both compiled in and reported by the CPU, overridable
/// with ASYNCMG_BACKEND=scalar|avx2|avx512.
enum class BackendKind : std::uint8_t {
  kAuto = 0,
  kScalar,
  kAvx2,
  kAvx512,
};

/// Stable lowercase name ("auto", "scalar", "avx2", "avx512"); also the
/// accepted ASYNCMG_BACKEND values.
const char* backend_kind_name(BackendKind k);

/// Configuration of the solve-phase kernel engine. Defaults enable
/// everything; `fused = false` restores the original two-pass reference
/// path (which the bench uses as its baseline and the property tests use as
/// the bitwise oracle).
struct KernelEngineOptions {
  /// Kernel backend request. kAuto picks the widest supported ISA; an
  /// explicit kind pins it (bypassing the ASYNCMG_BACKEND env override,
  /// like PrecisionPolicy pins bypass ASYNCMG_PRECISION). An unsupported
  /// request falls back to the widest supported backend with a logged
  /// warning — it never fails the setup.
  BackendKind backend = BackendKind::kAuto;
  /// Use the fused single-A-pass kernels in cycles and smoothers.
  bool fused = true;
  /// Convert eligible levels to SELL-C-sigma at setup.
  bool use_sell = true;
  /// Smallest level (rows) worth converting: below this the matrix lives in
  /// cache and conversion/padding overhead buys nothing.
  Index sell_min_rows = 1 << 12;
  /// SELL chunk height C (accumulator width). C=16 measured best-or-tied
  /// for V(1,1) cycles on the 27-point Laplacian across C in {8,16,32,64}
  /// (bench/solve_phase); wider chunks trade contiguous-column coverage for
  /// more accumulators without a reliable cycle-level win.
  Index sell_chunk = 16;
  /// SELL sorting window sigma. A small window keeps the permutation local
  /// (sorted rows stay near their neighbors, so x accesses keep the CSR
  /// locality) while still grouping equal-length stencil rows into
  /// full-width chunks.
  Index sell_sigma = 256;
  /// Touch workspace pages from the owning thread team at setup.
  bool first_touch = true;
};

/// Per-level format choice: SELL-C-sigma only pays off on levels that run
/// many diagonal-type (Jacobi-family) sweeps over matrices too large for
/// cache; triangular/hybrid smoothers and the direct-solve coarsest level
/// keep CSR. `rows` is the level's row count.
bool level_prefers_sell(const KernelEngineOptions& opts, Index rows,
                        bool diagonal_smoother, bool coarsest);

/// x_out = x_in + d .* (b - A x_in): one fused damped-Jacobi sweep over a
/// CSR matrix, bit-identical to CsrMatrix::residual followed by the
/// elementwise update. x_out must not alias x_in (the sweep is Jacobi, not
/// Gauss-Seidel: every row reads the old iterate).
void fused_diag_sweep(const CsrMatrix& a, const Vector& d, const Vector& b,
                      const Vector& x_in, Vector& x_out);

/// OpenMP variant (same pool-worker/small-matrix fallback as the CsrMatrix
/// solve kernels; identical results for every thread count).
void fused_diag_sweep_omp(const CsrMatrix& a, const Vector& d, const Vector& b,
                          const Vector& x_in, Vector& x_out);

/// tmp = r - A e in spmv accumulation order: the restriction input of the
/// multiplicative cycle, bit-identical to spmv + elementwise subtract.
void fused_sub_spmv(const CsrMatrix& a, const Vector& r, const Vector& e,
                    Vector& tmp);

/// OpenMP variant of fused_sub_spmv.
void fused_sub_spmv_omp(const CsrMatrix& a, const Vector& r, const Vector& e,
                        Vector& tmp);

/// r = b - A x and sum_i r_i^2 in one pass over A; the return value is
/// bit-identical to dot(r, r) after CsrMatrix::residual. The sum is always
/// accumulated serially in row order, so it is thread-count invariant.
double fused_residual_norm_sq(const CsrMatrix& a, const Vector& b,
                              const Vector& x, Vector& r);

/// OpenMP variant: the residual rows are computed in parallel, the
/// sum-of-squares reduction stays a serial second pass over r (cache-hot),
/// preserving bitwise identity with the serial form.
double fused_residual_norm_sq_omp(const CsrMatrix& a, const Vector& b,
                                  const Vector& x, Vector& r);

/// Approximate bytes one pass over `a` streams (values at the stored scalar
/// width + columns + row pointers), for the telemetry bytes-moved counters.
inline std::size_t csr_pass_bytes(const CsrMatrix& a) {
  return a.value_bytes() + static_cast<std::size_t>(a.nnz()) * sizeof(Index) +
         (static_cast<std::size_t>(a.rows()) + 1) * sizeof(Index);
}

/// SELL counterpart of csr_pass_bytes: counts the stored (padded) entries
/// plus the column/metadata streams, so the bytes-moved counters and the
/// bench bandwidth numbers do not under-report SELL levels against raw nnz.
inline std::size_t sell_pass_bytes(const SellMatrix& a) {
  return a.pass_bytes();
}

/// True when the solve-phase kernels should fan out an OpenMP team for a
/// matrix of `rows` rows: large enough to amortize the team start, more
/// than one thread configured, and not on a pool worker thread (pool lanes
/// are already one per core). Shared by the CSR/SELL engines and the
/// src/backend kernel backends so every path gates identically.
bool solve_omp_eligible(Index rows);

}  // namespace asyncmg
