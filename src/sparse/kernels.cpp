#include "sparse/kernels.hpp"

#include <omp.h>

#include <algorithm>
#include <cassert>

#include "sparse/parallel.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

bool solve_omp_eligible(Index rows) {
  return rows >= kSetupSerialCutoff && omp_get_max_threads() > 1 &&
         !this_thread_is_pool_worker();
}

const char* backend_kind_name(BackendKind k) {
  switch (k) {
    case BackendKind::kAuto:
      return "auto";
    case BackendKind::kScalar:
      return "scalar";
    case BackendKind::kAvx2:
      return "avx2";
    case BackendKind::kAvx512:
      return "avx512";
  }
  return "unknown";
}

namespace {

/// Same gate as the CsrMatrix solve kernels (including the one-thread-team
/// bypass).
bool use_solve_omp(Index rows) { return solve_omp_eligible(rows); }

/// Static partition matching `omp parallel for schedule(static)`.
struct RowRange {
  Index lo, hi;
};
RowRange static_rows(Index n, int nt, int t) {
  const Index chunk = (n + nt - 1) / nt;
  const Index lo = std::min<Index>(n, chunk * t);
  return {lo, std::min<Index>(n, lo + chunk)};
}

// Row-range bodies shared by the serial and OpenMP entry points. Keeping the
// hot loop in one function called from inside the parallel region sidesteps
// the OpenMP outlining pessimization (the outlined body loses aliasing
// information and measures ~30% slower single-thread), and makes the
// serial/parallel bitwise identity true by construction: both run exactly
// this code per row.

// Templated over the stored value type (double/float per the matrix's
// Precision): values widen to double on load and accumulators stay double,
// so the fp64 instantiation is the pre-template code bit for bit.

template <class AV>
void diag_sweep_rows(const Index* rp, const Index* ci, const AV* av,
                     const double* dp, const double* bp, const double* xi,
                     double* xo, Index lo, Index hi) {
  for (Index i = lo; i < hi; ++i) {
    double s = bp[i];
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      s -= av[k] * xi[ci[k]];
    }
    xo[i] = xi[i] + dp[i] * s;
  }
}

template <class AV>
void sub_spmv_rows(const Index* rp, const Index* ci, const AV* av,
                   const double* ep, const double* rr, double* tp, Index lo,
                   Index hi) {
  for (Index i = lo; i < hi; ++i) {
    double s = 0.0;
    for (Index k = rp[i]; k < rp[i + 1]; ++k) {
      s += av[k] * ep[ci[k]];
    }
    tp[i] = rr[i] - s;
  }
}

}  // namespace

bool level_prefers_sell(const KernelEngineOptions& opts, Index rows,
                        bool diagonal_smoother, bool coarsest) {
  return opts.use_sell && diagonal_smoother && !coarsest &&
         rows >= opts.sell_min_rows;
}

void fused_diag_sweep(const CsrMatrix& a, const Vector& d, const Vector& b,
                      const Vector& x_in, Vector& x_out) {
  assert(a.rows() == a.cols() && static_cast<Index>(d.size()) == a.rows() &&
         static_cast<Index>(b.size()) == a.rows() &&
         static_cast<Index>(x_in.size()) == a.rows() && &x_in != &x_out);
  const Index n = a.rows();
  x_out.resize(static_cast<std::size_t>(n));
  a.with_values([&](const auto* av) {
    diag_sweep_rows(a.row_ptr().data(), a.col_idx().data(), av, d.data(),
                    b.data(), x_in.data(), x_out.data(), 0, n);
  });
}

void fused_diag_sweep_omp(const CsrMatrix& a, const Vector& d, const Vector& b,
                          const Vector& x_in, Vector& x_out) {
  assert(a.rows() == a.cols() && static_cast<Index>(d.size()) == a.rows() &&
         static_cast<Index>(b.size()) == a.rows() &&
         static_cast<Index>(x_in.size()) == a.rows() && &x_in != &x_out);
  const Index n = a.rows();
  x_out.resize(static_cast<std::size_t>(n));
  const Index* const rp = a.row_ptr().data();
  const Index* const ci = a.col_idx().data();
  const double* const xi = x_in.data();
  const double* const bp = b.data();
  const double* const dp = d.data();
  double* const xo = x_out.data();
  a.with_values([&](const auto* av) {
    if (!use_solve_omp(n)) {
      diag_sweep_rows(rp, ci, av, dp, bp, xi, xo, 0, n);
      return;
    }
#pragma omp parallel
    {
      const RowRange rg =
          static_rows(n, omp_get_num_threads(), omp_get_thread_num());
      diag_sweep_rows(rp, ci, av, dp, bp, xi, xo, rg.lo, rg.hi);
    }
  });
}

void fused_sub_spmv(const CsrMatrix& a, const Vector& r, const Vector& e,
                    Vector& tmp) {
  assert(static_cast<Index>(r.size()) == a.rows() &&
         static_cast<Index>(e.size()) == a.cols());
  const Index n = a.rows();
  tmp.resize(static_cast<std::size_t>(n));
  a.with_values([&](const auto* av) {
    sub_spmv_rows(a.row_ptr().data(), a.col_idx().data(), av, e.data(),
                  r.data(), tmp.data(), 0, n);
  });
}

void fused_sub_spmv_omp(const CsrMatrix& a, const Vector& r, const Vector& e,
                        Vector& tmp) {
  assert(static_cast<Index>(r.size()) == a.rows() &&
         static_cast<Index>(e.size()) == a.cols());
  const Index n = a.rows();
  tmp.resize(static_cast<std::size_t>(n));
  const Index* const rp = a.row_ptr().data();
  const Index* const ci = a.col_idx().data();
  const double* const ep = e.data();
  const double* const rr = r.data();
  double* const tp = tmp.data();
  a.with_values([&](const auto* av) {
    if (!use_solve_omp(n)) {
      sub_spmv_rows(rp, ci, av, ep, rr, tp, 0, n);
      return;
    }
#pragma omp parallel
    {
      const RowRange rg =
          static_rows(n, omp_get_num_threads(), omp_get_thread_num());
      sub_spmv_rows(rp, ci, av, ep, rr, tp, rg.lo, rg.hi);
    }
  });
}

double fused_residual_norm_sq(const CsrMatrix& a, const Vector& b,
                              const Vector& x, Vector& r) {
  assert(static_cast<Index>(b.size()) == a.rows() &&
         static_cast<Index>(x.size()) == a.cols());
  const Index n = a.rows();
  r.resize(static_cast<std::size_t>(n));
  const Index* const rp = a.row_ptr().data();
  const Index* const ci = a.col_idx().data();
  const double* const xp = x.data();
  const double* const bp = b.data();
  double* const rr = r.data();
  return a.with_values([&](const auto* av) {
    double sumsq = 0.0;
    for (Index i = 0; i < n; ++i) {
      double s = bp[i];
      for (Index k = rp[i]; k < rp[i + 1]; ++k) {
        s -= av[k] * xp[ci[k]];
      }
      rr[i] = s;
      sumsq += s * s;
    }
    return sumsq;
  });
}

double fused_residual_norm_sq_omp(const CsrMatrix& a, const Vector& b,
                                  const Vector& x, Vector& r) {
  const bool par = use_solve_omp(a.rows());
  if (!par) return fused_residual_norm_sq(a, b, x, r);
  a.residual_omp(b, x, r);
  double sumsq = 0.0;
  for (double v : r) sumsq += v * v;
  return sumsq;
}

}  // namespace asyncmg
