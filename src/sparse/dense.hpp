#pragma once
// Dense matrix with pivoted LU factorization. Used as the exact solver on
// the coarsest multigrid level (Lambda_ell = A_ell^{-1} in Eq. 1/2 of the
// paper) and as a reference oracle in tests.

#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"

namespace asyncmg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(Index rows, Index cols);

  static DenseMatrix from_csr(const CsrMatrix& a);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }

  double& operator()(Index i, Index j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  double operator()(Index i, Index j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

  /// y = A x.
  void matvec(const Vector& x, Vector& y) const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting; factor once, solve many times.
class LuSolver {
 public:
  LuSolver() = default;

  /// Factors a dense copy of `a` (square). Throws on exact singularity.
  explicit LuSolver(const CsrMatrix& a);
  explicit LuSolver(DenseMatrix a);

  bool empty() const { return n_ == 0; }
  Index size() const { return n_; }

  /// x = A^{-1} b.
  void solve(const Vector& b, Vector& x) const;

 private:
  void factor();

  Index n_ = 0;
  DenseMatrix lu_;
  std::vector<Index> piv_;
};

}  // namespace asyncmg
