#pragma once
// Matrix Market I/O so users can bring their own systems (the paper's MFEM
// matrices are distributed in this format) and so test fixtures can be
// round-tripped.

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace asyncmg {

/// Reads a Matrix Market "coordinate real {general|symmetric}" matrix.
/// Symmetric files are expanded to full storage. Throws std::runtime_error
/// on malformed input.
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes coordinate real general format (1-based indices).
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

/// Plain-text vector I/O: first line is the length, then one value per line.
Vector read_vector(std::istream& in);
void write_vector(std::ostream& out, const Vector& v);

}  // namespace asyncmg
