#include "sparse/parallel.hpp"

#include <limits>
#include <stdexcept>
#include <string>

namespace asyncmg {

int resolve_setup_threads(int requested) {
  if (requested >= 1) return requested;
  return std::max(1, omp_get_max_threads());
}

std::size_t prefix_sum_row_counts(const std::vector<std::size_t>& counts,
                                  std::vector<Index>& row_ptr,
                                  const char* what) {
  constexpr auto kMax =
      static_cast<std::size_t>(std::numeric_limits<Index>::max());
  row_ptr.assign(counts.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    total += counts[i];
    if (total > kMax) {
      throw std::overflow_error(std::string(what) + ": output nnz " +
                                std::to_string(total) +
                                " exceeds Index range");
    }
    row_ptr[i + 1] = static_cast<Index>(total);
  }
  return total;
}

}  // namespace asyncmg
