#include "sparse/halo.hpp"

#include <cassert>
#include <stdexcept>

namespace asyncmg {

LocalStencil LocalStencil::from_rows(const CsrMatrix& a, Index row_begin,
                                     Index row_end,
                                     std::span<const Index> global_to_local,
                                     Index local_cols) {
  if (row_begin < 0 || row_end < row_begin || row_end > a.rows()) {
    throw std::invalid_argument("LocalStencil: row range out of bounds");
  }
  if (static_cast<Index>(global_to_local.size()) != a.cols()) {
    throw std::invalid_argument("LocalStencil: global_to_local size mismatch");
  }
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  LocalStencil s;
  s.row_begin_ = row_begin;
  s.local_cols_ = local_cols;
  const std::size_t nrows = static_cast<std::size_t>(row_end - row_begin);
  s.row_ptr_.resize(nrows + 1);
  const Index first = rp[static_cast<std::size_t>(row_begin)];
  const Index last = rp[static_cast<std::size_t>(row_end)];
  s.col_idx_.reserve(static_cast<std::size_t>(last - first));
  // Local stencils keep fp64 values; fp32 sources widen exactly.
  a.with_values([&](const auto* v) {
    s.values_.assign(v + first, v + last);
  });
  s.row_ptr_[0] = 0;
  for (std::size_t i = 0; i < nrows; ++i) {
    s.row_ptr_[i + 1] =
        rp[static_cast<std::size_t>(row_begin) + i + 1] - first;
  }
  for (Index k = first; k < last; ++k) {
    const Index g = ci[static_cast<std::size_t>(k)];
    const Index l = global_to_local[static_cast<std::size_t>(g)];
    if (l < 0 || l >= local_cols) {
      throw std::invalid_argument(
          "LocalStencil: referenced column has no local index");
    }
    s.col_idx_.push_back(l);
  }
  return s;
}

void LocalStencil::spmv(const Vector& x_local, Vector& y) const {
  assert(static_cast<Index>(x_local.size()) == local_cols_);
  const std::size_t nrows = row_ptr_.size() - 1;
  y.resize(nrows);
  for (std::size_t i = 0; i < nrows; ++i) {
    double s = 0.0;
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s += values_[static_cast<std::size_t>(k)] *
           x_local[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    y[i] = s;
  }
}

void LocalStencil::residual_into(const Vector& b_full, const Vector& x_local,
                                 Vector& r_full) const {
  assert(static_cast<Index>(x_local.size()) == local_cols_);
  assert(b_full.size() == r_full.size());
  const std::size_t nrows = row_ptr_.size() - 1;
  const std::size_t off = static_cast<std::size_t>(row_begin_);
  // Same accumulation order as CsrMatrix::residual_rows: s starts at b_i
  // and subtracts the row's products in storage order.
  for (std::size_t i = 0; i < nrows; ++i) {
    double s = b_full[off + i];
    for (Index k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      s -= values_[static_cast<std::size_t>(k)] *
           x_local[static_cast<std::size_t>(col_idx_[static_cast<std::size_t>(k)])];
    }
    r_full[off + i] = s;
  }
}

}  // namespace asyncmg
