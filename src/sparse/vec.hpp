#pragma once
// Dense vector kernels (BLAS-1 style) with whole-vector and index-range
// forms. Range forms are executed by the per-grid thread teams.

#include <cstddef>

#include "sparse/types.hpp"

namespace asyncmg {

class Rng;

/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);
void axpy_range(double alpha, const Vector& x, Vector& y, std::size_t begin,
                std::size_t end);

/// x *= alpha.
void scale(Vector& x, double alpha);

/// Dot product.
double dot(const Vector& x, const Vector& y);

/// Euclidean norm.
double norm2(const Vector& x);

/// Max norm.
double norm_inf(const Vector& x);

/// Fill with a constant.
void fill(Vector& x, double value);

/// Entrywise y_i = x_i * d_i (diagonal application).
void hadamard(const Vector& d, const Vector& x, Vector& y);

/// Random vector with entries uniform in [lo, hi] (the paper's right-hand
/// sides are uniform in [-1, 1]).
Vector random_vector(std::size_t n, Rng& rng, double lo = -1.0,
                     double hi = 1.0);

}  // namespace asyncmg
