#pragma once
// SELL-C-σ sparse format for the solve-phase kernel engine.
//
// Sliced ELLPACK with row sorting (Kreutzer et al.): rows are sorted by
// descending nonzero count inside windows of σ rows, grouped into chunks of
// C rows, and each chunk is stored column-major (entry j of all C rows
// adjacent in memory), padded to the chunk's widest row. The column-major
// layout gives the SpMV inner loop C independent accumulators and unit-
// stride value/column loads, which is what the per-level smoothing sweeps
// are bottlenecked on in CSR form; σ-window sorting keeps the permutation
// local so the padding stays small without destroying access locality.
//
// Contract with the rest of the library: every kernel here is bit-identical
// to its CsrMatrix counterpart on the source matrix. Per row, entries are
// visited in exactly the CSR order (ascending column), padding lanes are
// never read, and each output row is written by exactly one chunk, so the
// result does not depend on the thread count. Vectors stay in original row
// numbering; the permutation is applied on the fly through perm().

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/types.hpp"
#include "util/aligned.hpp"

namespace asyncmg {

/// Read-only raw view of the SELL storage for out-of-class kernels (the
/// src/backend SIMD implementations). Pointers alias the owning SellMatrix
/// and stay valid while it is alive and unmodified. Exactly one of
/// `values` / `values_f32` is non-null, per `prec`. The value and column
/// slabs are kKernelAlign-aligned (util/aligned.hpp).
struct SellView {
  Index rows = 0;
  Index cols = 0;
  Index chunk = 0;                    // C, the lane count per chunk
  Precision prec = Precision::kF64;
  std::size_t nchunks = 0;
  const Index* perm = nullptr;        // slot -> row; -1 pad slots trail
  const Index* slot_len = nullptr;    // nnz per slot (descending per chunk)
  const Index* chunk_ptr = nullptr;   // entry offset per chunk (nchunks+1)
  const Index* chunk_width = nullptr; // widest row per chunk
  const Index* col_idx = nullptr;     // column-major per chunk, padded
  const double* values = nullptr;     // kF64 storage
  const float* values_f32 = nullptr;  // kF32 storage
  const Index* ucol_ofs = nullptr;    // per chunk: ucol_base offset or -1
  const Index* ucol_base = nullptr;   // x base index per contiguous column
};

class SellMatrix {
 public:
  SellMatrix() = default;

  /// Converts a CSR matrix. `chunk` is C (rows per chunk, the accumulator
  /// width, at most kMaxChunk), `sigma` the sorting-window size in rows
  /// (clamped to at least `chunk` and rounded up to a multiple of it, so
  /// every chunk is descending-sorted and the active-lane prefix trick
  /// applies). The sort is stable, so matrices with uniform row lengths
  /// (stencils) keep the identity permutation and padding-free chunks.
  /// The stored scalar width is inherited from `a` (fp32 coarse levels stay
  /// fp32 in SELL form).
  static SellMatrix from_csr(const CsrMatrix& a, Index chunk = 8,
                             Index sigma = 256);

  /// Upper bound on C: the per-chunk accumulators live on the kernel stack.
  static constexpr Index kMaxChunk = 64;

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const { return nnz_; }
  Index chunk() const { return c_; }
  Index sigma() const { return sigma_; }
  bool empty() const { return rows_ == 0; }

  /// Stored scalar width, inherited from the source CsrMatrix at from_csr.
  Precision precision() const { return prec_; }

  /// Stored entries including padding; padded_entries() = stored - nnz.
  std::size_t stored_entries() const {
    return prec_ == Precision::kF32 ? values_f32_.size() : values_.size();
  }
  std::size_t padded_entries() const {
    return stored_entries() - static_cast<std::size_t>(nnz_);
  }

  /// slot -> original row index (identity when sigma disables sorting or
  /// all row lengths are equal).
  std::span<const Index> perm() const { return perm_; }

  /// Chunks on the contiguous-column fast path: every lane holds the full
  /// chunk width and at each column j the C lane columns are consecutive
  /// (cc[j][lane] == cc[j][0] + lane). Stencil matrices on structured grids
  /// hit this for most interior chunks; such chunks read x with one
  /// unit-stride load per column and never touch the col_idx stream.
  std::size_t contiguous_chunks() const { return n_contig_; }

  /// y = A x. Bit-identical to CsrMatrix::spmv on the source matrix.
  void spmv(const Vector& x, Vector& y) const;

  /// OpenMP variant (chunk-parallel, nnz-balanced); same pool-worker and
  /// small-matrix fallback as CsrMatrix::spmv_omp, identical results for
  /// every thread count.
  void spmv_omp(const Vector& x, Vector& y) const;

  /// r = b - A x with CsrMatrix::residual's accumulation order
  /// (s = b_i, then s -= a_ij x_j in column order).
  void residual(const Vector& b, const Vector& x, Vector& r) const;

  /// OpenMP variant of residual.
  void residual_omp(const Vector& b, const Vector& x, Vector& r) const;

  /// x_out = x_in + d ∘ (b - A x_in): one fused damped-Jacobi sweep,
  /// bit-identical to residual() followed by x_out = x_in + d .* r.
  void fused_diag_sweep(const Vector& d, const Vector& b, const Vector& x_in,
                        Vector& x_out) const;

  /// OpenMP variant of fused_diag_sweep.
  void fused_diag_sweep_omp(const Vector& d, const Vector& b,
                            const Vector& x_in, Vector& x_out) const;

  /// tmp = r - A e with CsrMatrix::spmv accumulation order (s = sum a_ij
  /// e_j, then r_i - s): the fused restriction input kernel, bit-identical
  /// to spmv() followed by an elementwise subtraction.
  void fused_sub_spmv(const Vector& r, const Vector& e, Vector& tmp) const;

  /// OpenMP variant of fused_sub_spmv.
  void fused_sub_spmv_omp(const Vector& r, const Vector& e,
                          Vector& tmp) const;

  /// Approximate bytes streamed by one matrix pass (values at the stored
  /// scalar width + columns + chunk metadata), for the telemetry bytes-moved
  /// counters. Contiguous chunks skip the col_idx stream and read one base
  /// index per column.
  std::size_t pass_bytes() const {
    return stored_entries() * scalar_width(prec_) +
           (stored_entries() - contig_entries_) * sizeof(Index) +
           (ucol_base_.size() + chunk_ptr_.size() + chunk_width_.size() +
            slot_len_.size() + perm_.size()) *
               sizeof(Index);
  }

  /// Raw storage view for the src/backend SIMD kernels. The scalar kernels
  /// below remain the bitwise oracle every backend must reproduce.
  SellView view() const {
    SellView v;
    v.rows = rows_;
    v.cols = cols_;
    v.chunk = c_;
    v.prec = prec_;
    v.nchunks = chunk_width_.size();
    v.perm = perm_.data();
    v.slot_len = slot_len_.data();
    v.chunk_ptr = chunk_ptr_.data();
    v.chunk_width = chunk_width_.data();
    v.col_idx = col_idx_.data();
    if (prec_ == Precision::kF32) {
      v.values_f32 = values_f32_.data();
    } else {
      v.values = values_.data();
    }
    v.ucol_ofs = ucol_ofs_.data();
    v.ucol_base = ucol_base_.data();
    return v;
  }

  /// "rows x cols, nnz=…, C=…, sigma=…, padding=…%" summary line.
  std::string summary() const;

 private:
  // Core kernel: runs chunks [chunk_begin, chunk_end), multiplying against
  // `x`. `Op` supplies the per-row accumulator seed (init), the output write
  // (store), and whether products are subtracted (residual order) or added
  // (spmv order). Every concrete kernel is one Op instantiation, so the
  // entry walk — and therefore the floating-point ordering — is shared.
  // `VT` is the stored value type (double/float per prec_); products widen
  // to double and the accumulators stay double either way.
  template <class VT, class Op>
  void apply_chunks(const VT* va, const double* x, const Op& op,
                    std::size_t chunk_begin, std::size_t chunk_end) const;

  // Serial/OpenMP dispatch shared by the public kernels: the OpenMP path
  // splits chunks nnz-balanced across the team; chunks own disjoint output
  // rows, so results are identical for every thread count. run() picks the
  // stored value array by prec_ and forwards to the width-templated body.
  template <class Op>
  void run(const double* x, const Op& op, bool parallel) const;
  template <class VT, class Op>
  void run_values(const VT* va, const double* x, const Op& op,
                  bool parallel) const;

  Index rows_ = 0;
  Index cols_ = 0;
  Index nnz_ = 0;
  Index c_ = 8;
  Index sigma_ = 0;
  Precision prec_ = Precision::kF64;
  std::vector<Index> perm_;        // slot -> original row; -1 for pad slots
  std::vector<Index> slot_len_;    // nnz per slot (descending per chunk)
  std::vector<Index> chunk_ptr_;   // entry offset per chunk (size nchunks+1)
  std::vector<Index> chunk_width_; // widest row per chunk
  // The streamed slabs are cache-line aligned so the SIMD backends' vector
  // loads never split a line (util/aligned.hpp).
  AlignedVector<Index> col_idx_;   // column-major per chunk, padded
  AlignedVector<double> values_;   // padding is 0.0, never read (kF64)
  AlignedVector<float> values_f32_;  // stored values when prec_ == kF32
  // Contiguous-column fast path (see contiguous_chunks()): ucol_ofs_[ch] is
  // -1 for general chunks, else the offset into ucol_base_ of the chunk's
  // chunk_width_[ch] per-column base indices.
  std::vector<Index> ucol_ofs_;    // per chunk: offset into ucol_base_ or -1
  std::vector<Index> ucol_base_;   // x base index per contiguous column
  std::size_t n_contig_ = 0;       // chunks on the fast path
  std::size_t contig_entries_ = 0; // stored entries covered by the fast path
};

}  // namespace asyncmg
