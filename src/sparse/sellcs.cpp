#include "sparse/sellcs.hpp"

#include <omp.h>

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "sparse/kernels.hpp"
#include "sparse/parallel.hpp"
#include "sparse/sell_ops.hpp"
#include "util/partition.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

namespace {

/// Same gate as the CsrMatrix solve kernels: only fan out on client threads
/// over matrices large enough to amortize a team start, and never for a
/// one-thread team.
bool use_solve_omp(Index rows) { return solve_omp_eligible(rows); }

// The Op vocabulary for apply_chunks lives in sparse/sell_ops.hpp, shared
// with the SIMD backends so every backend runs identical seed/store
// arithmetic around the ISA-specific accumulation loop.
using sellops::DiagSweepOp;
using sellops::ResidualOp;
using sellops::SpmvOp;
using sellops::SubSpmvOp;

}  // namespace

template <class VT, class Op>
void SellMatrix::apply_chunks(const VT* va, const double* x, const Op& op,
                              std::size_t chunk_begin,
                              std::size_t chunk_end) const {
  const Index c = c_;
  double acc[kMaxChunk];
  for (std::size_t ch = chunk_begin; ch < chunk_end; ++ch) {
    const std::size_t s0 = ch * static_cast<std::size_t>(c);
    // Pad slots (perm == -1) trail the final chunk; real slots before them
    // all get an accumulator, even empty rows (their seed is the result).
    Index lanes = c;
    while (lanes > 0 && perm_[s0 + static_cast<std::size_t>(lanes) - 1] < 0) {
      --lanes;
    }
    for (Index lane = 0; lane < lanes; ++lane) {
      acc[lane] = op.init(perm_[s0 + static_cast<std::size_t>(lane)]);
    }
    const VT* vals = va + chunk_ptr_[ch];
    const Index* cols = col_idx_.data() + chunk_ptr_[ch];
    const Index width = chunk_width_[ch];
    if (ucol_ofs_[ch] >= 0) {
      // Contiguous-column chunk (see contiguous_chunks()): every lane is
      // full width and the C columns at each j are consecutive, so x is
      // read unit-stride from one base per column and the col_idx stream
      // is skipped entirely. Constant trip counts let the compiler unroll
      // and keep the accumulators in registers. The per-lane accumulation
      // order is identical to the general path below.
      const Index* ub = ucol_base_.data() + ucol_ofs_[ch];
      for (Index j = 0; j < width; ++j) {
        const VT* v = vals + static_cast<std::size_t>(j) * c;
        const double* xs = x + static_cast<std::size_t>(ub[j]);
        for (Index lane = 0; lane < c; ++lane) {
          const double p = v[lane] * xs[lane];
          if constexpr (Op::kSubtract) {
            acc[lane] -= p;
          } else {
            acc[lane] += p;
          }
        }
      }
      for (Index lane = 0; lane < lanes; ++lane) {
        op.store(perm_[s0 + static_cast<std::size_t>(lane)], acc[lane]);
      }
      continue;
    }
    if (lanes == c && slot_len_[s0 + static_cast<std::size_t>(c) - 1] == width) {
      // Uniform chunk (every lane holds `width` entries — the common case
      // after the sigma sort): constant-trip lane loop with no prefix
      // tracking, so the compiler can unroll and keep acc in registers.
      // Identical per-lane accumulation order to the general path below.
      for (Index j = 0; j < width; ++j) {
        const VT* v = vals + static_cast<std::size_t>(j) * c;
        const Index* cc = cols + static_cast<std::size_t>(j) * c;
        for (Index lane = 0; lane < c; ++lane) {
          const double p = v[lane] * x[static_cast<std::size_t>(cc[lane])];
          if constexpr (Op::kSubtract) {
            acc[lane] -= p;
          } else {
            acc[lane] += p;
          }
        }
      }
      for (Index lane = 0; lane < lanes; ++lane) {
        op.store(perm_[s0 + static_cast<std::size_t>(lane)], acc[lane]);
      }
      continue;
    }
    Index active = lanes;
    for (Index j = 0; j < width; ++j) {
      // Slot lengths are descending within the chunk, so the lanes still
      // holding entries at column j form a prefix; padding is never read.
      while (active > 0 &&
             slot_len_[s0 + static_cast<std::size_t>(active) - 1] <= j) {
        --active;
      }
      const VT* v = vals + static_cast<std::size_t>(j) * c;
      const Index* cc = cols + static_cast<std::size_t>(j) * c;
      for (Index lane = 0; lane < active; ++lane) {
        const double p =
            v[lane] * x[static_cast<std::size_t>(cc[lane])];
        if constexpr (Op::kSubtract) {
          acc[lane] -= p;
        } else {
          acc[lane] += p;
        }
      }
    }
    for (Index lane = 0; lane < lanes; ++lane) {
      op.store(perm_[s0 + static_cast<std::size_t>(lane)], acc[lane]);
    }
  }
}

template <class Op>
void SellMatrix::run(const double* x, const Op& op, bool parallel) const {
  if (prec_ == Precision::kF32) {
    run_values(values_f32_.data(), x, op, parallel);
  } else {
    run_values(values_.data(), x, op, parallel);
  }
}

template <class VT, class Op>
void SellMatrix::run_values(const VT* va, const double* x, const Op& op,
                            bool parallel) const {
  const std::size_t nchunks = chunk_width_.size();
  if (!parallel || nchunks <= 1) {
    apply_chunks(va, x, op, 0, nchunks);
    return;
  }
  const std::span<const Index> prefix(chunk_ptr_);
#pragma omp parallel
  {
    const auto nt = static_cast<std::size_t>(omp_get_num_threads());
    const auto t = static_cast<std::size_t>(omp_get_thread_num());
    const Range rg = nnz_balanced_chunk(prefix, nt, t);
    apply_chunks(va, x, op, rg.begin, rg.end);
  }
}

SellMatrix SellMatrix::from_csr(const CsrMatrix& a, Index chunk, Index sigma) {
  if (chunk < 1 || chunk > kMaxChunk) {
    throw std::invalid_argument("SellMatrix: chunk out of [1, kMaxChunk]");
  }
  SellMatrix m;
  m.rows_ = a.rows();
  m.cols_ = a.cols();
  m.nnz_ = a.nnz();
  m.c_ = chunk;
  // Window: at least one chunk, whole chunks only, so each chunk is an
  // interval of one sorted window and lengths descend within it.
  Index win = std::max(sigma, chunk);
  win = (win + chunk - 1) / chunk * chunk;
  m.sigma_ = win;

  const auto n = static_cast<std::size_t>(m.rows_);
  const auto c = static_cast<std::size_t>(chunk);
  const std::size_t nslots = (n + c - 1) / c * c;
  const std::size_t nchunks = nslots / c;
  const auto rp = a.row_ptr();
  const auto row_len = [&](Index i) {
    return rp[static_cast<std::size_t>(i) + 1] - rp[static_cast<std::size_t>(i)];
  };

  m.perm_.assign(nslots, Index{-1});
  std::iota(m.perm_.begin(), m.perm_.begin() + static_cast<std::ptrdiff_t>(n),
            Index{0});
  for (std::size_t w0 = 0; w0 < n; w0 += static_cast<std::size_t>(win)) {
    const std::size_t w1 = std::min(n, w0 + static_cast<std::size_t>(win));
    std::stable_sort(m.perm_.begin() + static_cast<std::ptrdiff_t>(w0),
                     m.perm_.begin() + static_cast<std::ptrdiff_t>(w1),
                     [&](Index p, Index q) { return row_len(p) > row_len(q); });
  }

  m.slot_len_.assign(nslots, 0);
  for (std::size_t s = 0; s < n; ++s) m.slot_len_[s] = row_len(m.perm_[s]);

  m.chunk_width_.resize(nchunks);
  m.chunk_ptr_.resize(nchunks + 1);
  m.chunk_ptr_[0] = 0;
  std::size_t total = 0;
  for (std::size_t ch = 0; ch < nchunks; ++ch) {
    // Descending within the chunk: the first slot is the widest.
    const Index width = m.slot_len_[ch * c];
    m.chunk_width_[ch] = width;
    total += static_cast<std::size_t>(width) * c;
    if (total > static_cast<std::size_t>(std::numeric_limits<Index>::max())) {
      throw std::overflow_error("SellMatrix: padded entries exceed Index");
    }
    m.chunk_ptr_[ch + 1] = static_cast<Index>(total);
  }

  m.col_idx_.assign(total, 0);
  m.prec_ = a.precision();
  if (m.prec_ == Precision::kF32) {
    m.values_f32_.assign(total, 0.0f);
  } else {
    m.values_.assign(total, 0.0);
  }
  const auto ci = a.col_idx();
  a.with_values([&](const auto* av) {
    const auto scatter = [&](auto* dst_vals) {
      for (std::size_t ch = 0; ch < nchunks; ++ch) {
        const auto base = static_cast<std::size_t>(m.chunk_ptr_[ch]);
        for (std::size_t lane = 0; lane < c; ++lane) {
          const Index row = m.perm_[ch * c + lane];
          if (row < 0) continue;
          const auto kb =
              static_cast<std::size_t>(rp[static_cast<std::size_t>(row)]);
          const auto ke =
              static_cast<std::size_t>(rp[static_cast<std::size_t>(row) + 1]);
          for (std::size_t k = kb; k < ke; ++k) {
            const std::size_t dst = base + (k - kb) * c + lane;
            m.col_idx_[dst] = ci[k];
            dst_vals[dst] = av[k];
          }
        }
      }
    };
    if (m.prec_ == Precision::kF32) {
      scatter(m.values_f32_.data());
    } else {
      scatter(m.values_.data());
    }
  });

  // Contiguous-column detection: a chunk qualifies when every lane is a
  // real row of full chunk width and, at each column j, the lane columns
  // are consecutive. The stable sigma sort keeps equal-length neighbors in
  // original order, so structured-grid stencils qualify for most interior
  // chunks. Qualifying chunks multiply from ucol_base_ with unit-stride x
  // reads and never touch col_idx_ (see apply_chunks).
  m.ucol_ofs_.assign(nchunks, Index{-1});
  for (std::size_t ch = 0; ch < nchunks; ++ch) {
    const Index width = m.chunk_width_[ch];
    bool contig = m.perm_[ch * c + c - 1] >= 0 &&
                  m.slot_len_[ch * c + c - 1] == width;
    const Index* cc = m.col_idx_.data() + m.chunk_ptr_[ch];
    for (Index j = 0; j < width && contig; ++j) {
      const Index b0 = cc[static_cast<std::size_t>(j) * c];
      for (std::size_t lane = 1; lane < c; ++lane) {
        if (cc[static_cast<std::size_t>(j) * c + lane] !=
            b0 + static_cast<Index>(lane)) {
          contig = false;
          break;
        }
      }
    }
    if (!contig) continue;
    m.ucol_ofs_[ch] = static_cast<Index>(m.ucol_base_.size());
    for (Index j = 0; j < width; ++j) {
      m.ucol_base_.push_back(cc[static_cast<std::size_t>(j) * c]);
    }
    ++m.n_contig_;
    m.contig_entries_ += static_cast<std::size_t>(width) * c;
  }
  // The streamed slabs come from the kKernelAlign allocator; the SIMD
  // backends rely on the bases being cache-line aligned.
  assert(is_kernel_aligned(m.col_idx_.data()));
  assert(is_kernel_aligned(m.values_.data()) &&
         is_kernel_aligned(m.values_f32_.data()));
  return m;
}

void SellMatrix::spmv(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.resize(static_cast<std::size_t>(rows_));
  run(x.data(), SpmvOp{y.data()}, false);
}

void SellMatrix::spmv_omp(const Vector& x, Vector& y) const {
  assert(static_cast<Index>(x.size()) == cols_);
  y.resize(static_cast<std::size_t>(rows_));
  run(x.data(), SpmvOp{y.data()}, use_solve_omp(rows_));
}

void SellMatrix::residual(const Vector& b, const Vector& x, Vector& r) const {
  assert(static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x.size()) == cols_);
  r.resize(static_cast<std::size_t>(rows_));
  run(x.data(), ResidualOp{b.data(), r.data()}, false);
}

void SellMatrix::residual_omp(const Vector& b, const Vector& x,
                              Vector& r) const {
  assert(static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x.size()) == cols_);
  r.resize(static_cast<std::size_t>(rows_));
  run(x.data(), ResidualOp{b.data(), r.data()}, use_solve_omp(rows_));
}

void SellMatrix::fused_diag_sweep(const Vector& d, const Vector& b,
                                  const Vector& x_in, Vector& x_out) const {
  assert(rows_ == cols_ && static_cast<Index>(d.size()) == rows_ &&
         static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x_in.size()) == rows_ && &x_in != &x_out);
  x_out.resize(static_cast<std::size_t>(rows_));
  run(x_in.data(), DiagSweepOp{b.data(), d.data(), x_in.data(), x_out.data()},
      false);
}

void SellMatrix::fused_diag_sweep_omp(const Vector& d, const Vector& b,
                                      const Vector& x_in,
                                      Vector& x_out) const {
  assert(rows_ == cols_ && static_cast<Index>(d.size()) == rows_ &&
         static_cast<Index>(b.size()) == rows_ &&
         static_cast<Index>(x_in.size()) == rows_ && &x_in != &x_out);
  x_out.resize(static_cast<std::size_t>(rows_));
  run(x_in.data(), DiagSweepOp{b.data(), d.data(), x_in.data(), x_out.data()},
      use_solve_omp(rows_));
}

void SellMatrix::fused_sub_spmv(const Vector& r, const Vector& e,
                                Vector& tmp) const {
  assert(static_cast<Index>(r.size()) == rows_ &&
         static_cast<Index>(e.size()) == cols_);
  tmp.resize(static_cast<std::size_t>(rows_));
  run(e.data(), SubSpmvOp{r.data(), tmp.data()}, false);
}

void SellMatrix::fused_sub_spmv_omp(const Vector& r, const Vector& e,
                                    Vector& tmp) const {
  assert(static_cast<Index>(r.size()) == rows_ &&
         static_cast<Index>(e.size()) == cols_);
  tmp.resize(static_cast<std::size_t>(rows_));
  run(e.data(), SubSpmvOp{r.data(), tmp.data()}, use_solve_omp(rows_));
}

std::string SellMatrix::summary() const {
  std::ostringstream os;
  const std::size_t stored = stored_entries();
  const double pad_pct = stored == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(padded_entries()) /
                                   static_cast<double>(stored);
  const double contig_pct = stored == 0
                                ? 0.0
                                : 100.0 * static_cast<double>(contig_entries_) /
                                      static_cast<double>(stored);
  os << rows_ << " x " << cols_ << ", nnz=" << nnz_ << ", C=" << c_
     << ", sigma=" << sigma_ << ", padding=" << pad_pct
     << "%, contig=" << contig_pct << "%";
  if (prec_ != Precision::kF64) os << ", " << precision_name(prec_);
  return os.str();
}

}  // namespace asyncmg
