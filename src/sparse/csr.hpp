#pragma once
// Compressed sparse row matrix and its core kernels.
//
// This is the workhorse data structure of the library: every operator in the
// multigrid hierarchy (A_k, P_{k+1}^k, smoothed interpolants Pbar, Galerkin
// products) is a CsrMatrix. Kernels come in whole-matrix and row-range forms;
// the range forms are what the per-grid thread teams of the asynchronous
// runtime execute (Section IV of the paper).

#include <cassert>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "sparse/types.hpp"

namespace asyncmg {

/// One coordinate-format entry, used while assembling matrices.
struct Triplet {
  Index row = 0;
  Index col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Empty m x n matrix (all zeros).
  CsrMatrix(Index rows, Index cols);

  /// Build from coordinate triplets; duplicate (row, col) entries are summed,
  /// explicit zeros produced by cancellation are kept (harmless). Column
  /// indices end up sorted within each row.
  static CsrMatrix from_triplets(Index rows, Index cols,
                                 std::vector<Triplet> triplets);

  /// Build directly from CSR arrays (validated).
  static CsrMatrix from_csr(Index rows, Index cols, std::vector<Index> row_ptr,
                            std::vector<Index> cols_idx,
                            std::vector<double> values);

  /// n x n identity.
  static CsrMatrix identity(Index n);

  /// n x n diagonal matrix from a vector of diagonal entries.
  static CsrMatrix diagonal(const Vector& d);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index nnz() const {
    return static_cast<Index>(prec_ == Precision::kF32 ? values_f32_.size()
                                                       : values_.size());
  }

  std::span<const Index> row_ptr() const { return row_ptr_; }
  std::span<const Index> col_idx() const { return col_idx_; }

  /// Stored scalar width of the value array. Matrices are assembled in fp64;
  /// convert_precision() narrows coarse-level operators after setup.
  Precision precision() const { return prec_; }

  /// fp64 value array; only valid when precision() == kF64 (the assembly,
  /// setup, and oracle paths). Reduced-precision matrices expose values_f32()
  /// or the width-generic with_values() below.
  std::span<const double> values() const {
    assert(prec_ == Precision::kF64);
    return values_;
  }
  std::span<double> values_mutable() {
    assert(prec_ == Precision::kF64);
    return values_;
  }

  /// fp32 value array; only valid when precision() == kF32.
  std::span<const float> values_f32() const {
    assert(prec_ == Precision::kF32);
    return values_f32_;
  }

  /// Width-generic value access: invokes `fn` with the stored value pointer
  /// (`const double*` or `const float*`), instantiating the caller's loop
  /// body once per width so products still accumulate in double (float
  /// operands promote). This is how every solve kernel and the triangular
  /// smoother substitutions stay precision-agnostic without a per-entry
  /// branch.
  template <class Fn>
  decltype(auto) with_values(Fn&& fn) const {
    return prec_ == Precision::kF32 ? fn(values_f32_.data())
                                    : fn(values_.data());
  }

  /// Converts the stored value array. kF64 -> kF32 rounds each entry to the
  /// nearest float and frees the fp64 array (this is the lossy
  /// demotion applied to coarse levels by the precision policy); kF32 ->
  /// kF64 widens exactly. No-op when already at `p`.
  void convert_precision(Precision p);

  /// Bytes held by the value array at the stored width (cache accounting).
  std::size_t value_bytes() const {
    return static_cast<std::size_t>(nnz()) * scalar_width(prec_);
  }

  /// Entry lookup (binary search within the row); zero when absent.
  double at(Index i, Index j) const;

  /// Main diagonal as a dense vector (zero where absent).
  Vector diag() const;

  /// Row-wise l1 norms: sum_j |a_ij| (the l1-Jacobi smoothing matrix).
  Vector l1_row_norms() const;

  /// y = A x.
  void spmv(const Vector& x, Vector& y) const;

  /// y = A x restricted to rows [row_begin, row_end) of y; other rows of y
  /// are untouched. Used by thread teams.
  void spmv_rows(const Vector& x, Vector& y, Index row_begin,
                 Index row_end) const;

  /// y = A x with an OpenMP parallel loop (static schedule). Falls back to
  /// the serial body on SolverPool workers and small matrices; results are
  /// identical to spmv either way.
  void spmv_omp(const Vector& x, Vector& y) const;

  /// y += alpha * A x.
  void spmv_add(const Vector& x, Vector& y, double alpha = 1.0) const;

  /// OpenMP variant of spmv_add (same pool-worker fallback as spmv_omp).
  void spmv_add_omp(const Vector& x, Vector& y, double alpha = 1.0) const;

  /// r = b - A x.
  void residual(const Vector& b, const Vector& x, Vector& r) const;

  /// OpenMP variant of residual (same pool-worker fallback as spmv_omp).
  void residual_omp(const Vector& b, const Vector& x, Vector& r) const;

  /// r = b - A x restricted to rows [row_begin, row_end).
  void residual_rows(const Vector& b, const Vector& x, Vector& r,
                     Index row_begin, Index row_end) const;

  /// Transpose (explicit). Parallelized over contiguous source-row blocks
  /// (per-block bucket counts + prefix-sum scatter); the output is identical
  /// to the serial transpose for every thread count. `num_threads` 0 means
  /// the OpenMP default.
  CsrMatrix transpose(int num_threads = 0) const;

  /// y = A^T x (without forming the transpose).
  void spmv_transpose(const Vector& x, Vector& y) const;

  /// Scale rows: A <- diag(s) A.
  void scale_rows(const Vector& s);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Structural + numerical equality within `tol` (same shape; entries
  /// compared densely per row, so differing sparsity with equal values is
  /// still equal).
  bool approx_equal(const CsrMatrix& other, double tol = 1e-12) const;

  /// True when every row's column indices are strictly increasing.
  bool rows_sorted() const;

  /// True when the sparsity pattern and values are symmetric within tol.
  bool is_symmetric(double tol = 1e-10) const;

  /// Human-readable one-line summary ("rows x cols, nnz=...").
  std::string summary() const;

 private:
  Index rows_ = 0;
  Index cols_ = 0;
  Precision prec_ = Precision::kF64;
  std::vector<Index> row_ptr_;  // size rows_+1
  std::vector<Index> col_idx_;  // size nnz
  std::vector<double> values_;      // size nnz when prec_ == kF64, else empty
  std::vector<float> values_f32_;   // size nnz when prec_ == kF32, else empty
};

}  // namespace asyncmg
