#include "sparse/vec.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace asyncmg {

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  axpy_range(alpha, x, y, 0, x.size());
}

void axpy_range(double alpha, const Vector& x, Vector& y, std::size_t begin,
                std::size_t end) {
  assert(end <= x.size() && end <= y.size());
  for (std::size_t i = begin; i < end; ++i) y[i] += alpha * x[i];
}

void scale(Vector& x, double alpha) {
  for (double& v : x) v *= alpha;
}

double dot(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

double norm2(const Vector& x) { return std::sqrt(dot(x, x)); }

double norm_inf(const Vector& x) {
  double m = 0.0;
  for (double v : x) m = std::max(m, std::abs(v));
  return m;
}

void fill(Vector& x, double value) {
  for (double& v : x) v = value;
}

void hadamard(const Vector& d, const Vector& x, Vector& y) {
  assert(d.size() == x.size());
  y.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
}

Vector random_vector(std::size_t n, Rng& rng, double lo, double hi) {
  Vector v(n);
  for (double& e : v) e = rng.uniform(lo, hi);
  return v;
}

}  // namespace asyncmg
