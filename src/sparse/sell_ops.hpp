#pragma once
// The Op vocabulary of the SELL-C-σ kernels, shared by the scalar engine
// (sellcs.cpp) and the SIMD backends (src/backend/simd_*.cpp).
//
// kSubtract selects the accumulation order: residual-style ops seed with
// b[row] and subtract products (matching CsrMatrix::residual), spmv-style
// ops seed with 0 and add (matching CsrMatrix::spmv). The two orders are
// NOT interchangeable bitwise, which is why each fused kernel documents the
// reference it mirrors.
//
// Every backend runs the same init/store arithmetic through these structs;
// only the product-accumulation loop between them is ISA-specific, and that
// loop preserves each row's serial left-to-right order (one SIMD lane per
// row). That is the whole bitwise-identity argument — see DESIGN.md §15.

#include "sparse/types.hpp"

namespace asyncmg {
namespace sellops {

struct SpmvOp {  // y = A x
  static constexpr bool kSubtract = false;
  double* y;
  double init(Index) const { return 0.0; }
  void store(Index row, double s) const {
    y[static_cast<std::size_t>(row)] = s;
  }
};

struct ResidualOp {  // r = b - A x
  static constexpr bool kSubtract = true;
  const double* b;
  double* r;
  double init(Index row) const { return b[static_cast<std::size_t>(row)]; }
  void store(Index row, double s) const {
    r[static_cast<std::size_t>(row)] = s;
  }
};

struct DiagSweepOp {  // x_out = x_in + d .* (b - A x_in)
  static constexpr bool kSubtract = true;
  const double* b;
  const double* d;
  const double* x_in;
  double* x_out;
  double init(Index row) const { return b[static_cast<std::size_t>(row)]; }
  void store(Index row, double s) const {
    const auto i = static_cast<std::size_t>(row);
    x_out[i] = x_in[i] + d[i] * s;
  }
};

struct SubSpmvOp {  // tmp = r - A e (spmv order: full sum, then subtract)
  static constexpr bool kSubtract = false;
  const double* r;
  double* tmp;
  double init(Index) const { return 0.0; }
  void store(Index row, double s) const {
    const auto i = static_cast<std::size_t>(row);
    tmp[i] = r[i] - s;
  }
};

}  // namespace sellops
}  // namespace asyncmg
