#pragma once
// Halo-aware local stencil: the rows of a global CSR matrix owned by one
// shard, with column indices renumbered into that shard's local vector
// layout [owned rows; ghost (halo) entries].
//
// The renumbering only relabels columns -- the in-row entry order of the
// global matrix is preserved exactly -- so the local SpMV/residual visit
// the same values in the same order as the global row-range kernels. When
// the local vector holds the true global values (fresh halo), the results
// are bitwise identical to CsrMatrix::spmv_rows / residual_rows on the
// global matrix; a stale halo changes only the x values read, never the
// arithmetic order. That property is what lets the sharded executor's
// bulk-synchronous discipline reproduce the single-shard oracle bit for
// bit at any shard count (src/shard).

#include <span>

#include "sparse/csr.hpp"

namespace asyncmg {

class LocalStencil {
 public:
  LocalStencil() = default;

  /// Rows [row_begin, row_end) of `a` with every column index g replaced by
  /// global_to_local[g]. `local_cols` is the local vector length (owned +
  /// ghosts). Throws std::invalid_argument when a referenced column maps to
  /// a negative local index or out of range.
  static LocalStencil from_rows(const CsrMatrix& a, Index row_begin,
                                Index row_end,
                                std::span<const Index> global_to_local,
                                Index local_cols);

  Index rows() const { return static_cast<Index>(row_ptr_.size()) - 1; }
  Index local_cols() const { return local_cols_; }
  Index nnz() const { return static_cast<Index>(values_.size()); }
  Index row_begin() const { return row_begin_; }

  /// y = A_loc x_local; y is resized to rows().
  void spmv(const Vector& x_local, Vector& y) const;

  /// Owned rows of the global residual, written in place at their global
  /// positions: r_full[row_begin + i] = b_full[row_begin + i] - (A x)_i.
  /// b_full and r_full are full-length global vectors; x_local is the local
  /// [owned; ghost] vector.
  void residual_into(const Vector& b_full, const Vector& x_local,
                     Vector& r_full) const;

 private:
  Index row_begin_ = 0;
  Index local_cols_ = 0;
  std::vector<Index> row_ptr_;  // local, size rows+1
  std::vector<Index> col_idx_;  // local indices, global in-row order
  std::vector<double> values_;
};

}  // namespace asyncmg
