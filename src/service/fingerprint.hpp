#pragma once
// Content fingerprint of a CSR matrix: shape + nnz + a 64-bit FNV-1a hash
// over the row pointers, column indices, and values. The HierarchyCache
// keys completed AMG setups by this fingerprint, so two byte-identical
// matrices share one setup while any structural or numerical change (even a
// single value bit) maps to a different entry.

#include <cstddef>
#include <cstdint>
#include <string>

#include "sparse/csr.hpp"

namespace asyncmg {

struct MatrixFingerprint {
  Index rows = 0;
  Index cols = 0;
  Index nnz = 0;
  std::uint64_t hash = 0;

  bool operator==(const MatrixFingerprint&) const = default;

  /// Compact key string, e.g. "3375x3375-n22475-h1a2b3c4d5e6f708"; stable
  /// across runs, used for spill file names and JSON stats.
  std::string to_string() const;
};

MatrixFingerprint matrix_fingerprint(const CsrMatrix& a);

/// FNV-1a over an arbitrary byte range, seedable for chaining.
std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                          std::uint64_t seed = 14695981039346656037ull);

struct MatrixFingerprintHasher {
  std::size_t operator()(const MatrixFingerprint& f) const {
    // The content hash already mixes everything; fold in the shape cheaply.
    return static_cast<std::size_t>(
        f.hash ^ (static_cast<std::uint64_t>(f.rows) << 32) ^
        static_cast<std::uint64_t>(f.nnz));
  }
};

}  // namespace asyncmg
