#include "service/solve_service.hpp"

#include <sstream>
#include <utility>

#include "service/background_setup.hpp"
#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/stats.hpp"

namespace asyncmg {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// V-cycle loop with a wall-clock deadline: stops after the cycle that
/// crosses `deadline` (absolute, 0-disabled via has_deadline) and reports
/// the best-so-far iterate in x.
SolveStats solve_with_deadline(const MgSetup& s, const Vector& b, Vector& x,
                               int t_max, double tol, bool has_deadline,
                               Clock::time_point deadline, bool& timed_out) {
  MultiplicativeMg mg(s);
  SolveStats stats;
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  Vector r;
  const auto t0 = Clock::now();
  s.a(0).residual(b, x, r);
  stats.rel_res_history.push_back(norm2(r) * scale);
  for (int t = 0; t < t_max; ++t) {
    if (has_deadline && Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    mg.cycle(b, x);
    ++stats.cycles;
    s.a(0).residual(b, x, r);
    const double rr = norm2(r) * scale;
    stats.rel_res_history.push_back(rr);
    if (tol > 0.0 && rr < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.seconds = seconds_since(t0);
  return stats;
}

/// Cold-path loop against a BackgroundSetup: each iteration tries one
/// cooperative builder step (try-lock; returns instantly while the lane is
/// mid-step), re-snapshots when new levels landed, and cycles on the
/// deepest ready prefix. Converges on whatever depth is available; once the
/// build completes the loop runs the full cycle, LU coarse solve included.
SolveStats solve_with_background(BackgroundSetup& bg, const Vector& b,
                                 Vector& x, int t_max, double tol,
                                 bool has_deadline, Clock::time_point deadline,
                                 bool& timed_out,
                                 std::size_t& partial_cycles) {
  SolveStats stats;
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  Vector r;
  const auto t0 = Clock::now();

  std::shared_ptr<const MgSetup> setup = bg.snapshot();
  auto mg = std::make_unique<MultiplicativeMg>(*setup);
  setup->a(0).residual(b, x, r);
  stats.rel_res_history.push_back(norm2(r) * scale);
  for (int t = 0; t < t_max; ++t) {
    if (has_deadline && Clock::now() >= deadline) {
      timed_out = true;
      break;
    }
    bg.advance();
    if (bg.ready_levels() > setup->num_levels()) {
      std::shared_ptr<const MgSetup> deeper = bg.snapshot();
      if (deeper != setup) {
        setup = std::move(deeper);
        mg = std::make_unique<MultiplicativeMg>(*setup);
      }
    }
    const bool partial = setup != bg.full();  // this cycle's hierarchy
    mg->cycle(b, x);
    ++stats.cycles;
    if (partial) ++partial_cycles;
    setup->a(0).residual(b, x, r);
    const double rr = norm2(r) * scale;
    stats.rel_res_history.push_back(rr);
    if (tol > 0.0 && rr < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.seconds = seconds_since(t0);
  return stats;
}

}  // namespace

std::string ServiceStats::to_json() const {
  std::ostringstream o;
  o.precision(9);
  o << "{"
    << "\"submitted\":" << submitted << ","
    << "\"completed\":" << completed << ","
    << "\"rejected\":" << rejected << ","
    << "\"timed_out\":" << timed_out << ","
    << "\"queue_depth\":" << queue_depth << ","
    << "\"background\":{"
    << "\"partial_solves\":" << partial_solves << ","
    << "\"partial_cycles\":" << partial_cycles << ","
    << "\"setup_fallbacks\":" << setup_fallbacks << "},"
    << "\"cache\":{"
    << "\"hits\":" << cache.hits << ","
    << "\"misses\":" << cache.misses << ","
    << "\"setups_built\":" << cache.setups_built << ","
    << "\"evictions\":" << cache.evictions << ","
    << "\"spill_writes\":" << cache.spill_writes << ","
    << "\"spill_loads\":" << cache.spill_loads << ","
    << "\"resident_bytes\":" << cache.resident_bytes << ","
    << "\"resident_entries\":" << cache.resident_entries << "},"
    << "\"latency_p50\":" << latency_p50 << ","
    << "\"latency_p95\":" << latency_p95 << ","
    << "\"latency_mean\":" << latency_mean << "}";
  return o.str();
}

SolveService::SolveService(ServiceOptions opts) : opts_(std::move(opts)) {
  // Cache-miss setups run under the cache mutex (one at a time), so they may
  // use the pool's whole thread budget without oversubscribing the machine.
  if (opts_.cache.mg.amg.setup_threads == 0) {
    opts_.cache.mg.amg.setup_threads = static_cast<int>(opts_.num_threads);
  }
  if (opts_.cache.telemetry == nullptr) {
    opts_.cache.telemetry = opts_.telemetry;
  }
  cache_ = std::make_unique<HierarchyCache>(opts_.cache);
  pool_ = std::make_unique<SolverPool>(opts_.num_threads);
  pool_->set_telemetry(opts_.telemetry);
}

SolveService::~SolveService() {
  pool_->wait_idle();
  // pool_ is the first member destroyed; its destructor joins the workers.
}

std::future<SolveResponse> SolveService::submit(CsrMatrix a, Vector b,
                                                RequestOptions ropts) {
  TelemetrySink* const tel =
      (opts_.telemetry != nullptr && opts_.telemetry->enabled())
          ? opts_.telemetry
          : nullptr;
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> g(stats_mu_);
    if (in_flight_ >= opts_.max_queue) {
      ++rejected_;
      if (tel != nullptr) {
        tel->metrics().counter("service.rejected").add(1);
      }
      throw ServiceOverloaded();
    }
    ++in_flight_;
    ++submitted_;
    depth = in_flight_;
  }
  if (tel != nullptr) {
    tel->record_control(EventKind::kQueueDepth,
                        static_cast<std::int64_t>(depth));
    tel->metrics().gauge("service.queue_depth").set(
        static_cast<double>(depth));
    tel->metrics().counter("service.submitted").add(1);
  }
  auto promise = std::make_shared<std::promise<SolveResponse>>();
  std::future<SolveResponse> fut = promise->get_future();
  const auto submitted_at = Clock::now();
  pool_->post([this, a = std::move(a), b = std::move(b), ropts, submitted_at,
               promise]() mutable {
    execute(std::move(a), std::move(b), ropts, submitted_at,
            std::move(promise));
  });
  return fut;
}

void SolveService::execute(
    CsrMatrix a, Vector b, RequestOptions ropts,
    std::chrono::steady_clock::time_point submitted,
    std::shared_ptr<std::promise<SolveResponse>> promise) {
  SolveResponse resp;
  std::exception_ptr error;
  try {
    resp.queue_seconds = seconds_since(submitted);

    const bool has_deadline = ropts.timeout_seconds > 0.0;
    const auto deadline =
        submitted + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(ropts.timeout_seconds));

    if (has_deadline && Clock::now() >= deadline) {
      // Expired while queued: the zero initial guess is the best-so-far
      // iterate, with exact relative residual 1. Skips the setup entirely.
      resp.x.assign(b.size(), 0.0);
      resp.stats.rel_res_history.push_back(1.0);
      resp.timed_out = true;
    } else {
      const int t_max = ropts.t_max > 0 ? ropts.t_max : opts_.default_t_max;
      const double tol = ropts.tol > 0.0 ? ropts.tol : opts_.default_tol;
      resp.x.assign(b.size(), 0.0);

      std::shared_ptr<BackgroundSetup> bg;
      std::shared_ptr<const MgSetup> setup;
      MatrixFingerprint key{};
      if (opts_.background_setup) {
        key = matrix_fingerprint(a);
        setup = cache_->lookup(key, &resp.cache_hit);
        if (!setup) {
          BackgroundSetupOptions bo;
          bo.mg = opts_.cache.mg;
          bo.pool = pool_.get();
          bo.telemetry = opts_.telemetry;
          bo.fail_after_levels = opts_.background_fail_after_levels;
          bg = std::make_shared<BackgroundSetup>(std::move(a), bo);
          bg->start();
        }
      } else {
        setup = cache_->get_or_build(a, &resp.cache_hit);
      }
      a = CsrMatrix();  // the setup/builder owns its own copy

      if (bg) {
        resp.stats =
            solve_with_background(*bg, b, resp.x, t_max, tol, has_deadline,
                                  deadline, resp.timed_out,
                                  resp.partial_cycles);
        resp.partial_setup = resp.partial_cycles > 0;
        // Register the finished setup so later requests are warm. If the
        // solve converged before the build did, a detached pool task
        // finishes it -- pool tasks may block on the step lock (that holder
        // is making progress), just never on the pool itself.
        if (std::shared_ptr<const MgSetup> built = bg->full()) {
          cache_->insert(key, std::move(built));
        } else {
          pool_->post([bg, key, cache = cache_.get()]() {
            cache->insert(key, bg->wait_full());
          });
        }
        const bool fell_back = bg->fell_back();
        const std::lock_guard<std::mutex> g(stats_mu_);
        if (resp.partial_setup) ++partial_solves_;
        partial_cycles_ += resp.partial_cycles;
        if (fell_back) ++setup_fallbacks_;
      } else {
        resp.stats =
            solve_with_deadline(*setup, b, resp.x, t_max, tol, has_deadline,
                                deadline, resp.timed_out);
      }
    }
  } catch (...) {
    error = std::current_exception();
  }
  // Bookkeeping strictly before the promise resolves: a client that calls
  // stats() right after future.get() must see this request as completed.
  const double latency = seconds_since(submitted);
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> g(stats_mu_);
    --in_flight_;
    ++completed_;
    if (!error && resp.timed_out) ++timed_out_;
    latencies_.push_back(latency);
    depth = in_flight_;
  }
  if (TelemetrySink* const tel = opts_.telemetry;
      tel != nullptr && tel->enabled()) {
    tel->record_control(EventKind::kQueueDepth,
                        static_cast<std::int64_t>(depth));
    tel->metrics().gauge("service.queue_depth").set(
        static_cast<double>(depth));
    tel->metrics().counter("service.completed").add(1);
    tel->metrics().histogram("service.latency_seconds").observe(latency);
  }
  if (error) {
    promise->set_exception(error);
  } else {
    promise->set_value(std::move(resp));
  }
}

std::vector<BatchResult> SolveService::solve_batch(
    const CsrMatrix& a, const std::vector<Vector>& rhs, BatchOptions opts) {
  if (opts.t_max <= 0) opts.t_max = opts_.default_t_max;
  if (opts.tol <= 0.0) opts.tol = opts_.default_tol;
  BatchSolver batch(cache_->get_or_build(a), pool_.get(), opts);
  return batch.solve_all(rhs);
}

ServiceStats SolveService::stats() const {
  ServiceStats s;
  std::vector<double> lat;
  {
    const std::lock_guard<std::mutex> g(stats_mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.timed_out = timed_out_;
    s.queue_depth = in_flight_;
    s.partial_solves = partial_solves_;
    s.partial_cycles = partial_cycles_;
    s.setup_fallbacks = setup_fallbacks_;
    lat = latencies_;
  }
  s.cache = cache_->stats();
  if (!lat.empty()) {
    s.latency_mean = mean(lat);
    s.latency_p50 = percentile(lat, 50.0);
    s.latency_p95 = percentile(lat, 95.0);
  }
  return s;
}

std::string SolveService::stats_json() const {
  std::string json = stats().to_json();
  if (opts_.telemetry == nullptr) return json;
  // Splice the metrics dump into the closing brace of the stats object.
  json.pop_back();
  json += ",\"telemetry\":" + opts_.telemetry->metrics().to_json() + "}";
  return json;
}

}  // namespace asyncmg
