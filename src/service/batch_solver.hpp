#pragma once
// Batched multi-RHS solves through one shared multigrid setup. All
// right-hand sides share the (cached) hierarchy; each worker slot keeps one
// V-cycle solver whose per-level workspaces are reused across every
// right-hand side that slot processes, so N solves cost one setup plus N
// cycle loops and at most pool-size workspace allocations.
//
// The engine is the multiplicative V(1,1)-cycle: it is deterministic, so a
// batched solve is bitwise identical to the same solves run independently,
// regardless of how the pool schedules them.

#include <memory>
#include <vector>

#include "multigrid/mult.hpp"
#include "multigrid/setup.hpp"
#include "multigrid/solve_stats.hpp"

namespace asyncmg {

class SolverPool;

struct BatchOptions {
  int t_max = 100;
  double tol = 1e-8;
};

struct BatchResult {
  Vector x;
  SolveStats stats;
};

class BatchSolver {
 public:
  /// `pool` may be null: solves then run sequentially on the caller's
  /// thread (one reused workspace). The pool, when given, must outlive the
  /// BatchSolver and is not owned.
  BatchSolver(std::shared_ptr<const MgSetup> setup, SolverPool* pool,
              BatchOptions opts = {});

  /// Solves A x_i = rhs[i] from zero initial guesses. Thread-safe: per-call
  /// state only, so concurrent solve_all calls from multiple client threads
  /// interleave safely on the shared pool.
  std::vector<BatchResult> solve_all(const std::vector<Vector>& rhs) const;

  const MgSetup& setup() const { return *setup_; }
  const BatchOptions& options() const { return opts_; }

 private:
  std::shared_ptr<const MgSetup> setup_;
  SolverPool* pool_;
  BatchOptions opts_;
};

}  // namespace asyncmg
