#include "service/batch_solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "service/solver_pool.hpp"

namespace asyncmg {

BatchSolver::BatchSolver(std::shared_ptr<const MgSetup> setup,
                         SolverPool* pool, BatchOptions opts)
    : setup_(std::move(setup)), pool_(pool), opts_(opts) {
  if (!setup_) {
    throw std::invalid_argument("BatchSolver: null setup");
  }
}

std::vector<BatchResult> BatchSolver::solve_all(
    const std::vector<Vector>& rhs) const {
  const auto n_fine = static_cast<std::size_t>(setup_->a(0).rows());
  for (const Vector& b : rhs) {
    if (b.size() != n_fine) {
      throw std::invalid_argument("BatchSolver: rhs size mismatch");
    }
  }
  std::vector<BatchResult> results(rhs.size());
  if (rhs.empty()) return results;

  if (pool_ == nullptr) {
    MultiplicativeMg mg(*setup_);
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      results[i].x.assign(n_fine, 0.0);
      results[i].stats =
          mg.solve(rhs[i], results[i].x, opts_.t_max, opts_.tol);
    }
    return results;
  }

  // One cycle-workspace per worker slot, reused across that slot's share of
  // the batch; right-hand sides are claimed dynamically.
  const std::size_t slots = std::min(rhs.size(), pool_->size());
  std::vector<std::unique_ptr<MultiplicativeMg>> solvers(slots);
  for (std::size_t s = 0; s < slots; ++s) {
    solvers[s] = std::make_unique<MultiplicativeMg>(*setup_);
  }
  pool_->parallel_for(rhs.size(), [&](std::size_t slot, std::size_t i) {
    results[i].x.assign(n_fine, 0.0);
    results[i].stats =
        solvers[slot]->solve(rhs[i], results[i].x, opts_.t_max, opts_.tol);
  });
  return results;
}

}  // namespace asyncmg
