#include "service/solver_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <utility>

#include "telemetry/sink.hpp"
#include "util/thread_context.hpp"

namespace asyncmg {

SolverPool::SolverPool(std::size_t num_threads) {
  if (num_threads == 0) {
    throw std::invalid_argument("SolverPool: num_threads must be >= 1");
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SolverPool::~SolverPool() {
  {
    const std::lock_guard<std::mutex> g(mu_);
    stopping_ = true;  // workers drain the queue, then exit
  }
  cv_task_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void SolverPool::worker_loop() {
  // Each worker is one concurrency lane: solve-phase OpenMP kernels consult
  // this flag and stay serial on pool workers, so N workers never become
  // N x omp_get_max_threads() threads (see DESIGN.md, thread ownership).
  set_this_thread_pool_worker(true);
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_task_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      const std::lock_guard<std::mutex> g(mu_);
      --active_;
      ++executed_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void SolverPool::post(std::function<void()> task) {
  std::size_t depth = 0;
  {
    const std::lock_guard<std::mutex> g(mu_);
    if (stopping_) {
      throw std::runtime_error("SolverPool: post after shutdown began");
    }
    queue_.push_back(std::move(task));
    depth = queue_.size();
  }
  cv_task_.notify_one();
  if (telemetry_ != nullptr && telemetry_->enabled()) {
    telemetry_->record_control(EventKind::kQueueDepth,
                               static_cast<std::int64_t>(depth));
    telemetry_->metrics().gauge("pool.queue_depth").set(
        static_cast<double>(depth));
  }
}

void SolverPool::run_gang(std::size_t n,
                          const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (n > size()) {
    throw std::invalid_argument(
        "SolverPool::run_gang: gang larger than the pool");
  }
  const std::lock_guard<std::mutex> gang(gang_mu_);

  struct GangState {
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr error;
  };
  auto st = std::make_shared<GangState>();
  st->remaining = n;

  {
    // Enqueue all n bodies under one queue lock so they sit contiguously;
    // workers then pick them up one each.
    const std::lock_guard<std::mutex> g(mu_);
    if (stopping_) {
      throw std::runtime_error("SolverPool: run_gang after shutdown began");
    }
    for (std::size_t i = 0; i < n; ++i) {
      queue_.push_back([st, i, &body] {
        try {
          body(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lg(st->mu);
          if (!st->error) st->error = std::current_exception();
        }
        {
          const std::lock_guard<std::mutex> lg(st->mu);
          --st->remaining;
        }
        st->done.notify_one();
      });
    }
  }
  cv_task_.notify_all();

  std::unique_lock<std::mutex> lk(st->mu);
  st->done.wait(lk, [&] { return st->remaining == 0; });
  if (st->error) std::rethrow_exception(st->error);
}

void SolverPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t slots = std::min(n, size());

  struct LoopState {
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable done;
    std::size_t remaining;
    std::size_t total;
    std::exception_ptr error;
  };
  auto st = std::make_shared<LoopState>();
  st->remaining = slots;
  st->total = n;

  for (std::size_t slot = 0; slot < slots; ++slot) {
    post([st, slot, &fn] {
      try {
        for (std::size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
             i < st->total;
             i = st->next.fetch_add(1, std::memory_order_relaxed)) {
          fn(slot, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lg(st->mu);
        if (!st->error) st->error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lg(st->mu);
        --st->remaining;
      }
      st->done.notify_one();
    });
  }

  std::unique_lock<std::mutex> lk(st->mu);
  st->done.wait(lk, [&] { return st->remaining == 0; });
  if (st->error) std::rethrow_exception(st->error);
}

void SolverPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

std::uint64_t SolverPool::tasks_executed() const {
  const std::lock_guard<std::mutex> g(mu_);
  return executed_;
}

}  // namespace asyncmg
