#pragma once
// Persistent worker thread pool for the solver service layer.
//
// Every solver driver in the library used to spawn and join its own
// std::threads per call; under repeated traffic the spawn/join cost and the
// cold stacks dominate short solves. A SolverPool owns a fixed set of
// workers fed from one condition-variable work queue and outlives any number
// of solves. Three execution shapes are offered:
//
//   post          fire-and-forget single task (the SolveService request
//                 executor).
//   run_gang      n bodies that may synchronize with each other (barriers);
//                 this is what the shared-memory multigrid runtime needs.
//                 Gangs are serialized against each other internally --
//                 two concurrent gangs could otherwise each hold part of
//                 the worker set and deadlock at their barriers.
//   parallel_for  independent index-space loop with a stable worker-slot id
//                 per participating task, so callers can keep per-slot
//                 workspaces (the BatchSolver's per-slot cycle state).
//
// Ownership rules (see DESIGN.md): pool tasks must never call run_gang,
// parallel_for, or wait_idle on their own pool -- those block the caller
// until other tasks finish, and a worker blocking on its own pool's
// progress can starve the queue. Client threads may call them freely.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace asyncmg {

class TelemetrySink;

class SolverPool {
 public:
  explicit SolverPool(std::size_t num_threads);

  /// Blocks until every queued and running task has finished, then joins.
  ~SolverPool();

  SolverPool(const SolverPool&) = delete;
  SolverPool& operator=(const SolverPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task for any worker. Never blocks.
  void post(std::function<void()> task);

  /// Runs body(0), ..., body(n-1) on the workers and returns when all have
  /// finished. Bodies may synchronize with each other (std::barrier et al.):
  /// only one gang executes at a time and n must not exceed size(), so all
  /// n bodies are guaranteed to make progress concurrently.
  void run_gang(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Chunks [0, n) across up to min(n, size()) worker tasks and returns when
  /// every index has been processed. fn(slot, index): `slot` is a dense id in
  /// [0, num_slots) stable for the lifetime of the call, usable to index
  /// per-slot workspaces. Indices are claimed dynamically (atomic counter),
  /// so uneven per-index cost balances itself.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Blocks the calling (non-worker) thread until the queue is empty and no
  /// task is running.
  void wait_idle();

  /// Total tasks executed since construction (gang bodies and parallel_for
  /// slot tasks each count as one task).
  std::uint64_t tasks_executed() const;

  /// Attach a telemetry sink: post() records the queue depth (control-plane
  /// event + "pool.queue_depth" gauge). Not owned; must outlive the pool.
  /// nullptr detaches.
  void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }

 private:
  void worker_loop();

  TelemetrySink* telemetry_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_task_;   // workers: queue non-empty or stopping
  std::condition_variable cv_idle_;   // waiters: queue empty && active == 0
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;            // tasks currently executing
  std::uint64_t executed_ = 0;
  bool stopping_ = false;
  std::mutex gang_mu_;                // serializes run_gang calls
  std::vector<std::thread> workers_;
};

}  // namespace asyncmg
