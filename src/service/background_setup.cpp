#include "service/background_setup.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "service/solver_pool.hpp"
#include "telemetry/sink.hpp"

namespace asyncmg {

namespace {

void mark_level_ready(TelemetrySink* tel, std::size_t level, Index rows) {
  if (tel == nullptr || !tel->enabled()) return;
  tel->record_control(EventKind::kLevelReady, static_cast<std::int64_t>(level),
                      static_cast<std::int64_t>(rows));
  tel->metrics().counter("setup.levels_ready").add(1);
}

}  // namespace

BackgroundSetup::BackgroundSetup(CsrMatrix a_fine, BackgroundSetupOptions opts)
    : opts_(std::move(opts)), builder_(std::move(a_fine), opts_.mg.amg) {
  prefix_ = builder_.snapshot_prefix(1);
  ready_.store(1);
  mark_level_ready(opts_.telemetry, 0, prefix_.matrix(0).rows());
}

void BackgroundSetup::start() {
  if (opts_.pool == nullptr) return;
  // The lane shares ownership: it may outlive the requester that created us.
  auto self = shared_from_this();
  opts_.pool->post([self]() { self->lane_loop(); });
}

void BackgroundSetup::lane_loop() {
  for (;;) {
    if (complete_.load()) return;
    const auto built = ready_.load();
    if (opts_.fail_after_levels >= 0 &&
        built >= static_cast<std::size_t>(opts_.fail_after_levels)) {
      // Injected lane death: stop stepping without finishing. Requesters
      // keep calling advance(), so the build completes on their threads.
      lane_dead_.store(true);
      if (TelemetrySink* const tel = opts_.telemetry;
          tel != nullptr && tel->enabled()) {
        tel->record_control(EventKind::kSetupFallback,
                            static_cast<std::int64_t>(built));
        tel->metrics().counter("setup.fallbacks").add(1);
      }
      return;
    }
    if (!step_once()) std::this_thread::yield();
  }
}

bool BackgroundSetup::step_once() {
  const std::unique_lock<std::mutex> step(step_mu_, std::try_to_lock);
  if (!step.owns_lock()) return false;
  if (complete_.load()) return true;

  if (builder_.step()) {
    // One more coarse level landed: publish a fresh prefix copy for
    // snapshots (the builder's own levels keep mutating on later steps).
    const std::size_t nl = builder_.levels_built();
    Hierarchy snap = builder_.snapshot_prefix(nl);
    const Index rows = builder_.coarsest_rows();
    {
      const std::lock_guard<std::mutex> g(state_mu_);
      prefix_ = std::move(snap);
      ready_.store(nl);
    }
    state_cv_.notify_all();
    mark_level_ready(opts_.telemetry, nl - 1, rows);
  } else {
    // No further level: finalize. finish() reruns nothing (the builder is
    // done) but applies the precision policy, so the result is bit-identical
    // to a direct Hierarchy::build; the full MgSetup gets the real options,
    // dense coarse LU included.
    auto setup =
        std::make_shared<const MgSetup>(builder_.finish(), opts_.mg);
    {
      const std::lock_guard<std::mutex> g(state_mu_);
      full_setup_ = setup;
      snap_setup_ = setup;
      snap_levels_ = setup->num_levels();
      ready_.store(setup->num_levels());
      complete_.store(true);
    }
    state_cv_.notify_all();
  }
  return true;
}

std::size_t BackgroundSetup::advance() {
  if (!complete_.load()) step_once();
  return ready_.load();
}

std::shared_ptr<const MgSetup> BackgroundSetup::snapshot() {
  const std::lock_guard<std::mutex> g(state_mu_);
  if (full_setup_) return full_setup_;
  if (snap_setup_ && snap_levels_ == prefix_.num_levels()) return snap_setup_;
  // Truncated serving setup: the temporary coarsest is smoothed, never
  // LU-solved, so disable the dense coarse solver outright.
  MgOptions o = opts_.mg;
  o.max_dense_coarse = 0;
  Hierarchy copy = prefix_;
  snap_setup_ = std::make_shared<const MgSetup>(std::move(copy), o);
  snap_levels_ = prefix_.num_levels();
  return snap_setup_;
}

std::shared_ptr<const MgSetup> BackgroundSetup::full() const {
  const std::lock_guard<std::mutex> g(state_mu_);
  return full_setup_;
}

std::shared_ptr<const MgSetup> BackgroundSetup::wait_full() {
  for (;;) {
    if (complete_.load()) return full();
    if (!step_once()) {
      // The lane is mid-step; wait for its publish instead of spinning.
      // The timeout re-arms the step attempt in case the lane died between
      // our try-lock and this wait.
      std::unique_lock<std::mutex> g(state_mu_);
      state_cv_.wait_for(g, std::chrono::milliseconds(1),
                         [&] { return complete_.load(); });
    }
  }
}

}  // namespace asyncmg
