#pragma once
// LRU cache of completed multigrid setups, keyed by the content fingerprint
// of the fine matrix. The AMG setup phase (strength + coarsening +
// interpolation + RAP SpGEMMs + smoother factorizations) dominates a solve;
// a service handling repeated right-hand sides against recurring matrices
// must pay it once per matrix, not once per request (the AMGCL
// setup-object/solve split, applied as a cache).
//
// Eviction is by byte budget: entries are charged their estimated in-memory
// size (all level operators + derived interpolants + smoother vectors) and
// the least-recently-used entries are dropped once the budget is exceeded.
// With a spill directory configured, an evicted entry's Hierarchy is
// serialized (via the in-memory string round-trip in amg/serialize) to
// <spill_dir>/<fingerprint>.amgh first, and a later request for the same
// matrix rebuilds the setup from that file instead of re-running the AMG
// setup phase -- smoothers and derived interpolants are recomputed, the
// expensive coarsening/SpGEMM chain is not.
//
// All public methods are thread-safe behind one mutex; a build or spill
// load runs under the lock, so concurrent requests for the same matrix do
// exactly one setup.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "multigrid/setup.hpp"
#include "service/fingerprint.hpp"

namespace asyncmg {

class TelemetrySink;

struct HierarchyCacheOptions {
  /// Byte budget for resident setups. At least one entry is always kept
  /// resident even if it alone exceeds the budget.
  std::size_t max_bytes = 256ull << 20;
  /// When nonempty, evicted hierarchies are serialized here and reloaded on
  /// a later request instead of rebuilt. The directory must exist.
  std::string spill_dir;
  /// Setup options applied when building (or rebuilding from spill).
  MgOptions mg;
  /// Telemetry: hits/misses/evictions/spills are recorded as control-plane
  /// events (byte-sized) and mirrored into "cache.*" counters. Not owned;
  /// must outlive the cache. nullptr = off.
  TelemetrySink* telemetry = nullptr;
};

struct HierarchyCacheStats {
  std::uint64_t hits = 0;         // resident entry reused
  std::uint64_t misses = 0;       // not resident (built or spill-loaded)
  std::uint64_t setups_built = 0; // full AMG setup phases actually run
  std::uint64_t evictions = 0;
  std::uint64_t spill_writes = 0;
  std::uint64_t spill_loads = 0;  // misses served from disk
  std::size_t resident_bytes = 0;
  std::size_t resident_entries = 0;
};

/// Estimated resident bytes of a setup (CSR arrays of every per-level
/// operator plus smoother/LU storage).
std::size_t estimate_setup_bytes(const MgSetup& s);

class HierarchyCache {
 public:
  explicit HierarchyCache(HierarchyCacheOptions opts);

  HierarchyCache(const HierarchyCache&) = delete;
  HierarchyCache& operator=(const HierarchyCache&) = delete;

  /// Returns the cached setup for `a`, building it on a miss. The returned
  /// shared_ptr keeps the setup alive independently of later evictions.
  /// `was_hit`, when non-null, reports whether this call reused a resident
  /// entry (spill loads count as misses).
  std::shared_ptr<const MgSetup> get_or_build(const CsrMatrix& a,
                                              bool* was_hit = nullptr);

  /// As above with an explicit precomputed fingerprint (callers that hash
  /// once and solve many times).
  std::shared_ptr<const MgSetup> get_or_build(const CsrMatrix& a,
                                              const MatrixFingerprint& key,
                                              bool* was_hit = nullptr);

  /// Cache-only resolution: returns the resident (or spill-reloaded) setup,
  /// or nullptr without ever building. Hit/miss/spill accounting matches
  /// get_or_build. The background setup pipeline uses this so a cold miss
  /// starts a resumable build instead of a blocking one.
  std::shared_ptr<const MgSetup> lookup(const MatrixFingerprint& key,
                                        bool* was_hit = nullptr);

  /// Registers an externally built setup (a finished background build)
  /// under `key`, counting it as a built setup. No-op when already
  /// resident (a concurrent request for the same matrix won the race).
  void insert(const MatrixFingerprint& key,
              std::shared_ptr<const MgSetup> setup);

  HierarchyCacheStats stats() const;

  /// Drops every resident entry (spilling if configured).
  void clear();

  const HierarchyCacheOptions& options() const { return opts_; }

 private:
  struct Entry {
    std::shared_ptr<const MgSetup> setup;
    std::size_t bytes = 0;
    std::list<MatrixFingerprint>::iterator lru_it;
  };

  /// Resident or spill-reloaded setup for `key` with hit/miss accounting;
  /// nullptr when a build is needed. Caller holds mu_.
  std::shared_ptr<const MgSetup> resolve_locked(const MatrixFingerprint& key,
                                                bool* was_hit);
  /// Inserts a resolved setup as the most-recent entry and evicts to
  /// budget. Caller holds mu_.
  void add_entry_locked(const MatrixFingerprint& key,
                        std::shared_ptr<const MgSetup> setup);
  /// Drops LRU entries until the budget holds (keeps >= 1 entry). Caller
  /// holds mu_.
  void evict_to_budget();
  void evict_one_locked();
  std::string spill_path(const MatrixFingerprint& key) const;

  HierarchyCacheOptions opts_;
  mutable std::mutex mu_;
  std::list<MatrixFingerprint> lru_;  // front = most recently used
  std::unordered_map<MatrixFingerprint, Entry, MatrixFingerprintHasher> map_;
  // Fingerprints with a spill file on disk.
  std::unordered_map<MatrixFingerprint, std::string, MatrixFingerprintHasher>
      spilled_;
  HierarchyCacheStats stats_;
};

}  // namespace asyncmg
