#pragma once
// Request front door for the solver library: submit(matrix, rhs, options)
// returns a future, requests execute on the persistent SolverPool against
// setups resolved through the HierarchyCache, and a ServiceStats snapshot
// (counters + latency percentiles) is exportable as JSON.
//
// Admission control is a bounded queue: at most `max_queue` requests may be
// admitted-but-unfinished at once; submit() beyond that throws
// ServiceOverloaded immediately (load-shedding) rather than growing an
// unbounded backlog. A per-request deadline turns a too-slow solve into a
// best-so-far answer with `timed_out` set instead of blocking the caller
// forever; the deadline clock starts at submission, so time spent queued
// counts against it.

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/batch_solver.hpp"
#include "service/hierarchy_cache.hpp"
#include "service/solver_pool.hpp"

namespace asyncmg {

struct ServiceOptions {
  /// Worker threads in the owned pool.
  std::size_t num_threads = 4;
  /// Bound on admitted-but-unfinished requests (the admission queue).
  std::size_t max_queue = 64;
  /// Cache configuration, including the MgOptions used to build setups.
  HierarchyCacheOptions cache;
  /// Defaults applied when a request leaves t_max / tol at 0.
  int default_t_max = 100;
  double default_tol = 1e-8;
  /// Telemetry sink shared by the service, its pool, and (unless
  /// cache.telemetry is set separately) its cache: admission-queue depth,
  /// latency histogram, and request counters. Not owned; must outlive the
  /// service. nullptr = off.
  TelemetrySink* telemetry = nullptr;
  /// Cold-cache requests build the hierarchy level-by-level on a background
  /// pool lane and start cycling on the finished prefix immediately
  /// (truncated cycles, smoothed temporary coarsest), deepening as levels
  /// land; the finished setup is then registered in the cache. Warm
  /// requests are unaffected. See service/background_setup.hpp.
  bool background_setup = false;
  /// Test hook forwarded to BackgroundSetupOptions::fail_after_levels: the
  /// background lane dies after this many levels (-1 = never), exercising
  /// the requester-takeover fallback.
  int background_fail_after_levels = -1;
};

struct RequestOptions {
  int t_max = 0;           // 0: service default
  double tol = 0.0;        // 0: service default
  /// Wall-clock budget in seconds from submission; 0 disables the deadline.
  double timeout_seconds = 0.0;
};

struct SolveResponse {
  Vector x;
  SolveStats stats;
  bool timed_out = false;
  /// True when the setup was served from cache (no AMG setup phase ran).
  bool cache_hit = false;
  /// True when at least one cycle ran on a partially built hierarchy
  /// (background-setup cold requests only).
  bool partial_setup = false;
  /// Cycles served on truncated (not yet fully built) hierarchies.
  std::size_t partial_cycles = 0;
  /// Seconds the request spent queued before its solve started.
  double queue_seconds = 0.0;
};

class ServiceOverloaded : public std::runtime_error {
 public:
  ServiceOverloaded() : std::runtime_error("SolveService: admission queue full") {}
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::size_t queue_depth = 0;  // admitted, not yet finished
  // Background setup pipeline: requests that cycled on a partial
  // hierarchy, the cycles they ran there, and lane-death fallbacks.
  std::uint64_t partial_solves = 0;
  std::uint64_t partial_cycles = 0;
  std::uint64_t setup_fallbacks = 0;
  HierarchyCacheStats cache;
  // Submit-to-completion latency over completed requests, seconds.
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_mean = 0.0;

  std::string to_json() const;
};

class SolveService {
 public:
  explicit SolveService(ServiceOptions opts);

  /// Drains in-flight requests, then stops the pool.
  ~SolveService();

  SolveService(const SolveService&) = delete;
  SolveService& operator=(const SolveService&) = delete;

  /// Admits one solve request. Throws ServiceOverloaded when the admission
  /// queue is full. The matrix and rhs are copied into the request (the
  /// caller may free them immediately); the matrix copy is dropped once its
  /// setup is resolved through the cache.
  std::future<SolveResponse> submit(CsrMatrix a, Vector b,
                                    RequestOptions opts = {});

  /// Batched multi-RHS solve against one matrix through the cache and pool.
  /// Runs on the calling thread (plus the pool); not subject to admission
  /// control. Safe to call concurrently from multiple client threads.
  std::vector<BatchResult> solve_batch(const CsrMatrix& a,
                                       const std::vector<Vector>& rhs,
                                       BatchOptions opts = {});

  ServiceStats stats() const;

  /// stats().to_json() with the telemetry metrics registry merged in under
  /// a "telemetry" key (identical to to_json() when no sink is attached).
  std::string stats_json() const;

  SolverPool& pool() { return *pool_; }
  HierarchyCache& cache() { return *cache_; }
  const ServiceOptions& options() const { return opts_; }

 private:
  void execute(CsrMatrix a, Vector b, RequestOptions ropts,
               std::chrono::steady_clock::time_point submitted,
               std::shared_ptr<std::promise<SolveResponse>> promise);

  ServiceOptions opts_;
  std::unique_ptr<HierarchyCache> cache_;
  mutable std::mutex stats_mu_;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t timed_out_ = 0;
  std::uint64_t partial_solves_ = 0;
  std::uint64_t partial_cycles_ = 0;
  std::uint64_t setup_fallbacks_ = 0;
  std::size_t in_flight_ = 0;
  std::vector<double> latencies_;
  // Destroyed first: pool shutdown waits for tasks, which touch the members
  // above, so the pool must precede them in destruction order.
  std::unique_ptr<SolverPool> pool_;
};

}  // namespace asyncmg
