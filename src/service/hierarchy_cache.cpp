#include "service/hierarchy_cache.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "amg/serialize.hpp"

namespace asyncmg {

namespace {

std::size_t csr_bytes(const CsrMatrix& m) {
  return static_cast<std::size_t>(m.nnz()) * (sizeof(Index) + sizeof(double)) +
         (static_cast<std::size_t>(m.rows()) + 1) * sizeof(Index);
}

}  // namespace

std::size_t estimate_setup_bytes(const MgSetup& s) {
  std::size_t total = 0;
  const std::size_t nl = s.num_levels();
  for (std::size_t k = 0; k < nl; ++k) {
    total += csr_bytes(s.a(k));
    if (k + 1 < nl) {
      total += csr_bytes(s.p(k)) + csr_bytes(s.pbar(k)) + csr_bytes(s.r(k)) +
               csr_bytes(s.rbar(k));
    }
    // Smoother diagonals / l1 norms and per-level scratch: a few vectors.
    total += 4 * static_cast<std::size_t>(s.a(k).rows()) * sizeof(double);
  }
  // Dense coarse LU (n^2 doubles) on the coarsest level, when present.
  const auto nc = static_cast<std::size_t>(s.a(nl - 1).rows());
  if (!s.coarse_solver().empty()) total += nc * nc * sizeof(double);
  return total;
}

HierarchyCache::HierarchyCache(HierarchyCacheOptions opts)
    : opts_(std::move(opts)) {}

std::string HierarchyCache::spill_path(const MatrixFingerprint& key) const {
  return opts_.spill_dir + "/" + key.to_string() + ".amgh";
}

std::shared_ptr<const MgSetup> HierarchyCache::get_or_build(
    const CsrMatrix& a, bool* was_hit) {
  return get_or_build(a, matrix_fingerprint(a), was_hit);
}

std::shared_ptr<const MgSetup> HierarchyCache::get_or_build(
    const CsrMatrix& a, const MatrixFingerprint& key, bool* was_hit) {
  const std::lock_guard<std::mutex> g(mu_);

  if (auto it = map_.find(key); it != map_.end()) {
    ++stats_.hits;
    if (was_hit) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
    return it->second.setup;
  }

  ++stats_.misses;
  if (was_hit) *was_hit = false;
  std::shared_ptr<const MgSetup> setup;
  if (auto sp = spilled_.find(key); sp != spilled_.end()) {
    std::ifstream f(sp->second);
    if (f) {
      std::string bytes((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
      setup = std::make_shared<MgSetup>(load_hierarchy_string(bytes), opts_.mg);
      ++stats_.spill_loads;
    } else {
      spilled_.erase(sp);  // file vanished; fall through to a full build
    }
  }
  if (!setup) {
    setup = std::make_shared<MgSetup>(
        Hierarchy::build(a, opts_.mg.amg), opts_.mg);
    ++stats_.setups_built;
  }

  Entry e;
  e.setup = setup;
  e.bytes = estimate_setup_bytes(*setup);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  stats_.resident_bytes += e.bytes;
  map_.emplace(key, std::move(e));
  stats_.resident_entries = map_.size();
  evict_to_budget();
  return setup;
}

void HierarchyCache::evict_to_budget() {
  while (map_.size() > 1 && stats_.resident_bytes > opts_.max_bytes) {
    evict_one_locked();
  }
}

void HierarchyCache::evict_one_locked() {
  const MatrixFingerprint key = lru_.back();
  auto it = map_.find(key);
  if (!opts_.spill_dir.empty() && !spilled_.contains(key)) {
    const std::string path = spill_path(key);
    std::ofstream f(path);
    if (!f) {
      throw std::runtime_error("HierarchyCache: cannot spill to " + path);
    }
    f << save_hierarchy_string(it->second.setup->hierarchy());
    spilled_.emplace(key, path);
    ++stats_.spill_writes;
  }
  stats_.resident_bytes -= it->second.bytes;
  map_.erase(it);
  lru_.pop_back();
  ++stats_.evictions;
  stats_.resident_entries = map_.size();
}

HierarchyCacheStats HierarchyCache::stats() const {
  const std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void HierarchyCache::clear() {
  const std::lock_guard<std::mutex> g(mu_);
  while (!map_.empty()) evict_one_locked();
}

}  // namespace asyncmg
