#include "service/hierarchy_cache.hpp"

#include <fstream>
#include <iterator>
#include <stdexcept>
#include <utility>

#include "amg/serialize.hpp"
#include "telemetry/sink.hpp"

namespace asyncmg {

namespace {

std::size_t csr_bytes(const CsrMatrix& m) {
  // Value bytes at the stored scalar width: fp32 levels are half price, so
  // the byte budget and LRU/spill decisions stay honest under the mixed-
  // precision policy.
  return m.value_bytes() + static_cast<std::size_t>(m.nnz()) * sizeof(Index) +
         (static_cast<std::size_t>(m.rows()) + 1) * sizeof(Index);
}

/// Cache events: one control-ring event plus the matching "cache.*" counter.
void cache_mark(TelemetrySink* tel, EventKind kind, const char* counter,
                std::size_t bytes) {
  if (tel == nullptr || !tel->enabled()) return;
  tel->record_control(kind, static_cast<std::int64_t>(bytes));
  tel->metrics().counter(counter).add(1);
}

}  // namespace

std::size_t estimate_setup_bytes(const MgSetup& s) {
  std::size_t total = 0;
  const std::size_t nl = s.num_levels();
  for (std::size_t k = 0; k < nl; ++k) {
    total += csr_bytes(s.a(k));
    if (k + 1 < nl) {
      total += csr_bytes(s.p(k)) + csr_bytes(s.pbar(k)) + csr_bytes(s.r(k)) +
               csr_bytes(s.rbar(k));
    }
    // Smoother diagonals / l1 norms and per-level scratch: a few vectors.
    total += 4 * static_cast<std::size_t>(s.a(k).rows()) * sizeof(double);
  }
  // Dense coarse LU (n^2 doubles) on the coarsest level, when present.
  const auto nc = static_cast<std::size_t>(s.a(nl - 1).rows());
  if (!s.coarse_solver().empty()) total += nc * nc * sizeof(double);
  return total;
}

HierarchyCache::HierarchyCache(HierarchyCacheOptions opts)
    : opts_(std::move(opts)) {}

std::string HierarchyCache::spill_path(const MatrixFingerprint& key) const {
  return opts_.spill_dir + "/" + key.to_string() + ".amgh";
}

std::shared_ptr<const MgSetup> HierarchyCache::get_or_build(
    const CsrMatrix& a, bool* was_hit) {
  return get_or_build(a, matrix_fingerprint(a), was_hit);
}

std::shared_ptr<const MgSetup> HierarchyCache::resolve_locked(
    const MatrixFingerprint& key, bool* was_hit) {
  if (auto it = map_.find(key); it != map_.end()) {
    ++stats_.hits;
    if (was_hit) *was_hit = true;
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
    cache_mark(opts_.telemetry, EventKind::kCacheHit, "cache.hits",
               it->second.bytes);
    return it->second.setup;
  }

  ++stats_.misses;
  if (was_hit) *was_hit = false;
  cache_mark(opts_.telemetry, EventKind::kCacheMiss, "cache.misses", 0);
  std::shared_ptr<const MgSetup> setup;
  if (auto sp = spilled_.find(key); sp != spilled_.end()) {
    std::ifstream f(sp->second);
    if (f) {
      std::string bytes((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
      setup = std::make_shared<MgSetup>(load_hierarchy_string(bytes), opts_.mg);
      ++stats_.spill_loads;
      cache_mark(opts_.telemetry, EventKind::kCacheSpillLoad,
                 "cache.spill_loads", bytes.size());
      add_entry_locked(key, setup);
    } else {
      spilled_.erase(sp);  // file vanished; caller falls back to a build
    }
  }
  return setup;
}

void HierarchyCache::add_entry_locked(const MatrixFingerprint& key,
                                      std::shared_ptr<const MgSetup> setup) {
  Entry e;
  e.setup = std::move(setup);
  e.bytes = estimate_setup_bytes(*e.setup);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  stats_.resident_bytes += e.bytes;
  map_.emplace(key, std::move(e));
  stats_.resident_entries = map_.size();
  evict_to_budget();
}

std::shared_ptr<const MgSetup> HierarchyCache::get_or_build(
    const CsrMatrix& a, const MatrixFingerprint& key, bool* was_hit) {
  const std::lock_guard<std::mutex> g(mu_);

  if (std::shared_ptr<const MgSetup> setup = resolve_locked(key, was_hit)) {
    return setup;
  }
  auto setup = std::make_shared<const MgSetup>(
      Hierarchy::build(a, opts_.mg.amg), opts_.mg);
  ++stats_.setups_built;
  if (opts_.telemetry != nullptr && opts_.telemetry->enabled()) {
    opts_.telemetry->metrics().counter("cache.setups_built").add(1);
  }
  add_entry_locked(key, setup);
  return setup;
}

std::shared_ptr<const MgSetup> HierarchyCache::lookup(
    const MatrixFingerprint& key, bool* was_hit) {
  const std::lock_guard<std::mutex> g(mu_);
  return resolve_locked(key, was_hit);
}

void HierarchyCache::insert(const MatrixFingerprint& key,
                            std::shared_ptr<const MgSetup> setup) {
  const std::lock_guard<std::mutex> g(mu_);
  if (map_.contains(key)) return;  // a concurrent request won the race
  ++stats_.setups_built;
  if (opts_.telemetry != nullptr && opts_.telemetry->enabled()) {
    opts_.telemetry->metrics().counter("cache.setups_built").add(1);
  }
  add_entry_locked(key, std::move(setup));
}

void HierarchyCache::evict_to_budget() {
  while (map_.size() > 1 && stats_.resident_bytes > opts_.max_bytes) {
    evict_one_locked();
  }
}

void HierarchyCache::evict_one_locked() {
  const MatrixFingerprint key = lru_.back();
  auto it = map_.find(key);
  if (!opts_.spill_dir.empty() && !spilled_.contains(key)) {
    const std::string path = spill_path(key);
    std::ofstream f(path);
    if (!f) {
      throw std::runtime_error("HierarchyCache: cannot spill to " + path);
    }
    f << save_hierarchy_string(it->second.setup->hierarchy());
    spilled_.emplace(key, path);
    ++stats_.spill_writes;
    cache_mark(opts_.telemetry, EventKind::kCacheSpillWrite,
               "cache.spill_writes", it->second.bytes);
  }
  cache_mark(opts_.telemetry, EventKind::kCacheEvict, "cache.evictions",
             it->second.bytes);
  stats_.resident_bytes -= it->second.bytes;
  map_.erase(it);
  lru_.pop_back();
  ++stats_.evictions;
  stats_.resident_entries = map_.size();
}

HierarchyCacheStats HierarchyCache::stats() const {
  const std::lock_guard<std::mutex> g(mu_);
  return stats_;
}

void HierarchyCache::clear() {
  const std::lock_guard<std::mutex> g(mu_);
  while (!map_.empty()) evict_one_locked();
}

}  // namespace asyncmg
