#include "service/fingerprint.hpp"

#include <cstdio>
#include <cstring>

namespace asyncmg {

std::uint64_t fnv1a_bytes(const void* data, std::size_t len,
                          std::uint64_t seed) {
  // FNV-1a mixing applied to 8-byte words with a byte-wise tail: the
  // fingerprint hashes megabytes of CSR arrays on every request, and the
  // canonical byte-at-a-time loop would cost as much as the solve it keys.
  constexpr std::uint64_t kPrime = 1099511628211ull;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, p + i, 8);
    h ^= w;
    h *= kPrime;
  }
  for (; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

MatrixFingerprint matrix_fingerprint(const CsrMatrix& a) {
  MatrixFingerprint f;
  f.rows = a.rows();
  f.cols = a.cols();
  f.nnz = a.nnz();
  std::uint64_t h = fnv1a_bytes(a.row_ptr().data(),
                                a.row_ptr().size_bytes());
  h = fnv1a_bytes(a.col_idx().data(), a.col_idx().size_bytes(), h);
  // Hash the value bytes at the stored width: client matrices are fp64 (so
  // existing fingerprints are unchanged), and an fp32 copy of the same
  // operator keys differently from its fp64 original, as it must.
  a.with_values([&](const auto* v) {
    h = fnv1a_bytes(v, a.value_bytes(), h);
  });
  f.hash = h;
  return f;
}

std::string MatrixFingerprint::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%dx%d-n%d-h%016llx", rows, cols, nnz,
                static_cast<unsigned long long>(hash));
  return buf;
}

}  // namespace asyncmg
