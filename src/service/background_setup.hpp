#pragma once
// Background setup pipeline (DESIGN.md section 13): a cold-cache request
// should not wait for the full AMG hierarchy. A BackgroundSetup wraps a
// resumable HierarchyBuilder; a SolverPool lane (and, cooperatively, the
// requester itself) drives one coarsening step at a time, and after every
// finished level an immutable truncated MgSetup of the ready prefix can be
// snapshotted. The solve loop cycles on the deepest ready prefix -- the
// temporary coarsest level is smoothed rather than LU-solved -- and deepens
// as levels land, until the full setup (bit-identical to a direct
// Hierarchy::build of the same options) replaces it.
//
// Progress discipline: stepping is guarded by a try-lock. Anyone may call
// advance(); if the lane is mid-step the call returns immediately, so the
// requester never blocks on the pool (a pool task must not wait on its own
// pool) and a killed or absent lane degrades to the requester building the
// hierarchy itself between cycles -- the Criterion-2-style recovery of the
// async runtime applied to setup: progress never depends on any one lane
// surviving.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "multigrid/setup.hpp"

namespace asyncmg {

class SolverPool;
class TelemetrySink;

struct BackgroundSetupOptions {
  /// Setup options of the finished hierarchy; snapshots reuse them with the
  /// dense coarse LU disabled (a truncated coarsest is temporary).
  MgOptions mg;
  /// Lane host. nullptr: no lane is posted and the requester does every
  /// step itself (pure cooperative mode).
  SolverPool* pool = nullptr;
  /// kLevelReady / kSetupFallback control-plane events. Not owned.
  TelemetrySink* telemetry = nullptr;
  /// Fault injection: the background lane dies (stops stepping) once this
  /// many levels are built (-1 = never). Requesters keep advancing, so the
  /// build still completes -- that takeover is what tests assert.
  int fail_after_levels = -1;
};

class BackgroundSetup : public std::enable_shared_from_this<BackgroundSetup> {
 public:
  BackgroundSetup(CsrMatrix a_fine, BackgroundSetupOptions opts);

  /// Posts the builder lane onto the pool (no-op without one). Call once.
  /// The object must already be owned by a shared_ptr: the lane task shares
  /// ownership so it can outlive the requester.
  void start();

  /// Levels finished so far (>= 1 immediately after construction).
  std::size_t ready_levels() const { return ready_.load(); }

  /// True once the full hierarchy (and its final MgSetup) exists.
  bool complete() const { return complete_.load(); }

  /// True when the injected fault killed the lane (the build then finished
  /// on requester threads).
  bool fell_back() const { return lane_dead_.load(); }

  /// Tries to run one builder step on the calling thread; returns without
  /// doing work when another thread is mid-step. Never blocks on the pool.
  /// Returns ready_levels() afterwards.
  std::size_t advance();

  /// Immutable setup of the current ready prefix. Returns the full setup
  /// once complete; otherwise a truncated one (no coarse LU). Cached per
  /// ready-count, so repeated calls between level completions are cheap.
  std::shared_ptr<const MgSetup> snapshot();

  /// The finished full setup, or nullptr until complete().
  std::shared_ptr<const MgSetup> full() const;

  /// Drives (and, when the lane holds the step lock, waits for) the build
  /// to completion; returns the full setup.
  std::shared_ptr<const MgSetup> wait_full();

 private:
  void lane_loop();
  /// One locked builder step; finalizes on the last. Returns false when
  /// the step lock was contended (no work done).
  bool step_once();

  BackgroundSetupOptions opts_;

  std::mutex step_mu_;  // serializes builder stepping + finalization
  HierarchyBuilder builder_;

  mutable std::mutex state_mu_;  // guards the members below
  std::condition_variable state_cv_;
  Hierarchy prefix_;  // copy of the ready prefix (fp64 working values)
  std::shared_ptr<const MgSetup> snap_setup_;  // lazily built from prefix_
  std::size_t snap_levels_ = 0;
  std::shared_ptr<const MgSetup> full_setup_;

  std::atomic<std::size_t> ready_{0};
  std::atomic<bool> complete_{false};
  std::atomic<bool> lane_dead_{false};
};

}  // namespace asyncmg
