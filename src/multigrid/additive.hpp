#pragma once
// Additive multigrid methods: BPX (Eq. 1), Multadd (Eq. 2), and AFACx
// (Algorithm 2). The central primitive is the per-grid correction
//
//   c_k = Pbar_k^0 Lambda_k (Pbar_k^0)^T r     (Multadd; plain P for BPX)
//   c_k = P_k^0 e_k                            (AFACx, Alg. 2 lines 8-9)
//
// computed from a fine-grid residual. The synchronous additive cycle sums
// the corrections of all grids; the asynchronous models and the
// shared-memory runtime apply exactly the same per-grid correction with
// out-of-date residuals.

#include <string>

#include "multigrid/setup.hpp"
#include "multigrid/solve_stats.hpp"

namespace asyncmg {

enum class AdditiveKind { kBpx, kMultadd, kAfacx };

std::string additive_kind_name(AdditiveKind k);

struct AdditiveOptions {
  AdditiveKind kind = AdditiveKind::kMultadd;
  /// AFACx V(s1/s2,0): sweeps for e_k (s1) and for e_{k+1} (s2).
  int afacx_s1 = 1;
  int afacx_s2 = 1;
  /// Use the symmetrized smoother Mbar^{-1} as Lambda_k; Multadd then
  /// matches the symmetric multiplicative V(1,1)-cycle exactly.
  bool symmetrized_lambda = false;
};

/// Reusable buffers for AdditiveCorrector::correction -- callers that sit
/// in a per-instant loop (the sequential simulators, the schedule replays)
/// keep one across calls instead of reallocating seven vectors per
/// correction. Contents are scratch; only capacity is reused.
struct CorrectionScratch {
  Vector r, next, e, r_next, u, pu, apu;
  /// Ping-pong buffer for the allocation-free multi-sweep smoothing inside
  /// corrections (smooth_zero_ws / apply_symmetrized_ws spill space).
  Vector swp;
};

class AdditiveCorrector {
 public:
  AdditiveCorrector(const MgSetup& setup, AdditiveOptions opts);

  const MgSetup& setup() const { return *s_; }
  const AdditiveOptions& options() const { return opts_; }
  std::size_t num_grids() const { return s_->num_levels(); }

  /// Fine-grid correction contributed by grid k given fine residual r:
  /// c is resized and overwritten.
  void correction(std::size_t k, const Vector& r_fine, Vector& c) const;
  /// Same computation (identical arithmetic, identical results), buffers
  /// drawn from `ws`.
  void correction(std::size_t k, const Vector& r_fine, Vector& c,
                  CorrectionScratch& ws) const;

  /// Shard-local additive cycle: adds every grid's correction computed from
  /// the fine residual `r` to rows [row_begin, row_end) of `acc` (other
  /// rows untouched). Grid 0 with a Jacobi-type smoother is applied
  /// row-locally (c_0[i] = inv_diag[i] * r[i], the apply_zero formula), so
  /// a shard owning those rows never computes foreign fine-grid rows; the
  /// remaining grids compute the full-length correction -- the replicated
  /// coarse-level work of the sharded executor -- and add only the range.
  /// Per-row arithmetic is identical for every range split: summing the
  /// ranges of any partition reproduces the full-range result bitwise.
  void accumulate_cycle(const Vector& r, Vector& acc, std::size_t row_begin,
                        std::size_t row_end, CorrectionScratch& ws,
                        Vector& c) const;

  /// Per-grid work estimate (flops of one correction) for thread balancing.
  std::vector<double> work() const;

 private:
  void correction_chain(std::size_t k, const Vector& r_fine, Vector& c,
                        CorrectionScratch& ws) const;
  void correction_afacx(std::size_t k, const Vector& r_fine, Vector& c,
                        CorrectionScratch& ws) const;
  /// Interpolant to use between levels j and j+1 for this method.
  const CsrMatrix& interp(std::size_t j) const;
  void solve_coarsest(const Vector& r, Vector& e) const;

  const MgSetup* s_;
  AdditiveOptions opts_;
};

/// Synchronous additive driver: one "V-cycle" computes r = b - Ax once and
/// adds every grid's correction (what the paper's sync Multadd / sync AFACx
/// baselines do, minus threading).
class AdditiveMg {
 public:
  AdditiveMg(const MgSetup& setup, AdditiveOptions opts);

  void cycle(const Vector& b, Vector& x);
  SolveStats solve(const Vector& b, Vector& x, int t_max, double tol = 0.0);

  const AdditiveCorrector& corrector() const { return corrector_; }

 private:
  AdditiveCorrector corrector_;
  CorrectionScratch ws_;
  Vector r_, c_;
};

}  // namespace asyncmg
