#include "multigrid/mult.hpp"

#include <stdexcept>

#include "sparse/vec.hpp"
#include "telemetry/sink.hpp"
#include "util/timer.hpp"

namespace asyncmg {

MultiplicativeMg::MultiplicativeMg(const MgSetup& setup, bool symmetric,
                                   int pre_sweeps, int post_sweeps, int gamma)
    : s_(&setup),
      symmetric_(symmetric),
      pre_sweeps_(pre_sweeps),
      post_sweeps_(post_sweeps),
      gamma_(gamma) {
  if (pre_sweeps < 0 || post_sweeps < 0 || pre_sweeps + post_sweeps == 0) {
    throw std::invalid_argument(
        "MultiplicativeMg: need nonnegative sweep counts, at least one");
  }
  if (gamma < 1) {
    throw std::invalid_argument("MultiplicativeMg: gamma must be >= 1");
  }
  const std::size_t nl = s_->num_levels();
  r_.resize(nl);
  e_.resize(nl);
  tmp_.resize(nl);
  for (std::size_t k = 0; k < nl; ++k) {
    const auto n = static_cast<std::size_t>(s_->a(k).rows());
    r_[k].resize(n);
    e_[k].resize(n);
    tmp_[k].resize(n);
  }
}

void MultiplicativeMg::phase_mark(EventKind kind, CyclePhase phase,
                                  std::size_t level) {
  tel_->record(tel_tid_, kind, static_cast<std::int64_t>(phase),
               static_cast<std::int64_t>(level));
}

void MultiplicativeMg::level_solve(std::size_t k) {
  const std::size_t coarsest = s_->num_levels() - 1;
  if (k == coarsest) {
    // Exact solve when available, a smoothing sweep otherwise.
    pb(CyclePhase::kCoarseSolve, k);
    if (!s_->coarse_solver().empty()) {
      s_->coarse_solver().solve(r_[k], e_[k]);
    } else {
      s_->smoother(k).apply_zero(r_[k], e_[k]);
    }
    pe(CyclePhase::kCoarseSolve, k);
    return;
  }

  // Pre-smooth from a zero initial guess.
  pb(CyclePhase::kPreSmooth, k);
  if (pre_sweeps_ == 0) {
    fill(e_[k], 0.0);
  } else {
    s_->smoother(k).smooth_zero(r_[k], e_[k], pre_sweeps_);
  }
  pe(CyclePhase::kPreSmooth, k);

  // gamma coarse-grid corrections: gamma = 1 is the V-cycle of Algorithm 1,
  // gamma = 2 the W-cycle.
  for (int g = 0; g < gamma_; ++g) {
    pb(CyclePhase::kRestrict, k);
    s_->a(k).spmv(e_[k], tmp_[k]);                // tmp = A_k e_k
    for (std::size_t i = 0; i < tmp_[k].size(); ++i) {
      tmp_[k][i] = r_[k][i] - tmp_[k][i];
    }
    s_->p(k).spmv_transpose(tmp_[k], r_[k + 1]);  // r_{k+1} = P^T (r_k - A e_k)
    pe(CyclePhase::kRestrict, k);
    level_solve(k + 1);
    pb(CyclePhase::kProlong, k);
    s_->p(k).spmv(e_[k + 1], tmp_[k]);
    axpy(1.0, tmp_[k], e_[k]);                    // e_k += P e_{k+1}
    pe(CyclePhase::kProlong, k);
  }

  // Post-smooth.
  pb(CyclePhase::kPostSmooth, k);
  for (int s = 0; s < post_sweeps_; ++s) {
    if (symmetric_) {
      s_->smoother(k).sweep_transpose(r_[k], e_[k]);
    } else {
      s_->smoother(k).sweep(r_[k], e_[k]);        // e_k += M^{-1}(r_k - A e_k)
    }
  }
  pe(CyclePhase::kPostSmooth, k);
}

void MultiplicativeMg::cycle(const Vector& b, Vector& x) {
  if (tel_ != nullptr && !tel_->enabled()) {
    // Drop to the zero-overhead path for the whole cycle.
    TelemetrySink* const saved = tel_;
    tel_ = nullptr;
    cycle(b, x);
    tel_ = saved;
    return;
  }
  pb(CyclePhase::kResidual, 0);
  s_->a(0).residual(b, x, r_[0]);
  pe(CyclePhase::kResidual, 0);
  level_solve(0);
  axpy(1.0, e_[0], x);
}

SolveStats MultiplicativeMg::solve(const Vector& b, Vector& x, int t_max,
                                   double tol) {
  SolveStats stats;
  Timer timer;
  const double bnorm = norm2(b);
  const double scale = bnorm > 0.0 ? 1.0 / bnorm : 1.0;
  Vector r;
  s_->a(0).residual(b, x, r);
  stats.rel_res_history.push_back(norm2(r) * scale);
  for (int t = 0; t < t_max; ++t) {
    cycle(b, x);
    ++stats.cycles;
    s_->a(0).residual(b, x, r);
    const double rr = norm2(r) * scale;
    stats.rel_res_history.push_back(rr);
    if (tol > 0.0 && rr < tol) {
      stats.converged = true;
      break;
    }
  }
  stats.seconds = timer.seconds();
  return stats;
}

}  // namespace asyncmg
